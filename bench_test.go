// Benchmarks that regenerate each table and figure of the paper's
// evaluation, one testing.B benchmark per artifact. They run at Test
// input scale so `go test -bench=.` finishes quickly; cmd/paperbench
// produces the evaluation-scale versions (-size ref).
//
// Each benchmark reports sim_cycles/op: the total simulated cycles
// consumed regenerating the artifact (a determinism canary as much as
// a performance number — it must be identical across runs).
package bigtiny_test

import (
	"io"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/cache"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// benchApps is a representative subset (one ss + two pf kernels) used
// by the per-figure benchmarks to keep -bench=. runtimes reasonable;
// the Table III benchmark covers all 13.
var benchApps = []string{"cilk5-cs", "ligra-bfs", "ligra-tc"}

func runArtifact(b *testing.B, f func(s *bench.Suite) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := bench.NewSuite(apps.Test)
		if err := f(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (all 13 apps, 11 configs).
func BenchmarkTable3(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Table3(io.Discard, bench.AppNames())
	})
}

// BenchmarkTable4 regenerates Table IV (DTS cache-op reductions).
func BenchmarkTable4(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Table4(io.Discard, benchApps)
	})
}

// BenchmarkTable5 regenerates Table V (256-core weak scaling).
func BenchmarkTable5(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Table5(io.Discard)
	})
}

// BenchmarkFig4 regenerates Figure 4 (granularity sweep on ligra-tc).
func BenchmarkFig4(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Fig4(io.Discard, []int{4, 16, 64})
	})
}

// BenchmarkFig5 regenerates Figure 5 (speedup over big.TINY/MESI).
func BenchmarkFig5(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Fig5(io.Discard, benchApps)
	})
}

// BenchmarkFig6 regenerates Figure 6 (L1D hit rates).
func BenchmarkFig6(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Fig6(io.Discard, benchApps)
	})
}

// BenchmarkFig7 regenerates Figure 7 (execution-time breakdown).
func BenchmarkFig7(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Fig7(io.Discard, benchApps)
	})
}

// BenchmarkFig8 regenerates Figure 8 (network traffic breakdown).
func BenchmarkFig8(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.Fig8(io.Discard, benchApps)
	})
}

// BenchmarkULIReport regenerates the §VI-C ULI overhead report.
func BenchmarkULIReport(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.ULIReport(io.Discard, benchApps)
	})
}

// BenchmarkEnergyReport regenerates the energy-efficiency comparison.
func BenchmarkEnergyReport(b *testing.B) {
	runArtifact(b, func(s *bench.Suite) error {
		return s.EnergyReport(io.Discard, benchApps)
	})
}

// BenchmarkEndToEndCilkCS is the PR 4 host-throughput canary: one full
// cilk5-cs simulation on the 64-core DTS machine, reporting simulated
// cycles, kernel events, and the fast-path wait count per op alongside
// the usual wall-clock and allocs. sim_cycles/op and events/op are
// determinism canaries; ns/op and allocs/op are the host cost this PR
// drives down.
func BenchmarkEndToEndCilkCS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app, err := apps.ByName("cilk5-cs")
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := machine.Lookup("bT/HCC-DTS-gwb")
		if err != nil {
			b.Fatal(err)
		}
		m := machine.New(cfg)
		rt := wsrt.New(m, wsrt.AutoVariant(m))
		rt.Grain = app.DefaultGrain
		inst := app.Setup(rt, apps.Test, 0)
		if err := rt.Run(inst.Root); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Kernel.Now()), "sim_cycles/op")
		b.ReportMetric(float64(m.Kernel.Fired()), "events/op")
		b.ReportMetric(float64(m.Kernel.FastWaits()), "fastwaits/op")
	}
}

// --- runtime primitive microbenchmarks (ablation-style) ---

// benchSpawnWait measures the end-to-end cost of a fork-join workload
// on one runtime variant: wall-clock is host time, sim_cycles/op the
// simulated execution time.
func benchSpawnWait(b *testing.B, tinyProto cache.Protocol, dts bool, variant wsrt.Variant) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		base, err := machine.Lookup("bT/MESI")
		if err != nil {
			b.Fatal(err)
		}
		cfg := base
		cfg.Name = "bench"
		cfg.NumBig, cfg.NumTiny = 1, 7
		cfg.Rows, cfg.Cols = 2, 4
		cfg.NumBanks = 4
		cfg.DTS = dts
		cfg.TinyProto = tinyProto
		m := machine.New(cfg)
		rt := wsrt.New(m, variant)
		fid := rt.RegisterFunc("bench", 512)
		n := 512
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *wsrt.Ctx) {
			c.ParallelFor(fid, 0, n, 16, func(cc *wsrt.Ctx, j int) {
				cc.Compute(50)
				cc.Store(arr+mem.Addr(j*8), uint64(j))
			})
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Kernel.Now()), "sim_cycles/op")
	}
}

// BenchmarkRuntimeHWOnMESI measures the Fig. 3(a) engine.
func BenchmarkRuntimeHWOnMESI(b *testing.B) { benchSpawnWait(b, cache.MESI, false, wsrt.HW) }

// BenchmarkRuntimeHCCOnGWB measures the Fig. 3(b) engine.
func BenchmarkRuntimeHCCOnGWB(b *testing.B) { benchSpawnWait(b, cache.GPUWB, false, wsrt.HCC) }

// BenchmarkRuntimeDTSOnGWB measures the Fig. 3(c) engine.
func BenchmarkRuntimeDTSOnGWB(b *testing.B) { benchSpawnWait(b, cache.GPUWB, true, wsrt.DTS) }

// --- ablation benchmarks (DESIGN.md design-choice studies) ---

// BenchmarkAblationLockedDeque vs BenchmarkAblationChaseLevDeque
// isolate the cost of per-deque spin locks against the Chase-Lev
// lock-free protocol on the hardware-coherent baseline.
func BenchmarkAblationLockedDeque(b *testing.B)   { benchDequeKind(b, false) }
func BenchmarkAblationChaseLevDeque(b *testing.B) { benchDequeKind(b, true) }

func benchDequeKind(b *testing.B, lockFree bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg, err := machine.Lookup("bT/MESI")
		if err != nil {
			b.Fatal(err)
		}
		cfg.Name = "bench"
		cfg.NumBig, cfg.NumTiny = 1, 7
		cfg.Rows, cfg.Cols = 2, 4
		cfg.NumBanks = 4
		m := machine.New(cfg)
		rt := wsrt.New(m, wsrt.HW)
		rt.LockFreeDeque = lockFree
		fid := rt.RegisterFunc("bench", 512)
		n := 1024
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *wsrt.Ctx) {
			c.ParallelFor(fid, 0, n, 16, func(cc *wsrt.Ctx, j int) {
				cc.Compute(40)
				cc.Store(arr+mem.Addr(j*8), uint64(j))
			})
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Kernel.Now()), "sim_cycles/op")
	}
}

// BenchmarkAblationDTS vs BenchmarkAblationDTSNoOpt isolate the paper's
// §IV-C software optimizations (has_stolen_child tracking) on GPU-WB.
func BenchmarkAblationDTS(b *testing.B)      { benchDTSVariant(b, wsrt.DTS) }
func BenchmarkAblationDTSNoOpt(b *testing.B) { benchDTSVariant(b, wsrt.DTSNoOpt) }

func benchDTSVariant(b *testing.B, v wsrt.Variant) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg, err := machine.Lookup("bT/HCC-DTS-gwb")
		if err != nil {
			b.Fatal(err)
		}
		cfg.Name = "bench"
		cfg.NumBig, cfg.NumTiny = 1, 7
		cfg.Rows, cfg.Cols = 2, 4
		cfg.NumBanks = 4
		m := machine.New(cfg)
		rt := wsrt.New(m, v)
		fid := rt.RegisterFunc("bench", 512)
		n := 1024
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *wsrt.Ctx) {
			c.ParallelFor(fid, 0, n, 16, func(cc *wsrt.Ctx, j int) {
				cc.Compute(40)
				cc.Store(arr+mem.Addr(j*8), uint64(j))
			})
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Kernel.Now()), "sim_cycles/op")
	}
}
