package fault

import (
	"strings"
	"testing"

	"bigtiny/internal/sim"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if d := in.NoCDelay(100); d != 0 {
		t.Errorf("nil NoCDelay = %d", d)
	}
	if in.ULIForceNack(100) {
		t.Error("nil ULIForceNack = true")
	}
	if d := in.ULIDelay(100); d != 0 {
		t.Errorf("nil ULIDelay = %d", d)
	}
	if occ, extra := in.DRAMAccess(100, 32); occ != 32 || extra != 0 {
		t.Errorf("nil DRAMAccess = (%d, %d)", occ, extra)
	}
	if s := in.CPUStall(0, 50); s != 0 {
		t.Errorf("nil CPUStall = %d", s)
	}
	if in.CacheEvictTick() {
		t.Error("nil CacheEvictTick = true")
	}
	if in.Total() != 0 || in.Count(NoCDelay) != 0 {
		t.Error("nil injector counted faults")
	}
	in.Fired(CacheEvict) // must not panic
	if in.Summary() == "" {
		t.Error("nil Summary empty")
	}
}

func TestZeroScenarioInjectsNothing(t *testing.T) {
	sc := Scenario{Name: "zero"}
	if !sc.Zero() {
		t.Fatal("zero scenario not Zero()")
	}
	in := NewInjector(sc, 7)
	for now := sim.Time(0); now < 10_000; now += 37 {
		if in.NoCDelay(now) != 0 || in.ULIForceNack(now) || in.ULIDelay(now) != 0 {
			t.Fatalf("zero scenario injected at %d", now)
		}
		if occ, extra := in.DRAMAccess(now, 32); occ != 32 || extra != 0 {
			t.Fatalf("zero scenario perturbed DRAM at %d", now)
		}
		if in.CPUStall(0, 100) != 0 || in.CacheEvictTick() {
			t.Fatalf("zero scenario stalled/evicted at %d", now)
		}
	}
	if in.Total() != 0 {
		t.Fatalf("zero scenario counted %d faults", in.Total())
	}
}

// Decisions must be identical for identical seeds and diverge (in the
// aggregate) for different seeds.
func TestSeedDeterminism(t *testing.T) {
	sc, err := Lookup("chaos-all")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64) []sim.Time {
		in := NewInjector(sc, seed)
		var out []sim.Time
		for now := sim.Time(0); now < 200_000; now += 113 {
			out = append(out, in.NoCDelay(now), in.ULIDelay(now))
			occ, extra := in.DRAMAccess(now, 32)
			out = append(out, occ, extra)
			if in.ULIForceNack(now) {
				out = append(out, 1)
			}
		}
		return out
	}
	a, b := draw(42), draw(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different draw counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestWindowedFaults(t *testing.T) {
	sc := Scenario{
		NoCBurstPeriod: 1000, NoCBurstLen: 100, NoCBurstDelay: 12,
		DRAMThrottlePeriod: 1000, DRAMThrottleLen: 100, DRAMThrottleFactor: 8,
	}
	in := NewInjector(sc, 1)
	if d := in.NoCDelay(50); d != 12 {
		t.Errorf("in-burst delay = %d, want 12", d)
	}
	if d := in.NoCDelay(500); d != 0 {
		t.Errorf("out-of-burst delay = %d, want 0", d)
	}
	if occ, _ := in.DRAMAccess(1050, 32); occ != 256 {
		t.Errorf("throttled occupancy = %d, want 256", occ)
	}
	if occ, _ := in.DRAMAccess(1500, 32); occ != 32 {
		t.Errorf("unthrottled occupancy = %d, want 32", occ)
	}
	if in.Count(NoCDelay) != 1 || in.Count(DRAMThrottle) != 1 {
		t.Errorf("counts: %s", in.Summary())
	}
}

func TestStragglerSelection(t *testing.T) {
	sc := Scenario{StragglerEvery: 3, StragglerFactor: 3}
	in := NewInjector(sc, 1)
	if s := in.CPUStall(-1, 100); s != 0 {
		t.Errorf("big core stalled %d", s)
	}
	if s := in.CPUStall(0, 100); s != 200 {
		t.Errorf("straggler lane 0 stall = %d, want 200", s)
	}
	if s := in.CPUStall(1, 100); s != 0 {
		t.Errorf("non-straggler lane 1 stall = %d, want 0", s)
	}
	if s := in.CPUStall(3, 100); s != 200 {
		t.Errorf("straggler lane 3 stall = %d, want 200", s)
	}
}

func TestEvictCadence(t *testing.T) {
	in := NewInjector(Scenario{EvictEvery: 4}, 1)
	var fired int
	for i := 0; i < 16; i++ {
		if in.CacheEvictTick() {
			fired++
			in.Fired(CacheEvict)
		}
	}
	if fired != 4 {
		t.Errorf("fired %d of 16, want 4", fired)
	}
	if in.Count(CacheEvict) != 4 {
		t.Errorf("count = %d, want 4", in.Count(CacheEvict))
	}
}

func TestCatalogue(t *testing.T) {
	names := Names()
	for _, want := range []string{"none", "noc-jitter", "uli-nack-storm", "dram-spike", "tiny-straggler", "cache-pressure", "chaos-all"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("catalogue missing %q", want)
		}
	}
	seen := make(map[string]bool)
	for _, sc := range Scenarios() {
		if sc.Name != "none" && sc.Zero() {
			t.Errorf("scenario %q injects nothing", sc.Name)
		}
		if sc.Desc == "" {
			t.Errorf("scenario %q has no description", sc.Name)
		}
		// Names must be unique: Lookup resolves by first match, and the
		// chaos sweep and the serving API both key cells by name.
		if seen[sc.Name] {
			t.Errorf("scenario %q registered twice", sc.Name)
		}
		seen[sc.Name] = true
	}
	none, err := Lookup("none")
	if err != nil || !none.Zero() {
		t.Errorf("none scenario: %v, zero=%v", err, none.Zero())
	}
	if _, err := Lookup("nonesuch"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("Lookup(nonesuch) = %v", err)
	}
}

func TestSummaryFormat(t *testing.T) {
	in := NewInjector(Scenario{EvictEvery: 1}, 1)
	if got := in.Summary(); got != "no faults injected" {
		t.Errorf("empty summary = %q", got)
	}
	in.Fired(ULINack)
	in.Fired(ULINack)
	in.Fired(CacheEvict)
	got := in.Summary()
	if !strings.Contains(got, "uli-nack=2") || !strings.Contains(got, "cache-evict=1") {
		t.Errorf("summary = %q", got)
	}
	if in.Total() != 3 {
		t.Errorf("total = %d, want 3", in.Total())
	}
}
