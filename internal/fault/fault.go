// Package fault is a seeded, deterministic fault-injection framework
// for the simulated machine. A Scenario describes *what* can go wrong
// (NoC latency jitter and congestion bursts, forced ULI NACK storms and
// delayed deliveries, DRAM latency spikes and bandwidth throttling,
// straggling tiny cores, artificial L1 capacity pressure); an Injector
// instantiates a scenario with a PRNG seed and is consulted by the
// subsystems at well-defined injection sites.
//
// Determinism: the simulation kernel runs exactly one goroutine at a
// time, so injector decisions are drawn in deterministic event order —
// the same scenario and seed always produce the same injected faults
// and therefore the same final cycle count. Decision methods draw from
// the PRNG only when the corresponding scenario knob is enabled, so a
// zero Scenario (or a nil *Injector) perturbs nothing: cycle counts are
// bit-identical to a run without injection. Faults perturb only
// *timing* and *availability*, never data, so program output must stay
// identical to the fault-free serial reference — the invariance the
// chaos harness (internal/bench, cmd/paperbench chaos) asserts.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"bigtiny/internal/sim"
)

// Site identifies one class of injection point.
type Site int

// Injection sites, one per subsystem hook.
const (
	NoCDelay     Site = iota // extra data-mesh message latency
	ULINack                  // forced NACK of a ULI steal request
	ULIDelay                 // delayed ULI message delivery
	ULIReqDrop               // steal request lost on the ULI mesh
	ULIRespDrop              // steal response lost on the ULI mesh
	CoreOffline              // tiny core fail-stops its scheduling loop
	DRAMSpike                // extra DRAM access latency
	DRAMThrottle             // DRAM bandwidth throttled (longer occupancy)
	CPUStall                 // straggling tiny core (slowed compute)
	CacheEvict               // forced L1 eviction (capacity pressure)
	NumSites
)

var siteNames = [NumSites]string{
	"noc-delay", "uli-nack", "uli-delay", "uli-req-drop", "uli-resp-drop",
	"core-offline", "dram-spike", "dram-throttle", "cpu-stall", "cache-evict",
}

// String returns the site's display name.
func (s Site) String() string {
	if s < 0 || s >= NumSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// Scenario describes a named fault workload. The zero value injects
// nothing. All probabilities are per injection opportunity; all
// period/length pairs describe repeating windows in simulated time
// (the fault is armed while now%Period < Len).
type Scenario struct {
	Name string
	Desc string

	// NoC: per-message latency jitter plus periodic congestion bursts
	// on the data mesh.
	NoCJitterProb  float64  // probability a message is jittered
	NoCJitterMax   sim.Time // jitter is uniform in [1, NoCJitterMax]
	NoCBurstPeriod sim.Time // congestion-burst window period (0 = off)
	NoCBurstLen    sim.Time // burst window length
	NoCBurstDelay  sim.Time // extra latency per message inside a burst

	// ULI: forced NACKs (storms) and delayed deliveries.
	ULINackProb    float64  // probability an arriving request is NACKed
	ULIStormPeriod sim.Time // NACK storm window period (0 = always armed)
	ULIStormLen    sim.Time // storm window length
	ULIDelayProb   float64  // probability a ULI message is delayed
	ULIDelayMax    sim.Time // delay is uniform in [1, ULIDelayMax]

	// Lossy ULI: steal-path messages vanish on the mesh. A nonzero drop
	// probability arms the runtime's steal-timeout/retry machinery (see
	// Lossy).
	ULIReqDropProb  float64 // probability a steal request is dropped
	ULIRespDropProb float64 // probability a steal response (ACK or NACK) is dropped

	// Core offlining: at OfflineAt, the OfflineLane-th tiny core
	// fail-stops its scheduling loop forever (0 = off). Big cores never
	// go offline — core 0 runs the root task.
	OfflineAt   sim.Time
	OfflineLane int

	// DRAM: latency spikes and periodic bandwidth throttling.
	DRAMSpikeProb      float64  // probability an access takes a spike
	DRAMSpikeLat       sim.Time // extra latency per spiked access
	DRAMThrottlePeriod sim.Time // throttle window period (0 = off)
	DRAMThrottleLen    sim.Time // throttle window length
	DRAMThrottleFactor int      // service-time multiplier inside a window

	// CPU: every StragglerEvery-th tiny core runs compute
	// StragglerFactor times slower (0 = off). Big cores never straggle.
	StragglerEvery  int
	StragglerFactor int

	// Cache: every EvictEvery-th L1 access force-evicts the LRU line of
	// the accessed set first (0 = off), modelling capacity pressure.
	EvictEvery int
}

// Zero reports whether the scenario injects nothing.
func (sc *Scenario) Zero() bool {
	return sc.NoCJitterProb == 0 && sc.NoCBurstPeriod == 0 &&
		sc.ULINackProb == 0 && sc.ULIDelayProb == 0 &&
		sc.DRAMSpikeProb == 0 && sc.DRAMThrottlePeriod == 0 &&
		sc.StragglerEvery == 0 && sc.EvictEvery == 0 &&
		!sc.Lossy()
}

// Lossy reports whether the scenario can lose steal-path messages or
// offline a core — the fault classes that require the runtime's
// recovery machinery (steal timeouts, retry/backoff, quarantine,
// reclaim). The machine arms the ULI steal timeout only for lossy
// scenarios, so fault-free runs schedule zero timers.
func (sc *Scenario) Lossy() bool {
	return sc.ULIReqDropProb > 0 || sc.ULIRespDropProb > 0 || sc.OfflineAt > 0
}

// Injector is a scenario bound to one machine: it holds the PRNG and
// the per-site fault counters. All decision methods are safe on a nil
// receiver (they inject nothing), so subsystems can call them
// unconditionally.
type Injector struct {
	sc     Scenario
	rng    *sim.Rand
	seed   uint64
	counts [NumSites]uint64

	// accessTick counts L1 accesses for the EvictEvery cadence.
	accessTick uint64
}

// NewInjector binds sc to a fresh PRNG seeded with seed.
func NewInjector(sc Scenario, seed uint64) *Injector {
	return &Injector{sc: sc, rng: sim.NewRand(seed), seed: seed}
}

// Scenario returns the bound scenario.
func (in *Injector) Scenario() Scenario {
	if in == nil {
		return Scenario{}
	}
	return in.sc
}

// Seed returns the PRNG seed the injector was built with.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Count returns the number of faults injected at site s.
func (in *Injector) Count(s Site) uint64 {
	if in == nil {
		return 0
	}
	return in.counts[s]
}

// Total returns the number of faults injected across all sites.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// Summary formats the nonzero per-site counts.
func (in *Injector) Summary() string {
	if in == nil {
		return "no injector"
	}
	var parts []string
	for s := Site(0); s < NumSites; s++ {
		if in.counts[s] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s, in.counts[s]))
		}
	}
	if len(parts) == 0 {
		return "no faults injected"
	}
	return strings.Join(parts, " ")
}

// Fired records an injection decided elsewhere (e.g. the L1 counts a
// forced eviction only when the set actually held a line to evict).
func (in *Injector) Fired(s Site) {
	if in == nil {
		return
	}
	in.counts[s]++
}

// inWindow reports whether now falls inside the repeating window.
func inWindow(now, period, length sim.Time) bool {
	return period > 0 && now%period < length
}

// NoCDelay returns extra latency to add to a data-mesh message sent at
// now.
func (in *Injector) NoCDelay(now sim.Time) sim.Time {
	if in == nil {
		return 0
	}
	var d sim.Time
	if in.sc.NoCJitterProb > 0 && in.rng.Float64() < in.sc.NoCJitterProb {
		d += 1 + sim.Time(in.rng.Intn(int(in.sc.NoCJitterMax)))
		in.counts[NoCDelay]++
	}
	if inWindow(now, in.sc.NoCBurstPeriod, in.sc.NoCBurstLen) {
		d += in.sc.NoCBurstDelay
		in.counts[NoCDelay]++
	}
	return d
}

// ULIForceNack reports whether a ULI request arriving at now is
// force-refused (a NACK storm).
func (in *Injector) ULIForceNack(now sim.Time) bool {
	if in == nil || in.sc.ULINackProb == 0 {
		return false
	}
	if in.sc.ULIStormPeriod > 0 && !inWindow(now, in.sc.ULIStormPeriod, in.sc.ULIStormLen) {
		return false
	}
	if in.rng.Float64() < in.sc.ULINackProb {
		in.counts[ULINack]++
		return true
	}
	return false
}

// ULIDelay returns extra delivery latency for a ULI message arriving at
// now.
func (in *Injector) ULIDelay(now sim.Time) sim.Time {
	if in == nil || in.sc.ULIDelayProb == 0 {
		return 0
	}
	if in.rng.Float64() < in.sc.ULIDelayProb {
		in.counts[ULIDelay]++
		return 1 + sim.Time(in.rng.Intn(int(in.sc.ULIDelayMax)))
	}
	return 0
}

// ULIDropReq reports whether a steal request is lost on the ULI mesh.
func (in *Injector) ULIDropReq() bool {
	if in == nil || in.sc.ULIReqDropProb == 0 {
		return false
	}
	if in.rng.Float64() < in.sc.ULIReqDropProb {
		in.counts[ULIReqDrop]++
		return true
	}
	return false
}

// ULIDropResp reports whether a steal response (ACK or NACK) is lost
// on the ULI mesh.
func (in *Injector) ULIDropResp() bool {
	if in == nil || in.sc.ULIRespDropProb == 0 {
		return false
	}
	if in.rng.Float64() < in.sc.ULIRespDropProb {
		in.counts[ULIRespDrop]++
		return true
	}
	return false
}

// CoreOffline reports whether the lane-th tiny core (lane < 0 marks a
// big core) has fail-stopped by now. It is a pure predicate — the core
// latches the transition itself and records it with Fired(CoreOffline)
// exactly once.
func (in *Injector) CoreOffline(lane int, now sim.Time) bool {
	if in == nil || lane < 0 || in.sc.OfflineAt == 0 {
		return false
	}
	return lane == in.sc.OfflineLane && now >= in.sc.OfflineAt
}

// DRAMAccess perturbs one DRAM access: it returns the (possibly
// throttled) bandwidth occupancy and any extra spike latency.
func (in *Injector) DRAMAccess(now, service sim.Time) (occupancy, extra sim.Time) {
	if in == nil {
		return service, 0
	}
	occupancy = service
	if in.sc.DRAMThrottleFactor > 1 &&
		inWindow(now, in.sc.DRAMThrottlePeriod, in.sc.DRAMThrottleLen) {
		occupancy = service * sim.Time(in.sc.DRAMThrottleFactor)
		in.counts[DRAMThrottle]++
	}
	if in.sc.DRAMSpikeProb > 0 && in.rng.Float64() < in.sc.DRAMSpikeProb {
		extra = in.sc.DRAMSpikeLat
		in.counts[DRAMSpike]++
	}
	return occupancy, extra
}

// CPUStall returns extra cycles for a compute burst of the given length
// on the lane-th tiny core (lane < 0 marks a big core; big cores never
// straggle). Deterministic: every StragglerEvery-th tiny core runs
// StragglerFactor times slower.
func (in *Injector) CPUStall(lane, cycles int) int {
	if in == nil || lane < 0 || cycles <= 0 ||
		in.sc.StragglerEvery <= 0 || in.sc.StragglerFactor <= 1 {
		return 0
	}
	if lane%in.sc.StragglerEvery != 0 {
		return 0
	}
	in.counts[CPUStall]++
	return cycles * (in.sc.StragglerFactor - 1)
}

// CacheEvictTick reports whether this L1 access should force-evict a
// line first (every EvictEvery-th access across all L1s). The caller
// records the injection with Fired(CacheEvict) only if the accessed set
// actually held a line.
func (in *Injector) CacheEvictTick() bool {
	if in == nil || in.sc.EvictEvery <= 0 {
		return false
	}
	in.accessTick++
	return in.accessTick%uint64(in.sc.EvictEvery) == 0
}

// --- named scenario catalogue ---

// Scenarios returns the named scenario catalogue.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "none",
			Desc: "no injection (baseline; identical cycles to running without an injector)",
		},
		{
			Name:          "noc-jitter",
			Desc:          "per-message data-mesh latency jitter plus periodic congestion bursts",
			NoCJitterProb: 0.25, NoCJitterMax: 6,
			NoCBurstPeriod: 50_000, NoCBurstLen: 5_000, NoCBurstDelay: 12,
		},
		{
			Name:        "uli-nack-storm",
			Desc:        "periodic windows where most ULI steal requests are force-NACKed, plus delayed deliveries",
			ULINackProb: 0.8, ULIStormPeriod: 20_000, ULIStormLen: 10_000,
			ULIDelayProb: 0.2, ULIDelayMax: 20,
		},
		{
			Name:          "dram-spike",
			Desc:          "random DRAM latency spikes plus periodic bandwidth throttling",
			DRAMSpikeProb: 0.1, DRAMSpikeLat: 300,
			DRAMThrottlePeriod: 100_000, DRAMThrottleLen: 20_000, DRAMThrottleFactor: 8,
		},
		{
			Name:           "tiny-straggler",
			Desc:           "every 3rd tiny core runs compute 3x slower (thermal-throttle model)",
			StragglerEvery: 3, StragglerFactor: 3,
		},
		{
			Name:       "cache-pressure",
			Desc:       "every 32nd L1 access force-evicts the accessed set's LRU line",
			EvictEvery: 32,
		},
		{
			Name:           "lossy-uli",
			Desc:           "10% of steal requests and responses vanish on the ULI mesh, plus delayed deliveries",
			ULIReqDropProb: 0.1, ULIRespDropProb: 0.1,
			ULIDelayProb: 0.1, ULIDelayMax: 10,
		},
		{
			Name:      "core-loss",
			Desc:      "one tiny core fail-stops mid-run; survivors reclaim its queued work",
			OfflineAt: 6_000, OfflineLane: 3,
		},
		{
			Name:          "chaos-all",
			Desc:          "a milder dose of every fault class at once",
			NoCJitterProb: 0.1, NoCJitterMax: 4,
			NoCBurstPeriod: 80_000, NoCBurstLen: 4_000, NoCBurstDelay: 8,
			ULINackProb: 0.3, ULIStormPeriod: 40_000, ULIStormLen: 8_000,
			ULIDelayProb: 0.1, ULIDelayMax: 10,
			DRAMSpikeProb: 0.05, DRAMSpikeLat: 200,
			DRAMThrottlePeriod: 150_000, DRAMThrottleLen: 15_000, DRAMThrottleFactor: 4,
			StragglerEvery: 4, StragglerFactor: 2,
			EvictEvery: 64,
		},
		{
			Name:          "chaos-lossy-all",
			Desc:          "every fault class at once, including steal-path loss and a mid-run core failure",
			NoCJitterProb: 0.1, NoCJitterMax: 4,
			NoCBurstPeriod: 80_000, NoCBurstLen: 4_000, NoCBurstDelay: 8,
			ULINackProb: 0.3, ULIStormPeriod: 40_000, ULIStormLen: 8_000,
			ULIDelayProb: 0.1, ULIDelayMax: 10,
			ULIReqDropProb: 0.05, ULIRespDropProb: 0.05,
			OfflineAt: 50_000, OfflineLane: 2,
			DRAMSpikeProb: 0.05, DRAMSpikeLat: 200,
			DRAMThrottlePeriod: 150_000, DRAMThrottleLen: 15_000, DRAMThrottleFactor: 4,
			StragglerEvery: 4, StragglerFactor: 2,
			EvictEvery: 64,
		},
	}
}

// Lookup returns the named scenario or an error listing valid names.
func Lookup(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("fault: unknown scenario %q (have %v)", name, Names())
}

// Names returns all scenario names, sorted.
func Names() []string {
	var names []string
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return names
}
