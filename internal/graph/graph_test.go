package graph

import (
	"testing"
	"testing/quick"

	"bigtiny/internal/mem"
)

func TestRMatBasicShape(t *testing.T) {
	g := RMat(8, 8, 42)
	if g.N != 256 {
		t.Fatalf("N = %d, want 256", g.N)
	}
	if g.M() < 256*8 { // symmetrized: 2x undirected, minus nothing
		t.Fatalf("M = %d, suspiciously small", g.M())
	}
	if g.M()%2 != 0 {
		t.Fatal("symmetric graph must have even directed edge count")
	}
	if len(g.Offsets) != g.N+1 || int(g.Offsets[g.N]) != g.M() {
		t.Fatal("CSR offsets malformed")
	}
}

func TestRMatDeterministic(t *testing.T) {
	a := RMat(7, 6, 7)
	b := RMat(7, 6, 7)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed, different graphs")
		}
	}
	c := RMat(7, 6, 8)
	if c.M() == a.M() {
		same := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

// Property: for any small R-MAT, the CSR is well formed: offsets
// monotone, adjacency sorted and deduplicated, no self loops, and the
// graph is symmetric with symmetric weights.
func TestRMatWellFormedProperty(t *testing.T) {
	f := func(seed uint64, s, ef uint8) bool {
		scale := int(s%4) + 4   // 16..128 vertices
		factor := int(ef%6) + 2 // 2..7
		g := RMat(scale, factor, seed)
		for v := 0; v < g.N; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				return false
			}
			adj := g.Neighbors(v)
			for i, u := range adj {
				if int(u) == v {
					return false // self loop
				}
				if i > 0 && adj[i-1] >= u {
					return false // unsorted or duplicate
				}
				// Symmetry: u must list v with the same weight.
				found := false
				for j := g.Offsets[u]; j < g.Offsets[u+1]; j++ {
					if int(g.Edges[j]) == v {
						found = g.Weights[j] == g.Weights[g.Offsets[v]+int32(i)]
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIntoRoundTrip(t *testing.T) {
	g := RMat(6, 4, 3)
	m := mem.New()
	gm := LoadInto(m, g)
	if gm.N != g.N || gm.M != g.M() {
		t.Fatal("sizes wrong")
	}
	for i := 0; i <= g.N; i++ {
		if m.ReadWord(gm.OffsetAddr(i)) != uint64(g.Offsets[i]) {
			t.Fatalf("offset %d mismatch", i)
		}
	}
	for i := 0; i < g.M(); i++ {
		if m.ReadWord(gm.EdgeAddr(i)) != uint64(g.Edges[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
		if m.ReadWord(gm.WeightAddr(i)) != uint64(g.Weights[i]) {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := RMat(6, 4, 3)
	total := 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		if d != len(g.Neighbors(v)) {
			t.Fatal("degree/neighbors mismatch")
		}
		total += d
	}
	if total != g.M() {
		t.Fatalf("degree sum %d != M %d", total, g.M())
	}
}
