// Package graph provides the Ligra-style substrate the paper's eight
// graph kernels run on: a compressed-sparse-row representation, a
// deterministic R-MAT generator (the paper's rMat_* inputs), and
// loaders that place the graph into simulated memory so kernel accesses
// exercise the modelled cache hierarchy.
package graph

import (
	"sort"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// Graph is an undirected graph in CSR form (Go-side copy, used for
// building, for native verification, and as the source for LoadInto).
type Graph struct {
	N       int      // vertex count
	Offsets []int32  // length N+1
	Edges   []int32  // length M (symmetrized, deduplicated, sorted per vertex)
	Weights []uint32 // length M, deterministic per edge (for Bellman-Ford)
}

// M returns the directed edge count (2x undirected edges).
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns vertex v's degree.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns v's adjacency slice (sorted ascending).
func (g *Graph) Neighbors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// RMat generates a deterministic R-MAT graph with n = 2^scale vertices
// and approximately edgeFactor*n undirected edges, using the standard
// Kronecker parameters (a,b,c,d) = (0.57, 0.19, 0.19, 0.05). Self loops
// and duplicates are removed and the graph is symmetrized, matching how
// Ligra's rMat inputs are prepared.
func RMat(scale int, edgeFactor int, seed uint64) *Graph {
	n := 1 << scale
	rng := sim.NewRand(seed)
	type edge struct{ u, v int32 }
	seen := make(map[uint64]bool)
	var edges []edge
	target := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	for len(edges) < target {
		u, v := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no change
			case r < a+b:
				v += bit
			case r < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, edge{int32(u), int32(v)})
	}
	// Build symmetric CSR.
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		g.Offsets[i+1] = g.Offsets[i] + deg[i]
	}
	g.Edges = make([]int32, g.Offsets[n])
	fill := make([]int32, n)
	for _, e := range edges {
		g.Edges[g.Offsets[e.u]+fill[e.u]] = e.v
		fill[e.u]++
		g.Edges[g.Offsets[e.v]+fill[e.v]] = e.u
		fill[e.v]++
	}
	for v := 0; v < n; v++ {
		adj := g.Edges[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	// Deterministic positive edge weights in [1, 64], symmetric: both
	// directions of an undirected edge get the same weight.
	g.Weights = make([]uint32, len(g.Edges))
	for v := 0; v < n; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			u := int(g.Edges[i])
			lo, hi := v, u
			if lo > hi {
				lo, hi = hi, lo
			}
			h := uint64(lo)*2654435761 ^ uint64(hi)*40503
			h ^= h >> 13
			g.Weights[i] = uint32(h%64) + 1
		}
	}
	return g
}

// Empty returns a graph of n isolated vertices (no edges). Used by the
// degenerate-input robustness tests; RMat cannot generate it (its edge
// loop never terminates when every candidate is a self loop).
func Empty(n int) *Graph {
	return &Graph{N: n, Offsets: make([]int32, n+1)}
}

// Path returns the n-vertex path graph 0-1-...-(n-1), symmetrized,
// with the same deterministic weight rule as RMat. The two-vertex path
// is the smallest graph with an edge.
func Path(n int) *Graph {
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		deg := int32(2)
		if v == 0 || v == n-1 {
			deg = 1
		}
		if n == 1 {
			deg = 0
		}
		g.Offsets[v+1] = g.Offsets[v] + deg
	}
	g.Edges = make([]int32, g.Offsets[n])
	g.Weights = make([]uint32, g.Offsets[n])
	fill := make([]int32, n)
	addEdge := func(u, v int) {
		i := g.Offsets[u] + fill[u]
		fill[u]++
		g.Edges[i] = int32(v)
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		h := uint64(lo)*2654435761 ^ uint64(hi)*40503
		h ^= h >> 13
		g.Weights[i] = uint32(h%64) + 1
	}
	for v := 0; v+1 < n; v++ {
		addEdge(v, v+1)
		addEdge(v+1, v)
	}
	return g
}

// Mem is a graph loaded into simulated memory: the kernels traverse it
// through the simulated cache hierarchy.
type Mem struct {
	N, M    int
	Offsets mem.Addr // N+1 words
	Edges   mem.Addr // M words
	Weights mem.Addr // M words
}

// LoadInto copies g into simulated memory (words; one CSR entry per
// word, which is what a 64-bit port of Ligra would do).
func LoadInto(m *mem.Memory, g *Graph) *Mem {
	gm := &Mem{
		N: g.N, M: g.M(),
		Offsets: m.AllocWords(g.N + 1),
		Edges:   m.AllocWords(g.M()),
		Weights: m.AllocWords(g.M()),
	}
	for i, o := range g.Offsets {
		m.WriteWord(gm.Offsets+mem.Addr(i*8), uint64(o))
	}
	for i, e := range g.Edges {
		m.WriteWord(gm.Edges+mem.Addr(i*8), uint64(e))
		m.WriteWord(gm.Weights+mem.Addr(i*8), uint64(g.Weights[i]))
	}
	return gm
}

// OffsetAddr returns the address of Offsets[i].
func (gm *Mem) OffsetAddr(i int) mem.Addr { return gm.Offsets + mem.Addr(i*8) }

// EdgeAddr returns the address of Edges[i].
func (gm *Mem) EdgeAddr(i int) mem.Addr { return gm.Edges + mem.Addr(i*8) }

// WeightAddr returns the address of Weights[i].
func (gm *Mem) WeightAddr(i int) mem.Addr { return gm.Weights + mem.Addr(i*8) }
