// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a time-ordered event queue. Simulated hardware threads
// (Procs) run ordinary Go code in goroutines, but control is handed back
// and forth with strict channel handshakes so that exactly one goroutine
// — either the kernel or a single Proc — executes at any moment. All
// simulator state can therefore be mutated without locks, and a given
// seed and workload always produce the same cycle counts.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Time is simulation time measured in clock cycles.
type Time uint64

// Forever is a time later than any reachable simulation time.
const Forever = Time(^uint64(0))

// event is a scheduled callback. Events at equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventHeap
	procs []*Proc

	// maxTime aborts runaway simulations (e.g. a livelocked runtime).
	maxTime Time
	// err records a crash in simulated software (a proc panic); Run
	// stops and returns it, modelling a machine crash.
	err error

	// dumpHooks are extra diagnostic writers (registered by higher
	// layers: ULI fabric state, runtime deque occupancy, ...) appended
	// to DumpState output and watchdog errors.
	dumpHooks []func(io.Writer)
}

// NewKernel returns an empty kernel positioned at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{maxTime: Forever}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// SetDeadline makes Run fail once simulated time exceeds t. Useful as a
// watchdog against livelocked simulated software.
func (k *Kernel) SetDeadline(t Time) { k.maxTime = t }

// fail records a simulated-software crash.
func (k *Kernel) fail(err error) {
	if k.err == nil {
		k.err = err
	}
}

// At schedules fn to run at time t. Scheduling in the past is an error
// in the simulator itself, so it panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Timer is a cancellable one-shot event, the building block for
// simulated-cycle timeouts (e.g. the ULI steal-request timeout). A
// stopped timer's queue entry is skipped by Run without advancing
// simulated time, so arming-and-cancelling timers is observationally
// free: cycle counts are bit-identical to a run that never armed them.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the cancellation was in
// time (false if the callback already ran or Stop was already called).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Active reports whether the timer is still armed (not fired, not
// stopped).
func (t *Timer) Active() bool { return t != nil && t.ev != nil && t.ev.fn != nil }

// TimerAt schedules fn at time t and returns a handle that can cancel
// it.
func (k *Kernel) TimerAt(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: timer at %d before now %d", t, k.now))
	}
	k.seq++
	e := &event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return &Timer{ev: e}
}

// TimerAfter schedules fn d cycles from now, cancellable.
func (k *Kernel) TimerAfter(d Time, fn func()) *Timer { return k.TimerAt(k.now+d, fn) }

// Run processes events until the queue is empty or stop returns true.
// stop is checked between events and may be nil. It returns an error if
// the deadline was exceeded or if Procs remain unfinished when the event
// queue drains (a simulated-software deadlock).
func (k *Kernel) Run(stop func() bool) error {
	for k.queue.Len() > 0 {
		if k.err != nil {
			return k.err
		}
		if stop != nil && stop() {
			return nil
		}
		e := heap.Pop(&k.queue).(*event)
		if e.fn == nil {
			// A stopped Timer: skip without advancing time, so cancelled
			// timeouts leave no trace in the cycle count.
			continue
		}
		if e.at > k.maxTime {
			return k.watchdogErr(fmt.Sprintf(
				"deadline %d cycles exceeded (next event at %d)", k.maxTime, e.at))
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil // a fired timer cannot be stopped retroactively
		fn()
	}
	if k.err != nil {
		return k.err
	}
	for _, p := range k.procs {
		if !p.finished {
			return k.watchdogErr("deadlock: event queue empty with unfinished procs")
		}
	}
	return nil
}

// AddDumpHook registers a diagnostic writer invoked by DumpState after
// the kernel's own report. Higher layers use it to append subsystem
// state (ULI units, work-stealing deques) to watchdog errors.
func (k *Kernel) AddDumpHook(fn func(io.Writer)) {
	k.dumpHooks = append(k.dumpHooks, fn)
}

// DumpState writes a diagnostic snapshot: current cycle, event-queue
// size, per-proc progress (every unfinished proc with the cycle it last
// yielded at), then any registered dump hooks.
func (k *Kernel) DumpState(w io.Writer) {
	finished := 0
	for _, p := range k.procs {
		if p.finished {
			finished++
		}
	}
	fmt.Fprintf(w, "kernel: cycle=%d queued-events=%d procs=%d/%d finished\n",
		k.now, k.queue.Len(), finished, len(k.procs))
	for _, p := range k.procs {
		if p.finished {
			continue
		}
		state := "blocked"
		if !p.started {
			state = "never started"
		}
		fmt.Fprintf(w, "  proc %q: %s since cycle %d\n", p.name, state, p.blockedSince)
	}
	for _, fn := range k.dumpHooks {
		fn(w)
	}
}

// watchdogErr builds the watchdog failure error: the cause followed by
// the full DumpState report, so a deadline or deadlock names the stuck
// procs and whatever subsystem state the machine layer registered.
func (k *Kernel) watchdogErr(cause string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s\n", cause)
	k.DumpState(&b)
	return errors.New(strings.TrimRight(b.String(), "\n"))
}
