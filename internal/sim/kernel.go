// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a time-ordered event queue. Simulated hardware threads
// (Procs) run ordinary Go code in goroutines, but control is handed back
// and forth with strict channel handshakes so that exactly one goroutine
// — either the kernel or a single Proc — executes at any moment. All
// simulator state can therefore be mutated without locks, and a given
// seed and workload always produce the same cycle counts.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulation time measured in clock cycles.
type Time uint64

// Forever is a time later than any reachable simulation time.
const Forever = Time(^uint64(0))

// event is a scheduled callback. Events at equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventHeap
	procs []*Proc

	// maxTime aborts runaway simulations (e.g. a livelocked runtime).
	maxTime Time
	// err records a crash in simulated software (a proc panic); Run
	// stops and returns it, modelling a machine crash.
	err error
}

// NewKernel returns an empty kernel positioned at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{maxTime: Forever}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// SetDeadline makes Run fail once simulated time exceeds t. Useful as a
// watchdog against livelocked simulated software.
func (k *Kernel) SetDeadline(t Time) { k.maxTime = t }

// fail records a simulated-software crash.
func (k *Kernel) fail(err error) {
	if k.err == nil {
		k.err = err
	}
}

// At schedules fn to run at time t. Scheduling in the past is an error
// in the simulator itself, so it panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Run processes events until the queue is empty or stop returns true.
// stop is checked between events and may be nil. It returns an error if
// the deadline was exceeded or if Procs remain unfinished when the event
// queue drains (a simulated-software deadlock).
func (k *Kernel) Run(stop func() bool) error {
	for k.queue.Len() > 0 {
		if k.err != nil {
			return k.err
		}
		if stop != nil && stop() {
			return nil
		}
		e := heap.Pop(&k.queue).(*event)
		if e.at > k.maxTime {
			return fmt.Errorf("sim: deadline %d cycles exceeded (now %d)", k.maxTime, e.at)
		}
		k.now = e.at
		e.fn()
	}
	if k.err != nil {
		return k.err
	}
	for _, p := range k.procs {
		if !p.finished {
			return fmt.Errorf("sim: deadlock: proc %q blocked at cycle %d with empty event queue", p.name, k.now)
		}
	}
	return nil
}
