// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a time-ordered event queue. Simulated hardware threads
// (Procs) run ordinary Go code in goroutines, but a single control token
// — passed by direct channel handoff from whichever goroutine yields to
// whichever runs next — guarantees that exactly one goroutine executes
// at any moment. All simulator state can therefore be mutated without
// locks, and a given seed and workload always produce the same cycle
// counts.
//
// The queue is built for host speed without giving up determinism: heap
// entries are small values (no per-event heap allocation, no interface
// boxing), callbacks live in a slab recycled through a free list, and
// Timer handles carry a generation stamp so Stop on a recycled slot is
// detected instead of corrupting an unrelated event. See DESIGN.md §12.
package sim

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// Time is simulation time measured in clock cycles.
type Time uint64

// Forever is a time later than any reachable simulation time.
const Forever = Time(^uint64(0))

// KernelParanoid, when set before NewKernel, disables the WaitUntil
// fast path (see Proc.WaitUntil): every timed wait goes through a real
// queue event and a goroutine handoff, exactly as the pre-fast-path
// kernel behaved. The two modes must produce bit-identical cycle
// counts; equivalence tests flip this to prove it. It is read once at
// NewKernel time, so flip it only between simulations.
var KernelParanoid bool

// eventRef is one heap entry: the firing time, a sequence number that
// breaks same-time ties in scheduling order (determinism), the index
// of the slot holding the callback, and the event shard it is queued
// on (always 0 on an unsharded kernel). Refs are plain values — a heap
// is a []eventRef and sifting moves 24-byte records (the shard tag
// lives in what used to be padding), never pointers the GC has to
// trace.
type eventRef struct {
	at    Time
	seq   uint64
	idx   int32
	shard int16
}

// eventSlot holds a scheduled event: either a plain callback (fn) or a
// proc resumption (proc). The distinction lets the dispatcher hand
// control directly to a resuming proc instead of calling through an
// opaque closure. Slots are recycled through a free list; gen
// increments on every free, so a stale Timer handle (slot fired, was
// compacted, or got reused) can be recognized by generation mismatch.
// A slot with neither fn nor proc is a tombstone (stopped Timer).
type eventSlot struct {
	fn   func()
	proc *Proc
	gen  uint32
	next int32 // free-list link; meaningful only while free
	// shard mirrors the queue the slot's ref lives on, so Timer.Stop on
	// a sharded kernel can credit the tombstone to the right queue.
	shard int16
}

// Kernel is the discrete-event engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventHeap
	slots []eventSlot
	free  int32 // head of the slot free list, -1 when empty
	// tombstones counts cancelled timers still occupying queue entries.
	// They are skipped for free at pop time, but a workload that arms
	// and cancels timers much faster than events fire would grow the
	// queue without bound, so the queue compacts itself when tombstones
	// outnumber half the live events.
	tombstones int
	procs      []*Proc

	// sh holds the event-shard state when Shard was called; nil on a
	// serial kernel, whose hot paths pay only this nil check (see
	// shard.go and DESIGN.md §16).
	sh *shardSet

	// paranoid disables the WaitUntil fast path (see KernelParanoid).
	paranoid bool
	// stop is the active Run's stop predicate, consulted by the
	// WaitUntil fast path so eliding an event cannot elide a stop check
	// that would have fired.
	stop func() bool

	// Host-performance counters (free to maintain, exported for the
	// benchmarking rig): events scheduled, callbacks fired, and timed
	// waits satisfied in place without a queue event.
	scheduled uint64
	fired     uint64
	fastWaits uint64

	// maxTime aborts runaway simulations (e.g. a livelocked runtime).
	maxTime Time
	// intrReason, when non-nil, is an asynchronous abort request (see
	// Interrupt). It is the only kernel field another goroutine may
	// touch while a simulation runs, hence the atomic.
	intrReason atomic.Pointer[string]
	// interruptHit mirrors deadlineHit for interrupts: set by the
	// dispatcher that observed the request, consumed by Run.
	interruptHit bool
	// err records a crash in simulated software (a proc panic); Run
	// stops and returns it, modelling a machine crash.
	err error

	// Direct-handoff dispatch state (see dispatch). done returns the
	// control token to the kernel goroutine when a dispatcher running on
	// a proc goroutine hits a run-level condition; the condition itself
	// travels in the fields below and is consumed by Run.
	done        chan struct{}
	stopHit     bool
	deadlineHit bool
	deadlineAt  Time
	// cbPanic carries a panic out of an event callback (or a
	// resume-after-finish bug) back to Run, which re-panics with it:
	// simulator bugs stay loud no matter which goroutine held the token
	// when they fired.
	cbPanic any

	// dumpHooks are extra diagnostic writers (registered by higher
	// layers: ULI fabric state, runtime deque occupancy, ...) appended
	// to DumpState output and watchdog errors.
	dumpHooks []func(io.Writer)
}

// NewKernel returns an empty kernel positioned at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{
		maxTime:  Forever,
		free:     -1,
		paranoid: KernelParanoid,
		done:     make(chan struct{}),
	}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// SetDeadline makes Run fail once simulated time exceeds t. Useful as a
// watchdog against livelocked simulated software.
func (k *Kernel) SetDeadline(t Time) { k.maxTime = t }

// SetParanoid toggles the WaitUntil fast path on an existing kernel
// (see KernelParanoid).
func (k *Kernel) SetParanoid(on bool) { k.paranoid = on }

// Interrupt requests an asynchronous abort of the running simulation:
// the next dispatch (or WaitUntil fast path) observes the request and
// Run returns a watchdog error carrying reason plus the full machine
// dump, exactly like a deadline. It is the one kernel entry point that
// is safe to call from another goroutine — a serving layer uses it to
// cancel an in-flight job on a wall-clock timeout or a shutdown drain.
// The first reason wins; later calls are no-ops.
func (k *Kernel) Interrupt(reason string) {
	k.intrReason.CompareAndSwap(nil, &reason)
}

// Scheduled returns the number of events scheduled so far.
func (k *Kernel) Scheduled() uint64 { return k.scheduled }

// Fired returns the number of event callbacks that have run.
func (k *Kernel) Fired() uint64 { return k.fired }

// FastWaits returns the number of timed waits satisfied in place by
// the WaitUntil fast path (no event, no goroutine switch).
func (k *Kernel) FastWaits() uint64 { return k.fastWaits }

// fail records a simulated-software crash.
func (k *Kernel) fail(err error) {
	if k.err == nil {
		k.err = err
	}
}

// refLess orders heap entries by (time, scheduling order).
func refLess(a, b eventRef) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// allocSlot takes a slot off the free list (or grows the slab) and
// installs the event payload — a callback or a proc resumption.
// Returns the slot index and its current generation.
func (k *Kernel) allocSlot(fn func(), p *Proc) (int32, uint32) {
	if k.free >= 0 {
		idx := k.free
		s := &k.slots[idx]
		k.free = s.next
		s.fn = fn
		s.proc = p
		return idx, s.gen
	}
	k.slots = append(k.slots, eventSlot{fn: fn, proc: p})
	return int32(len(k.slots) - 1), 0
}

// freeSlot returns a slot to the free list, bumping its generation so
// outstanding Timer handles to it go stale.
func (k *Kernel) freeSlot(idx int32) {
	s := &k.slots[idx]
	s.fn = nil
	s.proc = nil
	s.gen++
	s.next = k.free
	k.free = idx
}

// eventHeap is a binary min-heap of eventRef values ordered by refLess.
// The serial kernel owns one; a sharded kernel owns one per shard.
type eventHeap []eventRef

// push adds a heap entry (sift-up on the value slice).
func (h *eventHeap) push(ref eventRef) {
	*h = append(*h, ref)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !refLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// popRoot removes and returns the minimum heap entry.
func (h *eventHeap) popRoot() eventRef {
	q := *h
	root := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	q.siftDown(0)
	return root
}

func (q eventHeap) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && refLess(q[r], q[l]) {
			m = r
		}
		if !refLess(q[m], q[i]) {
			return
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
}

// schedule allocates a slot for fn and queues it at time t. On a
// sharded kernel the event lands on the shard of the event currently
// dispatching (a plain callback is machinery of whoever scheduled it);
// message deliveries that belong to a *different* component use
// AtOn/scheduleOn to name the receiving shard explicitly.
func (k *Kernel) schedule(t Time, fn func()) (int32, uint32) {
	var shard int16
	if k.sh != nil {
		shard = k.sh.cur()
	}
	return k.scheduleOn(shard, t, fn)
}

// scheduleOn is schedule with an explicit target shard.
func (k *Kernel) scheduleOn(shard int16, t Time, fn func()) (int32, uint32) {
	k.seq++
	k.scheduled++
	idx, gen := k.allocSlot(fn, nil)
	ref := eventRef{at: t, seq: k.seq, idx: idx, shard: shard}
	if k.sh == nil {
		k.queue.push(ref)
		return idx, gen
	}
	k.slots[idx].shard = shard
	k.sh.enqueue(k, ref)
	return idx, gen
}

// scheduleResume queues proc p to resume at time t. Resumes are tagged
// in the slot (rather than hidden in a closure) so the dispatcher can
// hand the control token straight to p's goroutine. On a sharded
// kernel a resume always lands on the proc's home shard.
func (k *Kernel) scheduleResume(t Time, p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	k.scheduled++
	idx, _ := k.allocSlot(nil, p)
	ref := eventRef{at: t, seq: k.seq, idx: idx, shard: p.shard}
	if k.sh == nil {
		k.queue.push(ref)
		return
	}
	k.slots[idx].shard = p.shard
	k.sh.enqueue(k, ref)
}

// At schedules fn to run at time t. Scheduling in the past is an error
// in the simulator itself, so it panics.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.schedule(t, fn)
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// AtOn schedules fn at time t on an explicit event shard — the entry
// point for cross-shard message delivery (a NoC send, a ULI response):
// the event belongs to the *receiving* component's shard even though
// the sender schedules it. On a serial kernel it is exactly At. A post
// to another shard closer than the kernel's lookahead is counted as a
// lookahead violation (see ShardStats); it cannot perturb results —
// dispatch order is the global (time, seq) order regardless — but it
// flags a latency bound the partitioning relied on as broken.
func (k *Kernel) AtOn(shard int, t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	if k.sh == nil {
		k.schedule(t, fn)
		return
	}
	if shard < 0 || shard >= len(k.sh.queues) {
		panic(fmt.Sprintf("sim: AtOn shard %d out of range [0,%d)", shard, len(k.sh.queues)))
	}
	k.scheduleOn(int16(shard), t, fn)
}

// Timer is a cancellable one-shot event, the building block for
// simulated-cycle timeouts (e.g. the ULI steal-request timeout). A
// stopped timer's queue entry is skipped by Run without advancing
// simulated time, so arming-and-cancelling timers is observationally
// free: cycle counts are bit-identical to a run that never armed them.
//
// The handle names its event by (slot, generation): once the callback
// fires — or a cancelled entry is reclaimed — the slot's generation
// moves on, and a late Stop through the stale handle is a detected
// no-op rather than a cancellation of whatever stranger now occupies
// the recycled slot.
type Timer struct {
	k   *Kernel
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the cancellation was in
// time (false if the callback already ran or Stop was already called).
func (t *Timer) Stop() bool {
	if t == nil || t.k == nil {
		return false
	}
	s := &t.k.slots[t.idx]
	if s.gen != t.gen || s.fn == nil {
		return false
	}
	s.fn = nil
	if sh := t.k.sh; sh != nil {
		sq := &sh.queues[s.shard]
		sq.tombstones++
		t.k.compactQueue(&sq.q, &sq.tombstones)
		// The stop (or the compaction it triggered) may have removed or
		// replaced this shard's cached root; re-seat its leaf in the
		// merge tree. An interior tombstone returns in O(1).
		sh.refreshLeaf(t.k, s.shard)
		return true
	}
	t.k.tombstones++
	t.k.compactQueue(&t.k.queue, &t.k.tombstones)
	return true
}

// Active reports whether the timer is still armed (not fired, not
// stopped).
func (t *Timer) Active() bool {
	if t == nil || t.k == nil {
		return false
	}
	s := &t.k.slots[t.idx]
	return s.gen == t.gen && s.fn != nil
}

// TimerAt schedules fn at time t and returns a handle that can cancel
// it.
func (k *Kernel) TimerAt(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: timer at %d before now %d", t, k.now))
	}
	idx, gen := k.schedule(t, fn)
	return &Timer{k: k, idx: idx, gen: gen}
}

// TimerAfter schedules fn d cycles from now, cancellable.
func (k *Kernel) TimerAfter(d Time, fn func()) *Timer { return k.TimerAt(k.now+d, fn) }

// compactTombstoneFloor keeps tiny queues from compacting constantly;
// below it the lazy pop-time skip is always cheaper.
const compactTombstoneFloor = 32

// compactQueue rebuilds one heap without tombstones once cancelled
// entries outnumber half the live events, bounding queue growth under
// arm/cancel churn (the ULI steal timeout pattern) to O(live events).
// The serial queue and every shard queue compact independently.
func (k *Kernel) compactQueue(q *eventHeap, tombstones *int) {
	if *tombstones < compactTombstoneFloor {
		return
	}
	if live := len(*q) - *tombstones; *tombstones <= live/2 {
		return
	}
	heap := *q
	w := 0
	for _, ref := range heap {
		if s := &k.slots[ref.idx]; s.fn == nil && s.proc == nil {
			k.freeSlot(ref.idx)
			continue
		}
		heap[w] = ref
		w++
	}
	heap = heap[:w]
	*q = heap
	*tombstones = 0
	for i := w/2 - 1; i >= 0; i-- {
		heap.siftDown(i)
	}
}

// QueueLen returns the number of queue entries, including
// not-yet-reclaimed tombstones (diagnostics and tests). On a sharded
// kernel it sums over shard queues.
func (k *Kernel) QueueLen() int {
	if k.sh != nil {
		n := 0
		for i := range k.sh.queues {
			n += len(k.sh.queues[i].q)
		}
		if ex := k.sh.exec; ex != nil {
			n += ex.pending
		}
		return n
	}
	return len(k.queue)
}

// Tombstones returns the number of cancelled entries still queued,
// summed over shard queues on a sharded kernel.
func (k *Kernel) Tombstones() int {
	if k.sh != nil {
		n := 0
		for i := range k.sh.queues {
			n += k.sh.queues[i].tombstones
		}
		return n
	}
	return k.tombstones
}

// peekLive returns the firing time of the earliest live event,
// discarding any tombstones it finds at the root on the way. Tombstone
// reclamation has no observable effect on simulated time, so doing it
// here (from a Proc's wait) is equivalent to doing it in Run.
func (k *Kernel) peekLive() (Time, bool) {
	if k.sh != nil {
		ref, ok := k.sh.peekMin()
		return ref.at, ok
	}
	for len(k.queue) > 0 {
		ref := k.queue[0]
		if s := &k.slots[ref.idx]; s.fn != nil || s.proc != nil {
			return ref.at, true
		}
		k.queue.popRoot()
		k.tombstones--
		k.freeSlot(ref.idx)
	}
	return 0, false
}

// dispatchOutcome says how a dispatch loop ended for its caller.
type dispatchOutcome int

const (
	// dispatchSelf: the dispatching proc popped its own resume — it
	// keeps the token and continues its body with no goroutine switch.
	dispatchSelf dispatchOutcome = iota
	// dispatchHandoff: the token was handed to another proc's goroutine;
	// the caller must park (or exit, if its body has finished).
	dispatchHandoff
	// dispatchStopped: a run-level condition (error, stop predicate,
	// empty queue, deadline, callback panic) returned the token to the
	// kernel goroutine, which consumes the condition in Run.
	dispatchStopped
)

// dispatch is the event loop, runnable from any goroutine that holds
// the control token: the kernel goroutine inside Run (onKernel true),
// a proc yielding in WaitUntil/Block (self = that proc), a proc whose
// body just returned (self nil, onKernel false), or a parallel-executor
// worker that just fired a callback (onWorker = that worker). Exactly
// one goroutine runs it at a time — the token is only ever passed
// through a channel handoff — so it may touch all kernel state
// lock-free.
//
// Running the dispatcher on whichever goroutine just yielded is the
// point: handing control from proc A to proc B costs one channel
// handoff (A→B) instead of two (A→kernel→B), pure callbacks between
// resumes run inline with no switch at all, and a proc that pops its
// own resume just keeps going. Event pop order is identical to a
// kernel-centric loop, so cycle counts are unchanged.
func (k *Kernel) dispatch(self *Proc, onKernel bool, onWorker *execWorker) dispatchOutcome {
	for {
		if k.err != nil || k.cbPanic != nil {
			return k.parkDispatch(onKernel)
		}
		if k.intrReason.Load() != nil {
			k.interruptHit = true
			return k.parkDispatch(onKernel)
		}
		if k.sh == nil {
			if len(k.queue) == 0 {
				return k.parkDispatch(onKernel)
			}
		} else if !k.sh.hasQueued() {
			return k.parkDispatch(onKernel)
		}
		if k.stop != nil && k.stop() {
			k.stopHit = true
			return k.parkDispatch(onKernel)
		}
		var ref eventRef
		if k.sh == nil {
			ref = k.queue.popRoot()
			s := &k.slots[ref.idx]
			if s.proc == nil && s.fn == nil {
				// A stopped Timer: skip without advancing time, so cancelled
				// timeouts leave no trace in the cycle count.
				k.tombstones--
				k.freeSlot(ref.idx)
				continue
			}
		} else {
			var live bool
			if ref, live = k.sh.popMin(k); !live {
				// Only tombstones were queued and popMin reclaimed them
				// all; loop back to the empty check.
				continue
			}
		}
		s := &k.slots[ref.idx]
		p, fn := s.proc, s.fn
		if ref.at > k.maxTime {
			k.deadlineHit, k.deadlineAt = true, ref.at
			return k.parkDispatch(onKernel)
		}
		k.now = ref.at
		// Free before firing: a fired timer cannot be stopped
		// retroactively (its handle's generation is now stale), and the
		// callback may immediately reuse the slot for a new event.
		k.freeSlot(ref.idx)
		k.fired++
		if k.sh != nil {
			k.sh.onFire(ref)
		}
		if p != nil {
			if p.finished {
				k.cbPanic = fmt.Sprintf("sim: resuming finished proc %q", p.name)
				return k.parkDispatch(onKernel)
			}
			if p == self {
				return dispatchSelf
			}
			if !p.started {
				p.started = true
				go p.main()
			}
			p.cont <- struct{}{}
			return dispatchHandoff
		}
		if k.sh != nil && k.sh.exec != nil {
			// Parallel executor: a plain callback belongs to its shard's
			// pool worker. The send carries the token with it; the worker
			// fires the callback and keeps dispatching. A callback whose
			// worker already holds the token runs inline — on a run of
			// same-shard events (the loser tree's fast path) every event
			// after the first costs zero handoffs.
			ex := k.sh.exec
			if w := ex.workerFor(ref.shard); w != onWorker {
				ex.handoffs++
				w.cont <- fn
				return dispatchHandoff
			}
			ex.inline++
		}
		if !k.fire(fn) {
			return k.parkDispatch(onKernel)
		}
	}
}

// fire runs a callback, trapping a panic into cbPanic (re-panicked by
// Run) so a buggy callback fails identically whichever goroutine held
// the token. Reports whether the callback completed.
func (k *Kernel) fire(fn func()) (ok bool) {
	ok = true
	defer func() {
		if r := recover(); r != nil {
			k.cbPanic = r
			ok = false
		}
	}()
	fn()
	return
}

// parkDispatch ends a dispatch on a run-level condition: a dispatcher
// on a proc goroutine signals the kernel goroutine awake; the kernel
// goroutine just returns to Run, which owns the condition handling.
func (k *Kernel) parkDispatch(onKernel bool) dispatchOutcome {
	if !onKernel {
		k.done <- struct{}{}
	}
	return dispatchStopped
}

// Run processes events until the queue is empty or stop returns true.
// stop is checked between events and may be nil. It returns an error if
// the deadline was exceeded or if Procs remain unfinished when the event
// queue drains (a simulated-software deadlock).
func (k *Kernel) Run(stop func() bool) error {
	k.stop = stop
	defer func() { k.stop = nil }()
	if k.sh != nil {
		// Publish the token-owned shard (and executor) counters on every
		// exit path, so ShardStats/ExecStats are exact after Run.
		defer k.sh.publish()
	}
	if k.sh != nil && k.sh.exec != nil {
		// Parallel executor: the pool lives for the duration of this Run.
		// stop runs while Run holds the token, when every worker is
		// parked at its channel receive, so the close/join is race-free.
		k.sh.exec.start()
		defer k.sh.exec.stop()
	}
	for {
		if k.dispatch(nil, true, nil) == dispatchHandoff {
			// The token is circulating among proc goroutines; park until
			// a dispatcher hits a run-level condition.
			<-k.done
		}
		if v := k.cbPanic; v != nil {
			k.cbPanic = nil
			panic(v)
		}
		if k.err != nil {
			return k.err
		}
		if k.stopHit {
			k.stopHit = false
			return nil
		}
		if k.deadlineHit {
			k.deadlineHit = false
			return k.watchdogErr(fmt.Sprintf(
				"deadline %d cycles exceeded (next event at %d)", k.maxTime, k.deadlineAt))
		}
		if k.interruptHit {
			k.interruptHit = false
			reason := *k.intrReason.Swap(nil)
			return k.watchdogErr("interrupted: " + reason)
		}
		if k.QueueLen() == 0 {
			break
		}
	}
	for _, p := range k.procs {
		if !p.finished {
			return k.watchdogErr("deadlock: event queue empty with unfinished procs")
		}
	}
	return nil
}

// AddDumpHook registers a diagnostic writer invoked by DumpState after
// the kernel's own report. Higher layers use it to append subsystem
// state (ULI units, work-stealing deques) to watchdog errors.
func (k *Kernel) AddDumpHook(fn func(io.Writer)) {
	k.dumpHooks = append(k.dumpHooks, fn)
}

// DumpState writes a diagnostic snapshot: current cycle, event-queue
// size, per-proc progress (every unfinished proc with the cycle it last
// yielded at), then any registered dump hooks.
func (k *Kernel) DumpState(w io.Writer) {
	finished := 0
	for _, p := range k.procs {
		if p.finished {
			finished++
		}
	}
	queued, dead := k.QueueLen(), k.Tombstones()
	fmt.Fprintf(w, "kernel: cycle=%d queued-events=%d (%d cancelled) procs=%d/%d finished\n",
		k.now, queued-dead, dead, finished, len(k.procs))
	if k.sh != nil {
		k.sh.dump(w)
	}
	for _, p := range k.procs {
		if p.finished {
			continue
		}
		state := "blocked"
		if !p.started {
			state = "never started"
		}
		fmt.Fprintf(w, "  proc %q: %s since cycle %d\n", p.name, state, p.blockedSince)
	}
	for _, fn := range k.dumpHooks {
		fn(w)
	}
}

// watchdogErr builds the watchdog failure error: the cause followed by
// the full DumpState report, so a deadline or deadlock names the stuck
// procs and whatever subsystem state the machine layer registered.
func (k *Kernel) watchdogErr(cause string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s\n", cause)
	k.DumpState(&b)
	return errors.New(strings.TrimRight(b.String(), "\n"))
}
