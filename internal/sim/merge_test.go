package sim

// Randomized workout for the winner-tree merge layer with a full
// independent invariant oracle. The pop fast path trusts two cached
// facts — the champion's key and the challenger bound — and a bound
// that is ever too HIGH lets popMin return a non-minimal event, which
// downstream looks like a wrong trace or a livelock, not a crash. The
// PR 10 challenger fold had exactly such a hole (after a championship
// change, the new champion's former subtree-mates were missing from
// the fold), caught only at reference scale; this test exists so that
// bug class dies in `go test ./internal/sim` instead.

import (
	"fmt"
	"testing"
)

// checkMerge validates every merge-layer invariant against the ground
// truth in the shard heaps, independently of the incremental
// maintenance under test:
//
//  1. live[s] exactly mirrors len(queues[s].q) > 0, and liveCount
//     counts the live leaves.
//  2. key[s] caches the live root (and is the refInf sentinel on dead
//     and padding leaves), and the packed keyAt/keySeq columns mirror
//     it exactly — the flat scan reads only the columns, so a missed
//     mirror write is silently wrong dispatch order.
//  3. tree mode only: every internal tree node holds the true winner
//     of its match — or, when that winner is dead, any other dead
//     leaf: popMin's all-dead early return ("the tree can wait for the
//     next push") deliberately leaves stale nodes whose leaves all
//     carry refInf, and those lose every future match identically.
//     The flat mode abandons the internal nodes entirely.
//  4. the champion is the global (time, seq) minimum by an O(K) scan.
//  5. the challenger bound is never above any live rival of the
//     champion (conservatively low is fine; high is the killer).
func checkMerge(t *testing.T, ss *shardSet) {
	t.Helper()
	liveCount := 0
	for s := range ss.queues {
		q := ss.queues[s].q
		if ss.live[s] != (len(q) > 0) {
			t.Fatalf("shard %d: live=%v but %d queued", s, ss.live[s], len(q))
		}
		if len(q) > 0 {
			liveCount++
			if ss.key[s] != q[0] {
				t.Fatalf("shard %d: cached key %+v != heap root %+v", s, ss.key[s], q[0])
			}
		} else if ss.key[s] != refInf {
			t.Fatalf("dead shard %d: key %+v, want refInf", s, ss.key[s])
		}
	}
	for s := len(ss.queues); s < int(ss.width); s++ {
		if ss.live[s] || ss.key[s] != refInf {
			t.Fatalf("padding leaf %d: live=%v key=%+v", s, ss.live[s], ss.key[s])
		}
	}
	for s := int32(0); s < ss.width; s++ {
		if ss.keyAt[s] != ss.key[s].at || ss.keySeq[s] != ss.key[s].seq {
			t.Fatalf("leaf %d: packed columns (%d,%d) != key %+v",
				s, ss.keyAt[s], ss.keySeq[s], ss.key[s])
		}
	}
	if liveCount != ss.liveCount {
		t.Fatalf("liveCount %d, want %d", ss.liveCount, liveCount)
	}
	if !ss.flat {
		for i := ss.width - 1; i >= 1; i-- {
			want := ss.winner(i)
			if got := ss.tree[i]; got != want && !(ss.key[want] == refInf && ss.key[got] == refInf) {
				t.Fatalf("tree[%d]=%d, want winner %d", i, got, want)
			}
		}
	}
	w := ss.tree[1]
	for s := range ss.queues {
		if !ss.live[s] {
			continue
		}
		if refLess(ss.key[s], ss.key[w]) {
			t.Fatalf("champion %d key %+v beaten by shard %d key %+v", w, ss.key[w], s, ss.key[s])
		}
		if int32(s) != w && refLess(ss.key[s], ss.chal) {
			t.Fatalf("challenger %+v above rival shard %d key %+v (champion %d)",
				ss.chal, s, ss.key[s], w)
		}
	}
	// The champion-elect may be stale (popMin revalidates it), but it
	// must never name the sitting champion: the O(1) switch would then
	// "switch" to the shard whose root just rose.
	if ss.flat && ss.second >= 0 && ss.second == w {
		t.Fatalf("champion-elect %d is the sitting champion", ss.second)
	}
	// While valid, the third bound must never be above any live root
	// outside {champion, second} (same too-high-is-the-killer argument
	// as chal: a switch promotes it straight into chal), and must never
	// be below chal (the ladder is ordered).
	if ss.flat && ss.thirdOK {
		if refLess(ss.third, ss.chal) {
			t.Fatalf("third %+v below challenger %+v", ss.third, ss.chal)
		}
		for s := range ss.queues {
			if !ss.live[s] || int32(s) == w || int32(s) == ss.second {
				continue
			}
			if refLess(ss.key[s], ss.third) {
				t.Fatalf("third %+v above root of shard %d key %+v (champion %d, second %d)",
					ss.third, s, ss.key[s], w, ss.second)
			}
		}
	}
}

// TestMergeTreeStress drives random schedule / cancel / pop sequences
// through the real kernel paths (scheduleOn, Timer.Stop with its
// compactions, popMin) at several shard counts, including non-powers
// of two (padding leaves) and the maximum width. Every popped event is
// checked against a shadow multiset's true minimum, and the full
// invariant oracle runs after every mutation.
func TestMergeTreeStress(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8, 13, 64} {
		t.Run(fmt.Sprintf("k%d", shards), func(t *testing.T) {
			k := NewKernel()
			k.Shard(shards, 4)
			ss := k.sh

			type entry struct {
				ref eventRef
				tm  *Timer
			}
			var pending []entry
			rng := uint64(0x9e3779b97f4a7c15) ^ uint64(shards)<<32
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			steps := 4000
			if testing.Short() {
				steps = 1000
			}
			popOne := func() {
				ref, ok := ss.popMin(k)
				if len(pending) == 0 {
					if ok {
						t.Fatalf("popMin returned %+v from an empty set", ref)
					}
					return
				}
				if !ok {
					t.Fatalf("popMin empty with %d pending", len(pending))
				}
				mi := 0
				for i := 1; i < len(pending); i++ {
					if refLess(pending[i].ref, pending[mi].ref) {
						mi = i
					}
				}
				if ref != pending[mi].ref {
					t.Fatalf("popMin returned %+v, true min is %+v", ref, pending[mi].ref)
				}
				k.freeSlot(ref.idx)
				pending[mi] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
			}

			for step := 0; step < steps; step++ {
				switch op := next(100); {
				case op < 45: // schedule a cancellable event
					sh := int16(next(shards))
					at := Time(next(64))
					idx, gen := k.scheduleOn(sh, at, func() {})
					ref := eventRef{at: at, seq: k.seq, idx: idx, shard: sh}
					pending = append(pending, entry{ref: ref, tm: &Timer{k: k, idx: idx, gen: gen}})
				case op < 65 && len(pending) > 0: // cancel a random pending event
					i := next(len(pending))
					if !pending[i].tm.Stop() {
						t.Fatalf("Stop of pending %+v reported inactive", pending[i].ref)
					}
					pending[i] = pending[len(pending)-1]
					pending = pending[:len(pending)-1]
				case op < 90: // pop the global minimum
					popOne()
				default: // pop a short run (exercises the O(1) fast path)
					for n := next(6) + 2; n > 0 && len(pending) > 0; n-- {
						popOne()
					}
				}
				checkMerge(t, ss)
			}
			for len(pending) > 0 {
				popOne()
			}
			checkMerge(t, ss)
			if _, ok := ss.popMin(k); ok {
				t.Fatal("popMin non-empty after draining every event")
			}
		})
	}
}
