// Epoch-parallel executor (-shard-exec=parallel): run a sharded
// kernel's event streams on a bounded pool of host worker goroutines.
//
// The executor changes which host goroutine runs an event, never the
// order events run in. The kernel's single control token still serializes
// execution — exactly one goroutine executes simulator code at any
// moment, and it executes the globally (time, seq)-minimum event — so
// every stat, oracle observation, fault-RNG draw, and seq assignment is
// byte-identical to merged execution at any worker count, by
// construction. What the mode buys is affinity and overlap: each shard's
// callbacks run on a fixed worker (consecutive same-worker events run
// inline with zero handoffs — the same run-batching the loser tree's
// challenger cache exploits), cross-shard posts are buffered in
// per-shard outboxes and folded in at the epoch barrier, and
// order-independent side channels (the memory-ordering oracle, see
// internal/oracle.Async) drain on their own goroutines concurrently
// with the token holder. On a single-core host the mode measures its
// own overhead; see DESIGN.md §17 for the determinism argument and the
// shared-state analysis of why free-running shard execution is not
// soundly available in this machine model.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ExecMode selects how a sharded kernel executes its merged event
// stream.
type ExecMode int

const (
	// ExecMerged (the default) dispatches every event from whichever
	// goroutine holds the control token — the PR 9 behavior.
	ExecMerged ExecMode = iota
	// ExecParallel routes each shard's plain callbacks to a fixed host
	// worker goroutine and buffers cross-shard posts in per-shard
	// outboxes applied at the epoch barrier. Byte-identical to
	// ExecMerged; opt in with -shard-exec=parallel.
	ExecParallel
)

// String returns the flag spelling of the mode.
func (m ExecMode) String() string {
	if m == ExecParallel {
		return "parallel"
	}
	return "merged"
}

// ParseExecMode parses a -shard-exec flag value. The empty string and
// "merged" select ExecMerged.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "merged":
		return ExecMerged, nil
	case "parallel":
		return ExecParallel, nil
	}
	return ExecMerged, fmt.Errorf("unknown shard-exec mode %q (merged or parallel)", s)
}

// execWorker is one pool goroutine. Its channel carries (token +
// callback) in a single send: receiving fn is receiving the control
// token, with the obligation to fire fn and then keep dispatching.
type execWorker struct {
	cont chan func()
}

// execState is the parallel executor: the worker pool, the shard→worker
// map, and the per-source-shard outboxes for deferred cross-shard
// posts. All fields except the atomic counters are touched only by the
// goroutine holding the control token.
type execState struct {
	k       *Kernel
	ss      *shardSet
	workers []*execWorker
	// workerOf maps shard → worker index: contiguous blocks, so the
	// machine layer's contiguous core→shard partition keeps neighboring
	// tiles on one worker.
	workerOf []int32
	// outbox[s] buffers cross-shard posts made while an event of shard s
	// was dispatching; pending counts them and outMin tracks their
	// global minimum so peekMin/popMin cannot run past a deferred post.
	outbox  [][]eventRef
	pending int
	outMin  eventRef

	running bool
	wg      sync.WaitGroup

	// Host-side accounting. The working counters are plain fields owned
	// by the token holder (inline in particular is bumped once per
	// inline event — the executor's hottest path); ExecStats readers
	// get the published atomic mirrors, refreshed at every outbox flush
	// and exact once Run has returned (see publish).
	handoffs uint64
	inline   uint64
	outboxed uint64
	flushes  uint64

	pubHandoffs atomic.Uint64
	pubInline   atomic.Uint64
	pubOutboxed atomic.Uint64
	pubFlushes  atomic.Uint64
}

// SetShardExec selects the executor for a sharded kernel. Must be
// called after Shard and before the first Run; workers below 1 are
// clamped to 1 and above the shard count to the shard count (more
// workers than shards cannot help: a shard's events are inherently
// ordered).
func (k *Kernel) SetShardExec(mode ExecMode, workers int) {
	if k.sh == nil {
		panic("sim: SetShardExec on an unsharded kernel")
	}
	if k.sh.exec != nil {
		panic("sim: SetShardExec called twice")
	}
	if mode != ExecParallel {
		return
	}
	n := len(k.sh.queues)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	ex := &execState{
		k:        k,
		ss:       k.sh,
		workers:  make([]*execWorker, workers),
		workerOf: make([]int32, n),
		outbox:   make([][]eventRef, n),
	}
	for i := range ex.workers {
		ex.workers[i] = &execWorker{cont: make(chan func())}
	}
	for s := 0; s < n; s++ {
		ex.workerOf[s] = int32(s * workers / n)
	}
	k.sh.exec = ex
}

// ShardExecMode returns the executor mode in effect (ExecMerged on a
// serial or merged-execution kernel).
func (k *Kernel) ShardExecMode() ExecMode {
	if k.sh != nil && k.sh.exec != nil {
		return ExecParallel
	}
	return ExecMerged
}

// workerFor returns the pool worker owning a shard's callbacks.
func (ex *execState) workerFor(shard int16) *execWorker {
	return ex.workers[ex.workerOf[shard]]
}

// post buffers a cross-shard ref in the sending shard's outbox instead
// of the target heap. Called from enqueue under the token.
func (ex *execState) post(src int16, ref eventRef) {
	ex.outbox[src] = append(ex.outbox[src], ref)
	if ex.pending == 0 || refLess(ref, ex.outMin) {
		ex.outMin = ref
	}
	ex.pending++
	ex.outboxed++
}

// flushOutboxes folds every deferred cross-shard post into the shard
// heaps. Insertion order is irrelevant — heaps order by (time, seq),
// and seq was assigned at schedule time — so the merged stream is
// exactly what eager delivery would have produced.
func (ss *shardSet) flushOutboxes() {
	ex := ss.exec
	for s := range ex.outbox {
		for _, ref := range ex.outbox[s] {
			ss.push(ref)
		}
		ex.outbox[s] = ex.outbox[s][:0]
	}
	ex.pending = 0
	ex.flushes++
	// The epoch barrier is the amortized moment to refresh the
	// published mirrors for mid-run observers.
	ex.publish()
}

// publish refreshes the published counter mirrors from the token-owned
// fields. Called under the token: at every outbox flush and from
// shardSet.publish on Run's exit paths.
func (ex *execState) publish() {
	ex.pubHandoffs.Store(ex.handoffs)
	ex.pubInline.Store(ex.inline)
	ex.pubOutboxed.Store(ex.outboxed)
	ex.pubFlushes.Store(ex.flushes)
}

// start launches the worker pool. Idempotent across sequential Runs.
func (ex *execState) start() {
	if ex.running {
		return
	}
	ex.running = true
	for _, w := range ex.workers {
		ex.wg.Add(1)
		go ex.workerMain(w)
	}
}

// stop closes every worker channel and joins the pool. Only called by
// Run while it holds the control token, when every worker is parked at
// its channel receive.
func (ex *execState) stop() {
	if !ex.running {
		return
	}
	ex.running = false
	for _, w := range ex.workers {
		close(w.cont)
	}
	ex.wg.Wait()
	for _, w := range ex.workers {
		w.cont = make(chan func())
	}
}

// workerMain is the pool goroutine body: each received callback is the
// control token arriving. Fire it, then keep dispatching from this
// goroutine — consecutive events of shards this worker owns run inline
// with no handoff at all.
func (ex *execState) workerMain(w *execWorker) {
	defer ex.wg.Done()
	k := ex.k
	for fn := range w.cont {
		if !k.fire(fn) {
			k.parkDispatch(false)
			continue
		}
		k.dispatch(nil, false, w)
	}
}

// stats snapshots the published executor counters (safe from any
// goroutine; exact once Run has returned).
func (ex *execState) stats() *ExecStats {
	return &ExecStats{
		Workers:  len(ex.workers),
		Handoffs: ex.pubHandoffs.Load(),
		Inline:   ex.pubInline.Load(),
		Outboxed: ex.pubOutboxed.Load(),
		Flushes:  ex.pubFlushes.Load(),
	}
}

// ExecStats reports the parallel executor's host-side accounting:
// worker count, token handoffs into the pool, callbacks run inline on
// the worker already holding the token, cross-shard posts deferred
// through outboxes, and outbox flushes (≈ active epoch barriers when
// lookahead violations are zero). Purely host-side — none of it feeds
// any simulated-result report, which is how serial, merged, and
// parallel runs stay cmp-identical. Snapshot semantics, safe mid-run
// from any goroutine; mid-run values may trail the live run by up to
// one epoch (mirrors refresh at outbox flushes), and are exact once
// Run has returned.
type ExecStats struct {
	Workers  int    `json:"workers"`
	Handoffs uint64 `json:"handoffs"`
	Inline   uint64 `json:"inline"`
	Outboxed uint64 `json:"outboxed"`
	Flushes  uint64 `json:"flushes"`
}

// ExecStats returns the parallel executor's counters, or nil when the
// kernel is serial or running the merged executor.
func (k *Kernel) ExecStats() *ExecStats {
	if k.sh == nil || k.sh.exec == nil {
		return nil
	}
	return k.sh.exec.stats()
}
