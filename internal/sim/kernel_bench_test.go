package sim

import "testing"

// BenchmarkSchedule measures the cost of scheduling plus firing one
// event through the kernel queue, with a live queue of ~1k events so
// heap operations pay realistic depth. The headline metric is
// allocs/op: the indexed free-list queue must stay at zero.
func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		k.At(Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fired int
	cb := func() { fired++ }
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			k.At(k.Now()+depth, cb)
			p.Delay(1)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerArmCancel measures the arm/cancel churn pattern the
// ULI steal timeout produces: a timer armed far in the future and
// stopped almost immediately. Tombstone compaction must keep the
// queue from growing.
func BenchmarkTimerArmCancel(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			tm := k.TimerAt(k.Now()+1_000_000, func() {})
			tm.Stop()
			p.Delay(1)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitUntil measures a bare timed wait with an otherwise
// empty queue — the hot pattern of every core model's attribute().
// With the fast path this is a few loads and a store; in paranoid
// mode (or before PR 4) it is an event push, two channel handshakes,
// and a goroutine switch.
func BenchmarkWaitUntil(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(3)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// mergeBenchLCG is a tiny deterministic generator so the tree and the
// linear-scan reference below replay the exact same churn stream.
type mergeBenchLCG uint64

func (g *mergeBenchLCG) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g >> 33)
}

// linearScanMerge is the pre-tree merge this package shipped with: K
// shard heaps, global minimum found by scanning every root, O(K) per
// pop. Kept here as the microbenchmark baseline the tournament tree is
// measured against.
type linearScanMerge struct {
	queues []eventHeap
}

func (lm *linearScanMerge) popMin() (eventRef, bool) {
	best := -1
	for s := range lm.queues {
		if len(lm.queues[s]) == 0 {
			continue
		}
		if best < 0 || refLess(lm.queues[s][0], lm.queues[best][0]) {
			best = s
		}
	}
	if best < 0 {
		return eventRef{}, false
	}
	ref := lm.queues[best][0]
	lm.queues[best].popRoot()
	return ref, true
}

// mergeChurn yields the shared synthetic workload: after prefilling
// depth events per shard, each iteration pops the global minimum and
// pushes a replacement a short, pseudo-random distance ahead on a
// pseudo-random shard — the steady-state pop/push rhythm of a live
// kernel, with enough cross-shard churn that neither structure coasts
// on a single hot shard.
const (
	mergeBenchShards = 64
	mergeBenchDepth  = 16
)

func mergeBenchRef(g *mergeBenchLCG, at Time, seq uint64) eventRef {
	return eventRef{
		at:    at + 1 + Time(g.next()%97),
		seq:   seq,
		shard: int16(g.next() % mergeBenchShards),
	}
}

// BenchmarkMergeTreeK64 drives the real shard-merge machinery (winner
// tree + challenger cache) at K=64. Compare against
// BenchmarkMergeLinearK64: the tree must win, or the K=64 executor
// claim in DESIGN.md §17 is void.
func BenchmarkMergeTreeK64(b *testing.B) {
	k := NewKernel()
	k.Shard(mergeBenchShards, 2)
	// One live slot shared by every ref: skimDead sees fn != nil and
	// leaves the roots alone, so the benchmark measures pure merge cost.
	k.slots = append(k.slots, eventSlot{fn: func() {}})
	ss := k.sh
	g := mergeBenchLCG(1)
	seq := uint64(0)
	for s := 0; s < mergeBenchShards; s++ {
		for d := 0; d < mergeBenchDepth; d++ {
			ref := mergeBenchRef(&g, 0, seq)
			seq++
			ss.push(ref)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, ok := ss.popMin(k)
		if !ok {
			b.Fatal("merge ran dry")
		}
		next := mergeBenchRef(&g, ref.at, seq)
		seq++
		ss.push(next)
	}
}

// BenchmarkMergeLinearK64 replays the identical churn stream through
// the linear-scan baseline.
func BenchmarkMergeLinearK64(b *testing.B) {
	lm := &linearScanMerge{queues: make([]eventHeap, mergeBenchShards)}
	g := mergeBenchLCG(1)
	seq := uint64(0)
	for s := 0; s < mergeBenchShards; s++ {
		for d := 0; d < mergeBenchDepth; d++ {
			ref := mergeBenchRef(&g, 0, seq)
			seq++
			lm.queues[ref.shard].push(ref)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, ok := lm.popMin()
		if !ok {
			b.Fatal("merge ran dry")
		}
		next := mergeBenchRef(&g, ref.at, seq)
		seq++
		lm.queues[next.shard].push(next)
	}
}

// BenchmarkTwoProcPingPong measures the unavoidable slow path: two
// procs whose waits interleave, so every wait really does cross an
// event boundary and a goroutine handoff.
func BenchmarkTwoProcPingPong(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	body := func(p *Proc) {
		for i := 0; i < b.N/2+1; i++ {
			p.Delay(2)
		}
	}
	k.NewProc("a", 0, body)
	k.NewProc("b", 1, body)
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}
