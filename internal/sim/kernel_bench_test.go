package sim

import "testing"

// BenchmarkSchedule measures the cost of scheduling plus firing one
// event through the kernel queue, with a live queue of ~1k events so
// heap operations pay realistic depth. The headline metric is
// allocs/op: the indexed free-list queue must stay at zero.
func BenchmarkSchedule(b *testing.B) {
	k := NewKernel()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		k.At(Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fired int
	cb := func() { fired++ }
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			k.At(k.Now()+depth, cb)
			p.Delay(1)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerArmCancel measures the arm/cancel churn pattern the
// ULI steal timeout produces: a timer armed far in the future and
// stopped almost immediately. Tombstone compaction must keep the
// queue from growing.
func BenchmarkTimerArmCancel(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			tm := k.TimerAt(k.Now()+1_000_000, func() {})
			tm.Stop()
			p.Delay(1)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWaitUntil measures a bare timed wait with an otherwise
// empty queue — the hot pattern of every core model's attribute().
// With the fast path this is a few loads and a store; in paranoid
// mode (or before PR 4) it is an event push, two channel handshakes,
// and a goroutine switch.
func BenchmarkWaitUntil(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	k.NewProc("driver", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(3)
		}
	})
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTwoProcPingPong measures the unavoidable slow path: two
// procs whose waits interleave, so every wait really does cross an
// event boundary and a goroutine handoff.
func BenchmarkTwoProcPingPong(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	body := func(p *Proc) {
		for i := 0; i < b.N/2+1; i++ {
			p.Delay(2)
		}
	}
	k.NewProc("a", 0, body)
	k.NewProc("b", 1, body)
	if err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}
