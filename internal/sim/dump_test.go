package sim

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestDumpStateReportsProcsAndHooks(t *testing.T) {
	k := NewKernel()
	k.NewProc("runner", 0, func(p *Proc) { p.Delay(10) })
	k.NewProc("parked", 0, func(p *Proc) { p.Block() })
	k.AddDumpHook(func(w io.Writer) { fmt.Fprintln(w, "hook: extra state") })
	err := k.Run(nil)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{
		"deadlock",
		"procs=1/2 finished",
		"proc \"parked\": blocked since cycle",
		"hook: extra state",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "\"runner\"") {
		t.Errorf("finished proc listed in report:\n%s", msg)
	}
}

func TestDeadlineErrorCarriesReport(t *testing.T) {
	k := NewKernel()
	k.SetDeadline(100)
	k.NewProc("spinner", 0, func(p *Proc) {
		for {
			p.Delay(10)
		}
	})
	err := k.Run(nil)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	msg := err.Error()
	for _, want := range []string{"deadline 100 cycles exceeded", "proc \"spinner\""} {
		if !strings.Contains(msg, want) {
			t.Errorf("report missing %q:\n%s", want, msg)
		}
	}
}

func TestBlockedSinceTracksLastYield(t *testing.T) {
	k := NewKernel()
	var b strings.Builder
	k.NewProc("waiter", 0, func(p *Proc) {
		p.Delay(123)
		p.Block()
	})
	if err := k.Run(nil); err == nil {
		t.Fatal("expected deadlock error")
	}
	k.DumpState(&b)
	if !strings.Contains(b.String(), "blocked since cycle 123") {
		t.Errorf("blockedSince not updated:\n%s", b.String())
	}
}
