package sim

import (
	"fmt"
	"strings"
	"testing"
)

// shardedTraceRun drives the same twisty scenario as traceRun but on a
// kernel split into shards (0 = serial), spreading the procs across
// shards. Logs and final clocks must match the serial kernel exactly
// for every K, both paranoia modes, and both shard executors (workers
// picks the parallel pool size; ignored under ExecMerged).
func shardedTraceRun(t *testing.T, shards int, paranoid bool, exec ExecMode, workers int) ([]string, Time) {
	t.Helper()
	k := NewKernel()
	if shards > 0 {
		k.Shard(shards, 2)
		k.SetShardExec(exec, workers)
	}
	k.SetParanoid(paranoid)
	on := func(i int) int {
		if shards == 0 {
			return 0
		}
		return i % shards
	}
	var log []string
	note := func(who string, p *Proc) {
		log = append(log, fmt.Sprintf("%s@%d", who, p.Now()))
	}
	var sleeper *Proc
	sleeper = k.NewProcOn(on(0), "sleeper", 0, func(p *Proc) {
		note("s0", p)
		p.Block()
		note("s1", p)
		p.Delay(5)
		note("s2", p)
	})
	k.NewProcOn(on(1), "worker", 0, func(p *Proc) {
		note("w0", p)
		p.Delay(3)
		note("w1", p)
		tm := p.Kernel().TimerAfter(1000, func() { t.Error("cancelled timer fired") })
		p.Delay(10)
		tm.Stop()
		note("w2", p)
		p.Delay(0)
		note("w3", p)
		p.Delay(500)
		note("w4", p)
	})
	k.NewProcOn(on(2), "waker", 1, func(p *Proc) {
		note("k0", p)
		p.Delay(6)
		sleeper.Unblock(p.Now() + 2)
		note("k1", p)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	return log, k.Now()
}

// TestShardedTraceEquivalence proves the sharded dispatcher reproduces
// the serial kernel's event interleaving exactly, for several shard
// counts (including shards the scenario leaves idle) crossed with both
// paranoia modes.
func TestShardedTraceEquivalence(t *testing.T) {
	refLog, refEnd := shardedTraceRun(t, 0, false, ExecMerged, 0)
	for _, shards := range []int{1, 2, 3, 7} {
		for _, paranoid := range []bool{false, true} {
			for _, exec := range []ExecMode{ExecMerged, ExecParallel} {
				// Exercise both trivial pools (one worker) and one
				// worker per shard, plus an uneven split.
				for _, workers := range []int{1, 2, shards} {
					log, end := shardedTraceRun(t, shards, paranoid, exec, workers)
					if end != refEnd {
						t.Fatalf("shards=%d paranoid=%v exec=%v workers=%d: final clock %d, serial %d",
							shards, paranoid, exec, workers, end, refEnd)
					}
					if fmt.Sprint(log) != fmt.Sprint(refLog) {
						t.Fatalf("shards=%d paranoid=%v exec=%v workers=%d: log %v, serial %v",
							shards, paranoid, exec, workers, log, refLog)
					}
					if exec == ExecMerged {
						break // workers is meaningless under merged execution
					}
				}
			}
		}
	}
}

// TestShardedSameTimeOrder: same-time events on different shards must
// fire in global scheduling (seq) order, exactly as one serial heap
// would pop them.
func TestShardedSameTimeOrder(t *testing.T) {
	k := NewKernel()
	k.Shard(4, 2)
	var order []int
	// Schedule at the same instant across shards in a scrambled shard
	// order; seq order is the scheduling order below.
	for i, shard := range []int{3, 0, 2, 1, 2, 0} {
		i := i
		k.AtOn(shard, 10, func() { order = append(order, i) })
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", order, want)
	}
}

// TestShardedTimerCompaction: cancelled timers on a sharded kernel are
// reclaimed per shard under the same churn bound as the serial queue,
// and cancellation leaves no trace in simulated time.
func TestShardedTimerCompaction(t *testing.T) {
	k := NewKernel()
	k.Shard(2, 2)
	k.NewProcOn(1, "churner", 0, func(p *Proc) {
		for i := 0; i < 200; i++ {
			tm := p.Kernel().TimerAfter(1000, func() { t.Error("cancelled timer fired") })
			p.Delay(1)
			if !tm.Stop() {
				t.Error("Stop returned false for an armed timer")
			}
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 200 {
		t.Fatalf("final time %d, want 200", k.Now())
	}
	if tomb := k.Tombstones(); tomb > 2*compactTombstoneFloor {
		t.Fatalf("tombstones %d never compacted", tomb)
	}
}

// TestShardStatsAccounting checks the decomposition report: cross-shard
// posts are counted, posts inside the lookahead window are flagged as
// violations, and the epoch concurrency profile sees concurrent shards.
func TestShardStatsAccounting(t *testing.T) {
	k := NewKernel()
	k.Shard(2, 10)
	// Two procs ping events at each other's shard with a latency equal
	// to the lookahead: legal cross traffic.
	k.NewProcOn(0, "a", 0, func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Kernel().AtOn(1, p.Now()+10, func() {})
			p.Delay(10)
		}
	})
	k.NewProcOn(1, "b", 0, func(p *Proc) {
		p.Delay(1)
		// One post below the lookahead bound: a violation.
		p.Kernel().AtOn(0, p.Now()+3, func() {})
		p.Delay(80)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	st := k.ShardStats()
	if st == nil {
		t.Fatal("ShardStats nil on a sharded kernel")
	}
	if st.Shards != 2 || st.Lookahead != 10 {
		t.Fatalf("plan = %d shards lookahead %d, want 2/10", st.Shards, st.Lookahead)
	}
	if st.CrossPosts < 9 {
		t.Fatalf("cross posts %d, want >= 9", st.CrossPosts)
	}
	if st.Violations != 1 {
		t.Fatalf("violations %d, want exactly 1", st.Violations)
	}
	if st.ActiveEpochs == 0 || st.ShardEpochs < st.ActiveEpochs {
		t.Fatalf("epoch totals %d/%d inconsistent", st.ShardEpochs, st.ActiveEpochs)
	}
	if avg := st.AvgConcurrency(); avg <= 1.0 || avg > 2.0 {
		t.Fatalf("avg concurrency %.2f outside (1,2] for 2 busy shards", avg)
	}
	var fired uint64
	for _, sc := range st.PerShard {
		fired += sc.Fired
	}
	if fired != k.Fired() {
		t.Fatalf("per-shard fired sums to %d, kernel fired %d", fired, k.Fired())
	}
}

// TestShardStatsNilWhenSerial: the serial kernel reports no shard plan.
func TestShardStatsNilWhenSerial(t *testing.T) {
	k := NewKernel()
	if k.ShardStats() != nil || k.Sharded() || k.NumShards() != 1 || k.Lookahead() != 0 {
		t.Fatal("serial kernel leaked shard state")
	}
}

// TestShardValidation: the partition is locked down — bad shard counts,
// zero lookahead, double sharding, sharding a non-empty kernel, and
// out-of-range shard targets all panic loudly.
func TestShardValidation(t *testing.T) {
	expectPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if !strings.Contains(fmt.Sprint(r), want) {
				t.Errorf("%s: panic %q, want substring %q", name, r, want)
			}
		}()
		fn()
	}
	expectPanic("zero shards", "Shard(0)", func() { NewKernel().Shard(0, 2) })
	expectPanic("too many shards", "Shard(65)", func() { NewKernel().Shard(65, 2) })
	expectPanic("zero lookahead", "zero lookahead", func() { NewKernel().Shard(2, 0) })
	expectPanic("double shard", "called twice", func() {
		k := NewKernel()
		k.Shard(2, 2)
		k.Shard(2, 2)
	})
	expectPanic("non-empty kernel", "non-empty", func() {
		k := NewKernel()
		k.At(5, func() {})
		k.Shard(2, 2)
	})
	expectPanic("proc shard range", "shard 2", func() {
		k := NewKernel()
		k.Shard(2, 2)
		k.NewProcOn(2, "oob", 0, func(p *Proc) {})
	})
	expectPanic("AtOn shard range", "out of range", func() {
		k := NewKernel()
		k.Shard(2, 2)
		k.AtOn(5, 1, func() {})
	})
	expectPanic("serial proc shard", "shard 1", func() {
		NewKernel().NewProcOn(1, "oob", 0, func(p *Proc) {})
	})
}

// TestShardedFastWaits: the WaitUntil fast path still elides events on
// a sharded kernel (peekMin spans all shard heaps).
func TestShardedFastWaits(t *testing.T) {
	k := NewKernel()
	k.Shard(4, 2)
	k.NewProcOn(2, "p", 0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Delay(3)
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if k.FastWaits() < 90 {
		t.Fatalf("FastWaits = %d, want ~100", k.FastWaits())
	}
	if k.Now() != 300 {
		t.Fatalf("final time = %d, want 300", k.Now())
	}
}

// TestShardedDumpState: diagnostics include the per-shard report.
func TestShardedDumpState(t *testing.T) {
	k := NewKernel()
	k.Shard(2, 4)
	k.NewProcOn(1, "p", 0, func(p *Proc) { p.Delay(3) })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	k.DumpState(&b)
	out := b.String()
	if !strings.Contains(out, "shards: 2, lookahead=4") || !strings.Contains(out, "shard 1:") {
		t.Fatalf("DumpState missing shard report:\n%s", out)
	}
}
