package sim

// Resource models a unit-capacity hardware resource (an L2 bank port, a
// DRAM channel, a mesh link) using reservation: each use occupies the
// resource for a service time, and a request arriving while the resource
// is busy waits until it frees. Because the kernel processes events in
// time order, reservation yields the same queueing behaviour as an
// explicit queue for unit-capacity FIFO resources.
type Resource struct {
	name     string
	nextFree Time
	// Busy accumulates total occupied cycles for utilization reporting.
	Busy Time
	// Uses counts accepted requests.
	Uses uint64
}

// NewResource returns a named idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's debug name.
func (r *Resource) Name() string { return r.name }

// Acquire reserves the resource at time now for service cycles and
// returns the completion time (including any queueing delay).
func (r *Resource) Acquire(now Time, service Time) (done Time) {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	done = start + service
	r.nextFree = done
	r.Busy += service
	r.Uses++
	return done
}

// NextFree reports when the resource next becomes idle.
func (r *Resource) NextFree() Time { return r.nextFree }

// Utilization returns Busy/elapsed in [0,1] given the elapsed time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(r.Busy) / float64(elapsed)
}

// Rand is a small deterministic xorshift64* PRNG used wherever the
// simulated software needs randomness (victim selection, R-MAT noise).
// It is seeded explicitly so runs are reproducible.
type Rand struct{ s uint64 }

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed
// nonzero constant, since xorshift requires nonzero state).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next pseudorandom value.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudorandom int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudorandom float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
