package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestParseExecMode pins the flag grammar both CLIs share.
func TestParseExecMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExecMode
		ok   bool
	}{
		{"", ExecMerged, true},
		{"merged", ExecMerged, true},
		{"parallel", ExecParallel, true},
		{"Parallel", ExecMerged, false},
		{"serial", ExecMerged, false},
	} {
		got, err := ParseExecMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if ExecMerged.String() != "merged" || ExecParallel.String() != "parallel" {
		t.Errorf("ExecMode.String: %q/%q", ExecMerged, ExecParallel)
	}
}

// TestSetShardExecValidation: the executor is locked down like the
// partition itself — it needs a sharded kernel, refuses to be chosen
// twice, and clamps the pool to [1, shards].
func TestSetShardExecValidation(t *testing.T) {
	expectPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if !strings.Contains(fmt.Sprint(r), want) {
				t.Errorf("%s: panic %q, want substring %q", name, r, want)
			}
		}()
		fn()
	}
	expectPanic("unsharded", "unsharded", func() {
		NewKernel().SetShardExec(ExecParallel, 2)
	})
	expectPanic("twice", "called twice", func() {
		k := NewKernel()
		k.Shard(4, 2)
		k.SetShardExec(ExecParallel, 2)
		k.SetShardExec(ExecParallel, 2)
	})

	// Merged mode is a no-op: no executor state, stats stay nil.
	k := NewKernel()
	k.Shard(4, 2)
	k.SetShardExec(ExecMerged, 8)
	if k.ShardExecMode() != ExecMerged || k.ExecStats() != nil {
		t.Fatal("ExecMerged left executor state behind")
	}

	// Pool size clamps to [1, shards].
	for _, tc := range []struct{ workers, want int }{{-3, 1}, {0, 1}, {2, 2}, {99, 4}} {
		k := NewKernel()
		k.Shard(4, 2)
		k.SetShardExec(ExecParallel, tc.workers)
		if st := k.ExecStats(); st == nil || st.Workers != tc.want {
			t.Errorf("workers=%d: pool %+v, want %d workers", tc.workers, st, tc.want)
		}
	}

	// Serial kernels report merged and nil stats.
	if k := NewKernel(); k.ShardExecMode() != ExecMerged || k.ExecStats() != nil {
		t.Fatal("serial kernel leaked executor state")
	}
}

// TestParallelExecSameTimeOrder: the same-instant cross-shard ordering
// guarantee survives the parallel executor — seq order, exactly as one
// serial heap would pop.
func TestParallelExecSameTimeOrder(t *testing.T) {
	k := NewKernel()
	k.Shard(4, 2)
	k.SetShardExec(ExecParallel, 2)
	var order []int
	for i, shard := range []int{3, 0, 2, 1, 2, 0} {
		i := i
		k.AtOn(shard, 10, func() { order = append(order, i) })
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", order, want)
	}
}

// pingPongKernel builds a 2-shard kernel whose procs ping events at each
// other's shard for a while: guaranteed handoffs, outboxed posts, and
// epoch-barrier flushes under the parallel executor.
func pingPongKernel(workers int) *Kernel {
	k := NewKernel()
	k.Shard(2, 10)
	k.SetShardExec(ExecParallel, workers)
	k.NewProcOn(0, "a", 0, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Kernel().AtOn(1, p.Now()+10, func() {})
			p.Delay(10)
		}
	})
	k.NewProcOn(1, "b", 0, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Kernel().AtOn(0, p.Now()+10, func() {})
			p.Delay(10)
		}
	})
	return k
}

// TestParallelExecAccounting: the executor's host-side counters see the
// traffic the workload guarantees, and the watchdog dump includes the
// executor line.
func TestParallelExecAccounting(t *testing.T) {
	k := pingPongKernel(2)
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	st := k.ExecStats()
	if st == nil || st.Workers != 2 {
		t.Fatalf("ExecStats = %+v, want a 2-worker pool", st)
	}
	if st.Outboxed == 0 || st.Flushes == 0 {
		t.Fatalf("cross-shard ping-pong produced no outbox traffic: %+v", st)
	}
	if st.Outboxed < st.Flushes {
		t.Fatalf("more flushes than outboxed posts: %+v", st)
	}
	if st.Handoffs == 0 {
		t.Fatalf("two shards on two workers produced no token handoffs: %+v", st)
	}
	if o := k.ShardStats(); o.Violations != 0 {
		t.Fatalf("lookahead violations: %d", o.Violations)
	}

	var b strings.Builder
	k.DumpState(&b)
	if !strings.Contains(b.String(), "exec: parallel, 2 workers") {
		t.Fatalf("DumpState missing executor report:\n%s", b.String())
	}
}

// TestParallelExecRestart: the pool shuts down clean at the end of one
// Run and comes back for the next — sequential Runs on one kernel are
// part of the kernel contract (serving layers reuse kernels for probes).
func TestParallelExecRestart(t *testing.T) {
	k := NewKernel()
	k.Shard(2, 2)
	k.SetShardExec(ExecParallel, 2)
	fired := 0
	k.AtOn(1, 5, func() { fired++ })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	k.AtOn(0, k.Now()+5, func() { fired++ })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || k.Now() != 10 {
		t.Fatalf("fired=%d now=%d after two Runs, want 2/10", fired, k.Now())
	}
}

// TestParallelExecPanicPropagates: a callback panic on a pool worker
// must resurface out of Run on the caller's goroutine, exactly like
// merged execution — and the pool must still join cleanly after it.
func TestParallelExecPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Shard(4, 2)
	k.SetShardExec(ExecParallel, 4)
	k.AtOn(3, 5, func() { panic("boom on a worker") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate out of Run")
		}
		if !strings.Contains(fmt.Sprint(r), "boom on a worker") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	k.Run(nil)
}

// TestParallelExecInterrupt: an asynchronous Interrupt lands as the
// usual watchdog error, and the dump inside it carries the executor
// report (the workers are parked by then, so the dump is race-free).
func TestParallelExecInterrupt(t *testing.T) {
	k := pingPongKernel(2)
	k.Interrupt("test abort")
	err := k.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "interrupted: test abort") {
		t.Fatalf("err = %v, want interrupt watchdog error", err)
	}
	if !strings.Contains(err.Error(), "exec: parallel") {
		t.Fatalf("watchdog dump missing executor report:\n%v", err)
	}
}

// TestShardStatsMidRunSnapshot is the mid-run safety gate: ShardStats
// and ExecStats are documented snapshot-safe from any goroutine while
// the parallel executor is running workers. Under -race this test is
// the proof — a reader goroutine hammers both against a live run.
func TestShardStatsMidRunSnapshot(t *testing.T) {
	k := pingPongKernel(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var snaps uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := k.ShardStats()
			if st == nil || st.Shards != 2 {
				t.Error("mid-run ShardStats lost the plan")
				return
			}
			_ = st.AvgConcurrency()
			// The snapshot is per-counter atomic, not globally consistent
			// (see the ShardStats doc), so no cross-counter arithmetic here
			// — the -race run is the assertion.
			for _, sc := range st.PerShard {
				_ = sc.Scheduled + sc.Fired
			}
			if es := k.ExecStats(); es == nil || es.Workers != 2 {
				t.Error("mid-run ExecStats lost the pool")
				return
			}
			snaps++
		}
	}()
	err := k.Run(nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	st := k.ShardStats()
	if st.CrossPosts == 0 || st.Violations != 0 {
		t.Fatalf("final stats: %+v", st)
	}
}
