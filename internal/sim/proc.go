package sim

import "fmt"

// Proc is a simulated hardware thread context. The body function runs in
// its own goroutine but only ever executes while the kernel is blocked
// handing it control, so Proc code may freely mutate shared simulator
// state. A Proc gives up control by calling WaitUntil/Delay (advancing
// its local time) or by returning from its body.
type Proc struct {
	k        *Kernel
	name     string
	cont     chan struct{} // kernel -> proc: "you run now"
	back     chan struct{} // proc -> kernel: "I yielded"
	finished bool
	started  bool
	body     func(*Proc)
	// blockedSince is the cycle at which the proc last yielded to the
	// kernel; DumpState reports it for unfinished procs.
	blockedSince Time
}

// NewProc registers a simulated thread that begins executing body at
// time start. The body receives the Proc so it can wait on simulated
// time.
func (k *Kernel) NewProc(name string, start Time, body func(*Proc)) *Proc {
	p := &Proc{
		k:    k,
		name: name,
		cont: make(chan struct{}),
		back: make(chan struct{}),
		body: body,
	}
	k.procs = append(k.procs, p)
	k.At(start, func() { p.resume() })
	return p
}

// resume hands control to the proc and blocks the kernel until the proc
// yields back. Runs in the kernel goroutine.
func (p *Proc) resume() {
	if p.finished {
		panic(fmt.Sprintf("sim: resuming finished proc %q", p.name))
	}
	if !p.started {
		p.started = true
		go func() {
			<-p.cont
			defer func() {
				if r := recover(); r != nil {
					p.k.fail(fmt.Errorf("sim: proc %q crashed: %v", p.name, r))
				}
				p.finished = true
				p.back <- struct{}{}
			}()
			p.body(p)
		}()
	}
	p.cont <- struct{}{}
	<-p.back
	p.blockedSince = p.k.now
}

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// WaitUntil blocks the simulated thread until time t. Waiting for the
// current time (or the past, which is clamped) costs nothing and does
// not yield, preserving atomicity of zero-time sequences.
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.k.At(t, func() { p.resume() })
	p.yield()
}

// Delay blocks the simulated thread for d cycles.
func (p *Proc) Delay(d Time) { p.WaitUntil(p.k.now + d) }

// Block parks the proc indefinitely; something else must call Unblock.
// Used for interrupt-style wakeups (e.g. a ULI response arriving).
func (p *Proc) Block() { p.yield() }

// Unblock schedules the proc to resume at time t. Must only be called
// for a proc parked with Block.
func (p *Proc) Unblock(t Time) {
	p.k.At(t, func() { p.resume() })
}

// yield returns control to the kernel and blocks until resumed.
func (p *Proc) yield() {
	p.back <- struct{}{}
	<-p.cont
}
