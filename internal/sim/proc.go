package sim

import "fmt"

// Proc is a simulated hardware thread context. The body function runs in
// its own goroutine but only ever executes while it holds the kernel's
// control token, so Proc code may freely mutate shared simulator state.
// A Proc gives up control by calling WaitUntil/Delay (advancing its
// local time), by calling Block, or by returning from its body; in each
// case its goroutine runs the dispatcher and hands the token directly
// to whatever fires next (see Kernel.dispatch).
type Proc struct {
	k        *Kernel
	name     string
	cont     chan struct{} // token delivery: "you run now"
	finished bool
	started  bool
	body     func(*Proc)
	// shard is the event shard all of this proc's resume events land on
	// (always 0 on a serial kernel). Fixed at NewProcOn time.
	shard int16
	// blockedSince is the cycle at which the proc last yielded; DumpState
	// reports it for unfinished procs.
	blockedSince Time
}

// NewProc registers a simulated thread that begins executing body at
// time start. The body receives the Proc so it can wait on simulated
// time. The proc lives on event shard 0; use NewProcOn to place it on
// another shard of a sharded kernel.
func (k *Kernel) NewProc(name string, start Time, body func(*Proc)) *Proc {
	return k.NewProcOn(0, name, start, body)
}

// NewProcOn is NewProc with an explicit home shard: every resume event
// for the proc (including the initial one scheduled here) is queued on
// that shard. On a serial kernel only shard 0 is valid.
func (k *Kernel) NewProcOn(shard int, name string, start Time, body func(*Proc)) *Proc {
	if shard < 0 || shard >= k.NumShards() {
		panic(fmt.Sprintf("sim: proc %q on shard %d of a %d-shard kernel",
			name, shard, k.NumShards()))
	}
	p := &Proc{
		k:     k,
		name:  name,
		cont:  make(chan struct{}),
		body:  body,
		shard: int16(shard),
	}
	k.procs = append(k.procs, p)
	k.scheduleResume(start, p)
	return p
}

// Shard returns the proc's home event shard (0 on a serial kernel).
func (p *Proc) Shard() int { return int(p.shard) }

// main is the proc's goroutine: wait for the first token delivery, run
// the body (trapping a crash into the kernel error), then pass the
// token on — the goroutine that just finished is the dispatcher for
// whatever fires next.
func (p *Proc) main() {
	<-p.cont
	func() {
		defer func() {
			if r := recover(); r != nil {
				p.k.fail(fmt.Errorf("sim: proc %q crashed: %v", p.name, r))
			}
			p.finished = true
		}()
		p.body(p)
	}()
	p.k.dispatch(nil, false, nil)
}

// Kernel returns the kernel this proc runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// WaitUntil blocks the simulated thread until time t. Waiting for the
// current time (or the past, which is clamped) costs nothing and does
// not yield, preserving atomicity of zero-time sequences.
//
// Fast path: when no live event fires strictly before t, handing
// control to the dispatcher would accomplish nothing — it would pop
// this proc's own resume event and hand control straight back. In
// that case the wait advances the clock in place, skipping the event
// push and the dispatch entirely. The elision is taken only when it is
// observationally invisible:
//
//   - an earlier (or same-time, which fires first by seq order) live
//     event forces the slow path, so no other proc's turn is skipped;
//   - t beyond the watchdog deadline forces the slow path, so Run
//     still reports the deadline through its usual error;
//   - a pending kernel error, pending interrupt, or a true stop
//     predicate forces the slow path, so Run performs exactly the
//     checks it would have anyway.
//
// KernelParanoid disables the fast path entirely; equivalence tests
// run both modes and require bit-identical cycle counts.
func (p *Proc) WaitUntil(t Time) {
	k := p.k
	if t <= k.now {
		return
	}
	if !k.paranoid && t <= k.maxTime && k.err == nil &&
		k.intrReason.Load() == nil && (k.stop == nil || !k.stop()) {
		if at, ok := k.peekLive(); !ok || at > t {
			k.now = t
			k.fastWaits++
			return
		}
	}
	k.scheduleResume(t, p)
	p.yield()
}

// Delay blocks the simulated thread for d cycles.
func (p *Proc) Delay(d Time) { p.WaitUntil(p.k.now + d) }

// Block parks the proc indefinitely; something else must call Unblock.
// Used for interrupt-style wakeups (e.g. a ULI response arriving).
func (p *Proc) Block() { p.yield() }

// Unblock schedules the proc to resume at time t. Must only be called
// for a proc parked with Block.
func (p *Proc) Unblock(t Time) {
	p.k.scheduleResume(t, p)
}

// yield passes the control token on by running the dispatcher on this
// goroutine. If the dispatcher pops this proc's own resume event it
// returns immediately — no goroutine switch; otherwise the token has
// left (to another proc, or to the kernel on a run-level condition)
// and the proc parks until a later dispatcher delivers it back.
func (p *Proc) yield() {
	p.blockedSince = p.k.now
	if p.k.dispatch(p, false, nil) == dispatchSelf {
		return
	}
	<-p.cont
}
