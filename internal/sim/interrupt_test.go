package sim

import (
	"strings"
	"testing"
	"time"
)

// TestInterruptAbortsRun: an Interrupt from another goroutine stops a
// simulation whose event queue would never drain, and the error carries
// the reason plus the diagnostic dump.
func TestInterruptAbortsRun(t *testing.T) {
	k := NewKernel()
	var tick func()
	tick = func() { k.After(1, tick) }
	k.After(1, tick)
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Interrupt("wall-clock budget exceeded")
	}()
	err := k.Run(nil)
	if err == nil {
		t.Fatal("interrupted run returned nil")
	}
	for _, want := range []string{"interrupted: wall-clock budget exceeded", "kernel:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("interrupt error missing %q:\n%v", want, err)
		}
	}
}

// TestInterruptBreaksFastWaitChain: a proc advancing time purely through
// the WaitUntil fast path must still observe an interrupt — the fast
// path re-checks the request on every wait, so a fast-waiting spinner
// cannot outrun cancellation.
func TestInterruptBreaksFastWaitChain(t *testing.T) {
	k := NewKernel()
	k.NewProc("spinner", 0, func(p *Proc) {
		for i := 0; i < 1<<40; i++ {
			p.Delay(1)
		}
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Interrupt("drain")
	}()
	err := k.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "interrupted: drain") {
		t.Fatalf("fast-waiting proc survived the interrupt: %v", err)
	}
}

// TestInterruptFirstReasonWins: later Interrupt calls must not replace
// the first reason.
func TestInterruptFirstReasonWins(t *testing.T) {
	k := NewKernel()
	k.Interrupt("first")
	k.Interrupt("second")
	k.After(1, func() {})
	err := k.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "interrupted: first") {
		t.Fatalf("want first interrupt reason, got: %v", err)
	}
}
