// Event sharding: the conservative-lookahead (PDES) decomposition of
// one simulation into K event shards.
//
// Shard partitions the kernel's event queue into K independent heaps.
// Every event is owned by exactly one shard: a proc's resumes land on
// its home shard (NewProcOn), a plain callback lands on the shard of
// the event that scheduled it, and explicit message deliveries name the
// receiving shard with AtOn. The dispatcher merges the shard heaps by
// the same global (time, seq) order the serial kernel uses — a linear
// scan of K roots instead of one root — so dispatch order, and
// therefore every stat, oracle observation, and fault-injection draw,
// is byte-identical to the serial kernel at any K and any partition, by
// construction rather than by luck.
//
// The lookahead is the machine layer's promise that cross-shard
// interactions are latency-bounded: no event executing in shard A may
// schedule an event on shard B sooner than `lookahead` cycles out
// (for the mesh machines, the minimum cross-shard NoC hop latency).
// The kernel verifies the promise on every cross-shard post and counts
// breaches as lookahead violations — a violation cannot corrupt
// results here (order is globally merged regardless), but it falsifies
// the bound a barrier-synchronized parallel executor would rely on, so
// the equivalence suite asserts zero.
//
// Epoch accounting quantifies the parallelism the decomposition
// exposes: time is divided into epochs of `lookahead` cycles, and for
// each epoch that fired at least one event the kernel records how many
// distinct shards were active. Within one epoch, events on different
// shards are causally independent (any influence needs a cross-shard
// post, which lands at least one epoch later), so the mean active-shard
// count is exactly the speedup ceiling for a lock-step epoch-parallel
// executor on this workload. See DESIGN.md §16.
package sim

import (
	"fmt"
	"io"
	"math/bits"
)

// maxShards bounds K so epoch accounting fits one active-shard bitmask
// (and matches the 64-tile machine this decomposition targets).
const maxShards = 64

// shardQueue is one shard's private slice of the event queue.
type shardQueue struct {
	q          eventHeap
	tombstones int
	scheduled  uint64
	fired      uint64
}

// shardSet is all sharding state, hung off the kernel as one pointer so
// the serial hot paths pay a single nil check.
type shardSet struct {
	queues    []shardQueue
	lookahead Time
	// dispatching is the shard of the event currently firing, or -1
	// outside dispatch (setup code before Run). Plain callbacks inherit
	// it; cross-shard accounting is suppressed at -1 so setup posts
	// (initial proc resumes) are not misread as shard traffic.
	dispatching int16

	// Cross-shard traffic counters.
	crossPosts uint64
	violations uint64

	// Epoch accounting: activeMask collects the shards that fired in the
	// current epoch (index = at / lookahead); a fire in a later epoch
	// flushes it into the totals. Only epochs with at least one event
	// count — idle epochs are free for any executor.
	epoch         Time
	activeMask    uint64
	activeEpochs  uint64
	shardEpochSum uint64
}

// Shard partitions an empty kernel into n event shards with the given
// conservative lookahead (cycles). It must be called before any proc or
// event is created; the partition is fixed for the kernel's lifetime.
// n = 1 is valid (one shard holding everything) and exercises the same
// code paths. The lookahead must be at least 1 cycle.
func (k *Kernel) Shard(n int, lookahead Time) {
	if n < 1 || n > maxShards {
		panic(fmt.Sprintf("sim: Shard(%d) outside [1,%d]", n, maxShards))
	}
	if lookahead < 1 {
		panic("sim: Shard with zero lookahead")
	}
	if k.sh != nil {
		panic("sim: Shard called twice")
	}
	if len(k.queue) > 0 || len(k.slots) > 0 || len(k.procs) > 0 {
		panic("sim: Shard on a non-empty kernel")
	}
	k.sh = &shardSet{
		queues:      make([]shardQueue, n),
		lookahead:   lookahead,
		dispatching: -1,
	}
}

// Sharded reports whether Shard was called.
func (k *Kernel) Sharded() bool { return k.sh != nil }

// NumShards returns the number of event shards (1 on a serial kernel).
func (k *Kernel) NumShards() int {
	if k.sh == nil {
		return 1
	}
	return len(k.sh.queues)
}

// Lookahead returns the sharded kernel's conservative lookahead in
// cycles (0 on a serial kernel).
func (k *Kernel) Lookahead() Time {
	if k.sh == nil {
		return 0
	}
	return k.sh.lookahead
}

// cur returns the shard new plain callbacks belong to: the shard of the
// event currently dispatching, or shard 0 during setup.
func (ss *shardSet) cur() int16 {
	if ss.dispatching < 0 {
		return 0
	}
	return ss.dispatching
}

// enqueue pushes a ref onto its shard's heap, counting cross-shard
// posts and lookahead violations. Accounting only applies while an
// event is dispatching: setup-time posts (initial resumes) have no
// sending shard.
func (ss *shardSet) enqueue(k *Kernel, ref eventRef) {
	sq := &ss.queues[ref.shard]
	sq.scheduled++
	if ss.dispatching >= 0 && ref.shard != ss.dispatching {
		ss.crossPosts++
		if ref.at < k.now+ss.lookahead {
			ss.violations++
		}
	}
	sq.q.push(ref)
}

// hasQueued reports whether any shard heap holds entries (live or
// tombstoned) — the sharded analogue of len(queue) > 0.
func (ss *shardSet) hasQueued() bool {
	for i := range ss.queues {
		if len(ss.queues[i].q) > 0 {
			return true
		}
	}
	return false
}

// skimDead pops reclaimable tombstones off one shard heap's root so the
// root, if present, is live. Reclamation has no observable effect on
// simulated time (same argument as peekLive).
func (ss *shardSet) skimDead(k *Kernel, sq *shardQueue) {
	for len(sq.q) > 0 {
		ref := sq.q[0]
		if s := &k.slots[ref.idx]; s.fn != nil || s.proc != nil {
			return
		}
		sq.q.popRoot()
		sq.tombstones--
		k.freeSlot(ref.idx)
	}
}

// peekMin returns (without removing) the globally minimum live event
// across all shard heaps, by the same (time, seq) order the serial
// kernel pops in.
func (ss *shardSet) peekMin(k *Kernel) (eventRef, bool) {
	best := -1
	var bestRef eventRef
	for i := range ss.queues {
		sq := &ss.queues[i]
		ss.skimDead(k, sq)
		if len(sq.q) == 0 {
			continue
		}
		if best < 0 || refLess(sq.q[0], bestRef) {
			best, bestRef = i, sq.q[0]
		}
	}
	return bestRef, best >= 0
}

// popMin removes and returns the globally minimum live event. ok is
// false when every heap drained (only tombstones were queued).
func (ss *shardSet) popMin(k *Kernel) (eventRef, bool) {
	ref, ok := ss.peekMin(k)
	if !ok {
		return eventRef{}, false
	}
	ss.queues[ref.shard].q.popRoot()
	return ref, true
}

// onFire records a dispatched event: the shard now executing (plain
// callbacks it schedules inherit it) and the epoch activity mask.
func (ss *shardSet) onFire(ref eventRef) {
	ss.dispatching = ref.shard
	ss.queues[ref.shard].fired++
	ep := ref.at / ss.lookahead
	if ep != ss.epoch {
		ss.flushEpoch()
		ss.epoch = ep
	}
	ss.activeMask |= 1 << uint(ref.shard)
}

// flushEpoch folds the current epoch's activity mask into the totals.
func (ss *shardSet) flushEpoch() {
	if ss.activeMask == 0 {
		return
	}
	ss.activeEpochs++
	ss.shardEpochSum += uint64(bits.OnesCount64(ss.activeMask))
	ss.activeMask = 0
}

// ShardCounters is one shard's slice of the host-performance counters.
type ShardCounters struct {
	Scheduled uint64 `json:"scheduled"`
	Fired     uint64 `json:"fired"`
}

// ShardStats is the sharded kernel's decomposition report: cross-shard
// traffic, lookahead-violation count (zero on a correctly partitioned
// machine), and the epoch-concurrency profile. Snapshot semantics; safe
// to call mid-run from the simulation goroutine or after Run returns.
type ShardStats struct {
	Shards       int             `json:"shards"`
	Lookahead    Time            `json:"lookahead"`
	CrossPosts   uint64          `json:"cross_posts"`
	Violations   uint64          `json:"violations"`
	ActiveEpochs uint64          `json:"active_epochs"`
	ShardEpochs  uint64          `json:"shard_epochs"`
	PerShard     []ShardCounters `json:"per_shard"`
}

// AvgConcurrency is the mean number of distinct shards active per
// non-idle epoch — the speedup ceiling for a lock-step epoch-parallel
// executor of this decomposition on this workload.
func (s *ShardStats) AvgConcurrency() float64 {
	if s == nil || s.ActiveEpochs == 0 {
		return 0
	}
	return float64(s.ShardEpochs) / float64(s.ActiveEpochs)
}

// ShardStats returns the decomposition report, or nil on a serial
// kernel. The in-progress epoch is included.
func (k *Kernel) ShardStats() *ShardStats {
	ss := k.sh
	if ss == nil {
		return nil
	}
	st := &ShardStats{
		Shards:       len(ss.queues),
		Lookahead:    ss.lookahead,
		CrossPosts:   ss.crossPosts,
		Violations:   ss.violations,
		ActiveEpochs: ss.activeEpochs,
		ShardEpochs:  ss.shardEpochSum,
		PerShard:     make([]ShardCounters, len(ss.queues)),
	}
	if ss.activeMask != 0 {
		st.ActiveEpochs++
		st.ShardEpochs += uint64(bits.OnesCount64(ss.activeMask))
	}
	for i := range ss.queues {
		st.PerShard[i] = ShardCounters{
			Scheduled: ss.queues[i].scheduled,
			Fired:     ss.queues[i].fired,
		}
	}
	return st
}

// dump appends the shard report to DumpState output.
func (ss *shardSet) dump(w io.Writer) {
	fmt.Fprintf(w, "shards: %d, lookahead=%d cycles, cross-posts=%d violations=%d\n",
		len(ss.queues), ss.lookahead, ss.crossPosts, ss.violations)
	for i := range ss.queues {
		sq := &ss.queues[i]
		fmt.Fprintf(w, "  shard %d: queued=%d (%d cancelled) scheduled=%d fired=%d\n",
			i, len(sq.q)-sq.tombstones, sq.tombstones, sq.scheduled, sq.fired)
	}
}
