// Event sharding: the conservative-lookahead (PDES) decomposition of
// one simulation into K event shards.
//
// Shard partitions the kernel's event queue into K independent heaps.
// Every event is owned by exactly one shard: a proc's resumes land on
// its home shard (NewProcOn), a plain callback lands on the shard of
// the event that scheduled it, and explicit message deliveries name the
// receiving shard with AtOn. The dispatcher merges the shard heaps by
// the same global (time, seq) order the serial kernel uses — so
// dispatch order, and therefore every stat, oracle observation, and
// fault-injection draw, is byte-identical to the serial kernel at any K
// and any partition, by construction rather than by luck.
//
// The merge itself is a champion/challenger cache over the K shard
// roots (DESIGN.md §17): peeking the global minimum is O(1), and a run
// of events on one shard re-consults nothing but the cached challenger
// bound, so consecutive same-shard events dispatch in O(1). Repairing
// a champion change has two regimes: at K ≤ 8 one branch-predictable
// scan of the packed root columns recomputes champion and exact
// challenger together (and makes pushes O(1) folds), while larger K
// uses a tournament tree that re-evaluates only the path of the shard
// whose root changed, O(log K) — which is what makes K = 64 viable
// (the original linear scan paid O(K) per event and made K = 8 slower
// than serial).
//
// The lookahead is the machine layer's promise that cross-shard
// interactions are latency-bounded: no event executing in shard A may
// schedule an event on shard B sooner than `lookahead` cycles out
// (for the mesh machines, the minimum cross-shard NoC hop latency).
// The kernel verifies the promise on every cross-shard post and counts
// breaches as lookahead violations — a violation cannot corrupt
// results here (order is globally merged regardless), but it falsifies
// the bound the epoch-parallel executor's outbox batching relies on,
// so the equivalence suite asserts zero.
//
// Epoch accounting quantifies the parallelism the decomposition
// exposes: time is divided into epochs of `lookahead` cycles, and for
// each epoch that fired at least one event the kernel records how many
// distinct shards were active. Within one epoch, events on different
// shards are causally independent (any influence needs a cross-shard
// post, which lands at least one epoch later), so the mean active-shard
// count is exactly the speedup ceiling for a lock-step epoch-parallel
// executor on this workload. See DESIGN.md §16 and §17.
package sim

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// maxShards bounds K so epoch accounting fits one active-shard bitmask
// (and matches the 64-tile machine this decomposition targets).
const maxShards = 64

// shardQueue is one shard's private slice of the event queue. The
// host-performance counters are plain fields owned by the control-token
// holder (the token moves by channel handoff, which is a happens-before
// edge, so single-writer discipline holds across goroutines); paying an
// atomic RMW per event on them is measurable at ref scale. External
// observers — watchdogs, serving layers, tests — read the published
// mirrors instead, refreshed every epochPublishStride active epochs and
// exact once Run returns (see shardSet.publish).
type shardQueue struct {
	q            eventHeap
	tombstones   int
	scheduled    uint64
	fired        uint64
	pubScheduled atomic.Uint64
	pubFired     atomic.Uint64
}

// shardSet is all sharding state, hung off the kernel as one pointer so
// the serial hot paths pay a single nil check.
type shardSet struct {
	queues    []shardQueue
	lookahead Time
	// dispatching is the shard of the event currently firing, or -1
	// outside dispatch (setup code before Run). Plain callbacks inherit
	// it; cross-shard accounting is suppressed at -1 so setup posts
	// (initial proc resumes) are not misread as shard traffic.
	dispatching int16

	// Tournament-tree merge state. width is the leaf count (the shard
	// count rounded up to a power of two; padding leaves are permanently
	// empty). tree is a winner tree laid out as a flat array: leaf s
	// lives at tree[width+s] (holding s, fixed), internal node i holds
	// the winning leaf of the match between tree[2i] and tree[2i+1], and
	// tree[1] is the champion — the shard whose cached root is the
	// global minimum. Any one leaf's change re-plays only its own
	// root-ward path, one comparison per level (unlike a loser tree,
	// whose cheap replay is sound only for the champion's leaf — and
	// pushes, timer stops, and compactions change arbitrary leaves
	// here). key[s]/live[s] cache shard s's live heap root; the
	// eager-skim invariant (every mutation re-skims the touched root)
	// guarantees a cached key is never a tombstone, so live[s] is
	// exactly len(queues[s].q) > 0 and liveCount>0 replaces the old
	// O(K) hasQueued scan. key and live are width-sized: a dead or
	// padding leaf holds the refInf sentinel, which sorts after every
	// real key, so match comparisons are pure key compares with no
	// liveness branch (see beats).
	width     int32
	tree      []int32
	key       []eventRef
	live      []bool
	liveCount int
	// chal is the challenger bound: a key no larger than every live
	// leaf except the champion, or refInf when the champion has no live
	// rival (exact right after a replay, and only ever conservatively
	// low afterwards — pushes that lower another leaf fold themselves
	// in). While the champion's fresh root still beats chal it is still
	// the global minimum, so a run of same-shard events pops in O(1)
	// without touching the tree.
	chal eventRef
	// flat selects the small-K merge (width ≤ 8): the tree's internal
	// nodes are abandoned and a champion change is repaired by one
	// branch-predictable pass over the packed (keyAt, keySeq) columns —
	// two cache lines for eight shards — that yields the champion AND
	// the exact challenger at once. At small K the scan beats the
	// tree's replay walks (profiling showed interleaved per-core ticks
	// make the champion switch, not the same-shard run, the hot case),
	// and it makes every push O(1): a dethroned champion's key is by
	// definition the minimum of every other leaf, so it folds straight
	// into chal with no walk at all. keyAt/keySeq mirror key[] at every
	// write in both modes (two stores; the stress oracle checks the
	// mirror), but only the flat path reads them.
	flat   bool
	keyAt  []Time
	keySeq []uint64
	// second (flat mode) is the leaf that last achieved the chal bound
	// — the champion-elect. When the champion's run ends, that leaf is
	// the next global minimum, making the champion SWITCH O(1) as well:
	// the interleaved per-core tick pattern that defeats the same-shard
	// run fast path pops scan, switch, scan, switch instead of scanning
	// every event. The field may go stale (its root popped, cancelled,
	// or compacted away); popMin revalidates it at use — live and still
	// holding exactly the chal key — so staleness costs a rescan, never
	// correctness. -1 when nothing is known.
	second int32
	// third/towner extend the ladder one level: while thirdOK, third is
	// never above any live root outside {champion, second} (towner is
	// the leaf that last achieved it). It is what lets a champion
	// SWITCH hand the incoming champion a useful challenger bound —
	// min(the outgoing shard's fresh root, third), both in hand — so a
	// two-shard ping-pong (cores ticking alternate cycles, the measured
	// hot pattern) runs entirely on O(1) switches with no rescans at
	// all. Falls fold through the ladder top-down (push); a fall that
	// would need information below the ladder clears thirdOK, and the
	// next slow pop pays one rescan to re-establish everything exactly.
	third   eventRef
	towner  int32
	thirdOK bool

	// exec is the epoch-parallel executor state (ExecParallel mode);
	// nil under the default merged execution. See exec.go.
	exec *execState

	// Cross-shard traffic counters (atomic: see shardQueue).
	crossPosts atomic.Uint64
	violations atomic.Uint64

	// Epoch accounting: mask collects the shards that fired in the
	// current epoch (index = at / lookahead); a fire in a later epoch
	// flushes it into the totals. Only epochs with at least one event
	// count — idle epochs are free for any executor. epochEnd caches
	// (epoch+1)*lookahead so the per-event same-epoch test is a compare,
	// not a 64-bit division. mask/activeEpochs/shardEpochSum are
	// token-owned working counters (with small lookaheads an epoch
	// boundary is nearly as hot as the event path — ref-scale bT runs
	// flush around a million epochs); the pub* fields are their
	// published atomic mirrors for ShardStats readers, refreshed every
	// epochPublishStride active epochs and on every Run exit, so neither
	// a shard switch nor an ordinary epoch flush touches an atomic.
	epoch            Time
	epochEnd         Time
	mask             uint64
	activeEpochs     uint64
	shardEpochSum    uint64
	pubActiveMask    atomic.Uint64
	pubActiveEpochs  atomic.Uint64
	pubShardEpochSum atomic.Uint64
}

// epochPublishStride is how many active epochs may elapse between
// refreshes of the published ShardStats mirrors (power of two). At the
// smallest lookaheads this is a few thousand simulated cycles — far
// below anything a watchdog or serving-layer sampler can distinguish.
const epochPublishStride = 1024

// Shard partitions an empty kernel into n event shards with the given
// conservative lookahead (cycles). It must be called before any proc or
// event is created; the partition is fixed for the kernel's lifetime.
// n = 1 is valid (one shard holding everything) and exercises the same
// code paths. The lookahead must be at least 1 cycle.
func (k *Kernel) Shard(n int, lookahead Time) {
	if n < 1 || n > maxShards {
		panic(fmt.Sprintf("sim: Shard(%d) outside [1,%d]", n, maxShards))
	}
	if lookahead < 1 {
		panic("sim: Shard with zero lookahead")
	}
	if k.sh != nil {
		panic("sim: Shard called twice")
	}
	if len(k.queue) > 0 || len(k.slots) > 0 || len(k.procs) > 0 {
		panic("sim: Shard on a non-empty kernel")
	}
	width := int32(1)
	for int(width) < n {
		width <<= 1
	}
	ss := &shardSet{
		queues:      make([]shardQueue, n),
		lookahead:   lookahead,
		dispatching: -1,
		width:       width,
		tree:        make([]int32, 2*width),
		key:         make([]eventRef, width),
		live:        make([]bool, width),
		chal:        refInf,
		flat:        width <= 8,
		second:      -1,
		third:       refInf,
		towner:      -1,
		keyAt:       make([]Time, width),
		keySeq:      make([]uint64, width),
		epochEnd:    lookahead,
	}
	for i := range ss.key {
		ss.key[i] = refInf
		ss.keyAt[i] = refInf.at
		ss.keySeq[i] = refInf.seq
	}
	ss.rebuild()
	k.sh = ss
}

// Sharded reports whether Shard was called.
func (k *Kernel) Sharded() bool { return k.sh != nil }

// NumShards returns the number of event shards (1 on a serial kernel).
func (k *Kernel) NumShards() int {
	if k.sh == nil {
		return 1
	}
	return len(k.sh.queues)
}

// Lookahead returns the sharded kernel's conservative lookahead in
// cycles (0 on a serial kernel).
func (k *Kernel) Lookahead() Time {
	if k.sh == nil {
		return 0
	}
	return k.sh.lookahead
}

// cur returns the shard new plain callbacks belong to: the shard of the
// event currently dispatching, or shard 0 during setup.
func (ss *shardSet) cur() int16 {
	if ss.dispatching < 0 {
		return 0
	}
	return ss.dispatching
}

// refInf is the dead-leaf sentinel key. No real ref ever reaches
// seq ^uint64(0) (seq counts up from zero), so refInf sorts strictly
// after every schedulable event: dead and padding leaves lose every
// match on the key compare alone, with no liveness branch in beats.
var refInf = eventRef{at: Forever, seq: ^uint64(0)}

// leafLive reports whether tree leaf a holds a live cached root
// (padding leaves beyond the shard count never do; live is
// width-sized so this is a single load).
func (ss *shardSet) leafLive(a int32) bool {
	return ss.live[a]
}

// setKey writes shard s's cached root and its packed-column mirror.
// Every key write goes through here so the flat scan never sees a
// stale column.
func (ss *shardSet) setKey(s int32, ref eventRef) {
	ss.key[s] = ref
	ss.keyAt[s] = ref.at
	ss.keySeq[s] = ref.seq
}

// flatRescan recomputes the champion, the exact challenger, and the
// challenger's owner (the champion-elect) with one pass over the
// packed root columns (flat mode only). Dead and padding leaves hold
// the refInf sentinel and never strictly beat a live key, so the scan
// has no liveness branch; live (time, seq) pairs are unique, so no
// index tie-break is needed either. All leaves dead leaves the
// champion at leaf 0 with leafLive false — exactly what peekMin/popMin
// treat as empty — and chal at refInf (a dead runner-up is rejected by
// popMin's liveness revalidation, so second needs no special casing).
func (ss *shardSet) flatRescan() {
	at, sq := ss.keyAt, ss.keySeq
	bAt, bSeq := at[0], sq[0]
	cAt, cSeq := refInf.at, refInf.seq
	dAt, dSeq := refInf.at, refInf.seq
	b, c, d := 0, -1, -1
	for s := 1; s < len(at) && s < len(sq); s++ {
		a, q := at[s], sq[s]
		if a < bAt || a == bAt && q < bSeq {
			dAt, dSeq, d = cAt, cSeq, c
			cAt, cSeq, c = bAt, bSeq, b
			bAt, bSeq, b = a, q, s
		} else if a < cAt || a == cAt && q < cSeq {
			dAt, dSeq, d = cAt, cSeq, c
			cAt, cSeq, c = a, q, s
		} else if a < dAt || a == dAt && q < dSeq {
			dAt, dSeq, d = a, q, s
		}
	}
	ss.tree[1] = int32(b)
	ss.chal = eventRef{at: cAt, seq: cSeq}
	ss.second = int32(c)
	ss.third = eventRef{at: dAt, seq: dSeq}
	ss.towner = int32(d)
	ss.thirdOK = true
}

// beats reports whether leaf a's entry precedes leaf b's in the global
// (time, seq) dispatch order. Live keys never tie (seq is unique);
// dead leaves all hold refInf and tie-break by index — deterministic
// but meaningless (a dead champion is never popped, and a dead subtree
// winner only ever answers the question "is anything in there live":
// no).
func (ss *shardSet) beats(a, b int32) bool {
	ka, kb := ss.key[a], ss.key[b]
	if ka.at != kb.at {
		return ka.at < kb.at
	}
	if ka.seq != kb.seq {
		return ka.seq < kb.seq
	}
	return a < b
}

// winner plays internal match i: the better of its two children.
func (ss *shardSet) winner(i int32) int32 {
	l, r := ss.tree[2*i], ss.tree[2*i+1]
	if ss.beats(r, l) {
		return r
	}
	return l
}

// rebuild runs the whole tournament bottom-up. Construction only; every
// later repair replays one leaf's path.
func (ss *shardSet) rebuild() {
	for s := int32(0); s < ss.width; s++ {
		ss.tree[ss.width+s] = s
	}
	for i := ss.width - 1; i >= 1; i-- {
		ss.tree[i] = ss.winner(i)
	}
}

// updateFall repairs the tree after leaf s's key fell (a push, or s
// going live), for s not the reigning champion. The climb stops at the
// first match s loses: the rival there already beat s's old, larger
// key (or s was never the winner below it), so that node and every
// ancestor are unchanged — s just tightens the champion's challenger
// bound in O(1). When s instead wins through to the root it is the new
// champion, and the siblings it beat on the way up are exactly the
// rival subtree winners: their minimum is the new challenger, derived
// for free from values the matches already loaded.
// The walk carries s's key in a register and loads each rival's key
// once, serving both the match and the challenger fold (beats would
// re-load both keys per level).
func (ss *shardSet) updateFall(s int32) {
	ks := ss.key[s]
	chal := refInf
	for j := ss.width + s; j > 1; j >>= 1 {
		c := ss.tree[j^1]
		kc := ss.key[c]
		if kc.at < ks.at || kc.at == ks.at && (kc.seq < ks.seq || kc.seq == ks.seq && c < s) {
			if refLess(ks, ss.chal) {
				ss.chal = ks
			}
			return
		}
		if refLess(kc, chal) {
			chal = kc
		}
		ss.tree[j>>1] = s
	}
	ss.chal = chal
}

// updateRise re-plays the matches along leaf s's root-ward path after
// s's key rose, died, or otherwise changed arbitrarily (a pop, a
// stopped timer, a compaction). The walk carries the surviving winner
// up and folds every beaten rival into a fresh challenger bound. When
// s itself ends up champion the folded siblings are exactly the rival
// subtree winners, so chal is the exact global second minimum with no
// second walk. When the title moves to another leaf the fold is NOT
// exhaustive — the new champion's own former subtree-mates were
// represented only by the champion itself — so the challenger is
// recomputed along the new champion's path (the price the old scheme
// paid on every replay, now only on a champion change).
func (ss *shardSet) updateRise(s int32) {
	cur := s
	kcur := ss.key[s]
	chal := refInf
	meet := ss.width + s
	for j := ss.width + s; j > 1; j >>= 1 {
		c := ss.tree[j^1]
		kc := ss.key[c]
		if kc.at < kcur.at || kc.at == kcur.at && (kc.seq < kcur.seq || kc.seq == kcur.seq && c < cur) {
			// c takes over as carrier. The displaced carrier won every
			// match below j, so its key is the exact minimum of the whole
			// subtree rooted at j — the takeover node's sibling subtree —
			// and subsumes everything folded so far: reset the fold to it.
			chal = kcur
			cur, kcur = c, kc
			meet = j ^ 1
		} else if refLess(kc, chal) {
			chal = kc
		}
		ss.tree[j>>1] = cur
	}
	if cur != s {
		// The fold covers every subtree hanging off the carrier's path
		// from the last takeover up — but not the new champion's own
		// former subtree-mates below that point (the champion itself
		// represented them in every folded match). Fold its sub-path
		// below the takeover node; in the common case of a takeover near
		// the leaves this is zero or one level, not a full second walk.
		for j := ss.width + cur; j != meet; j >>= 1 {
			if kc := ss.key[ss.tree[j^1]]; refLess(kc, chal) {
				chal = kc
			}
		}
	}
	ss.chal = chal
}

// push inserts ref into its shard's heap and repairs the merge tree.
// An interior insert (the shard's root is unchanged) touches nothing;
// an insert that lowers the reigning champion's own root is O(1) (it
// still wins every match it won); only an insert that lowers another
// shard's root replays that one path.
func (ss *shardSet) push(ref eventRef) {
	s := int32(ref.shard)
	sq := &ss.queues[s]
	sq.q.push(ref)
	if ss.live[s] && !refLess(ref, ss.key[s]) {
		return
	}
	if !ss.live[s] {
		ss.live[s] = true
		ss.liveCount++
	}
	ss.setKey(s, ref)
	if s == ss.tree[1] {
		return
	}
	if ss.flat {
		// O(1): a fall enters the ladder at whatever rung it beats and
		// shifts the displaced rungs down — no walk. A dethroned
		// champion's key, as the minimum of every other leaf, IS the
		// exact new challenger, and the displaced challenger (never
		// above any non-champion root) is a sound new third either way.
		if w := ss.tree[1]; refLess(ref, ss.key[w]) {
			ss.tree[1] = s
			ss.third, ss.towner, ss.thirdOK = ss.chal, ss.second, true
			ss.chal = ss.key[w]
			ss.second = w
		} else if refLess(ref, ss.chal) {
			ss.third, ss.towner, ss.thirdOK = ss.chal, ss.second, true
			ss.chal = ref
			ss.second = s
		} else if ss.thirdOK && refLess(ref, ss.third) {
			// Below third every root outside {champion, second} is still
			// bounded by the old third, hence by ref as well.
			ss.third, ss.towner = ref, s
		}
		return
	}
	ss.updateFall(s)
}

// enqueue routes a ref onto its shard, counting cross-shard posts and
// lookahead violations. Accounting only applies while an event is
// dispatching: setup-time posts (initial resumes) have no sending
// shard. Under the parallel executor a cross-shard post is buffered in
// the sender's outbox instead of the target heap; it is applied — in
// the same (time, seq) position — at the epoch barrier (see exec.go).
func (ss *shardSet) enqueue(k *Kernel, ref eventRef) {
	ss.queues[ref.shard].scheduled++
	if ss.dispatching >= 0 && ref.shard != ss.dispatching {
		ss.crossPosts.Add(1)
		if ref.at < k.now+ss.lookahead {
			ss.violations.Add(1)
		}
		if ex := ss.exec; ex != nil {
			ex.post(ss.dispatching, ref)
			return
		}
	}
	ss.push(ref)
}

// hasQueued reports whether any shard holds a pending event — a live
// heap root or an outboxed cross-shard post. O(1): the eager-skim
// invariant keeps liveCount exact (a heap of pure tombstones is
// drained the moment its last live root goes).
func (ss *shardSet) hasQueued() bool {
	if ss.liveCount > 0 {
		return true
	}
	return ss.exec != nil && ss.exec.pending > 0
}

// skimDead pops reclaimable tombstones off one shard heap's root so the
// root, if present, is live. Reclamation has no observable effect on
// simulated time (same argument as peekLive).
func (ss *shardSet) skimDead(k *Kernel, sq *shardQueue) {
	for len(sq.q) > 0 {
		ref := sq.q[0]
		if s := &k.slots[ref.idx]; s.fn != nil || s.proc != nil {
			return
		}
		sq.q.popRoot()
		sq.tombstones--
		k.freeSlot(ref.idx)
	}
}

// refreshLeaf re-reads one shard's root after a mutation that may have
// removed or raised it — a stopped timer, a compaction — and repairs
// the merge tree. Raising a key can only demote its leaf, so the
// pop-time challenger shortcut does not apply; an unchanged root
// returns without touching the tree (the common case: an interior
// tombstone).
func (ss *shardSet) refreshLeaf(k *Kernel, shard int16) {
	s := int32(shard)
	sq := &ss.queues[s]
	ss.skimDead(k, sq)
	if len(sq.q) == 0 {
		if !ss.live[s] {
			return
		}
		ss.live[s] = false
		ss.liveCount--
		ss.setKey(s, refInf)
	} else {
		root := sq.q[0]
		if ss.live[s] && root == ss.key[s] {
			return
		}
		if !ss.live[s] {
			ss.live[s] = true
			ss.liveCount++
		}
		ss.setKey(s, root)
	}
	if ss.flat {
		if s == ss.tree[1] {
			// The champion's root rose or died: rescan for the new title
			// holder and exact challenger.
			ss.flatRescan()
		} else if ks := ss.key[s]; refLess(ks, ss.chal) {
			// A non-champion root only ever rises here (tombstones are
			// removals), which leaves chal a valid lower bound untouched;
			// the folds are pure defense against a hypothetical fall.
			ss.third, ss.towner, ss.thirdOK = ss.chal, ss.second, true
			ss.chal = ks
			ss.second = s
		} else if ss.thirdOK && refLess(ks, ss.third) {
			ss.third, ss.towner = ks, s
		}
		return
	}
	ss.updateRise(s)
}

// peekMin returns (without removing) the globally minimum pending
// event, by the same (time, seq) order the serial kernel pops in.
// O(1): the tree champion folded with the executor's outbox minimum —
// a deferred cross-shard post must be visible here, or the WaitUntil
// fast path could elide simulated time straight past it.
func (ss *shardSet) peekMin() (eventRef, bool) {
	var best eventRef
	ok := false
	if w := ss.tree[1]; ss.leafLive(w) {
		best, ok = ss.key[w], true
	}
	if ex := ss.exec; ex != nil && ex.pending > 0 {
		if !ok || refLess(ex.outMin, best) {
			best, ok = ex.outMin, true
		}
	}
	return best, ok
}

// popMin removes and returns the globally minimum pending event. ok is
// false when nothing is pending. The fast path is a run of events on
// the champion shard: while its fresh root still beats the cached
// challenger the tree is provably unchanged and the pop is O(1); only
// when the run ends does one O(log K) replay re-seat the champion.
func (ss *shardSet) popMin(k *Kernel) (eventRef, bool) {
	if ex := ss.exec; ex != nil && ex.pending > 0 {
		// Epoch barrier: the moment the merged stream would run past the
		// earliest outboxed post, fold every outbox into the heaps. With
		// the lookahead promise intact this triggers only on epoch
		// boundaries; if the promise is broken (a counted violation) the
		// flush happens earlier and dispatch order is still exact.
		w := ss.tree[1]
		if !ss.leafLive(w) || refLess(ex.outMin, ss.key[w]) {
			ss.flushOutboxes()
		}
	}
	w := ss.tree[1]
	if !ss.leafLive(w) {
		return eventRef{}, false
	}
	ref := ss.key[w]
	sq := &ss.queues[w]
	sq.q.popRoot()
	ss.skimDead(k, sq)
	if len(sq.q) > 0 {
		ss.setKey(w, sq.q[0])
		if refLess(ss.key[w], ss.chal) {
			return ref, true
		}
	} else {
		ss.live[w] = false
		ss.liveCount--
		ss.setKey(w, refInf)
		if ss.chal == refInf {
			// No live rival either: the tree can wait for the next push.
			return ref, true
		}
	}
	if ss.flat {
		// O(1) champion switch: if the leaf that set the chal bound is
		// still live and still holds exactly that key, it is the global
		// minimum (chal is never above any live rival, and this shard's
		// fresh root just failed to beat it — seq uniqueness breaks any
		// tie). chal itself stays: it equals the new champion's own key,
		// which no live root is below. The check fails only when the
		// bound went stale (that root popped, cancelled, or compacted),
		// and then one rescan re-establishes everything exactly.
		if sd := ss.second; sd >= 0 && sd != w && ss.live[sd] &&
			ss.keyAt[sd] == ss.chal.at && ss.keySeq[sd] == ss.chal.seq {
			ss.tree[1] = sd
			// Hand the incoming champion its challenger: every root
			// outside {sd, w} is bounded by third (when valid), and w's
			// fresh root is in hand, so the exact smaller of the two is a
			// sound bound — and keeps the ladder a rung deep for the next
			// switch. Without a valid third, chal (== the new champion's
			// own key, which no live root is below) stands, and the next
			// slow pop pays the rescan.
			if !ss.thirdOK {
				ss.second = -1
			} else if kw := ss.key[w]; ss.live[w] && refLess(kw, ss.third) {
				ss.chal = kw
				ss.second = w
			} else if ss.towner != sd {
				ss.chal = ss.third
				ss.second = ss.towner
				ss.thirdOK = false
			} else {
				ss.chal = ss.third
				ss.second = -1
				ss.thirdOK = false
			}
			return ref, true
		}
		ss.flatRescan()
	} else {
		ss.updateRise(w)
	}
	return ref, true
}

// onFire records a dispatched event: the shard now executing (plain
// callbacks it schedules inherit it) and the epoch activity mask. The
// hot path — a same-shard same-epoch run — is one plain increment and
// two compares (dispatch time is monotonic, so at < epochEnd is the
// whole same-epoch test and the division only runs on epoch changes).
func (ss *shardSet) onFire(ref eventRef) {
	ss.queues[ref.shard].fired++
	if ref.at < ss.epochEnd && ref.shard == ss.dispatching {
		return
	}
	if ref.at >= ss.epochEnd {
		ss.flushEpoch()
		ss.epoch = ref.at / ss.lookahead
		ss.epochEnd = (ss.epoch + 1) * ss.lookahead
	}
	ss.dispatching = ref.shard
	ss.mask |= 1 << uint(ref.shard)
}

// flushEpoch folds the current epoch's activity mask into the totals.
// Every epochPublishStride active epochs it also refreshes the
// published counter mirrors for mid-run observers.
func (ss *shardSet) flushEpoch() {
	mask := ss.mask
	if mask == 0 {
		return
	}
	ss.mask = 0
	ss.activeEpochs++
	ss.shardEpochSum += uint64(bits.OnesCount64(mask))
	if ss.activeEpochs&(epochPublishStride-1) == 0 {
		ss.publish()
	}
}

// publish refreshes every published counter mirror from the token-owned
// fields. Run calls it (under the token) on every exit path, so
// ShardStats is exact once Run has returned; between the periodic
// epoch-stride publishes, readers see the last published snapshot.
func (ss *shardSet) publish() {
	for i := range ss.queues {
		sq := &ss.queues[i]
		sq.pubScheduled.Store(sq.scheduled)
		sq.pubFired.Store(sq.fired)
	}
	ss.pubActiveMask.Store(ss.mask)
	ss.pubActiveEpochs.Store(ss.activeEpochs)
	ss.pubShardEpochSum.Store(ss.shardEpochSum)
	if ex := ss.exec; ex != nil {
		ex.publish()
	}
}

// ShardCounters is one shard's slice of the host-performance counters.
type ShardCounters struct {
	Scheduled uint64 `json:"scheduled"`
	Fired     uint64 `json:"fired"`
}

// ShardStats is the sharded kernel's decomposition report: cross-shard
// traffic, lookahead-violation count (zero on a correctly partitioned
// machine), and the epoch-concurrency profile. Snapshot semantics; safe
// to call mid-run from any goroutine — a watchdog or serving layer may
// sample a simulation the parallel executor is actively running. The
// counters read published atomic mirrors refreshed every
// epochPublishStride active epochs and on every Run exit: mid-run
// values may trail the live run by up to that stride, and are exact
// once Run has returned. (The snapshot is per-counter atomic, not
// globally consistent: sums taken mid-run may be one event apart.)
type ShardStats struct {
	Shards       int             `json:"shards"`
	Lookahead    Time            `json:"lookahead"`
	CrossPosts   uint64          `json:"cross_posts"`
	Violations   uint64          `json:"violations"`
	ActiveEpochs uint64          `json:"active_epochs"`
	ShardEpochs  uint64          `json:"shard_epochs"`
	PerShard     []ShardCounters `json:"per_shard"`
}

// AvgConcurrency is the mean number of distinct shards active per
// non-idle epoch — the speedup ceiling for a lock-step epoch-parallel
// executor of this decomposition on this workload.
func (s *ShardStats) AvgConcurrency() float64 {
	if s == nil || s.ActiveEpochs == 0 {
		return 0
	}
	return float64(s.ShardEpochs) / float64(s.ActiveEpochs)
}

// ShardStats returns the decomposition report, or nil on a serial
// kernel. The in-progress epoch is included.
func (k *Kernel) ShardStats() *ShardStats {
	ss := k.sh
	if ss == nil {
		return nil
	}
	st := &ShardStats{
		Shards:       len(ss.queues),
		Lookahead:    ss.lookahead,
		CrossPosts:   ss.crossPosts.Load(),
		Violations:   ss.violations.Load(),
		ActiveEpochs: ss.pubActiveEpochs.Load(),
		ShardEpochs:  ss.pubShardEpochSum.Load(),
		PerShard:     make([]ShardCounters, len(ss.queues)),
	}
	if mask := ss.pubActiveMask.Load(); mask != 0 {
		st.ActiveEpochs++
		st.ShardEpochs += uint64(bits.OnesCount64(mask))
	}
	for i := range ss.queues {
		st.PerShard[i] = ShardCounters{
			Scheduled: ss.queues[i].pubScheduled.Load(),
			Fired:     ss.queues[i].pubFired.Load(),
		}
	}
	return st
}

// dump appends the shard report to DumpState output. dump always runs
// on the goroutine holding the control token (Run's watchdog path),
// when every executor worker is parked, so it reads the token-owned
// counters and heap lengths directly — no publish needed.
func (ss *shardSet) dump(w io.Writer) {
	fmt.Fprintf(w, "shards: %d, lookahead=%d cycles, cross-posts=%d violations=%d\n",
		len(ss.queues), ss.lookahead, ss.crossPosts.Load(), ss.violations.Load())
	if ex := ss.exec; ex != nil {
		fmt.Fprintf(w, "  exec: parallel, %d workers, %d handoffs, %d inline, %d outboxed, %d flushes\n",
			len(ex.workers), ex.handoffs, ex.inline, ex.outboxed, ex.flushes)
	}
	for i := range ss.queues {
		sq := &ss.queues[i]
		fmt.Fprintf(w, "  shard %d: queued=%d (%d cancelled) scheduled=%d fired=%d\n",
			i, len(sq.q)-sq.tombstones, sq.tombstones, sq.scheduled, sq.fired)
	}
}
