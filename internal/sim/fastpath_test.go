package sim

import (
	"fmt"
	"testing"
)

// traceRun drives a deliberately twisty multi-proc scenario (timed
// waits with and without competing events, block/unblock wakeups,
// timers armed and cancelled, a nested zero-length wait) and returns
// the observation log. Fast-path and paranoid kernels must produce
// identical logs and final clocks.
func traceRun(t *testing.T, paranoid bool) ([]string, Time) {
	t.Helper()
	k := NewKernel()
	k.SetParanoid(paranoid)
	var log []string
	note := func(who string, p *Proc) {
		log = append(log, fmt.Sprintf("%s@%d", who, p.Now()))
	}
	var sleeper *Proc
	sleeper = k.NewProc("sleeper", 0, func(p *Proc) {
		note("s0", p)
		p.Block()
		note("s1", p)
		p.Delay(5)
		note("s2", p)
	})
	k.NewProc("worker", 0, func(p *Proc) {
		note("w0", p)
		p.Delay(3) // competes with waker's events: slow path
		note("w1", p)
		tm := p.Kernel().TimerAfter(1000, func() { t.Error("cancelled timer fired") })
		p.Delay(10)
		tm.Stop()
		note("w2", p)
		p.Delay(0) // zero wait: must not yield
		note("w3", p)
		p.Delay(500) // long tail with empty queue: fast path
		note("w4", p)
	})
	k.NewProc("waker", 1, func(p *Proc) {
		note("k0", p)
		p.Delay(6)
		sleeper.Unblock(p.Now() + 2)
		note("k1", p)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	return log, k.Now()
}

// TestWaitFastPathEquivalence proves the WaitUntil fast path is
// observationally invisible: same event interleaving, same
// per-observation clocks, same final time as the paranoid kernel.
func TestWaitFastPathEquivalence(t *testing.T) {
	fastLog, fastEnd := traceRun(t, false)
	slowLog, slowEnd := traceRun(t, true)
	if fastEnd != slowEnd {
		t.Fatalf("final clock: fast=%d paranoid=%d", fastEnd, slowEnd)
	}
	if len(fastLog) != len(slowLog) {
		t.Fatalf("log lengths differ: fast=%v paranoid=%v", fastLog, slowLog)
	}
	for i := range fastLog {
		if fastLog[i] != slowLog[i] {
			t.Fatalf("log diverges at %d: fast=%v paranoid=%v", i, fastLog, slowLog)
		}
	}
}

// TestFastPathTakesEffect guards against the fast path silently
// regressing into always-slow: a lone proc's timed waits over an empty
// queue must elide their events.
func TestFastPathTakesEffect(t *testing.T) {
	k := NewKernel()
	k.NewProc("p", 0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Delay(3)
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if k.FastWaits() < 90 {
		t.Fatalf("FastWaits = %d, want ~100 (fast path not taken)", k.FastWaits())
	}
	if k.Now() != 300 {
		t.Fatalf("final time = %d, want 300", k.Now())
	}
}

// TestFastPathHonoursDeadline: a wait past the watchdog deadline must
// fall back to the slow path so Run reports the deadline error, even
// though the queue is otherwise empty.
func TestFastPathHonoursDeadline(t *testing.T) {
	k := NewKernel()
	k.SetDeadline(100)
	k.NewProc("runaway", 0, func(p *Proc) {
		for {
			p.Delay(30)
		}
	})
	err := k.Run(nil)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if got := k.Now(); got > 100 {
		t.Fatalf("clock ran to %d, past the deadline 100", got)
	}
}

// TestFastPathHonoursStop: Run's stop predicate must be able to halt a
// proc whose waits would otherwise all take the fast path.
func TestFastPathHonoursStop(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.NewProc("stepper", 0, func(p *Proc) {
		for {
			steps++
			p.Delay(10)
		}
	})
	if err := k.Run(func() bool { return steps >= 5 }); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Fatalf("ran %d steps, want 5", steps)
	}
}

// TestFastPathSameTimeEventFirst: an event queued at exactly the
// wait's target time was scheduled earlier, so it must fire before the
// waiter resumes — the fast path may not leapfrog it.
func TestFastPathSameTimeEventFirst(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(10, func() { order = append(order, "event") })
	k.NewProc("p", 0, func(p *Proc) {
		p.WaitUntil(10)
		order = append(order, "proc")
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v, want [event proc]", order)
	}
}

// TestProcCrashStopsKernelFast: a proc panic must still surface as a
// Run error when other procs' waits ride the fast path.
func TestProcCrashStopsKernelFast(t *testing.T) {
	k := NewKernel()
	k.NewProc("bystander", 0, func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Delay(7)
		}
	})
	k.NewProc("crasher", 100, func(p *Proc) {
		panic("simulated bug")
	})
	if err := k.Run(nil); err == nil {
		t.Fatal("expected crash error")
	}
}
