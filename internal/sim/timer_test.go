package sim

import "testing"

func TestTimerFires(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	tm := k.TimerAt(50, func() { firedAt = k.Now() })
	if !tm.Active() {
		t.Fatal("armed timer not active")
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if firedAt != 50 {
		t.Fatalf("fired at %d, want 50", firedAt)
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported success")
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.TimerAt(50, func() { fired = true })
	k.At(10, func() {
		if !tm.Stop() {
			t.Error("in-time Stop reported failure")
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
}

// TestStoppedTimerLeavesNoTrace: a cancelled timer must not advance
// simulated time — its queue entry is skipped without touching the
// clock, so arming-and-cancelling is invisible in cycle counts.
func TestStoppedTimerLeavesNoTrace(t *testing.T) {
	k := NewKernel()
	tm := k.TimerAt(1_000_000, func() {})
	k.At(10, func() { tm.Stop() })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 10 {
		t.Fatalf("clock at %d after run, want 10 (cancelled timer advanced time)", k.Now())
	}
}

// TestStoppedTimerPastDeadline: a cancelled timer scheduled beyond the
// watchdog deadline must not trip it.
func TestStoppedTimerPastDeadline(t *testing.T) {
	k := NewKernel()
	k.SetDeadline(100)
	tm := k.TimerAt(500, func() {})
	k.At(10, func() { tm.Stop() })
	if err := k.Run(nil); err != nil {
		t.Fatalf("cancelled past-deadline timer tripped the watchdog: %v", err)
	}
}

// TestTombstoneCompaction: arm-and-cancel churn (the ULI steal-timeout
// pattern) must not grow the queue. 10k cancelled timers all aimed at
// the far future would previously sit in the heap until popped; the
// queue now compacts when tombstones outnumber half the live events.
func TestTombstoneCompaction(t *testing.T) {
	k := NewKernel()
	maxLen := 0
	k.NewProc("churner", 0, func(p *Proc) {
		for i := 0; i < 10_000; i++ {
			tm := k.TimerAfter(1_000_000, func() { t.Error("cancelled timer fired") })
			if !tm.Stop() {
				t.Error("in-time Stop failed")
			}
			if l := k.QueueLen(); l > maxLen {
				maxLen = l
			}
			p.Delay(1)
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	// Live events never exceed ~2 (the churner's own resume); with the
	// compaction floor at 32 the queue must stay tiny, not O(10k).
	if maxLen > 4*compactTombstoneFloor {
		t.Fatalf("queue grew to %d entries under arm/cancel churn, want <= %d",
			maxLen, 4*compactTombstoneFloor)
	}
	if k.Tombstones() > compactTombstoneFloor {
		t.Fatalf("%d tombstones left after run", k.Tombstones())
	}
	if k.Now() != 10_000 {
		t.Fatalf("clock at %d, want 10000 (cancelled timers advanced time)", k.Now())
	}
}

// TestTimerStaleHandleAfterReuse: a timer handle whose slot has fired
// and been recycled for a new event must go stale — Stop through it
// returns false and must not cancel the slot's new occupant.
func TestTimerStaleHandleAfterReuse(t *testing.T) {
	k := NewKernel()
	firstFired, secondFired := false, false
	tm1 := k.TimerAt(10, func() { firstFired = true })
	var tm2 *Timer
	k.At(20, func() {
		// tm1 fired at 10; its slot is free and this re-arms it.
		tm2 = k.TimerAt(30, func() { secondFired = true })
		if tm1.Stop() {
			t.Error("stale handle Stop reported success")
		}
		if tm1.Active() {
			t.Error("stale handle reports active")
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !firstFired || !secondFired {
		t.Fatalf("fired = %v,%v, want both (stale Stop cancelled a stranger)",
			firstFired, secondFired)
	}
	if tm2.Active() {
		t.Error("fired timer still active")
	}
}

func TestTimerAfter(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	k.At(30, func() {
		k.TimerAfter(20, func() { firedAt = k.Now() })
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if firedAt != 50 {
		t.Fatalf("fired at %d, want 50", firedAt)
	}
}
