package sim

import "testing"

func TestTimerFires(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	tm := k.TimerAt(50, func() { firedAt = k.Now() })
	if !tm.Active() {
		t.Fatal("armed timer not active")
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if firedAt != 50 {
		t.Fatalf("fired at %d, want 50", firedAt)
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported success")
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.TimerAt(50, func() { fired = true })
	k.At(10, func() {
		if !tm.Stop() {
			t.Error("in-time Stop reported failure")
		}
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
}

// TestStoppedTimerLeavesNoTrace: a cancelled timer must not advance
// simulated time — its queue entry is skipped without touching the
// clock, so arming-and-cancelling is invisible in cycle counts.
func TestStoppedTimerLeavesNoTrace(t *testing.T) {
	k := NewKernel()
	tm := k.TimerAt(1_000_000, func() {})
	k.At(10, func() { tm.Stop() })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 10 {
		t.Fatalf("clock at %d after run, want 10 (cancelled timer advanced time)", k.Now())
	}
}

// TestStoppedTimerPastDeadline: a cancelled timer scheduled beyond the
// watchdog deadline must not trip it.
func TestStoppedTimerPastDeadline(t *testing.T) {
	k := NewKernel()
	k.SetDeadline(100)
	tm := k.TimerAt(500, func() {})
	k.At(10, func() { tm.Stop() })
	if err := k.Run(nil); err != nil {
		t.Fatalf("cancelled past-deadline timer tripped the watchdog: %v", err)
	}
}

func TestTimerAfter(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	k.At(30, func() {
		k.TimerAfter(20, func() { firedAt = k.Now() })
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if firedAt != 50 {
		t.Fatalf("fired at %d, want 50", firedAt)
	}
}
