package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(10, func() { got = append(got, 1) })
	k.At(5, func() { got = append(got, 0) })
	k.At(10, func() { got = append(got, 2) }) // same time: scheduled later fires later
	k.At(20, func() { got = append(got, 3) })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("final time = %d, want 20", k.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() {
		k.After(4, func() {
			if k.Now() != 5 {
				t.Errorf("nested event at %d, want 5", k.Now())
			}
			fired++
		})
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("nested event did not fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcDelayAdvancesTime(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.NewProc("p", 0, func(p *Proc) {
		times = append(times, p.Now())
		p.Delay(7)
		times = append(times, p.Now())
		p.Delay(3)
		times = append(times, p.Now())
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 7, 10}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.NewProc("a", 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Delay(10)
			}
		})
		k.NewProc("b", 5, func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Delay(10)
			}
		})
		if err := k.Run(nil); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	// a at 0,10,20; b at 5,15,25 -> strict alternation starting with a.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
}

func TestProcZeroDelayDoesNotYield(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.NewProc("a", 0, func(p *Proc) {
		order = append(order, "a1")
		p.Delay(0) // must not give another proc a chance to run
		order = append(order, "a2")
	})
	k.NewProc("b", 0, func(p *Proc) {
		order = append(order, "b")
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a1" || order[1] != "a2" || order[2] != "b" {
		t.Fatalf("zero delay yielded control: %v", order)
	}
}

func TestBlockUnblock(t *testing.T) {
	k := NewKernel()
	var woke Time
	var p *Proc
	p = k.NewProc("sleeper", 0, func(pp *Proc) {
		pp.Block()
		woke = pp.Now()
	})
	k.At(42, func() { p.Unblock(42) })
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if woke != 42 {
		t.Fatalf("woke at %d, want 42", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	k.NewProc("stuck", 0, func(p *Proc) { p.Block() })
	if err := k.Run(nil); err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestDeadline(t *testing.T) {
	k := NewKernel()
	k.SetDeadline(100)
	k.NewProc("loop", 0, func(p *Proc) {
		for {
			p.Delay(10)
		}
	})
	if err := k.Run(nil); err == nil {
		t.Fatal("expected deadline error")
	}
}

func TestStopPredicate(t *testing.T) {
	k := NewKernel()
	n := 0
	for i := Time(1); i <= 100; i++ {
		k.At(i, func() { n++ })
	}
	err := k.Run(func() bool { return n >= 10 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("processed %d events, want 10", n)
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource("bank")
	// Back-to-back requests at the same instant serialize.
	d1 := r.Acquire(100, 10)
	d2 := r.Acquire(100, 10)
	d3 := r.Acquire(105, 10)
	if d1 != 110 || d2 != 120 || d3 != 130 {
		t.Fatalf("completions = %d,%d,%d; want 110,120,130", d1, d2, d3)
	}
	// A request after the resource drains sees no queueing.
	d4 := r.Acquire(500, 10)
	if d4 != 510 {
		t.Fatalf("idle completion = %d, want 510", d4)
	}
	if r.Busy != 40 || r.Uses != 4 {
		t.Fatalf("busy=%d uses=%d, want 40,4", r.Busy, r.Uses)
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("link")
	r.Acquire(0, 25)
	if got := r.Utilization(100); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization over zero elapsed = %v, want 0", got)
	}
}

// Property: resource completion times are monotone in arrival order and
// never overlap (each service occupies disjoint [done-service, done]).
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		r := NewResource("x")
		now := Time(0)
		prevDone := Time(0)
		for i, a := range arrivals {
			now += Time(a % 64)
			svc := Time(1)
			if i < len(services) {
				svc = Time(services[i]%16) + 1
			}
			done := r.Acquire(now, svc)
			if done < now+svc {
				return false // finished faster than service time
			}
			if done-svc < prevDone {
				return false // overlapped previous occupancy
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(123)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}
