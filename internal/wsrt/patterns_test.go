package wsrt

import (
	"testing"
	"testing/quick"

	"bigtiny/internal/cache"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
)

func TestParallelForRangeCoversDisjointRanges(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	rt := New(m, DTS)
	fid := rt.RegisterFunc("pfr", 512)
	n := 257 // deliberately not a power of two
	arr := m.Mem.AllocWords(n)
	if err := rt.Run(func(c *Ctx) {
		c.ParallelForRange(fid, 0, n, 10, func(cc *Ctx, lo, hi int) {
			if hi-lo > 10 || hi-lo <= 0 {
				t.Errorf("leaf range [%d,%d) violates grain", lo, hi)
			}
			for i := lo; i < hi; i++ {
				cc.Compute(5)
				// Fail on double-visit: add, don't overwrite.
				cc.Amo(arr+mem.Addr(i*8), cache.AmoAdd, uint64(i)+1, 0)
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Cache.DebugReadWord(arr + mem.Addr(i*8)); got != uint64(i)+1 {
			t.Fatalf("index %d visited %s", i, map[bool]string{true: "never", false: "twice"}[got == 0])
		}
	}
}

func TestForkNoBodiesIsNoop(t *testing.T) {
	m := smallMachine(t, "gwb", false)
	rt := New(m, HCC)
	ran := false
	if err := rt.Run(func(c *Ctx) {
		c.Fork(0)
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("root did not complete")
	}
	if rt.Stats.Spawns != 0 {
		t.Fatal("empty fork spawned tasks")
	}
}

func TestParallelForEmptyRange(t *testing.T) {
	m := smallMachine(t, "mesi", false)
	rt := New(m, HW)
	if err := rt.Run(func(c *Ctx) {
		c.ParallelFor(0, 5, 5, 4, func(cc *Ctx, i int) {
			t.Error("body invoked for empty range")
		})
		c.ParallelFor(0, 7, 3, 4, func(cc *Ctx, i int) {
			t.Error("body invoked for negative range")
		})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDequeOverflowIsMachineCrash(t *testing.T) {
	// Spawning more unconsumed tasks than the deque holds must surface
	// as a simulated-machine crash (an error from Run), not a Go panic.
	// A single-core machine guarantees no thief drains the deque while
	// the spawner floods it.
	base, err0 := machine.Lookup("IOx1")
	if err0 != nil {
		t.Fatal(err0)
	}
	base.Deadline = 100_000_000_000
	m := machine.New(base)
	rt := New(m, HW)
	fid := rt.RegisterFunc("flood", 256)
	err := rt.Run(func(c *Ctx) {
		p := c.cur
		c.Store(p+descRC*8, uint64(dequeCapacity+10))
		for i := 0; i < dequeCapacity+10; i++ {
			c.spawnTask(c.newTask(fid, func(cc *Ctx) {}))
		}
		c.wait(p)
	})
	if err == nil {
		t.Fatal("deque overflow went unnoticed")
	}
}

// Property: a random fork tree computes the same result simulated (on
// an HCC machine) as natively — the runtime's coherence discipline
// never changes program semantics.
func TestRandomForkTreeSimMatchesNative(t *testing.T) {
	type shape struct {
		Widths []uint8
		Depth  uint8
	}
	f := func(sh shape) bool {
		depth := int(sh.Depth%3) + 1
		widths := sh.Widths
		if len(widths) == 0 {
			widths = []uint8{2}
		}
		// The program: a recursive tree where each node at level l forks
		// widths[l % len] children and leaves add a hash of their path
		// into an accumulator via AMO.
		build := func(c *Ctx, acc mem.Addr) {
			var rec func(cc *Ctx, level int, path uint64)
			rec = func(cc *Ctx, level int, path uint64) {
				cc.Compute(3)
				if level == depth {
					cc.Amo(acc, cache.AmoAdd, path*2654435761+1, 0)
					return
				}
				w := int(widths[level%len(widths)]%3) + 1
				bodies := make([]Body, w)
				for i := 0; i < w; i++ {
					i := i
					bodies[i] = func(c2 *Ctx) { rec(c2, level+1, path*7+uint64(i)) }
				}
				cc.Fork(0, bodies...)
			}
			rec(c, 0, 1)
		}

		// Native run.
		nm := mem.New()
		nacc := nm.AllocWords(1)
		NativeRun(nm, func(c *Ctx) { build(c, nacc) })
		want := nm.ReadWord(nacc)

		// Simulated run on the most demanding protocol.
		m := smallMachine(t, "gwb", true)
		rt := New(m, DTS)
		acc := m.Mem.AllocWords(1)
		if err := rt.Run(func(c *Ctx) { build(c, acc) }); err != nil {
			t.Log(err)
			return false
		}
		return m.Cache.DebugReadWord(acc) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterFuncFootprints(t *testing.T) {
	m := smallMachine(t, "mesi", false)
	rt := New(m, HW)
	a := rt.RegisterFunc("a", 1024)
	b := rt.RegisterFunc("b", 0)
	if a == b {
		t.Fatal("duplicate fids")
	}
	if rt.footprint(a) != 1024 {
		t.Fatal("explicit footprint lost")
	}
	if rt.footprint(b) != 1024 { // default
		t.Fatalf("default footprint = %d", rt.footprint(b))
	}
	if rt.footprint(9999) != 1024 {
		t.Fatal("out-of-range fid should use default")
	}
}

func TestParallelForAuto(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	rt := New(m, DTS)
	fid := rt.RegisterFunc("auto", 512)
	n := 1000
	arr := m.Mem.AllocWords(n)
	if err := rt.Run(func(c *Ctx) {
		c.ParallelForAuto(fid, 0, n, func(cc *Ctx, i int) {
			cc.Compute(10)
			cc.Store(arr+mem.Addr(i*8), uint64(i)*3)
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Cache.DebugReadWord(arr + mem.Addr(i*8)); got != uint64(i)*3 {
			t.Fatalf("arr[%d] = %d", i, got)
		}
	}
	// The heuristic must actually have split the range: with 8 threads
	// and n=1000 the grain is ~15, giving >= 64 leaf tasks.
	if rt.Stats.Spawns < 64 {
		t.Fatalf("auto grain spawned only %d tasks", rt.Stats.Spawns)
	}
}

func TestParallelForAutoSingleThread(t *testing.T) {
	// nthreads == 1: grain heuristic must not divide by zero or stall.
	base, err := machine.Lookup("IOx1")
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(base)
	rt := New(m, HW)
	sum := m.Mem.AllocWords(1)
	if err := rt.Run(func(c *Ctx) {
		c.ParallelForAuto(0, 0, 10, func(cc *Ctx, i int) {
			cc.Amo(sum, cache.AmoAdd, uint64(i), 0)
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.Cache.DebugReadWord(sum); got != 45 {
		t.Fatalf("sum = %d, want 45", got)
	}
}
