package wsrt

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/sim"
)

// This file adds the open-system primitives: a fire-and-forget spawn
// (requests arrive one at a time and must not block the acceptor the
// way Fork's spawn-all-then-wait does) and the matching deferred joins.
// They compose with the existing Figure 3 engines — an async child is
// an ordinary task descriptor whose join goes through the same
// per-variant reference-count discipline, so steals, ULI recovery, and
// dead-core reclaim all apply unchanged.

// Now returns the current simulated cycle on this thread.
func (c *Ctx) Now() sim.Time { return c.env.Now() }

// IdleUntil parks the thread until cycle t (no-op when t has passed)
// while staying responsive to incoming ULI steal requests. Open-system
// drivers use it to sleep until the next scheduled arrival.
func (c *Ctx) IdleUntil(t sim.Time) {
	if c.native {
		return
	}
	c.env.IdleUntil(t)
}

// SpawnAsync spawns body as a child of the current task without
// waiting for it; the caller joins all outstanding children later with
// WaitChildren (or WaitChildrenUntil). Unlike Fork, which initializes
// the reference count once with a plain store before any child exists,
// an async spawner's earlier children may already be executing — and,
// under DTS, may already have been stolen — so the count is bumped
// with an AMO. The AMO is coherent against every concurrent decrement
// the variants perform (stolen children always decrement with AMOs,
// and local plain-RMW decrements happen on this same thread).
func (c *Ctx) SpawnAsync(fid int, body Body) {
	if c.native {
		// Depth-first native execution: run the child inline.
		if r := c.spanRec; r != nil {
			r.sync()
			s0 := r.cur
			r.tasks++
			r.cur = 0
			body(c)
			r.sync()
			child := r.cur
			r.cur = s0 + child
			return
		}
		body(c)
		return
	}
	p := c.cur
	c.env.Amo(p+descRC*8, cache.AmoAdd, 1, 0)
	t := c.newTask(fid, body)
	c.spawnTask(t)
}

// WaitChildren blocks until every child spawned so far (by Fork or
// SpawnAsync) has joined, executing local and stolen work meanwhile.
func (c *Ctx) WaitChildren() {
	if c.native {
		return
	}
	c.wait(c.cur)
}

// WaitChildrenUntil is WaitChildren with a horizon: it executes work
// until every child has joined or the simulated clock reaches
// deadline, whichever is first, and reports whether it drained. A
// false return means children are still in flight — the open-system
// accounting counts them as InFlightAtEnd.
func (c *Ctx) WaitChildrenUntil(deadline sim.Time) bool {
	if c.native {
		return true
	}
	return c.waitDeadline(c.cur, deadline)
}
