package wsrt

import "bigtiny/internal/mem"

// Fork is the parallel_invoke pattern (paper Fig. 2b): set the current
// task's reference count, spawn one child per body, and wait for them
// all to join. Matching the paper's usage, the reference count is
// written once with plain stores *before* any child becomes visible,
// so no atomicity is needed for the initialization.
func (c *Ctx) Fork(fid int, bodies ...Body) {
	if c.native {
		if r := c.spanRec; r != nil {
			// Cilkview-style span accounting: the fork's span is the
			// serial prefix plus the maximum child span.
			r.sync()
			s0 := r.cur
			var maxChild uint64
			for _, b := range bodies {
				r.tasks++
				r.cur = 0
				b(c)
				r.sync()
				if r.cur > maxChild {
					maxChild = r.cur
				}
			}
			r.cur = s0 + maxChild
			return
		}
		for _, b := range bodies {
			b(c)
		}
		return
	}
	if len(bodies) == 0 {
		return
	}
	p := c.cur
	c.env.Store(p+descRC*8, uint64(len(bodies)))
	tasks := make([]mem.Addr, len(bodies))
	for i, b := range bodies {
		tasks[i] = c.newTask(fid, b)
	}
	for _, t := range tasks {
		c.spawnTask(t)
	}
	c.wait(p)
}

// ParallelFor is the parallel_for pattern (paper Fig. 2c): the range
// [lo, hi) is split recursively into tasks of at most grain iterations
// (grain is the paper's §V-D task granularity). body(c, i) is invoked
// once per index.
func (c *Ctx) ParallelFor(fid, lo, hi, grain int, body func(c *Ctx, i int)) {
	if grain <= 0 {
		grain = c.rt.Grain
	}
	c.pfor(fid, lo, hi, grain, body)
}

func (c *Ctx) pfor(fid, lo, hi, grain int, body func(c *Ctx, i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n <= grain {
		for i := lo; i < hi; i++ {
			body(c, i)
		}
		return
	}
	mid := lo + n/2
	c.Fork(fid,
		func(cc *Ctx) { cc.pfor(fid, lo, mid, grain, body) },
		func(cc *Ctx) { cc.pfor(fid, mid, hi, grain, body) },
	)
}

// ParallelForRange is ParallelFor with leaf-granularity bodies: body
// receives each leaf's whole [lo, hi) sub-range. Kernels use it when a
// task wants per-leaf state (e.g. a local buffer of discovered
// vertices flushed with one atomic, Ligra-style).
func (c *Ctx) ParallelForRange(fid, lo, hi, grain int, body func(c *Ctx, lo, hi int)) {
	if grain <= 0 {
		grain = c.rt.Grain
	}
	c.pforRange(fid, lo, hi, grain, body)
}

func (c *Ctx) pforRange(fid, lo, hi, grain int, body func(c *Ctx, lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n <= grain {
		body(c, lo, hi)
		return
	}
	mid := lo + n/2
	c.Fork(fid,
		func(cc *Ctx) { cc.pforRange(fid, lo, mid, grain, body) },
		func(cc *Ctx) { cc.pforRange(fid, mid, hi, grain, body) },
	)
}

// ParallelReduce computes a reduction over [lo, hi) with the same
// recursive splitting as ParallelFor. Partial results flow through
// simulated memory (each leaf writes its partial into a dedicated
// word), preserving DAG-consistent data sharing.
func (c *Ctx) ParallelReduce(fid, lo, hi, grain int,
	leaf func(c *Ctx, lo, hi int) uint64,
	combine func(a, b uint64) uint64) uint64 {
	if grain <= 0 {
		grain = c.rt.Grain
	}
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if n <= grain {
		return leaf(c, lo, hi)
	}
	mid := lo + n/2
	la := c.Alloc(1)
	ra := c.Alloc(1)
	c.Fork(fid,
		func(cc *Ctx) { cc.Store(la, cc.ParallelReduce(fid, lo, mid, grain, leaf, combine)) },
		func(cc *Ctx) { cc.Store(ra, cc.ParallelReduce(fid, mid, hi, grain, leaf, combine)) },
	)
	return combine(c.Load(la), c.Load(ra))
}

// ParallelForAuto is ParallelFor with an automatically chosen grain:
// the range is split into roughly 8 tasks per thread, a standard
// adaptive-granularity heuristic (the paper's §V-D picks grains by
// profiling; this is the runtime's built-in default for callers that do
// not want to tune).
func (c *Ctx) ParallelForAuto(fid, lo, hi int, body func(c *Ctx, i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	grain := n / (8 * c.rt.nthreads)
	if grain < 1 {
		grain = 1
	}
	c.ParallelFor(fid, lo, hi, grain, body)
}
