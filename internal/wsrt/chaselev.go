package wsrt

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/mem"
)

// Lock-free Chase-Lev deque operations (Chase & Lev, SPAA 2005 — cited
// by the paper's §VII discussion of task-queue efficiency). Enabled by
// RT.LockFreeDeque for the hardware-coherent (HW) runtime: owners push
// and pop without atomics in the common case; thieves race with a
// single compare-and-swap on head. The protocol relies on
// hardware-coherent loads of head/tail, so it is only legal on MESI
// machines — the HCC variants must keep the lock + invalidate/flush
// discipline of paper Fig. 3(b).
//
// head is only ever incremented (by successful steals and by the owner
// claiming the last element), so there is no ABA problem.

// clEnq is the owner's lock-free push.
func (c *Ctx) clEnq(d deque, task mem.Addr) {
	c.env.Compute(c.rt.Costs.DequeOp)
	tail := c.env.Load(d.tailAddr())
	head := c.env.Load(d.headAddr())
	if tail-head >= dequeCapacity {
		panic("wsrt: task deque overflow")
	}
	c.env.Store(d.slotAddr(tail), uint64(task))
	// Publish the element before advancing tail (release store; the
	// simulated machine is store-atomic at instruction boundaries).
	c.env.Store(d.tailAddr(), tail+1)
}

// clDeq is the owner's lock-free pop (LIFO end). The owner reserves the
// slot by decrementing tail first, then checks whether a thief raced it
// to the final element; the race is settled by one CAS on head.
func (c *Ctx) clDeq(d deque) mem.Addr {
	c.env.Compute(c.rt.Costs.DequeOp)
	tail := c.env.Load(d.tailAddr())
	head := c.env.Load(d.headAddr())
	if head == tail {
		return 0 // empty; no reservation needed
	}
	t := tail - 1
	c.env.Store(d.tailAddr(), t) // reserve (fences on real hardware)
	head = c.env.Load(d.headAddr())
	switch {
	case head > t:
		// A thief already took it; undo the reservation.
		c.env.Store(d.tailAddr(), tail)
		return 0
	case head == t:
		// Racing for the last element: claim it through head like a
		// thief would, and restore tail to the now-empty position.
		won := c.env.Amo(d.headAddr(), cache.AmoCAS, head, head+1) == head
		c.env.Store(d.tailAddr(), tail)
		if !won {
			return 0
		}
		return mem.Addr(c.env.Load(d.slotAddr(t)))
	default:
		// No race possible: plain pop.
		return mem.Addr(c.env.Load(d.slotAddr(t)))
	}
}

// clSteal is the thief's lock-free FIFO pop: read head/tail, read the
// slot, then claim it with a CAS on head.
func (c *Ctx) clSteal(d deque) mem.Addr {
	c.env.Compute(c.rt.Costs.DequeOp)
	head := c.env.Load(d.headAddr())
	tail := c.env.Load(d.tailAddr())
	if head >= tail {
		return 0
	}
	t := c.env.Load(d.slotAddr(head))
	if c.env.Amo(d.headAddr(), cache.AmoCAS, head, head+1) != head {
		return 0 // lost the race; caller retries elsewhere
	}
	return mem.Addr(t)
}
