package wsrt

import (
	"testing"
	"testing/quick"

	"bigtiny/internal/cache"
	"bigtiny/internal/mem"
)

func TestChaseLevFibCorrect(t *testing.T) {
	m := smallMachine(t, "mesi", false)
	rt := New(m, HW)
	rt.LockFreeDeque = true
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	if err := rt.Run(fibProgram(fid, 16, out)); err != nil {
		t.Fatal(err)
	}
	if got := m.Cache.DebugReadWord(out); got != 987 {
		t.Fatalf("fib(16) = %d, want 987 (stats %v)", got, rt.Stats)
	}
	if rt.Stats.StealHits == 0 {
		t.Fatal("lock-free run never stole")
	}
}

// Property: under random fork trees, the lock-free deque loses no task
// and duplicates no task (every spawned task executes exactly once).
func TestChaseLevNoLossNoDupProperty(t *testing.T) {
	f := func(seed uint8, width uint8) bool {
		depth := int(seed%3) + 2
		w := int(width%2) + 2
		m := smallMachine(t, "mesi", false)
		rt := New(m, HW)
		rt.LockFreeDeque = true
		fid := rt.RegisterFunc("tree", 512)
		acc := m.Mem.AllocWords(1)
		var expect uint64
		var rec func(c *Ctx, level int)
		rec = func(c *Ctx, level int) {
			c.Compute(5)
			if level == 0 {
				c.Amo(acc, cache.AmoAdd, 1, 0)
				return
			}
			bodies := make([]Body, w)
			for i := range bodies {
				bodies[i] = func(cc *Ctx) { rec(cc, level-1) }
			}
			c.Fork(fid, bodies...)
		}
		leaves := uint64(1)
		for i := 0; i < depth; i++ {
			leaves *= uint64(w)
		}
		expect = leaves
		if err := rt.Run(func(c *Ctx) { rec(c, depth) }); err != nil {
			t.Log(err)
			return false
		}
		if got := m.Cache.DebugReadWord(acc); got != expect {
			t.Logf("leaves executed %d, want %d", got, expect)
			return false
		}
		// Runtime invariant: every spawn executed exactly once.
		s := rt.Stats
		return s.LocalExecs+s.StolenExec == s.Spawns+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The lock-free deque must reduce deque-related atomics: the owner's
// push/pop path performs no AMO at all in the common case.
func TestChaseLevReducesAtomics(t *testing.T) {
	amosFor := func(lockFree bool) uint64 {
		m := smallMachine(t, "mesi", false)
		rt := New(m, HW)
		rt.LockFreeDeque = lockFree
		fid := rt.RegisterFunc("pf", 512)
		n := 1024
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *Ctx) {
			c.ParallelFor(fid, 0, n, 16, func(cc *Ctx, i int) {
				cc.Compute(20)
				cc.Store(arr+mem.Addr(i*8), uint64(i))
			})
		}); err != nil {
			t.Fatal(err)
		}
		var amos uint64
		for _, core := range m.Cores {
			amos += core.L1D.Stats.Amos
		}
		return amos
	}
	locked := amosFor(false)
	lockFree := amosFor(true)
	if lockFree*2 >= locked {
		t.Errorf("lock-free AMOs (%d) not well below locked (%d)", lockFree, locked)
	}
}

func TestLockFreeIgnoredOnHCC(t *testing.T) {
	// Setting the flag on an HCC machine must not break correctness —
	// the HCC engine keeps its lock + invalidate/flush discipline.
	m := smallMachine(t, "gwb", false)
	rt := New(m, HCC)
	rt.LockFreeDeque = true
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	if err := rt.Run(fibProgram(fid, 14, out)); err != nil {
		t.Fatal(err)
	}
	if got := m.Cache.DebugReadWord(out); got != 377 {
		t.Fatalf("fib(14) = %d, want 377", got)
	}
}
