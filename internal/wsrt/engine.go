package wsrt

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/trace"
)

// This file implements paper Figure 3: the deque primitives and the
// three spawn/wait engines.

// --- deque primitives (all accesses go through simulated memory) ---

// lockAcquire spins on a test-and-set built from amo_or.
func (c *Ctx) lockAcquire(d deque) {
	for c.env.Amo(d.lockAddr(), cache.AmoOr, 1, 0) != 0 {
		c.env.Compute(4) // spin backoff
	}
}

// lockRelease stores zero (release on a coherent lock word: the lock
// word itself is accessed with AMOs, whose L2/ownership handling makes
// the release visible).
func (c *Ctx) lockRelease(d deque) {
	c.env.Amo(d.lockAddr(), cache.AmoAnd, 0, 0)
}

// enq pushes a task on the tail (owner side, LIFO end).
func (c *Ctx) enq(d deque, task mem.Addr) {
	c.env.Compute(c.rt.Costs.DequeOp)
	tail := c.env.Load(d.tailAddr())
	head := c.env.Load(d.headAddr())
	if tail-head >= dequeCapacity {
		panic("wsrt: task deque overflow")
	}
	c.env.Store(d.slotAddr(tail), uint64(task))
	c.env.Store(d.tailAddr(), tail+1)
}

// deq pops from the tail (owner side, LIFO order); 0 when empty.
func (c *Ctx) deq(d deque) mem.Addr {
	c.env.Compute(c.rt.Costs.DequeOp)
	tail := c.env.Load(d.tailAddr())
	head := c.env.Load(d.headAddr())
	if head == tail {
		return 0
	}
	t := c.env.Load(d.slotAddr(tail - 1))
	c.env.Store(d.tailAddr(), tail-1)
	return mem.Addr(t)
}

// stealHead pops from the head (thief side, FIFO order); 0 when empty.
func (c *Ctx) stealHead(d deque) mem.Addr {
	c.env.Compute(c.rt.Costs.DequeOp)
	head := c.env.Load(d.headAddr())
	tail := c.env.Load(d.tailAddr())
	if head == tail {
		return 0
	}
	t := c.env.Load(d.slotAddr(head))
	c.env.Store(d.headAddr(), head+1)
	return mem.Addr(t)
}

// chooseVictim picks a steal victim per the configured policy
// (default: uniformly random other thread, the paper's
// "random victim selection").
func (c *Ctx) chooseVictim() int {
	c.env.Compute(c.rt.Costs.VictimSelect)
	n := c.rt.nthreads
	if n == 1 {
		return c.tid // single-threaded: only the (empty) own deque exists
	}
	var v int
	switch c.rt.Victim {
	case RoundRobinVictim:
		for {
			c.rrNext = (c.rrNext + 1) % n
			if c.rrNext != c.tid {
				v = c.rrNext
				goto picked
			}
		}
	case StickyVictim:
		// Retry the last successful victim while it keeps paying off.
		if c.failStreak == 0 && c.lastVictim != c.tid && c.lastVictim < n {
			v = c.lastVictim
			goto picked
		}
	}
	v = c.env.Rand().Intn(n - 1)
	if v >= c.tid {
		v++
	}
picked:
	if c.rt.lossy {
		v = c.avoidQuarantined(v)
	}
	return v
}

// avoidQuarantined redraws a few times when the picked victim is
// quarantined (persistently failing but not known offline — offline
// victims must stay choosable so their stranded work gets reclaimed).
// Bounded redraws keep victim selection cheap and preserve liveness
// when every victim is quarantined at once.
func (c *Ctx) avoidQuarantined(v int) int {
	rt := c.rt
	n := rt.nthreads
	for retry := 0; retry < 3; retry++ {
		if rt.offlineMark[v] || c.env.Now() >= rt.quarUntil[v] {
			return v
		}
		v = c.env.Rand().Intn(n - 1)
		if v >= c.tid {
			v++
		}
	}
	return v
}

// --- spawn: Figure 3 lines 1-7 ---

// spawnTask enqueues a task descriptor per the variant's discipline.
func (c *Ctx) spawnTask(t mem.Addr) {
	rt := c.rt
	rt.Stats.Spawns++
	rt.Tracer.Emit(c.env.Now(), c.tid, trace.Spawn, uint64(t))
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))
	c.env.Compute(c.rt.Costs.Spawn)
	d := rt.deques[c.tid]
	switch rt.Variant {
	case HW: // Fig 3(a)
		if rt.LockFreeDeque {
			c.clEnq(d, t)
			return
		}
		c.lockAcquire(d)
		c.enq(d, t)
		c.lockRelease(d)
	case HCC: // Fig 3(b): invalidate after acquire, flush before release
		c.lockAcquire(d)
		c.env.CacheInvalidate()
		c.enq(d, t)
		c.env.CacheFlush()
		c.lockRelease(d)
	case DTS, DTSNoOpt: // Fig 3(c): private deque; just defer interrupts
		c.env.ULIDisable()
		c.enq(d, t)
		c.env.ULIEnable()
	}
}

// popLocal dequeues from the thread's own deque per the variant.
func (c *Ctx) popLocal() mem.Addr {
	rt := c.rt
	d := rt.deques[c.tid]
	switch rt.Variant {
	case HW:
		if rt.LockFreeDeque {
			return c.clDeq(d)
		}
		c.lockAcquire(d)
		t := c.deq(d)
		c.lockRelease(d)
		return t
	case HCC:
		c.lockAcquire(d)
		c.env.CacheInvalidate()
		t := c.deq(d)
		c.env.CacheFlush()
		c.lockRelease(d)
		return t
	case DTS, DTSNoOpt:
		c.env.ULIDisable()
		t := c.deq(d)
		c.env.ULIEnable()
		return t
	}
	panic("wsrt: bad variant")
}

// probeEmpty checks a victim's deque without taking its lock, using
// plain loads of head/tail. Thieves probing constantly is the common
// idle-machine case, and probing with the lock would migrate the lock
// line's ownership to every prober in turn — a recall storm that
// serializes the victim's own deque accesses (the classic
// test-and-set-without-test spin-lock pathology). With plain loads the
// probe costs the thief two (mostly cached) loads and the victim
// nothing. Under HCC the probe is preceded by a cache_invalidate so
// the loads observe fresh values.
func (c *Ctx) probeEmpty(d deque) bool {
	c.env.Compute(2)
	head := c.env.Load(d.headAddr())
	tail := c.env.Load(d.tailAddr())
	return head == tail
}

// trySteal attempts one steal per the variant; returns the stolen task
// descriptor or 0.
func (c *Ctx) trySteal() mem.Addr {
	rt := c.rt
	rt.Stats.StealTries++
	vid := c.chooseVictim()
	rt.Tracer.Emit(c.env.Now(), c.tid, trace.StealTry, uint64(vid))
	t := c.stealFrom(vid)
	if t != 0 {
		c.lastVictim = vid
		if rt.lossy {
			rt.vfails[vid] = 0
			if rt.offlineMark[vid] {
				rt.Stats.Reclaims++
				rt.Tracer.Emit(c.env.Now(), c.tid, trace.Reclaim, uint64(t))
			}
		}
	}
	if rt.Tracer != nil {
		if t != 0 {
			rt.Tracer.Emit(c.env.Now(), c.tid, trace.StealHit, uint64(t))
		} else {
			rt.Tracer.Emit(c.env.Now(), c.tid, trace.StealMiss, uint64(vid))
		}
	}
	return t
}

// stealFrom performs the per-variant steal against victim vid.
func (c *Ctx) stealFrom(vid int) mem.Addr {
	rt := c.rt
	switch rt.Variant {
	case HW: // Fig 3(a) lines 19-23, with a lock-free emptiness probe
		d := rt.deques[vid]
		if c.probeEmpty(d) {
			return 0
		}
		var t mem.Addr
		if rt.LockFreeDeque {
			t = c.clSteal(d)
		} else {
			c.lockAcquire(d)
			t = c.stealHead(d)
			c.lockRelease(d)
		}
		if t != 0 {
			rt.Stats.StealHits++
		}
		return t
	case HCC: // Fig 3(b) lines 24-30, with an invalidate+probe first
		d := rt.deques[vid]
		c.env.CacheInvalidate()
		if c.probeEmpty(d) {
			return 0
		}
		c.lockAcquire(d)
		c.env.CacheInvalidate()
		t := c.stealHead(d)
		if !rt.SkipStealFlush {
			c.env.CacheFlush()
		}
		c.lockRelease(d)
		if t != 0 {
			rt.Stats.StealHits++
		}
		return t
	case DTS, DTSNoOpt: // Fig 3(c) lines 24-27: uli_send_req + mailbox read
		if rt.lossy && rt.offlineMark[vid] {
			// The victim's scheduling loop is dead: its ULI unit only
			// NACKs. Go in through shared memory instead.
			return c.reclaimFrom(vid)
		}
		payload, ok := c.env.ULISendReq(vid)
		if !ok {
			rt.Stats.StealNacks++
			c.noteVictimFailure(vid)
			return 0
		}
		if payload != 0 {
			rt.Stats.StealHits++
		}
		return mem.Addr(payload)
	}
	panic("wsrt: bad variant")
}

// noteVictimFailure feeds the quarantine: enough consecutive NACKs or
// timeouts against one victim (across all thieves) and victim selection
// stops wasting round trips on it for a while.
func (c *Ctx) noteVictimFailure(vid int) {
	rt := c.rt
	if !rt.lossy {
		return
	}
	rt.vfails[vid]++
	if rt.vfails[vid] >= rt.QuarantineThreshold {
		rt.quarUntil[vid] = c.env.Now() + rt.QuarantineCycles
		rt.vfails[vid] = 0
	}
}

// reclaimFrom takes stranded work from a fail-stopped victim. The
// victim's deque is private under DTS, but it lives in shared memory;
// with the owner dead, reclaimers coordinate among themselves using the
// deque's lock line (allocated but unused by the DTS variant) and the
// full HCC steal discipline. Tasks can also be stranded in the dead
// core's ULI salvage mailbox (an ACK that arrived after its last
// timeout); those are rescued first via a memory-mapped mailbox read.
func (c *Ctx) reclaimFrom(vid int) mem.Addr {
	rt := c.rt
	if p, ok := rt.M.ULI.Unit(vid).TakeLate(); ok && p != 0 {
		rt.Stats.StealHits++
		return mem.Addr(p)
	}
	d := rt.deques[vid]
	c.env.CacheInvalidate()
	if c.probeEmpty(d) {
		return 0
	}
	c.lockAcquire(d)
	c.env.CacheInvalidate()
	t := c.stealHead(d)
	c.env.CacheFlush()
	c.lockRelease(d)
	if t == 0 {
		return 0
	}
	rt.Stats.StealHits++
	// The dead owner can no longer set its parents' stolen flags from
	// the inside (the DTS plain-store optimization needs the parent on
	// the victim's own thread); publish the steal coherently instead.
	parent := mem.Addr(c.env.Load(t + descParent*8))
	if parent != 0 {
		c.env.Amo(parent+descStolen*8, cache.AmoOr, 1, 0)
	}
	return t
}

// uliHandler is the DTS steal handler (Fig 3(c) lines 47-54). It runs
// on the victim's thread at an interrupt boundary; the returned payload
// is the response message's single word.
func (c *Ctx) uliHandler(thief int) uint64 {
	c.env.Compute(c.rt.Costs.HandlerBody)
	t := c.deq(c.rt.deques[c.tid])
	if t == 0 {
		return 0
	}
	// Mark the parent so it switches to AMO-based synchronization
	// (plain store: the parent task runs on this very thread, §IV-C).
	parent := mem.Addr(c.env.Load(t + descParent*8))
	if parent != 0 {
		c.env.Store(parent+descStolen*8, 1)
	}
	// Make everything the victim wrote (task arguments, parent data)
	// visible before handing the task over.
	if !c.rt.SkipStealFlush {
		c.env.CacheFlush()
	}
	return uint64(t)
}

// salvageTask takes ownership of a task from a stale steal ACK: the
// victim handed it over, but this thief had already timed out, so the
// response register was never read. It is enqueued locally, marked
// cross-core so the eventual pop runs it with the stolen-task
// discipline. Runs at Poll under the unit's handling latch (incoming
// requests are NACKed for its duration).
func (c *Ctx) salvageTask(t mem.Addr) {
	rt := c.rt
	rt.Stats.Salvages++
	if rec := rt.tasks[t]; rec != nil {
		rec.crossCore = true
	}
	c.enq(rt.deques[c.tid], t)
}

// restituteTask returns a task this (victim) core handed over in an ACK
// that was then dropped: the thief never got it, so the victim keeps
// it. The handler already published the parent's stolen flag — that is
// only conservative (the parent falls back to AMO-based joining) — and
// the task's data never left this core, so it re-enters the own deque
// as an ordinary local task. Runs at Poll under the handling latch.
func (c *Ctx) restituteTask(t mem.Addr) {
	c.enq(c.rt.deques[c.tid], t)
}

// execLocal executes a task popped from the own deque, honouring the
// cross-core mark salvaged tasks carry.
func (c *Ctx) execLocal(t mem.Addr) {
	if rec := c.rt.tasks[t]; rec != nil && rec.crossCore {
		rec.crossCore = false
		c.executeTask(t, true)
		return
	}
	c.executeTask(t, false)
}

// enterOffline performs the fail-stop transition: flush dirty state (a
// controlled shutdown — results of tasks this core already executed
// stay visible), mark the core dead for thieves, and record when
// degraded mode began.
func (c *Ctx) enterOffline() {
	rt := c.rt
	c.env.CacheFlush()
	rt.offlineMark[c.tid] = true
	rt.Stats.OfflineCores++
	if rt.degradedSince == 0 {
		rt.degradedSince = c.env.Now()
	}
	rt.Tracer.Emit(c.env.Now(), c.tid, trace.Offline, 0)
}

// --- task execution and joining ---

// executeTask runs a dequeued/stolen task and performs the
// post-execution join bookkeeping per variant.
func (c *Ctx) executeTask(t mem.Addr, stolen bool) {
	rt := c.rt
	rec := rt.tasks[t]
	if rec == nil {
		panic("wsrt: executing unknown task (corrupted deque or stale steal)")
	}
	if stolen {
		rt.Stats.StolenExec++
	} else {
		rt.Stats.LocalExecs++
	}

	if stolen {
		switch rt.Variant {
		case HCC, DTS, DTSNoOpt:
			// The task and its inputs were produced on another core.
			c.env.CacheInvalidate()
		}
	}

	rt.Tracer.Emit(c.env.Now(), c.tid, trace.ExecStart, uint64(t))
	prev := c.cur
	c.cur = t
	c.env.SetFunc(rec.fid, rt.footprint(rec.fid))
	c.env.Compute(c.rt.Costs.TaskProlog)
	rec.body(c)
	c.cur = prev
	rt.Tracer.Emit(c.env.Now(), c.tid, trace.ExecEnd, uint64(t))
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))

	parent := mem.Addr(c.env.Load(t + descParent*8))
	if stolen {
		switch rt.Variant {
		case HCC, DTS, DTSNoOpt:
			// Make the task's results visible to the parent's thread.
			c.env.CacheFlush()
		}
	}

	// Join: decrement the parent's reference count.
	if parent != 0 {
		rcAddr := parent + descRC*8
		switch rt.Variant {
		case HW, HCC, DTSNoOpt:
			c.env.Amo(rcAddr, cache.AmoAdd, ^uint64(0), 0) // amo_sub(rc, 1)
		case DTS:
			if stolen {
				c.env.Amo(rcAddr, cache.AmoAdd, ^uint64(0), 0)
			} else if c.env.Load(parent+descStolen*8) != 0 {
				// A sibling was stolen: fall back to AMOs (Fig 3c line 17).
				c.env.Amo(rcAddr, cache.AmoAdd, ^uint64(0), 0)
			} else {
				// No steal ever happened: plain read-modify-write.
				rc := c.env.Load(rcAddr)
				c.env.Store(rcAddr, rc-1)
			}
		}
	}
	c.freeTask(t)
}

// readRC reads the waiting task's reference count per variant (HCC
// always uses an AMO; DTS uses a plain load unless a child was stolen).
func (c *Ctx) readRC(p mem.Addr) uint64 {
	rcAddr := p + descRC*8
	switch c.rt.Variant {
	case HW:
		return c.env.Load(rcAddr) // hardware keeps it coherent
	case HCC, DTSNoOpt:
		return c.env.Amo(rcAddr, cache.AmoOr, 0, 0)
	case DTS:
		if c.env.Load(p+descStolen*8) != 0 {
			return c.env.Amo(rcAddr, cache.AmoOr, 0, 0)
		}
		return c.env.Load(rcAddr)
	}
	panic("wsrt: bad variant")
}

// wait blocks until all of p's children have joined, executing local
// and stolen tasks meanwhile (Fig 3's wait functions).
func (c *Ctx) wait(p mem.Addr) { c.waitDeadline(p, 0) }

// waitDeadline is wait with an optional bail-out: when deadline is
// nonzero and the clock reaches it while children are still
// outstanding, the loop stops and reports false (the open-system
// horizon cutoff). A zero deadline is exactly wait — the extra Go-side
// branch costs no simulated cycles, so the hot path is unchanged.
func (c *Ctx) waitDeadline(p mem.Addr, deadline sim.Time) bool {
	rt := c.rt
	drained := true
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))
	for c.readRC(p) > 0 {
		if deadline != 0 && c.env.Now() >= deadline {
			drained = false
			break
		}
		c.env.Compute(c.rt.Costs.WaitIter)
		if t := c.popLocal(); t != 0 {
			c.execLocal(t)
			continue
		}
		if t := c.trySteal(); t != 0 {
			c.executeTask(t, true)
			c.failStreak = 0
		} else {
			c.idleBackoff()
		}
	}
	// Fig 3(b) line 40 / Fig 3(c) lines 43-44: the parent may have
	// stale copies of data written by stolen children.
	switch rt.Variant {
	case HCC, DTSNoOpt:
		c.env.CacheInvalidate()
	case DTS:
		if c.env.Load(p+descStolen*8) != 0 {
			c.env.CacheInvalidate()
		}
	}
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))
	return drained
}

// workerLoop is the top-level scheduling loop of a non-main thread: it
// executes local work (appearing after it steals a spawner) and steals
// until the program sets the done flag.
func (c *Ctx) workerLoop() {
	rt := c.rt
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))
	for iter := uint64(0); ; iter++ {
		// Fail-stop check at the scheduling-loop boundary: the core dies
		// between tasks, never mid-task (its current task's nested joins
		// must complete or the program could never finish). The check
		// reads a Go-side latch and costs no simulated cycles.
		if c.env.Offline() {
			c.enterOffline()
			return
		}
		if c.checkDone(iter) {
			return
		}
		if t := c.popLocal(); t != 0 {
			c.execLocal(t)
			continue
		}
		if t := c.trySteal(); t != 0 {
			c.executeTask(t, true)
			c.failStreak = 0
		} else {
			c.idleBackoff()
		}
	}
}

// checkDone polls the termination flag. How matters enormously:
//
//   - HW (MESI everywhere): a plain load. The flag is cached shared in
//     every spinning worker and costs nothing until the main thread's
//     write invalidates the copies. Polling with an AMO instead would
//     migrate the line's ownership to every poller in turn — with ~60
//     spinning workers the directory recall storm serializes the whole
//     machine (this is a classic spin-wait anti-pattern).
//   - HCC: also a plain load. The cache_invalidate performed at every
//     deque access in this very loop (Fig. 3b) guarantees the copy is
//     refreshed each iteration.
//   - DTS: tiny cores never self-invalidate while idle, so a stale
//     cached zero would spin forever; poll with amo_or (the coherent
//     read), but only every few iterations — exactly the kind of cost
//     DTS's private-deque design accepts for the rare termination check.
func (c *Ctx) checkDone(iter uint64) bool {
	rt := c.rt
	switch rt.Variant {
	case HW, HCC:
		return c.env.Load(rt.doneAddr) != 0
	case DTS, DTSNoOpt:
		if iter%4 != 0 {
			return false
		}
		return c.env.Amo(rt.doneAddr, cache.AmoOr, 0, 0) != 0
	}
	panic("wsrt: bad variant")
}

// idleBackoff burns exponentially growing compute after consecutive
// failed steals (capped), keeping idle workers from saturating the L2
// banks that hold the done flag and victims' locks — the same backoff
// production work-stealing runtimes use.
func (c *Ctx) idleBackoff() {
	costs := &c.rt.Costs
	n := costs.IdleBackoff << c.failStreak
	if n > costs.IdleBackoffCap {
		n = costs.IdleBackoffCap
	} else if c.failStreak < costs.IdleBackoffShift {
		c.failStreak++
	}
	if c.rt.lossy && n > 1 {
		// Under loss, retries of many thieves against few live victims
		// tend to synchronize (they all timed out together); jitter the
		// backoff to spread the retry storm.
		n += c.env.Rand().Intn(n)
	}
	// Spin in short chunks: every Compute boundary is an interrupt
	// point, so a backing-off worker still services incoming ULI steal
	// requests promptly (a monolithic 4K-cycle block would hold DTS
	// requests hostage for its whole duration).
	for n > 0 {
		chunk := n
		if chunk > 128 {
			chunk = 128
		}
		c.env.Compute(chunk)
		n -= chunk
	}
}
