package wsrt

import (
	"fmt"
	"math/rand"
	"testing"

	"bigtiny/internal/cpu"
	"bigtiny/internal/mem"
	"bigtiny/internal/prog"
)

// TestChaseLevRandomInterleavings drives the raw Chase-Lev operations
// directly — one owner doing a seeded random mix of pushes and pops
// with random think times, seven thieves stealing with their own random
// think times — under the deterministic kernel scheduler. Every pushed
// id is unique, so comparing the multiset of ids in against the
// multiset out detects both loss and duplication across the
// owner/thief races (including the CAS fight for the last element).
func TestChaseLevRandomInterleavings(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaseLevStress(t, seed)
		})
	}
}

func runChaseLevStress(t *testing.T, seed int64) {
	m := smallMachine(t, "mesi", false)
	rt := New(m, HW)
	rt.LockFreeDeque = true
	d := rt.deques[0]

	const nOps = 400
	nthreads := rt.nthreads
	var pushed uint64
	ownerDone := false
	taken := make([]map[uint64]int, nthreads) // per-thread ids removed

	m.Spawn(0, func(cc *cpu.Core) {
		c := &Ctx{rt: rt, env: prog.NewSimEnv(m, cc), tid: 0}
		rng := rand.New(rand.NewSource(seed))
		got := map[uint64]int{}
		taken[0] = got
		next := uint64(1)
		for i := 0; i < nOps; i++ {
			if rng.Intn(3) != 0 { // 2/3 push, 1/3 pop
				c.clEnq(d, mem.Addr(next))
				next++
			} else if task := c.clDeq(d); task != 0 {
				got[uint64(task)]++
			}
			c.env.Compute(1 + rng.Intn(7))
		}
		pushed = next - 1
		ownerDone = true
	})
	for th := 1; th < nthreads; th++ {
		th := th
		m.Spawn(th, func(cc *cpu.Core) {
			c := &Ctx{rt: rt, env: prog.NewSimEnv(m, cc), tid: th}
			rng := rand.New(rand.NewSource(seed*1000 + int64(th)))
			got := map[uint64]int{}
			taken[th] = got
			for {
				if task := c.clSteal(d); task != 0 {
					got[uint64(task)]++
				} else if ownerDone && c.probeEmpty(d) {
					// head has caught tail and no pushes are coming:
					// elements only leave by CAS, so empty is final.
					return
				}
				c.env.Compute(1 + rng.Intn(9))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	all := map[uint64]int{}
	for _, got := range taken {
		for id, n := range got {
			all[id] += n
		}
	}
	for id, n := range all {
		if id == 0 || id > pushed {
			t.Errorf("id %d came out but was never pushed", id)
		}
		if n != 1 {
			t.Errorf("id %d came out %d times (duplicated)", id, n)
		}
	}
	for id := uint64(1); id <= pushed; id++ {
		if all[id] == 0 {
			t.Errorf("id %d was pushed but never came out (lost)", id)
		}
	}
	if uint64(len(all)) != pushed {
		t.Errorf("%d distinct ids out, %d pushed", len(all), pushed)
	}
}
