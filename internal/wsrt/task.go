// Package wsrt is the paper's primary contribution: a TBB/Cilk-style
// work-stealing runtime that runs on hardware-coherent, heterogeneous
// cache-coherent (HCC), and direct-task-stealing (DTS) machines. The
// three spawn/wait engines follow paper Figure 3(a), 3(b) and 3(c)
// line by line.
//
// Task descriptors, task queues (deques), and all data shared between
// parent and child tasks live in *simulated* memory and are accessed
// through prog.Env, so every invalidate, flush, and AMO the pseudocode
// performs has its real coherence cost — and omitting one produces
// genuinely wrong answers on the software-centric protocols.
package wsrt

import (
	"fmt"

	"bigtiny/internal/mem"
)

// Descriptor layout (words). Every task has a 4-word descriptor in
// simulated memory. Arguments and results are the application's
// business (they allocate their own simulated words and close over the
// addresses).
const (
	descParent = 0 // parent descriptor address (0 = root)
	descRC     = 1 // reference count: unfinished children
	descStolen = 2 // has_stolen_child flag (DTS optimization, §IV-C)
	descFID    = 3 // function id (instruction-cache modelling)
	descWords  = 4
)

// Body is a task's execution body. Cross-task data must flow through
// simulated memory (c.Load/c.Store), never through captured Go
// variables that another task mutates.
type Body func(c *Ctx)

// taskRec is the Go-side record for a live task descriptor.
type taskRec struct {
	body Body
	fid  int
	// crossCore marks a task that sits in this core's own deque but was
	// produced on another core (salvaged from a stale steal ACK): a
	// local pop must still execute it with the stolen-task coherence
	// discipline (invalidate before, flush after, AMO join).
	crossCore bool
}

// FuncInfo describes a registered task function for the I-cache model.
type FuncInfo struct {
	Name      string
	Footprint int // synthetic code bytes
}

// RunStats aggregates runtime-level events across all threads.
type RunStats struct {
	Spawns     uint64
	LocalExecs uint64
	StolenExec uint64
	StealTries uint64
	StealHits  uint64
	StealNacks uint64 // DTS only

	// Recovery events (lossy fault scenarios only).
	OfflineCores   uint64 // cores that fail-stopped mid-run
	Reclaims       uint64 // stranded tasks taken from dead cores
	Salvages       uint64 // tasks recovered from stale steal ACKs
	DegradedCycles uint64 // cycles from the first core loss to the end of the run
}

// String formats the stats compactly.
func (s RunStats) String() string {
	out := fmt.Sprintf("spawns=%d local=%d stolen=%d tries=%d hits=%d nacks=%d",
		s.Spawns, s.LocalExecs, s.StolenExec, s.StealTries, s.StealHits, s.StealNacks)
	if s.OfflineCores > 0 || s.Reclaims > 0 || s.Salvages > 0 {
		out += fmt.Sprintf(" offline=%d reclaims=%d salvages=%d degraded-cycles=%d",
			s.OfflineCores, s.Reclaims, s.Salvages, s.DegradedCycles)
	}
	return out
}

// dequeCapacity is the per-thread task queue capacity (entries).
const dequeCapacity = 8192

// deque describes one thread's task queue in simulated memory. The
// lock, head, and tail each get their own cache line: the lock is
// contended by lock AMOs, the head by stealers, and the tail by the
// owner — co-locating them would make every thief probe and every
// owner push/pop exchange the same line (false sharing), which on MESI
// turns the idle-thief probing of a busy victim into an invalidation
// storm.
//
//	line 0: lock (0 free / 1 held)      — unused by the DTS variant
//	line 1: head (monotonic; steals pop here, FIFO)
//	line 2: tail (monotonic; owner pushes/pops here, LIFO)
//	line 3+: circular buffer of task descriptor addresses
type deque struct {
	base mem.Addr
}

// dequeWords is the simulated-memory footprint of one deque in words.
const dequeWords = 3*(mem.LineSize/8) + dequeCapacity

func (d deque) lockAddr() mem.Addr { return d.base }
func (d deque) headAddr() mem.Addr { return d.base + mem.LineSize }
func (d deque) tailAddr() mem.Addr { return d.base + 2*mem.LineSize }
func (d deque) slotAddr(i uint64) mem.Addr {
	return d.base + 3*mem.LineSize + mem.Addr(i%dequeCapacity)*8
}
