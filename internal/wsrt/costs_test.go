package wsrt

import "testing"

// TestCostsDefaultsMatchLegacy pins DefaultCosts to the historical
// constant values: changing them changes every reported cycle count.
func TestCostsDefaultsMatchLegacy(t *testing.T) {
	want := Costs{
		Spawn: 12, DequeOp: 8, VictimSelect: 6, WaitIter: 4,
		HandlerBody: 12, TaskProlog: 6,
		IdleBackoff: 16, IdleBackoffCap: 4096, IdleBackoffShift: 9,
	}
	if got := DefaultCosts(); got != want {
		t.Fatalf("DefaultCosts() = %+v, want %+v", got, want)
	}
}

// TestCostsOverrideChangesCycles: inflating the per-operation costs
// must slow the simulated run down; the override is actually applied.
func TestCostsOverrideChangesCycles(t *testing.T) {
	run := func(costs Costs) (uint64, int64) {
		m := smallMachine(t, "gwb", true)
		rt := New(m, DTS)
		rt.Costs = costs
		fid := rt.RegisterFunc("fib", 512)
		out := m.Mem.AllocWords(1)
		if err := rt.Run(fibProgram(fid, 12, out)); err != nil {
			t.Fatal(err)
		}
		if got := m.Cache.DebugReadWord(out); got != 144 {
			t.Fatalf("fib(12) = %d, want 144", got)
		}
		return uint64(m.Kernel.Now()), int64(rt.Stats.Spawns)
	}
	base, baseSpawns := run(DefaultCosts())
	slow := DefaultCosts()
	slow.Spawn *= 20
	slow.DequeOp *= 20
	slowCycles, slowSpawns := run(slow)
	if slowCycles <= base {
		t.Fatalf("20x spawn/deque costs did not slow the run: %d vs %d cycles",
			slowCycles, base)
	}
	if baseSpawns == 0 || slowSpawns == 0 {
		t.Fatal("no spawns recorded")
	}
}
