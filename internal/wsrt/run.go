package wsrt

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
	"bigtiny/internal/mem"
	"bigtiny/internal/prog"
	"bigtiny/internal/trace"
)

// Run executes root as the program's main task on thread 0 (a big core
// in big.TINY configurations), with every other core running the
// worker scheduling loop, and drives the simulation to completion.
// When root returns, the main thread raises the done flag and all
// workers exit (paper §III-B: "the main thread terminates all other
// threads").
func (rt *RT) Run(root Body) error {
	n := rt.nthreads
	if sc := rt.M.Faults.Scenario(); sc.Lossy() {
		rt.lossy = true
	}
	for core := 0; core < n; core++ {
		core := core
		rt.M.Spawn(core, func(cc *cpu.Core) {
			env := prog.NewSimEnv(rt.M, cc)
			c := &Ctx{rt: rt, env: env, tid: core}
			if rt.Variant == DTS || rt.Variant == DTSNoOpt {
				unit := rt.M.ULI.Unit(core)
				unit.SetHandler(func(thief int) uint64 {
					return c.uliHandler(thief)
				})
				// Loss-recovery hooks: only invoked when steal-path
				// messages actually get dropped or time out.
				unit.SetSalvage(func(p uint64) { c.salvageTask(mem.Addr(p)) })
				unit.SetRestitute(func(p uint64) { c.restituteTask(mem.Addr(p)) })
				env.ULIEnable()
			}
			if core == 0 {
				rt.runMain(c, root)
			} else {
				c.workerLoop()
			}
			if rt.Variant == DTS || rt.Variant == DTSNoOpt {
				env.ULIDisable()
			}
		})
	}
	err := rt.M.Run()
	if rt.degradedSince > 0 {
		rt.Stats.DegradedCycles = uint64(rt.M.Kernel.Now() - rt.degradedSince)
	}
	return err
}

// runMain executes the root task directly on the main thread.
func (rt *RT) runMain(c *Ctx, root Body) {
	rootDesc := c.newTask(fidRuntime, root)
	c.cur = rootDesc
	c.env.SetFunc(fidRuntime, rt.footprint(fidRuntime))
	c.env.Compute(c.rt.Costs.TaskProlog)
	root(c)
	c.freeTask(rootDesc)
	// Signal termination with a coherent write.
	c.env.Amo(rt.doneAddr, cache.AmoOr, 1, 0)
	rt.Tracer.Emit(c.env.Now(), c.tid, trace.Done, 0)
	rt.Stats.LocalExecs++
}

// backoff state is kept per-Ctx for idle loops.
// (Exponential backoff on failed steals keeps idle workers from
// saturating the L2 bank that holds the done flag and the victims'
// locks, like production work-stealing runtimes do.)

// NativeRun executes root functionally (no machine, no timing):
// fork-join constructs run depth-first on a bare memory. Used to
// compute reference outputs for verification.
func NativeRun(m *mem.Memory, root Body) *prog.NativeEnv {
	return NewNative(m).RunNative(root)
}
