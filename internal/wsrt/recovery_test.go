package wsrt

import (
	"strings"
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
)

// lossyMachine builds the small DTS test machine with a fault scenario
// and the memory-ordering oracle armed, as the bench chaos harness does.
func lossyMachine(t testing.TB, tinyProto string, sc fault.Scenario, seed uint64) *machine.Machine {
	t.Helper()
	base, err := machine.Lookup("bT/HCC-" + tinyProto)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Name = "test-lossy-" + tinyProto
	cfg.NumBig, cfg.NumTiny = 1, 7
	cfg.Rows, cfg.Cols = 2, 4
	cfg.NumBanks = 4
	cfg.DTS = true
	cfg.Deadline = 80_000_000
	cfg.Faults = &sc
	cfg.FaultSeed = seed
	cfg.Oracle = true
	return machine.New(cfg)
}

// TestOfflineDegradation: a tiny core fail-stops mid-run; the
// survivors must still produce the right answer, and the runtime must
// report the degradation.
func TestOfflineDegradation(t *testing.T) {
	for _, p := range []string{"dnv", "gwt", "gwb"} {
		m := lossyMachine(t, p, fault.Scenario{OfflineAt: 2_000, OfflineLane: 2}, 1)
		rt, got, _ := runFib(t, m, DTS)
		if got != fib15 {
			t.Errorf("%s: fib(15) = %d, want %d (stats %v)", p, got, fib15, rt.Stats)
		}
		if rt.Stats.OfflineCores != 1 {
			t.Errorf("%s: offline cores = %d, want 1", p, rt.Stats.OfflineCores)
		}
		if rt.Stats.DegradedCycles == 0 {
			t.Errorf("%s: no degraded cycles recorded", p)
		}
	}
}

// TestLossyULIRun: fib under steal-message loss must still converge to
// the right answer via timeouts, retries, restitution and salvage, with
// the terminal-outcome identity intact.
func TestLossyULIRun(t *testing.T) {
	m := lossyMachine(t, "gwb",
		fault.Scenario{ULIReqDropProb: 0.1, ULIRespDropProb: 0.1}, 3)
	rt, got, _ := runFib(t, m, DTS)
	if got != fib15 {
		t.Fatalf("fib(15) = %d, want %d (stats %v)", got, fib15, rt.Stats)
	}
	s := m.ULI.Stats
	if s.Drops == 0 || s.Timeouts == 0 {
		t.Fatalf("10%% loss injected no drops/timeouts: %+v", s)
	}
	if s.Reqs != s.Acks+s.Nacks+s.Drops {
		t.Fatalf("accounting identity violated: %+v", s)
	}
}

// TestReclaimStrandedTask: work left behind on a fail-stopped core must
// be reclaimed and executed by a survivor. At workerLoop boundaries the
// deque is naturally empty (fully-strict execution), so the root plants
// a task in the dead core's deque post-mortem — modelling work that
// arrived after the fail-stop — and waits for a surviving thief to
// reclaim it through shared memory.
func TestReclaimStrandedTask(t *testing.T) {
	// Lane 1 is tiny core 1 => thread id 2. OfflineAt 1 kills it at its
	// first scheduling-loop boundary, before it can pop anything.
	m := lossyMachine(t, "gwb", fault.Scenario{OfflineAt: 1, OfflineLane: 1}, 1)
	rt := New(m, DTS)
	out := m.Mem.AllocWords(1)
	const victim = 2
	err := rt.Run(func(c *Ctx) {
		// Let the victim reach its loop boundary and fail-stop.
		for !rt.offlineMark[victim] {
			c.Compute(100)
		}
		// The root is one join short until the planted task executes.
		c.env.Store(c.cur+descRC*8, 1)
		task := c.newTask(fidRuntime, func(cc *Ctx) { cc.Store(out, 7) })
		c.enq(rt.deques[victim], task)
		// Wait for a survivor to reclaim and run it; poll with an AMO so
		// the read is coherent regardless of who flushed what when.
		for c.env.Amo(out, cache.AmoOr, 0, 0) == 0 {
			c.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cache.DebugReadWord(out); got != 7 {
		t.Fatalf("stranded task result = %d, want 7", got)
	}
	if rt.Stats.Reclaims == 0 {
		t.Fatalf("no reclaim recorded (stats %v)", rt.Stats)
	}
	if rt.Stats.OfflineCores != 1 {
		t.Fatalf("offline cores = %d, want 1", rt.Stats.OfflineCores)
	}
}

// TestOracleCatchesSkippedStealFlush is the planted-bug check: build the
// runtime with the steal-handler cache_flush elided (the §IV-C hand-off
// bug) and the memory-ordering oracle must flag it — even if the run
// also hangs or corrupts its output.
func TestOracleCatchesSkippedStealFlush(t *testing.T) {
	// A fault-free scenario: the bug is in the protocol, not the faults.
	m := lossyMachine(t, "gwb", fault.Scenario{}, 1)
	m.Kernel.SetDeadline(10_000_000)
	rt := New(m, DTS)
	rt.SkipStealFlush = true
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	err := rt.Run(fibProgram(fid, 15, out))
	if m.Oracle.Violations() == 0 {
		t.Fatalf("oracle missed the skipped steal flush (err=%v, out=%d)",
			err, m.Cache.DebugReadWord(out))
	}
	if err == nil || !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("run error does not surface the oracle: %v", err)
	}
}

// TestQuarantineAfterRepeatedFailures: enough consecutive failures
// against one victim must quarantine it, and victim selection must then
// avoid it (while leaving offline victims choosable for reclaim).
func TestQuarantineAfterRepeatedFailures(t *testing.T) {
	m := lossyMachine(t, "gwb", fault.Scenario{ULIReqDropProb: 0.01}, 1)
	rt := New(m, DTS)
	err := rt.Run(func(c *Ctx) {
		const vid = 3
		// Workers' natural NACKs may have pre-loaded the counter; start
		// the consecutive-failure count from a known state.
		rt.vfails[vid] = 0
		for i := 0; i < rt.QuarantineThreshold; i++ {
			c.noteVictimFailure(vid)
		}
		if rt.quarUntil[vid] <= c.env.Now() {
			t.Error("victim not quarantined after threshold failures")
		}
		if rt.vfails[vid] != 0 {
			t.Error("failure counter not reset on quarantine")
		}
		// A quarantined victim is redrawn away from...
		redrawn := 0
		for i := 0; i < 50; i++ {
			if c.avoidQuarantined(vid) != vid {
				redrawn++
			}
		}
		if redrawn == 0 {
			t.Error("avoidQuarantined never redrew a quarantined victim")
		}
		// ...but an offline one must stay choosable (reclaim path).
		rt.offlineMark[vid] = true
		if c.avoidQuarantined(vid) != vid {
			t.Error("offline victim redrawn; stranded work would never be reclaimed")
		}
		rt.offlineMark[vid] = false
	})
	if err != nil {
		t.Fatal(err)
	}
}
