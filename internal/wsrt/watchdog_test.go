package wsrt

import (
	"strings"
	"testing"

	"bigtiny/internal/sim"
)

// TestWatchdogDiagnostics forces a livelock — the root task spins on a
// flag nobody ever sets — and checks that the deadline error carries
// the full diagnostic report: the cause, the stuck procs, the runtime's
// deque/steal state, and the ULI unit state.
func TestWatchdogDiagnostics(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	m.Cfg.Deadline = 50_000
	m.Kernel.SetDeadline(50_000)
	rt := New(m, DTS)
	never := m.Mem.AllocWords(1)
	err := rt.Run(func(c *Ctx) {
		// Enqueue a child so a deque has an entry when the watchdog fires.
		c.spawnTask(c.newTask(fidRuntime, func(cc *Ctx) { cc.Compute(1) }))
		for c.Load(never) == 0 {
			c.Compute(64)
		}
	})
	if err == nil {
		t.Fatal("livelocked program finished")
	}
	msg := err.Error()
	for _, want := range []string{"deadline", "kernel:", "proc \"core0\"", "wsrt:", "uli:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("watchdog error missing %q:\n%s", want, msg)
		}
	}
}

// TestWatchdogDeadlockReport: a proc blocked forever with an empty
// event queue produces a deadlock report naming it.
func TestWatchdogDeadlockReport(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	m.Kernel.NewProc("stuck-proc", 0, func(p *sim.Proc) {
		p.Block()
	})
	err := m.Kernel.Run(nil)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "proc \"stuck-proc\"", "blocked since cycle"} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error missing %q:\n%s", want, msg)
		}
	}
}
