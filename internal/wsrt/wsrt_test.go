package wsrt

import (
	"testing"

	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// smallMachine builds a cut-down big.TINY system (1 big + 7 tiny on a
// 2x4 mesh) so runtime tests are fast.
func smallMachine(t testing.TB, tinyProto string, dts bool) *machine.Machine {
	t.Helper()
	base, err := machine.Lookup("bT/HCC-" + tinyProto)
	if err != nil {
		base, err = machine.Lookup("bT/MESI")
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := base
	cfg.Name = "test-" + tinyProto
	cfg.NumBig, cfg.NumTiny = 1, 7
	cfg.Rows, cfg.Cols = 2, 4
	cfg.NumBanks = 4
	cfg.DTS = dts
	cfg.Deadline = 80_000_000
	return machine.New(cfg)
}

// fibProgram returns a root body computing fib(n) into out using the
// paper's Figure 2 recursive spawn-and-sync structure.
func fibProgram(fid int, n int, out mem.Addr) Body {
	var fib func(c *Ctx, n uint64, sum mem.Addr)
	fib = func(c *Ctx, n uint64, sum mem.Addr) {
		c.Compute(8)
		if n < 2 {
			c.Store(sum, n)
			return
		}
		x := c.Alloc(1)
		y := c.Alloc(1)
		c.Fork(fid,
			func(cc *Ctx) { fib(cc, n-1, x) },
			func(cc *Ctx) { fib(cc, n-2, y) },
		)
		c.Store(sum, c.Load(x)+c.Load(y))
	}
	return func(c *Ctx) { fib(c, uint64(n), out) }
}

const fib15 = 610

func runFib(t *testing.T, m *machine.Machine, v Variant) (*RT, uint64, sim.Time) {
	t.Helper()
	rt := New(m, v)
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	if err := rt.Run(fibProgram(fid, 15, out)); err != nil {
		t.Fatalf("%s on %s: %v", v, m.Cfg.Name, err)
	}
	return rt, m.Cache.DebugReadWord(out), m.Kernel.Now()
}

func TestFibHWOnMESI(t *testing.T) {
	m := smallMachine(t, "mesi", false)
	m.Cfg.Name = "bT/MESI-small"
	rt, got, _ := runFib(t, m, HW)
	if got != fib15 {
		t.Fatalf("fib(15) = %d, want %d (stats %v)", got, fib15, rt.Stats)
	}
	if rt.Stats.Spawns == 0 {
		t.Fatal("no spawns recorded")
	}
}

func TestFibHCCOnAllProtocols(t *testing.T) {
	for _, p := range []string{"dnv", "gwt", "gwb"} {
		m := smallMachine(t, p, false)
		rt, got, _ := runFib(t, m, HCC)
		if got != fib15 {
			t.Errorf("%s: fib(15) = %d, want %d (stats %v)", p, got, fib15, rt.Stats)
		}
	}
}

func TestFibDTSOnAllProtocols(t *testing.T) {
	for _, p := range []string{"dnv", "gwt", "gwb"} {
		m := smallMachine(t, p, true)
		rt, got, _ := runFib(t, m, DTS)
		if got != fib15 {
			t.Errorf("%s: fib(15) = %d, want %d (stats %v)", p, got, fib15, rt.Stats)
		}
		if rt.Stats.StealHits == 0 {
			t.Errorf("%s: DTS run had zero successful steals", p)
		}
	}
}

func TestHWRuntimeOnHCCMachineFails(t *testing.T) {
	// Negative control (paper §III): without cache_invalidate/cache_flush
	// the runtime is NOT correct on software-centric coherence. The
	// failure mode is a wrong answer or a livelock (caught by the
	// deadline).
	m := smallMachine(t, "gwb", false)
	m.Cfg.Deadline = 20_000_000
	rt := New(m, HW)
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	err := rt.Run(fibProgram(fid, 12, out))
	got := m.Cache.DebugReadWord(out)
	if err == nil && got == 144 {
		t.Fatal("HW runtime on GPU-WB machine worked; staleness modelling is broken")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	rt := New(m, DTS)
	fid := rt.RegisterFunc("pf", 512)
	n := 300
	arr := m.Mem.AllocWords(n)
	if err := rt.Run(func(c *Ctx) {
		c.ParallelFor(fid, 0, n, 16, func(cc *Ctx, i int) {
			cc.Compute(10)
			cc.Store(arr+mem.Addr(i*8), uint64(i*i))
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Cache.DebugReadWord(arr + mem.Addr(i*8)); got != uint64(i*i) {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
		}
	}
}

func TestParallelReduce(t *testing.T) {
	m := smallMachine(t, "dnv", false)
	rt := New(m, HCC)
	fid := rt.RegisterFunc("reduce", 512)
	n := 500
	arr := m.Mem.AllocWords(n)
	for i := 0; i < n; i++ {
		m.Mem.WriteWord(arr+mem.Addr(i*8), uint64(i))
	}
	out := m.Mem.AllocWords(1)
	if err := rt.Run(func(c *Ctx) {
		sum := c.ParallelReduce(fid, 0, n, 32,
			func(cc *Ctx, lo, hi int) uint64 {
				var s uint64
				for i := lo; i < hi; i++ {
					cc.Compute(2)
					s += cc.Load(arr + mem.Addr(i*8))
				}
				return s
			},
			func(a, b uint64) uint64 { return a + b })
		c.Store(out, sum)
	}); err != nil {
		t.Fatal(err)
	}
	want := uint64(n * (n - 1) / 2)
	if got := m.Cache.DebugReadWord(out); got != want {
		t.Fatalf("reduce = %d, want %d", got, want)
	}
}

func TestDeterministicCycleCounts(t *testing.T) {
	run := func() sim.Time {
		m := smallMachine(t, "gwb", true)
		_, got, cycles := runFib(t, m, DTS)
		if got != fib15 {
			t.Fatal("wrong answer")
		}
		return cycles
	}
	c1 := run()
	c2 := run()
	if c1 != c2 {
		t.Fatalf("nondeterministic: %d vs %d cycles", c1, c2)
	}
}

func TestParallelismSpeedsUp(t *testing.T) {
	// The same parallel_for on 8 cores should beat 1 worker thread by a
	// reasonable factor.
	elapsed := func(nt int) sim.Time {
		base, _ := machine.Lookup("bT/MESI")
		cfg := base
		cfg.NumBig, cfg.NumTiny = 0, nt
		cfg.Rows, cfg.Cols = 2, 4
		cfg.NumBanks = 4
		cfg.Deadline = 500_000_000
		m := machine.New(cfg)
		rt := New(m, HW)
		fid := rt.RegisterFunc("pf", 512)
		n := 2048
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *Ctx) {
			c.ParallelFor(fid, 0, n, 32, func(cc *Ctx, i int) {
				cc.Compute(60)
				cc.Store(arr+mem.Addr(i*8), uint64(i))
			})
		}); err != nil {
			t.Fatal(err)
		}
		return m.Kernel.Now()
	}
	t1 := elapsed(1)
	t8 := elapsed(8)
	speedup := float64(t1) / float64(t8)
	if speedup < 3 {
		t.Fatalf("8-core speedup = %.2f, want >= 3 (t1=%d t8=%d)", speedup, t1, t8)
	}
}

func TestNativeRunMatchesSimulated(t *testing.T) {
	nm := mem.New()
	out := nm.AllocWords(1)
	NativeRun(nm, func(c *Ctx) {
		var fib func(c *Ctx, n uint64, sum mem.Addr)
		fib = func(c *Ctx, n uint64, sum mem.Addr) {
			if n < 2 {
				c.Store(sum, n)
				return
			}
			x, y := c.Alloc(1), c.Alloc(1)
			c.Fork(0,
				func(cc *Ctx) { fib(cc, n-1, x) },
				func(cc *Ctx) { fib(cc, n-2, y) })
			c.Store(sum, c.Load(x)+c.Load(y))
		}
		fib(c, 15, out)
	})
	if got := nm.ReadWord(out); got != fib15 {
		t.Fatalf("native fib(15) = %d, want %d", got, fib15)
	}
}

func TestStealStatsConsistent(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	rt, _, _ := runFib(t, m, DTS)
	s := rt.Stats
	if s.StealHits > s.StealTries {
		t.Fatalf("hits %d > tries %d", s.StealHits, s.StealTries)
	}
	if s.StolenExec != s.StealHits {
		t.Fatalf("stolen execs %d != steal hits %d", s.StolenExec, s.StealHits)
	}
	// Every spawned task must execute exactly once: spawns == local + stolen
	// minus the root (which is counted as a local exec but not a spawn).
	if s.LocalExecs+s.StolenExec != s.Spawns+1 {
		t.Fatalf("execs (%d+%d) != spawns+root (%d+1)", s.LocalExecs, s.StolenExec, s.Spawns)
	}
}

func TestAutoVariant(t *testing.T) {
	if v := AutoVariant(smallMachine(t, "mesi", false)); v != HW {
		t.Errorf("MESI -> %v, want HW", v)
	}
	if v := AutoVariant(smallMachine(t, "gwb", false)); v != HCC {
		t.Errorf("gwb -> %v, want HCC", v)
	}
	if v := AutoVariant(smallMachine(t, "gwb", true)); v != DTS {
		t.Errorf("gwb+uli -> %v, want DTS", v)
	}
}

func TestDTSReducesFlushes(t *testing.T) {
	// The headline mechanism (paper Table IV): DTS should drastically
	// reduce flush and invalidation counts versus HCC on GPU-WB.
	countOps := func(dts bool) (inv, flush, flushOps uint64) {
		m := smallMachine(t, "gwb", dts)
		v := HCC
		if dts {
			v = DTS
		}
		rt := New(m, v)
		fid := rt.RegisterFunc("fib", 512)
		out := m.Mem.AllocWords(1)
		// fib(16) spawns ~3000 tasks; with 8 threads only a small
		// fraction are stolen, which is the regime where DTS's
		// flush-on-steal-only optimization pays (paper §IV-C).
		if err := rt.Run(fibProgram(fid, 16, out)); err != nil {
			t.Fatal(err)
		}
		if got := m.Cache.DebugReadWord(out); got != 987 {
			t.Fatalf("fib(16) = %d, want 987", got)
		}
		for _, core := range m.Cores {
			inv += core.L1D.Stats.InvLines
			flush += core.L1D.Stats.FlushLines
			flushOps += core.L1D.Stats.FlushOps
		}
		return inv, flush, flushOps
	}
	invHCC, flushHCC, opsHCC := countOps(false)
	invDTS, flushDTS, opsDTS := countOps(true)
	if invDTS*2 >= invHCC {
		t.Errorf("DTS invalidated lines (%d) not well below HCC (%d)", invDTS, invHCC)
	}
	// Flush *instructions*: HCC flushes at every deque access; DTS only
	// when a steal actually happens. Expect >80% reduction even on this
	// steal-heavy 8-thread run.
	if opsDTS*5 >= opsHCC {
		t.Errorf("DTS flush ops (%d) not well below HCC (%d)", opsDTS, opsHCC)
	}
	// Flushed *lines*: fib tasks are tiny (little dirty data per task),
	// so the line-count reduction is smaller than the paper's Table IV
	// apps (IPT in the thousands), but DTS must still flush fewer.
	if flushDTS >= flushHCC {
		t.Errorf("DTS flushed lines (%d) not below HCC (%d)", flushDTS, flushHCC)
	}
}
