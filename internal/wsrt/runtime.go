package wsrt

import (
	"fmt"
	"io"

	"bigtiny/internal/cache"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/prog"
	"bigtiny/internal/sim"
	"bigtiny/internal/trace"
)

// Variant selects the spawn/wait engine.
type Variant int

// The three runtime implementations of paper Figure 3.
const (
	// HW is the baseline for hardware-based cache coherence (Fig. 3a).
	// Running it on an HCC machine is the negative control: it computes
	// wrong answers because it never invalidates or flushes.
	HW Variant = iota
	// HCC adds the cache_invalidate/cache_flush discipline required on
	// heterogeneous cache coherence (Fig. 3b).
	HCC
	// DTS uses user-level interrupts for direct task stealing, making
	// task queues private and synchronization conditional on actual
	// steals (Fig. 3c). Requires a machine with ULI hardware.
	DTS
	// DTSNoOpt is an ablation of DTS without the paper's §IV-C software
	// optimizations: task queues are still private (the hardware part),
	// but reference counts always use AMOs and the end-of-wait
	// invalidate is unconditional, as if the runtime could not tell
	// whether a child was stolen. Quantifies how much of DTS's benefit
	// comes from the has_stolen_child tracking.
	DTSNoOpt
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case HW:
		return "HW"
	case HCC:
		return "HCC"
	case DTS:
		return "DTS"
	case DTSNoOpt:
		return "DTS-noopt"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// AutoVariant picks the natural runtime for a machine: DTS if it has
// ULI hardware, HCC if the tiny cores use a software-centric protocol,
// HW otherwise.
func AutoVariant(m *machine.Machine) Variant {
	if m.Cfg.DTS {
		return DTS
	}
	if m.Cfg.TinyProto != cache.MESI {
		return HCC
	}
	return HW
}

// VictimPolicy selects how thieves pick steal victims.
type VictimPolicy int

// Victim-selection policies. The paper uses random selection; the
// alternatives are classic variations kept for ablation studies.
const (
	// RandomVictim picks a uniformly random other thread (paper §III).
	RandomVictim VictimPolicy = iota
	// RoundRobinVictim cycles deterministically through the threads.
	RoundRobinVictim
	// StickyVictim retries the last successful victim first (steal
	// affinity), falling back to random.
	StickyVictim
)

// String names the policy.
func (v VictimPolicy) String() string {
	switch v {
	case RandomVictim:
		return "random"
	case RoundRobinVictim:
		return "round-robin"
	case StickyVictim:
		return "sticky"
	}
	return fmt.Sprintf("VictimPolicy(%d)", int(v))
}

// Costs are the runtime's abstract instruction costs, charged on top
// of the memory operations the engine performs. DefaultCosts matches
// the paper's modelled runtime; ablation studies can override
// individual fields before Run.
type Costs struct {
	// Spawn is the task-creation overhead (descriptor setup).
	Spawn int
	// DequeOp is one enqueue/dequeue/steal deque manipulation.
	DequeOp int
	// VictimSelect is the thief's victim-selection computation.
	VictimSelect int
	// WaitIter is one iteration of the wait loop's bookkeeping.
	WaitIter int
	// HandlerBody is the DTS ULI steal handler body.
	HandlerBody int
	// TaskProlog is the per-task entry sequence.
	TaskProlog int
	// IdleBackoff seeds the exponential idle backoff: a failed steal
	// spins IdleBackoff << failStreak cycles, capped at IdleBackoffCap;
	// the streak stops growing at IdleBackoffShift.
	IdleBackoff      int
	IdleBackoffCap   int
	IdleBackoffShift int
}

// DefaultCosts returns the modelled runtime's instruction costs.
func DefaultCosts() Costs {
	return Costs{
		Spawn:        12,
		DequeOp:      8,
		VictimSelect: 6,
		WaitIter:     4,
		HandlerBody:  12,
		TaskProlog:   6,

		IdleBackoff:      16,
		IdleBackoffCap:   4096,
		IdleBackoffShift: 9,
	}
}

// Runtime function ids for the instruction-cache model.
const (
	fidRuntime = 1 // scheduler/deque code
	fidFirst   = 8 // first application fid
)

// RT is a work-stealing runtime instance bound to one machine (or, for
// native verification/analysis runs, to a bare memory).
type RT struct {
	M       *machine.Machine
	Variant Variant

	// nativeMem backs machine-less native runtimes (NewNative).
	nativeMem *mem.Memory

	nthreads int
	deques   []deque
	doneAddr mem.Addr

	tasks map[mem.Addr]*taskRec
	free  [][]mem.Addr // per-thread descriptor free lists
	funcs []FuncInfo
	Stats RunStats

	// Grain is the default parallel_for grain (task granularity, §V-D).
	Grain int

	// Costs are the runtime's abstract instruction costs (set to
	// DefaultCosts by New/NewNative; override before Run for ablations).
	Costs Costs

	// Tracer, when non-nil, records cycle-stamped scheduler events
	// (spawns, steals, task execution) for offline inspection.
	Tracer *trace.Recorder

	// Victim selects the steal victim policy (default RandomVictim,
	// the paper's choice).
	Victim VictimPolicy

	// LockFreeDeque switches the HW (hardware-coherent) runtime to
	// Chase-Lev lock-free deques instead of per-deque spin locks (an
	// ablation of the paper's Fig. 3a baseline; §VII cites Chase & Lev).
	// It has no effect on the HCC/DTS variants: HCC requires the
	// lock-delimited invalidate/flush windows, and DTS queues are
	// private and need no synchronization at all.
	LockFreeDeque bool

	// --- recovery state (lossy fault scenarios) ---

	// lossy is set by Run when the machine's fault scenario can lose
	// steal-path messages or offline a core. It gates every recovery
	// code path, so fault-free runs draw no extra PRNG values and burn
	// no extra cycles (zero-cost-when-off).
	lossy bool
	// offlineMark[t] is set by thread t itself when it fail-stops.
	// Reading it is free for thieves — modelling a memory-mapped core
	// liveness register that costs nothing to consult.
	offlineMark []bool
	// vfails[v] counts consecutive failed steals (NACKs/timeouts)
	// against victim v across all thieves; reaching QuarantineThreshold
	// quarantines v until quarUntil[v].
	vfails    []int
	quarUntil []sim.Time
	// degradedSince is the cycle of the first core loss (0 = none).
	degradedSince sim.Time

	// QuarantineThreshold is the consecutive-failure count that
	// quarantines a victim; QuarantineCycles is how long the quarantine
	// lasts. Quarantined victims are skipped by victim selection unless
	// they are known offline (those must stay choosable so their
	// stranded work gets reclaimed).
	QuarantineThreshold int
	QuarantineCycles    sim.Time

	// SkipStealFlush omits the cache_flush in the steal hand-off paths
	// (the DTS handler and the HCC steal). Test-only: it plants the
	// protocol bug the memory-ordering oracle must catch.
	SkipStealFlush bool
}

// New builds a runtime for m. HW and HCC run on any machine; DTS
// requires a machine built with ULI hardware.
func New(m *machine.Machine, v Variant) *RT {
	if (v == DTS || v == DTSNoOpt) && m.ULI == nil {
		panic("wsrt: DTS variants require a machine with ULI hardware")
	}
	n := len(m.Cores)
	rt := &RT{
		M: m, Variant: v, nthreads: n,
		tasks: make(map[mem.Addr]*taskRec),
		free:  make([][]mem.Addr, n),
		funcs: make([]FuncInfo, fidFirst),
		Grain: 32,
		Costs: DefaultCosts(),

		offlineMark:         make([]bool, n),
		vfails:              make([]int, n),
		quarUntil:           make([]sim.Time, n),
		QuarantineThreshold: 16,
		QuarantineCycles:    20_000,
	}
	rt.funcs[fidRuntime] = FuncInfo{Name: "runtime", Footprint: 2048}
	rt.doneAddr = m.Mem.AllocWords(1)
	for t := 0; t < n; t++ {
		rt.deques = append(rt.deques, deque{base: m.Mem.AllocWords(dequeWords)})
	}
	m.Kernel.AddDumpHook(rt.dumpState)
	return rt
}

// dumpState writes the runtime's diagnostic state (registered as a
// kernel dump hook): run stats plus the occupancy of every non-empty
// deque, read directly from simulated memory.
func (rt *RT) dumpState(w io.Writer) {
	fmt.Fprintf(w, "wsrt: variant=%s spawns=%d steals=%d/%d nacks=%d done=%d\n",
		rt.Variant, rt.Stats.Spawns, rt.Stats.StealHits, rt.Stats.StealTries,
		rt.Stats.StealNacks, rt.M.Cache.DebugReadWord(rt.doneAddr))
	for t, off := range rt.offlineMark {
		if off {
			fmt.Fprintf(w, "  thread %d: OFFLINE (reclaims so far: %d)\n", t, rt.Stats.Reclaims)
		}
	}
	for t, d := range rt.deques {
		head := rt.M.Cache.DebugReadWord(d.headAddr())
		tail := rt.M.Cache.DebugReadWord(d.tailAddr())
		if head == tail {
			continue
		}
		fmt.Fprintf(w, "  deque %d: %d queued tasks (head=%d tail=%d)\n",
			t, tail-head, head, tail)
	}
}

// NewNative builds a machine-less runtime whose programs execute
// functionally against m (used for verification and Cilkview-style
// analysis). Only RunNative/Analyze may be used on it.
func NewNative(m *mem.Memory) *RT {
	rt := &RT{
		nativeMem: m,
		tasks:     make(map[mem.Addr]*taskRec),
		funcs:     make([]FuncInfo, fidFirst),
		Grain:     32,
		Costs:     DefaultCosts(),
	}
	rt.funcs[fidRuntime] = FuncInfo{Name: "runtime", Footprint: 2048}
	return rt
}

// Mem returns the memory that application setup code should allocate
// inputs in: the machine's DRAM, or the bare native memory.
func (rt *RT) Mem() *mem.Memory {
	if rt.M != nil {
		return rt.M.Mem
	}
	return rt.nativeMem
}

// RunNative executes root functionally (depth-first, zero simulated
// time) against the runtime's memory and returns the environment (its
// Insts field holds the abstract instruction count).
func (rt *RT) RunNative(root Body) *prog.NativeEnv {
	env := prog.NewNativeEnv(rt.Mem())
	c := &Ctx{rt: rt, env: env, native: true}
	root(c)
	return env
}

// Analyze executes root natively with Cilkview-style DAG accounting
// and returns total work, critical-path span (both in abstract
// instructions), and the number of tasks created.
func (rt *RT) Analyze(root Body) (work, span, tasks uint64) {
	env := prog.NewNativeEnv(rt.Mem())
	rec := &spanRecorder{insts: func() uint64 { return env.Insts }}
	c := &Ctx{rt: rt, env: env, native: true, spanRec: rec}
	root(c)
	rec.sync()
	return env.Insts, rec.cur, rec.tasks
}

// RegisterFunc declares an application task function (for instruction
// cache modelling) and returns its fid.
func (rt *RT) RegisterFunc(name string, footprintBytes int) int {
	rt.funcs = append(rt.funcs, FuncInfo{Name: name, Footprint: footprintBytes})
	return len(rt.funcs) - 1
}

func (rt *RT) footprint(fid int) int {
	if fid >= 0 && fid < len(rt.funcs) && rt.funcs[fid].Footprint > 0 {
		return rt.funcs[fid].Footprint
	}
	return 1024
}

// Ctx is a thread's execution context: the paper's "worker thread".
// Task bodies receive it to spawn children, wait, and access simulated
// memory.
type Ctx struct {
	rt  *RT
	env prog.Env
	tid int
	cur mem.Addr // descriptor of the currently executing task
	// failStreak counts consecutive failed steals for backoff.
	failStreak int
	// rrNext / lastVictim support the non-default victim policies.
	rrNext     int
	lastVictim int
	// native mode executes fork-join structure depth-first with zero
	// cost (verification and analysis).
	native bool
	// spanRec, when set in native mode, performs Cilkview-style
	// work/span accounting.
	spanRec *spanRecorder
}

// spanRecorder tracks the critical path through the fork-join DAG.
type spanRecorder struct {
	insts func() uint64 // live global instruction counter
	last  uint64        // instruction count at the last sync point
	cur   uint64        // span along the current strand
	tasks uint64        // tasks (fork branches) created
}

// sync attributes instructions executed since the last sync to the
// current strand.
func (r *spanRecorder) sync() {
	now := r.insts()
	r.cur += now - r.last
	r.last = now
}

// Env returns the underlying environment.
func (c *Ctx) Env() prog.Env { return c.env }

// TID returns the worker thread id.
func (c *Ctx) TID() int { return c.tid }

// RT returns the runtime.
func (c *Ctx) RT() *RT { return c.rt }

// Convenience memory forwarding.

// Load reads a simulated word.
func (c *Ctx) Load(a mem.Addr) uint64 { return c.env.Load(a) }

// Store writes a simulated word.
func (c *Ctx) Store(a mem.Addr, v uint64) { c.env.Store(a, v) }

// Amo performs a simulated atomic.
func (c *Ctx) Amo(a mem.Addr, op cache.AmoOp, a1, a2 uint64) uint64 {
	return c.env.Amo(a, op, a1, a2)
}

// Compute burns n abstract instructions.
func (c *Ctx) Compute(n int) { c.env.Compute(n) }

// Alloc reserves simulated memory.
func (c *Ctx) Alloc(nwords int) mem.Addr { return c.env.Alloc(nwords) }

// --- task descriptor management ---

// newTask allocates (or recycles) a descriptor and registers the body.
func (c *Ctx) newTask(fid int, body Body) mem.Addr {
	rt := c.rt
	var d mem.Addr
	if fl := rt.free[c.tid]; len(fl) > 0 {
		d = fl[len(fl)-1]
		rt.free[c.tid] = fl[:len(fl)-1]
	} else {
		d = c.env.Alloc(descWords)
	}
	rt.tasks[d] = &taskRec{body: body, fid: fid}
	// Initialize the descriptor (plain stores: the child is not yet
	// visible to anyone).
	c.env.Store(d+descParent*8, uint64(c.cur))
	c.env.Store(d+descRC*8, 0)
	c.env.Store(d+descStolen*8, 0)
	c.env.Store(d+descFID*8, uint64(fid))
	return d
}

// freeTask recycles a completed task's descriptor.
func (c *Ctx) freeTask(d mem.Addr) {
	delete(c.rt.tasks, d)
	c.rt.free[c.tid] = append(c.rt.free[c.tid], d)
}
