package wsrt

import (
	"testing"

	"bigtiny/internal/mem"
	"bigtiny/internal/trace"
)

// TestDTSNoOptCorrect: the ablated runtime must still be correct on
// every software-centric protocol (it is strictly more conservative).
func TestDTSNoOptCorrect(t *testing.T) {
	for _, p := range []string{"dnv", "gwt", "gwb"} {
		m := smallMachine(t, p, true)
		rt := New(m, DTSNoOpt)
		fid := rt.RegisterFunc("fib", 512)
		out := m.Mem.AllocWords(1)
		if err := rt.Run(fibProgram(fid, 15, out)); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got := m.Cache.DebugReadWord(out); got != fib15 {
			t.Errorf("%s: fib(15) = %d, want %d", p, got, fib15)
		}
	}
}

// TestSection4COptimizationsReduceAMOs quantifies the paper's §IV-C
// claim: the has_stolen_child tracking lets DTS replace most
// reference-count AMOs with plain accesses and skip most end-of-wait
// invalidations. The ablated variant must perform strictly more AMOs
// and more invalidations.
func TestSection4COptimizationsReduceAMOs(t *testing.T) {
	counters := func(v Variant) (amos, invOps uint64) {
		m := smallMachine(t, "gwb", true)
		rt := New(m, v)
		fid := rt.RegisterFunc("fib", 512)
		out := m.Mem.AllocWords(1)
		if err := rt.Run(fibProgram(fid, 16, out)); err != nil {
			t.Fatal(err)
		}
		if got := m.Cache.DebugReadWord(out); got != 987 {
			t.Fatalf("fib(16) = %d", got)
		}
		for _, core := range m.Cores {
			amos += core.L1D.Stats.Amos
			invOps += core.L1D.Stats.InvOps
		}
		return amos, invOps
	}
	optAmos, optInv := counters(DTS)
	noAmos, noInv := counters(DTSNoOpt)
	if optAmos*2 >= noAmos {
		t.Errorf("§IV-C opts: AMOs %d (DTS) vs %d (no-opt); expected a large reduction", optAmos, noAmos)
	}
	if optInv >= noInv {
		t.Errorf("§IV-C opts: invalidate ops %d (DTS) vs %d (no-opt)", optInv, noInv)
	}
}

// TestDTSNoOptSlowerOnGWB: the optimizations must also translate into
// cycles on the protocol where AMOs and invalidations are costly.
func TestDTSNoOptSlowerOnGWB(t *testing.T) {
	elapsed := func(v Variant) uint64 {
		m := smallMachine(t, "gwb", true)
		rt := New(m, v)
		fid := rt.RegisterFunc("pf", 512)
		n := 2048
		arr := m.Mem.AllocWords(n)
		if err := rt.Run(func(c *Ctx) {
			c.ParallelFor(fid, 0, n, 16, func(cc *Ctx, i int) {
				cc.Compute(30)
				cc.Store(arr+mem.Addr(i*8), uint64(i))
			})
		}); err != nil {
			t.Fatal(err)
		}
		return uint64(m.Kernel.Now())
	}
	opt := elapsed(DTS)
	noOpt := elapsed(DTSNoOpt)
	if opt >= noOpt {
		t.Errorf("DTS (%d cycles) not faster than DTS-noopt (%d cycles)", opt, noOpt)
	}
}

// TestTracerRecordsSchedulerEvents exercises the tracing hooks
// end-to-end: every spawn must pair with exactly one execution, and
// steal hits must match the runtime stats.
func TestTracerRecordsSchedulerEvents(t *testing.T) {
	m := smallMachine(t, "gwb", true)
	rt := New(m, DTS)
	rec := &trace.Recorder{}
	rt.Tracer = rec
	fid := rt.RegisterFunc("fib", 512)
	out := m.Mem.AllocWords(1)
	if err := rt.Run(fibProgram(fid, 12, out)); err != nil {
		t.Fatal(err)
	}
	if got := uint64(rec.Count(trace.Spawn)); got != rt.Stats.Spawns {
		t.Errorf("traced spawns %d != stats %d", got, rt.Stats.Spawns)
	}
	if got := uint64(rec.Count(trace.StealHit)); got != rt.Stats.StealHits {
		t.Errorf("traced steal hits %d != stats %d", got, rt.Stats.StealHits)
	}
	if rec.Count(trace.ExecStart) != rec.Count(trace.ExecEnd) {
		t.Error("unbalanced exec events")
	}
	if rec.Count(trace.Done) != 1 {
		t.Errorf("done events = %d, want 1", rec.Count(trace.Done))
	}
	// Events must be weakly time-ordered per core.
	last := map[int]uint64{}
	for _, e := range rec.Events {
		if uint64(e.T) < last[e.Core] {
			t.Fatalf("out-of-order event for core %d", e.Core)
		}
		last[e.Core] = uint64(e.T)
	}
}

// TestVictimPoliciesAllCorrect: every victim-selection policy must
// preserve correctness and make steals.
func TestVictimPoliciesAllCorrect(t *testing.T) {
	for _, pol := range []VictimPolicy{RandomVictim, RoundRobinVictim, StickyVictim} {
		m := smallMachine(t, "gwb", true)
		rt := New(m, DTS)
		rt.Victim = pol
		fid := rt.RegisterFunc("fib", 512)
		out := m.Mem.AllocWords(1)
		if err := rt.Run(fibProgram(fid, 15, out)); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if got := m.Cache.DebugReadWord(out); got != fib15 {
			t.Errorf("%v: fib(15) = %d, want %d", pol, got, fib15)
		}
		if rt.Stats.StealHits == 0 {
			t.Errorf("%v: no steals happened", pol)
		}
	}
}

// TestVictimPolicyNames covers the String method.
func TestVictimPolicyNames(t *testing.T) {
	if RandomVictim.String() != "random" || RoundRobinVictim.String() != "round-robin" ||
		StickyVictim.String() != "sticky" {
		t.Fatal("policy names wrong")
	}
	if VictimPolicy(9).String() == "" {
		t.Fatal("unknown policy unformatted")
	}
}
