package openload

import (
	"fmt"
	"sort"
	"strings"

	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// instance is one workload's prepared state: shared inputs loaded into
// simulated memory plus per-request parameters and natively computed
// expected answers, all derived from the spec seed before the
// simulation starts (so shedding cannot perturb them).
type instance interface {
	// body executes request i's task DAG on the runtime.
	body(c *wsrt.Ctx, fid, i int)
	// resultAddr is where request i's answer lands in simulated memory.
	resultAddr(i int) mem.Addr
	// expected is request i's natively computed answer.
	expected(i int) uint64
}

// workloads maps workload names to their instance builders. Builders
// run before rt.Run and may write inputs directly into rt.Mem()
// (input loading, like graph.LoadInto — not timed execution).
var workloads = map[string]func(rt *wsrt.RT, sp Spec) instance{
	"rmat-query": newRMatQuery,
	"sort":       newSort,
	"reduce":     newReduce,
}

func lookupWorkload(name string) (func(rt *wsrt.RT, sp Spec) instance, error) {
	if f, ok := workloads[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("openload: unknown workload %q (have %s)",
		name, strings.Join(Workloads(), ", "))
}

// paramRand derives the per-request parameter stream; it is separate
// from the arrival-schedule stream so the two cannot alias.
func paramRand(seed uint64) *sim.Rand {
	return sim.NewRand(seed*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
}

// --- rmat-query: two-hop degree sum over a shared R-MAT graph ---

// rmatQuery answers "total degree of src's neighborhood": each request
// picks a source vertex and sums deg(v) over its neighbors v, fanning
// the edge range out as tasks. It models a small graph-serving query
// with shared read-mostly state and an atomic reduction per request.
type rmatQuery struct {
	g       *graph.Graph
	gm      *graph.Mem
	srcs    []int
	results mem.Addr
	exp     []uint64
}

func newRMatQuery(rt *wsrt.RT, sp Spec) instance {
	q := &rmatQuery{
		g:    graph.RMat(8, 8, sp.Seed*2+1),
		srcs: make([]int, sp.Requests),
		exp:  make([]uint64, sp.Requests),
	}
	q.gm = graph.LoadInto(rt.Mem(), q.g)
	q.results = rt.Mem().AllocWords(sp.Requests)
	rng := paramRand(sp.Seed)
	for i := range q.srcs {
		src := rng.Intn(q.g.N)
		q.srcs[i] = src
		var sum uint64
		for _, v := range q.g.Neighbors(src) {
			sum += uint64(q.g.Degree(int(v)))
		}
		q.exp[i] = sum
	}
	return q
}

func (q *rmatQuery) body(c *wsrt.Ctx, fid, i int) {
	src := q.srcs[i]
	lo, hi := int(q.g.Offsets[src]), int(q.g.Offsets[src+1])
	res := q.resultAddr(i)
	c.ParallelForRange(fid, lo, hi, 16, func(cc *wsrt.Ctx, l, h int) {
		var sum uint64
		for j := l; j < h; j++ {
			v := int(cc.Load(q.gm.EdgeAddr(j)))
			sum += cc.Load(q.gm.OffsetAddr(v+1)) - cc.Load(q.gm.OffsetAddr(v))
		}
		cc.Amo(res, cache.AmoAdd, sum, 0)
	})
}

func (q *rmatQuery) resultAddr(i int) mem.Addr { return q.results + mem.Addr(i*8) }
func (q *rmatQuery) expected(i int) uint64     { return q.exp[i] }

// --- sort: per-request parallel mergesort of a private array ---

// sortWords is each request's array length; sortBase is the insertion
// sort cutoff (two fork levels per request).
const (
	sortWords = 64
	sortBase  = 16
)

// sortLoad sorts a private 64-word array with a fork-join mergesort
// and answers a position-weighted checksum of the sorted order. It
// models a request with private mutable state and a small task tree.
type sortLoad struct {
	data    mem.Addr // Requests x sortWords
	scratch mem.Addr
	results mem.Addr
	exp     []uint64
}

func newSort(rt *wsrt.RT, sp Spec) instance {
	s := &sortLoad{
		data:    rt.Mem().AllocWords(sp.Requests * sortWords),
		scratch: rt.Mem().AllocWords(sp.Requests * sortWords),
		results: rt.Mem().AllocWords(sp.Requests),
		exp:     make([]uint64, sp.Requests),
	}
	rng := paramRand(sp.Seed)
	vals := make([]uint64, sortWords)
	for i := 0; i < sp.Requests; i++ {
		base := s.data + mem.Addr(i*sortWords*8)
		for j := range vals {
			vals[j] = rng.Uint64() % 1_000_000
			rt.Mem().WriteWord(base+mem.Addr(j*8), vals[j])
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		var sum uint64
		for j, v := range sorted {
			sum += uint64(j+1) * v
		}
		s.exp[i] = sum
	}
	return s
}

func (s *sortLoad) body(c *wsrt.Ctx, fid, i int) {
	d := s.data + mem.Addr(i*sortWords*8)
	sc := s.scratch + mem.Addr(i*sortWords*8)
	msort(c, fid, d, sc, 0, sortWords)
	var sum uint64
	for j := 0; j < sortWords; j++ {
		sum += uint64(j+1) * c.Load(d+mem.Addr(j*8))
	}
	c.Store(s.resultAddr(i), sum)
}

// msort sorts d[lo:hi) in place, using sc[lo:hi) as merge scratch.
func msort(c *wsrt.Ctx, fid int, d, sc mem.Addr, lo, hi int) {
	if hi-lo <= sortBase {
		// Insertion sort through simulated memory.
		for j := lo + 1; j < hi; j++ {
			v := c.Load(d + mem.Addr(j*8))
			k := j
			for k > lo {
				prev := c.Load(d + mem.Addr((k-1)*8))
				if prev <= v {
					break
				}
				c.Store(d+mem.Addr(k*8), prev)
				k--
			}
			c.Store(d+mem.Addr(k*8), v)
		}
		return
	}
	mid := lo + (hi-lo)/2
	c.Fork(fid,
		func(cc *wsrt.Ctx) { msort(cc, fid, d, sc, lo, mid) },
		func(cc *wsrt.Ctx) { msort(cc, fid, d, sc, mid, hi) },
	)
	// Merge the halves into scratch, then copy back.
	a, b := lo, mid
	for k := lo; k < hi; k++ {
		var v uint64
		switch {
		case a >= mid:
			v = c.Load(d + mem.Addr(b*8))
			b++
		case b >= hi:
			v = c.Load(d + mem.Addr(a*8))
			a++
		default:
			va := c.Load(d + mem.Addr(a*8))
			vb := c.Load(d + mem.Addr(b*8))
			if va <= vb {
				v = va
				a++
			} else {
				v = vb
				b++
			}
		}
		c.Store(sc+mem.Addr(k*8), v)
	}
	for k := lo; k < hi; k++ {
		c.Store(d+mem.Addr(k*8), c.Load(sc+mem.Addr(k*8)))
	}
}

func (s *sortLoad) resultAddr(i int) mem.Addr { return s.results + mem.Addr(i*8) }
func (s *sortLoad) expected(i int) uint64     { return s.exp[i] }

// --- reduce: windowed parallel sum over a shared array ---

const (
	reduceArray  = 2048
	reduceWindow = 256
	reduceGrain  = 32
)

// reduceLoad sums a random 256-word window of a shared 2048-word
// array with ParallelReduce. It models a read-only scan request whose
// partials flow through freshly allocated simulated memory.
type reduceLoad struct {
	arr     mem.Addr
	starts  []int
	results mem.Addr
	exp     []uint64
}

func newReduce(rt *wsrt.RT, sp Spec) instance {
	r := &reduceLoad{
		arr:     rt.Mem().AllocWords(reduceArray),
		results: rt.Mem().AllocWords(sp.Requests),
		starts:  make([]int, sp.Requests),
		exp:     make([]uint64, sp.Requests),
	}
	rng := paramRand(sp.Seed)
	vals := make([]uint64, reduceArray)
	for j := range vals {
		vals[j] = rng.Uint64() % 1_000_000
		rt.Mem().WriteWord(r.arr+mem.Addr(j*8), vals[j])
	}
	for i := range r.starts {
		w := rng.Intn(reduceArray - reduceWindow)
		r.starts[i] = w
		var sum uint64
		for j := w; j < w+reduceWindow; j++ {
			sum += vals[j]
		}
		r.exp[i] = sum
	}
	return r
}

func (r *reduceLoad) body(c *wsrt.Ctx, fid, i int) {
	w := r.starts[i]
	sum := c.ParallelReduce(fid, w, w+reduceWindow, reduceGrain,
		func(cc *wsrt.Ctx, lo, hi int) uint64 {
			var s uint64
			for j := lo; j < hi; j++ {
				s += cc.Load(r.arr + mem.Addr(j*8))
			}
			return s
		},
		func(a, b uint64) uint64 { return a + b })
	c.Store(r.resultAddr(i), sum)
}

func (r *reduceLoad) resultAddr(i int) mem.Addr { return r.results + mem.Addr(i*8) }
func (r *reduceLoad) expected(i int) uint64     { return r.exp[i] }
