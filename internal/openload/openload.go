// Package openload drives the simulated machine as an open system:
// requests arrive on a seeded stochastic schedule (independent of how
// fast the machine services them), each request spawns a small task
// DAG onto the work-stealing runtime, and per-request end-to-end
// latency is summarized by exact percentiles. A bounded in-simulation
// admission queue sheds arrivals under overload, so the machine
// degrades gracefully instead of building an unbounded backlog.
//
// Everything is deterministic: the same (config, spec, scenario, fault
// seed) produces bit-identical results regardless of host parallelism
// or repetition. The accounting identity
//
//	Arrived == Completed + Shed + InFlightAtEnd
//
// is asserted inside Run itself — a violation is an error, not a
// statistic — and holds under every fault scenario including
// chaos-lossy-all.
package openload

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
	"bigtiny/internal/wsrt"
)

// Spec describes one open-system experiment: what arrives, how fast,
// and how much concurrency the admission queue tolerates.
type Spec struct {
	// Workload names the per-request task DAG (Workloads lists them).
	Workload string
	// Arrival names the arrival process: "poisson" (memoryless),
	// "bursty" (two-state MMPP), or "diurnal" (sinusoidally modulated).
	Arrival string
	// RatePerK is the mean offered load in requests per 1000 cycles.
	RatePerK float64
	// Requests is the total number of arrivals.
	Requests int
	// Seed drives both the arrival schedule and per-request parameters.
	Seed uint64
	// MaxInFlight bounds admitted-but-unfinished requests; arrivals
	// beyond it are shed. 0 means 4x the machine's thread count.
	MaxInFlight int
	// Horizon, when nonzero, bounds the post-arrival drain (simulated
	// cycles): requests still unfinished at the horizon are counted as
	// InFlightAtEnd instead of being waited for.
	Horizon sim.Time
}

// Key returns the canonical cache/identity key for the spec.
func (sp Spec) Key() string {
	return fmt.Sprintf("%s|%s|%g|%d|%d|%d|%d",
		sp.Workload, sp.Arrival, sp.RatePerK, sp.Requests, sp.Seed,
		sp.MaxInFlight, sp.Horizon)
}

// Validate checks the spec against the workload/arrival registries and
// the numeric preconditions. Run calls it; so does the serving layer's
// upfront request validation.
func (sp Spec) Validate() error {
	if _, err := lookupWorkload(sp.Workload); err != nil {
		return err
	}
	found := false
	for _, a := range Arrivals() {
		if a == sp.Arrival {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("openload: unknown arrival process %q (have %s)",
			sp.Arrival, strings.Join(Arrivals(), ", "))
	}
	if sp.Requests <= 0 {
		return fmt.Errorf("openload: Requests must be positive (got %d)", sp.Requests)
	}
	if sp.RatePerK <= 0 {
		return fmt.Errorf("openload: RatePerK must be positive (got %g)", sp.RatePerK)
	}
	return nil
}

// Options carry the run environment around the spec: fault scenario,
// oracle shadowing, and the watchdog deadline.
type Options struct {
	// Scenario, when non-empty, names a fault-injection scenario
	// (fault.Lookup) seeded with FaultSeed.
	Scenario  string
	FaultSeed uint64
	// Oracle shadows the run with the memory-ordering oracle.
	Oracle bool
	// Deadline, when nonzero, overrides the config's watchdog deadline.
	Deadline sim.Time
	// Shards splits the event kernel into conservative-lookahead shards
	// (machine.Config.Shards); results are byte-identical at any value.
	Shards int
	// ShardExec selects the sharded kernel's executor
	// (machine.Config.ShardExec); byte-identical in either mode.
	ShardExec sim.ExecMode
	// ExecWorkers bounds the parallel executor's worker pool
	// (machine.Config.ExecWorkers); <= 0 means one worker per shard.
	ExecWorkers int
}

// Result is the outcome of one open-system run.
type Result struct {
	Config    string
	Spec      Spec
	Scenario  string
	FaultSeed uint64

	// The accounting identity: Arrived == Completed + Shed + InFlightAtEnd.
	Arrived       int
	Completed     int
	Shed          int
	InFlightAtEnd int
	// Drained reports whether every admitted request finished (always
	// true when Horizon is 0).
	Drained bool

	// Cycles is the total simulated time, including the drain.
	Cycles sim.Time
	// Latency holds one sample per completed request: cycles from the
	// scheduled arrival (not admission) to completion, so queueing
	// delay under backlog is part of the number.
	Latency stats.Digest

	// OfferedPerKCycle is the realized offered load (arrivals per 1000
	// cycles over the arrival span); ThroughputPerKCycle is completions
	// per 1000 cycles over the whole run.
	OfferedPerKCycle    float64
	ThroughputPerKCycle float64

	FaultTotal uint64
	RT         wsrt.RunStats
	OracleOps  uint64

	// Shard is the event-kernel decomposition accounting when the run
	// was sharded (Options.Shards > 1), nil otherwise. Host-side
	// observability only: no serving metric above depends on it.
	Shard *sim.ShardStats
}

// Arrivals lists the supported arrival process names.
func Arrivals() []string { return []string{"poisson", "bursty", "diurnal"} }

// fidOpen tags request-task compute for the I-cache model.
const openFootprint = 1536

// Run executes one open-system experiment on the named configuration.
// ctx cancellation interrupts the simulation kernel mid-run.
func Run(ctx context.Context, cfgName string, sp Spec, opt Options) (*Result, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	setup, err := lookupWorkload(sp.Workload)
	if err != nil {
		return nil, err
	}
	sched, err := schedule(sp)
	if err != nil {
		return nil, err
	}

	cfg, err := machine.Lookup(cfgName)
	if err != nil {
		return nil, err
	}
	if opt.Deadline > 0 {
		cfg.Deadline = opt.Deadline
	}
	if opt.Scenario != "" {
		sc, err := fault.Lookup(opt.Scenario)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &sc
		cfg.FaultSeed = opt.FaultSeed
	}
	cfg.Oracle = opt.Oracle
	cfg.Shards = opt.Shards
	cfg.ShardExec = opt.ShardExec
	cfg.ExecWorkers = opt.ExecWorkers

	m := machine.New(cfg)
	if done := ctx.Done(); done != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-done:
				m.Kernel.Interrupt(fmt.Sprintf("openload: %s on %s cancelled: %v",
					sp.Workload, cfgName, ctx.Err()))
			case <-stopWatch:
			}
		}()
	}

	rt := wsrt.New(m, wsrt.AutoVariant(m))
	fid := rt.RegisterFunc("open:"+sp.Workload, openFootprint)
	inst := setup(rt, sp)

	maxInFlight := sp.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4 * len(m.Cores)
	}

	// Per-request bookkeeping. Task bodies run on simulated cores, but
	// the kernel executes one goroutine at a time with a strict
	// happens-before hand-off, so plain Go variables are race-free.
	n := sp.Requests
	doneAt := make([]sim.Time, n)
	isDone := make([]bool, n)
	isShed := make([]bool, n)
	arrived, inflight := 0, 0
	drained := true

	root := func(c *wsrt.Ctx) {
		for i := 0; i < n; i++ {
			c.IdleUntil(sched[i])
			arrived++
			if inflight >= maxInFlight {
				isShed[i] = true
				continue
			}
			inflight++
			i := i
			c.SpawnAsync(fid, func(cc *wsrt.Ctx) {
				inst.body(cc, fid, i)
				doneAt[i] = cc.Now()
				isDone[i] = true
				inflight--
			})
		}
		if sp.Horizon > 0 {
			drained = c.WaitChildrenUntil(sp.Horizon)
		} else {
			c.WaitChildren()
		}
	}
	if err := rt.Run(root); err != nil {
		return nil, fmt.Errorf("openload: %s on %s: %w", sp.Workload, cfgName, err)
	}

	r := &Result{
		Config:    cfgName,
		Spec:      sp,
		Scenario:  opt.Scenario,
		FaultSeed: opt.FaultSeed,
		Drained:   drained,
		Cycles:    m.Kernel.Now(),
		RT:        rt.Stats,
	}
	for i := 0; i < n; i++ {
		switch {
		case isDone[i]:
			r.Completed++
			r.Latency.Add(uint64(doneAt[i] - sched[i]))
		case isShed[i]:
			r.Shed++
		}
	}
	r.Arrived = arrived
	r.InFlightAtEnd = inflight

	// The identity is a hard invariant, cross-checked three ways: the
	// arrival counter, the per-request flags, and the live in-flight
	// counter must tell the same story even after chaos.
	if r.Arrived != n {
		return nil, fmt.Errorf("openload: arrival loop processed %d of %d requests", r.Arrived, n)
	}
	if got := r.Completed + r.Shed + r.InFlightAtEnd; got != r.Arrived {
		return nil, fmt.Errorf(
			"openload: accounting identity violated: Arrived=%d but Completed=%d + Shed=%d + InFlightAtEnd=%d = %d",
			r.Arrived, r.Completed, r.Shed, r.InFlightAtEnd, got)
	}
	if r.Drained && r.InFlightAtEnd != 0 {
		return nil, fmt.Errorf("openload: drained run left %d requests in flight", r.InFlightAtEnd)
	}

	// Verify every completed request's answer against the natively
	// computed expectation, reading results out of simulated memory.
	var bad []string
	for i := 0; i < n; i++ {
		if !isDone[i] {
			continue
		}
		got := m.Cache.DebugReadWord(inst.resultAddr(i))
		if want := inst.expected(i); got != want {
			bad = append(bad, fmt.Sprintf("req %d: got %d want %d", i, got, want))
		}
	}
	if len(bad) > 0 {
		if len(bad) > 5 {
			bad = append(bad[:5], fmt.Sprintf("... and %d more", len(bad)-5))
		}
		return nil, fmt.Errorf("openload: %s on %s: wrong answers: %s",
			sp.Workload, cfgName, strings.Join(bad, "; "))
	}

	if span := sched[n-1]; span > 0 {
		r.OfferedPerKCycle = 1000 * float64(n) / float64(span)
	}
	if r.Cycles > 0 {
		r.ThroughputPerKCycle = 1000 * float64(r.Completed) / float64(r.Cycles)
	}
	if m.Faults != nil {
		r.FaultTotal = m.Faults.Total()
	}
	if m.Oracle != nil {
		r.OracleOps = m.Oracle.Ops
	}
	r.Shard = m.ShardStats()
	return r, nil
}

// schedule precomputes the full arrival timetable from the spec. The
// timetable depends only on (Arrival, RatePerK, Requests, Seed) — a
// shed request does not perturb later arrivals, which is what makes
// the process open-loop.
func schedule(sp Spec) ([]sim.Time, error) {
	rng := sim.NewRand(sp.Seed*0x9e3779b97f4a7c15 + 0x6c62272e07bb0142)
	meanGap := 1000 / sp.RatePerK
	out := make([]sim.Time, sp.Requests)
	t := sim.Time(0)
	switch sp.Arrival {
	case "poisson":
		for i := range out {
			t += expGap(rng, meanGap)
			out[i] = t
		}
	case "bursty":
		// Two-state MMPP: bursts arrive 3x the mean rate, lulls 0.4x,
		// with a 8% chance of switching state at each arrival.
		burst := true
		for i := range out {
			mult := 3.0
			if !burst {
				mult = 0.4
			}
			t += expGap(rng, meanGap/mult)
			out[i] = t
			if rng.Float64() < 0.08 {
				burst = !burst
			}
		}
	case "diurnal":
		// Sinusoidally modulated rate, two full periods over the
		// request sequence: peaks at 1.8x the mean, troughs at 0.2x.
		period := sp.Requests / 2
		if period < 8 {
			period = 8
		}
		for i := range out {
			mult := 1 + 0.8*math.Sin(2*math.Pi*float64(i)/float64(period))
			t += expGap(rng, meanGap/mult)
			out[i] = t
		}
	default:
		return nil, fmt.Errorf("openload: unknown arrival process %q (have %s)",
			sp.Arrival, strings.Join(Arrivals(), ", "))
	}
	return out, nil
}

// expGap draws an exponential inter-arrival gap with the given mean,
// floored at one cycle so the schedule is strictly increasing enough
// to be meaningful.
func expGap(rng *sim.Rand, mean float64) sim.Time {
	g := -mean * math.Log(1-rng.Float64())
	if g < 1 {
		g = 1
	}
	return sim.Time(g)
}

// Workloads lists the supported per-request workload names, sorted.
func Workloads() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
