package openload

import (
	"context"
	"fmt"
	"testing"
)

// fingerprint flattens everything observable about a result into one
// string, so determinism tests compare complete behaviour, not a
// sample of fields.
func fingerprint(r *Result) string {
	return fmt.Sprintf(
		"cfg=%s key=%s scen=%s/%d arrived=%d completed=%d shed=%d inflight=%d drained=%v cycles=%d "+
			"lat[n=%d sum=%d p50=%d p90=%d p99=%d p999=%d max=%d] thpt=%.6f faults=%d rt=%s",
		r.Config, r.Spec.Key(), r.Scenario, r.FaultSeed,
		r.Arrived, r.Completed, r.Shed, r.InFlightAtEnd, r.Drained, r.Cycles,
		r.Latency.Count(), r.Latency.Sum(), r.Latency.P50(), r.Latency.P90(),
		r.Latency.P99(), r.Latency.P999(), r.Latency.Max(),
		r.ThroughputPerKCycle, r.FaultTotal, r.RT)
}

func mustRun(t *testing.T, cfg string, sp Spec, opt Options) *Result {
	t.Helper()
	r, err := Run(context.Background(), cfg, sp, opt)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", cfg, sp.Key(), err)
	}
	return r
}

// checkIdentity re-asserts the accounting identity on the returned
// struct (Run already errors on violation; this guards the copy).
func checkIdentity(t *testing.T, r *Result) {
	t.Helper()
	if r.Arrived != r.Completed+r.Shed+r.InFlightAtEnd {
		t.Fatalf("identity violated: %d != %d + %d + %d",
			r.Arrived, r.Completed, r.Shed, r.InFlightAtEnd)
	}
	if r.Latency.Count() != r.Completed {
		t.Fatalf("latency samples %d != completed %d", r.Latency.Count(), r.Completed)
	}
}

// TestScheduleDeterministic checks the arrival timetable is a pure
// function of the spec, strictly increasing, and seed-sensitive.
func TestScheduleDeterministic(t *testing.T) {
	for _, arrival := range Arrivals() {
		sp := Spec{Workload: "reduce", Arrival: arrival, RatePerK: 8, Requests: 200, Seed: 3}
		a, err := schedule(sp)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		b, _ := schedule(sp)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: schedule not deterministic at %d: %d vs %d", arrival, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: schedule not monotone at %d", arrival, i)
			}
		}
		sp.Seed = 4
		c, _ := schedule(sp)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seed change did not change the schedule", arrival)
		}
	}
	if _, err := schedule(Spec{Arrival: "nope", RatePerK: 1, Requests: 1}); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

// TestOpenWorkloads runs each workload end to end on the DTS config:
// answers are verified against native expectations inside Run, and the
// identity must hold with everything drained.
func TestOpenWorkloads(t *testing.T) {
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			sp := Spec{Workload: wl, Arrival: "poisson", RatePerK: 4, Requests: 16, Seed: 1}
			r := mustRun(t, "bT8/HCC-DTS-gwb", sp, Options{})
			checkIdentity(t, r)
			if !r.Drained || r.InFlightAtEnd != 0 {
				t.Fatalf("unbounded wait left work in flight: %s", fingerprint(r))
			}
			if r.Completed == 0 {
				t.Fatalf("nothing completed: %s", fingerprint(r))
			}
		})
	}
}

// TestOpenArrivalProcesses exercises bursty and diurnal arrivals on a
// software-stealing config.
func TestOpenArrivalProcesses(t *testing.T) {
	for _, arrival := range []string{"bursty", "diurnal"} {
		sp := Spec{Workload: "reduce", Arrival: arrival, RatePerK: 8, Requests: 16, Seed: 2}
		r := mustRun(t, "bT8/HCC-gwb", sp, Options{})
		checkIdentity(t, r)
		if r.Completed+r.Shed != 16 {
			t.Fatalf("%s: %s", arrival, fingerprint(r))
		}
	}
}

// TestOpenRepeatIdentical is the determinism gate: the same (config,
// spec, scenario) must fingerprint identically across runs, with and
// without chaos.
func TestOpenRepeatIdentical(t *testing.T) {
	sp := Spec{Workload: "rmat-query", Arrival: "bursty", RatePerK: 8, Requests: 24, Seed: 1}
	for _, scen := range []string{"", "chaos-lossy-all"} {
		opt := Options{Scenario: scen, FaultSeed: 7}
		a := fingerprint(mustRun(t, "bT8/HCC-DTS-gwb", sp, opt))
		b := fingerprint(mustRun(t, "bT8/HCC-DTS-gwb", sp, opt))
		if a != b {
			t.Fatalf("scenario %q not deterministic:\n  %s\n  %s", scen, a, b)
		}
	}
}

// TestOpenShedUnderOverload drives far more load than a 2-slot
// admission queue can hold: the queue must shed rather than build
// unbounded backlog, and the identity must absorb the shed requests.
func TestOpenShedUnderOverload(t *testing.T) {
	sp := Spec{Workload: "sort", Arrival: "poisson", RatePerK: 64, Requests: 32, Seed: 5,
		MaxInFlight: 2}
	r := mustRun(t, "bT8/HCC-DTS-gwb", sp, Options{})
	checkIdentity(t, r)
	if r.Shed == 0 {
		t.Fatalf("overload shed nothing: %s", fingerprint(r))
	}
	if r.Completed == 0 {
		t.Fatalf("overload completed nothing: %s", fingerprint(r))
	}
}

// TestOpenChaos asserts graceful degradation: under chaos-lossy-all
// (dropped steal messages, a dead core, DRAM/cache pressure) the run
// still completes every admitted request correctly — Run verifies the
// answers — and the identity holds.
func TestOpenChaos(t *testing.T) {
	sp := Spec{Workload: "rmat-query", Arrival: "poisson", RatePerK: 8, Requests: 24, Seed: 1}
	r := mustRun(t, "bT8/HCC-DTS-gwb", sp, Options{Scenario: "chaos-lossy-all", FaultSeed: 3})
	checkIdentity(t, r)
	if !r.Drained {
		t.Fatalf("chaos run did not drain: %s", fingerprint(r))
	}
	if r.Completed+r.Shed != 24 {
		t.Fatalf("chaos lost requests: %s", fingerprint(r))
	}
}

// TestOpenHorizon cuts the drain short: a heavy workload at high rate
// must leave requests in flight at the horizon, counted (not lost) by
// the identity.
func TestOpenHorizon(t *testing.T) {
	sp := Spec{Workload: "sort", Arrival: "poisson", RatePerK: 32, Requests: 16, Seed: 2,
		Horizon: 2_000}
	r := mustRun(t, "bT8/HCC-gwb", sp, Options{})
	checkIdentity(t, r)
	if r.Drained {
		t.Fatalf("2k-cycle horizon should not drain 16 sorts: %s", fingerprint(r))
	}
	if r.InFlightAtEnd == 0 {
		t.Fatalf("undrained run reports no in-flight work: %s", fingerprint(r))
	}
}

// TestOpenRejectsBadSpecs checks upfront validation.
func TestOpenRejectsBadSpecs(t *testing.T) {
	ctx := context.Background()
	base := Spec{Workload: "reduce", Arrival: "poisson", RatePerK: 4, Requests: 4, Seed: 1}
	bad := []Spec{
		func() Spec { s := base; s.Workload = "nope"; return s }(),
		func() Spec { s := base; s.Arrival = "nope"; return s }(),
		func() Spec { s := base; s.Requests = 0; return s }(),
		func() Spec { s := base; s.RatePerK = 0; return s }(),
	}
	for i, sp := range bad {
		if _, err := Run(ctx, "bT8/HCC-DTS-gwb", sp, Options{}); err == nil {
			t.Errorf("bad spec %d accepted: %s", i, sp.Key())
		}
	}
	if _, err := Run(ctx, "no-such-config", base, Options{}); err == nil {
		t.Error("unknown config accepted")
	}
}
