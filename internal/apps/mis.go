package apps

import (
	"fmt"

	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-mis: maximal independent set by deterministic greedy rounds
// over hashed priorities (Ligra's MIS): a vertex joins the set when
// every not-yet-excluded neighbor has a larger priority; neighbors of
// set members are excluded.

func init() {
	register(&App{Name: "ligra-mis", Method: "pf", DefaultGrain: 32, Setup: setupMIS})
}

// Vertex states.
const (
	misUndecided = 0
	misIn        = 1
	misOut       = 2
)

// misPriority is a deterministic pseudo-random priority, made unique
// per vertex (low bits carry v) so adjacent vertices can never tie.
func misPriority(v int) uint64 {
	h := uint64(v)*0x9E3779B97F4A7C15 + 0x1234567
	h ^= h >> 29
	return (h &^ 0xFFFFF) | uint64(v)
}

func setupMIS(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctx(rt, size)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	status := m.AllocWords(n)
	fid := rt.RegisterFunc("mis", 1024)

	// Phase A: undecided v joins IN when all relevant neighbors have
	// larger priority (reads last round's statuses; writes only its own
	// slot — race-free).
	phaseA := func(c *wsrt.Ctx, v int) {
		c.Compute(4)
		if c.Load(word(status, v)) != misUndecided {
			return
		}
		pv := misPriority(v)
		s, e := gc.degree(c, v)
		for i := s; i < e; i++ {
			c.Compute(4)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			if c.Load(word(status, u)) != misOut && misPriority(u) < pv {
				return
			}
		}
		c.Store(word(status, v), misIn)
	}
	// Phase B: undecided v with an IN neighbor becomes OUT.
	phaseB := func(c *wsrt.Ctx, v int) {
		c.Compute(4)
		if c.Load(word(status, v)) != misUndecided {
			return
		}
		s, e := gc.degree(c, v)
		for i := s; i < e; i++ {
			c.Compute(3)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			if c.Load(word(status, u)) == misIn {
				c.Store(word(status, v), misOut)
				return
			}
		}
	}

	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			for {
				runPhase := func(phase func(*wsrt.Ctx, int)) {
					if serial {
						for v := 0; v < n; v++ {
							phase(c, v)
						}
					} else {
						c.ParallelFor(fid, 0, n, grain, func(cc *wsrt.Ctx, v int) { phase(cc, v) })
					}
				}
				runPhase(phaseA)
				runPhase(phaseB)
				// Main thread scans for remaining undecided vertices.
				done := true
				for v := 0; v < n; v++ {
					c.Compute(1)
					if c.Load(word(status, v)) == misUndecided {
						done = false
						break
					}
				}
				if done {
					return
				}
			}
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, %d edges", n, gc.g.M()),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			// Independence + maximality (a valid MIS, checked against the
			// native graph).
			in := make([]bool, n)
			for v := 0; v < n; v++ {
				switch read(word(status, v)) {
				case misIn:
					in[v] = true
				case misOut:
				default:
					return fmt.Errorf("mis: vertex %d undecided", v)
				}
			}
			for v := 0; v < n; v++ {
				hasInNeighbor := false
				for _, u := range gc.g.Neighbors(v) {
					if in[u] {
						hasInNeighbor = true
						if in[v] {
							return fmt.Errorf("mis: adjacent %d and %d both in set", v, u)
						}
					}
				}
				if !in[v] && !hasInNeighbor {
					return fmt.Errorf("mis: vertex %d not in set and no neighbor in set", v)
				}
			}
			return nil
		},
	}
}
