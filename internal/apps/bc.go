package apps

import (
	"fmt"
	"math"

	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-bc: single-source betweenness centrality (Brandes): a forward
// BFS accumulating shortest-path counts (sigma, fetch-and-add), then a
// level-by-level backward sweep accumulating dependencies (delta).
// Per-level frontiers are retained from the forward pass for the
// backward pass, as in Ligra's BC.

func init() {
	register(&App{Name: "ligra-bc", Method: "pf", DefaultGrain: 32, Setup: setupBC})
}

// nativeBC computes reference dependencies from src.
func nativeBC(g *graph.Graph, src int) []float64 {
	n := g.N
	level := make([]int, n)
	sigma := make([]float64, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	sigma[src] = 1
	var levels [][]int
	cur := []int{src}
	for len(cur) > 0 {
		levels = append(levels, cur)
		var next []int
		for _, v := range cur {
			for _, u := range g.Neighbors(v) {
				if level[u] == -1 {
					level[u] = level[v] + 1
					next = append(next, int(u))
				}
				if level[u] == level[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		cur = next
	}
	delta := make([]float64, n)
	for l := len(levels) - 2; l >= 0; l-- {
		for _, v := range levels[l] {
			var d float64
			for _, u := range g.Neighbors(v) {
				if level[u] == level[v]+1 {
					d += sigma[v] / sigma[u] * (1 + delta[u])
				}
			}
			delta[v] = d
		}
	}
	return delta
}

func setupBC(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctxHeavy(rt, size, true)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	level := m.AllocWords(n) // BFS level (unvisited = MAX)
	sigma := m.AllocWords(n) // shortest-path counts (integers)
	delta := m.AllocWords(n) // dependencies (float64 bits)
	for v := 0; v < n; v++ {
		m.WriteWord(word(level, v), unvisited)
	}
	src := maxDegreeVertex(gc.g)
	m.WriteWord(word(level, src), 0)
	m.WriteWord(word(sigma, src), 1)
	want := nativeBC(gc.g, src)

	fid := rt.RegisterFunc("bc", 2048)

	forwardVisit := func(c *wsrt.Ctx, round uint64, v int, s, e int, pb *pushBuf) {
		sv := atomicRead(c, word(sigma, v))
		for i := s; i < e; i++ {
			c.Compute(5)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			// Test-then-CAS discovery (level transitions once, away
			// from unvisited; a stale unvisited costs one failed CAS
			// whose return value is authoritative).
			lu := c.Load(word(level, u))
			if lu == unvisited {
				got := c.Amo(word(level, u), cache.AmoCAS, unvisited, round)
				if got == unvisited {
					pb.push(c, u)
					got = round
				}
				lu = got
			}
			if lu == round {
				c.Amo(word(sigma, u), cache.AmoAdd, sv, 0)
			}
		}
	}

	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			// Forward BFS. Each level's frontier array is retained for
			// the backward pass (a fresh push array is allocated per
			// round instead of double-buffering, so no serial copying
			// is needed).
			type levelFrontier struct {
				arr mem.Addr
				cnt int
			}
			gc.initFrontier(c, src)
			levels := []levelFrontier{{gc.cur, 1}}
			cnt := 1
			for cnt > 0 {
				round := uint64(len(levels))
				leaf := func(cc *wsrt.Ctx, lo, hi int) {
					pb := &pushBuf{gc: gc}
					for i := lo; i < hi; i++ {
						cc.Compute(4)
						v := int(cc.Load(word(gc.cur, i)))
						s0, e0 := gc.degree(cc, v)
						if !serial && e0-s0 > hubEdgeSplit {
							cc.ParallelForRange(fid, s0, e0, hubEdgeSplit,
								func(c2 *wsrt.Ctx, l2, h2 int) {
									pb2 := &pushBuf{gc: gc}
									forwardVisit(c2, round, v, l2, h2, pb2)
									pb2.flush(c2)
								})
							continue
						}
						forwardVisit(cc, round, v, s0, e0, pb)
					}
					pb.flush(cc)
				}
				if serial {
					leaf(c, 0, cnt)
				} else {
					c.ParallelForRange(fid, 0, cnt, grain, leaf)
				}
				cnt = gc.swap(c)
				if cnt > 0 {
					levels = append(levels, levelFrontier{gc.cur, cnt})
					gc.next = c.Alloc(n) // keep this level's array intact
				}
			}
			// Backward sweep over levels (deepest-1 down to 0). delta[v]
			// is written only by v's unique task; all inputs were
			// finalized in deeper levels or the forward pass.
			for l := len(levels) - 2; l >= 0; l-- {
				lf := levels[l]
				body := func(cc *wsrt.Ctx, i int) {
					cc.Compute(4)
					v := int(cc.Load(word(lf.arr, i)))
					lv := cc.Load(word(level, v))
					sv := float64(cc.Load(word(sigma, v)))
					var d float64
					s, e := gc.degree(cc, v)
					for j := s; j < e; j++ {
						cc.Compute(6)
						u := int(cc.Load(gc.gm.EdgeAddr(j)))
						if cc.Load(word(level, u)) == lv+1 {
							su := float64(cc.Load(word(sigma, u)))
							du := math.Float64frombits(cc.Load(word(delta, u)))
							d += sv / su * (1 + du)
						}
					}
					cc.Store(word(delta, v), math.Float64bits(d))
				}
				if serial {
					for i := 0; i < lf.cnt; i++ {
						body(c, i)
					}
				} else {
					c.ParallelFor(fid, 0, lf.cnt, grain, body)
				}
			}
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, src %d (Brandes)", n, src),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				got := math.Float64frombits(read(word(delta, v)))
				if diff := math.Abs(got - want[v]); diff > 1e-9*(1+math.Abs(want[v])) {
					return fmt.Errorf("bc: delta[%d] = %g, want %g", v, got, want[v])
				}
			}
			return nil
		},
	}
}
