package apps

import (
	"fmt"

	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-bfs: frontier-based breadth-first search. Discovery races are
// resolved with compare-and-swap on the parent array (Ligra's idiom);
// the CAS winner records the level and pushes the vertex.
//
// ligra-bfsbv: the bit-vector variant: frontiers and the visited set
// are bitmaps; a word of 64 vertices is processed per frontier element.

func init() {
	register(&App{Name: "ligra-bfs", Method: "pf", DefaultGrain: 32, Setup: setupBFS})
	register(&App{Name: "ligra-bfsbv", Method: "pf", DefaultGrain: 4, Setup: setupBFSBV})
}

// nativeBFSLevels computes reference levels.
func nativeBFSLevels(g *graph.Graph, src int) []uint64 {
	lv := make([]uint64, g.N)
	for i := range lv {
		lv[i] = unvisited
	}
	lv[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Neighbors(v) {
			if lv[u] == unvisited {
				lv[u] = lv[v] + 1
				q = append(q, int(u))
			}
		}
	}
	return lv
}

func setupBFS(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctx(rt, size)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	parent := m.AllocWords(n)
	level := m.AllocWords(n)
	for v := 0; v < n; v++ {
		m.WriteWord(word(parent, v), unvisited)
		m.WriteWord(word(level, v), unvisited)
	}
	src := maxDegreeVertex(gc.g)
	m.WriteWord(word(parent, src), uint64(src))
	m.WriteWord(word(level, src), 0)
	want := nativeBFSLevels(gc.g, src)

	fid := rt.RegisterFunc("bfs", 1024)

	visit := func(c *wsrt.Ctx, round uint64, v int, s, e int, pb *pushBuf) {
		for i := s; i < e; i++ {
			c.Compute(4)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			// Test-then-CAS (Ligra: parent[u] == -1 && CAS(...)): the
			// plain read filters already-claimed vertices; parent only
			// transitions away from unvisited, so a stale unvisited just
			// costs one failed CAS.
			if c.Load(word(parent, u)) != unvisited {
				continue
			}
			if got := c.Amo(word(parent, u), cache.AmoCAS, unvisited, uint64(v)); got == unvisited {
				c.Store(word(level, u), round)
				pb.push(c, u)
			}
		}
	}
	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			gc.initFrontier(c, src)
			gc.frontierLoop(c, fid, grain, serial, visit)
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, %d edges, src %d", n, gc.g.M(), src),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				if got := read(word(level, v)); got != want[v] {
					return fmt.Errorf("bfs: level[%d] = %d, want %d", v, got, want[v])
				}
				// Parent validity: parent[v] must be a neighbor at level-1.
				p := read(word(parent, v))
				if want[v] != unvisited && want[v] != 0 {
					if p == unvisited || want[p] != want[v]-1 {
						return fmt.Errorf("bfs: invalid parent for %d", v)
					}
				}
			}
			return nil
		},
	}
}

func setupBFSBV(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctx(rt, size)
	grain = grainOr(grain, 4)
	m := rt.Mem()
	n := gc.g.N
	nw := (n + 63) / 64
	visited := m.AllocWords(nw)
	curBV := m.AllocWords(nw)
	nextBV := m.AllocWords(nw)
	changed := m.AllocWords(1) // whether any bit was newly set this round
	src := maxDegreeVertex(gc.g)
	m.WriteWord(word(visited, src/64), 1<<(src%64))
	m.WriteWord(word(curBV, src/64), 1<<(src%64))
	want := nativeBFSLevels(gc.g, src)
	ecc := uint64(0)
	for _, l := range want {
		if l != unvisited && l > ecc {
			ecc = l
		}
	}

	fid := rt.RegisterFunc("bfsbv", 1024)

	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			rounds := uint64(0)
			for {
				c.Store(changed, 0)
				leaf := func(cc *wsrt.Ctx, lo, hi int) {
					any := false
					for wi := lo; wi < hi; wi++ {
						cc.Compute(4)
						w := cc.Load(word(curBV, wi))
						for ; w != 0; w &= w - 1 {
							v := wi*64 + trailing64(w)
							s, e := gc.degree(cc, v)
							for i := s; i < e; i++ {
								cc.Compute(3)
								u := int(cc.Load(gc.gm.EdgeAddr(i)))
								bit := uint64(1) << (u % 64)
								// Test-then-set: visited bits only turn on, so a
								// stale set bit is truly set and a stale clear
								// bit only costs a redundant AMO.
								if cc.Load(word(visited, u/64))&bit != 0 {
									continue
								}
								old := cc.Amo(word(visited, u/64), cache.AmoOr, bit, 0)
								if old&bit == 0 {
									cc.Amo(word(nextBV, u/64), cache.AmoOr, bit, 0)
									any = true
								}
							}
						}
					}
					if any {
						// One flag update per leaf, not per bit.
						cc.Amo(changed, cache.AmoOr, 1, 0)
					}
				}
				if serial {
					leaf(c, 0, nw)
				} else {
					c.ParallelForRange(fid, 0, nw, grain, leaf)
				}
				if c.Load(changed) == 0 {
					break
				}
				rounds++
				// Promote next to cur and clear next (main thread, plain
				// stores published by the fork discipline).
				for wi := 0; wi < nw; wi++ {
					c.Store(word(curBV, wi), c.Load(word(nextBV, wi)))
					c.Store(word(nextBV, wi), 0)
				}
			}
			c.Store(changed, rounds) // stash round count for verification
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices (bit-vector), src %d", n, src),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				wantBit := want[v] != unvisited
				gotBit := read(word(visited, v/64))&(1<<(v%64)) != 0
				if wantBit != gotBit {
					return fmt.Errorf("bfsbv: visited[%d] = %v, want %v", v, gotBit, wantBit)
				}
			}
			if got := read(changed); got != ecc {
				return fmt.Errorf("bfsbv: rounds = %d, want eccentricity %d", got, ecc)
			}
			return nil
		},
	}
}

func trailing64(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
