package apps

import (
	"fmt"
	"math"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// cilk5-lu: recursive blocked LU decomposition (no pivoting; the input
// is made diagonally dominant). The recursion follows Cilk-5's lu:
//
//	lu(A):  lu(A00)
//	        fork{ lowerSolve(A01), upperSolve(A10) }
//	        A11 -= A10 * A01   (recursive, parallel)
//	        lu(A11)
//
// Values are float64 stored as bit patterns in simulated words. The
// operation order is schedule-independent, so results are compared
// bitwise against a plain-Go mirror of the same recursion.

func init() {
	register(&App{
		Name:         "cilk5-lu",
		Method:       "ss",
		DefaultGrain: 8, // base block size
		Setup:        setupLU,
	})
}

func setupLU(rt *wsrt.RT, size Size, grain int) *Instance {
	n := map[Size]int{Test: 32, Ref: 128, Big: 128, Empty: 0, Unit: 1}[size]
	blk := grainOr(grain, 8)
	m := rt.Mem()
	A := m.AllocWords(n * n)
	rng := sim.NewRand(0x10)
	ref := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64(rng.Intn(1000))/100 + 1
			if i == j {
				v += float64(n) * 16
			}
			ref[i*n+j] = v
			m.WriteWord(word(A, i*n+j), math.Float64bits(v))
		}
	}
	luNativeRecursive(ref, n, 0, 0, n, blk)

	fid := rt.RegisterFunc("lu", 2048)
	at := func(i, j int) mem.Addr { return word(A, i*n+j) }
	ld := func(c *wsrt.Ctx, i, j int) float64 { return math.Float64frombits(c.Load(at(i, j))) }
	st := func(c *wsrt.Ctx, i, j int, v float64) { c.Store(at(i, j), math.Float64bits(v)) }

	// serialLU factorizes the s x s block at (r0,c0) in place.
	serialLU := func(c *wsrt.Ctx, r0, c0, s int) {
		for k := 0; k < s; k++ {
			pivot := ld(c, r0+k, c0+k)
			for i := k + 1; i < s; i++ {
				c.Compute(4)
				lik := ld(c, r0+i, c0+k) / pivot
				st(c, r0+i, c0+k, lik)
				for j := k + 1; j < s; j++ {
					c.Compute(3)
					st(c, r0+i, c0+j, ld(c, r0+i, c0+j)-lik*ld(c, r0+k, c0+j))
				}
			}
		}
	}
	// forwardCol solves L(lr,lc,s) * x = b for one column (unit lower
	// triangular), in place.
	forwardCol := func(c *wsrt.Ctx, lr, lc, s, br, bc int) {
		for i := 0; i < s; i++ {
			c.Compute(2)
			v := ld(c, br+i, bc)
			for k := 0; k < i; k++ {
				c.Compute(3)
				v -= ld(c, lr+i, lc+k) * ld(c, br+k, bc)
			}
			st(c, br+i, bc, v)
		}
	}
	// backRow solves x * U(ur,uc,s) = b for one row, in place.
	backRow := func(c *wsrt.Ctx, ur, uc, s, br, bc int) {
		for j := 0; j < s; j++ {
			c.Compute(2)
			v := ld(c, br, bc+j)
			for k := 0; k < j; k++ {
				c.Compute(3)
				v -= ld(c, br, bc+k) * ld(c, ur+k, uc+j)
			}
			st(c, br, bc+j, v/ld(c, ur+j, uc+j))
		}
	}

	// lowerSolve solves L * X = B where B is s rows x w cols at (br,bc),
	// forking over column halves.
	var lowerSolve func(c *wsrt.Ctx, lr, lc, s, br, bc, w int, par bool)
	lowerSolve = func(c *wsrt.Ctx, lr, lc, s, br, bc, w int, par bool) {
		c.Compute(4)
		if w <= blk {
			for j := 0; j < w; j++ {
				forwardCol(c, lr, lc, s, br, bc+j)
			}
			return
		}
		h := w / 2
		if par {
			c.Fork(fid,
				func(cc *wsrt.Ctx) { lowerSolve(cc, lr, lc, s, br, bc, h, true) },
				func(cc *wsrt.Ctx) { lowerSolve(cc, lr, lc, s, br, bc+h, w-h, true) })
		} else {
			lowerSolve(c, lr, lc, s, br, bc, h, false)
			lowerSolve(c, lr, lc, s, br, bc+h, w-h, false)
		}
	}
	// upperSolve solves X * U = B where B is h rows x s cols at (br,bc),
	// forking over row halves.
	var upperSolve func(c *wsrt.Ctx, ur, uc, s, br, bc, h int, par bool)
	upperSolve = func(c *wsrt.Ctx, ur, uc, s, br, bc, h int, par bool) {
		c.Compute(4)
		if h <= blk {
			for i := 0; i < h; i++ {
				backRow(c, ur, uc, s, br+i, bc)
			}
			return
		}
		half := h / 2
		if par {
			c.Fork(fid,
				func(cc *wsrt.Ctx) { upperSolve(cc, ur, uc, s, br, bc, half, true) },
				func(cc *wsrt.Ctx) { upperSolve(cc, ur, uc, s, br+half, bc, h-half, true) })
		} else {
			upperSolve(c, ur, uc, s, br, bc, half, false)
			upperSolve(c, ur, uc, s, br+half, bc, h-half, false)
		}
	}
	// matmulSub computes C -= A*B for s x s blocks, forking over the
	// four C quadrants; the k dimension is processed sequentially
	// (first half then second), keeping summation order fixed.
	var matmulSub func(c *wsrt.Ctx, cr, cc0, ar, ac, br, bc, s int, par bool)
	matmulSub = func(c *wsrt.Ctx, cr, cc0, ar, ac, br, bc, s int, par bool) {
		c.Compute(4)
		if s <= blk {
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					c.Compute(2)
					v := ld(c, cr+i, cc0+j)
					for k := 0; k < s; k++ {
						c.Compute(3)
						v -= ld(c, ar+i, ac+k) * ld(c, br+k, bc+j)
					}
					st(c, cr+i, cc0+j, v)
				}
			}
			return
		}
		h := s / 2
		quad := func(ci, cj int) func(*wsrt.Ctx) {
			return func(cc *wsrt.Ctx) {
				matmulSub(cc, cr+ci*h, cc0+cj*h, ar+ci*h, ac, br, bc+cj*h, h, par)
				matmulSub(cc, cr+ci*h, cc0+cj*h, ar+ci*h, ac+h, br+h, bc+cj*h, h, par)
			}
		}
		if par {
			c.Fork(fid, quad(0, 0), quad(0, 1), quad(1, 0), quad(1, 1))
		} else {
			for ci := 0; ci < 2; ci++ {
				for cj := 0; cj < 2; cj++ {
					quad(ci, cj)(c)
				}
			}
		}
	}

	var lu func(c *wsrt.Ctx, r0, c0, s int, par bool)
	lu = func(c *wsrt.Ctx, r0, c0, s int, par bool) {
		c.Compute(6)
		if s <= blk {
			serialLU(c, r0, c0, s)
			return
		}
		h := s / 2
		lu(c, r0, c0, h, par)
		if par {
			c.Fork(fid,
				func(cc *wsrt.Ctx) { lowerSolve(cc, r0, c0, h, r0, c0+h, s-h, true) },
				func(cc *wsrt.Ctx) { upperSolve(cc, r0, c0, h, r0+h, c0, s-h, true) })
		} else {
			lowerSolve(c, r0, c0, h, r0, c0+h, s-h, false)
			upperSolve(c, r0, c0, h, r0+h, c0, s-h, false)
		}
		matmulSub(c, r0+h, c0+h, r0+h, c0, r0, c0+h, s-h, par)
		lu(c, r0+h, c0+h, s-h, par)
	}

	return &Instance{
		InputDesc:  fmt.Sprintf("%dx%d matrix, block %d", n, n, blk),
		Root:       func(c *wsrt.Ctx) { lu(c, 0, 0, n, true) },
		SerialRoot: func(c *wsrt.Ctx) { lu(c, 0, 0, n, false) },
		Verify: func(read func(mem.Addr) uint64) error {
			for i := 0; i < n*n; i++ {
				if got := read(word(A, i)); got != math.Float64bits(ref[i]) {
					return fmt.Errorf("lu: A[%d] = %v, want %v",
						i, math.Float64frombits(got), ref[i])
				}
			}
			return nil
		},
	}
}

// luNativeRecursive mirrors the simulated recursion exactly in plain Go
// (identical floating-point operation order).
func luNativeRecursive(a []float64, n, r0, c0, s, blk int) {
	ld := func(i, j int) float64 { return a[i*n+j] }
	st := func(i, j int, v float64) { a[i*n+j] = v }
	if s <= blk {
		for k := 0; k < s; k++ {
			p := ld(r0+k, c0+k)
			for i := k + 1; i < s; i++ {
				lik := ld(r0+i, c0+k) / p
				st(r0+i, c0+k, lik)
				for j := k + 1; j < s; j++ {
					st(r0+i, c0+j, ld(r0+i, c0+j)-lik*ld(r0+k, c0+j))
				}
			}
		}
		return
	}
	h := s / 2
	luNativeRecursive(a, n, r0, c0, h, blk)
	// lowerSolve on A01 (column order matches the simulated leaf order).
	for j := 0; j < s-h; j++ {
		for i := 0; i < h; i++ {
			v := ld(r0+i, c0+h+j)
			for k := 0; k < i; k++ {
				v -= ld(r0+i, c0+k) * ld(r0+k, c0+h+j)
			}
			st(r0+i, c0+h+j, v)
		}
	}
	// upperSolve on A10.
	for i := 0; i < s-h; i++ {
		for j := 0; j < h; j++ {
			v := ld(r0+h+i, c0+j)
			for k := 0; k < j; k++ {
				v -= ld(r0+h+i, c0+k) * ld(r0+k, c0+j)
			}
			st(r0+h+i, c0+j, v/ld(r0+j, c0+j))
		}
	}
	luNativeMatmulSub(a, n, r0+h, c0+h, r0+h, c0, r0, c0+h, s-h, blk)
	luNativeRecursive(a, n, r0+h, c0+h, s-h, blk)
}

func luNativeMatmulSub(a []float64, n, cr, cc, ar, ac, br, bc, s, blk int) {
	if s <= blk {
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				v := a[(cr+i)*n+cc+j]
				for k := 0; k < s; k++ {
					v -= a[(ar+i)*n+ac+k] * a[(br+k)*n+bc+j]
				}
				a[(cr+i)*n+cc+j] = v
			}
		}
		return
	}
	h := s / 2
	for ci := 0; ci < 2; ci++ {
		for cj := 0; cj < 2; cj++ {
			luNativeMatmulSub(a, n, cr+ci*h, cc+cj*h, ar+ci*h, ac, br, bc+cj*h, h, blk)
			luNativeMatmulSub(a, n, cr+ci*h, cc+cj*h, ar+ci*h, ac+h, br+h, bc+cj*h, h, blk)
		}
	}
}
