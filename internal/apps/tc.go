package apps

import (
	"fmt"

	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-tc: triangle counting by sorted adjacency intersection
// (Ligra's Triangle). Parallelism is two-level: parallel_for over
// vertices (grain = vertices per task, the paper's Figure 4
// granularity knob), with a nested parallel_for over the adjacency of
// very-high-degree vertices so the R-MAT degree skew cannot serialize
// the computation on one giant task.

func init() {
	register(&App{Name: "ligra-tc", Method: "pf", DefaultGrain: 16, Setup: setupTC})
}

// hubSplit is the degree above which a vertex's intersections are
// themselves parallelized.
const hubSplit = 128

// nativeTriangles counts triangles exactly.
func nativeTriangles(g *graph.Graph) uint64 {
	var count uint64
	for v := 0; v < g.N; v++ {
		nv := g.Neighbors(v)
		for _, u := range nv {
			if int(u) <= v {
				continue
			}
			nu := g.Neighbors(int(u))
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				a, b := nv[i], nu[j]
				switch {
				case a == b:
					if a > u {
						count++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}

func setupTC(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctxHeavy(rt, size, true)
	grain = grainOr(grain, 16)
	m := rt.Mem()
	n := gc.g.N
	total := m.AllocWords(1)
	want := nativeTriangles(gc.g)

	fid := rt.RegisterFunc("tc", 1536)

	// intersect counts common neighbors w > u between v's and u's
	// sorted adjacency lists.
	intersect := func(c *wsrt.Ctx, vs, ve, us, ue int, u int) uint64 {
		var cnt uint64
		a, b := vs, us
		for a < ve && b < ue {
			c.Compute(4)
			x := c.Load(gc.gm.EdgeAddr(a))
			y := c.Load(gc.gm.EdgeAddr(b))
			switch {
			case x == y:
				if int(x) > u {
					cnt++
				}
				a++
				b++
			case x < y:
				a++
			default:
				b++
			}
		}
		return cnt
	}

	// countRange counts triangles from v's edges in adjacency positions
	// [lo, hi).
	countRange := func(c *wsrt.Ctx, v, vs, ve, lo, hi int) uint64 {
		var cnt uint64
		for i := lo; i < hi; i++ {
			c.Compute(3)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			if u <= v {
				continue
			}
			us, ue := gc.degree(c, u)
			cnt += intersect(c, vs, ve, us, ue, u)
		}
		return cnt
	}

	countVertex := func(c *wsrt.Ctx, v int, parallel bool) {
		vs, ve := gc.degree(c, v)
		deg := ve - vs
		if parallel && deg > hubSplit {
			// Hub vertex: parallelize over its adjacency so the R-MAT
			// skew cannot serialize the run on one task. Partial counts
			// reduce through the fork tree; one AMO publishes the total.
			cnt := c.ParallelReduce(fid, vs, ve, hubSplit,
				func(cc *wsrt.Ctx, lo, hi int) uint64 {
					return countRange(cc, v, vs, ve, lo, hi)
				},
				func(a, b uint64) uint64 { return a + b })
			if cnt > 0 {
				c.Amo(total, cache.AmoAdd, cnt, 0)
			}
			return
		}
		if cnt := countRange(c, v, vs, ve, vs, ve); cnt > 0 {
			c.Amo(total, cache.AmoAdd, cnt, 0)
		}
	}

	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			if serial {
				for v := 0; v < n; v++ {
					countVertex(c, v, false)
				}
				return
			}
			c.ParallelFor(fid, 0, n, grain, func(cc *wsrt.Ctx, v int) {
				countVertex(cc, v, true)
			})
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, %d edges", n, gc.g.M()),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			if got := read(total); got != want {
				return fmt.Errorf("tc: %d triangles, want %d", got, want)
			}
			return nil
		},
	}
}
