package apps

import (
	"fmt"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// cilk5-mt: cache-oblivious out-of-place matrix transpose B = A^T,
// recursively splitting the larger dimension and forking the halves.

func init() {
	register(&App{
		Name:         "cilk5-mt",
		Method:       "ss",
		DefaultGrain: 16, // base tile edge
		Setup:        setupMT,
	})
}

func setupMT(rt *wsrt.RT, size Size, grain int) *Instance {
	n := map[Size]int{Test: 64, Ref: 256, Big: 512, Empty: 0, Unit: 1}[size]
	blk := grainOr(grain, 16)
	m := rt.Mem()
	A := m.AllocWords(n * n)
	B := m.AllocWords(n * n)
	rng := sim.NewRand(0x47)
	av := make([]uint64, n*n)
	for i := range av {
		av[i] = rng.Uint64()
		m.WriteWord(word(A, i), av[i])
	}

	fid := rt.RegisterFunc("mt", 768)

	var mt func(c *wsrt.Ctx, r0, c0, rows, cols int, par bool)
	mt = func(c *wsrt.Ctx, r0, c0, rows, cols int, par bool) {
		c.Compute(4)
		if rows <= blk && cols <= blk {
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					c.Compute(2)
					v := c.Load(word(A, (r0+i)*n+c0+j))
					c.Store(word(B, (c0+j)*n+r0+i), v)
				}
			}
			return
		}
		var f1, f2 func(*wsrt.Ctx)
		if rows >= cols {
			h := rows / 2
			f1 = func(cc *wsrt.Ctx) { mt(cc, r0, c0, h, cols, par) }
			f2 = func(cc *wsrt.Ctx) { mt(cc, r0+h, c0, rows-h, cols, par) }
		} else {
			h := cols / 2
			f1 = func(cc *wsrt.Ctx) { mt(cc, r0, c0, rows, h, par) }
			f2 = func(cc *wsrt.Ctx) { mt(cc, r0, c0+h, rows, cols-h, par) }
		}
		if par {
			c.Fork(fid, f1, f2)
		} else {
			f1(c)
			f2(c)
		}
	}

	return &Instance{
		InputDesc:  fmt.Sprintf("%dx%d transpose, tile %d", n, n, blk),
		Root:       func(c *wsrt.Ctx) { mt(c, 0, 0, n, n, true) },
		SerialRoot: func(c *wsrt.Ctx) { mt(c, 0, 0, n, n, false) },
		Verify: func(read func(mem.Addr) uint64) error {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got := read(word(B, j*n+i)); got != av[i*n+j] {
						return fmt.Errorf("mt: B[%d][%d] wrong", j, i)
					}
				}
			}
			return nil
		},
	}
}
