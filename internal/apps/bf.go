package apps

import (
	"fmt"

	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-bf: Bellman-Ford single-source shortest paths with CAS-based
// writeMin relaxations (Ligra's BellmanFord).

func init() {
	register(&App{Name: "ligra-bf", Method: "pf", DefaultGrain: 32, Setup: setupBF})
}

// nativeSSSP computes reference distances (Bellman-Ford, exact).
func nativeSSSP(g *graph.Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = unvisited
	}
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			if dist[v] == unvisited {
				continue
			}
			for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
				u := g.Edges[i]
				nd := dist[v] + uint64(g.Weights[i])
				if nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
	}
	return dist
}

func setupBF(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctx(rt, size)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	dist := m.AllocWords(n)
	mark := m.AllocWords(n) // round each vertex last joined the frontier
	for v := 0; v < n; v++ {
		m.WriteWord(word(dist, v), unvisited)
		m.WriteWord(word(mark, v), unvisited)
	}
	src := maxDegreeVertex(gc.g)
	m.WriteWord(word(dist, src), 0)
	want := nativeSSSP(gc.g, src)

	fid := rt.RegisterFunc("bf", 1024)

	visit := func(c *wsrt.Ctx, round uint64, v int, s, e int, pb *pushBuf) {
		dv := atomicRead(c, word(dist, v))
		for i := s; i < e; i++ {
			c.Compute(5)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			w := c.Load(gc.gm.WeightAddr(i))
			if casMin(c, word(dist, u), dv+w) {
				if markOnce(c, word(mark, u), round) {
					pb.push(c, u)
				}
			}
		}
	}
	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			gc.initFrontier(c, src)
			gc.frontierLoop(c, fid, grain, serial, visit)
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices weighted, src %d", n, src),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				if got := read(word(dist, v)); got != want[v] {
					return fmt.Errorf("bf: dist[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
