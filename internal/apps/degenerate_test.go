package apps

import (
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// Degenerate-input robustness: every app must set up, run, and verify
// at the Empty (zero-size array / edgeless graph) and Unit (single
// element / two-vertex path) sizes without hanging or tripping the
// watchdog. These inputs exercise the recursion base cases with no
// work at all and with exactly one element of work.

func runAppSize(t *testing.T, a *App, m *machine.Machine, v wsrt.Variant, size Size, serial bool) {
	t.Helper()
	rt := wsrt.New(m, v)
	inst := a.Setup(rt, size, 0)
	root := inst.Root
	if serial {
		root = inst.SerialRoot
	}
	if err := rt.Run(root); err != nil {
		t.Fatalf("%s/%s: %v (stats %v)", a.Name, size, err, rt.Stats)
	}
	read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
	if err := inst.Verify(read); err != nil {
		t.Fatalf("%s/%s: %v", a.Name, size, err)
	}
}

func TestDegenerateInputsParallel(t *testing.T) {
	for _, size := range []Size{Empty, Unit} {
		for _, a := range All() {
			a, size := a, size
			t.Run(size.String()+"/"+a.Name, func(t *testing.T) {
				runAppSize(t, a, testMachine(t, cache.GPUWB, true), wsrt.DTS, size, false)
			})
		}
	}
}

func TestDegenerateInputsSerial(t *testing.T) {
	for _, size := range []Size{Empty, Unit} {
		for _, a := range All() {
			a, size := a, size
			t.Run(size.String()+"/"+a.Name, func(t *testing.T) {
				runAppSize(t, a, testMachine(t, cache.MESI, false), wsrt.HW, size, true)
			})
		}
	}
}
