package apps

import (
	"fmt"
	"sort"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// cilk5-cs: parallel mergesort following Cilk-5's cilksort: recursive
// spawn-and-sync over halves, a *parallel* divide-and-conquer merge
// (split the longer run at its median, binary-search the split point in
// the shorter run, merge the two halves in parallel), and a serial
// insertion sort below the grain.

func init() {
	register(&App{
		Name:         "cilk5-cs",
		Method:       "ss",
		DefaultGrain: 64,
		Setup:        setupSort,
	})
}

func setupSort(rt *wsrt.RT, size Size, grain int) *Instance {
	n := map[Size]int{Test: 512, Ref: 8192, Big: 32768, Empty: 0, Unit: 1}[size]
	grain = grainOr(grain, 64)
	m := rt.Mem()
	data := m.AllocWords(n)
	tmp := m.AllocWords(n)
	rng := sim.NewRand(0xC5)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64() % 1_000_000
		m.WriteWord(word(data, i), vals[i])
	}
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	fid := rt.RegisterFunc("cs-sort", 1536)
	fidMerge := rt.RegisterFunc("cs-merge", 1024)

	// insertionSort sorts data[lo,hi) in place.
	insertionSort := func(c *wsrt.Ctx, lo, hi int) {
		for i := lo + 1; i < hi; i++ {
			c.Compute(3)
			v := c.Load(word(data, i))
			j := i - 1
			for j >= lo {
				c.Compute(2)
				u := c.Load(word(data, j))
				if u <= v {
					break
				}
				c.Store(word(data, j+1), u)
				j--
			}
			c.Store(word(data, j+1), v)
		}
	}

	// serialMerge merges data[lo1,hi1) and data[lo2,hi2) into tmp[dst..].
	serialMerge := func(c *wsrt.Ctx, lo1, hi1, lo2, hi2, dst int) {
		i, j, k := lo1, lo2, dst
		for i < hi1 || j < hi2 {
			c.Compute(4)
			var v uint64
			switch {
			case i >= hi1:
				v = c.Load(word(data, j))
				j++
			case j >= hi2:
				v = c.Load(word(data, i))
				i++
			default:
				a := c.Load(word(data, i))
				b := c.Load(word(data, j))
				if a <= b {
					v = a
					i++
				} else {
					v = b
					j++
				}
			}
			c.Store(word(tmp, k), v)
			k++
		}
	}

	// upperBound finds the first index in data[lo,hi) with value > v.
	upperBound := func(c *wsrt.Ctx, lo, hi int, v uint64) int {
		for lo < hi {
			c.Compute(4)
			mid := (lo + hi) / 2
			if c.Load(word(data, mid)) <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// pmerge is cilksort's parallel merge: split the longer run at its
	// median, binary-search the matching split in the shorter run, and
	// merge the two sub-pairs in parallel.
	var pmerge func(c *wsrt.Ctx, lo1, hi1, lo2, hi2, dst int, par bool)
	pmerge = func(c *wsrt.Ctx, lo1, hi1, lo2, hi2, dst int, par bool) {
		c.Compute(6)
		n1, n2 := hi1-lo1, hi2-lo2
		if n1 < n2 {
			lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
			n1, n2 = n2, n1
		}
		if n1+n2 <= 2*grain || n1 <= 1 {
			serialMerge(c, lo1, hi1, lo2, hi2, dst)
			return
		}
		mid1 := (lo1 + hi1) / 2
		pivot := c.Load(word(data, mid1))
		mid2 := upperBound(c, lo2, hi2, pivot)
		dst2 := dst + (mid1 - lo1) + (mid2 - lo2)
		if par {
			c.Fork(fidMerge,
				func(cc *wsrt.Ctx) { pmerge(cc, lo1, mid1, lo2, mid2, dst, true) },
				func(cc *wsrt.Ctx) { pmerge(cc, mid1, hi1, mid2, hi2, dst2, true) })
		} else {
			pmerge(c, lo1, mid1, lo2, mid2, dst, false)
			pmerge(c, mid1, hi1, mid2, hi2, dst2, false)
		}
	}

	// copyBack copies tmp[lo,hi) back into data (parallel above grain).
	copyBack := func(c *wsrt.Ctx, lo, hi int, par bool) {
		body := func(cc *wsrt.Ctx, i int) {
			cc.Compute(1)
			cc.Store(word(data, i), cc.Load(word(tmp, i)))
		}
		if par {
			c.ParallelFor(fidMerge, lo, hi, 2*grain, body)
		} else {
			for i := lo; i < hi; i++ {
				body(c, i)
			}
		}
	}

	var msort func(c *wsrt.Ctx, lo, hi int, par bool)
	msort = func(c *wsrt.Ctx, lo, hi int, par bool) {
		c.Compute(6)
		if hi-lo <= grain {
			insertionSort(c, lo, hi)
			return
		}
		mid := lo + (hi-lo)/2
		if par {
			c.Fork(fid,
				func(cc *wsrt.Ctx) { msort(cc, lo, mid, true) },
				func(cc *wsrt.Ctx) { msort(cc, mid, hi, true) },
			)
		} else {
			msort(c, lo, mid, false)
			msort(c, mid, hi, false)
		}
		pmerge(c, lo, mid, mid, hi, lo, par)
		copyBack(c, lo, hi, par)
	}

	return &Instance{
		InputDesc:  fmt.Sprintf("%d keys", n),
		Root:       func(c *wsrt.Ctx) { msort(c, 0, n, true) },
		SerialRoot: func(c *wsrt.Ctx) { msort(c, 0, n, false) },
		Verify: func(read func(mem.Addr) uint64) error {
			for i := 0; i < n; i++ {
				if got := read(word(data, i)); got != want[i] {
					return fmt.Errorf("cs: data[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}
