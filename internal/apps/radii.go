package apps

import (
	"fmt"

	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-radii: graph radius/eccentricity estimation by K=64
// simultaneous bit-parallel BFS traversals from sample sources (Ligra's
// Radii). Visited masks propagate with fetch-and-or; radii[v] records
// the last round v's mask grew.

func init() {
	register(&App{Name: "ligra-radii", Method: "pf", DefaultGrain: 32, Setup: setupRadii})
}

// radiiSources picks the K highest-degree vertices (deterministic).
func radiiSources(g *graph.Graph, k int) []int {
	type dv struct{ d, v int }
	best := make([]dv, 0, g.N)
	for v := 0; v < g.N; v++ {
		best = append(best, dv{g.Degree(v), v})
	}
	// Selection by degree then id (stable, deterministic).
	for i := 0; i < k && i < len(best); i++ {
		mx := i
		for j := i + 1; j < len(best); j++ {
			if best[j].d > best[mx].d || (best[j].d == best[mx].d && best[j].v < best[mx].v) {
				mx = j
			}
		}
		best[i], best[mx] = best[mx], best[i]
	}
	srcs := make([]int, 0, k)
	for i := 0; i < k && i < len(best); i++ {
		srcs = append(srcs, best[i].v)
	}
	return srcs
}

// nativeRadii mirrors the simulated algorithm in plain Go (the
// algorithm's result is schedule-independent: masks accumulate with OR
// and radii[v] equals the BFS level at which v's mask last grew).
func nativeRadii(g *graph.Graph, srcs []int) []uint64 {
	visited := make([]uint64, g.N)
	next := make([]uint64, g.N)
	radii := make([]uint64, g.N)
	cur := map[int]bool{}
	for i, s := range srcs {
		visited[s] |= 1 << i
		cur[s] = true
	}
	copy(next, visited)
	round := uint64(0)
	for len(cur) > 0 {
		round++
		newFrontier := map[int]bool{}
		for v := range cur {
			for _, u := range g.Neighbors(v) {
				add := visited[v] &^ visited[u]
				if add != 0 {
					next[u] |= add
					newFrontier[int(u)] = true
					radii[u] = round
				}
			}
		}
		for v := range newFrontier {
			visited[v] = next[v]
		}
		cur = newFrontier
	}
	return radii
}

func setupRadii(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctxHeavy(rt, size, true)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	k := 64
	if n < k {
		k = n
	}
	srcs := radiiSources(gc.g, k)
	visited := m.AllocWords(n)
	next := m.AllocWords(n)
	radii := m.AllocWords(n)
	mark := m.AllocWords(n)
	for v := 0; v < n; v++ {
		m.WriteWord(word(mark, v), unvisited)
	}
	for i, s := range srcs {
		old := m.ReadWord(word(visited, s))
		m.WriteWord(word(visited, s), old|1<<i)
		m.WriteWord(word(next, s), old|1<<i)
	}
	want := nativeRadii(gc.g, srcs)

	fid := rt.RegisterFunc("radii", 1280)

	visit := func(c *wsrt.Ctx, round uint64, v int, s, e int, pb *pushBuf) {
		mine := c.Load(word(visited, v))
		for i := s; i < e; i++ {
			c.Compute(5)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			// Test-then-or: mask bits only accumulate, so a stale copy
			// is a subset of the truth; if it already covers our bits
			// the AMO would be a no-op.
			if cur := c.Load(word(next, u)); cur|mine == cur {
				continue
			}
			old := c.Amo(word(next, u), cache.AmoOr, mine, 0)
			if old|mine != old {
				if markOnce(c, word(mark, u), round) {
					c.Store(word(radii, u), round)
					pb.push(c, u)
				}
			}
		}
	}
	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			gc.initFrontier(c, srcs...)
			round := uint64(0)
			cnt := int(c.Load(gc.curCnt))
			for cnt > 0 {
				round++
				r := round
				leaf := func(cc *wsrt.Ctx, lo, hi int) {
					pb := &pushBuf{gc: gc}
					for i := lo; i < hi; i++ {
						cc.Compute(4)
						v := int(cc.Load(word(gc.cur, i)))
						s0, e0 := gc.degree(cc, v)
						if !serial && e0-s0 > hubEdgeSplit {
							cc.ParallelForRange(fid, s0, e0, hubEdgeSplit,
								func(c2 *wsrt.Ctx, l2, h2 int) {
									pb2 := &pushBuf{gc: gc}
									visit(c2, r, v, l2, h2, pb2)
									pb2.flush(c2)
								})
							continue
						}
						visit(cc, r, v, s0, e0, pb)
					}
					pb.flush(cc)
				}
				if serial {
					leaf(c, 0, cnt)
				} else {
					c.ParallelForRange(fid, 0, cnt, grain, leaf)
				}
				cnt = gc.swap(c)
				// Promote next masks for the new frontier (parallel for
				// large frontiers; each element touches only its own
				// vertex's words).
				promote := func(cc *wsrt.Ctx, i int) {
					u := int(cc.Load(word(gc.cur, i)))
					cc.Store(word(visited, u), atomicRead(cc, word(next, u)))
				}
				if serial || cnt < 128 {
					for i := 0; i < cnt; i++ {
						promote(c, i)
					}
				} else {
					c.ParallelFor(fid, 0, cnt, grain, promote)
				}
			}
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, %d BFS sources", n, k),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				if got := read(word(radii, v)); got != want[v] {
					return fmt.Errorf("radii: radii[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
