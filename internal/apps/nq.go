package apps

import (
	"fmt"

	"bigtiny/internal/cache"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// cilk5-nq: count all N-queens placements by backtracking. The top two
// rows are explored with parallel_for (the paper lists nq under pf);
// deeper rows backtrack serially. Each leaf adds its solution count to
// a global counter with an AMO (fine-grained synchronization).

func init() {
	register(&App{
		Name:         "cilk5-nq",
		Method:       "pf",
		DefaultGrain: 1, // board positions per task
		Setup:        setupNQ,
	})
}

// nqCount is an independent native solver for verification.
func nqCount(n int) uint64 {
	var count uint64
	cols := make([]int, 0, n)
	var rec func(row int)
	safe := func(row, col int) bool {
		for r, c := range cols {
			if c == col || c-col == row-r || col-c == row-r {
				return false
			}
		}
		return true
	}
	rec = func(row int) {
		if row == n {
			count++
			return
		}
		for col := 0; col < n; col++ {
			if safe(row, col) {
				cols = append(cols, col)
				rec(row + 1)
				cols = cols[:len(cols)-1]
			}
		}
	}
	rec(0)
	return count
}

func setupNQ(rt *wsrt.RT, size Size, grain int) *Instance {
	n := map[Size]int{Test: 7, Ref: 9, Big: 10, Empty: 0, Unit: 1}[size]
	grain = grainOr(grain, 1)
	m := rt.Mem()
	countAddr := m.AllocWords(1)
	want := nqCount(n)

	fid := rt.RegisterFunc("nq", 1024)

	// The board (placed columns per row) lives in simulated memory: each
	// task allocates its own copy so parent-written prefixes flow to
	// (potentially stolen) children through the memory system.
	solve := func(c *wsrt.Ctx, board mem.Addr, row int) uint64 {
		// Serial backtracking from `row` with the prefix in board.
		var rec func(row int) uint64
		prefix := make([]uint64, n)
		for r := 0; r < row; r++ {
			prefix[r] = c.Load(word(board, r))
		}
		safe := func(row int, col uint64) bool {
			for r := 0; r < row; r++ {
				c.Compute(4)
				pc := prefix[r]
				if pc == col || pc+uint64(row-r) == col || pc == col+uint64(row-r) {
					return false
				}
			}
			return true
		}
		rec = func(rw int) uint64 {
			if rw == n {
				return 1
			}
			var cnt uint64
			for col := uint64(0); col < uint64(n); col++ {
				c.Compute(3)
				if safe(rw, col) {
					prefix[rw] = col
					cnt += rec(rw + 1)
				}
			}
			return cnt
		}
		return rec(row)
	}

	body := func(c *wsrt.Ctx, i int) {
		// i encodes the first two rows: (col0, col1).
		col0, col1 := uint64(i/n), uint64(i%n)
		c.Compute(6)
		if col0 == col1 || col0+1 == col1 || col1+1 == col0 {
			return // attacked: prune
		}
		board := c.Alloc(n)
		c.Store(word(board, 0), col0)
		c.Store(word(board, 1), col1)
		cnt := solve(c, board, 2)
		if cnt > 0 {
			c.Amo(countAddr, cache.AmoAdd, cnt, 0)
		}
	}

	// The two-row decomposition assumes n >= 2 (it enumerates (col0,
	// col1) pairs); degenerate boards backtrack directly from row 0.
	runDirect := func(c *wsrt.Ctx) {
		board := c.Alloc(n + 1)
		if cnt := solve(c, board, 0); cnt > 0 {
			c.Amo(countAddr, cache.AmoAdd, cnt, 0)
		}
	}

	return &Instance{
		InputDesc: fmt.Sprintf("%d-queens", n),
		Root: func(c *wsrt.Ctx) {
			if n < 2 {
				runDirect(c)
				return
			}
			c.ParallelFor(fid, 0, n*n, grain, body)
		},
		SerialRoot: func(c *wsrt.Ctx) {
			if n < 2 {
				runDirect(c)
				return
			}
			for i := 0; i < n*n; i++ {
				body(c, i)
			}
		},
		Verify: func(read func(mem.Addr) uint64) error {
			if got := read(countAddr); got != want {
				return fmt.Errorf("nq: count = %d, want %d", got, want)
			}
			return nil
		},
	}
}
