// Package apps ports the paper's 13 dynamic task-parallel application
// kernels (Table III) to the work-stealing runtime: five Cilk-5 kernels
// using recursive spawn-and-sync and eight Ligra kernels using
// loop-level parallelism with fine-grained synchronization
// (compare-and-swap), exactly the split the paper studies.
//
// Every kernel provides a parallel program, a serial program (for the
// Serial-IO baseline), and a verifier that checks the simulated output
// against a native Go reference.
package apps

import (
	"fmt"
	"sort"

	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// Size selects an input scale.
type Size int

// Input scales: Test for unit tests, Ref for the 64-core evaluation
// (Table III/Figures 5-8, scaled to simulator speed), Big for the
// 256-core weak-scaling study (Table V). Empty and Unit are degenerate
// inputs (zero-size arrays / edgeless graphs, and the smallest
// nontrivial input) used by robustness tests only.
const (
	Test Size = iota
	Ref
	Big
	Empty
	Unit
)

// ParseSize is String's inverse: it resolves a size name from a CLI
// flag or an API request, so every entry point validates against the
// same list.
func ParseSize(name string) (Size, error) {
	for _, s := range []Size{Test, Ref, Big, Empty, Unit} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("apps: unknown size %q (have test, ref, big, empty, unit)", name)
}

// String names the size.
func (s Size) String() string {
	switch s {
	case Test:
		return "test"
	case Ref:
		return "ref"
	case Big:
		return "big"
	case Empty:
		return "empty"
	case Unit:
		return "unit"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// Instance is a configured program ready to run on one machine.
type Instance struct {
	// Root is the parallel program (uses Fork/ParallelFor).
	Root wsrt.Body
	// SerialRoot is the serial program for the Serial-IO baseline.
	SerialRoot wsrt.Body
	// Verify checks outputs; read returns the freshest simulated value.
	Verify func(read func(mem.Addr) uint64) error
	// InputDesc describes the input (for reports).
	InputDesc string
}

// App is one of the paper's 13 kernels.
type App struct {
	// Name matches the paper (e.g. "cilk5-cs", "ligra-bfs").
	Name string
	// Method is the parallelization method: "ss" (recursive
	// spawn-and-sync) or "pf" (parallel_for), per Table III.
	Method string
	// DefaultGrain is the task granularity used in the evaluation
	// (chosen per §V-D to make the bT/MESI baseline perform well).
	DefaultGrain int
	// Setup allocates inputs in the runtime's machine memory and
	// returns the program instance. grain <= 0 uses DefaultGrain.
	Setup func(rt *wsrt.RT, size Size, grain int) *Instance
}

var registry []*App

func register(a *App) *App {
	registry = append(registry, a)
	return a
}

// All returns the 13 applications in the paper's Table III order.
func All() []*App {
	out := make([]*App, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return tableOrder(out[i].Name) < tableOrder(out[j].Name) })
	return out
}

// ByName returns the named app or an error.
func ByName(name string) (*App, error) {
	for _, a := range registry {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown app %q", name)
}

// tableOrder gives the paper's Table III row order.
func tableOrder(name string) int {
	order := []string{
		"cilk5-cs", "cilk5-lu", "cilk5-mm", "cilk5-mt", "cilk5-nq",
		"ligra-bc", "ligra-bf", "ligra-bfs", "ligra-bfsbv", "ligra-cc",
		"ligra-mis", "ligra-radii", "ligra-tc",
	}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// grainOr returns g if positive, else the app default.
func grainOr(g, def int) int {
	if g > 0 {
		return g
	}
	return def
}

// word returns the address of the i-th word of a simulated array.
func word(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i)*8 }
