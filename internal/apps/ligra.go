package apps

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// Shared Ligra-style machinery: sparse frontiers, coherent read-modify-
// write helpers, and graph traversal through simulated memory.
//
// Data-sharing discipline (mirrors Ligra on the paper's runtime):
//   - State written by the main thread between rounds (resets, swaps)
//     is plain stores: DAG consistency publishes parent data to children.
//   - State raced between sibling tasks within a round (visited flags,
//     distances, frontier counters) uses AMOs (compare-and-swap etc.),
//     the paper's "fine-grained synchronization".
//   - State written in round k and read in round k+1 is plain: the
//     runtime's flush-on-steal/invalidate-on-steal discipline publishes
//     it across round boundaries.

const unvisited = ^uint64(0)

// ligraScale maps Size to (rMat scale, edge factor). heavy marks
// kernels whose per-edge work is super-linear (tc's intersections,
// bc's two passes, radii's 64-way BFS): they use one scale smaller so
// full-evaluation wall times stay balanced across the suite.
func ligraScale(size Size, heavy bool) (scale, ef int) {
	switch size {
	case Test:
		return 6, 4
	case Big:
		if heavy {
			return 12, 8
		}
		return 13, 8
	default:
		if heavy {
			return 11, 8
		}
		return 12, 8
	}
}

// gctx bundles a loaded graph with frontier storage.
type gctx struct {
	g  *graph.Graph
	gm *graph.Mem
	// cur/next sparse frontiers: vertex lists + counters.
	cur, next       mem.Addr
	curCnt, nextCnt mem.Addr
}

func newGctx(rt *wsrt.RT, size Size) *gctx { return newGctxHeavy(rt, size, false) }

// newGctxHeavy builds the graph context with the heavy-kernel scale.
// The degenerate sizes bypass R-MAT: Empty is a single isolated vertex
// (R-MAT cannot generate an edgeless graph), Unit the two-vertex path.
func newGctxHeavy(rt *wsrt.RT, size Size, heavy bool) *gctx {
	var g *graph.Graph
	switch size {
	case Empty:
		g = graph.Empty(1)
	case Unit:
		g = graph.Path(2)
	default:
		scale, ef := ligraScale(size, heavy)
		g = graph.RMat(scale, ef, 0x9A3F)
	}
	m := rt.Mem()
	return &gctx{
		g:       g,
		gm:      graph.LoadInto(m, g),
		cur:     m.AllocWords(g.N),
		next:    m.AllocWords(g.N),
		curCnt:  m.AllocWords(1),
		nextCnt: m.AllocWords(1),
	}
}

// maxDegreeVertex picks the traversal source.
func maxDegreeVertex(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

// degree loads v's degree from simulated CSR.
func (gc *gctx) degree(c *wsrt.Ctx, v int) (start, end int) {
	s := c.Load(gc.gm.OffsetAddr(v))
	e := c.Load(gc.gm.OffsetAddr(v + 1))
	return int(s), int(e)
}

// pushBuf buffers a leaf task's discovered vertices so the shared
// frontier counter is touched once per leaf, not once per discovery.
// Ligra proper achieves the same decontention with prefix sums; a
// task-local buffer plus one fetch-and-add is the chunked equivalent.
type pushBuf struct {
	gc  *gctx
	buf []int
}

// push buffers v (a couple of instructions on the local stack).
func (pb *pushBuf) push(c *wsrt.Ctx, v int) {
	c.Compute(2)
	pb.buf = append(pb.buf, v)
}

// flush reserves slots in the next frontier with a single
// fetch-and-add and stores the buffered vertices (slots are private to
// this task once reserved).
func (pb *pushBuf) flush(c *wsrt.Ctx) {
	if len(pb.buf) == 0 {
		return
	}
	idx := c.Amo(pb.gc.nextCnt, cache.AmoAdd, uint64(len(pb.buf)), 0)
	for i, v := range pb.buf {
		c.Store(word(pb.gc.next, int(idx)+i), uint64(v))
	}
	pb.buf = pb.buf[:0]
}

// swap promotes next to cur (called by the main thread between rounds).
func (gc *gctx) swap(c *wsrt.Ctx) int {
	n := int(c.Load(gc.nextCnt))
	gc.cur, gc.next = gc.next, gc.cur
	c.Store(gc.curCnt, uint64(n))
	c.Store(gc.nextCnt, 0)
	return n
}

// initFrontier seeds the current frontier (main thread, before fork).
func (gc *gctx) initFrontier(c *wsrt.Ctx, vs ...int) {
	for i, v := range vs {
		c.Store(word(gc.cur, i), uint64(v))
	}
	c.Store(gc.curCnt, uint64(len(vs)))
	c.Store(gc.nextCnt, 0)
}

// coherent read: amo_or(a, 0) (paper Fig. 3's atomic read idiom).
func atomicRead(c *wsrt.Ctx, a mem.Addr) uint64 {
	return c.Amo(a, cache.AmoOr, 0, 0)
}

// casMin atomically lowers *a to v if v is smaller; reports whether it
// decreased the value (Ligra's writeMin). The first read is a plain
// load — the test-then-CAS idiom: the word is monotone non-increasing,
// so a stale copy can only be too LARGE, which at worst costs one
// failed CAS (whose return value is authoritative). Probing with an
// AMO instead would migrate the line to every prober and serialize the
// machine on hot words.
func casMin(c *wsrt.Ctx, a mem.Addr, v uint64) bool {
	old := c.Load(a)
	for v < old {
		c.Compute(2)
		got := c.Amo(a, cache.AmoCAS, old, v)
		if got == old {
			return true
		}
		old = got
	}
	return false
}

// markOnce claims per-round membership: mark[a] is set to round exactly
// once per round; the claiming task returns true (Ligra's CAS-guarded
// frontier insertion). Same test-then-CAS reasoning as casMin: mark
// values are monotone increasing round numbers, so a stale copy is too
// small and merely triggers a (correct) CAS.
func markOnce(c *wsrt.Ctx, a mem.Addr, round uint64) bool {
	cur := c.Load(a)
	for {
		if cur == round {
			return false
		}
		c.Compute(2)
		got := c.Amo(a, cache.AmoCAS, cur, round)
		if got == cur {
			return true
		}
		cur = got
	}
}

// hubEdgeSplit is the per-vertex degree above which a frontier
// vertex's edges are processed by nested parallel tasks. R-MAT graphs
// are heavily skewed; without edge balancing a single hub vertex
// serializes its whole round (Ligra's edgeMap solves the same problem
// with edge-based work partitioning).
const hubEdgeSplit = 128

// frontierLoop runs the round-based skeleton shared by the traversal
// kernels: while the frontier is non-empty, process it in parallel with
// visit(round, v, lo, hi, pb) — [lo,hi) is a window of v's adjacency
// indices — then advance. Discoveries go through the leaf's pushBuf.
// serial selects the Serial-IO code path.
func (gc *gctx) frontierLoop(c *wsrt.Ctx, fid, grain int, serial bool,
	visit func(c *wsrt.Ctx, round uint64, v int, lo, hi int, pb *pushBuf)) (rounds uint64) {
	round := uint64(0)
	n := int(c.Load(gc.curCnt))
	for n > 0 {
		round++
		r := round
		leaf := func(cc *wsrt.Ctx, lo, hi int) {
			pb := &pushBuf{gc: gc}
			for i := lo; i < hi; i++ {
				cc.Compute(4)
				v := int(cc.Load(word(gc.cur, i)))
				s, e := gc.degree(cc, v)
				if !serial && e-s > hubEdgeSplit {
					// Hub vertex: edge-balance its adjacency across
					// nested tasks.
					cc.ParallelForRange(fid, s, e, hubEdgeSplit,
						func(c2 *wsrt.Ctx, l2, h2 int) {
							pb2 := &pushBuf{gc: gc}
							visit(c2, r, v, l2, h2, pb2)
							pb2.flush(c2)
						})
					continue
				}
				visit(cc, r, v, s, e, pb)
			}
			pb.flush(cc)
		}
		if serial {
			leaf(c, 0, n)
		} else {
			c.ParallelForRange(fid, 0, n, grain, leaf)
		}
		n = gc.swap(c)
	}
	return round
}
