package apps

import (
	"math"
	"testing"

	"bigtiny/internal/graph"
)

// pathGraph builds the path 0-1-2-...-(n-1) as a CSR Graph with unit
// weights, for hand-checkable reference tests.
func pathGraph(n int) *graph.Graph {
	g := &graph.Graph{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		deg := 2
		if v == 0 || v == n-1 {
			deg = 1
		}
		g.Offsets[v+1] = g.Offsets[v] + int32(deg)
	}
	g.Edges = make([]int32, g.Offsets[n])
	g.Weights = make([]uint32, g.Offsets[n])
	fill := make([]int32, n)
	addEdge := func(u, v int) {
		g.Edges[g.Offsets[u]+fill[u]] = int32(v)
		g.Weights[g.Offsets[u]+fill[u]] = 1
		fill[u]++
	}
	for v := 0; v+1 < n; v++ {
		addEdge(v, v+1)
		addEdge(v+1, v)
	}
	// Adjacency happens to come out sorted for a path built this way
	// except for interior vertices where the back edge is added first;
	// sort it to satisfy the CSR contract.
	for v := 0; v < n; v++ {
		adj := g.Edges[g.Offsets[v]:g.Offsets[v+1]]
		for i := 1; i < len(adj); i++ {
			for j := i; j > 0 && adj[j-1] > adj[j]; j-- {
				adj[j-1], adj[j] = adj[j], adj[j-1]
			}
		}
	}
	return g
}

// triangleGraph returns the complete graph K4 (4 triangles... actually
// C(4,3) = 4 triangles).
func completeGraph(n int) *graph.Graph {
	g := &graph.Graph{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] = g.Offsets[v] + int32(n-1)
	}
	g.Edges = make([]int32, g.Offsets[n])
	g.Weights = make([]uint32, g.Offsets[n])
	for v := 0; v < n; v++ {
		i := g.Offsets[v]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			g.Edges[i] = int32(u)
			g.Weights[i] = 1
			i++
		}
	}
	return g
}

func TestNativeBFSLevelsOnPath(t *testing.T) {
	g := pathGraph(5)
	lv := nativeBFSLevels(g, 0)
	for v := 0; v < 5; v++ {
		if lv[v] != uint64(v) {
			t.Fatalf("level[%d] = %d, want %d", v, lv[v], v)
		}
	}
	lv = nativeBFSLevels(g, 2)
	want := []uint64{2, 1, 0, 1, 2}
	for v := range want {
		if lv[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, lv[v], want[v])
		}
	}
}

func TestNativeSSSPOnPath(t *testing.T) {
	g := pathGraph(6)
	d := nativeSSSP(g, 0)
	for v := 0; v < 6; v++ {
		if d[v] != uint64(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], v)
		}
	}
}

func TestNativeComponentsTwoIslands(t *testing.T) {
	// Two disjoint paths: {0,1,2} and {3,4}.
	g := &graph.Graph{N: 5, Offsets: []int32{0, 1, 3, 4, 5, 6},
		Edges:   []int32{1, 0, 2, 1, 4, 3},
		Weights: []uint32{1, 1, 1, 1, 1, 1}}
	label := nativeComponents(g)
	want := []uint64{0, 0, 0, 3, 3}
	for v := range want {
		if label[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, label[v], want[v])
		}
	}
}

func TestNativeTrianglesCounts(t *testing.T) {
	if got := nativeTriangles(completeGraph(4)); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	if got := nativeTriangles(completeGraph(5)); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
	if got := nativeTriangles(pathGraph(6)); got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}

func TestNQCountKnownValues(t *testing.T) {
	// OEIS A000170.
	want := map[int]uint64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		if got := nqCount(n); got != w {
			t.Errorf("nqCount(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestMISPriorityUnique(t *testing.T) {
	seen := map[uint64]int{}
	for v := 0; v < 4096; v++ {
		p := misPriority(v)
		if prev, ok := seen[p]; ok {
			t.Fatalf("priority collision: %d and %d", prev, v)
		}
		seen[p] = v
	}
}

func TestRadiiSourcesAreTopDegree(t *testing.T) {
	g := graph.RMat(7, 6, 11)
	srcs := radiiSources(g, 8)
	if len(srcs) != 8 {
		t.Fatalf("%d sources", len(srcs))
	}
	minDeg := g.Degree(srcs[0])
	for _, s := range srcs {
		if d := g.Degree(s); d < minDeg {
			minDeg = d
		}
	}
	// No non-source may have a strictly higher degree than the minimum
	// selected degree.
	inSet := map[int]bool{}
	for _, s := range srcs {
		inSet[s] = true
	}
	for v := 0; v < g.N; v++ {
		if !inSet[v] && g.Degree(v) > minDeg {
			t.Fatalf("vertex %d (deg %d) excluded but min selected deg is %d",
				v, g.Degree(v), minDeg)
		}
	}
}

func TestNativeRadiiOnPath(t *testing.T) {
	g := pathGraph(5)
	// Sources 0 and 4: every vertex's mask grows until it has both
	// bits; the last growth round is its distance to the farther source.
	r := nativeRadii(g, []int{0, 4})
	want := []uint64{4, 3, 2, 3, 4}
	for v := range want {
		if r[v] != want[v] {
			t.Fatalf("radii[%d] = %d, want %d", v, r[v], want[v])
		}
	}
}

func TestNativeBCOnPath(t *testing.T) {
	// Brandes from vertex 0 on a path: delta[v] = number of vertices
	// beyond v (each shortest path from 0 passes through everything in
	// between).
	g := pathGraph(5)
	d := nativeBC(g, 0)
	want := []float64{4, 3, 2, 1, 0}
	for v := range want {
		if math.Abs(d[v]-want[v]) > 1e-12 {
			t.Fatalf("delta[%d] = %v, want %v", v, d[v], want[v])
		}
	}
}

func TestLUNativeFactorization(t *testing.T) {
	// LU of a small diagonally dominant matrix: verify L*U == A.
	n := 8
	a := make([]float64, n*n)
	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64((i*7+j*3)%5) + 1
			if i == j {
				v += 50
			}
			a[i*n+j] = v
			orig[i*n+j] = v
		}
	}
	luNativeRecursive(a, n, 0, 0, n, 4)
	// Reconstruct: A = L (unit lower) * U (upper).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k <= i && k <= j; k++ {
				l := a[i*n+k]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				sum += l * a[k*n+j]
			}
			if math.Abs(sum-orig[i*n+j]) > 1e-8 {
				t.Fatalf("LU reconstruct (%d,%d): %v vs %v", i, j, sum, orig[i*n+j])
			}
		}
	}
}
