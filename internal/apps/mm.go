package apps

import (
	"fmt"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// cilk5-mm: blocked recursive matrix multiplication C = A * B with
// integer elements (exact verification against a naive native product).
// The recursion forks over the four C quadrants; each quadrant performs
// its two k-half products sequentially.

func init() {
	register(&App{
		Name:         "cilk5-mm",
		Method:       "ss",
		DefaultGrain: 8, // base block size
		Setup:        setupMM,
	})
}

func setupMM(rt *wsrt.RT, size Size, grain int) *Instance {
	n := map[Size]int{Test: 32, Ref: 64, Big: 128, Empty: 0, Unit: 1}[size]
	blk := grainOr(grain, 8)
	m := rt.Mem()
	A := m.AllocWords(n * n)
	B := m.AllocWords(n * n)
	C := m.AllocWords(n * n)
	rng := sim.NewRand(0x3A)
	av := make([]uint64, n*n)
	bv := make([]uint64, n*n)
	for i := range av {
		av[i] = rng.Uint64() % 97
		bv[i] = rng.Uint64() % 89
		m.WriteWord(word(A, i), av[i])
		m.WriteWord(word(B, i), bv[i])
	}
	want := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := av[i*n+k]
			for j := 0; j < n; j++ {
				want[i*n+j] += a * bv[k*n+j]
			}
		}
	}

	fid := rt.RegisterFunc("mm", 1024)

	// base: C[cr..+s, cc..+s] += A[ar..,ak..] * B[bk..,bc..] serially.
	base := func(c *wsrt.Ctx, cr, cc0, ar, ac, br, bc, s int) {
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				c.Compute(2)
				v := c.Load(word(C, (cr+i)*n+cc0+j))
				for k := 0; k < s; k++ {
					c.Compute(3)
					v += c.Load(word(A, (ar+i)*n+ac+k)) * c.Load(word(B, (br+k)*n+bc+j))
				}
				c.Store(word(C, (cr+i)*n+cc0+j), v)
			}
		}
	}
	var mm func(c *wsrt.Ctx, cr, cc0, ar, ac, br, bc, s int, par bool)
	mm = func(c *wsrt.Ctx, cr, cc0, ar, ac, br, bc, s int, par bool) {
		c.Compute(4)
		if s <= blk {
			base(c, cr, cc0, ar, ac, br, bc, s)
			return
		}
		h := s / 2
		quad := func(ci, cj int) func(*wsrt.Ctx) {
			return func(cc *wsrt.Ctx) {
				mm(cc, cr+ci*h, cc0+cj*h, ar+ci*h, ac, br, bc+cj*h, h, par)
				mm(cc, cr+ci*h, cc0+cj*h, ar+ci*h, ac+h, br+h, bc+cj*h, h, par)
			}
		}
		if par {
			c.Fork(fid, quad(0, 0), quad(0, 1), quad(1, 0), quad(1, 1))
		} else {
			for ci := 0; ci < 2; ci++ {
				for cj := 0; cj < 2; cj++ {
					quad(ci, cj)(c)
				}
			}
		}
	}

	return &Instance{
		InputDesc:  fmt.Sprintf("%dx%d blocked matmul, block %d", n, n, blk),
		Root:       func(c *wsrt.Ctx) { mm(c, 0, 0, 0, 0, 0, 0, n, true) },
		SerialRoot: func(c *wsrt.Ctx) { mm(c, 0, 0, 0, 0, 0, 0, n, false) },
		Verify: func(read func(mem.Addr) uint64) error {
			for i := 0; i < n*n; i++ {
				if got := read(word(C, i)); got != want[i] {
					return fmt.Errorf("mm: C[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}
