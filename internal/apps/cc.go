package apps

import (
	"fmt"

	"bigtiny/internal/graph"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// ligra-cc: connected components by label propagation: every vertex's
// label converges to the minimum vertex id in its component via
// CAS-based writeMin over edges (Ligra's Components).

func init() {
	register(&App{Name: "ligra-cc", Method: "pf", DefaultGrain: 32, Setup: setupCC})
}

// nativeComponents returns the min-vertex-id label per component.
func nativeComponents(g *graph.Graph) []uint64 {
	label := make([]uint64, g.N)
	for v := range label {
		label[v] = uint64(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				if label[v] < label[u] {
					label[u] = label[v]
					changed = true
				} else if label[u] < label[v] {
					label[v] = label[u]
					changed = true
				}
			}
		}
	}
	return label
}

func setupCC(rt *wsrt.RT, size Size, grain int) *Instance {
	gc := newGctx(rt, size)
	grain = grainOr(grain, 32)
	m := rt.Mem()
	n := gc.g.N
	ids := m.AllocWords(n)
	mark := m.AllocWords(n)
	for v := 0; v < n; v++ {
		m.WriteWord(word(ids, v), uint64(v))
		m.WriteWord(word(mark, v), unvisited)
	}
	want := nativeComponents(gc.g)

	fid := rt.RegisterFunc("cc", 1024)

	visit := func(c *wsrt.Ctx, round uint64, v int, s, e int, pb *pushBuf) {
		myID := atomicRead(c, word(ids, v))
		for i := s; i < e; i++ {
			c.Compute(4)
			u := int(c.Load(gc.gm.EdgeAddr(i)))
			if casMin(c, word(ids, u), myID) {
				if markOnce(c, word(mark, u), round) {
					pb.push(c, u)
				}
			}
		}
	}
	run := func(serial bool) wsrt.Body {
		return func(c *wsrt.Ctx) {
			// Initial frontier: all vertices.
			all := make([]int, n)
			for v := range all {
				all[v] = v
			}
			gc.initFrontier(c, all...)
			gc.frontierLoop(c, fid, grain, serial, visit)
		}
	}
	return &Instance{
		InputDesc: fmt.Sprintf("rMat %d vertices, %d edges", n, gc.g.M()),
		Root:      run(false), SerialRoot: run(true),
		Verify: func(read func(mem.Addr) uint64) error {
			for v := 0; v < n; v++ {
				if got := read(word(ids, v)); got != want[v] {
					return fmt.Errorf("cc: ids[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
