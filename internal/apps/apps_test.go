package apps

import (
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// testMachine builds a small 8-core machine for app tests.
func testMachine(t testing.TB, proto cache.Protocol, dts bool) *machine.Machine {
	t.Helper()
	base, err := machine.Lookup("bT/MESI")
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Name = "apps-test"
	cfg.NumBig, cfg.NumTiny = 1, 7
	cfg.Rows, cfg.Cols = 2, 4
	cfg.NumBanks = 4
	cfg.TinyProto = proto
	cfg.DTS = dts
	cfg.Deadline = 600_000_000
	return machine.New(cfg)
}

func runApp(t *testing.T, a *App, m *machine.Machine, v wsrt.Variant, serial bool) {
	t.Helper()
	rt := wsrt.New(m, v)
	inst := a.Setup(rt, Test, 0)
	root := inst.Root
	if serial {
		root = inst.SerialRoot
	}
	if err := rt.Run(root); err != nil {
		t.Fatalf("%s: %v (stats %v)", a.Name, err, rt.Stats)
	}
	read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
	if err := inst.Verify(read); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("%d apps registered, want 13", len(all))
	}
	wantOrder := []string{
		"cilk5-cs", "cilk5-lu", "cilk5-mm", "cilk5-mt", "cilk5-nq",
		"ligra-bc", "ligra-bf", "ligra-bfs", "ligra-bfsbv", "ligra-cc",
		"ligra-mis", "ligra-radii", "ligra-tc",
	}
	for i, a := range all {
		if a.Name != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, a.Name, wantOrder[i])
		}
		if a.Method != "ss" && a.Method != "pf" {
			t.Errorf("%s: bad method %q", a.Name, a.Method)
		}
	}
	// Paper Table III parallelization methods.
	methods := map[string]string{
		"cilk5-cs": "ss", "cilk5-lu": "ss", "cilk5-mm": "ss", "cilk5-mt": "ss",
		"cilk5-nq": "pf", "ligra-bc": "pf", "ligra-bf": "pf", "ligra-bfs": "pf",
		"ligra-bfsbv": "pf", "ligra-cc": "pf", "ligra-mis": "pf", "ligra-radii": "pf",
		"ligra-tc": "pf",
	}
	for _, a := range all {
		if a.Method != methods[a.Name] {
			t.Errorf("%s: method %s, want %s (Table III)", a.Name, a.Method, methods[a.Name])
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted unknown app")
	}
}

// Every app must verify on the hardware-coherent baseline.
func TestAppsOnMESI(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			runApp(t, a, testMachine(t, cache.MESI, false), wsrt.HW, false)
		})
	}
}

// Every app must verify on HCC with the most demanding protocol
// (GPU-WB: flushes required for correctness).
func TestAppsOnHCCGWB(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			runApp(t, a, testMachine(t, cache.GPUWB, false), wsrt.HCC, false)
		})
	}
}

// Every app must verify with direct task stealing.
func TestAppsOnDTSGWB(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			runApp(t, a, testMachine(t, cache.GPUWB, true), wsrt.DTS, false)
		})
	}
}

// DeNovo and GPU-WT spot checks (one ss app + one pf app each).
func TestAppsOnOtherProtocols(t *testing.T) {
	names := []string{"cilk5-cs", "ligra-bfs"}
	for _, proto := range []cache.Protocol{cache.DeNovo, cache.GPUWT} {
		for _, name := range names {
			a, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(proto.String()+"/"+name, func(t *testing.T) {
				runApp(t, a, testMachine(t, proto, false), wsrt.HCC, false)
				runApp(t, a, testMachine(t, proto, true), wsrt.DTS, false)
			})
		}
	}
}

// Serial variants must verify on the single-tiny-core machine.
func TestSerialVariants(t *testing.T) {
	io1, err := machine.Lookup("IOx1")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			cfg := io1
			cfg.Deadline = 3_000_000_000
			m := machine.New(cfg)
			runApp(t, a, m, wsrt.HW, true)
		})
	}
}
