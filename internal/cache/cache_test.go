package cache

import (
	"testing"

	"bigtiny/internal/dram"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// newTestSystem builds a small 2-row mesh (cores on row 0, L2 banks on
// row 1) with one L1 per protocol in protos.
func newTestSystem(t testing.TB, protos []Protocol, l1Bytes int) *System {
	t.Helper()
	cols := len(protos)
	if cols < 2 {
		cols = 2
	}
	mesh := noc.NewMesh(2, cols)
	backing := mem.New()
	numBanks := 2
	cfg := Config{
		NumCores:      len(protos),
		L2SetsPerBank: 64,
		L2Ways:        8,
	}
	for c := range protos {
		cfg.CoreNode = append(cfg.CoreNode, mesh.Node(0, c%cols))
	}
	for b := 0; b < numBanks; b++ {
		cfg.BankNode = append(cfg.BankNode, mesh.Node(1, b))
		cfg.MCs = append(cfg.MCs, dram.NewController("mc", dram.DefaultConfig()))
	}
	sys := NewSystem(cfg, mesh, backing)
	for c, p := range protos {
		NewL1(sys, c, p, l1Bytes, 2)
	}
	return sys
}

func TestProtocolTaxonomy(t *testing.T) {
	// Paper Table I, row by row.
	m := PropertiesOf(MESI)
	if m.Invalidation != WriterInitiated || m.Propagation != OwnerWriteBack || m.Granularity != LineGranularity {
		t.Error("MESI row mismatch")
	}
	if m.NeedsInvalidate || m.NeedsFlush || m.AMOAtL2 {
		t.Error("MESI should need no software coherence ops")
	}
	d := PropertiesOf(DeNovo)
	if d.Invalidation != ReaderInitiated || d.Propagation != OwnerWriteBack || d.Granularity != WordGranularity {
		t.Error("DeNovo row mismatch")
	}
	if !d.NeedsInvalidate || d.NeedsFlush || d.AMOAtL2 {
		t.Error("DeNovo needs invalidate only")
	}
	wt := PropertiesOf(GPUWT)
	if wt.Invalidation != ReaderInitiated || wt.Propagation != NoOwnerWriteThrough || wt.Granularity != WordGranularity {
		t.Error("GPU-WT row mismatch")
	}
	if !wt.NeedsInvalidate || wt.NeedsFlush || !wt.AMOAtL2 {
		t.Error("GPU-WT needs invalidate and L2 atomics")
	}
	wb := PropertiesOf(GPUWB)
	if wb.Invalidation != ReaderInitiated || wb.Propagation != NoOwnerWriteBack || wb.Granularity != WordGranularity {
		t.Error("GPU-WB row mismatch")
	}
	if !wb.NeedsInvalidate || !wb.NeedsFlush || !wb.AMOAtL2 {
		t.Error("GPU-WB needs invalidate, flush, and L2 atomics")
	}
}

func TestReadYourWriteAllProtocols(t *testing.T) {
	for _, p := range []Protocol{MESI, DeNovo, GPUWT, GPUWB} {
		sys := newTestSystem(t, []Protocol{p}, 4096)
		l1 := sys.L1(0)
		a := sys.Mem().Alloc(64)
		done := l1.Store(0, a, 1234)
		v, _ := l1.Load(done, a)
		if v != 1234 {
			t.Errorf("%v: read-your-write = %d, want 1234", p, v)
		}
	}
}

func TestMESIInvalidationOnRemoteWrite(t *testing.T) {
	sys := newTestSystem(t, []Protocol{MESI, MESI}, 4096)
	a := sys.Mem().Alloc(64)
	c0, c1 := sys.L1(0), sys.L1(1)

	// Both cores read: line shared.
	_, t0 := c0.Load(0, a)
	_, t1 := c1.Load(t0, a)
	// Core 0 writes: core 1's copy must be invalidated by hardware.
	t2 := c0.Store(t1, a, 99)
	// Core 1 reads again WITHOUT any software invalidate and must see 99.
	v, _ := c1.Load(t2, a)
	if v != 99 {
		t.Fatalf("MESI remote read after write = %d, want 99 (writer-initiated invalidation failed)", v)
	}
	if sys.L2Stats.InvSent == 0 {
		t.Fatal("no invalidations were sent")
	}
}

func TestMESIDirtyMigration(t *testing.T) {
	sys := newTestSystem(t, []Protocol{MESI, MESI}, 4096)
	a := sys.Mem().Alloc(64)
	c0, c1 := sys.L1(0), sys.L1(1)
	t0 := c0.Store(0, a, 7) // c0 has M
	v, t1 := c1.Load(t0, a) // directory recalls from owner
	if v != 7 {
		t.Fatalf("migrated read = %d, want 7", v)
	}
	if sys.L2Stats.Recalls == 0 {
		t.Fatal("expected an owner recall")
	}
	// Both should now be sharers; a store by c1 upgrades and invalidates c0.
	t2 := c1.Store(t1, a, 8)
	v, _ = c0.Load(t2, a)
	if v != 8 {
		t.Fatalf("read after migration = %d, want 8", v)
	}
}

func TestMESIEGrantSilentUpgrade(t *testing.T) {
	sys := newTestSystem(t, []Protocol{MESI, MESI}, 4096)
	a := sys.Mem().Alloc(64)
	c0 := sys.L1(0)
	_, t0 := c0.Load(0, a) // sole reader: E state
	// Store should hit locally with no further L2 traffic.
	before := sys.Mesh().Traffic.TotalBytes()
	t1 := c0.Store(t0, a, 5)
	if got := sys.Mesh().Traffic.TotalBytes(); got != before {
		t.Fatalf("silent E->M upgrade generated traffic: %d bytes", got-before)
	}
	if t1 != t0+1 {
		t.Fatalf("E->M upgrade took %d cycles, want 1", t1-t0)
	}
}

func TestGPUWBStalenessIsReal(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWB, GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	w, r := sys.L1(0), sys.L1(1)

	// Reader caches the old value.
	v, t0 := r.Load(0, a)
	if v != 0 {
		t.Fatalf("initial = %d", v)
	}
	// Writer stores without flushing.
	t1 := w.Store(t0, a, 42)
	// Reader still sees the stale 0 — even after invalidating! The dirty
	// word is sitting in the writer's cache.
	t2 := r.Invalidate(t1)
	v, t3 := r.Load(t2, a)
	if v != 0 {
		t.Fatalf("read before flush = %d, want stale 0", v)
	}
	// After the writer flushes and the reader invalidates, the new value
	// becomes visible.
	t4 := w.Flush(t3)
	t5 := r.Invalidate(t4)
	v, _ = r.Load(t5, a)
	if v != 42 {
		t.Fatalf("read after flush+invalidate = %d, want 42", v)
	}
}

func TestGPUWBInvalidateWithoutFlushIsNotEnough(t *testing.T) {
	// Reader-initiated invalidation alone cannot make another core's
	// unflushed writes visible; this is why the HCC runtime needs both.
	sys := newTestSystem(t, []Protocol{GPUWB, GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	w, r := sys.L1(0), sys.L1(1)
	t0 := w.Store(0, a, 9)
	t1 := r.Invalidate(t0)
	v, _ := r.Load(t1, a)
	if v == 9 {
		t.Fatal("unflushed write became visible; GPU-WB model is broken")
	}
}

func TestGPUWTWriteThroughVisible(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWT, GPUWT}, 4096)
	a := sys.Mem().Alloc(64)
	w, r := sys.L1(0), sys.L1(1)
	// Reader caches old value.
	_, t0 := r.Load(0, a)
	t1 := w.Store(t0, a, 5) // write-through, no flush needed
	// Reader must self-invalidate (reader-initiated), then sees it.
	v, _ := r.Load(t1, a)
	if v != 0 {
		t.Fatalf("stale read = %d, want 0 before invalidate", v)
	}
	t2 := r.Invalidate(t1)
	v, _ = r.Load(t2, a)
	if v != 5 {
		t.Fatalf("read after invalidate = %d, want 5", v)
	}
}

func TestGPUWTNoWriteAllocate(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWT}, 4096)
	a := sys.Mem().Alloc(64)
	l1 := sys.L1(0)
	t0 := l1.Store(0, a, 1)
	// The store must not have installed the line: the next load misses.
	before := l1.Stats.LoadMisses
	_, _ = l1.Load(t0+100, a)
	if l1.Stats.LoadMisses != before+1 {
		t.Fatal("GPU-WT store allocated a line (should be no-allocate)")
	}
}

func TestDeNovoOwnershipPropagatesWithoutFlush(t *testing.T) {
	sys := newTestSystem(t, []Protocol{DeNovo, DeNovo}, 4096)
	a := sys.Mem().Alloc(64)
	w, r := sys.L1(0), sys.L1(1)
	t0 := w.Store(0, a, 77) // registers the word; data stays in w's L1
	t1 := w.Flush(t0)       // no-op for DeNovo
	if t1 != t0 {
		t.Fatal("DeNovo flush should be free")
	}
	// Reader invalidates (reader-initiated) then loads: the L2 recalls
	// the word from the owner.
	t2 := r.Invalidate(t1)
	v, _ := r.Load(t2, a)
	if v != 77 {
		t.Fatalf("DeNovo read = %d, want 77 (ownership recall failed)", v)
	}
	if sys.L2Stats.Recalls == 0 {
		t.Fatal("expected a word recall")
	}
}

func TestDeNovoInvalidateKeepsOwnedWords(t *testing.T) {
	sys := newTestSystem(t, []Protocol{DeNovo}, 4096)
	a := sys.Mem().Alloc(64)
	l1 := sys.L1(0)
	t0 := l1.Store(0, a, 3)
	t1 := l1.Invalidate(t0)
	// Owned word must still hit.
	misses := l1.Stats.LoadMisses
	v, _ := l1.Load(t1, a)
	if v != 3 {
		t.Fatalf("owned word after invalidate = %d, want 3", v)
	}
	if l1.Stats.LoadMisses != misses {
		t.Fatal("owned word missed after invalidate")
	}
}

func TestMixedHCCBigSeesTinyFlushWithoutSoftwareInvalidate(t *testing.T) {
	// The Spandex-style integration: a GPU-WB tiny core's flush must
	// invalidate stale copies in the MESI (big-core) domain, because big
	// cores rely purely on hardware coherence.
	sys := newTestSystem(t, []Protocol{MESI, GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	big, tiny := sys.L1(0), sys.L1(1)

	v, t0 := big.Load(0, a) // big caches the line
	if v != 0 {
		t.Fatal("bad initial")
	}
	t1 := tiny.Store(t0, a, 11)
	t2 := tiny.Flush(t1)
	// Big core reads again with NO software invalidate: hardware must
	// have invalidated its copy when the flush writeback arrived.
	v, _ = big.Load(t2, a)
	if v != 11 {
		t.Fatalf("big core read = %d, want 11 (HCC write integration broken)", v)
	}
}

func TestMixedHCCTinyReadsBigDirtyData(t *testing.T) {
	// A tiny core's read must recall dirty data from a big core's MESI
	// L1 through the shared L2.
	sys := newTestSystem(t, []Protocol{MESI, GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	big, tiny := sys.L1(0), sys.L1(1)
	t0 := big.Store(0, a, 21) // big holds M
	v, _ := tiny.Load(t0, a)
	if v != 21 {
		t.Fatalf("tiny read of big's dirty line = %d, want 21", v)
	}
}

func TestAmoAtomicityAcrossCores(t *testing.T) {
	for _, protos := range [][]Protocol{
		{MESI, MESI}, {DeNovo, DeNovo}, {GPUWT, GPUWT}, {GPUWB, GPUWB},
		{MESI, GPUWB},
	} {
		sys := newTestSystem(t, protos, 4096)
		a := sys.Mem().Alloc(64)
		t0, t1 := sim.Time(0), sim.Time(0)
		for i := 0; i < 50; i++ {
			_, t0 = sys.L1(0).Amo(t0, a, AmoAdd, 1, 0)
			_, t1 = sys.L1(1).Amo(t1, a, AmoAdd, 1, 0)
		}
		if got := sys.DebugReadWord(a); got != 100 {
			t.Errorf("%v+%v: counter = %d, want 100", protos[0], protos[1], got)
		}
	}
}

func TestAmoCAS(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	l1 := sys.L1(0)
	old, t0 := l1.Amo(0, a, AmoCAS, 0, 10)
	if old != 0 {
		t.Fatalf("CAS old = %d, want 0", old)
	}
	old, _ = l1.Amo(t0, a, AmoCAS, 5, 99) // expected 5, actual 10: fails
	if old != 10 {
		t.Fatalf("failed CAS old = %d, want 10", old)
	}
	if got := sys.DebugReadWord(a); got != 10 {
		t.Fatalf("after failed CAS value = %d, want 10", got)
	}
}

func TestAmoOnDirtyGPUWBWord(t *testing.T) {
	// A GPU-WB core's AMO must see its own unflushed store.
	sys := newTestSystem(t, []Protocol{GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	l1 := sys.L1(0)
	t0 := l1.Store(0, a, 40)
	old, _ := l1.Amo(t0, a, AmoAdd, 2, 0)
	if old != 40 {
		t.Fatalf("AMO old = %d, want 40 (dirty word not carried to L2)", old)
	}
	if got := sys.DebugReadWord(a); got != 42 {
		t.Fatalf("AMO result = %d, want 42", got)
	}
}

func TestL1EvictionWritebackSurvives(t *testing.T) {
	for _, p := range []Protocol{MESI, DeNovo, GPUWB} {
		// 4KB 2-way = 32 sets; lines 32 sets apart collide.
		sys := newTestSystem(t, []Protocol{p}, 4096)
		l1 := sys.L1(0)
		base := sys.Mem().Alloc(64 * 200)
		tt := sim.Time(0)
		// Write 3 lines mapping to the same set: one must be evicted.
		setStride := mem.Addr(32 * 64)
		for i := 0; i < 3; i++ {
			tt = l1.Store(tt, base+mem.Addr(i)*setStride, uint64(1000+i))
		}
		for i := 0; i < 3; i++ {
			if got := sys.DebugReadWord(base + mem.Addr(i)*setStride); got != uint64(1000+i) {
				t.Errorf("%v: evicted line value = %d, want %d", p, got, 1000+i)
			}
		}
	}
}

func TestL2InclusionRecallsOnEviction(t *testing.T) {
	// Shrink the L2 to force evictions: 2 sets x 2 ways per bank.
	mesh := noc.NewMesh(2, 2)
	backing := mem.New()
	cfg := Config{
		NumCores:      1,
		CoreNode:      []noc.NodeID{mesh.Node(0, 0)},
		BankNode:      []noc.NodeID{mesh.Node(1, 0), mesh.Node(1, 1)},
		L2SetsPerBank: 2,
		L2Ways:        2,
		MCs: []*dram.Controller{
			dram.NewController("a", dram.DefaultConfig()),
			dram.NewController("b", dram.DefaultConfig()),
		},
	}
	sys := NewSystem(cfg, mesh, backing)
	l1 := NewL1(sys, 0, MESI, 64*1024, 2)
	// Touch many distinct lines so L2 sets overflow and recall the L1's
	// (huge) cached copies.
	tt := sim.Time(0)
	base := backing.Alloc(64 * 64)
	for i := 0; i < 64; i++ {
		tt = l1.Store(tt, base+mem.Addr(i*64), uint64(i))
	}
	if sys.L2Stats.Evictions == 0 {
		t.Fatal("expected L2 evictions")
	}
	for i := 0; i < 64; i++ {
		if got := sys.DebugReadWord(base + mem.Addr(i*64)); got != uint64(i) {
			t.Fatalf("line %d lost through L2 eviction: %d", i, got)
		}
	}
}

func TestMissSlowerThanHit(t *testing.T) {
	for _, p := range []Protocol{MESI, DeNovo, GPUWT, GPUWB} {
		sys := newTestSystem(t, []Protocol{p}, 4096)
		l1 := sys.L1(0)
		a := sys.Mem().Alloc(64)
		_, t0 := l1.Load(0, a)
		missLat := t0
		v, t1 := l1.Load(t0, a)
		_ = v
		hitLat := t1 - t0
		if hitLat != 1 {
			t.Errorf("%v: hit latency = %d, want 1", p, hitLat)
		}
		if missLat < 20 {
			t.Errorf("%v: cold miss latency = %d, suspiciously fast", p, missLat)
		}
	}
}

func TestHitRateAccounting(t *testing.T) {
	sys := newTestSystem(t, []Protocol{MESI}, 4096)
	l1 := sys.L1(0)
	a := sys.Mem().Alloc(64)
	_, t0 := l1.Load(0, a)  // miss
	_, t1 := l1.Load(t0, a) // hit
	l1.Store(t1, a, 1)      // hit (E->M)
	if l1.Stats.Loads != 2 || l1.Stats.LoadMisses != 1 || l1.Stats.Stores != 1 || l1.Stats.StoreMisses != 0 {
		t.Fatalf("stats = %+v", l1.Stats)
	}
	if hr := l1.Stats.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v, want 2/3", hr)
	}
}

func TestFlushCountsLines(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWB}, 4096)
	l1 := sys.L1(0)
	base := sys.Mem().Alloc(64 * 4)
	tt := sim.Time(0)
	for i := 0; i < 4; i++ {
		tt = l1.Store(tt, base+mem.Addr(i*64), uint64(i))
	}
	done := l1.Flush(tt)
	if l1.Stats.FlushLines != 4 {
		t.Fatalf("FlushLines = %d, want 4", l1.Stats.FlushLines)
	}
	if done <= tt {
		t.Fatal("flush with dirty lines should take time")
	}
	// Second flush: nothing dirty.
	done2 := l1.Flush(done)
	if l1.Stats.FlushLines != 4 || done2 != done {
		t.Fatal("empty flush should be free")
	}
}

func TestInvalidateCountsLines(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWT}, 4096)
	l1 := sys.L1(0)
	base := sys.Mem().Alloc(64 * 3)
	tt := sim.Time(0)
	for i := 0; i < 3; i++ {
		_, tt = l1.Load(tt, base+mem.Addr(i*64))
	}
	l1.Invalidate(tt)
	if l1.Stats.InvLines != 3 {
		t.Fatalf("InvLines = %d, want 3", l1.Stats.InvLines)
	}
}

func TestWriteThroughTrafficCategories(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWT}, 4096)
	l1 := sys.L1(0)
	a := sys.Mem().Alloc(64)
	l1.Store(0, a, 1)
	if sys.Mesh().Traffic.Bytes[noc.WBReq] == 0 {
		t.Fatal("write-through produced no wb_req traffic")
	}
	l1.Amo(100, a, AmoAdd, 1, 0)
	if sys.Mesh().Traffic.Bytes[noc.SyncReq] == 0 || sys.Mesh().Traffic.Bytes[noc.SyncResp] == 0 {
		t.Fatal("L2 AMO produced no sync traffic")
	}
}

func TestGPUWTStoreReturnsGlobalVisibility(t *testing.T) {
	// A write-through store's completion time is when it lands at the
	// L2 (the core-level store buffer decides whether to stall on it).
	sys := newTestSystem(t, []Protocol{GPUWT}, 4096)
	l1 := sys.L1(0)
	a := sys.Mem().Alloc(64)
	done := l1.Store(0, a, 1)
	if done < 10 {
		t.Fatalf("write-through visible after %d cycles; should include the L2 trip", done)
	}
	if got := sys.DebugReadWord(a); got != 1 {
		t.Fatal("write-through not applied")
	}
}

func TestDebugReadWordFindsDirtyCopies(t *testing.T) {
	sys := newTestSystem(t, []Protocol{MESI, GPUWB}, 4096)
	a := sys.Mem().Alloc(64)
	b := sys.Mem().Alloc(64)
	sys.L1(0).Store(0, a, 1) // MESI M copy
	sys.L1(1).Store(0, b, 2) // GPU-WB dirty word
	if sys.DebugReadWord(a) != 1 || sys.DebugReadWord(b) != 2 {
		t.Fatal("DebugReadWord missed dirty copies")
	}
}
