// Package cache models the cache hierarchy of the big.TINY system: the
// four private-L1 coherence protocols the paper studies (MESI, DeNovo,
// GPU-WT, GPU-WB; Table I) and a shared banked L2 that integrates them
// in the style of Spandex, with an embedded directory that has a precise
// sharer list for MESI L1s (paper §V-A).
//
// L1s hold real copies of data. Under the software-centric protocols a
// copy can be genuinely stale until software issues a cache_invalidate,
// and dirty data is genuinely invisible to other cores until a
// cache_flush (GPU-WB) or an ownership recall (DeNovo). A runtime that
// omits a required invalidate or flush computes wrong answers in this
// model, exactly as it would on the real machine.
package cache

import "fmt"

// Protocol selects the coherence protocol of a private L1 cache.
type Protocol int

// The four protocols characterized in paper Table I.
const (
	MESI Protocol = iota
	DeNovo
	GPUWT
	GPUWB
)

// String returns the paper's name for the protocol.
func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case DeNovo:
		return "DeNovo"
	case GPUWT:
		return "GPU-WT"
	case GPUWB:
		return "GPU-WB"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Invalidation indicates who initiates invalidation of stale data.
type Invalidation int

// Invalidation strategies (Table I, "Who initiates invalidation?").
const (
	WriterInitiated Invalidation = iota
	ReaderInitiated
)

func (i Invalidation) String() string {
	if i == WriterInitiated {
		return "Writer"
	}
	return "Reader"
}

// DirtyPropagation indicates how dirty data becomes visible.
type DirtyPropagation int

// Dirty propagation strategies (Table I, "How is dirty data propagated?").
const (
	OwnerWriteBack DirtyPropagation = iota
	NoOwnerWriteThrough
	NoOwnerWriteBack
)

func (d DirtyPropagation) String() string {
	switch d {
	case OwnerWriteBack:
		return "Owner, Write-Back"
	case NoOwnerWriteThrough:
		return "No-Owner, Write-Through"
	default:
		return "No-Owner, Write-Back"
	}
}

// Granularity is the unit at which writes are performed and ownership
// is managed (Table I, "Write Granularity").
type Granularity int

// Write granularities.
const (
	LineGranularity Granularity = iota
	WordGranularity
)

func (g Granularity) String() string {
	if g == LineGranularity {
		return "Line"
	}
	return "Word"
}

// Properties captures a protocol's row in paper Table I.
type Properties struct {
	Invalidation Invalidation
	Propagation  DirtyPropagation
	Granularity  Granularity
	// NeedsInvalidate reports whether cache_invalidate is a real
	// operation (true for all reader-initiated protocols).
	NeedsInvalidate bool
	// NeedsFlush reports whether cache_flush is a real operation (only
	// GPU-WB: no ownership and write-back).
	NeedsFlush bool
	// AMOAtL2 reports whether atomics must be performed at the shared
	// cache (protocols without ownership).
	AMOAtL2 bool
}

// PropertiesOf returns the Table I classification of p.
func PropertiesOf(p Protocol) Properties {
	switch p {
	case MESI:
		return Properties{
			Invalidation: WriterInitiated,
			Propagation:  OwnerWriteBack,
			Granularity:  LineGranularity,
		}
	case DeNovo:
		return Properties{
			Invalidation:    ReaderInitiated,
			Propagation:     OwnerWriteBack,
			Granularity:     WordGranularity,
			NeedsInvalidate: true,
		}
	case GPUWT:
		return Properties{
			Invalidation:    ReaderInitiated,
			Propagation:     NoOwnerWriteThrough,
			Granularity:     WordGranularity,
			NeedsInvalidate: true,
			AMOAtL2:         true,
		}
	case GPUWB:
		return Properties{
			Invalidation:    ReaderInitiated,
			Propagation:     NoOwnerWriteBack,
			Granularity:     WordGranularity,
			NeedsInvalidate: true,
			NeedsFlush:      true,
			AMOAtL2:         true,
		}
	}
	panic("cache: unknown protocol")
}

// AmoOp selects an atomic read-modify-write operation.
type AmoOp int

// Atomic memory operations used by the runtime and applications.
const (
	AmoAdd  AmoOp = iota // fetch-and-add (fetch-and-sub via two's complement)
	AmoOr                // fetch-and-or (amo_or(x, 0) is the paper's atomic read)
	AmoAnd               // fetch-and-and
	AmoXchg              // atomic exchange
	AmoCAS               // compare-and-swap: arg1 = expected, arg2 = desired
)

func (op AmoOp) String() string {
	switch op {
	case AmoAdd:
		return "amo_add"
	case AmoOr:
		return "amo_or"
	case AmoAnd:
		return "amo_and"
	case AmoXchg:
		return "amo_xchg"
	case AmoCAS:
		return "amo_cas"
	}
	return fmt.Sprintf("amo(%d)", int(op))
}

// applyAmo computes the new value for op given the old value and
// operands, and reports whether the write happens (CAS can fail).
func applyAmo(op AmoOp, old, arg1, arg2 uint64) (newVal uint64, write bool) {
	switch op {
	case AmoAdd:
		return old + arg1, true
	case AmoOr:
		return old | arg1, true
	case AmoAnd:
		return old & arg1, true
	case AmoXchg:
		return arg1, true
	case AmoCAS:
		if old == arg1 {
			return arg2, true
		}
		return old, false
	}
	panic("cache: unknown AMO op")
}
