package cache

// Oracle observes every architecturally-performed load, store, and AMO
// issued through an L1, in issue order. It is declared here (not in
// internal/oracle) so the cache layer need not import its checker.
//
// Values are resolved synchronously at issue time in this model — the
// store buffer and miss latencies affect only timing — so the issue
// order seen by the oracle is the per-core program order, which is
// exactly what a per-location ordering check needs.
type Oracle interface {
	// OnLoad observes core reading v from word address a.
	OnLoad(core int, a uint64, v uint64)
	// OnStore observes core writing v to word address a.
	OnStore(core int, a uint64, v uint64)
	// OnAmo observes an atomic on a: old is the value read, newVal the
	// value written (meaningful only when wrote is true).
	OnAmo(core int, a uint64, old, newVal uint64, wrote bool)
}
