package cache

import (
	"fmt"

	"bigtiny/internal/fault"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

type mesiState uint8

// MESI line states.
const (
	stateI mesiState = iota
	stateS
	stateE
	stateM
)

// l1Line is one way of a private L1 set. MESI uses state at line
// granularity; the software-centric protocols use the word masks
// (Table I "Write Granularity").
type l1Line struct {
	tag   mem.Addr
	valid bool
	state mesiState

	validMask uint8 // words with a (possibly clean) coherent-at-fetch copy
	dirtyMask uint8 // GPU-WB: locally dirty words awaiting flush/evict
	ownedMask uint8 // DeNovo: words this core has registered (owns)

	data    [mem.WordsPerLine]uint64
	lastUse uint64
}

// L1 is a private data cache attached to one core. Its behaviour is
// selected by the configured Protocol.
type L1 struct {
	sys   *System
	core  int
	node  noc.NodeID
	proto Protocol

	numSets int
	ways    int
	sets    [][]l1Line
	tick    uint64

	hitLat sim.Time

	// Faults, when non-nil, applies artificial capacity pressure by
	// periodically force-evicting the LRU line of the accessed set
	// (see internal/fault).
	Faults *fault.Injector

	// Oracle, when non-nil, shadows every load/store/AMO (set only by
	// oracle-enabled machines; must never hold a typed nil).
	Oracle Oracle

	Stats L1Stats
}

// NewL1 creates core's private L1 and registers it with the system.
// sizeBytes/ways give the geometry (4KB 2-way tiny, 64KB 2-way big).
func NewL1(sys *System, core int, proto Protocol, sizeBytes, ways int) *L1 {
	numSets := sizeBytes / mem.LineSize / ways
	if numSets < 1 {
		panic(fmt.Sprintf("cache: L1 of %dB/%d ways too small", sizeBytes, ways))
	}
	l := &L1{
		sys:     sys,
		core:    core,
		node:    sys.cfg.CoreNode[core],
		proto:   proto,
		numSets: numSets,
		ways:    ways,
		sets:    make([][]l1Line, numSets),
		hitLat:  1,
	}
	for i := range l.sets {
		l.sets[i] = make([]l1Line, ways)
	}
	sys.l1s[core] = l
	return l
}

// Protocol returns the L1's coherence protocol.
func (l *L1) Protocol() Protocol { return l.proto }

func (l *L1) setFor(la mem.Addr) []l1Line {
	return l.sets[int(la/mem.LineSize)%l.numSets]
}

// find returns the line holding la, or nil.
func (l *L1) find(la mem.Addr) *l1Line {
	set := l.setFor(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return &set[i]
		}
	}
	return nil
}

// allocSlot makes room for la in its set, evicting the LRU victim if
// needed (with any protocol-required writeback or directory notice),
// and returns an empty installed line.
func (l *L1) allocSlot(now sim.Time, la mem.Addr) *l1Line {
	set := l.setFor(la)
	var victim *l1Line
	for i := range set {
		ln := &set[i]
		switch {
		case victim == nil:
			victim = ln
		case victim.valid && !ln.valid:
			victim = ln
		case victim.valid && ln.valid && ln.lastUse < victim.lastUse:
			victim = ln
		}
	}
	if victim.valid {
		l.evict(now, victim)
	}
	l.tick++
	*victim = l1Line{tag: la, valid: true, lastUse: l.tick}
	return victim
}

// evict writes back or notifies as the protocol requires. Writebacks
// are posted: the core does not wait for them.
func (l *L1) evict(now sim.Time, ln *l1Line) {
	switch l.proto {
	case MESI:
		if ln.state == stateM {
			l.Stats.EvictWBLines++
			l.sys.l2WriteBack(now, l.core, ln.tag, 0xFF, &ln.data, true)
		} else if ln.state != stateI {
			l.sys.l2EvictNotify(now, l.core, ln.tag)
		}
	case DeNovo:
		if ln.ownedMask != 0 {
			l.Stats.EvictWBLines++
			l.sys.l2WriteBack(now, l.core, ln.tag, ln.ownedMask, &ln.data, true)
		}
	case GPUWT:
		// Write-through: nothing is ever dirty.
	case GPUWB:
		if ln.dirtyMask != 0 {
			l.Stats.EvictWBLines++
			l.sys.l2WriteBack(now, l.core, ln.tag, ln.dirtyMask, &ln.data, false)
		}
	}
	ln.valid = false
}

// touch updates LRU state.
func (l *L1) touch(ln *l1Line) {
	l.tick++
	ln.lastUse = l.tick
}

// pressureFault models artificial L1 capacity pressure: every Nth
// access (per the fault scenario) force-evicts the LRU valid line of
// the accessed set, through the normal evict path so all protocol
// writebacks and directory notices happen.
func (l *L1) pressureFault(now sim.Time, a mem.Addr) {
	if !l.Faults.CacheEvictTick() {
		return
	}
	set := l.setFor(a)
	var victim *l1Line
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			continue
		}
		if victim == nil || ln.lastUse < victim.lastUse {
			victim = ln
		}
	}
	if victim != nil {
		l.evict(now, victim)
		l.Faults.Fired(fault.CacheEvict)
	}
}

// Load reads the word at a, returning its value and the completion
// time.
func (l *L1) Load(now sim.Time, a mem.Addr) (uint64, sim.Time) {
	l.Stats.Loads++
	l.pressureFault(now, a)
	var v uint64
	var done sim.Time
	switch l.proto {
	case MESI:
		v, done = l.loadMESI(now, a)
	case DeNovo:
		v, done = l.loadDeNovo(now, a)
	case GPUWT, GPUWB:
		v, done = l.loadGPU(now, a)
	default:
		panic("cache: unknown protocol")
	}
	if l.Oracle != nil {
		l.Oracle.OnLoad(l.core, uint64(a), v)
	}
	return v, done
}

// Store writes v to the word at a, returning the completion time.
func (l *L1) Store(now sim.Time, a mem.Addr, v uint64) sim.Time {
	l.Stats.Stores++
	l.pressureFault(now, a)
	var done sim.Time
	switch l.proto {
	case MESI:
		done = l.storeMESI(now, a, v)
	case DeNovo:
		done = l.storeDeNovo(now, a, v)
	case GPUWT:
		done = l.storeGPUWT(now, a, v)
	case GPUWB:
		done = l.storeGPUWB(now, a, v)
	default:
		panic("cache: unknown protocol")
	}
	if l.Oracle != nil {
		l.Oracle.OnStore(l.core, uint64(a), v)
	}
	return done
}

// Amo performs an atomic read-modify-write on the word at a and
// returns the old value. MESI and DeNovo perform it in the private
// cache after acquiring ownership; GPU-WT and GPU-WB perform it at the
// shared L2 (paper §II-A, §III-E).
func (l *L1) Amo(now sim.Time, a mem.Addr, op AmoOp, arg1, arg2 uint64) (uint64, sim.Time) {
	l.Stats.Amos++
	l.pressureFault(now, a)
	var old uint64
	var done sim.Time
	switch l.proto {
	case MESI:
		old, done = l.amoMESI(now, a, op, arg1, arg2)
	case DeNovo:
		old, done = l.amoDeNovo(now, a, op, arg1, arg2)
	case GPUWT, GPUWB:
		old, done = l.amoGPU(now, a, op, arg1, arg2)
	default:
		panic("cache: unknown protocol")
	}
	if l.Oracle != nil {
		newVal, wrote := applyAmo(op, old, arg1, arg2)
		l.Oracle.OnAmo(l.core, uint64(a), old, newVal, wrote)
	}
	return old, done
}

// Invalidate executes cache_invalidate: self-invalidate all clean data
// (no-op on MESI; paper Fig. 3 legend). It is a flash operation.
func (l *L1) Invalidate(now sim.Time) sim.Time {
	l.Stats.InvOps++
	const flashLat = 2
	switch l.proto {
	case MESI:
		return now // no-op
	case DeNovo, GPUWB:
		// Clean words are invalidated; owned (DeNovo) or dirty (GPU-WB)
		// words survive — they are this core's own writes.
		for si := range l.sets {
			for wi := range l.sets[si] {
				ln := &l.sets[si][wi]
				if !ln.valid {
					continue
				}
				keep := ln.ownedMask | ln.dirtyMask
				if ln.validMask&^keep != 0 {
					l.Stats.InvLines++
				}
				ln.validMask &= keep
				if ln.validMask|ln.ownedMask|ln.dirtyMask == 0 {
					ln.valid = false
				}
			}
		}
		return now + flashLat
	case GPUWT:
		for si := range l.sets {
			for wi := range l.sets[si] {
				ln := &l.sets[si][wi]
				if ln.valid {
					if ln.validMask != 0 {
						l.Stats.InvLines++
					}
					ln.valid = false
					ln.validMask = 0
				}
			}
		}
		return now + flashLat
	}
	panic("cache: unknown protocol")
}

// Flush executes cache_flush: write back all dirty data (no-op on MESI,
// DeNovo and — modulo store-buffer drain — GPU-WT; paper Fig. 3
// legend).
func (l *L1) Flush(now sim.Time) sim.Time {
	l.Stats.FlushOps++
	switch l.proto {
	case MESI, DeNovo:
		return now // ownership propagates dirty data; nothing to do
	case GPUWT:
		// Write-through: nothing is dirty in the cache itself. (The
		// core-level store buffer is drained by the core's fence
		// handling.)
		return now
	case GPUWB:
		// Write back every dirty word in the cache. Writebacks issue one
		// per cycle from the L1 port and complete at the L2; the flush
		// is a fence, so it finishes when the last writeback lands.
		done := now
		issue := now
		for si := range l.sets {
			for wi := range l.sets[si] {
				ln := &l.sets[si][wi]
				if !ln.valid || ln.dirtyMask == 0 {
					continue
				}
				l.Stats.FlushLines++
				c := l.sys.l2WriteBack(issue, l.core, ln.tag, ln.dirtyMask, &ln.data, false)
				issue++
				if c > done {
					done = c
				}
				ln.validMask |= ln.dirtyMask // data remains valid locally
				ln.dirtyMask = 0
			}
		}
		return done
	}
	panic("cache: unknown protocol")
}

// --- recall hooks called by the L2/directory ---

// recallMESI pulls the line back from this (owning) L1, downgrading to
// S or invalidating. It returns the line data and whether it was dirty.
func (l *L1) recallMESI(la mem.Addr, invalidate bool) ([mem.WordsPerLine]uint64, bool) {
	ln := l.find(la)
	if ln == nil {
		panic(fmt.Sprintf("cache: recall of absent line %#x at core %d", uint64(la), l.core))
	}
	data := ln.data
	dirty := ln.state == stateM
	if invalidate {
		ln.valid = false
		ln.state = stateI
	} else {
		ln.state = stateS
	}
	return data, dirty
}

// invalidateMESILine drops a shared copy (writer-initiated
// invalidation from the directory).
func (l *L1) invalidateMESILine(la mem.Addr) {
	if ln := l.find(la); ln != nil {
		ln.valid = false
		ln.state = stateI
	}
}

// recallWords surrenders DeNovo ownership of the masked words,
// returning their data. The local copy stays valid (clean).
func (l *L1) recallWords(la mem.Addr, mask uint8) [mem.WordsPerLine]uint64 {
	ln := l.find(la)
	if ln == nil {
		panic(fmt.Sprintf("cache: word recall of absent line %#x at core %d", uint64(la), l.core))
	}
	ln.validMask |= ln.ownedMask & mask
	ln.ownedMask &^= mask
	return ln.data
}

// debugDirtyWord reports this cache's dirty/owned copy of a word, if
// it has one. Test-only.
func (l *L1) debugDirtyWord(la mem.Addr, w int) (uint64, bool) {
	ln := l.find(la)
	if ln == nil {
		return 0, false
	}
	bit := uint8(1) << w
	if (l.proto == MESI && ln.state == stateM) ||
		ln.ownedMask&bit != 0 || ln.dirtyMask&bit != 0 {
		return ln.data[w], true
	}
	return 0, false
}
