package cache

import (
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// MESI protocol: writer-initiated invalidation, owner write-back, line
// granularity (Table I). Invalidate/flush are no-ops; all coherence is
// in hardware.

func (l *L1) loadMESI(now sim.Time, a mem.Addr) (uint64, sim.Time) {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	if ln := l.find(la); ln != nil && ln.state != stateI {
		l.touch(ln)
		return ln.data[w], now + l.hitLat
	}
	l.Stats.LoadMisses++
	data, grantedE, done := l.sys.l2GetLine(now+l.hitLat, l.core, la, false, true)
	ln := l.allocSlot(now, la)
	ln.data = data
	ln.state = stateS
	if grantedE {
		ln.state = stateE
	}
	return ln.data[w], done
}

func (l *L1) storeMESI(now sim.Time, a mem.Addr, v uint64) sim.Time {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	ln := l.find(la)
	switch {
	case ln != nil && ln.state == stateM:
		l.touch(ln)
		ln.data[w] = v
		return now + l.hitLat
	case ln != nil && ln.state == stateE:
		// Silent E->M upgrade; the directory already records us as
		// exclusive owner.
		l.touch(ln)
		ln.state = stateM
		ln.data[w] = v
		return now + l.hitLat
	case ln != nil && ln.state == stateS:
		// Upgrade: invalidate the other sharers.
		done := l.sys.l2Upgrade(now+l.hitLat, l.core, la)
		l.touch(ln)
		ln.state = stateM
		ln.data[w] = v
		return done
	default:
		l.Stats.StoreMisses++
		data, _, done := l.sys.l2GetLine(now+l.hitLat, l.core, la, true, true)
		ln = l.allocSlot(now, la)
		ln.data = data
		ln.state = stateM
		ln.data[w] = v
		return done
	}
}

// amoMESI acquires M state and performs the atomic in the private
// cache (ownership makes this safe; paper §II-A).
func (l *L1) amoMESI(now sim.Time, a mem.Addr, op AmoOp, arg1, arg2 uint64) (uint64, sim.Time) {
	const amoLocalLat = 2
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	ln := l.find(la)
	var ready sim.Time
	if ln != nil && (ln.state == stateM || ln.state == stateE) {
		l.touch(ln)
		ln.state = stateM
		ready = now + l.hitLat
	} else if ln != nil && ln.state == stateS {
		ready = l.sys.l2Upgrade(now+l.hitLat, l.core, la)
		l.touch(ln)
		ln.state = stateM
	} else {
		l.Stats.StoreMisses++
		data, _, done := l.sys.l2GetLine(now+l.hitLat, l.core, la, true, true)
		ln = l.allocSlot(now, la)
		ln.data = data
		ln.state = stateM
		ready = done
	}
	old := ln.data[w]
	if newVal, write := applyAmo(op, old, arg1, arg2); write {
		ln.data[w] = newVal
	}
	return old, ready + amoLocalLat
}
