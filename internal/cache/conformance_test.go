package cache

import (
	"testing"

	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// Conformance matrix: for every protocol, drive an L1 through the
// interesting (initial state x operation) combinations and check the
// observable behaviour class: local hit (no traffic), L2 round trip, or
// remote interaction (recall/invalidation traffic).

type obs int

const (
	localHit obs = iota // completes in ~1 cycle, no new traffic
	l2Trip              // traffic to the L2, no coherence messages
	remote              // involves coh_req/coh_resp (recall or inv)
)

func (o obs) String() string {
	return [...]string{"local-hit", "l2-trip", "remote"}[o]
}

// classify runs op and classifies what happened.
func classify(sys *System, now *sim.Time, op func(now sim.Time) sim.Time) obs {
	t := sys.Mesh().Traffic
	before := t.TotalBytes()
	cohBefore := t.Bytes[noc.CohReq] + t.Bytes[noc.CohResp]
	start := *now
	done := op(start)
	*now = done + 10
	tr := sys.Mesh().Traffic
	if tr.Bytes[noc.CohReq]+tr.Bytes[noc.CohResp] > cohBefore {
		return remote
	}
	if tr.TotalBytes() > before {
		return l2Trip
	}
	if done-start > 4 {
		// No traffic yet slow: still an L2-class event (shouldn't happen).
		return l2Trip
	}
	return localHit
}

func TestProtocolConformanceMatrix(t *testing.T) {
	type scenario struct {
		name  string
		proto Protocol
		// prepare puts the line into the initial state using cores 0
		// (subject) and 1 (remote peer).
		prepare func(sys *System, a mem.Addr, now *sim.Time)
		// op is the subject operation on core 0.
		op   func(sys *System, a mem.Addr, now sim.Time) sim.Time
		want obs
	}
	load := func(sys *System, a mem.Addr, now sim.Time) sim.Time {
		_, d := sys.L1(0).Load(now, a)
		return d
	}
	store := func(sys *System, a mem.Addr, now sim.Time) sim.Time {
		return sys.L1(0).Store(now, a, 42)
	}
	amo := func(sys *System, a mem.Addr, now sim.Time) sim.Time {
		_, d := sys.L1(0).Amo(now, a, AmoAdd, 1, 0)
		return d
	}
	none := func(*System, mem.Addr, *sim.Time) {}
	selfClean := func(sys *System, a mem.Addr, now *sim.Time) {
		_, d := sys.L1(0).Load(*now, a)
		*now = d + 10
	}
	selfDirty := func(sys *System, a mem.Addr, now *sim.Time) {
		*now = sys.L1(0).Store(*now, a, 7) + 10
	}
	remoteDirty := func(sys *System, a mem.Addr, now *sim.Time) {
		*now = sys.L1(1).Store(*now, a, 9) + 10
	}
	shared := func(sys *System, a mem.Addr, now *sim.Time) {
		_, d := sys.L1(0).Load(*now, a)
		_, d2 := sys.L1(1).Load(d+5, a)
		*now = d2 + 10
	}

	scenarios := []scenario{
		// MESI: the hardware does all coherence.
		{"mesi/load/cold", MESI, none, load, l2Trip},
		{"mesi/load/clean", MESI, selfClean, load, localHit},
		{"mesi/load/own-dirty", MESI, selfDirty, load, localHit},
		{"mesi/load/remote-dirty", MESI, remoteDirty, load, remote},
		{"mesi/store/exclusive-clean", MESI, selfClean, store, localHit}, // E->M silent
		{"mesi/store/shared", MESI, shared, store, remote},               // upgrade invalidates peer
		{"mesi/store/remote-dirty", MESI, remoteDirty, store, remote},
		{"mesi/amo/own-dirty", MESI, selfDirty, amo, localHit}, // in-cache atomic
		// DeNovo: ownership write-back, reader-initiated invalidation.
		{"dnv/load/cold", DeNovo, none, load, l2Trip},
		{"dnv/load/clean", DeNovo, selfClean, load, localHit},
		{"dnv/load/owned", DeNovo, selfDirty, load, localHit},
		{"dnv/load/remote-owned", DeNovo, remoteDirty, load, remote}, // word recall
		{"dnv/store/owned", DeNovo, selfDirty, store, localHit},
		{"dnv/store/cold", DeNovo, none, store, l2Trip}, // registration
		{"dnv/amo/owned", DeNovo, selfDirty, amo, localHit},
		// GPU-WT: write-through, no ownership, AMOs at L2.
		{"gwt/load/cold", GPUWT, none, load, l2Trip},
		{"gwt/load/clean", GPUWT, selfClean, load, localHit},
		{"gwt/store/any", GPUWT, selfClean, store, l2Trip}, // every store goes to L2
		{"gwt/amo/any", GPUWT, selfDirty, amo, l2Trip},     // L2-side atomic
		// GPU-WB: write-back without ownership.
		{"gwb/load/cold", GPUWB, none, load, l2Trip},
		{"gwb/load/own-dirty", GPUWB, selfDirty, load, localHit},
		{"gwb/store/cold", GPUWB, none, store, localHit}, // no-fetch allocate
		{"gwb/store/dirty", GPUWB, selfDirty, store, localHit},
		{"gwb/amo/any", GPUWB, selfDirty, amo, l2Trip}, // L2-side atomic
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			sys := newTestSystem(t, []Protocol{sc.proto, sc.proto}, 4096)
			a := sys.Mem().Alloc(64)
			now := sim.Time(0)
			sc.prepare(sys, a, &now)
			got := classify(sys, &now, func(n sim.Time) sim.Time {
				return sc.op(sys, a, n)
			})
			if got != sc.want {
				t.Errorf("%s: observed %v, want %v", sc.name, got, sc.want)
			}
		})
	}
}

// TestWriteGranularityMatrix checks Table I's write-granularity row:
// word-granularity protocols let two cores dirty different words of the
// same line without interference; MESI (line granularity) must
// serialize ownership of the line.
func TestWriteGranularityMatrix(t *testing.T) {
	for _, p := range []Protocol{DeNovo, GPUWB} {
		sys := newTestSystem(t, []Protocol{p, p}, 4096)
		base := sys.Mem().Alloc(64)
		t0 := sys.L1(0).Store(0, base, 1)    // word 0
		t1 := sys.L1(1).Store(t0, base+8, 2) // word 1, same line
		_ = t1
		// Both dirty copies must survive and merge at the L2.
		d0 := sys.L1(0).Flush(t1 + 10)
		d1 := sys.L1(1).Flush(d0 + 10)
		_ = d1
		if sys.DebugReadWord(base) != 1 || sys.DebugReadWord(base+8) != 2 {
			t.Errorf("%v: word-granularity writes did not merge", p)
		}
	}
	// MESI: the same sequence works but must transfer line ownership.
	sys := newTestSystem(t, []Protocol{MESI, MESI}, 4096)
	base := sys.Mem().Alloc(64)
	t0 := sys.L1(0).Store(0, base, 1)
	sys.L1(1).Store(t0, base+8, 2)
	if sys.L2Stats.Recalls == 0 {
		t.Error("MESI same-line writes by two cores did not recall ownership")
	}
	if sys.DebugReadWord(base) != 1 || sys.DebugReadWord(base+8) != 2 {
		t.Error("MESI writes lost")
	}
}
