package cache

import (
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// GPU-WT: reader-initiated invalidation, no-owner write-through, word
// granularity. Writes go straight to the L2 (no write-allocate), so
// cache_flush only drains the store buffer. AMOs execute at the L2.
//
// GPU-WB: like GPU-WT but write-back: stores dirty words locally
// (write-allocate without fetch, thanks to per-word dirty bits) and
// makes them visible only on cache_flush or eviction. This is the
// protocol for which DTS pays off most (paper §VI-C).

// loadGPU is shared by GPU-WT and GPU-WB (their read paths differ only
// in that GPU-WB must preserve dirty words when refilling).
func (l *L1) loadGPU(now sim.Time, a mem.Addr) (uint64, sim.Time) {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	if ln != nil && (ln.validMask|ln.dirtyMask)&bit != 0 {
		l.touch(ln)
		return ln.data[w], now + l.hitLat
	}
	l.Stats.LoadMisses++
	data, _, done := l.sys.l2GetLine(now+l.hitLat, l.core, la, false, false)
	if ln == nil {
		ln = l.allocSlot(now, la)
	} else {
		l.touch(ln)
	}
	// Merge: locally dirty words are newer than the L2's copy.
	for i := 0; i < mem.WordsPerLine; i++ {
		if ln.dirtyMask&(1<<i) == 0 {
			ln.data[i] = data[i]
		}
	}
	ln.validMask = 0xFF &^ ln.dirtyMask
	return ln.data[w], done
}

func (l *L1) storeGPUWT(now sim.Time, a mem.Addr, v uint64) sim.Time {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	if ln != nil && ln.validMask&bit != 0 {
		// Write-update of the local clean copy.
		l.touch(ln)
		ln.data[w] = v
	} else {
		// No write-allocate: the write bypasses the L1.
		l.Stats.StoreMisses++
	}
	// Write through to the shared cache. The returned time is when the
	// write is globally visible at the L2; the core's store buffer
	// decides whether to stall on it.
	return l.sys.l2WriteThrough(now+l.hitLat, l.core, la, w, v)
}

func (l *L1) storeGPUWB(now sim.Time, a mem.Addr, v uint64) sim.Time {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	if ln == nil {
		// Write-allocate without fetch: per-word dirty bits mean we can
		// install just this word, at zero network cost.
		l.Stats.StoreMisses++
		ln = l.allocSlot(now, la)
	} else {
		l.touch(ln)
	}
	ln.data[w] = v
	ln.dirtyMask |= bit
	ln.validMask |= bit
	return now + l.hitLat
}

// amoGPU performs the atomic at the shared L2 (no ownership in the
// private cache). A locally dirty copy of the word (GPU-WB) rides along
// and the local copy is invalidated so the next read observes the
// globally ordered value.
func (l *L1) amoGPU(now sim.Time, a mem.Addr, op AmoOp, arg1, arg2 uint64) (uint64, sim.Time) {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	var dirtyWord *uint64
	ln := l.find(la)
	if ln != nil && ln.dirtyMask&bit != 0 {
		v := ln.data[w]
		dirtyWord = &v
	}
	old, done := l.sys.l2Amo(now+l.hitLat, l.core, la, w, op, arg1, arg2, dirtyWord)
	if ln != nil {
		ln.validMask &^= bit
		ln.dirtyMask &^= bit
		if ln.validMask|ln.dirtyMask|ln.ownedMask == 0 {
			ln.valid = false
		}
	}
	return old, done
}
