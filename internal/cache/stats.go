package cache

import "math/bits"

// L1Stats counts the events at one private L1 cache that the paper's
// evaluation reports: hit rates (Fig. 6), invalidation and flush line
// counts (Table IV), and AMO counts.
type L1Stats struct {
	Loads       uint64
	LoadMisses  uint64
	Stores      uint64
	StoreMisses uint64
	Amos        uint64

	// InvOps counts cache_invalidate instructions executed;
	// InvLines counts cache lines actually invalidated by them.
	InvOps   uint64
	InvLines uint64
	// FlushOps counts cache_flush instructions executed;
	// FlushLines counts dirty cache lines actually written back by them.
	FlushOps   uint64
	FlushLines uint64

	// EvictWBLines counts dirty lines written back due to capacity
	// evictions (not flushes).
	EvictWBLines uint64
}

// Accesses returns total load+store demand accesses.
func (s *L1Stats) Accesses() uint64 { return s.Loads + s.Stores }

// Hits returns demand accesses that hit.
func (s *L1Stats) Hits() uint64 {
	return s.Accesses() - s.LoadMisses - s.StoreMisses
}

// HitRate returns the L1 data hit rate in [0,1] (Fig. 6 metric).
func (s *L1Stats) HitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 1
	}
	return float64(s.Hits()) / float64(a)
}

// Add accumulates other into s.
func (s *L1Stats) Add(other *L1Stats) {
	s.Loads += other.Loads
	s.LoadMisses += other.LoadMisses
	s.Stores += other.Stores
	s.StoreMisses += other.StoreMisses
	s.Amos += other.Amos
	s.InvOps += other.InvOps
	s.InvLines += other.InvLines
	s.FlushOps += other.FlushOps
	s.FlushLines += other.FlushLines
	s.EvictWBLines += other.EvictWBLines
}

// L2Stats counts events at the shared L2.
type L2Stats struct {
	Hits      uint64
	Misses    uint64
	Recalls   uint64 // ownership recalls (MESI owner or DeNovo words)
	InvSent   uint64 // invalidations sent to MESI sharers
	Evictions uint64
	AmoOps    uint64 // AMOs performed at the L2 (no-ownership protocols)
}

// bitset is a fixed-capacity set of core IDs used for the directory's
// precise MESI sharer list.
type bitset struct{ w []uint64 }

func newBitset(n int) bitset { return bitset{w: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i int)      { b.w[i/64] |= 1 << (i % 64) }
func (b *bitset) clear(i int)    { b.w[i/64] &^= 1 << (i % 64) }
func (b *bitset) has(i int) bool { return b.w[i/64]&(1<<(i%64)) != 0 }

func (b *bitset) empty() bool {
	for _, w := range b.w {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b *bitset) clearAll() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// forEach calls f for every set bit.
func (b *bitset) forEach(f func(i int)) {
	for wi, w := range b.w {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			f(i)
			w &= w - 1
		}
	}
}

func (b *bitset) count() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

func popcount8(x uint8) int { return bits.OnesCount8(x) }
