package cache

import (
	"testing"

	"bigtiny/internal/dram"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// tinyL2System builds a system whose L2 is small enough to force
// evictions (2 sets x 2 ways per bank, 2 banks = 8 lines total).
func tinyL2System(t *testing.T, protos []Protocol) *System {
	t.Helper()
	mesh := noc.NewMesh(2, 2)
	cfg := Config{
		NumCores:      len(protos),
		L2SetsPerBank: 2,
		L2Ways:        2,
	}
	for c := range protos {
		cfg.CoreNode = append(cfg.CoreNode, mesh.Node(0, c%2))
	}
	for b := 0; b < 2; b++ {
		cfg.BankNode = append(cfg.BankNode, mesh.Node(1, b))
		cfg.MCs = append(cfg.MCs, dram.NewController("mc", dram.DefaultConfig()))
	}
	sys := NewSystem(cfg, mesh, mem.New())
	for c, p := range protos {
		NewL1(sys, c, p, 64*1024, 2) // big L1s so L2 evicts first
	}
	return sys
}

// TestL2EvictionWithGPUWBDirtyData: the L2 does not track GPU-WB dirty
// copies, so it can evict a line while an L1 still holds dirty words.
// The later flush must refill the line (possibly from DRAM) and merge
// without losing either the dirty words or other cores' data.
func TestL2EvictionWithGPUWBDirtyData(t *testing.T) {
	sys := tinyL2System(t, []Protocol{GPUWB})
	l1 := sys.L1(0)
	a := sys.Mem().Alloc(64)
	sys.Mem().WriteWord(a+8, 777) // pre-existing neighbour word in DRAM

	tt := l1.Store(0, a, 42) // dirty word 0 in L1 only
	// Thrash the tiny L2 so the line (and everything else) is evicted.
	probe := sys.Mem().Alloc(64 * 64)
	for i := 0; i < 64; i++ {
		_, tt = l1.Load(tt, probe+mem.Addr(i*64))
	}
	if sys.L2Stats.Evictions == 0 {
		t.Fatal("L2 never evicted; test setup broken")
	}
	// Flush the dirty word; it must merge with DRAM's word 1.
	tt = l1.Flush(tt)
	if got := sys.DebugReadWord(a); got != 42 {
		t.Fatalf("flushed word = %d, want 42", got)
	}
	if got := sys.DebugReadWord(a + 8); got != 777 {
		t.Fatalf("neighbour word = %d, want 777 (merge clobbered it)", got)
	}
}

// TestL2EvictionRecallsDeNovoOwnership: the L2 is inclusive of DeNovo
// word registrations; evicting a line must recall the owned words so no
// write is lost.
func TestL2EvictionRecallsDeNovoOwnership(t *testing.T) {
	sys := tinyL2System(t, []Protocol{DeNovo})
	l1 := sys.L1(0)
	a := sys.Mem().Alloc(64)
	tt := l1.Store(0, a, 55) // registers word 0
	probe := sys.Mem().Alloc(64 * 64)
	for i := 0; i < 64; i++ {
		_, tt = l1.Load(tt, probe+mem.Addr(i*64))
	}
	if sys.L2Stats.Evictions == 0 {
		t.Fatal("L2 never evicted")
	}
	// The registered word must have been recalled (or still owned) —
	// either way its value is preserved architecturally.
	if got := sys.DebugReadWord(a); got != 55 {
		t.Fatalf("DeNovo-owned word after L2 eviction = %d, want 55", got)
	}
	// And a second core-side read must observe it.
	v, _ := l1.Load(tt+100, a)
	if v != 55 {
		t.Fatalf("reload = %d, want 55", v)
	}
}

// TestL2EvictionRecallsMESIOwnerAcrossSets exercises inclusion for MESI
// with interleaved dirty lines across both banks.
func TestL2EvictionRecallsMESIInclusion(t *testing.T) {
	sys := tinyL2System(t, []Protocol{MESI})
	l1 := sys.L1(0)
	base := sys.Mem().Alloc(64 * 32)
	tt := sim.Time(0)
	for i := 0; i < 32; i++ {
		tt = l1.Store(tt, base+mem.Addr(i*64), uint64(1000+i))
	}
	if sys.L2Stats.Evictions == 0 {
		t.Fatal("L2 never evicted")
	}
	for i := 0; i < 32; i++ {
		if got := sys.DebugReadWord(base + mem.Addr(i*64)); got != uint64(1000+i) {
			t.Fatalf("line %d = %d, want %d", i, got, 1000+i)
		}
	}
	// Inclusion invariant: no L1 line may be valid (non-I) unless its
	// line is present in the L2.
	for si := range l1.sets {
		for wi := range l1.sets[si] {
			ln := &l1.sets[si][wi]
			if !ln.valid || ln.state == stateI {
				continue
			}
			if sys.peek(sys.bankFor(ln.tag), ln.tag) == nil {
				t.Fatalf("L1 holds %#x but L2 evicted it (inclusion broken)", uint64(ln.tag))
			}
		}
	}
}

// TestGPUWTVictimNoWriteback: GPU-WT never holds dirty data, so L1
// evictions must produce zero writeback traffic.
func TestGPUWTVictimNoWriteback(t *testing.T) {
	sys := newTestSystem(t, []Protocol{GPUWT}, 4096)
	l1 := sys.L1(0)
	base := sys.Mem().Alloc(64 * 256)
	tt := sim.Time(0)
	for i := 0; i < 256; i++ { // thrash the 4KB L1
		_, tt = l1.Load(tt, base+mem.Addr(i*64))
	}
	if l1.Stats.EvictWBLines != 0 {
		t.Fatalf("GPU-WT evicted %d dirty lines; must be 0", l1.Stats.EvictWBLines)
	}
}
