package cache

import (
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// l2GetLine services a read request for the line containing la.
// For MESI requesters it updates the directory (sharer list or an E
// grant); for software-centric requesters the directory does not track
// the copy (reader-initiated invalidation makes tracking unnecessary,
// which is the protocols' key complexity saving).
func (s *System) l2GetLine(now sim.Time, core int, la mem.Addr, exclusive, isMESI bool) (data [mem.WordsPerLine]uint64, grantedE bool, done sim.Time) {
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, reqBytes, noc.CPUReq)
	t = b.res.Acquire(t, s.cfg.BankLat)
	line, t := s.lookup(t, b, la)
	respFrom := b.node
	if exclusive {
		// MESI GetM: writer-initiated invalidation of every other copy
		// in the hardware-coherent domain plus recall of registered
		// words.
		var fwd noc.NodeID
		var hadData bool
		t, fwd, hadData = s.recallOwner(t, b, line, true)
		if hadData {
			respFrom = fwd // owner forwards data to the requester
		}
		t = s.invalidateSharers(t, b, line, core)
		t = s.recallWords(t, b, line, 0xFF, -1)
		line.sharers.clear(core)
		line.owner = core
	} else {
		// A read: fetch dirty data from the MESI owner (downgrading it
		// to S) and from any DeNovo word owners (ownership moves to the
		// L2, which then supplies future readers).
		var fwd noc.NodeID
		var hadData bool
		t, fwd, hadData = s.recallOwner(t, b, line, false)
		if hadData {
			respFrom = fwd
		}
		t = s.recallWords(t, b, line, 0xFF, -1)
		if isMESI {
			if line.owner < 0 && line.sharers.empty() {
				line.owner = core // E grant: exclusive clean
				grantedE = true
			} else {
				line.sharers.set(core)
			}
		}
	}
	// Owner->requester forwarding: when dirty data came from another
	// L1, the data response travels directly from that core (the bank
	// has already been updated for inclusivity); t at this point is the
	// forwarding departure time.
	done = s.mesh.Send(t, respFrom, s.cfg.CoreNode[core], lineRespBytes, noc.DataResp)
	return line.data, grantedE, done
}

// l2Upgrade services a MESI S->M upgrade: other sharers are invalidated
// and the requester becomes owner. No data transfer is needed.
func (s *System) l2Upgrade(now sim.Time, core int, la mem.Addr) (done sim.Time) {
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, reqBytes, noc.CPUReq)
	t = b.res.Acquire(t, s.cfg.BankLat)
	line, t := s.lookup(t, b, la)
	t, _, _ = s.recallOwner(t, b, line, true) // raced M elsewhere: pull it back
	t = s.invalidateSharers(t, b, line, core)
	t = s.recallWords(t, b, line, 0xFF, -1)
	line.sharers.clear(core)
	line.owner = core
	return s.mesh.Send(t, b.node, s.cfg.CoreNode[core], ackBytes, noc.DataResp)
}

// l2RegisterWord services a DeNovo write registration: the word's
// ownership transfers to the requesting core. The current word value is
// returned so the L1 can install a coherent copy.
func (s *System) l2RegisterWord(now sim.Time, core int, la mem.Addr, widx int) (word uint64, done sim.Time) {
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, reqBytes, noc.CPUReq)
	t = b.res.Acquire(t, s.cfg.BankLat)
	line, t := s.lookup(t, b, la)
	t = s.acquireForWrite(t, b, line, core, 1<<widx)
	line.wordOwner[widx] = int32(core)
	done = s.mesh.Send(t, b.node, s.cfg.CoreNode[core], wordRespBytes, noc.DataResp)
	return line.data[widx], done
}

// l2WriteThrough applies a GPU-WT store at the shared cache. The store
// is posted: the returned time is when the write is globally visible,
// which the core's store buffer tracks but does not stall on.
func (s *System) l2WriteThrough(now sim.Time, core int, la mem.Addr, widx int, val uint64) (done sim.Time) {
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, wbBytes(1<<widx), noc.WBReq)
	t = b.res.Acquire(t, s.cfg.BankLat)
	line, t := s.lookup(t, b, la)
	t = s.acquireForWrite(t, b, line, core, 1<<widx)
	line.data[widx] = val
	line.dirty = true
	return t
}

// l2WriteBack applies a word-masked writeback (a dirty eviction, a
// GPU-WB flush, or a MESI/DeNovo owner returning data). fromOwnership
// distinguishes writebacks by the registered owner (no other copies can
// exist, so no invalidations are needed) from GPU-WB writebacks (the
// MESI domain may hold stale copies that must be invalidated).
func (s *System) l2WriteBack(now sim.Time, core int, la mem.Addr, mask uint8, words *[mem.WordsPerLine]uint64, fromOwnership bool) (done sim.Time) {
	if mask == 0 {
		return now
	}
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, wbBytes(mask), noc.WBReq)
	t = b.res.Acquire(t, s.cfg.BankLat)
	line, t := s.lookup(t, b, la)
	if fromOwnership {
		// The writer was the owner: just clear its registrations.
		if line.owner == core {
			line.owner = -1
		}
		for w := 0; w < mem.WordsPerLine; w++ {
			if mask&(1<<w) != 0 && line.wordOwner[w] == int32(core) {
				line.wordOwner[w] = -1
			}
		}
	} else {
		t = s.acquireForWrite(t, b, line, core, mask)
	}
	for w := 0; w < mem.WordsPerLine; w++ {
		if mask&(1<<w) != 0 {
			line.data[w] = words[w]
		}
	}
	line.dirty = true
	return t
}

// l2Amo performs an atomic at the shared cache (required for protocols
// without ownership; paper §II-A). If dirtyWord is non-nil the
// requester's dirty copy of the word rides along and is applied first.
func (s *System) l2Amo(now sim.Time, core int, la mem.Addr, widx int, op AmoOp, arg1, arg2 uint64, dirtyWord *uint64) (old uint64, done sim.Time) {
	b := s.bankFor(la)
	t := s.mesh.Send(now, s.cfg.CoreNode[core], b.node, amoReqBytes, noc.SyncReq)
	t = b.res.Acquire(t, s.cfg.BankLat+s.cfg.AmoLat)
	line, t := s.lookup(t, b, la)
	t = s.acquireForWrite(t, b, line, core, 1<<widx)
	if dirtyWord != nil {
		line.data[widx] = *dirtyWord
		line.dirty = true
	}
	old = line.data[widx]
	if newVal, write := applyAmo(op, old, arg1, arg2); write {
		line.data[widx] = newVal
		line.dirty = true
	}
	s.L2Stats.AmoOps++
	done = s.mesh.Send(t, b.node, s.cfg.CoreNode[core], amoRespBytes, noc.SyncResp)
	return old, done
}

// l2EvictNotify informs the directory that a MESI L1 silently dropped a
// clean line (keeping the sharer list precise, paper §V-A). The message
// is posted; the core does not wait.
func (s *System) l2EvictNotify(now sim.Time, core int, la mem.Addr) {
	b := s.bankFor(la)
	s.mesh.Send(now, s.cfg.CoreNode[core], b.node, reqBytes, noc.CohReq)
	if line := s.peek(b, la); line != nil {
		line.sharers.clear(core)
		if line.owner == core {
			line.owner = -1
		}
	}
}

// peek returns the L2 line for la if present, without filling.
func (s *System) peek(b *bank, la mem.Addr) *l2Line {
	set := b.sets[b.setIndex(la, len(s.banks), s.cfg.L2SetsPerBank)]
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return &set[i]
		}
	}
	return nil
}

// DebugReadWord returns the architecturally freshest value of the word
// at a, looking through dirty L1 copies, then the L2, then DRAM. It is
// intended for test assertions and end-of-run verification and performs
// no timing.
func (s *System) DebugReadWord(a mem.Addr) uint64 {
	la := mem.LineAddr(a)
	w := mem.WordIndex(a)
	for _, l1 := range s.l1s {
		if l1 == nil {
			continue
		}
		if v, ok := l1.debugDirtyWord(la, w); ok {
			return v
		}
	}
	if line := s.peek(s.bankFor(la), la); line != nil {
		return line.data[w]
	}
	return s.mem.ReadWord(a)
}
