package cache

import (
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// DeNovo (DeNovoSync variant): reader-initiated invalidation, owner
// write-back, word granularity (Table I). cache_flush is a no-op —
// ownership propagates dirty data; cache_invalidate drops clean words
// but keeps owned words (this core's own writes).

func (l *L1) loadDeNovo(now sim.Time, a mem.Addr) (uint64, sim.Time) {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	if ln != nil && (ln.validMask|ln.ownedMask)&bit != 0 {
		l.touch(ln)
		return ln.data[w], now + l.hitLat
	}
	l.Stats.LoadMisses++
	data, _, done := l.sys.l2GetLine(now+l.hitLat, l.core, la, false, false)
	if ln == nil {
		ln = l.allocSlot(now, la)
	} else {
		l.touch(ln)
	}
	// Merge: words we own keep our local (newer) values.
	for i := 0; i < mem.WordsPerLine; i++ {
		if ln.ownedMask&(1<<i) == 0 {
			ln.data[i] = data[i]
		}
	}
	ln.validMask = 0xFF &^ ln.ownedMask
	return ln.data[w], done
}

func (l *L1) storeDeNovo(now sim.Time, a mem.Addr, v uint64) sim.Time {
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	if ln != nil && ln.ownedMask&bit != 0 {
		l.touch(ln)
		ln.data[w] = v
		return now + l.hitLat
	}
	// Register the word with the LLC (acquire ownership).
	l.Stats.StoreMisses++
	word, done := l.sys.l2RegisterWord(now+l.hitLat, l.core, la, w)
	if ln == nil {
		ln = l.allocSlot(now, la)
	} else {
		l.touch(ln)
	}
	_ = word // registration returns the current value; the store overwrites it
	ln.ownedMask |= bit
	ln.validMask &^= bit
	ln.data[w] = v
	return done
}

// amoDeNovo acquires word ownership and performs the atomic locally
// (like MESI, ownership makes private-cache atomics safe).
func (l *L1) amoDeNovo(now sim.Time, a mem.Addr, op AmoOp, arg1, arg2 uint64) (uint64, sim.Time) {
	const amoLocalLat = 2
	la, w := mem.LineAddr(a), mem.WordIndex(a)
	bit := uint8(1) << w
	ln := l.find(la)
	var ready sim.Time
	if ln != nil && ln.ownedMask&bit != 0 {
		l.touch(ln)
		ready = now + l.hitLat
	} else {
		word, done := l.sys.l2RegisterWord(now+l.hitLat, l.core, la, w)
		if ln == nil {
			ln = l.allocSlot(now, la)
		} else {
			l.touch(ln)
		}
		ln.ownedMask |= bit
		ln.validMask &^= bit
		ln.data[w] = word
		ready = done
	}
	old := ln.data[w]
	if newVal, write := applyAmo(op, old, arg1, arg2); write {
		ln.data[w] = newVal
	}
	return old, ready + amoLocalLat
}
