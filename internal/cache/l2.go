package cache

import (
	"fmt"

	"bigtiny/internal/dram"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// Message sizes in bytes. Every message carries an 8-byte header;
// payloads are cache lines (64B) or words (8B).
const (
	hdrBytes      = 8
	reqBytes      = hdrBytes      // dataless request
	ackBytes      = hdrBytes      // dataless response
	lineRespBytes = hdrBytes + 64 // full-line data response
	wordRespBytes = hdrBytes + 8  // single-word data response
	lineWBBytes   = hdrBytes + 64 // full-line writeback
	amoReqBytes   = hdrBytes + 16 // address + up to two operands
	amoRespBytes  = hdrBytes + 8  // old value
)

// wbBytes returns the size of a word-masked writeback message.
func wbBytes(mask uint8) int { return hdrBytes + 8*popcount8(mask) }

// Config parameterizes the cache hierarchy.
type Config struct {
	NumCores int
	// CoreNode maps core id -> mesh node.
	CoreNode []noc.NodeID
	// BankNode maps L2 bank id -> mesh node.
	BankNode []noc.NodeID
	// L2SetsPerBank and L2Ways size each bank (512KB, 8-way by default).
	L2SetsPerBank int
	L2Ways        int
	// BankLat is the occupancy of one bank access in cycles.
	BankLat sim.Time
	// AmoLat is the extra occupancy of an at-L2 atomic.
	AmoLat sim.Time
	// MCs holds one DRAM controller per bank.
	MCs []*dram.Controller
}

// DefaultL2Geometry returns the paper's per-bank geometry: 512KB, 8-way,
// 64B lines -> 1024 sets.
func DefaultL2Geometry() (sets, ways int) { return 1024, 8 }

// System is the complete cache hierarchy: per-core L1s, the shared
// banked L2 with its embedded directory, and the DRAM backing store.
type System struct {
	cfg  Config
	mesh *noc.Mesh
	mem  *mem.Memory

	banks []*bank
	l1s   []*L1
	tick  uint64

	// recallScratch groups recalled words by owning core (one word mask
	// per core id), reused across recallWords calls so the hot recall
	// path allocates nothing. Entries are always zero between calls.
	recallScratch []uint8

	L2Stats L2Stats
}

type bank struct {
	id   int
	node noc.NodeID
	res  *sim.Resource
	sets [][]l2Line
	mc   *dram.Controller
}

type l2Line struct {
	tag   mem.Addr // line base address; valid when allocated
	valid bool
	dirty bool // relative to DRAM
	data  [mem.WordsPerLine]uint64

	// Directory state for the MESI domain: a precise sharer list plus
	// the exclusive owner (a core granted E or M), if any.
	sharers bitset
	owner   int // core id, or -1

	// DeNovo word registrations: owning core per word, or -1.
	wordOwner [mem.WordsPerLine]int32

	lastUse uint64
}

func (l *l2Line) hasWordOwners() bool {
	for _, o := range l.wordOwner {
		if o >= 0 {
			return true
		}
	}
	return false
}

// NewSystem builds the hierarchy. L1s are attached afterwards with NewL1.
func NewSystem(cfg Config, m *noc.Mesh, backing *mem.Memory) *System {
	if len(cfg.BankNode) == 0 || len(cfg.MCs) != len(cfg.BankNode) {
		panic("cache: need one MC per bank")
	}
	if cfg.BankLat == 0 {
		cfg.BankLat = 4
	}
	if cfg.AmoLat == 0 {
		cfg.AmoLat = 2
	}
	s := &System{cfg: cfg, mesh: m, mem: backing, recallScratch: make([]uint8, cfg.NumCores)}
	for b := range cfg.BankNode {
		bk := &bank{
			id:   b,
			node: cfg.BankNode[b],
			res:  sim.NewResource(fmt.Sprintf("l2bank%d", b)),
			sets: make([][]l2Line, cfg.L2SetsPerBank),
			mc:   cfg.MCs[b],
		}
		for i := range bk.sets {
			ways := make([]l2Line, cfg.L2Ways)
			for w := range ways {
				ways[w].owner = -1
				ways[w].sharers = newBitset(cfg.NumCores)
				for j := range ways[w].wordOwner {
					ways[w].wordOwner[j] = -1
				}
			}
			bk.sets[i] = ways
		}
		s.banks = append(s.banks, bk)
	}
	s.l1s = make([]*L1, cfg.NumCores)
	return s
}

// Mem returns the DRAM backing store.
func (s *System) Mem() *mem.Memory { return s.mem }

// Mesh returns the on-chip network.
func (s *System) Mesh() *noc.Mesh { return s.mesh }

// L1 returns core's private L1.
func (s *System) L1(core int) *L1 { return s.l1s[core] }

// bankFor returns the bank holding la (line-interleaved across banks).
func (s *System) bankFor(la mem.Addr) *bank {
	return s.banks[int(la/mem.LineSize)%len(s.banks)]
}

func (b *bank) setIndex(la mem.Addr, numBanks, numSets int) int {
	return int(la/mem.LineSize/mem.Addr(numBanks)) % numSets
}

// lookup finds or allocates the L2 line for la at bank b, filling from
// DRAM on a miss (and evicting an existing line if the set is full).
// ready is when the line's data is available at the bank.
func (s *System) lookup(now sim.Time, b *bank, la mem.Addr) (line *l2Line, ready sim.Time) {
	set := b.sets[b.setIndex(la, len(s.banks), s.cfg.L2SetsPerBank)]
	s.tick++
	var victim *l2Line
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == la {
			s.L2Stats.Hits++
			l.lastUse = s.tick
			return l, now
		}
		switch {
		case victim == nil:
			victim = l
		case victim.valid && !l.valid:
			victim = l // prefer an empty way
		case victim.valid && l.valid && l.lastUse < victim.lastUse:
			victim = l // LRU among occupied ways
		}
	}
	s.L2Stats.Misses++
	// Evict the victim if occupied; the L2 is inclusive of MESI L1s and
	// of DeNovo word registrations, so it must recall them first.
	t := now
	if victim.valid {
		s.L2Stats.Evictions++
		t = s.recallAll(t, b, victim)
		t = s.invalidateSharers(t, b, victim, -1)
		// Inclusive eviction: MESI L1s lose the line entirely.
		if victim.owner >= 0 {
			t, _, _ = s.recallOwner(t, b, victim, true)
		}
		if victim.dirty {
			s.mesh.Traffic.Bytes[noc.DRAMReq] += lineWBBytes
			s.mesh.Traffic.Messages[noc.DRAMReq]++
			b.mc.Access(t, true) // occupancy only; write completes in background
			s.mem.WriteLineMasked(victim.tag, &victim.data, 0xFF)
		}
		victim.valid = false
	}
	// Fill from DRAM.
	s.mesh.Traffic.Bytes[noc.DRAMReq] += reqBytes
	s.mesh.Traffic.Messages[noc.DRAMReq]++
	t = b.mc.Access(t, false)
	s.mesh.Traffic.Bytes[noc.DRAMResp] += lineRespBytes
	s.mesh.Traffic.Messages[noc.DRAMResp]++
	victim.tag = la
	victim.valid = true
	victim.dirty = false
	victim.owner = -1
	victim.sharers.clearAll()
	for i := range victim.wordOwner {
		victim.wordOwner[i] = -1
	}
	s.mem.ReadLine(la, &victim.data)
	victim.lastUse = s.tick
	return victim, t
}

// recallOwner pulls the line back from its exclusive MESI owner. If
// invalidate is true the owner drops to I, otherwise it keeps an S copy.
// Returns the time the owner's response reaches the bank, plus the
// owner's node and whether dirty data was supplied, so callers can
// model owner->requester forwarding (the standard 3-hop directory
// optimization) instead of bouncing data through the bank.
func (s *System) recallOwner(t sim.Time, b *bank, l *l2Line, invalidate bool) (sim.Time, noc.NodeID, bool) {
	if l.owner < 0 {
		return t, b.node, false
	}
	owner := l.owner
	s.L2Stats.Recalls++
	at := s.mesh.Send(t, b.node, s.cfg.CoreNode[owner], reqBytes, noc.CohReq)
	data, wasDirty := s.l1s[owner].recallMESI(l.tag, invalidate)
	respBytes := ackBytes
	if wasDirty {
		respBytes = lineRespBytes
		l.data = data
		l.dirty = true
	}
	done := s.mesh.Send(at, s.cfg.CoreNode[owner], b.node, respBytes, noc.CohResp)
	if invalidate {
		l.owner = -1
	} else {
		// Downgrade: owner becomes a plain sharer.
		l.sharers.set(owner)
		l.owner = -1
	}
	return done, s.cfg.CoreNode[owner], wasDirty
}

// invalidateSharers sends invalidations to every MESI sharer except
// `except` and waits for all acks (writer-initiated invalidation).
func (s *System) invalidateSharers(t sim.Time, b *bank, l *l2Line, except int) sim.Time {
	done := t
	l.sharers.forEach(func(core int) {
		if core == except {
			return
		}
		s.L2Stats.InvSent++
		at := s.mesh.Send(t, b.node, s.cfg.CoreNode[core], reqBytes, noc.CohReq)
		s.l1s[core].invalidateMESILine(l.tag)
		ack := s.mesh.Send(at, s.cfg.CoreNode[core], b.node, ackBytes, noc.CohResp)
		if ack > done {
			done = ack
		}
	})
	keep := except >= 0 && l.sharers.has(except)
	l.sharers.clearAll()
	if keep {
		l.sharers.set(except)
	}
	return done
}

// recallAll pulls back every DeNovo-registered word in the line,
// transferring ownership to the L2. One round trip per distinct owner.
func (s *System) recallAll(t sim.Time, b *bank, l *l2Line) sim.Time {
	return s.recallWords(t, b, l, 0xFF, -1)
}

// recallWords recalls the words in mask that are registered to cores
// other than except.
func (s *System) recallWords(t sim.Time, b *bank, l *l2Line, mask uint8, except int) sim.Time {
	// Group words by owner in the reusable scratch table (cleared again
	// as the owner loop consumes it).
	byOwner := s.recallScratch
	any := false
	for w := 0; w < mem.WordsPerLine; w++ {
		if mask&(1<<w) == 0 {
			continue
		}
		o := int(l.wordOwner[w])
		if o >= 0 && o != except {
			byOwner[o] |= 1 << w
			any = true
		}
	}
	if !any {
		return t
	}
	done := t
	for owner := 0; owner < s.cfg.NumCores; owner++ {
		wm := byOwner[owner]
		if wm == 0 {
			continue
		}
		byOwner[owner] = 0
		s.L2Stats.Recalls++
		at := s.mesh.Send(t, b.node, s.cfg.CoreNode[owner], reqBytes, noc.CohReq)
		words := s.l1s[owner].recallWords(l.tag, wm)
		resp := s.mesh.Send(at, s.cfg.CoreNode[owner], b.node, wbBytes(wm), noc.CohResp)
		for w := 0; w < mem.WordsPerLine; w++ {
			if wm&(1<<w) != 0 {
				l.data[w] = words[w]
				l.wordOwner[w] = -1
			}
		}
		l.dirty = true
		if resp > done {
			done = resp
		}
	}
	return done
}

// acquireForWrite makes the L2 copy of the line writable by `core`:
// recalls the MESI owner, invalidates MESI sharers, and recalls DeNovo
// word registrations for the written words. This is the Spandex-style
// integration point: a write arriving from any protocol is
// writer-initiated with respect to the hardware-coherent (MESI) domain
// and reader-initiated with respect to the software-centric domain.
func (s *System) acquireForWrite(t sim.Time, b *bank, l *l2Line, core int, mask uint8) sim.Time {
	t, _, _ = s.recallOwner(t, b, l, true)
	t = s.invalidateSharers(t, b, l, core)
	t = s.recallWords(t, b, l, mask, core)
	return t
}
