package cache

import (
	"testing"
	"testing/quick"

	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// TestCoherenceDisciplineProperty checks the fundamental contract the
// work-stealing runtime depends on: for ANY interleaving of reads and
// writes from multiple cores, if every write by a software-centric core
// is followed by a cache_flush and every read is preceded by a
// cache_invalidate, then every read observes the most recent write
// (writes are serialized by the sequential test driver).
func TestCoherenceDisciplineProperty(t *testing.T) {
	protocols := [][]Protocol{
		{MESI, MESI, MESI},
		{DeNovo, DeNovo, DeNovo},
		{GPUWT, GPUWT, GPUWT},
		{GPUWB, GPUWB, GPUWB},
		{MESI, GPUWB, DeNovo}, // heterogeneous
		{MESI, GPUWT, GPUWB},
	}
	for _, protos := range protocols {
		protos := protos
		f := func(ops []uint32) bool {
			sys := newTestSystem(t, protos, 4096)
			nAddrs := 8
			base := sys.Mem().Alloc(64 * nAddrs)
			ref := make(map[mem.Addr]uint64)
			now := make([]sim.Time, len(protos))
			val := uint64(1)
			for _, op := range ops {
				core := int(op>>0) % len(protos)
				addr := base + mem.Addr(int(op>>4)%nAddrs)*64 + mem.Addr((int(op>>8)%8)*8)
				kind := (op >> 16) % 2
				l1 := sys.L1(core)
				switch kind {
				case 0: // write + flush
					now[core] = l1.Store(now[core], addr, val)
					now[core] = l1.Flush(now[core])
					ref[addr] = val
					val++
				case 1: // invalidate + read
					now[core] = l1.Invalidate(now[core])
					v, done := l1.Load(now[core], addr)
					now[core] = done
					if v != ref[addr] {
						t.Logf("%v: core %d read %d from %#x, want %d",
							protos, core, v, uint64(addr), ref[addr])
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("protocols %v: %v", protos, err)
		}
	}
}

// TestAmoLinearizableProperty checks that AMOs from any mix of cores
// and protocols are linearizable: a sequence of fetch-and-adds of known
// increments sums exactly, and every AMO observes a value consistent
// with all previously completed AMOs, regardless of interleaving and
// with NO flushes or invalidates at all (AMOs must be coherent on their
// own; the runtime's reference counts rely on this).
func TestAmoLinearizableProperty(t *testing.T) {
	protos := []Protocol{MESI, DeNovo, GPUWT, GPUWB}
	f := func(ops []uint16) bool {
		sys := newTestSystem(t, protos, 4096)
		a := sys.Mem().Alloc(64)
		now := make([]sim.Time, len(protos))
		sum := uint64(0)
		for _, op := range ops {
			core := int(op) % len(protos)
			inc := uint64(op>>2)%7 + 1
			old, done := sys.L1(core).Amo(now[core], a, AmoAdd, inc, 0)
			now[core] = done
			if old != sum {
				t.Logf("core %d AMO saw %d, want %d", core, old, sum)
				return false
			}
			sum += inc
		}
		return sys.DebugReadWord(a) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestMESISWMRProperty: after any sequence of loads and stores by MESI
// cores, at most one L1 holds the line in M/E, and if one does, no
// other L1 holds it at all (single-writer/multiple-reader invariant,
// paper §II-A).
func TestMESISWMRProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		protos := []Protocol{MESI, MESI, MESI, MESI}
		sys := newTestSystem(t, protos, 4096)
		nAddrs := 4
		base := sys.Mem().Alloc(64 * nAddrs)
		now := make([]sim.Time, len(protos))
		for _, op := range ops {
			core := int(op) % len(protos)
			addr := base + mem.Addr(int(op>>2)%nAddrs)*64
			l1 := sys.L1(core)
			if (op>>8)%2 == 0 {
				_, now[core] = l1.Load(now[core], addr)
			} else {
				now[core] = l1.Store(now[core], addr, uint64(op))
			}
			// Check SWMR for this line across all caches.
			owners, holders := 0, 0
			for c := range protos {
				ln := sys.L1(c).find(mem.LineAddr(addr))
				if ln == nil || !ln.valid || ln.state == stateI {
					continue
				}
				holders++
				if ln.state == stateM || ln.state == stateE {
					owners++
				}
			}
			if owners > 1 || (owners == 1 && holders > 1) {
				t.Logf("SWMR violated: %d owners, %d holders", owners, holders)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryPrecisionProperty: the directory's sharer list and owner
// field always agree with the actual L1 states (the paper's "precise
// sharer list", §V-A).
func TestDirectoryPrecisionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		protos := []Protocol{MESI, MESI, MESI}
		sys := newTestSystem(t, protos, 4096)
		nAddrs := 6
		base := sys.Mem().Alloc(64 * nAddrs)
		now := make([]sim.Time, len(protos))
		for _, op := range ops {
			core := int(op) % len(protos)
			addr := base + mem.Addr(int(op>>2)%nAddrs)*64
			if (op>>9)%2 == 0 {
				_, now[core] = sys.L1(core).Load(now[core], addr)
			} else {
				now[core] = sys.L1(core).Store(now[core], addr, uint64(op))
			}
		}
		// Verify every L2 line's directory state against L1 truth.
		for a := 0; a < nAddrs; a++ {
			la := mem.LineAddr(base + mem.Addr(a)*64)
			line := sys.peek(sys.bankFor(la), la)
			if line == nil {
				continue
			}
			for c := range protos {
				ln := sys.L1(c).find(la)
				has := ln != nil && ln.valid && ln.state != stateI
				tracked := line.sharers.has(c) || line.owner == c
				if has != tracked {
					t.Logf("directory imprecise for core %d line %#x: has=%v tracked=%v",
						c, uint64(la), has, tracked)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
