package machine

import (
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
)

func TestAllNamedConfigsBuild(t *testing.T) {
	for _, name := range Names() {
		cfg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m := New(cfg)
		if len(m.Cores) != cfg.NumCores() {
			t.Errorf("%s: %d cores built, want %d", name, len(m.Cores), cfg.NumCores())
		}
		if cfg.DTS && m.ULI == nil {
			t.Errorf("%s: DTS config without ULI fabric", name)
		}
		if !cfg.DTS && m.ULI != nil {
			t.Errorf("%s: non-DTS config with ULI fabric", name)
		}
	}
}

func TestPaperConfigTable(t *testing.T) {
	bt, err := Lookup("bT/MESI")
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumBig != 4 || bt.NumTiny != 60 {
		t.Errorf("bT core counts = %d big, %d tiny", bt.NumBig, bt.NumTiny)
	}
	if bt.Rows != 8 || bt.Cols != 8 || bt.NumBanks != 8 {
		t.Error("bT mesh/bank geometry wrong")
	}
	if bt.L1BigBytes != 64*1024 || bt.L1TinyBytes != 4*1024 {
		t.Error("L1 sizes wrong")
	}
	if bt.L2SetsPerBank*bt.L2Ways*64 != 512*1024 {
		t.Error("L2 bank should be 512KB")
	}

	b256, _ := Lookup("bT256/HCC-DTS-gwb")
	if b256.NumCores() != 256 || b256.NumBanks != 32 || !b256.DTS {
		t.Error("bT256 geometry wrong")
	}
	if b256.DRAMBytesPerCycle != 4*bt.DRAMBytesPerCycle {
		t.Error("bT256 should have 4x bandwidth")
	}
}

func TestCoreKinds(t *testing.T) {
	m := New(mustCfg(t, "bT/HCC-gwb"))
	if !m.Big(0) || !m.Big(3) || m.Big(4) {
		t.Fatal("big/tiny split wrong")
	}
	if m.Cores[0].L1D.Protocol() != cache.MESI {
		t.Error("big core must be MESI")
	}
	if m.Cores[4].L1D.Protocol() != cache.GPUWB {
		t.Error("tiny core protocol wrong")
	}
	if !m.Cores[0].Cfg.Big || m.Cores[4].Cfg.Big {
		t.Error("cpu configs wrong")
	}
}

func TestPlacementDistinctNodes(t *testing.T) {
	for _, name := range []string{"bT/MESI", "bT256/MESI", "O3x8", "tiny64"} {
		m := New(mustCfg(t, name))
		seen := map[int]bool{}
		for c := range m.Cores {
			n := int(nodeOf(m, c))
			if seen[n] {
				t.Fatalf("%s: two cores share node %d", name, n)
			}
			seen[n] = true
		}
	}
}

func TestSmokeRunSimpleProgram(t *testing.T) {
	m := New(mustCfg(t, "bT/HCC-gwb"))
	a := m.Mem.Alloc(64)
	done := make([]bool, 2)
	m.Spawn(0, func(c *cpu.Core) { // big core
		c.Compute(10)
		c.Store(a, 5)
		done[0] = true
	})
	m.Spawn(4, func(c *cpu.Core) { // tiny core
		c.Compute(100)
		c.Amo(a, cache.AmoAdd, 1, 0)
		done[1] = true
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !done[0] || !done[1] {
		t.Fatal("threads did not finish")
	}
}

func mustCfg(t *testing.T, name string) Config {
	t.Helper()
	c, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// nodeOf recovers a core's mesh node via the cache system config.
func nodeOf(m *Machine, core int) int {
	// The L1's node is private; use mesh geometry via Spawn-free check:
	// hop count from itself must be 0. Simplest: recompute placement.
	nodes := placeCores(m.Mesh, m.Cfg)
	return int(nodes[core])
}
