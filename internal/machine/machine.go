// Package machine composes complete simulated systems out of the
// substrate packages: cores + L1s + mesh + banked L2 + DRAM + optional
// ULI fabric, following the paper's Table II configuration and the
// Figure 1 floorplan (big cores interleaved in the bottom row of the
// tiny-core mesh, one L2 bank and one memory controller per mesh
// column).
package machine

import (
	"fmt"

	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
	"bigtiny/internal/dram"
	"bigtiny/internal/fault"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/oracle"
	"bigtiny/internal/sim"
	"bigtiny/internal/uli"
)

// Config describes one simulated system.
type Config struct {
	Name string
	// NumBig / NumTiny are the core counts (big cores come first in
	// core-ID order).
	NumBig, NumTiny int
	// TinyProto is the tiny cores' L1 protocol. Big cores always use
	// MESI.
	TinyProto cache.Protocol
	// DTS enables the ULI fabric (direct task stealing hardware).
	DTS bool
	// Rows x Cols is the core mesh; an extra row is added for L2 banks
	// and memory controllers.
	Rows, Cols int
	// NumBanks is the number of L2 banks (== memory controllers).
	NumBanks int
	// L1BigBytes / L1TinyBytes size the private data caches.
	L1BigBytes, L1TinyBytes int
	// L2SetsPerBank / L2Ways size each L2 bank.
	L2SetsPerBank, L2Ways int
	// DRAMBytesPerCycle is the total memory bandwidth.
	DRAMBytesPerCycle float64
	// Deadline aborts runaway simulations (cycles); 0 = none.
	Deadline sim.Time
	// Shards splits the event kernel into that many conservative-
	// lookahead shards (PDES decomposition, DESIGN.md §16). <= 1 runs
	// the serial kernel; values beyond the tile count degrade to one
	// shard per tile. Results are byte-identical at any value.
	Shards int
	// ShardExec selects the sharded kernel's executor: the default
	// merged dispatch, or the epoch-parallel worker pool
	// (sim.ExecParallel). Ignored when the kernel ends up serial.
	// Results are byte-identical in either mode (DESIGN.md §17).
	ShardExec sim.ExecMode
	// ExecWorkers bounds the parallel executor's worker pool; <= 0
	// means one worker per shard (the pool is clamped to the shard
	// count either way).
	ExecWorkers int
	// Faults, when non-nil, selects a fault-injection scenario; New
	// builds a fresh Injector seeded with FaultSeed for each machine,
	// so one Config can build many machines without shared state.
	Faults    *fault.Scenario
	FaultSeed uint64
	// Oracle attaches a memory-ordering checker to every L1; Run fails
	// if any load observed a value no legal per-location order allows.
	Oracle bool
}

// NumCores returns the total core count.
func (c *Config) NumCores() int { return c.NumBig + c.NumTiny }

// Machine is an instantiated system ready to run simulated software.
type Machine struct {
	Cfg    Config
	Kernel *sim.Kernel
	Mesh   *noc.Mesh
	Mem    *mem.Memory
	Cache  *cache.System
	Cores  []*cpu.Core
	ULI    *uli.Fabric // nil unless Cfg.DTS
	MCs    []*dram.Controller
	// Faults is this machine's fault injector (nil unless Cfg.Faults).
	Faults *fault.Injector
	// Oracle is the memory-ordering checker (nil unless Cfg.Oracle).
	Oracle *oracle.Checker
	// plan is the tile→shard partition (nil unless Cfg.Shards > 1).
	plan *ShardPlan
	// async is the oracle's drain-goroutine wrapper (nil unless the
	// parallel executor and the oracle are both on); Run closes it
	// before reading the verdict.
	async *oracle.Async
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Rows*cfg.Cols < cfg.NumCores() {
		panic(fmt.Sprintf("machine %q: %dx%d mesh cannot hold %d cores",
			cfg.Name, cfg.Rows, cfg.Cols, cfg.NumCores()))
	}
	if cfg.NumBanks > cfg.Cols {
		panic(fmt.Sprintf("machine %q: %d banks need %d columns", cfg.Name, cfg.NumBanks, cfg.NumBanks))
	}
	k := sim.NewKernel()
	if cfg.Deadline > 0 {
		k.SetDeadline(cfg.Deadline)
	}
	var inj *fault.Injector
	if cfg.Faults != nil {
		inj = fault.NewInjector(*cfg.Faults, cfg.FaultSeed)
	}
	// Core mesh plus one extra row for L2 banks / memory controllers.
	mesh := noc.NewMesh(cfg.Rows+1, cfg.Cols)
	mesh.Faults = inj
	backing := mem.New()

	coreNodes := placeCores(mesh, cfg)

	var bankNodes []noc.NodeID
	var mcs []*dram.Controller
	perMC := dram.Config{
		AccessLat:     60,
		BytesPerCycle: cfg.DRAMBytesPerCycle / float64(cfg.NumBanks),
		LineBytes:     mem.LineSize,
	}
	for b := 0; b < cfg.NumBanks; b++ {
		col := b * cfg.Cols / cfg.NumBanks
		bankNodes = append(bankNodes, mesh.Node(cfg.Rows, col))
		mc := dram.NewController(fmt.Sprintf("mc%d", b), perMC)
		mc.Faults = inj
		mcs = append(mcs, mc)
	}

	var plan *ShardPlan
	if n := clampShards(cfg.Shards, cfg.NumCores()); n > 1 {
		plan = planShards(n, mesh, coreNodes, bankNodes)
		k.Shard(plan.Shards, plan.Lookahead)
		workers := cfg.ExecWorkers
		if workers <= 0 {
			workers = plan.Shards
		}
		k.SetShardExec(cfg.ShardExec, workers)
	}

	cs := cache.NewSystem(cache.Config{
		NumCores:      cfg.NumCores(),
		CoreNode:      coreNodes,
		BankNode:      bankNodes,
		L2SetsPerBank: cfg.L2SetsPerBank,
		L2Ways:        cfg.L2Ways,
		MCs:           mcs,
	}, mesh, backing)

	var fabric *uli.Fabric
	if cfg.DTS {
		fabric = uli.NewFabric(k, cfg.Rows+1, cfg.Cols, cfg.NumCores(),
			func(core int) noc.NodeID { return coreNodes[core] })
		fabric.Faults = inj
		if plan != nil {
			// ULI deliveries are cross-core messages: route each to the
			// receiving core's event shard.
			fabric.ShardOf = func(core int) int { return plan.CoreShard[core] }
		}
		if sc := inj.Scenario(); sc.Lossy() {
			// Steal-path messages can vanish: arm the thief-side timeout.
			// Left at zero otherwise so fault-free runs schedule no
			// timers and keep bit-identical cycle counts.
			fabric.Timeout = uli.DefaultStealTimeout
		}
		k.AddDumpHook(fabric.DumpState)
	}

	var chk *oracle.Checker
	var async *oracle.Async
	if cfg.Oracle {
		chk = oracle.New(cfg.NumCores())
		if k.ShardExecMode() == sim.ExecParallel {
			// Oracle checking is order-dependent but feeds nothing back
			// into simulated time, so under the parallel executor the
			// observations are recorded in dispatch order and applied on a
			// drain goroutine; Run closes the wrapper before reading the
			// verdict, so Ops and Err() are bit-identical to sync checking.
			async = oracle.NewAsync(chk)
		}
	}

	m := &Machine{
		Cfg: cfg, Kernel: k, Mesh: mesh, Mem: backing, Cache: cs,
		ULI: fabric, MCs: mcs, Faults: inj, Oracle: chk, plan: plan,
		async: async,
	}
	for c := 0; c < cfg.NumCores(); c++ {
		big := c < cfg.NumBig
		var l1 *cache.L1
		var coreCfg cpu.Config
		if big {
			coreCfg = cpu.BigConfig()
			l1 = cache.NewL1(cs, c, cache.MESI, cfg.L1BigBytes, 2)
		} else {
			coreCfg = cpu.TinyConfig()
			l1 = cache.NewL1(cs, c, cfg.TinyProto, cfg.L1TinyBytes, 2)
		}
		l1.Faults = inj
		if async != nil {
			l1.Oracle = async
		} else if chk != nil {
			// Guarded assignment: a typed-nil Checker in the interface
			// field would defeat the L1's nil check.
			l1.Oracle = chk
		}
		var unit *uli.Unit
		if fabric != nil {
			unit = fabric.Unit(c)
		}
		core := cpu.New(c, coreCfg, l1, unit)
		core.Faults = inj
		if !big {
			// Straggler selection indexes tiny cores only; big cores are
			// exempt (FaultLane stays -1 from cpu.New).
			core.FaultLane = c - cfg.NumBig
		}
		m.Cores = append(m.Cores, core)
	}
	return m
}

// placeCores assigns mesh nodes per the Figure 1 floorplan: big cores
// interleave across the bottom core row; tiny cores fill the remaining
// nodes row-major.
func placeCores(mesh *noc.Mesh, cfg Config) []noc.NodeID {
	nodes := make([]noc.NodeID, cfg.NumCores())
	used := make(map[noc.NodeID]bool)
	bottom := cfg.Rows - 1
	for b := 0; b < cfg.NumBig; b++ {
		col := b * cfg.Cols / max(cfg.NumBig, 1)
		if cfg.NumBig > 1 && cfg.NumBig*2 <= cfg.Cols {
			col = b * 2 // B T B T ... as drawn in Figure 1
		}
		n := mesh.Node(bottom, col)
		nodes[b] = n
		used[n] = true
	}
	next := 0
	for c := cfg.NumBig; c < cfg.NumCores(); c++ {
		for {
			n := noc.NodeID(next)
			next++
			r, _ := mesh.RowCol(n)
			if r >= cfg.Rows {
				panic("machine: ran out of mesh nodes")
			}
			if !used[n] {
				nodes[c] = n
				used[n] = true
				break
			}
		}
	}
	return nodes
}

// Big reports whether core id is a big core.
func (m *Machine) Big(core int) bool { return core < m.Cfg.NumBig }

// Spawn starts body as the software thread on the given core at time 0.
// On a sharded machine the thread lives on its tile's event shard.
func (m *Machine) Spawn(core int, body func(*cpu.Core)) {
	c := m.Cores[core]
	shard := 0
	if m.plan != nil {
		shard = m.plan.CoreShard[core]
	}
	m.Kernel.NewProcOn(shard, fmt.Sprintf("core%d", core), 0, func(p *sim.Proc) {
		c.Bind(p)
		body(c)
	})
}

// Run drives the simulation to completion. With the oracle enabled,
// any observed memory-ordering violation fails the run; it takes
// precedence over a kernel error (deadline/deadlock), because an
// ordering bug is usually the *cause* of the hang.
func (m *Machine) Run() error {
	if m.async != nil {
		// The defer keeps the drain goroutine from leaking when the
		// kernel panics; the explicit Close below is the one that orders
		// the tail batch before the verdict read.
		defer m.async.Close()
	}
	err := m.Kernel.Run(nil)
	if m.async != nil {
		m.async.Close()
	}
	if oerr := m.Oracle.Err(); oerr != nil {
		if err != nil {
			return fmt.Errorf("%w (and the run failed: %v)", oerr, err)
		}
		return oerr
	}
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
