package machine

import "testing"

// TestShardPlan checks the partition invariants on the paper machine:
// every shard is non-empty, assignment is contiguous in core-ID order,
// the lookahead is the adjacent-tile NoC latency, and banks map to
// in-range shards.
func TestShardPlan(t *testing.T) {
	cfg, err := Lookup("bT/HCC-DTS-gwb")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	m := New(cfg)
	plan := m.Plan()
	if plan == nil {
		t.Fatal("no plan on a sharded machine")
	}
	if plan.Shards != 4 {
		t.Fatalf("shards = %d, want 4", plan.Shards)
	}
	if len(plan.CoreShard) != cfg.NumCores() {
		t.Fatalf("core map covers %d cores, want %d", len(plan.CoreShard), cfg.NumCores())
	}
	seen := make([]int, plan.Shards)
	prev := 0
	for c, s := range plan.CoreShard {
		if s < prev || s >= plan.Shards {
			t.Fatalf("core %d on shard %d (prev %d): not a contiguous partition", c, s, prev)
		}
		prev = s
		seen[s]++
	}
	for s, n := range seen {
		if n == 0 {
			t.Fatalf("shard %d owns no cores", s)
		}
	}
	// Adjacent tiles across a shard boundary: one hop at
	// ChannelLat + RouterLat cycles.
	if want := m.Mesh.ChannelLat + m.Mesh.RouterLat; plan.Lookahead != want {
		t.Fatalf("lookahead = %d, want %d", plan.Lookahead, want)
	}
	for b, s := range plan.BankShard {
		if s < 0 || s >= plan.Shards {
			t.Fatalf("bank %d on shard %d out of range", b, s)
		}
	}
	if !m.Kernel.Sharded() || m.Kernel.NumShards() != 4 {
		t.Fatal("kernel not sharded to the plan")
	}
}

// TestShardClamp: requests beyond the tile count (or the kernel cap)
// degrade to the largest valid partition; <= 1 stays serial.
func TestShardClamp(t *testing.T) {
	cfg, err := Lookup("bT8/HCC-DTS-gwb")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1000
	m := New(cfg)
	if got := m.Plan().Shards; got != cfg.NumCores() {
		t.Fatalf("clamped to %d shards, want %d (tile count)", got, cfg.NumCores())
	}

	cfg.Shards = 1
	if m := New(cfg); m.Plan() != nil || m.Kernel.Sharded() {
		t.Fatal("Shards=1 must stay serial")
	}

	big, err := Lookup("bT256/MESI")
	if err != nil {
		t.Fatal(err)
	}
	big.Shards = 300
	if got := New(big).Plan().Shards; got != MaxShards {
		t.Fatalf("256-core machine clamped to %d shards, want %d", got, MaxShards)
	}
}
