package machine

import (
	"fmt"
	"sort"

	"bigtiny/internal/cache"
	"bigtiny/internal/sim"
)

// The paper's simulated configurations (§V-A):
//
//	IOx1               single tiny (in-order) core — the "Serial IO" baseline
//	O3x1/O3x4/O3x8     1/4/8 big out-of-order cores, MESI
//	tiny64             64 tiny cores (Figure 4 granularity study)
//	bT/MESI            4 big + 60 tiny, all MESI
//	bT/HCC-dnv         4 big (MESI) + 60 tiny (DeNovo)
//	bT/HCC-gwt         4 big (MESI) + 60 tiny (GPU-WT)
//	bT/HCC-gwb         4 big (MESI) + 60 tiny (GPU-WB)
//	bT/HCC-DTS-*       the three HCC configs plus DTS hardware
//	bT256/*            256-core versions (4 big + 252 tiny, 8x32 mesh,
//	                   32 banks, 4x bandwidth; Table V)

// defaultDeadline bounds runaway simulations.
const defaultDeadline = sim.Time(3_000_000_000)

func base64Core() Config {
	return Config{
		NumBig: 4, NumTiny: 60,
		TinyProto: cache.MESI,
		Rows:      8, Cols: 8,
		NumBanks:   8,
		L1BigBytes: 64 * 1024, L1TinyBytes: 4 * 1024,
		L2SetsPerBank: 1024, L2Ways: 8,
		DRAMBytesPerCycle: 16, // 16 GB/s at 1 GHz
		Deadline:          defaultDeadline,
	}
}

func base256Core() Config {
	c := base64Core()
	c.NumBig, c.NumTiny = 4, 252
	c.Rows, c.Cols = 8, 32
	c.NumBanks = 32
	c.DRAMBytesPerCycle = 64 // 4x the 64-core system (Table V)
	return c
}

func bigOnly(n int) Config {
	c := base64Core()
	c.NumBig, c.NumTiny = n, 0
	c.Rows, c.Cols = 1, 8
	c.Name = fmt.Sprintf("O3x%d", n)
	return c
}

// Configs returns the named configuration table.
func Configs() map[string]Config {
	cfgs := map[string]Config{}
	add := func(c Config) { cfgs[c.Name] = c }

	io1 := base64Core()
	io1.NumBig, io1.NumTiny = 0, 1
	io1.Rows, io1.Cols = 1, 8
	io1.Name = "IOx1"
	add(io1)

	add(bigOnly(1))
	add(bigOnly(4))
	add(bigOnly(8))

	t64 := base64Core()
	t64.NumBig, t64.NumTiny = 0, 64
	t64.Name = "tiny64"
	add(t64)

	bt := base64Core()
	bt.Name = "bT/MESI"
	add(bt)

	for _, hcc := range []struct {
		suffix string
		proto  cache.Protocol
	}{
		{"dnv", cache.DeNovo}, {"gwt", cache.GPUWT}, {"gwb", cache.GPUWB},
	} {
		c := base64Core()
		c.TinyProto = hcc.proto
		c.Name = "bT/HCC-" + hcc.suffix
		add(c)
		d := c
		d.DTS = true
		d.Name = "bT/HCC-DTS-" + hcc.suffix
		add(d)
	}

	// Small 8-core DTS system for fast chaos/invariance runs: every
	// fault scenario exercises the full protocol stack without the
	// 64-core simulation cost.
	bt8 := base64Core()
	bt8.NumBig, bt8.NumTiny = 1, 7
	bt8.Rows, bt8.Cols = 2, 4
	bt8.NumBanks = 4
	bt8.TinyProto = cache.GPUWB
	bt8.DTS = true
	bt8.Deadline = 600_000_000
	bt8.Name = "bT8/HCC-DTS-gwb"
	add(bt8)

	// Software-stealing 8-core variants for the open-system latency
	// sweeps: same mesh and deadline as bT8, differing only in tiny-core
	// protocol / DTS so degradation curves isolate the coherence choice.
	bt8m := bt8
	bt8m.TinyProto = cache.MESI
	bt8m.DTS = false
	bt8m.Name = "bT8/MESI"
	add(bt8m)

	bt8g := bt8
	bt8g.DTS = false
	bt8g.Name = "bT8/HCC-gwb"
	add(bt8g)

	bt256 := base256Core()
	bt256.Name = "bT256/MESI"
	add(bt256)
	for _, hcc := range []struct {
		suffix string
		proto  cache.Protocol
	}{
		{"gwb", cache.GPUWB},
	} {
		c := base256Core()
		c.TinyProto = hcc.proto
		c.Name = "bT256/HCC-" + hcc.suffix
		add(c)
		d := c
		d.DTS = true
		d.Name = "bT256/HCC-DTS-" + hcc.suffix
		add(d)
	}
	return cfgs
}

// Lookup returns the named config or an error listing valid names.
func Lookup(name string) (Config, error) {
	cfgs := Configs()
	if c, ok := cfgs[name]; ok {
		return c, nil
	}
	names := make([]string, 0, len(cfgs))
	for n := range cfgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return Config{}, fmt.Errorf("machine: unknown config %q (have %v)", name, names)
}

// Names returns all config names, sorted.
func Names() []string {
	cfgs := Configs()
	names := make([]string, 0, len(cfgs))
	for n := range cfgs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
