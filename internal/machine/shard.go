package machine

import (
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// ShardPlan is the tile→shard partition of one machine: which event
// shard each tile (core + private L1) and each L2 bank / memory
// controller belongs to, and the conservative lookahead the partition
// supports. See DESIGN.md §16.
//
// Cores are split into contiguous core-ID blocks of near-equal size.
// Core IDs follow the Figure 1 floorplan (big cores across the bottom
// row, tiny cores row-major above), so contiguous ID blocks are
// spatially compact and the minimum cross-shard hop distance — the
// lookahead — stays at the adjacent-tile latency.
//
// L2 banks and memory controllers own address-interleaved line ranges,
// not cores, so their *events* cannot be pinned to one shard: a bank
// access executes synchronously on the simulated thread that issued it
// and is charged to that thread's shard. BankShard records the static
// ownership used for reporting (the shard whose cores sit closest to
// the bank), mirroring how a barrier-parallel executor would co-locate
// each bank with its dominant traffic source.
type ShardPlan struct {
	Shards    int      `json:"shards"`
	Lookahead sim.Time `json:"lookahead"`
	CoreShard []int    `json:"core_shard"`
	BankShard []int    `json:"bank_shard"`
}

// planShards builds the partition for n shards. n must already be
// clamped to [2, min(NumCores, 64)].
func planShards(n int, mesh *noc.Mesh, coreNodes, bankNodes []noc.NodeID) *ShardPlan {
	numCores := len(coreNodes)
	plan := &ShardPlan{
		Shards:    n,
		CoreShard: make([]int, numCores),
		BankShard: make([]int, len(bankNodes)),
	}
	for c := 0; c < numCores; c++ {
		plan.CoreShard[c] = c * n / numCores
	}
	// Lookahead: the minimum NoC latency between any two tiles in
	// different shards. No event executing on one shard can reach
	// another shard sooner — every cross-shard interaction (ULI message,
	// cache recall response, remote wakeup) rides at least one mesh
	// traversal between those tiles.
	hopLat := mesh.ChannelLat + mesh.RouterLat
	minHops := 0
	for a := 0; a < numCores; a++ {
		for b := a + 1; b < numCores; b++ {
			if plan.CoreShard[a] == plan.CoreShard[b] {
				continue
			}
			if h := mesh.Hops(coreNodes[a], coreNodes[b]); minHops == 0 || h < minHops {
				minHops = h
			}
		}
	}
	if minHops < 1 {
		minHops = 1
	}
	plan.Lookahead = sim.Time(minHops) * hopLat
	if plan.Lookahead < 1 {
		plan.Lookahead = 1
	}
	// Banks go to the shard with the nearest core (lowest core ID on
	// ties, so the plan is deterministic).
	for b, bn := range bankNodes {
		bestCore := 0
		bestHops := -1
		for c, cn := range coreNodes {
			if h := mesh.Hops(bn, cn); bestHops < 0 || h < bestHops {
				bestCore, bestHops = c, h
			}
		}
		plan.BankShard[b] = plan.CoreShard[bestCore]
	}
	return plan
}

// MaxShards is the largest usable shard count on any machine (one
// shard per tile, capped by the kernel's 64-shard limit).
const MaxShards = 64

// clampShards normalizes a requested shard count for a machine with
// numCores tiles: <= 1 means serial, and a request larger than the
// tile count (or the kernel cap) degrades to the largest valid
// partition rather than failing — the CLI layers validate user input
// upfront; this guard keeps mixed-size suite sweeps safe.
func clampShards(requested, numCores int) int {
	n := requested
	if n > numCores {
		n = numCores
	}
	if n > MaxShards {
		n = MaxShards
	}
	if n < 2 {
		return 1
	}
	return n
}

// Plan returns the machine's shard partition, or nil when it runs on
// the serial kernel.
func (m *Machine) Plan() *ShardPlan { return m.plan }

// ShardStats returns the kernel's decomposition report (nil when
// serial). Valid during and after Run.
func (m *Machine) ShardStats() *sim.ShardStats { return m.Kernel.ShardStats() }
