// Package cilkview reproduces the role Cilkview plays in the paper's
// methodology (§V-D, Table III): it executes a task-parallel program
// natively while accounting work (total abstract instructions), span
// (critical-path instructions), logical parallelism (work/span), and
// IPT (average instructions per task). The paper uses these numbers to
// choose task granularities (Figure 4) and reports them per app in
// Table III.
package cilkview

import (
	"fmt"

	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

// Report is one Cilkview analysis result.
type Report struct {
	Work  uint64 // total abstract instructions
	Span  uint64 // critical-path instructions
	Tasks uint64 // tasks created (fork branches)
}

// Parallelism returns work/span (the paper's "Para" column).
func (r Report) Parallelism() float64 {
	if r.Span == 0 {
		return 1
	}
	return float64(r.Work) / float64(r.Span)
}

// IPT returns average instructions per task (Table III's "IPT").
func (r Report) IPT() float64 {
	if r.Tasks == 0 {
		return float64(r.Work)
	}
	return float64(r.Work) / float64(r.Tasks)
}

// String formats the report in Table III style.
func (r Report) String() string {
	return fmt.Sprintf("work=%d span=%d para=%.1f ipt=%.1f tasks=%d",
		r.Work, r.Span, r.Parallelism(), r.IPT(), r.Tasks)
}

// Analyze builds a native runtime over a fresh memory, lets setup
// construct the program against it, and returns the DAG analysis.
// setup receives the runtime (for allocation and function
// registration) and returns the root body.
func Analyze(setup func(rt *wsrt.RT) wsrt.Body) Report {
	rt := wsrt.NewNative(mem.New())
	root := setup(rt)
	work, span, tasks := rt.Analyze(root)
	return Report{Work: work, Span: span, Tasks: tasks}
}
