package cilkview

import (
	"testing"
	"testing/quick"

	"bigtiny/internal/apps"
	"bigtiny/internal/wsrt"
)

func TestBalancedForkParallelism(t *testing.T) {
	// 64 independent leaves of 1000 instructions under a binary fork
	// tree: work ~ 64000, span ~ 1000 + tree path, parallelism ~ 50+.
	r := Analyze(func(rt *wsrt.RT) wsrt.Body {
		return func(c *wsrt.Ctx) {
			c.ParallelFor(0, 0, 64, 1, func(cc *wsrt.Ctx, i int) {
				cc.Compute(1000)
			})
		}
	})
	if r.Work < 64000 {
		t.Fatalf("work = %d, want >= 64000", r.Work)
	}
	if p := r.Parallelism(); p < 30 || p > 64 {
		t.Fatalf("parallelism = %.1f, want ~50", p)
	}
	if r.Tasks < 64 {
		t.Fatalf("tasks = %d, want >= 64", r.Tasks)
	}
}

func TestSerialChainHasNoParallelism(t *testing.T) {
	r := Analyze(func(rt *wsrt.RT) wsrt.Body {
		return func(c *wsrt.Ctx) {
			for i := 0; i < 10; i++ {
				c.Compute(100)
			}
		}
	})
	if r.Work != r.Span {
		t.Fatalf("serial program: work %d != span %d", r.Work, r.Span)
	}
	if p := r.Parallelism(); p != 1 {
		t.Fatalf("parallelism = %v, want 1", p)
	}
}

func TestUnbalancedForkSpanIsMax(t *testing.T) {
	r := Analyze(func(rt *wsrt.RT) wsrt.Body {
		return func(c *wsrt.Ctx) {
			c.Fork(0,
				func(cc *wsrt.Ctx) { cc.Compute(100) },
				func(cc *wsrt.Ctx) { cc.Compute(900) },
			)
		}
	})
	if r.Work < 1000 {
		t.Fatalf("work = %d", r.Work)
	}
	// Span must be dominated by the long branch, not the sum.
	if r.Span < 900 || r.Span >= 1000 {
		t.Fatalf("span = %d, want [900, 1000)", r.Span)
	}
}

func TestNestedForkSpanComposes(t *testing.T) {
	r := Analyze(func(rt *wsrt.RT) wsrt.Body {
		return func(c *wsrt.Ctx) {
			c.Compute(50) // serial prefix
			c.Fork(0,
				func(cc *wsrt.Ctx) {
					cc.Fork(0,
						func(c2 *wsrt.Ctx) { c2.Compute(200) },
						func(c2 *wsrt.Ctx) { c2.Compute(300) },
					)
				},
				func(cc *wsrt.Ctx) { cc.Compute(100) },
			)
			c.Compute(25) // serial suffix
		}
	})
	// span = 50 + max(max(200,300), 100) + 25 = 375.
	if r.Span != 375 {
		t.Fatalf("span = %d, want 375", r.Span)
	}
}

// Property: span <= work always, and parallelism >= 1.
func TestSpanLEWorkProperty(t *testing.T) {
	f := func(widths []uint8) bool {
		r := Analyze(func(rt *wsrt.RT) wsrt.Body {
			return func(c *wsrt.Ctx) {
				for _, w := range widths {
					n := int(w%8) + 1
					bodies := make([]wsrt.Body, n)
					for i := range bodies {
						k := (i + 1) * 10
						bodies[i] = func(cc *wsrt.Ctx) { cc.Compute(k) }
					}
					c.Fork(0, bodies...)
				}
			}
		})
		return r.Span <= r.Work && r.Parallelism() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Smaller grain -> more logical parallelism (the left side of the
// paper's Figure 4 trade-off) on ligra-tc.
func TestGranularityParallelismTrend(t *testing.T) {
	paraAt := func(grain int) float64 {
		r := Analyze(func(rt *wsrt.RT) wsrt.Body {
			app, err := apps.ByName("ligra-tc")
			if err != nil {
				t.Fatal(err)
			}
			return app.Setup(rt, apps.Test, grain).Root
		})
		return r.Parallelism()
	}
	fine := paraAt(2)
	coarse := paraAt(32)
	if fine <= coarse {
		t.Fatalf("parallelism: grain2=%.1f should exceed grain32=%.1f", fine, coarse)
	}
}

// Every paper app must analyze successfully with plausible numbers.
func TestAllAppsAnalyzable(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := Analyze(func(rt *wsrt.RT) wsrt.Body {
				return app.Setup(rt, apps.Ref, 0).Root
			})
			if r.Work == 0 || r.Span == 0 {
				t.Fatalf("degenerate report %v", r)
			}
			if r.Span > r.Work {
				t.Fatalf("span > work: %v", r)
			}
			if r.Parallelism() < 1.5 {
				t.Errorf("%s: logical parallelism %.2f suspiciously low", app.Name, r.Parallelism())
			}
		})
	}
}
