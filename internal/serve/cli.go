package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bigtiny/internal/machine"
	"bigtiny/internal/sim"
)

// Main is the simulation daemon's CLI entry point, shared by `simd` and
// `paperbench serve`. It parses args, runs the server until SIGTERM or
// SIGINT, drains gracefully, and returns the process exit code.
func Main(prog string, args []string) int {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8723", "listen address (host:port; port 0 picks a free port)")
	storeDir := fs.String("store", "", "crash-safe result store directory (empty = memory-only)")
	workers := fs.Int("workers", 0, "simulation worker pool size (0 = all host cores)")
	shards := fs.Int("shards", 1,
		"conservative-lookahead kernel shards per job, byte-identical at any count (1 = serial; workers shrink to fit the host budget)")
	shardExec := fs.String("shard-exec", "merged",
		"sharded-kernel executor per job: merged, or parallel (epoch-parallel host worker pool; byte-identical results)")
	queueDepth := fs.Int("queue", 64, "admission queue depth; beyond it jobs get 429 + Retry-After")
	deadline := fs.Uint64("deadline", 0, "default per-job simulated-cycle deadline (0 = each config's watchdog default)")
	wall := fs.Duration("wall-timeout", 0, "per-job wall-clock budget, e.g. 30s (0 = none)")
	drainBudget := fs.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	quarantineAfter := fs.Int("quarantine-after", 3, "consecutive failures before a job cell is quarantined")
	noVerify := fs.Bool("no-verify", false, "skip output verification after each run")
	smoke := fs.Bool("smoke", false, "self-test: serve on a random port, run one job end to end, SIGTERM self, exit 0 on success")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, prog+": "+format+"\n", a...)
	}
	if fs.NArg() > 0 {
		logf("unexpected arguments: %v", fs.Args())
		return 2
	}
	// Reject a bad -shards before binding anything, same fail-fast
	// policy as the other CLIs (NewServer re-checks the upper bound for
	// programmatic callers).
	if *shards < 1 {
		logf("-shards %d: shard count must be at least 1", *shards)
		return 2
	}
	if *shards > machine.MaxShards {
		logf("-shards %d exceeds the %d-shard kernel limit", *shards, machine.MaxShards)
		return 2
	}
	execMode, err := sim.ParseExecMode(*shardExec)
	if err != nil {
		logf("-shard-exec: %v", err)
		return 2
	}

	cfg := Config{
		Workers:         *workers,
		Shards:          *shards,
		ShardExec:       execMode,
		QueueDepth:      *queueDepth,
		StoreDir:        *storeDir,
		DeadlineCycles:  *deadline,
		WallTimeout:     *wall,
		QuarantineAfter: *quarantineAfter,
		NoVerify:        *noVerify,
	}
	if *smoke {
		*addr = "127.0.0.1:0"
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "simd-smoke-*")
			if err != nil {
				logf("%v", err)
				return 1
			}
			defer os.RemoveAll(dir)
			cfg.StoreDir = dir
		}
	}

	s, err := NewServer(cfg)
	if err != nil {
		logf("%v", err)
		return 1
	}
	s.Start()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logf("%v", err)
		return 1
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logf("listening on http://%s (workers=%d, shards=%d, queue=%d, store=%q)",
		ln.Addr(), s.cfg.Workers, s.cfg.Shards, s.cfg.QueueDepth, cfg.StoreDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	smokeRes := make(chan error, 1)
	if *smoke {
		go func() {
			smokeRes <- runSmoke("http://" + ln.Addr().String())
			// Exit through the real signal path: the drain the smoke
			// asserts on is the one a production SIGTERM triggers.
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				p.Signal(syscall.SIGTERM)
			}
		}()
	}

	select {
	case sig := <-sigCh:
		logf("received %v, draining (budget %v)", sig, *drainBudget)
	case err := <-serveErr:
		logf("server failed: %v", err)
		return 1
	}
	rep := s.Drain(*drainBudget)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	hs.Shutdown(shutdownCtx)
	cancel()
	if rep.Clean {
		logf("drained clean")
	} else {
		logf("drained with %d job(s) cancelled", rep.Cancelled)
	}
	if *smoke {
		if err := <-smokeRes; err != nil {
			logf("smoke: FAIL: %v", err)
			return 1
		}
		logf("smoke: ok")
	}
	return 0
}

// runSmoke drives one end-to-end job against a live daemon and checks
// the result is well-formed: HTTP 200, a single-run JSON array whose
// ULI accounting satisfies Reqs == Acks + Nacks + Drops, and a repeat
// request that returns byte-identical data from a cache tier.
func runSmoke(base string) error {
	req := []byte(`{"config":"bT8/HCC-DTS-gwb","app":"cilk5-cs","size":"empty","faults":"chaos-lossy-all"}`)
	post := func() (int, string, []byte, error) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(req))
		if err != nil {
			return 0, "", nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Simd-Result"), body, err
	}

	status, source, body, err := post()
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("job returned %d: %s", status, body)
	}
	var runs []struct {
		Config   string `json:"config"`
		Cycles   uint64 `json:"cycles"`
		ULIReqs  uint64 `json:"uli_reqs"`
		ULIAcks  uint64 `json:"uli_acks"`
		ULINacks uint64 `json:"uli_nacks"`
		ULIDrops uint64 `json:"uli_drops"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		return fmt.Errorf("result is not JSON: %v", err)
	}
	if len(runs) != 1 || runs[0].Config != "bT8/HCC-DTS-gwb" {
		return fmt.Errorf("want a single-run array for bT8/HCC-DTS-gwb, got %s", body)
	}
	r := runs[0]
	if r.ULIReqs != r.ULIAcks+r.ULINacks+r.ULIDrops {
		return fmt.Errorf("ULI accounting identity violated: reqs=%d acks=%d nacks=%d drops=%d",
			r.ULIReqs, r.ULIAcks, r.ULINacks, r.ULIDrops)
	}

	status, source, again, err := post()
	if err != nil {
		return err
	}
	if status != http.StatusOK || !bytes.Equal(again, body) {
		return fmt.Errorf("repeat job diverged (status %d, source %q)", status, source)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	if h.Status != "ok" || h.Completed < 2 || h.Failed != 0 {
		return fmt.Errorf("healthz after two good jobs: %+v", h)
	}
	return nil
}
