package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"

	"bigtiny/internal/bench"
)

// openReq is a small open-system job against the test config.
func openReq() JobRequest {
	return JobRequest{
		Kind:          "open",
		Config:        testCfg,
		Workload:      "reduce",
		Arrival:       "poisson",
		RatePerKCycle: 4,
		Requests:      8,
		Seed:          1,
	}
}

// TestOpenJob posts an open-system job and checks the canonical payload
// comes back with the accounting identity intact, byte-identical on a
// repeat and across an independent server.
func TestOpenJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJob(t, ts.URL, openReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var runs []map[string]any
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("payload not a JSON array: %v\n%s", err, body)
	}
	if len(runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(runs))
	}
	r := runs[0]
	arrived := int(r["arrived"].(float64))
	sum := int(r["completed"].(float64)) + int(r["shed"].(float64)) + int(r["in_flight_at_end"].(float64))
	if arrived != 8 || sum != arrived {
		t.Fatalf("identity violated in served payload: arrived=%d sum=%d\n%s", arrived, sum, body)
	}

	resp2, body2 := postJob(t, ts.URL, openReq())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("repeat open job not byte-identical:\n%s\nvs\n%s", body, body2)
	}

	_, ts2 := newTestServer(t, Config{Workers: 2})
	resp3, body3 := postJob(t, ts2.URL, openReq())
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("second server status %d: %s", resp3.StatusCode, body3)
	}
	if !bytes.Equal(body, body3) {
		t.Errorf("open job differs across servers:\n%s\nvs\n%s", body, body3)
	}
}

// TestOpenJobChaos runs an open job under chaos-lossy-all: the serving
// path must produce a valid degraded-mode result, deterministically.
func TestOpenJobChaos(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := openReq()
	req.Workload = "rmat-query"
	req.Faults = "chaos-lossy-all"
	req.FaultSeed = 3
	resp, body := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp2, body2 := postJob(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("chaos open job not deterministic:\n%s\nvs\n%s", body, body2)
	}
}

// TestOpenJobValidation checks malformed open jobs are rejected upfront
// with structured errors, not queued.
func TestOpenJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name   string
		mutate func(*JobRequest)
	}{
		{"unknown workload", func(r *JobRequest) { r.Workload = "nope" }},
		{"unknown arrival", func(r *JobRequest) { r.Arrival = "nope" }},
		{"zero rate", func(r *JobRequest) { r.RatePerKCycle = 0 }},
		{"zero requests", func(r *JobRequest) { r.Requests = 0 }},
		{"requests over cap", func(r *JobRequest) { r.Requests = maxOpenRequests + 1 }},
		{"app on open job", func(r *JobRequest) { r.App = "cilk5-nq" }},
		{"size on open job", func(r *JobRequest) { r.Size = "test" }},
		{"unknown kind", func(r *JobRequest) { r.Kind = "closed" }},
		{"unknown config", func(r *JobRequest) { r.Config = "nope" }},
		{"unknown scenario", func(r *JobRequest) { r.Faults = "nope" }},
	}
	for _, tc := range cases {
		req := openReq()
		tc.mutate(&req)
		resp, body := postJob(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		if e := decodeErr(t, body); e.Kind != "invalid" {
			t.Errorf("%s: kind %q, want invalid", tc.name, e.Kind)
		}
	}
}

// TestQuarantineCounterResetsOnSuccess proves the consecutive-failure
// table is consecutive: two failures, a success, then two more failures
// must NOT quarantine a cell with QuarantineAfter=3 — only a third
// failure in a row may.
func TestQuarantineCounterResetsOnSuccess(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	s, ts := newTestServer(t, Config{
		Workers:         1,
		QuarantineAfter: 3,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(cfgName, appName string) {
				if failing.Load() {
					panic("induced failure")
				}
			}
		},
	})
	req := JobRequest{Config: testCfg, App: "cilk5-nq", Size: "empty"}

	post := func(wantStatus int, step string) {
		t.Helper()
		resp, body := postJob(t, ts.URL, req)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d (%s)", step, resp.StatusCode, wantStatus, body)
		}
	}

	post(http.StatusInternalServerError, "failure 1")
	post(http.StatusInternalServerError, "failure 2")

	failing.Store(false)
	post(http.StatusOK, "success after two failures")

	// The success must have reset the streak: were the table counting
	// total failures instead of consecutive ones, the cell would now be
	// one failure from quarantine with 2 already banked.
	s.mu.Lock()
	c := s.cells[jobKey(req)]
	streak, quarantined := 0, false
	if c != nil {
		streak, quarantined = c.failures, c.quarantined
	}
	s.mu.Unlock()
	if streak != 0 || quarantined {
		t.Fatalf("success left streak=%d quarantined=%v, want 0/false", streak, quarantined)
	}
}

// TestQuarantineStillTripsOnConsecutiveFailures is the complement: with
// no intervening success, the threshold must still quarantine the cell.
func TestQuarantineStillTripsOnConsecutiveFailures(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:         1,
		QuarantineAfter: 3,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(cfgName, appName string) { panic("induced failure") }
		},
	})
	req := JobRequest{Config: testCfg, App: "cilk5-nq", Size: "empty"}
	for i := 0; i < 3; i++ {
		resp, body := postJob(t, ts.URL, req)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d (%s)", i+1, resp.StatusCode, body)
		}
	}
	resp, body := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("after 3 consecutive failures: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Kind != "quarantined" {
		t.Fatalf("kind %q, want quarantined", e.Kind)
	}
}

// TestQuarantineStreakTable drives cellFailed/cellRecovered directly:
// the table must quarantine on the Nth *consecutive* failure only.
func TestQuarantineStreakTable(t *testing.T) {
	s, err := NewServer(Config{QuarantineAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	key := "v1|cell"
	fail := func() { s.cellFailed(key, errFor("boom")) }

	fail()
	fail()
	if _, q := s.cellQuarantined(key); q {
		t.Fatal("quarantined after 2 failures with threshold 3")
	}
	s.cellRecovered(key)
	fail()
	fail()
	if _, q := s.cellQuarantined(key); q {
		t.Fatal("quarantined after 2+2 failures split by a success: streak did not reset")
	}
	fail()
	if _, q := s.cellQuarantined(key); !q {
		t.Fatal("not quarantined after 3 consecutive failures")
	}
	// Recovery lifts an active quarantine too (store-hit path).
	s.cellRecovered(key)
	if _, q := s.cellQuarantined(key); q {
		t.Fatal("success did not lift the quarantine")
	}
}

// TestStoreHitClearsFailureStreak checks the disk-tier success path
// also counts as a success for the quarantine table: a cell with a
// stored result cannot be one transient failure away from quarantine.
func TestStoreHitClearsFailureStreak(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, StoreDir: dir, QuarantineAfter: 3})
	req := JobRequest{Config: testCfg, App: "cilk5-nq", Size: "empty"}
	key := jobKey(req)

	s.cellFailed(key, errFor("transient 1"))
	s.cellFailed(key, errFor("transient 2"))
	if err := s.Store().Put(key, []byte(`[{"stub":true}]`)); err != nil {
		t.Fatal(err)
	}

	resp, body := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store hit status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Simd-Result"); got != "store" {
		t.Fatalf("expected a store hit, got %q", got)
	}

	s.mu.Lock()
	c := s.cells[key]
	streak := 0
	if c != nil {
		streak = c.failures
	}
	s.mu.Unlock()
	if streak != 0 {
		t.Fatalf("store hit left failure streak at %d, want 0", streak)
	}
}

// errFor wraps a string as an error for the white-box streak tests.
func errFor(msg string) error { return &strErr{msg} }

type strErr struct{ s string }

func (e *strErr) Error() string { return e.s }
