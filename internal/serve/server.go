// Package serve turns the bench suite into a long-running,
// hardened-first simulation service: clients POST (config, app, size,
// grain, fault scenario, fault seed) jobs and get back the canonical
// result JSON — byte-identical to `paperbench -json` for the same
// tuple.
//
// The robustness contract, in order of the request path:
//
//   - Admission control: a bounded queue in front of a bounded worker
//     pool. Over capacity means 429 + Retry-After, never unbounded
//     goroutine growth.
//   - Poison-job isolation: a job that panics or blows its deadline
//     fails alone with a structured error; after QuarantineAfter
//     consecutive failures its cell is quarantined and refused upfront,
//     so one poison tuple cannot monopolize the pool.
//   - Per-job deadlines: a simulated-cycle watchdog (machine-state dump
//     on expiry) plus an optional wall-clock budget enforced by a
//     kernel interrupt.
//   - Crash-safe persistence: results land in a content-addressed disk
//     store (internal/store) written atomically and verified on read,
//     so warm results survive restarts and a corrupt entry is a miss,
//     never a lie.
//   - Graceful drain: Drain stops admission, lets in-flight work finish
//     inside a budget, hard-cancels the rest, and accounts for every
//     accepted job.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/openload"
	"bigtiny/internal/sim"
	"bigtiny/internal/store"
)

// Config sets the server's capacity and policy knobs. The zero value is
// usable: all-core workers, a 64-deep queue, no disk store, verify on.
type Config struct {
	// Workers is the simulation worker-pool size (<= 0: all host cores).
	Workers int
	// QueueDepth bounds the admission queue (<= 0: 64). Requests beyond
	// queue+pool capacity are rejected with 429.
	QueueDepth int
	// StoreDir roots the crash-safe result store ("" disables the disk
	// tier; results then live only in the in-memory suite caches).
	StoreDir string
	// DeadlineCycles is the default per-job simulated-cycle deadline
	// (0: each machine configuration's own watchdog default). Requests
	// may override it per job.
	DeadlineCycles uint64
	// WallTimeout is the per-job wall-clock budget (0: none). On expiry
	// the job's kernel is interrupted and the job fails with a timeout.
	WallTimeout time.Duration
	// QuarantineAfter is the number of consecutive failures after which
	// a cell is quarantined (<= 0: 3).
	QuarantineAfter int
	// NoVerify skips output verification after each run.
	NoVerify bool
	// Shards splits each job's event kernel into conservative-lookahead
	// shards (<= 1: serial). Results are byte-identical at any count, so
	// neither cache nor store keys include it; workers and shards draw
	// from one host-core budget (the worker pool shrinks to fit).
	Shards int
	// ShardExec selects the sharded kernel's executor for every job
	// (sim.ExecParallel = the epoch-parallel worker pool). Byte-
	// identical results either way, so it is likewise absent from all
	// cache and store keys.
	ShardExec sim.ExecMode

	// suiteHook, when non-nil, is applied to every suite the server
	// creates. Tests use it to install bench.Suite.SimHook failure
	// injectors; it has no production use.
	suiteHook func(*bench.Suite)
}

// JobRequest is the POST /v1/jobs body. Size is a name ("test", "ref",
// "big", "empty", "unit"); Faults a fault.Scenarios name. FaultSeed
// defaults to 1 when a scenario is set (matching the CLIs) and is
// forced to 0 otherwise, so equal tuples always hit equal cache keys.
//
// Kind selects the job family: "" or "run" is a closed-loop (config,
// app) simulation; "open" is an open-system serving run, which takes
// the Workload/Arrival/RatePerKCycle/Requests/Seed/MaxInFlight fields
// instead of App/Size/Grain.
type JobRequest struct {
	Kind      string `json:"kind,omitempty"`
	Config    string `json:"config"`
	App       string `json:"app,omitempty"`
	Size      string `json:"size,omitempty"`
	Grain     int    `json:"grain,omitempty"`
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// DeadlineCycles overrides the server's default per-job
	// simulated-cycle deadline for this job only.
	DeadlineCycles uint64 `json:"deadline_cycles,omitempty"`

	// Open-system fields (Kind == "open").
	Workload      string  `json:"workload,omitempty"`
	Arrival       string  `json:"arrival,omitempty"`
	RatePerKCycle float64 `json:"rate_per_kcycle,omitempty"`
	Requests      int     `json:"requests,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
	MaxInFlight   int     `json:"max_inflight,omitempty"`
}

// openSpec builds the openload spec an "open" job describes.
func openSpec(req JobRequest) openload.Spec {
	return openload.Spec{
		Workload:    req.Workload,
		Arrival:     req.Arrival,
		RatePerK:    req.RatePerKCycle,
		Requests:    req.Requests,
		Seed:        req.Seed,
		MaxInFlight: req.MaxInFlight,
	}
}

// maxOpenRequests bounds one open job's arrival count: the request
// carries a free parameter that scales simulation work, and a bounded
// service must bound it upfront rather than let the watchdog find out.
const maxOpenRequests = 4096

// ErrorJSON is the structured error body for every non-200 response.
// Kind is one of: invalid, overload, quarantined, draining, panic,
// deadline, timeout, internal.
type ErrorJSON struct {
	Error      string `json:"error"`
	Kind       string `json:"kind"`
	Config     string `json:"config,omitempty"`
	App        string `json:"app,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

// cellState tracks one job cell's health for poison containment.
type cellState struct {
	failures    int
	quarantined bool
	lastErr     string
}

// job is one accepted request moving through the pool.
type job struct {
	req  JobRequest
	size apps.Size
	key  string

	done   chan struct{}
	once   sync.Once
	status int
	body   []byte // success payload (canonical result JSON)
	errRes *ErrorJSON
	source string // "ran" or "store", for the X-Simd-Result header
}

// finish publishes the job's outcome exactly once.
func (j *job) finish(status int, body []byte, errRes *ErrorJSON, source string) {
	j.once.Do(func() {
		j.status, j.body, j.errRes, j.source = status, body, errRes, source
		close(j.done)
	})
}

// Server is the simulation service. Create with NewServer, start the
// pool with Start, mount Handler on an http.Server, and stop with
// Drain.
type Server struct {
	cfg   Config
	store *store.Store // nil when the disk tier is disabled
	queue chan *job
	quit  chan struct{} // closed at the end of Drain: workers + waiters bail

	baseCtx    context.Context // parent of every job context; Drain cancels it
	baseCancel context.CancelFunc

	draining atomic.Bool
	open     atomic.Int64 // accepted jobs not yet finished (queued + running)
	inflight atomic.Int64 // jobs currently simulating

	mu     sync.Mutex
	suites map[string]*bench.Suite
	cells  map[string]*cellState

	wg sync.WaitGroup // worker pool

	drainOnce sync.Once
	drainRep  DrainReport

	accepted    atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	rejected    atomic.Uint64
	quarantined atomic.Uint64 // requests refused because their cell is poisoned
}

// maxSuites bounds the in-memory suite cache across distinct
// (size, grain, scenario, seed, deadline) settings; beyond it new
// settings get throwaway suites and lean on the disk store for reuse.
const maxSuites = 64

// NewServer builds the service (and opens/creates its store directory).
// Call Start before serving traffic.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Shards > machine.MaxShards {
		return nil, fmt.Errorf("serve: %d shards exceeds the %d-shard kernel limit", cfg.Shards, machine.MaxShards)
	}
	if cfg.Shards > 1 {
		if budget := runtime.NumCPU() / cfg.Shards; cfg.Workers > budget {
			cfg.Workers = budget
			if cfg.Workers < 1 {
				cfg.Workers = 1
			}
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	s := &Server{
		cfg:    cfg,
		queue:  make(chan *job, cfg.QueueDepth),
		quit:   make(chan struct{}),
		suites: make(map[string]*bench.Suite),
		cells:  make(map[string]*cellState),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	return s, nil
}

// Store exposes the disk tier (nil when disabled); tests and the smoke
// harness use it.
func (s *Server) Store() *store.Store { return s.store }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.quit:
					return
				case j := <-s.queue:
					s.inflight.Add(1)
					s.runJob(j)
					s.inflight.Add(-1)
				}
			}
		}()
	}
}

// DrainReport says how a drain went.
type DrainReport struct {
	// Clean is true when every accepted job finished (or was answered)
	// and the pool exited inside the budget.
	Clean bool
	// Cancelled counts jobs hard-cancelled or refused mid-drain.
	Cancelled int
}

// Drain performs the graceful-shutdown sequence: stop admitting, give
// queued and in-flight jobs up to budget to finish, then hard-cancel
// (kernel interrupt) whatever is left and fail still-queued jobs with
// a draining error so no caller is left hanging. It returns once the
// pool has exited (bounded by a short grace period after the budget).
// Repeated calls return the first drain's report.
func (s *Server) Drain(budget time.Duration) DrainReport {
	s.drainOnce.Do(func() { s.drainRep = s.drain(budget) })
	return s.drainRep
}

func (s *Server) drain(budget time.Duration) DrainReport {
	s.draining.Store(true)
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) && s.open.Load() > 0 {
		time.Sleep(2 * time.Millisecond)
	}

	var rep DrainReport
	// Hard phase: interrupt in-flight kernels, bounce queued jobs.
	s.baseCancel()
	for {
		select {
		case j := <-s.queue:
			rep.Cancelled++
			j.finish(http.StatusServiceUnavailable, nil, &ErrorJSON{
				Error: "server draining", Kind: "draining",
				Config: j.req.Config, App: j.req.App,
			}, "")
			s.open.Add(-1)
			s.failed.Add(1)
		default:
			goto swept
		}
	}
swept:
	close(s.quit)
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		rep.Clean = rep.Cancelled == 0 && s.open.Load() == 0
	case <-time.After(5 * time.Second):
		// A worker is wedged somewhere no interrupt reaches (should be
		// impossible: simulations honour interrupts). Report dirty; the
		// process is exiting anyway.
	}
	rep.Cancelled += int(s.inflight.Load())
	return rep
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/v1/configs", s.handleConfigs)
	mux.HandleFunc("/v1/apps", s.handleApps)
	return mux
}

// writeErr emits a structured error response.
func writeErr(w http.ResponseWriter, status int, e *ErrorJSON) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.RetryAfter))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(e)
}

// jobKey is the canonical, restart-stable cell address: it keys the
// disk store and the quarantine table. Deadlines and verification are
// deliberately excluded — they never change a successful result's
// bytes.
func jobKey(req JobRequest) string {
	if req.Kind == "open" {
		return strings.Join([]string{
			"v1-open", req.Config, openSpec(req).Key(),
			req.Faults, fmt.Sprintf("%d", req.FaultSeed),
		}, "|")
	}
	return strings.Join([]string{
		"v1", req.Config, req.App, req.Size,
		fmt.Sprintf("%d", req.Grain), req.Faults, fmt.Sprintf("%d", req.FaultSeed),
	}, "|")
}

// validate canonicalizes and checks a request against the registries
// every CLI entry point uses: machine.Lookup, apps.ByName,
// apps.ParseSize, fault.Lookup.
func validate(req *JobRequest) (apps.Size, *ErrorJSON) {
	fail := func(err error) (apps.Size, *ErrorJSON) {
		return 0, &ErrorJSON{Error: err.Error(), Kind: "invalid", Config: req.Config, App: req.App}
	}
	if _, err := machine.Lookup(req.Config); err != nil {
		return fail(err)
	}
	switch req.Kind {
	case "", "run":
	case "open":
		if req.App != "" || req.Size != "" || req.Grain != 0 {
			return fail(fmt.Errorf("serve: open jobs take workload/arrival, not app/size/grain"))
		}
		if req.Requests > maxOpenRequests {
			return fail(fmt.Errorf("serve: open job requests %d exceeds the per-job cap %d",
				req.Requests, maxOpenRequests))
		}
		if err := openSpec(*req).Validate(); err != nil {
			return fail(err)
		}
		if req.Faults == "" {
			req.FaultSeed = 0
		} else {
			if _, err := fault.Lookup(req.Faults); err != nil {
				return fail(err)
			}
			if req.FaultSeed == 0 {
				req.FaultSeed = 1
			}
		}
		return 0, nil
	default:
		return fail(fmt.Errorf("serve: unknown job kind %q (have run, open)", req.Kind))
	}
	if _, err := apps.ByName(req.App); err != nil {
		return fail(err)
	}
	size, err := apps.ParseSize(req.Size)
	if err != nil {
		return fail(err)
	}
	if req.Grain < 0 {
		return fail(fmt.Errorf("serve: negative grain %d", req.Grain))
	}
	if req.Faults == "" {
		req.FaultSeed = 0
	} else {
		if _, err := fault.Lookup(req.Faults); err != nil {
			return fail(err)
		}
		if req.FaultSeed == 0 {
			req.FaultSeed = 1 // the CLIs' -fault-seed default
		}
	}
	return size, nil
}

// handleJobs is the synchronous job endpoint: validate, serve from the
// store if possible, admit into the bounded queue, wait for the result.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, &ErrorJSON{Error: "POST only", Kind: "invalid"})
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, &ErrorJSON{Error: "server draining", Kind: "draining"})
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, &ErrorJSON{Error: "bad request body: " + err.Error(), Kind: "invalid"})
		return
	}
	size, errRes := validate(&req)
	if errRes != nil {
		writeErr(w, http.StatusBadRequest, errRes)
		return
	}
	key := jobKey(req)

	// Disk tier first: a verified stored result needs no pool slot and
	// no quarantine decision — stored bytes are from a past success,
	// which also means the cell is healthy: clear its failure streak so
	// transient pre-store failures cannot quarantine a cell the store
	// can answer for.
	if s.store != nil {
		if payload, ok := s.store.Get(key); ok {
			s.accepted.Add(1)
			s.completed.Add(1)
			s.cellRecovered(key)
			writeResult(w, payload, "store", key)
			return
		}
	}

	if msg, quarantined := s.cellQuarantined(key); quarantined {
		s.quarantined.Add(1)
		writeErr(w, http.StatusUnprocessableEntity, &ErrorJSON{
			Error: fmt.Sprintf("cell quarantined after repeated failures (last: %s)", msg),
			Kind:  "quarantined", Config: req.Config, App: req.App,
		})
		return
	}

	j := &job{req: req, size: size, key: key, done: make(chan struct{})}
	select {
	case s.queue <- j:
		s.accepted.Add(1)
		s.open.Add(1)
	default:
		s.rejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, &ErrorJSON{
			Error: "queue full", Kind: "overload",
			Config: req.Config, App: req.App, RetryAfter: 1,
		})
		return
	}

	select {
	case <-j.done:
		if j.errRes != nil {
			writeErr(w, j.status, j.errRes)
			return
		}
		writeResult(w, j.body, j.source, key)
	case <-s.quit:
		// Drain ended and this job was neither run nor swept (it raced
		// past the admission check); answer rather than hang.
		writeErr(w, http.StatusServiceUnavailable, &ErrorJSON{Error: "server draining", Kind: "draining"})
	case <-r.Context().Done():
		// Client gone. The worker still finishes the job so the result
		// lands in the caches for the retry.
	}
}

// writeResult emits a success payload with provenance headers.
func writeResult(w http.ResponseWriter, payload []byte, source, key string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Simd-Result", source)
	w.Header().Set("X-Simd-Key", key)
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// suiteFor returns the (possibly shared) suite whose settings match the
// request.
func (s *Server) suiteFor(req JobRequest, size apps.Size) *bench.Suite {
	key := fmt.Sprintf("%d|%d|%s|%d|%d", size, req.Grain, req.Faults, req.FaultSeed, req.DeadlineCycles)
	s.mu.Lock()
	defer s.mu.Unlock()
	if su, ok := s.suites[key]; ok {
		return su
	}
	su := bench.NewSuite(size)
	su.Grain = req.Grain
	su.Verify = !s.cfg.NoVerify
	su.FaultScenario = req.Faults
	su.FaultSeed = req.FaultSeed
	deadline := req.DeadlineCycles
	if deadline == 0 {
		deadline = s.cfg.DeadlineCycles
	}
	su.Deadline = sim.Time(deadline)
	su.Shards = s.cfg.Shards
	su.ShardExec = s.cfg.ShardExec
	if s.cfg.suiteHook != nil {
		s.cfg.suiteHook(su)
	}
	if len(s.suites) < maxSuites {
		s.suites[key] = su
	}
	return su
}

// runJob executes one job on a worker: simulate (or recall), persist,
// classify failures, and update the cell's quarantine state.
func (s *Server) runJob(j *job) {
	defer s.open.Add(-1)
	ctx := s.baseCtx
	if s.cfg.WallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.WallTimeout)
		defer cancel()
	}
	suite := s.suiteFor(j.req, j.size)
	var payload []byte
	var err error
	if j.req.Kind == "open" {
		payload, err = suite.OpenResultJSON(ctx, j.req.Config, j.req.Faults, j.req.FaultSeed, openSpec(j.req))
	} else {
		payload, err = suite.ResultJSON(ctx, j.req.Config, j.req.App)
	}
	if err != nil {
		s.failed.Add(1)
		kind, status := classify(err)
		s.cellFailed(j.key, err)
		j.finish(status, nil, &ErrorJSON{
			Error: err.Error(), Kind: kind,
			Config: j.req.Config, App: j.req.App,
		}, "")
		return
	}
	s.completed.Add(1)
	s.cellRecovered(j.key)
	if s.store != nil {
		// Best-effort: a failed write costs only a future recompute, and
		// the store's error counter surfaces it in /healthz.
		s.store.Put(j.key, payload)
	}
	j.finish(http.StatusOK, payload, nil, "ran")
}

// classify maps a simulation error to its structured kind and HTTP
// status.
func classify(err error) (kind string, status int) {
	msg := err.Error()
	// First line only: watchdog errors carry a multi-line machine dump
	// whose counters ("0 cancelled") must not sway the classification.
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	switch {
	case strings.Contains(msg, "panic"):
		return "panic", http.StatusInternalServerError
	// Interrupts before deadlines: a wall-clock interrupt's reason often
	// embeds "context deadline exceeded", but it is a timeout, not a
	// simulated-cycle watchdog expiry.
	case strings.Contains(msg, "interrupted") || strings.Contains(msg, "cancel"):
		return "timeout", http.StatusGatewayTimeout
	case strings.Contains(msg, "deadline"):
		return "deadline", http.StatusGatewayTimeout
	default:
		return "internal", http.StatusInternalServerError
	}
}

// cellQuarantined reports whether key's cell is poisoned.
func (s *Server) cellQuarantined(key string) (lastErr string, quarantined bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cells[key]
	if c == nil || !c.quarantined {
		return "", false
	}
	return c.lastErr, true
}

// cellFailed records one failure and quarantines the cell when it
// crosses the threshold.
func (s *Server) cellFailed(key string, err error) {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i] // first line only; dumps stay in the job response
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cells[key]
	if c == nil {
		c = &cellState{}
		s.cells[key] = c
	}
	c.failures++
	c.lastErr = msg
	if c.failures >= s.cfg.QuarantineAfter {
		c.quarantined = true
	}
}

// cellRecovered clears a cell's failure streak after a success.
func (s *Server) cellRecovered(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.cells[key]; c != nil {
		c.failures = 0
		c.quarantined = false
		c.lastErr = ""
	}
}

// Health is the /healthz body.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	Workers    int    `json:"workers"`
	Shards     int    `json:"shards,omitempty"`
	ShardExec  string `json:"shard_exec,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	Inflight   int64  `json:"inflight"`

	Accepted         uint64 `json:"jobs_accepted"`
	Completed        uint64 `json:"jobs_completed"`
	Failed           uint64 `json:"jobs_failed"`
	Rejected         uint64 `json:"jobs_rejected_overload"`
	QuarantineDenied uint64 `json:"jobs_rejected_quarantined"`

	Store        *store.Stats `json:"store,omitempty"`
	StoreEntries int          `json:"store_entries,omitempty"`

	Quarantined []string `json:"quarantined_cells,omitempty"`
}

// shardExecName renders the executor for /healthz: empty (omitted)
// unless jobs actually run sharded under the parallel executor.
func shardExecName(cfg Config) string {
	if cfg.Shards > 1 && cfg.ShardExec == sim.ExecParallel {
		return cfg.ShardExec.String()
	}
	return ""
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:           "ok",
		Workers:          s.cfg.Workers,
		Shards:           s.cfg.Shards,
		ShardExec:        shardExecName(s.cfg),
		QueueDepth:       s.cfg.QueueDepth,
		Queued:           len(s.queue),
		Inflight:         s.inflight.Load(),
		Accepted:         s.accepted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Rejected:         s.rejected.Load(),
		QuarantineDenied: s.quarantined.Load(),
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if s.store != nil {
		st := s.store.Stats()
		h.Store = &st
		if n, err := s.store.Len(); err == nil {
			h.StoreEntries = n
		}
	}
	s.mu.Lock()
	for key, c := range s.cells {
		if c.quarantined {
			h.Quarantined = append(h.Quarantined, key)
		}
	}
	s.mu.Unlock()
	sort.Strings(h.Quarantined)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleScenarios serves the fault registry — the same single source of
// truth the CLIs validate against.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type sc struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	var out []sc
	for _, scenario := range fault.Scenarios() {
		out = append(out, sc{scenario.Name, scenario.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(machine.Names())
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	type app struct {
		Name         string `json:"name"`
		Method       string `json:"method"`
		DefaultGrain int    `json:"default_grain"`
	}
	var out []app
	for _, a := range apps.All() {
		out = append(out, app{a.Name, a.Method, a.DefaultGrain})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
