package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/fault"
)

// testCfg is the cheap 8-core DTS machine all service tests run on.
const testCfg = "bT8/HCC-DTS-gwb"

// newTestServer builds, starts, and tears down a server around cfg.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(2 * time.Second)
	})
	return s, ts
}

// postJob POSTs one job and returns the response with its body read.
func postJob(t *testing.T, url string, req JobRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeErr(t *testing.T, body []byte) ErrorJSON {
	t.Helper()
	var e ErrorJSON
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not ErrorJSON: %v\n%s", err, body)
	}
	return e
}

// TestJobByteIdentity is the serving acceptance test: the API's bytes
// for a tuple equal `paperbench -json`'s bytes for the same tuple, and
// a cold-started daemon reading the warm store serves the same bytes
// again.
func TestJobByteIdentity(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty"}

	s, ts := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	resp, ran := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job failed: %d\n%s", resp.StatusCode, ran)
	}
	if got := resp.Header.Get("X-Simd-Result"); got != "ran" {
		t.Fatalf("first request provenance = %q, want ran", got)
	}

	// The CLI path: same tuple through the suite's -json export.
	cli := bench.NewSuite(apps.Empty)
	if _, err := cli.Run(testCfg, "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := cli.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ran, want.Bytes()) {
		t.Fatalf("API bytes diverge from CLI bytes:\n--- api ---\n%s\n--- cli ---\n%s", ran, want.String())
	}

	// Warm daemon, second request: served from memory or store, same bytes.
	resp, again := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(again, ran) {
		t.Fatalf("warm daemon diverged: %d\n%s", resp.StatusCode, again)
	}
	ts.Close()
	s.Drain(2 * time.Second)

	// Cold daemon, warm store: byte-identical without simulating. The
	// suiteHook panics to prove no simulation can run.
	cold, tsCold := newTestServer(t, Config{
		Workers: 2, StoreDir: dir,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(string, string) { panic("cold daemon must not simulate") }
		},
	})
	resp, stored := postJob(t, tsCold.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold daemon miss on a warm store: %d\n%s", resp.StatusCode, stored)
	}
	if got := resp.Header.Get("X-Simd-Result"); got != "store" {
		t.Fatalf("cold daemon provenance = %q, want store", got)
	}
	if !bytes.Equal(stored, ran) {
		t.Fatalf("cold daemon bytes diverge from the original run")
	}
	if st := cold.Store().Stats(); st.Hits == 0 {
		t.Fatalf("cold daemon never hit its store: %+v", st)
	}
}

// TestValidation: malformed tuples are 400s with kind "invalid" before
// any pool slot is spent, and the method is enforced.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []JobRequest{
		{Config: "no-such-machine", App: "cilk5-mt", Size: "empty"},
		{Config: testCfg, App: "no-such-app", Size: "empty"},
		{Config: testCfg, App: "cilk5-mt", Size: "galactic"},
		{Config: testCfg, App: "cilk5-mt", Size: "empty", Faults: "no-such-scenario"},
		{Config: testCfg, App: "cilk5-mt", Size: "empty", Grain: -1},
	}
	for i, req := range cases {
		resp, body := postJob(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400\n%s", i, resp.StatusCode, body)
			continue
		}
		if e := decodeErr(t, body); e.Kind != "invalid" {
			t.Errorf("case %d: kind %q, want invalid", i, e.Kind)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
}

// TestPanicIsolationAndQuarantine: a poison job panics, fails alone
// with a structured error while the daemon keeps serving; after
// QuarantineAfter failures its cell is refused upfront without running.
func TestPanicIsolationAndQuarantine(t *testing.T) {
	var poisonRuns atomic.Int32
	_, ts := newTestServer(t, Config{
		Workers: 2, QuarantineAfter: 2,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(cfg, app string) {
				if app == "cilk5-cs" {
					poisonRuns.Add(1)
					panic("deliberate poison job")
				}
			}
		},
	})
	poison := JobRequest{Config: testCfg, App: "cilk5-cs", Size: "empty"}

	for i := 0; i < 2; i++ {
		resp, body := postJob(t, ts.URL, poison)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("poison attempt %d: status %d, want 500\n%s", i, resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Kind != "panic" || !strings.Contains(e.Error, "panic in cilk5-cs") {
			t.Fatalf("poison attempt %d: bad error: %+v", i, e)
		}
	}

	// Threshold crossed: the cell is quarantined, refused without running.
	resp, body := postJob(t, ts.URL, poison)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined cell: status %d, want 422\n%s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Kind != "quarantined" {
		t.Fatalf("quarantined cell: kind %q, want quarantined", e.Kind)
	}
	if got := poisonRuns.Load(); got != 2 {
		t.Fatalf("poison cell ran %d times, want 2 (quarantine must not run it)", got)
	}

	// The daemon survived it all: a healthy cell still completes.
	resp, body = postJob(t, ts.URL, JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy job after panics: status %d\n%s", resp.StatusCode, body)
	}

	// /healthz accounts for the carnage and names the cell.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if h.Failed != 2 || h.QuarantineDenied != 1 || len(h.Quarantined) != 1 {
		t.Fatalf("healthz counters off: %+v", h)
	}
	if !strings.Contains(h.Quarantined[0], "cilk5-cs") {
		t.Fatalf("quarantined cell key %q does not name the app", h.Quarantined[0])
	}
}

// TestBackpressure: with a single worker wedged and a single queue
// slot taken, the next job is rejected with 429 + Retry-After instead
// of queueing unboundedly.
func TestBackpressure(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(string, string) {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	released := false
	defer func() {
		if !released {
			close(release) // unwedge the worker so cleanup's Drain is fast
		}
	}()

	job := func(app string) JobRequest {
		return JobRequest{Config: testCfg, App: app, Size: "empty"}
	}
	results := make(chan int, 2)
	go func() {
		resp, _ := postJob(t, ts.URL, job("cilk5-cs"))
		results <- resp.StatusCode
	}()
	<-entered // worker wedged
	go func() {
		resp, _ := postJob(t, ts.URL, job("cilk5-mt"))
		results <- resp.StatusCode
	}()
	// Wait until the second job occupies the one queue slot.
	deadline := time.After(2 * time.Second)
	for {
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		json.NewDecoder(hr.Body).Decode(&h)
		hr.Body.Close()
		if h.Queued == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("second job never reached the queue")
		case <-time.After(2 * time.Millisecond):
		}
	}

	resp, body := postJob(t, ts.URL, job("cilk5-nq"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity job: status %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if e := decodeErr(t, body); e.Kind != "overload" {
		t.Fatalf("429 kind %q, want overload", e.Kind)
	}

	close(release)
	released = true
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("wedged/queued job finished with %d, want 200", code)
		}
	}
}

// TestWallTimeout: a job that exceeds the wall-clock budget is killed
// by kernel interrupt and reported as a 504 timeout; the worker and
// daemon survive.
func TestWallTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, WallTimeout: 250 * time.Millisecond,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(cfg, app string) {
				if app == "cilk5-cs" {
					time.Sleep(time.Second) // blow the wall budget
				}
			}
		},
	})
	resp, body := postJob(t, ts.URL, JobRequest{Config: testCfg, App: "cilk5-cs", Size: "empty"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow job: status %d, want 504\n%s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Kind != "timeout" {
		t.Fatalf("slow job kind %q, want timeout: %+v", e.Kind, e)
	}
	// The pool is not poisoned: the next (fast) job completes.
	resp, body = postJob(t, ts.URL, JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast job after a timeout: status %d\n%s", resp.StatusCode, body)
	}
}

// TestJobDeadlineCycles: a per-job simulated-cycle deadline fails that
// job with a 504 "deadline" error carrying the watchdog dump.
func TestJobDeadlineCycles(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJob(t, ts.URL, JobRequest{
		Config: testCfg, App: "cilk5-cs", Size: "test", DeadlineCycles: 10,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("10-cycle job: status %d, want 504\n%s", resp.StatusCode, body)
	}
	e := decodeErr(t, body)
	if e.Kind != "deadline" || !strings.Contains(e.Error, "kernel:") {
		t.Fatalf("deadline error missing kind/dump: %+v", e)
	}
}

// TestDrain: draining stops admission (503), bounces queued jobs, and
// hard-cancels in-flight work after the budget so the pool still exits.
func TestDrain(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := NewServer(Config{
		Workers: 1, QueueDepth: 4,
		suiteHook: func(su *bench.Suite) {
			su.SimHook = func(string, string) {
				once.Do(func() { close(entered) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	submit := func(app string) {
		go func() {
			resp, _ := postJob(t, ts.URL, JobRequest{Config: testCfg, App: app, Size: "empty"})
			codes <- resp.StatusCode
		}()
	}
	submit("cilk5-cs") // wedges the one worker
	<-entered
	submit("cilk5-mt") // sits in the queue
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	done := make(chan DrainReport, 1)
	go func() { done <- s.Drain(20 * time.Millisecond) }()
	// Give the drain time to pass its budget and hard-cancel, then free
	// the wedged worker; its (now cancelled) simulation dies instantly.
	time.Sleep(120 * time.Millisecond)
	resp, body := postJob(t, ts.URL, JobRequest{Config: testCfg, App: "cilk5-nq", Size: "empty"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job during drain: status %d, want 503\n%s", resp.StatusCode, body)
	}
	close(release)

	rep := <-done
	if rep.Clean {
		t.Fatal("drain with wedged+queued jobs reported Clean")
	}
	if rep.Cancelled == 0 {
		t.Fatal("drain cancelled nothing despite a queued job")
	}
	got := map[int]int{}
	for i := 0; i < 2; i++ {
		got[<-codes]++
	}
	if got[http.StatusServiceUnavailable] == 0 && got[http.StatusGatewayTimeout] == 0 {
		t.Fatalf("drained jobs got %v, want 503s/504s", got)
	}
}

// TestDrainClean: with nothing in flight, Drain is immediate and Clean.
func TestDrainClean(t *testing.T) {
	s, err := NewServer(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJob(t, ts.URL, JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job failed: %d\n%s", resp.StatusCode, body)
	}
	if rep := s.Drain(2 * time.Second); !rep.Clean || rep.Cancelled != 0 {
		t.Fatalf("idle drain not clean: %+v", rep)
	}
}

// TestRegistryEndpoints: the discovery endpoints serve the same
// registries the validators use — including every fault scenario.
func TestRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	var scenarios []struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	get("/v1/scenarios", &scenarios)
	if len(scenarios) != len(fault.Scenarios()) {
		t.Fatalf("scenarios endpoint has %d entries, registry has %d", len(scenarios), len(fault.Scenarios()))
	}
	found := false
	for _, sc := range scenarios {
		if sc.Name == "chaos-lossy-all" {
			found = sc.Desc != ""
		}
	}
	if !found {
		t.Fatal("chaos-lossy-all missing (or undescribed) in /v1/scenarios")
	}
	var configs []string
	get("/v1/configs", &configs)
	if len(configs) == 0 {
		t.Fatal("no configs served")
	}
	var appList []struct {
		Name string `json:"name"`
	}
	get("/v1/apps", &appList)
	if len(appList) != len(apps.All()) {
		t.Fatalf("apps endpoint has %d entries, registry has %d", len(appList), len(apps.All()))
	}
}

// TestFaultJobRuns: a job with a fault scenario validates against the
// registry and completes end to end; its key (and so its cache cell) is
// distinct from the fault-free run.
func TestFaultJobRuns(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	faulty := JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty", Faults: "chaos-lossy-all"}
	resp, body := postJob(t, ts.URL, faulty)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulty job: status %d\n%s", resp.StatusCode, body)
	}
	var runs []map[string]any
	if err := json.Unmarshal(body, &runs); err != nil || len(runs) != 1 {
		t.Fatalf("result is not a one-run JSON array: %v\n%s", err, body)
	}
	// Seed defaulting matches the CLIs: omitted seed ran as seed 1.
	if key := resp.Header.Get("X-Simd-Key"); !strings.Contains(key, "|chaos-lossy-all|1") {
		t.Fatalf("fault job key %q did not default the seed to 1", key)
	}
	clean := JobRequest{Config: testCfg, App: "cilk5-mt", Size: "empty"}
	cleanResp, _ := postJob(t, ts.URL, clean)
	if jobKey(faulty) == jobKey(clean) {
		t.Fatal("faulty and clean tuples share a cache key")
	}
	if cleanResp.StatusCode != http.StatusOK {
		t.Fatalf("clean job: status %d", cleanResp.StatusCode)
	}
	if n, _ := s.Store().Len(); n != 2 {
		t.Fatalf("store has %d entries, want 2 distinct cells", n)
	}
}
