// Package cpu models the two core types of the big.TINY system (paper
// Table II): tiny cores (single-issue, in-order, single-cycle execute
// for non-memory instructions, blocking memory ops) and big cores
// (4-way out-of-order, approximated by superscalar issue plus partial
// overlap of memory stalls).
//
// Every cycle a core spends is attributed to one of the paper's
// Figure 7 categories (Inst Fetch / Data Load / Data Store / Atomic /
// Flush / Others), which is how the execution-time breakdown is
// regenerated.
package cpu

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/fault"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/uli"
)

// Class is a Figure 7 execution-time category.
type Class int

// Cycle attribution categories (paper Fig. 7 legend).
const (
	ClassInstFetch Class = iota
	ClassLoad
	ClassStore
	ClassAtomic
	ClassFlush
	ClassOther
	NumClasses
)

var classNames = [NumClasses]string{
	"InstFetch", "DataLoad", "DataStore", "Atomic", "Flush", "Others",
}

// String returns the category's display name.
func (c Class) String() string { return classNames[c] }

// Config selects a core variant.
type Config struct {
	// Big selects the out-of-order model.
	Big bool
	// IssueWidth is instructions per cycle for non-memory work
	// (4 for big, 1 for tiny).
	IssueWidth int
	// MemOverlap divides miss stalls beyond the issue latency,
	// approximating out-of-order memory-level parallelism (1 = fully
	// blocking).
	MemOverlap int
	// L1IBytes sizes the (direct-mapped) instruction cache model.
	L1IBytes int
	// ULIEntryLat is the pipeline-drain cost before vectoring to a ULI
	// handler (a few cycles tiny, 10-50 big; paper §VI-C).
	ULIEntryLat sim.Time
}

// TinyConfig returns the paper's tiny-core parameters.
func TinyConfig() Config {
	return Config{IssueWidth: 1, MemOverlap: 1, L1IBytes: 4 * 1024, ULIEntryLat: 4}
}

// BigConfig returns the paper's big-core parameters. The core is
// 4-way out-of-order; the sustained advantage over the in-order tiny
// core is modelled as 3 IPC on non-memory work plus 3-way overlap of
// memory stalls, which reproduces the paper's observed single-big-core
// speedups (O3x1 geomean ~2.6x over the serial in-order baseline,
// Table III) better than assuming a perfect 4x.
func BigConfig() Config {
	return Config{Big: true, IssueWidth: 3, MemOverlap: 3, L1IBytes: 64 * 1024, ULIEntryLat: 30}
}

// Core is one processor. Its methods must be called from the simulated
// thread (sim.Proc) bound to it.
type Core struct {
	ID  int
	Cfg Config
	L1D *cache.L1
	ULI *uli.Unit // nil when the config has no ULI hardware

	// Faults, when non-nil, can turn this core into a straggler by
	// multiplying its compute time, or fail-stop it mid-run (see
	// internal/fault). FaultLane is the core's index among fault
	// candidates (the tiny cores); -1 exempts the core.
	Faults    *fault.Injector
	FaultLane int
	// wentOffline latches the fail-stop transition so it is recorded
	// (and reported) exactly once.
	wentOffline bool

	proc *sim.Proc

	Cycles [NumClasses]uint64
	Insts  uint64

	// Instruction-cache model: a direct-mapped tag array over synthetic
	// per-function code regions.
	iTags   []uint64
	curFunc int
	curPC   uint64 // byte offset within the current function
	curSize uint64 // footprint of the current function
	// fracIssue accumulates sub-cycle issue debt for wide issue.
	fracIssue int

	// sbuf holds completion times of outstanding stores in a fixed
	// inline buffer (sbLen entries live). Even simple in-order cores
	// have a store buffer: stores retire in the background and the core
	// stalls only when the buffer fills. Atomics, flushes, and
	// invalidates act as fences and drain it. Entry order carries no
	// meaning — every consumer treats the buffer as a multiset (filter
	// retired, remove min when full, drain max) — so maintenance never
	// allocates or splices.
	sbuf  [sbDepth]sim.Time
	sbLen int
}

// sbDepth is the store buffer capacity.
const sbDepth = 8

// iBlockBytes is the instruction fetch granularity.
const iBlockBytes = 64

// iMissPenalty is the fetch-miss stall (an L2-side fill; instruction
// fetches are modelled off the data network).
const iMissPenalty = 15

// New creates a core. Bind must be called before use.
func New(id int, cfg Config, l1d *cache.L1, u *uli.Unit) *Core {
	nblocks := cfg.L1IBytes / iBlockBytes
	if nblocks < 1 {
		nblocks = 1
	}
	c := &Core{ID: id, Cfg: cfg, L1D: l1d, ULI: u, FaultLane: -1, iTags: make([]uint64, nblocks)}
	for i := range c.iTags {
		c.iTags[i] = ^uint64(0)
	}
	c.curSize = 1024
	if u != nil {
		u.EntryLat = cfg.ULIEntryLat
	}
	return c
}

// Bind attaches the simulated thread running on this core.
func (c *Core) Bind(p *sim.Proc) {
	c.proc = p
	if c.ULI != nil {
		c.ULI.Bind(p)
	}
}

// Proc returns the bound simulated thread.
func (c *Core) Proc() *sim.Proc { return c.proc }

// Now returns the core's current cycle.
func (c *Core) Now() sim.Time { return c.proc.Now() }

// attribute advances simulated time to done and charges the elapsed
// cycles to class.
func (c *Core) attribute(class Class, done sim.Time) {
	now := c.proc.Now()
	if done > now {
		c.Cycles[class] += uint64(done - now)
		c.proc.WaitUntil(done)
	}
}

// poll gives the ULI unit a delivery opportunity (an interruptible
// instruction boundary).
func (c *Core) poll() {
	if c.ULI != nil {
		before := c.proc.Now()
		c.ULI.Poll(c.proc)
		if after := c.proc.Now(); after > before {
			// Handler entry/response time not charged inside the handler
			// body lands in Others.
			c.Cycles[ClassOther] += uint64(after - before)
		}
	}
}

// idleChunk bounds how long IdleUntil sleeps between interrupt polls.
const idleChunk = 64

// IdleUntil advances the core to cycle t (a no-op when t has passed),
// attributing the wait to Others. The sleep is chopped into short
// chunks with a ULI poll at every boundary, so a core idling between
// open-system arrivals still services incoming steal requests promptly
// — a monolithic sleep would hold DTS thieves hostage for its whole
// duration. Handler time spent inside a poll counts toward t.
func (c *Core) IdleUntil(t sim.Time) {
	for {
		c.poll()
		now := c.proc.Now()
		if now >= t {
			return
		}
		next := now + idleChunk
		if next > t {
			next = t
		}
		c.attribute(ClassOther, next)
	}
}

// Offline reports whether this core has fail-stopped (fault scenario
// core offlining). The first true result latches the transition and
// records the injection. The runtime checks it at scheduling-loop
// boundaries and, on true, abandons the core forever; survivors reclaim
// its queued work.
func (c *Core) Offline() bool {
	if c.wentOffline {
		return true
	}
	if c.Faults.CoreOffline(c.FaultLane, c.proc.Now()) {
		c.wentOffline = true
		c.Faults.Fired(fault.CoreOffline)
		return true
	}
	return false
}

// SetFunc declares that subsequent Compute instructions belong to the
// function fid, whose synthetic code footprint is footprintBytes.
// Used by the runtime when switching between runtime code and task
// bodies, so the instruction-cache model sees realistic code reuse.
func (c *Core) SetFunc(fid int, footprintBytes int) {
	if footprintBytes < iBlockBytes {
		footprintBytes = iBlockBytes
	}
	if fid != c.curFunc {
		c.curFunc = fid
		c.curPC = 0
	}
	c.curSize = uint64(footprintBytes)
}

// Compute executes n non-memory instructions.
func (c *Core) Compute(n int) {
	if n <= 0 {
		return
	}
	c.poll()
	c.Insts += uint64(n)
	// Issue: IssueWidth instructions per cycle, with sub-cycle debt
	// carried across calls.
	total := n + c.fracIssue
	cycles := total / c.Cfg.IssueWidth
	c.fracIssue = total % c.Cfg.IssueWidth
	// A straggler core issues the same instructions more slowly.
	if extra := c.Faults.CPUStall(c.FaultLane, cycles); extra > 0 {
		cycles += extra
	}
	// Instruction fetch: walk the PC through the function's code
	// region, checking the I-cache at every block boundary.
	fetchStall := sim.Time(0)
	// Functions live ~1MB apart with a 37-block skew so that distinct
	// functions land at staggered direct-mapped sets instead of
	// systematically aliasing.
	base := uint64(c.curFunc) * (1<<20 + 37*iBlockBytes)
	pc := c.curPC
	for i := 0; i < n; i += iBlockBytes / 4 {
		blk := (base + pc) / iBlockBytes
		idx := int(blk) % len(c.iTags)
		if c.iTags[idx] != blk {
			c.iTags[idx] = blk
			fetchStall += iMissPenalty
		}
		pc = (pc + iBlockBytes) % c.curSize
	}
	c.curPC = pc
	now := c.proc.Now()
	c.attribute(ClassOther, now+sim.Time(cycles))
	if fetchStall > 0 {
		c.attribute(ClassInstFetch, c.proc.Now()+fetchStall)
	}
}

// shorten approximates out-of-order overlap: stalls beyond the issue
// latency are divided by MemOverlap.
func (c *Core) shorten(start, done sim.Time) sim.Time {
	if c.Cfg.MemOverlap <= 1 || done <= start {
		return done
	}
	const issueLat = 2
	lat := done - start
	if lat <= issueLat {
		return done
	}
	return start + issueLat + (lat-issueLat)/sim.Time(c.Cfg.MemOverlap)
}

// Load performs a timed load.
func (c *Core) Load(a mem.Addr) uint64 {
	c.poll()
	c.Insts++
	now := c.proc.Now()
	v, done := c.L1D.Load(now, a)
	c.attribute(ClassLoad, c.shorten(now, done))
	return v
}

// Store performs a timed store. The store issues in one cycle and
// retires in the background through the store buffer; the core stalls
// only when the buffer is full (waiting for the oldest store).
func (c *Core) Store(a mem.Addr, v uint64) {
	c.poll()
	c.Insts++
	now := c.proc.Now()
	done := c.L1D.Store(now, a, v)
	// Retire stores that completed.
	n := 0
	for i := 0; i < c.sbLen; i++ {
		if c.sbuf[i] > now {
			c.sbuf[n] = c.sbuf[i]
			n++
		}
	}
	c.sbLen = n
	stallUntil := now + 1
	if c.sbLen >= sbDepth {
		// Full: wait for the oldest outstanding store.
		oldest := 0
		for i := 1; i < c.sbLen; i++ {
			if c.sbuf[i] < c.sbuf[oldest] {
				oldest = i
			}
		}
		if c.sbuf[oldest] > stallUntil {
			stallUntil = c.sbuf[oldest]
		}
		c.sbLen--
		c.sbuf[oldest] = c.sbuf[c.sbLen]
	}
	if done > now+1 {
		c.sbuf[c.sbLen] = done
		c.sbLen++
	}
	c.attribute(ClassStore, stallUntil)
}

// drainStores waits for every outstanding store (fence semantics),
// charging the wait to class.
func (c *Core) drainStores(class Class) {
	done := c.proc.Now()
	for i := 0; i < c.sbLen; i++ {
		if c.sbuf[i] > done {
			done = c.sbuf[i]
		}
	}
	c.sbLen = 0
	c.attribute(class, done)
}

// Amo performs a timed atomic and returns the old value. Atomics
// serialize even on the big core (no overlap) and fence the store
// buffer.
func (c *Core) Amo(a mem.Addr, op cache.AmoOp, arg1, arg2 uint64) uint64 {
	c.poll()
	c.Insts++
	c.drainStores(ClassAtomic)
	now := c.proc.Now()
	old, done := c.L1D.Amo(now, a, op, arg1, arg2)
	c.attribute(ClassAtomic, done)
	return old
}

// Invalidate executes cache_invalidate (flash; cheap — charged to
// Others since the cost is in the later misses, not the operation).
func (c *Core) Invalidate() {
	c.poll()
	c.Insts++
	c.drainStores(ClassOther)
	done := c.L1D.Invalidate(c.proc.Now())
	c.attribute(ClassOther, done)
}

// Flush executes cache_flush (a fence: waits for all dirty data to
// reach the shared cache).
func (c *Core) Flush() {
	c.poll()
	c.Insts++
	c.drainStores(ClassFlush)
	done := c.L1D.Flush(c.proc.Now())
	c.attribute(ClassFlush, done)
}

// ULIEnable enables user-level interrupts (1 cycle).
func (c *Core) ULIEnable() {
	c.Insts++
	c.ULI.Enable()
	c.attribute(ClassOther, c.proc.Now()+1)
	c.poll() // a buffered request can deliver as soon as we re-enable
}

// ULIDisable disables user-level interrupts (1 cycle).
func (c *Core) ULIDisable() {
	c.Insts++
	c.ULI.Disable()
	c.attribute(ClassOther, c.proc.Now()+1)
}

// ULISendReq sends a steal request and blocks for the response.
func (c *Core) ULISendReq(victim int) (payload uint64, ok bool) {
	c.Insts++
	before := c.proc.Now()
	payload, ok = c.ULI.SendReq(c.proc, victim)
	c.Cycles[ClassOther] += uint64(c.proc.Now() - before)
	return payload, ok
}

// TotalCycles sums all attributed cycles.
func (c *Core) TotalCycles() uint64 {
	var s uint64
	for _, v := range c.Cycles {
		s += v
	}
	return s
}
