package cpu

import (
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/dram"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// rig builds a 2-core system (core 0 with cfg0, core 1 tiny MESI) for
// core-model tests.
func rig(t *testing.T, cfg Config, proto cache.Protocol) (*sim.Kernel, *Core, *cache.System) {
	t.Helper()
	k := sim.NewKernel()
	mesh := noc.NewMesh(2, 2)
	sys := cache.NewSystem(cache.Config{
		NumCores:      1,
		CoreNode:      []noc.NodeID{mesh.Node(0, 0)},
		BankNode:      []noc.NodeID{mesh.Node(1, 0)},
		L2SetsPerBank: 64,
		L2Ways:        8,
		MCs:           []*dram.Controller{dram.NewController("mc", dram.DefaultConfig())},
	}, mesh, mem.New())
	l1 := cache.NewL1(sys, 0, proto, cfg.L1IBytes, 2)
	core := New(0, cfg, l1, nil)
	return k, core, sys
}

func run(t *testing.T, k *sim.Kernel, core *Core, body func()) {
	t.Helper()
	k.NewProc("core", 0, func(p *sim.Proc) {
		core.Bind(p)
		body()
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestTinyComputeOneIPC(t *testing.T) {
	k, core, _ := rig(t, TinyConfig(), cache.MESI)
	run(t, k, core, func() {
		core.Compute(100)
	})
	if core.Cycles[ClassOther] != 100 {
		t.Fatalf("tiny compute cycles = %d, want 100", core.Cycles[ClassOther])
	}
	if core.Insts != 100 {
		t.Fatalf("insts = %d", core.Insts)
	}
}

func TestBigComputeWideIssue(t *testing.T) {
	k, core, _ := rig(t, BigConfig(), cache.MESI)
	run(t, k, core, func() {
		core.Compute(99)
	})
	want := uint64(99 / BigConfig().IssueWidth)
	if core.Cycles[ClassOther] != want {
		t.Fatalf("big compute cycles = %d, want %d", core.Cycles[ClassOther], want)
	}
}

func TestIssueDebtCarries(t *testing.T) {
	k, core, _ := rig(t, BigConfig(), cache.MESI)
	w := BigConfig().IssueWidth
	run(t, k, core, func() {
		for i := 0; i < 2*w; i++ {
			core.Compute(1) // 2*w single instructions at width w = 2 cycles
		}
	})
	if core.Cycles[ClassOther] != 2 {
		t.Fatalf("fractional issue cycles = %d, want 2", core.Cycles[ClassOther])
	}
}

func TestLoadStallAttribution(t *testing.T) {
	k, core, sys := rig(t, TinyConfig(), cache.MESI)
	a := sys.Mem().Alloc(64)
	sys.Mem().WriteWord(a, 55)
	var v1, v2 uint64
	run(t, k, core, func() {
		v1 = core.Load(a) // cold miss
		v2 = core.Load(a) // hit
	})
	if v1 != 55 || v2 != 55 {
		t.Fatalf("loads = %d,%d", v1, v2)
	}
	if core.Cycles[ClassLoad] < 20 {
		t.Fatalf("load cycles = %d; miss not charged", core.Cycles[ClassLoad])
	}
}

func TestBigOverlapsMissStalls(t *testing.T) {
	mkRun := func(cfg Config) uint64 {
		k, core, sys := rig(t, cfg, cache.MESI)
		base := sys.Mem().Alloc(64 * 64)
		run(t, k, core, func() {
			for i := 0; i < 32; i++ {
				core.Load(base + mem.Addr(i*64)) // all cold misses
			}
		})
		return core.Cycles[ClassLoad]
	}
	tiny := mkRun(TinyConfig())
	big := mkRun(BigConfig())
	if big*2 >= tiny {
		t.Fatalf("big core load stalls (%d) not much less than tiny (%d)", big, tiny)
	}
}

func TestAtomicNotOverlapped(t *testing.T) {
	k, core, sys := rig(t, BigConfig(), cache.GPUWB)
	a := sys.Mem().Alloc(64)
	run(t, k, core, func() {
		core.Amo(a, cache.AmoAdd, 1, 0)
	})
	if core.Cycles[ClassAtomic] < 10 {
		t.Fatalf("big-core L2 AMO cycles = %d; should pay full latency", core.Cycles[ClassAtomic])
	}
}

func TestFlushAttribution(t *testing.T) {
	k, core, sys := rig(t, TinyConfig(), cache.GPUWB)
	base := sys.Mem().Alloc(64 * 8)
	run(t, k, core, func() {
		for i := 0; i < 8; i++ {
			core.Store(base+mem.Addr(i*64), uint64(i))
		}
		core.Flush()
	})
	if core.Cycles[ClassFlush] == 0 {
		t.Fatal("flush cycles not attributed")
	}
}

func TestInstructionCacheColdVsWarm(t *testing.T) {
	k, core, _ := rig(t, TinyConfig(), cache.MESI)
	run(t, k, core, func() {
		core.SetFunc(1, 2048)
		core.Compute(512) // walks the 2KB footprint: cold fetch misses
		cold := core.Cycles[ClassInstFetch]
		if cold == 0 {
			t.Error("no cold instruction fetch misses")
		}
		core.Compute(512) // same code again: warm
		if core.Cycles[ClassInstFetch] != cold {
			t.Errorf("warm pass took fetch misses: %d -> %d", cold, core.Cycles[ClassInstFetch])
		}
	})
}

func TestInstructionCacheThrashing(t *testing.T) {
	// Tiny 4KB I$ cannot hold 8 x 2KB functions; big 64KB can.
	missesFor := func(cfg Config) uint64 {
		k, core, _ := rig(t, cfg, cache.MESI)
		run(t, k, core, func() {
			for pass := 0; pass < 3; pass++ {
				for f := 1; f <= 8; f++ {
					core.SetFunc(f, 2048)
					core.Compute(512)
				}
			}
		})
		return core.Cycles[ClassInstFetch]
	}
	tiny := missesFor(TinyConfig())
	big := missesFor(BigConfig())
	if tiny <= big {
		t.Fatalf("tiny I$ fetch stalls (%d) should exceed big (%d)", tiny, big)
	}
}

func TestTotalCyclesMatchesElapsed(t *testing.T) {
	k, core, sys := rig(t, TinyConfig(), cache.GPUWB)
	a := sys.Mem().Alloc(64)
	var end sim.Time
	run(t, k, core, func() {
		core.Compute(10)
		core.Load(a)
		core.Store(a, 3)
		core.Flush()
		core.Invalidate()
		end = core.Now()
	})
	if core.TotalCycles() != uint64(end) {
		t.Fatalf("attributed %d cycles, elapsed %d", core.TotalCycles(), end)
	}
}

func TestStoreBufferHidesMissLatency(t *testing.T) {
	// A single MESI store miss costs the core ~1 cycle (it retires in
	// the background); only a burst beyond the buffer depth stalls.
	k, core, sys := rig(t, TinyConfig(), cache.MESI)
	base := sys.Mem().Alloc(64 * 64)
	var first, burst uint64
	run(t, k, core, func() {
		core.Store(base, 1) // cold miss, buffered
		first = core.Cycles[ClassStore]
		for i := 1; i < 32; i++ {
			core.Store(base+mem.Addr(i*64), uint64(i))
		}
		burst = core.Cycles[ClassStore]
	})
	if first > 2 {
		t.Fatalf("single store miss stalled the core %d cycles", first)
	}
	if burst <= uint64(32) {
		t.Fatalf("store burst never back-pressured (total %d cycles)", burst)
	}
}

func TestAtomicDrainsStoreBuffer(t *testing.T) {
	k, core, sys := rig(t, TinyConfig(), cache.GPUWT)
	a := sys.Mem().Alloc(64)
	b := sys.Mem().Alloc(64)
	run(t, k, core, func() {
		core.Store(a, 7) // outstanding write-through
		core.Amo(b, cache.AmoAdd, 1, 0)
	})
	// The AMO must have waited for the store to reach the L2.
	if core.Cycles[ClassAtomic] < 10 {
		t.Fatalf("atomic did not fence the store buffer (%d cycles)", core.Cycles[ClassAtomic])
	}
}
