// Package store is a disk-backed, content-addressed result tier: a
// persistent cache under the bench suite's in-memory singleflight
// layer, designed crash-safe first.
//
// Entries are written atomically — payload and checksummed header go to
// a temp file, which is fsynced and then renamed over the final name —
// so a reader never observes a half-written entry under a live writer,
// and a daemon killed mid-write (kill -9 included) leaves either the
// old entry, the new entry, or an orphan temp file that lookups never
// touch. Reads verify the whole entry (magic, key echo, length,
// SHA-256 of the payload) and treat ANY mismatch — truncation, bit rot,
// a stranger's file under our name — as a miss: corrupt data is never
// served and never fatal, it just costs a recomputation.
//
// The address is the caller's key string (for the simulation service:
// the canonical (config, app, size, grain, scenario, seed) tuple);
// filenames are the key's SHA-256, so arbitrary key bytes never meet
// the filesystem's name rules.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"bigtiny/internal/atomicio"
)

// magic identifies entry files and versions the on-disk format.
var magic = [8]byte{'b', 't', 's', 't', 'o', 'r', 'e', '1'}

// maxKeyLen bounds the key-echo field so a corrupt length cannot make
// a reader allocate gigabytes.
const maxKeyLen = 1 << 16

// Stats are the store's observability counters (atomic; safe to read
// while the store serves traffic).
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"` // misses caused by a failed verification
	Puts    uint64 `json:"puts"`
	Errors  uint64 `json:"errors"` // failed writes (disk full, permissions, ...)
}

// Store is one on-disk result tier rooted at a directory. All methods
// are safe for concurrent use by any number of goroutines (and, thanks
// to rename atomicity, by cooperating processes sharing the root).
type Store struct {
	root string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	puts    atomic.Uint64
	errors  atomic.Uint64
}

// Open returns a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
		Errors:  s.errors.Load(),
	}
}

// pathFor maps a key to its entry file: content addressing by the
// key's SHA-256.
func (s *Store) pathFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.root, fmt.Sprintf("%x.res", sum))
}

// entry layout after the 8-byte magic, all integers big-endian:
//
//	u32 keyLen | key bytes | u64 payloadLen | 32-byte sha256(payload) | payload
//
// The key echo guards against hash collisions and hand-renamed files;
// the checksum guards the payload; the explicit length catches
// truncation AND trailing garbage (the file must end exactly where the
// payload does).

// Put atomically persists payload under key, replacing any previous
// entry. The data is on disk (fsynced) before Put returns.
func (s *Store) Put(key string, payload []byte) error {
	if err := s.put(key, payload); err != nil {
		s.errors.Add(1)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("key length %d out of range [1, %d]", len(key), maxKeyLen)
	}
	buf := make([]byte, 0, len(magic)+4+len(key)+8+sha256.Size+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	// atomicio does the temp+fsync+rename dance; a crash mid-write
	// leaves an orphan ".tmp-" file that pathFor can never resolve to.
	return atomicio.WriteFile(s.pathFor(key), buf, 0o600)
}

// Get returns the payload stored under key. ok is false on a genuine
// miss AND on any entry that fails verification; a false return never
// carries partial data, and no on-disk state — truncated, bit-flipped,
// or foreign — makes Get panic or error out.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	data, err := os.ReadFile(s.pathFor(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok = decode(key, data)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode verifies one entry image against key and extracts the payload.
func decode(key string, data []byte) ([]byte, bool) {
	off := 0
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(data)-off < n {
			return nil, false
		}
		b := data[off : off+n]
		off += n
		return b, true
	}
	m, ok := take(len(magic))
	if !ok || string(m) != string(magic[:]) {
		return nil, false
	}
	klRaw, ok := take(4)
	if !ok {
		return nil, false
	}
	kl := binary.BigEndian.Uint32(klRaw)
	if kl == 0 || kl > maxKeyLen {
		return nil, false
	}
	k, ok := take(int(kl))
	if !ok || string(k) != key {
		return nil, false
	}
	plRaw, ok := take(8)
	if !ok {
		return nil, false
	}
	pl := binary.BigEndian.Uint64(plRaw)
	sum, ok := take(sha256.Size)
	if !ok {
		return nil, false
	}
	// The payload must fill the rest of the file exactly: shorter is
	// truncation, longer is trailing garbage; both are corruption.
	if pl != uint64(len(data)-off) {
		return nil, false
	}
	payload := data[off:]
	if sha256.Sum256(payload) != [sha256.Size]byte(sum) {
		return nil, false
	}
	return payload, true
}

// Delete removes key's entry if present. Missing entries are not an
// error.
func (s *Store) Delete(key string) error {
	err := os.Remove(s.pathFor(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}

// Len counts the entries currently on disk (orphan temp files are not
// entries). Diagnostics only; the count can be stale by the time it
// returns.
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".res" {
			n++
		}
	}
	return n, nil
}
