package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "bT8/HCC-DTS-gwb|cilk5-cs|test|0|chaos-lossy-all|1"
	payload := []byte(`[{"config":"bT8/HCC-DTS-gwb"}]` + "\n")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: ok=%v got=%q", ok, got)
	}
	// Overwrite wins.
	payload2 := []byte("v2")
	if err := s.Put(key, payload2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload2) {
		t.Fatalf("overwrite not visible: ok=%v got=%q", ok, got)
	}
	st := s.Stats()
	if st.Puts != 2 || st.Hits != 2 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestEmptyPayloadAndKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put("k", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || len(got) != 0 {
		t.Fatalf("empty payload round trip: ok=%v got=%q", ok, got)
	}
}

// corrupt applies one random mutation to a file: truncate at a random
// offset, flip one random byte, or append garbage. It reports what it
// did and whether the image actually changed.
func corrupt(t *testing.T, rng *rand.Rand, path string) (string, bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var desc string
	mutated := append([]byte(nil), data...)
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(len(mutated) + 1) // [0, len] — len is a no-op
		mutated = mutated[:n]
		desc = fmt.Sprintf("truncate to %d/%d", n, len(data))
	case 1:
		i := rng.Intn(len(mutated))
		mutated[i] ^= byte(1 + rng.Intn(255))
		desc = fmt.Sprintf("flip byte %d/%d", i, len(data))
	case 2:
		extra := make([]byte, 1+rng.Intn(64))
		rng.Read(extra)
		mutated = append(mutated, extra...)
		desc = fmt.Sprintf("append %d bytes", len(extra))
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	return desc, !bytes.Equal(mutated, data)
}

// TestCorruptionIsMissNeverPartial is the crash-safety property test:
// for hundreds of randomly corrupted entries (truncation at any offset,
// single-bit rot, trailing garbage), every Get returns either the exact
// original payload or a miss — never partial bytes, never a panic —
// and a re-Put fully heals the entry.
func TestCorruptionIsMissNeverPartial(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("cfg|app-%d|size|%d|scenario|%d", i, i%7, i)
		payload := make([]byte, rng.Intn(4096))
		rng.Read(payload)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		desc, changed := corrupt(t, rng, s.pathFor(key))
		got, ok := s.Get(key)
		if ok && !bytes.Equal(got, payload) {
			t.Fatalf("entry %d (%s): Get served corrupted bytes", i, desc)
		}
		if changed && ok {
			t.Fatalf("entry %d (%s): corrupted image verified as intact", i, desc)
		}
		// Healing: the next Put replaces whatever is on disk.
		if err := s.Put(key, payload); err != nil {
			t.Fatalf("entry %d (%s): re-put failed: %v", i, desc, err)
		}
		if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("entry %d (%s): entry not healed by re-put", i, desc)
		}
	}
	if st := s.Stats(); st.Corrupt == 0 {
		t.Fatal("property test never exercised the corruption path")
	}
}

// TestKilledMidWriteLeavesNoEntry models kill -9 between temp-file
// write and rename: the orphan temp file must be invisible to Get, and
// a previous entry under the same key must survive untouched.
func TestKilledMidWriteLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := []byte("committed result")
	if err := s.Put("job", old); err != nil {
		t.Fatal(err)
	}
	// A writer died here: half an entry in a temp file, never renamed.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123456"), []byte("btstore1\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("job"); !ok || !bytes.Equal(got, old) {
		t.Fatalf("orphan temp file disturbed the committed entry: ok=%v got=%q", ok, got)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 entry (temp files are not entries)", n, err)
	}
}

// TestWrongKeyUnderOurName: a valid entry file for key A renamed to key
// B's address must read as a miss for B (the key echo catches it).
func TestWrongKeyUnderOurName(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-a", []byte("a's data")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.pathFor("key-a"), s.pathFor("key-b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("key-b"); ok {
		t.Fatal("foreign entry served under the wrong key")
	}
}

// TestConcurrentPutGet hammers one store from many goroutines; under
// -race this proves the tier is safe for a parallel worker pool.
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g%4) // overlap keys across goroutines
			want := []byte(fmt.Sprintf("payload-%d", g%4))
			for i := 0; i < 50; i++ {
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("goroutine %d: read tore: %q", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("absent"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted entry still served")
	}
}
