// Package trace records cycle-stamped runtime events (spawns, steals,
// task execution) for debugging and for visualizing scheduler
// behaviour. Recording is optional: a nil *Recorder is a no-op, so the
// runtime can stay allocation-free when tracing is off.
package trace

import (
	"fmt"
	"io"

	"bigtiny/internal/sim"
)

// Kind classifies a runtime event.
type Kind uint8

// Runtime event kinds.
const (
	Spawn     Kind = iota // a task was enqueued (arg = task descriptor)
	ExecStart             // a task began executing (arg = task descriptor)
	ExecEnd               // a task finished (arg = task descriptor)
	StealTry              // a steal attempt began (arg = victim thread)
	StealHit              // a steal succeeded (arg = task descriptor)
	StealMiss             // a steal found nothing / was NACKed (arg = victim)
	Done                  // the program raised the termination flag
	Offline               // a core fail-stopped (fault injection)
	Reclaim               // a stranded task was taken from a dead core (arg = task)
	numKinds
)

var kindNames = [numKinds]string{
	"spawn", "exec-start", "exec-end", "steal-try", "steal-hit", "steal-miss", "done",
	"offline", "reclaim",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one cycle-stamped runtime event.
type Event struct {
	T    sim.Time
	Core int
	Kind Kind
	Arg  uint64
}

// Recorder accumulates events in order. It is safe for use from the
// simulator (which is single-threaded by construction).
type Recorder struct {
	Events []Event
	// Limit caps stored events (0 = unlimited); the counter keeps
	// counting so truncation is detectable.
	Limit   int
	Dropped uint64
}

// Emit records one event. Nil receivers are no-ops, so callers never
// need to branch on whether tracing is enabled.
func (r *Recorder) Emit(t sim.Time, core int, k Kind, arg uint64) {
	if r == nil {
		return
	}
	if r.Limit > 0 && len(r.Events) >= r.Limit {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, Event{T: t, Core: core, Kind: k, Arg: arg})
}

// Count returns the number of recorded events of kind k.
func (r *Recorder) Count(k Kind) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// WriteTo dumps the trace as one line per event.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	var total int64
	for _, e := range r.Events {
		n, err := fmt.Fprintf(w, "%12d core%-3d %-11s %#x\n", e.T, e.Core, e.Kind, e.Arg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if r.Dropped > 0 {
		n, err := fmt.Fprintf(w, "(+%d events dropped beyond limit)\n", r.Dropped)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
