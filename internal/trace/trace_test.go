package trace

import (
	"strings"
	"testing"

	"bigtiny/internal/sim"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Emit(1, 2, Spawn, 3) // must not panic
	if r.Count(Spawn) != 0 {
		t.Fatal("nil recorder counted events")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatal("nil recorder wrote")
	}
}

func TestEmitAndCount(t *testing.T) {
	r := &Recorder{}
	r.Emit(10, 0, Spawn, 0xA)
	r.Emit(20, 1, StealTry, 0)
	r.Emit(30, 1, StealHit, 0xA)
	r.Emit(40, 1, ExecStart, 0xA)
	r.Emit(50, 1, ExecEnd, 0xA)
	if r.Count(Spawn) != 1 || r.Count(StealHit) != 1 || r.Count(StealMiss) != 0 {
		t.Fatalf("counts wrong: %+v", r.Events)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"spawn", "steal-hit", "exec-start", "core1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestLimitDropsButCounts(t *testing.T) {
	r := &Recorder{Limit: 2}
	for i := 0; i < 5; i++ {
		r.Emit(sim.Time(i), 0, Spawn, 0)
	}
	if len(r.Events) != 2 || r.Dropped != 3 {
		t.Fatalf("events=%d dropped=%d", len(r.Events), r.Dropped)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "3 events dropped") {
		t.Fatal("truncation not reported")
	}
}

func TestKindNames(t *testing.T) {
	if Spawn.String() != "spawn" || Done.String() != "done" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind not formatted")
	}
}
