package prog

import (
	"testing"

	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

func TestNativeEnvBasics(t *testing.T) {
	m := mem.New()
	e := NewNativeEnv(m)
	if e.TID() != 0 || e.NThreads() != 1 || e.Now() != 0 {
		t.Fatal("native env identity wrong")
	}
	a := e.Alloc(4)
	e.Store(a, 7)
	if e.Load(a) != 7 {
		t.Fatal("native load/store broken")
	}
	if old := e.Amo(a, cache.AmoAdd, 3, 0); old != 7 {
		t.Fatalf("amo old = %d", old)
	}
	if e.Load(a) != 10 {
		t.Fatal("amo not applied")
	}
	if old := e.Amo(a, cache.AmoCAS, 10, 42); old != 10 || e.Load(a) != 42 {
		t.Fatal("CAS broken")
	}
	if old := e.Amo(a, cache.AmoCAS, 10, 1); old != 42 || e.Load(a) != 42 {
		t.Fatal("failed CAS wrote")
	}
	e.Compute(100)
	e.CacheInvalidate()
	e.CacheFlush()
	if e.Insts == 0 {
		t.Fatal("instructions not counted")
	}
	if e.HasULI() {
		t.Fatal("native env claims ULI")
	}
}

func TestNativeEnvULIPanics(t *testing.T) {
	e := NewNativeEnv(mem.New())
	for name, f := range map[string]func(){
		"enable":  e.ULIEnable,
		"disable": e.ULIDisable,
		"send":    func() { e.ULISendReq(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNativeAmoInstCount(t *testing.T) {
	e := NewNativeEnv(mem.New())
	a := e.Alloc(1)
	before := e.Insts
	e.Load(a)
	e.Store(a, 1)
	e.Amo(a, cache.AmoOr, 0, 0)
	if e.Insts != before+3 {
		t.Fatalf("memory ops counted %d insts, want 3", e.Insts-before)
	}
}

func TestSimEnvRoundTrip(t *testing.T) {
	cfg, err := machine.Lookup("bT/HCC-DTS-gwb")
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumBig, cfg.NumTiny = 1, 3
	cfg.Rows, cfg.Cols = 1, 4
	cfg.NumBanks = 2
	m := machine.New(cfg)
	a := m.Mem.AllocWords(1)
	var tid, nth int
	var loaded uint64
	var now sim.Time
	m.Spawn(2, func(core *cpu.Core) {
		e := NewSimEnv(m, core)
		tid, nth = e.TID(), e.NThreads()
		if !e.HasULI() {
			t.Error("DTS machine should expose ULI")
		}
		e.Compute(10)
		e.Store(a, 5)
		e.Amo(a, cache.AmoAdd, 2, 0)
		loaded = e.Load(a)
		b := e.Alloc(8)
		e.Store(b, 1)
		e.CacheFlush()
		e.CacheInvalidate()
		now = e.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tid != 2 || nth != 4 {
		t.Fatalf("tid=%d nth=%d", tid, nth)
	}
	if loaded != 7 {
		t.Fatalf("loaded = %d, want 7", loaded)
	}
	if now == 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestSimEnvRandPerThread(t *testing.T) {
	cfg, _ := machine.Lookup("bT/MESI")
	cfg.NumBig, cfg.NumTiny = 0, 2
	cfg.Rows, cfg.Cols = 1, 2
	cfg.NumBanks = 1
	m := machine.New(cfg)
	vals := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn(i, func(core *cpu.Core) {
			e := NewSimEnv(m, core)
			vals[i] = e.Rand().Uint64()
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if vals[0] == vals[1] {
		t.Fatal("per-thread PRNGs identical")
	}
}
