// Package prog defines the execution environment that simulated
// software (the work-stealing runtime and the application kernels) is
// written against: timed loads/stores/atomics, the cache_invalidate and
// cache_flush instructions, ULI operations, and abstract compute
// instructions.
//
// Two implementations exist: SimEnv runs on a simulated core with full
// timing and coherence behaviour, and NativeEnv executes functionally
// at zero cost (used for output verification and for the Cilkview-style
// work/span analysis).
package prog

import (
	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
)

// Env is the software-visible machine interface. All application and
// runtime data that crosses task boundaries must live in simulated
// memory and be accessed through it — that is what makes coherence
// behaviour (and its bugs) real.
type Env interface {
	// TID returns the hardware thread id (== core id).
	TID() int
	// NThreads returns the total thread count.
	NThreads() int
	// Now returns the current cycle.
	Now() sim.Time

	// Compute executes n abstract non-memory instructions.
	Compute(n int)
	// IdleUntil parks the thread until cycle t (no-op when t has
	// passed), remaining responsive to interrupts. Open-system load
	// drivers use it to sleep between arrivals without burning compute.
	IdleUntil(t sim.Time)
	// SetFunc tags subsequent Compute instructions as belonging to
	// function fid (instruction-cache modelling).
	SetFunc(fid, footprintBytes int)

	Load(a mem.Addr) uint64
	Store(a mem.Addr, v uint64)
	Amo(a mem.Addr, op cache.AmoOp, arg1, arg2 uint64) uint64
	CacheInvalidate()
	CacheFlush()

	// HasULI reports whether direct task stealing hardware exists.
	HasULI() bool
	ULIEnable()
	ULIDisable()
	// ULISendReq sends a steal request to victim and blocks for the
	// response; ok is false on NACK.
	ULISendReq(victim int) (payload uint64, ok bool)

	// Alloc reserves n words of simulated memory (the software heap).
	Alloc(nwords int) mem.Addr
	// Rand is this thread's deterministic PRNG (victim selection).
	Rand() *sim.Rand

	// Offline reports whether this core has fail-stopped (fault
	// injection). A scheduling loop that observes true must abandon the
	// core forever.
	Offline() bool
}

// SimEnv is the Env for one hardware thread of a simulated machine.
type SimEnv struct {
	M    *machine.Machine
	Core *cpu.Core
	rng  *sim.Rand
}

// NewSimEnv builds the environment for a core. Call from inside the
// core's Spawned body.
func NewSimEnv(m *machine.Machine, core *cpu.Core) *SimEnv {
	return &SimEnv{M: m, Core: core, rng: sim.NewRand(uint64(core.ID)*2654435761 + 12345)}
}

// TID returns the core id.
func (e *SimEnv) TID() int { return e.Core.ID }

// NThreads returns the machine's core count.
func (e *SimEnv) NThreads() int { return len(e.M.Cores) }

// Now returns the current cycle.
func (e *SimEnv) Now() sim.Time { return e.Core.Now() }

// Compute burns n abstract instructions on the core.
func (e *SimEnv) Compute(n int) { e.Core.Compute(n) }

// IdleUntil parks the core until cycle t, polling for interrupts.
func (e *SimEnv) IdleUntil(t sim.Time) { e.Core.IdleUntil(t) }

// SetFunc switches the instruction-cache function context.
func (e *SimEnv) SetFunc(fid, footprintBytes int) { e.Core.SetFunc(fid, footprintBytes) }

// Load issues a timed load.
func (e *SimEnv) Load(a mem.Addr) uint64 { return e.Core.Load(a) }

// Store issues a timed store.
func (e *SimEnv) Store(a mem.Addr, v uint64) { e.Core.Store(a, v) }

// Amo issues a timed atomic.
func (e *SimEnv) Amo(a mem.Addr, op cache.AmoOp, arg1, arg2 uint64) uint64 {
	return e.Core.Amo(a, op, arg1, arg2)
}

// CacheInvalidate issues cache_invalidate.
func (e *SimEnv) CacheInvalidate() { e.Core.Invalidate() }

// CacheFlush issues cache_flush.
func (e *SimEnv) CacheFlush() { e.Core.Flush() }

// HasULI reports DTS hardware presence.
func (e *SimEnv) HasULI() bool { return e.Core.ULI != nil }

// ULIEnable enables interrupt delivery.
func (e *SimEnv) ULIEnable() { e.Core.ULIEnable() }

// ULIDisable defers interrupt delivery.
func (e *SimEnv) ULIDisable() { e.Core.ULIDisable() }

// ULISendReq performs a blocking steal request.
func (e *SimEnv) ULISendReq(victim int) (uint64, bool) { return e.Core.ULISendReq(victim) }

// Alloc reserves simulated heap memory. The bump allocation itself is a
// few instructions; cold-miss costs are paid on first touch like any
// other memory.
func (e *SimEnv) Alloc(nwords int) mem.Addr {
	e.Core.Compute(4)
	return e.M.Mem.AllocWords(nwords)
}

// Rand returns the thread's PRNG.
func (e *SimEnv) Rand() *sim.Rand { return e.rng }

// Offline reports whether the core has fail-stopped.
func (e *SimEnv) Offline() bool { return e.Core.Offline() }

// NativeEnv executes functionally against a bare memory with zero
// simulated time. It also counts abstract instructions, which the
// Cilkview-style analyzer uses for work/span accounting.
type NativeEnv struct {
	Mem *mem.Memory
	rng *sim.Rand
	// Insts counts abstract instructions (compute + 1 per memory op).
	Insts uint64
}

// NewNativeEnv returns a fresh zero-time environment.
func NewNativeEnv(m *mem.Memory) *NativeEnv {
	return &NativeEnv{Mem: m, rng: sim.NewRand(1)}
}

// TID returns 0: native execution is single-threaded.
func (e *NativeEnv) TID() int { return 0 }

// NThreads returns 1.
func (e *NativeEnv) NThreads() int { return 1 }

// Now returns 0; native execution has no clock.
func (e *NativeEnv) Now() sim.Time { return 0 }

// Compute counts n instructions.
func (e *NativeEnv) Compute(n int) { e.Insts += uint64(n) }

// IdleUntil is a no-op natively: there is no clock to wait on.
func (e *NativeEnv) IdleUntil(t sim.Time) {}

// SetFunc is a no-op natively.
func (e *NativeEnv) SetFunc(fid, footprintBytes int) {}

// Load reads directly from backing memory.
func (e *NativeEnv) Load(a mem.Addr) uint64 {
	e.Insts++
	return e.Mem.ReadWord(a)
}

// Store writes directly to backing memory.
func (e *NativeEnv) Store(a mem.Addr, v uint64) {
	e.Insts++
	e.Mem.WriteWord(a, v)
}

// Amo applies the atomic directly.
func (e *NativeEnv) Amo(a mem.Addr, op cache.AmoOp, arg1, arg2 uint64) uint64 {
	e.Insts++
	old := e.Mem.ReadWord(a)
	if nv, write := applyAmoNative(op, old, arg1, arg2); write {
		e.Mem.WriteWord(a, nv)
	}
	return old
}

// CacheInvalidate is free natively.
func (e *NativeEnv) CacheInvalidate() { e.Insts++ }

// CacheFlush is free natively.
func (e *NativeEnv) CacheFlush() { e.Insts++ }

// HasULI reports false: no DTS hardware natively.
func (e *NativeEnv) HasULI() bool { return false }

// ULIEnable panics: native execution has no ULI.
func (e *NativeEnv) ULIEnable() { panic("prog: ULI not available natively") }

// ULIDisable panics: native execution has no ULI.
func (e *NativeEnv) ULIDisable() { panic("prog: ULI not available natively") }

// ULISendReq panics: native execution has no ULI.
func (e *NativeEnv) ULISendReq(int) (uint64, bool) { panic("prog: ULI not available natively") }

// Alloc reserves words in the backing memory.
func (e *NativeEnv) Alloc(nwords int) mem.Addr { return e.Mem.AllocWords(nwords) }

// Rand returns the deterministic PRNG.
func (e *NativeEnv) Rand() *sim.Rand { return e.rng }

// Offline reports false: native execution cannot lose its only thread.
func (e *NativeEnv) Offline() bool { return false }

// applyAmoNative mirrors the cache package's AMO semantics.
func applyAmoNative(op cache.AmoOp, old, arg1, arg2 uint64) (uint64, bool) {
	switch op {
	case cache.AmoAdd:
		return old + arg1, true
	case cache.AmoOr:
		return old | arg1, true
	case cache.AmoAnd:
		return old & arg1, true
	case cache.AmoXchg:
		return arg1, true
	case cache.AmoCAS:
		if old == arg1 {
			return arg2, true
		}
		return old, false
	}
	panic("prog: unknown AMO")
}
