// Package oracle is a golden memory-ordering referee for the simulated
// cache hierarchy. A Checker shadows every architecturally-performed
// load, store, and AMO (via the cache.Oracle hook on each L1) and fails
// the run when a load returns a value that no legal per-location order
// of the observed writes could produce.
//
// The model is per-location coherence-order checking, deliberately
// weaker than full sequential consistency so that the relaxed
// software-centric protocols (DeNovo, GPU-WT, GPU-WB) pass when
// correct:
//
//   - Every store appends a version to the location's history; the
//     observed append order stands in for the per-location write order.
//     This is exact for data-race-free programs (conflicting writes are
//     ordered by synchronization, so issue order and coherence order
//     agree) and is the oracle's main modelling limit for racy ones.
//   - A load must return some version at or after the version its core
//     last observed at that location: stale reads are legal under the
//     software-centric protocols, but a core can never read backwards,
//     read a value that was never written, or read its own write's
//     predecessor.
//   - Version 0 of every location is a wildcard standing for "whatever
//     the location held before the first shadowed write" — setup writes
//     performed through the memory backdoor (program loading) bypass
//     the hooks, so the initial value is unknown until pinned. The
//     initial value is still a *single* value, so each core can read at
//     most one distinct value against the wildcard; a second different
//     one must match a real version.
//   - An AMO is globally serializing for its location: the old value it
//     returns must equal the latest committed version (an AMO on top of
//     a stale copy is exactly the bug class a missing cache_flush in a
//     steal hand-off produces). If only the wildcard exists, the AMO
//     pins the initial value instead.
//
// Violations do not stop the simulation; they are recorded (first few
// in detail) and surfaced as an error from the machine's Run.
package oracle

import (
	"errors"
	"fmt"
	"strings"
)

// maxDetailed bounds how many violations keep full detail.
const maxDetailed = 8

// Violation is one impossible observation.
type Violation struct {
	Core int
	Addr uint64
	Op   string // "load" or "amo"
	Got  uint64 // the value observed
	Want string // what the history allowed
}

func (v Violation) String() string {
	return fmt.Sprintf("core %d %s @%#x returned %d, but %s", v.Core, v.Op, v.Addr, v.Got, v.Want)
}

// loc is one word's shadow state.
type loc struct {
	// hist is the version history; hist[0] is the wildcard initial
	// version (matches anything until pinned by an AMO).
	hist []uint64
	// seen[c] is the index of the latest version core c has observed:
	// its reads may never move backwards through hist.
	seen []int32
	// pinned is set once an AMO has revealed the location's true initial
	// value (appended as version 1): from then on the wildcard matches
	// nothing — the pre-write value is no longer unknown.
	pinned bool
	// wcVal[c]/wcSet[c] record the one value core c has read against the
	// wildcard: the initial value is a single (unknown) value, so a
	// second distinct read by the same core cannot also be "the initial
	// value" and must match a real version instead.
	wcVal []uint64
	wcSet []bool
}

// Checker is the oracle for one machine. It implements cache.Oracle.
type Checker struct {
	ncores int
	locs   map[uint64]*loc

	// Ops counts shadowed operations (overhead reporting).
	Ops uint64

	violations []Violation
	nviol      uint64
}

// New returns a checker for a machine with ncores cores.
func New(ncores int) *Checker {
	return &Checker{ncores: ncores, locs: make(map[uint64]*loc)}
}

func (c *Checker) get(a uint64) *loc {
	l := c.locs[a]
	if l == nil {
		l = &loc{
			hist:  make([]uint64, 1, 4),
			seen:  make([]int32, c.ncores),
			wcVal: make([]uint64, c.ncores),
			wcSet: make([]bool, c.ncores),
		}
		c.locs[a] = l
	}
	return l
}

func (c *Checker) report(v Violation) {
	c.nviol++
	if len(c.violations) < maxDetailed {
		c.violations = append(c.violations, v)
	}
}

// OnLoad checks a load of v from word address a by core.
func (c *Checker) OnLoad(core int, a uint64, v uint64) {
	c.Ops++
	l := c.get(a)
	k := l.seen[core]
	if k == 0 {
		// The wildcard is still reachable: v may be the (unknown)
		// initial value. Staying on the wildcard is the maximally
		// permissive choice (every real version stays available), but a
		// core can claim only ONE distinct value as the initial — a
		// second different value must match a real version below.
		if !l.pinned && (!l.wcSet[core] || l.wcVal[core] == v) {
			l.wcSet[core] = true
			l.wcVal[core] = v
			return
		}
		k = 1
	}
	// Greedy smallest match at or after the core's frontier: taking the
	// earliest legal version keeps every later one available, so this
	// never rejects an observation a lazier match would accept.
	for ; k < int32(len(l.hist)); k++ {
		if l.hist[k] == v {
			l.seen[core] = k
			return
		}
	}
	c.report(Violation{Core: core, Addr: a, Op: "load", Got: v,
		Want: fmt.Sprintf("no version >= its frontier %d of %d matches (latest write %d)",
			l.seen[core], len(l.hist)-1, l.hist[len(l.hist)-1])})
}

// OnStore records a store of v to word address a by core.
func (c *Checker) OnStore(core int, a uint64, v uint64) {
	c.Ops++
	l := c.get(a)
	l.hist = append(l.hist, v)
	l.seen[core] = int32(len(l.hist) - 1)
}

// OnAmo checks an atomic on word address a: old must be the latest
// committed version (or pins the wildcard initial).
func (c *Checker) OnAmo(core int, a uint64, old, newVal uint64, wrote bool) {
	c.Ops++
	l := c.get(a)
	latest := len(l.hist) - 1
	if latest == 0 {
		// Only the wildcard exists: this AMO reveals the initial value.
		l.hist = append(l.hist, old)
		l.pinned = true
		latest = 1
	} else if l.hist[latest] != old {
		c.report(Violation{Core: core, Addr: a, Op: "amo", Got: old,
			Want: fmt.Sprintf("the latest committed write is %d (version %d)",
				l.hist[latest], latest)})
		// Adopt the observed value so one protocol bug does not cascade
		// into a violation storm at this location.
		l.hist = append(l.hist, old)
		latest = len(l.hist) - 1
	}
	if wrote {
		l.hist = append(l.hist, newVal)
		latest = len(l.hist) - 1
	}
	l.seen[core] = int32(latest)
}

// Violations returns the total violation count.
func (c *Checker) Violations() uint64 {
	if c == nil {
		return 0
	}
	return c.nviol
}

// Err returns nil if every observation was legal, else an error
// detailing the first violations.
func (c *Checker) Err() error {
	if c == nil || c.nviol == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %d memory-ordering violation(s):", c.nviol)
	for _, v := range c.violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	if c.nviol > uint64(len(c.violations)) {
		fmt.Fprintf(&b, "\n  ... and %d more", c.nviol-uint64(len(c.violations)))
	}
	return errors.New(b.String())
}
