package oracle

import (
	"strings"
	"testing"
)

func TestInitialValueWildcard(t *testing.T) {
	c := New(2)
	// Setup writes bypass the hooks, so the first load of any location
	// can return anything.
	c.OnLoad(0, 0x100, 42)
	c.OnLoad(1, 0x100, 99)
	if err := c.Err(); err != nil {
		t.Fatalf("pre-write loads flagged: %v", err)
	}
}

func TestLoadSeesOwnStore(t *testing.T) {
	c := New(2)
	c.OnStore(0, 0x100, 7)
	c.OnLoad(0, 0x100, 7)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// After observing its own store, the same core may not read an
	// earlier (never-written) value again.
	c.OnLoad(0, 0x100, 3)
	if c.Violations() != 1 {
		t.Fatalf("backwards read not flagged: %d violations", c.Violations())
	}
}

func TestStaleReadByOtherCoreIsLegal(t *testing.T) {
	c := New(2)
	c.OnStore(0, 0x100, 7)
	// Core 1 has observed nothing at this location: reading the stale
	// pre-write value is legal under the software-centric protocols
	// (its frontier is still the wildcard).
	c.OnLoad(1, 0x100, 12345)
	// And it may later advance to the real value.
	c.OnLoad(1, 0x100, 7)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// But having advanced, it can never go back.
	c.OnLoad(1, 0x100, 12345)
	if c.Violations() != 1 {
		t.Fatal("read went backwards without a violation")
	}
}

func TestMonotonicAcrossVersions(t *testing.T) {
	c := New(2)
	c.OnStore(0, 0x100, 1)
	c.OnStore(0, 0x100, 2)
	c.OnStore(0, 0x100, 3)
	c.OnLoad(1, 0x100, 2) // skipping version 1 is fine
	c.OnLoad(1, 0x100, 3)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	c.OnLoad(1, 0x100, 1) // ... but returning to 1 is not
	if c.Violations() != 1 {
		t.Fatal("non-monotonic read not flagged")
	}
}

func TestAmoPinsInitialValue(t *testing.T) {
	c := New(2)
	// fetch-add observing initial 10, writing 11.
	c.OnAmo(0, 0x200, 10, 11, true)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// The wildcard is now pinned to 10: a late load of some other
	// never-written value is a violation for a core that already
	// observed version >= 1... but core 1's frontier is still 0, so it
	// may still see the pinned initial 10 or the new 11 — anything else
	// must already have been possible via the wildcard. Wildcard only
	// matches while frontier==0, so core 1 first observes 11:
	c.OnLoad(1, 0x200, 11)
	// then may not go back to 10.
	c.OnLoad(1, 0x200, 10)
	if c.Violations() != 1 {
		t.Fatal("read-backwards past an AMO not flagged")
	}
}

func TestAmoOnStaleCopyFlagged(t *testing.T) {
	c := New(2)
	c.OnStore(0, 0x300, 5)
	// Core 1 AMOs on a stale copy: old=0 but the latest committed write
	// is 5 — exactly what a missing cache_flush in a steal hand-off
	// produces.
	c.OnAmo(1, 0x300, 0, 1, true)
	if c.Violations() != 1 {
		t.Fatalf("stale AMO not flagged: %d violations", c.Violations())
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "amo") {
		t.Fatalf("error missing amo detail: %v", err)
	}
}

func TestAmoChainSerializes(t *testing.T) {
	c := New(4)
	// A correct AMO chain from 4 cores: each sees the previous new value.
	c.OnAmo(0, 0x400, 0, 1, true)
	c.OnAmo(1, 0x400, 1, 2, true)
	c.OnAmo(2, 0x400, 2, 3, true)
	c.OnAmo(3, 0x400, 3, 4, true)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestViolationStormTruncated(t *testing.T) {
	c := New(1)
	c.OnStore(0, 0x500, 1)
	for i := 0; i < 20; i++ {
		c.OnLoad(0, 0x500, 999) // never written
	}
	if c.Violations() != 20 {
		t.Fatalf("violations = %d, want 20", c.Violations())
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "and 12 more") {
		t.Fatalf("storm not truncated: %v", err)
	}
}

func TestNilCheckerIsQuiet(t *testing.T) {
	var c *Checker
	if c.Violations() != 0 || c.Err() != nil {
		t.Fatal("nil checker reported state")
	}
}
