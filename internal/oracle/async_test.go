package oracle

import (
	"fmt"
	"reflect"
	"testing"
)

// driveOracle replays a deterministic op stream — including planted
// violations of both detailed kinds — through any cache.Oracle-shaped
// sink. The stream is long enough to force several batch flushes
// through the async path (batchSize records per flush).
func driveOracle(load func(int, uint64, uint64), store func(int, uint64, uint64),
	amo func(int, uint64, uint64, uint64, bool)) {
	// Legal traffic: two cores producing and consuming a few locations.
	for i := 0; i < 3*batchSize; i++ {
		a := uint64(8 * (i % 7))
		store(0, a, uint64(i))
		load(0, a, uint64(i))
		if i%3 == 0 {
			load(1, a, uint64(i)) // fresh read: always legal
		}
	}
	// Planted load violation: core 1 already observed a real version at
	// 0x1000, then "reads" a value that never existed there.
	store(0, 0x1000, 42)
	load(1, 0x1000, 42)
	load(1, 0x1000, 99)
	// Planted AMO violation: stale old value against a committed write.
	store(0, 0x2000, 7)
	amo(1, 0x2000, 5, 6, true)
	// Tail ops after the violations, landing in a final partial batch.
	for i := 0; i < batchSize/2; i++ {
		store(1, 0x3000, uint64(i))
	}
}

// TestAsyncMatchesSync is the equivalence gate for the async offload:
// the drain goroutine must leave the wrapped Checker with bit-identical
// state — op count, violation count, and the full Err() text with every
// detailed violation — to a Checker fed the same stream synchronously.
func TestAsyncMatchesSync(t *testing.T) {
	sync := New(2)
	driveOracle(sync.OnLoad, sync.OnStore, sync.OnAmo)

	inner := New(2)
	async := NewAsync(inner)
	driveOracle(async.OnLoad, async.OnStore, async.OnAmo)
	async.Close()
	async.Close() // idempotent: a machine closes once deferred, once explicitly

	if inner.Ops != sync.Ops {
		t.Fatalf("Ops: async %d, sync %d", inner.Ops, sync.Ops)
	}
	if inner.Violations() != sync.Violations() || inner.Violations() != 2 {
		t.Fatalf("Violations: async %d, sync %d, want 2", inner.Violations(), sync.Violations())
	}
	se, ae := sync.Err(), inner.Err()
	if se == nil || ae == nil || se.Error() != ae.Error() {
		t.Fatalf("Err text diverged:\nsync:  %v\nasync: %v", se, ae)
	}
	if !reflect.DeepEqual(inner.violations, sync.violations) {
		t.Fatalf("detailed violations diverged:\nsync:  %+v\nasync: %+v",
			sync.violations, inner.violations)
	}
}

// TestAsyncCleanStream: a violation-free stream stays violation-free
// through the async path, and Close is safe on an empty tail batch.
func TestAsyncCleanStream(t *testing.T) {
	inner := New(1)
	async := NewAsync(inner)
	for i := 0; i < batchSize; i++ { // exactly one full batch, empty tail
		async.OnStore(0, 0x40, uint64(i))
		async.OnLoad(0, 0x40, uint64(i))
	}
	async.Close()
	if err := inner.Err(); err != nil {
		t.Fatal(err)
	}
	if inner.Ops != 2*batchSize {
		t.Fatalf("Ops = %d, want %d", inner.Ops, 2*batchSize)
	}
}

// TestAsyncViolationDetailOrder: with more violations than maxDetailed,
// the detailed prefix and the "and N more" tail survive the offload —
// ordering through the batch boundary is exact, not approximate.
func TestAsyncViolationDetailOrder(t *testing.T) {
	mk := func() (*Checker, func(int, uint64, uint64), func(int, uint64, uint64)) {
		c := New(1)
		return c, c.OnLoad, c.OnStore
	}
	sc, sload, sstore := mk()
	ic := New(1)
	async := NewAsync(ic)
	aload, astore := async.OnLoad, async.OnStore

	for _, f := range []struct {
		load  func(int, uint64, uint64)
		store func(int, uint64, uint64)
	}{{sload, sstore}, {aload, astore}} {
		for i := 0; i < maxDetailed+3; i++ {
			a := uint64(0x100 * (i + 1))
			f.store(0, a, 1)
			f.load(0, a, uint64(1000+i)) // impossible value, unique per site
		}
	}
	async.Close()
	if fmt.Sprint(sc.Err()) != fmt.Sprint(ic.Err()) {
		t.Fatalf("overflowed violation report diverged:\nsync:  %v\nasync: %v", sc.Err(), ic.Err())
	}
}
