// Async offload: apply oracle observations on a drain goroutine.
//
// The oracle is the one side channel of a simulation that is genuinely
// order-dependent (version histories grow in observed append order) yet
// feeds nothing back into simulated time — the checker's verdict is
// read only after the kernel finishes. That makes it the perfect
// candidate for overlap under the epoch-parallel executor: the token
// holder records each observation into a fixed-size batch and hands
// full batches to a single drain goroutine, which applies them to the
// wrapped Checker in exactly the order they were produced. Ops counts,
// violation details, and Err() text are therefore bit-identical to
// synchronous checking by construction; the only thing that moves is
// which host goroutine pays for the map lookups and history appends.
package oracle

import "sync"

// rec is one recorded observation. op discriminates: load and store use
// old as the value; amo uses all fields.
type rec struct {
	op    uint8
	wrote bool
	core  int32
	addr  uint64
	old   uint64
	new   uint64
}

const (
	recLoad = uint8(iota)
	recStore
	recAmo
)

// batchSize trades channel traffic against drain latency; at 1024 the
// per-observation cost is a slice append plus 1/1024th of a channel
// send.
const batchSize = 1024

// Async wraps a Checker, buffering observations on the producer side
// and applying them on a single drain goroutine. The producer side
// (OnLoad/OnStore/OnAmo) must be called from one goroutine at a time —
// the kernel's control token already guarantees that — and Close must
// be called before reading the wrapped Checker's verdict.
type Async struct {
	c *Checker
	// cur is the batch being filled by the producer.
	cur []rec
	// ch carries full batches to the drain goroutine; free recycles
	// their backing arrays, bounding steady-state allocation to the
	// channel capacity.
	ch   chan []rec
	free chan []rec
	done chan struct{}
	once sync.Once
}

// NewAsync wraps c for asynchronous checking and starts the drain
// goroutine.
func NewAsync(c *Checker) *Async {
	a := &Async{
		c:    c,
		cur:  make([]rec, 0, batchSize),
		ch:   make(chan []rec, 8),
		free: make(chan []rec, 8),
		done: make(chan struct{}),
	}
	go a.drain()
	return a
}

func (a *Async) drain() {
	defer close(a.done)
	for batch := range a.ch {
		for i := range batch {
			r := &batch[i]
			switch r.op {
			case recLoad:
				a.c.OnLoad(int(r.core), r.addr, r.old)
			case recStore:
				a.c.OnStore(int(r.core), r.addr, r.old)
			default:
				a.c.OnAmo(int(r.core), r.addr, r.old, r.new, r.wrote)
			}
		}
		select {
		case a.free <- batch[:0]:
		default:
		}
	}
}

// push appends one record, shipping the batch when full.
func (a *Async) push(r rec) {
	a.cur = append(a.cur, r)
	if len(a.cur) == batchSize {
		a.flush()
	}
}

func (a *Async) flush() {
	if len(a.cur) == 0 {
		return
	}
	a.ch <- a.cur
	select {
	case a.cur = <-a.free:
	default:
		a.cur = make([]rec, 0, batchSize)
	}
}

// OnLoad implements cache.Oracle.
func (a *Async) OnLoad(core int, addr uint64, v uint64) {
	a.push(rec{op: recLoad, core: int32(core), addr: addr, old: v})
}

// OnStore implements cache.Oracle.
func (a *Async) OnStore(core int, addr uint64, v uint64) {
	a.push(rec{op: recStore, core: int32(core), addr: addr, old: v})
}

// OnAmo implements cache.Oracle.
func (a *Async) OnAmo(core int, addr uint64, old, newVal uint64, wrote bool) {
	a.push(rec{op: recAmo, core: int32(core), addr: addr, old: old, new: newVal, wrote: wrote})
}

// Close flushes the tail batch, joins the drain goroutine, and leaves
// the wrapped Checker holding the complete, exactly-ordered history.
// Idempotent; no observation may be produced after it.
func (a *Async) Close() {
	a.once.Do(func() {
		a.flush()
		close(a.ch)
		<-a.done
	})
}
