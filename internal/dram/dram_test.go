package dram

import "testing"

func TestAccessLatency(t *testing.T) {
	c := NewController("mc0", DefaultConfig())
	done := c.Access(100, false)
	// 32 cycles of bandwidth + 60 cycles fixed latency.
	if done != 100+32+60 {
		t.Fatalf("done = %d, want 192", done)
	}
	if c.Reads != 1 || c.Writes != 0 {
		t.Fatal("read/write counters wrong")
	}
}

func TestBandwidthSerializes(t *testing.T) {
	c := NewController("mc0", DefaultConfig())
	d1 := c.Access(0, false)
	d2 := c.Access(0, true)
	if d2 != d1+32 {
		t.Fatalf("second access done = %d, want %d", d2, d1+32)
	}
	if c.Writes != 1 {
		t.Fatal("write counter wrong")
	}
}

func TestIdleGapNoQueueing(t *testing.T) {
	c := NewController("mc0", DefaultConfig())
	c.Access(0, false)
	done := c.Access(1000, false)
	if done != 1000+92 {
		t.Fatalf("done = %d, want 1092", done)
	}
}

func TestMinimumLineCycles(t *testing.T) {
	c := NewController("fast", Config{AccessLat: 5, BytesPerCycle: 1024, LineBytes: 64})
	done := c.Access(0, false)
	if done != 1+5 {
		t.Fatalf("done = %d, want 6 (line transfer floors at 1 cycle)", done)
	}
}

func TestUtilization(t *testing.T) {
	c := NewController("mc0", DefaultConfig())
	c.Access(0, false)
	if got := c.Utilization(64); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}
