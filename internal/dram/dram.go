// Package dram models the main-memory controllers: one controller per
// mesh column (paper Table II), each with a fixed access latency plus a
// bandwidth constraint. The 64-core system has 8 controllers sharing
// 16 GB/s; at a 1 GHz clock that is 16 B/cycle total, i.e. 2 B/cycle per
// controller, so one 64 B line occupies a controller for 32 cycles.
package dram

import (
	"fmt"

	"bigtiny/internal/fault"
	"bigtiny/internal/sim"
)

// Controller models one memory channel.
type Controller struct {
	res *sim.Resource
	// Lat is the fixed access latency (row activation + CAS, in cycles).
	Lat sim.Time
	// LineCycles is the bandwidth occupancy of one 64-byte line transfer.
	LineCycles sim.Time

	// Faults, when non-nil, injects latency spikes and bandwidth
	// throttling (see internal/fault).
	Faults *fault.Injector

	Reads  uint64
	Writes uint64
}

// Config holds DRAM model parameters.
type Config struct {
	// AccessLat is the fixed per-access latency in cycles.
	AccessLat sim.Time
	// BytesPerCycle is the per-controller bandwidth.
	BytesPerCycle float64
	// LineBytes is the transfer unit (cache line size).
	LineBytes int
}

// DefaultConfig matches the paper's 64-core system: 16 GB/s across 8
// controllers at 1 GHz.
func DefaultConfig() Config {
	return Config{AccessLat: 60, BytesPerCycle: 2, LineBytes: 64}
}

// NewController builds a controller from cfg.
func NewController(name string, cfg Config) *Controller {
	lineCycles := sim.Time(float64(cfg.LineBytes) / cfg.BytesPerCycle)
	if lineCycles < 1 {
		lineCycles = 1
	}
	return &Controller{
		res:        sim.NewResource(fmt.Sprintf("dram-%s", name)),
		Lat:        cfg.AccessLat,
		LineCycles: lineCycles,
	}
}

// Access models one line-sized read or write beginning at now and
// returns its completion time. Bandwidth occupancy is modelled with
// resource reservation; latency overlaps with queueing only for the
// fixed portion.
func (c *Controller) Access(now sim.Time, write bool) sim.Time {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	occupancy, extra := c.Faults.DRAMAccess(now, c.LineCycles)
	done := c.res.Acquire(now, occupancy)
	return done + c.Lat + extra
}

// Utilization reports the bandwidth utilization over elapsed cycles.
func (c *Controller) Utilization(elapsed sim.Time) float64 {
	return c.res.Utilization(elapsed)
}
