package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileReplaces covers the plain paths: creating a new file and
// replacing an existing one, with the requested permissions.
func TestWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.json")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("content = %q, want %q", data, "two")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", info.Mode().Perm())
	}
}

// TestWriteFileCrashMidWrite injects a crash after the temp file holds
// the new bytes but before the rename: the destination must still carry
// the old content in full — a half-written file is never observed — and
// the only residue is an orphan temp file.
func TestWriteFileCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := WriteFile(path, []byte("intact old content"), 0o644); err != nil {
		t.Fatal(err)
	}

	TestHookBeforeRename = func() { panic("injected crash before rename") }
	defer func() { TestHookBeforeRename = nil }()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		WriteFile(path, []byte("NEW"), 0o644)
	}()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "intact old content" {
		t.Fatalf("destination changed across a mid-write crash: %q", data)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	orphans := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("expected exactly one orphan temp file, found %d", orphans)
	}
}

// TestWriteFileMissingDir propagates the error without touching
// anything (no destination is created out of thin air).
func TestWriteFileMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "f.json")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected an error writing into a missing directory")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed write: %v", err)
	}
}
