// Package atomicio provides crash-safe file replacement: data goes to
// a temp file in the destination directory, is fsynced, and is renamed
// over the final name. A reader therefore never observes a half-written
// file, and a writer killed at any instant (kill -9 included) leaves
// either the old content, the new content, or an orphan temp file that
// nothing resolves to — never a torn mix.
//
// The pattern originated in internal/store (whose entries additionally
// carry checksums); it lives here so every file the repo treats as
// durable state — store entries, the BENCH perf trajectory, the
// per-PR BENCH_*.json snapshots — shares one write path instead of
// each caller re-implementing (or forgetting) the dance.
package atomicio

import (
	"os"
	"path/filepath"
)

// TestHookBeforeRename, when non-nil, runs after the temp file has
// received its bytes but before the rename publishes them. Crash-
// injection tests use it to die mid-write and then assert the
// destination never changed. Leave nil outside tests.
var TestHookBeforeRename func()

// WriteFile atomically replaces path with data. The bytes are on disk
// (fsynced) before the rename, so after WriteFile returns the new
// content survives a crash; a failure or crash before that leaves any
// previous file untouched. The temp file is created alongside path
// (rename is only atomic within a filesystem) with a ".tmp-" prefix
// callers can recognise and skip when scanning the directory.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Chmod(perm); err != nil {
		return fail(err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if TestHookBeforeRename != nil {
		TestHookBeforeRename()
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself. Directory fsync is best-effort — some
	// filesystems refuse it — and losing it only reverts to the old
	// (still intact) content after a crash.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
