package mem

import (
	"testing"
	"testing/quick"
)

func TestReadBackWrites(t *testing.T) {
	m := New()
	m.WriteWord(0x10000, 42)
	m.WriteWord(0x10008, 7)
	if got := m.ReadWord(0x10000); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if got := m.ReadWord(0x10008); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestUninitializedReadsZero(t *testing.T) {
	m := New()
	if got := m.ReadWord(0xDEAD000); got != 0 {
		t.Fatalf("uninitialized read = %d, want 0", got)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	m.ReadWord(0x10001)
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	m := New()
	a := m.Alloc(10)
	b := m.Alloc(1)
	c := m.Alloc(200)
	for _, x := range []Addr{a, b, c} {
		if x%LineSize != 0 {
			t.Fatalf("allocation %#x not line-aligned", uint64(x))
		}
		if x == 0 {
			t.Fatal("allocator returned null address")
		}
	}
	if b < a+10 {
		t.Fatal("allocations overlap")
	}
	if LineAddr(a) == LineAddr(b) || LineAddr(b) == LineAddr(c) {
		t.Fatal("allocations share a cache line")
	}
}

func TestLineHelpers(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", uint64(LineAddr(0x1234)))
	}
	if WordIndex(0x1238) != 7 {
		t.Fatalf("WordIndex(0x1238) = %d, want 7", WordIndex(0x1238))
	}
	if WordIndex(0x1200) != 0 {
		t.Fatalf("WordIndex(0x1200) = %d, want 0", WordIndex(0x1200))
	}
}

func TestReadLineAndMaskedWrite(t *testing.T) {
	m := New()
	base := m.AllocWords(WordsPerLine)
	for i := 0; i < WordsPerLine; i++ {
		m.WriteWord(base+Addr(i*WordSize), uint64(100+i))
	}
	var line [WordsPerLine]uint64
	m.ReadLine(base+16, &line) // any address within the line works
	for i := 0; i < WordsPerLine; i++ {
		if line[i] != uint64(100+i) {
			t.Fatalf("line[%d] = %d", i, line[i])
		}
	}
	// Masked write: only words 1 and 3.
	line = [WordsPerLine]uint64{0: 1, 1: 2, 2: 3, 3: 4}
	m.WriteLineMasked(base, &line, 0b1010)
	if m.ReadWord(base) != 100 || m.ReadWord(base+8) != 2 ||
		m.ReadWord(base+16) != 102 || m.ReadWord(base+24) != 4 {
		t.Fatal("masked write touched wrong words")
	}
}

// Property: write-then-read returns the written value for arbitrary
// word-aligned addresses, including chunk boundaries.
func TestWriteReadProperty(t *testing.T) {
	m := New()
	f := func(rawAddr uint32, v uint64) bool {
		a := Addr(rawAddr) &^ (WordSize - 1)
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the allocator never hands out overlapping regions.
func TestAllocNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := New()
		type region struct{ lo, hi Addr }
		var regs []region
		for _, s := range sizes {
			n := int(s%1024) + 1
			base := m.Alloc(n)
			for _, r := range regs {
				if base < r.hi && r.lo < base+Addr(n) {
					return false
				}
			}
			regs = append(regs, region{base, base + Addr(n)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
