// Package mem provides the simulated physical memory: a flat,
// word-addressable backing store standing in for DRAM contents, plus a
// simple bump allocator that simulated software uses to place its data
// structures (task descriptors, deques, application arrays).
//
// The backing store holds the "memory truth". Caches (internal/cache)
// hold copies of these words; under the software-centric coherence
// protocols those copies can be genuinely stale, which is exactly the
// behaviour the work-stealing runtime must handle.
package mem

import "fmt"

// Addr is a simulated byte address. All accesses in this system are
// 8-byte words, and addresses handed out by the allocator are 8-byte
// aligned.
type Addr uint64

// WordSize is the access granularity in bytes.
const WordSize = 8

// LineSize is the cache line size in bytes (64B per paper Table II).
const LineSize = 64

// WordsPerLine is LineSize / WordSize.
const WordsPerLine = LineSize / WordSize

// LineAddr returns the address of the cache line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// WordIndex returns the index of a's word within its cache line.
func WordIndex(a Addr) int { return int(a%LineSize) / WordSize }

// Memory is the flat backing store. Words are allocated lazily in
// fixed-size chunks so that sparse address spaces stay cheap. A
// one-entry memo in front of the chunk map exploits the strong chunk
// locality of line fills and writebacks (8 consecutive words per
// line, lines clustered per data structure), turning most accesses
// into a compare and an indexed load.
type Memory struct {
	chunks   map[Addr][]uint64 // chunk base -> chunkWords values
	lastBase Addr              // memo: base of the chunk last touched
	last     []uint64          // memo: that chunk's words (nil = no memo)
	brk      Addr              // allocator break
}

const (
	chunkWords = 1 << 14 // 16K words = 128KB per chunk
	chunkBytes = chunkWords * WordSize
	// heapBase leaves low addresses unused so that address 0 can serve
	// as the simulated null pointer.
	heapBase Addr = 0x10000
)

// New returns an empty memory with the allocator positioned at the heap
// base.
func New() *Memory {
	return &Memory{chunks: make(map[Addr][]uint64), brk: heapBase}
}

// ReadWord returns the word stored at a. a must be word-aligned.
func (m *Memory) ReadWord(a Addr) uint64 {
	checkAlign(a)
	base := a &^ (chunkBytes - 1)
	if m.last != nil && base == m.lastBase {
		return m.last[(a%chunkBytes)/WordSize]
	}
	c, ok := m.chunks[base]
	if !ok {
		return 0
	}
	m.lastBase, m.last = base, c
	return c[(a%chunkBytes)/WordSize]
}

// WriteWord stores v at a. a must be word-aligned.
func (m *Memory) WriteWord(a Addr, v uint64) {
	checkAlign(a)
	base := a &^ (chunkBytes - 1)
	if m.last != nil && base == m.lastBase {
		m.last[(a%chunkBytes)/WordSize] = v
		return
	}
	c, ok := m.chunks[base]
	if !ok {
		c = make([]uint64, chunkWords)
		m.chunks[base] = c
	}
	m.lastBase, m.last = base, c
	c[(a%chunkBytes)/WordSize] = v
}

// ReadLine copies the full cache line containing a into out.
func (m *Memory) ReadLine(a Addr, out *[WordsPerLine]uint64) {
	base := LineAddr(a)
	for i := 0; i < WordsPerLine; i++ {
		out[i] = m.ReadWord(base + Addr(i*WordSize))
	}
}

// WriteLineMasked writes the words of line whose bit is set in mask back
// to the line containing a.
func (m *Memory) WriteLineMasked(a Addr, line *[WordsPerLine]uint64, mask uint8) {
	base := LineAddr(a)
	for i := 0; i < WordsPerLine; i++ {
		if mask&(1<<i) != 0 {
			m.WriteWord(base+Addr(i*WordSize), line[i])
		}
	}
}

// Alloc reserves n bytes and returns the base address, 64-byte aligned
// so that distinct allocations never share a cache line (the simulated
// runtime relies on this to avoid false sharing of metadata).
func (m *Memory) Alloc(n int) Addr {
	if n < 0 {
		panic("mem: negative allocation")
	}
	base := (m.brk + LineSize - 1) &^ (LineSize - 1)
	m.brk = base + Addr((n+LineSize-1)&^(LineSize-1))
	return base
}

// AllocWords reserves n words and returns the base address.
func (m *Memory) AllocWords(n int) Addr { return m.Alloc(n * WordSize) }

// Brk reports the current allocation break (total footprint end).
func (m *Memory) Brk() Addr { return m.brk }

func checkAlign(a Addr) {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned word access at %#x", uint64(a)))
	}
}
