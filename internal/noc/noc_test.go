package noc

import (
	"testing"
	"testing/quick"
)

func TestHopsXY(t *testing.T) {
	m := NewMesh(8, 8)
	cases := []struct {
		fr, fc, tr, tc, want int
	}{
		{0, 0, 0, 0, 0},
		{0, 0, 0, 7, 7},
		{0, 0, 7, 0, 7},
		{3, 2, 5, 6, 6},
		{7, 7, 0, 0, 14},
	}
	for _, c := range cases {
		got := m.Hops(m.Node(c.fr, c.fc), m.Node(c.tr, c.tc))
		if got != c.want {
			t.Errorf("Hops((%d,%d)->(%d,%d)) = %d, want %d", c.fr, c.fc, c.tr, c.tc, got, c.want)
		}
	}
}

func TestFlitCount(t *testing.T) {
	m := NewMesh(2, 2)
	for _, c := range []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {16, 1}, {17, 2}, {64, 4}, {72, 5},
	} {
		if got := m.Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := NewMesh(8, 8)
	// Single-flit message across 7 hops: 2 cycles per hop.
	got := m.Send(100, m.Node(0, 0), m.Node(0, 7), 8, CPUReq)
	if got != 100+14 {
		t.Fatalf("arrival = %d, want 114", got)
	}
	// 72-byte message (5 flits): head pays 2/hop, tail 4 more cycles.
	m2 := NewMesh(8, 8)
	got = m2.Send(0, m2.Node(0, 0), m2.Node(2, 0), 72, DataResp)
	if got != 4+4 {
		t.Fatalf("multi-flit arrival = %d, want 8", got)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := NewMesh(4, 4)
	got := m.Send(10, m.Node(1, 1), m.Node(1, 1), 8, SyncReq)
	if got != 12 {
		t.Fatalf("local arrival = %d, want 12", got)
	}
}

func TestContentionDelaysSecondMessage(t *testing.T) {
	m := NewMesh(1, 8)
	a := m.Node(0, 0)
	b := m.Node(0, 7)
	t1 := m.Send(0, a, b, 64, DataResp) // 4 flits, occupies links
	t2 := m.Send(0, a, b, 64, DataResp) // must queue behind the first
	if t2 <= t1 {
		t.Fatalf("second message not delayed: t1=%d t2=%d", t1, t2)
	}
}

func TestDisjointPathsNoInterference(t *testing.T) {
	m := NewMesh(8, 8)
	t1 := m.Send(0, m.Node(0, 0), m.Node(0, 3), 8, CPUReq)
	t2 := m.Send(0, m.Node(7, 0), m.Node(7, 3), 8, CPUReq)
	if t1 != t2 {
		t.Fatalf("disjoint rows interfered: %d vs %d", t1, t2)
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := NewMesh(4, 4)
	m.Send(0, m.Node(0, 0), m.Node(1, 1), 8, CPUReq)
	m.Send(0, m.Node(0, 0), m.Node(1, 1), 72, DataResp)
	m.Send(0, m.Node(1, 1), m.Node(0, 0), 72, WBReq)
	if m.Traffic.Bytes[CPUReq] != 8 {
		t.Fatalf("cpu_req bytes = %d", m.Traffic.Bytes[CPUReq])
	}
	if m.Traffic.Bytes[DataResp] != 72 || m.Traffic.Messages[DataResp] != 1 {
		t.Fatal("data_resp accounting wrong")
	}
	if m.Traffic.TotalBytes() != 152 {
		t.Fatalf("total = %d, want 152", m.Traffic.TotalBytes())
	}
	var agg Traffic
	agg.Add(&m.Traffic)
	agg.Add(&m.Traffic)
	if agg.TotalBytes() != 304 {
		t.Fatal("Traffic.Add wrong")
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		CPUReq: "cpu_req", WBReq: "wb_req", DataResp: "data_resp",
		DRAMReq: "dram_req", DRAMResp: "dram_resp",
		SyncReq: "sync_req", SyncResp: "sync_resp",
		CohReq: "coh_req", CohResp: "coh_resp",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
}

// Property: latency is monotone in distance for fresh meshes and always
// at least hops * (router+channel).
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(fr, fc, tr, tc uint8, sz uint16) bool {
		m := NewMesh(8, 8)
		from := m.Node(int(fr%8), int(fc%8))
		to := m.Node(int(tr%8), int(tc%8))
		bytes := int(sz % 256)
		arr := m.Send(1000, from, to, bytes, CPUReq)
		minLat := sim8(m.Hops(from, to))*2 + sim8(m.Flits(bytes)) - 1
		if from == to {
			minLat = 2 + sim8(m.Flits(bytes)) - 1
		}
		return uint64(arr) == 1000+minLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sim8(x int) (t uint64) { return uint64(x) }

func TestAvgHops(t *testing.T) {
	m := NewMesh(4, 4)
	m.Send(0, m.Node(0, 0), m.Node(0, 2), 8, CPUReq) // 2 hops
	m.Send(0, m.Node(0, 0), m.Node(3, 3), 8, CPUReq) // 6 hops
	if got := m.AvgHops(); got != 4 {
		t.Fatalf("AvgHops = %v, want 4", got)
	}
}

func TestLinkUtilization(t *testing.T) {
	m := NewMesh(1, 2)
	m.Send(0, m.Node(0, 0), m.Node(0, 1), 160, DataResp) // 10 flits on one link
	maxU, meanU := m.LinkUtilization(100)
	if maxU != 0.10 {
		t.Fatalf("max utilization = %v, want 0.10", maxU)
	}
	if meanU <= 0 || meanU > maxU {
		t.Fatalf("mean utilization = %v out of range", meanU)
	}
}
