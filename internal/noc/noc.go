// Package noc models the on-chip interconnection network: a 2D mesh
// with XY dimension-order routing, 16-byte flits, 1-cycle router and
// 1-cycle channel latency per hop (paper Table II), per-link bandwidth
// contention, and byte-accurate traffic accounting in the nine message
// categories reported in the paper's Figure 8.
package noc

import (
	"fmt"

	"bigtiny/internal/fault"
	"bigtiny/internal/sim"
)

// NodeID identifies a mesh node (row-major).
type NodeID int

// Category classifies a message for traffic accounting (paper Fig. 8).
type Category int

// Message categories, matching the paper's Figure 8 legend.
const (
	CPUReq   Category = iota // requests from L1 to L2
	WBReq                    // write-back data from L1 to L2
	DataResp                 // data response from L2 to L1
	DRAMReq                  // request from L2 to DRAM
	DRAMResp                 // response from DRAM to L2
	SyncReq                  // synchronization (AMO) request
	SyncResp                 // synchronization response
	CohReq                   // coherence request (invalidations, recalls)
	CohResp                  // coherence response (acks, owner data)
	NumCategories
)

var categoryNames = [NumCategories]string{
	"cpu_req", "wb_req", "data_resp", "dram_req", "dram_resp",
	"sync_req", "sync_resp", "coh_req", "coh_resp",
}

// String returns the paper's name for the category.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("cat(%d)", int(c))
	}
	return categoryNames[c]
}

// Traffic accumulates bytes and message counts per category.
type Traffic struct {
	Bytes    [NumCategories]uint64
	Messages [NumCategories]uint64
}

// TotalBytes sums traffic across all categories.
func (t *Traffic) TotalBytes() uint64 {
	var s uint64
	for _, b := range t.Bytes {
		s += b
	}
	return s
}

// Add accumulates other into t.
func (t *Traffic) Add(other *Traffic) {
	for i := range t.Bytes {
		t.Bytes[i] += other.Bytes[i]
		t.Messages[i] += other.Messages[i]
	}
}

// Mesh is a Rows x Cols mesh network. Each directed link between
// adjacent routers is a unit-capacity resource occupied for one cycle
// per flit.
type Mesh struct {
	Rows, Cols int
	FlitBytes  int
	// ChannelLat + RouterLat is the per-hop head latency.
	ChannelLat sim.Time
	RouterLat  sim.Time

	// Faults, when non-nil, injects latency jitter and congestion
	// bursts into every message (see internal/fault).
	Faults *fault.Injector

	links   []*sim.Resource // directed links, indexed by linkIndex
	Traffic Traffic
	// HopsSum/Sends track average distance for reporting.
	HopsSum uint64
	Sends   uint64
	// ByteHops accumulates payload bytes x hops traversed (energy proxy).
	ByteHops uint64
}

const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

// NewMesh builds a mesh with the paper's default flit size and hop
// latencies.
func NewMesh(rows, cols int) *Mesh {
	m := &Mesh{
		Rows: rows, Cols: cols,
		FlitBytes:  16,
		ChannelLat: 1,
		RouterLat:  1,
	}
	m.links = make([]*sim.Resource, rows*cols*numDirs)
	for n := 0; n < rows*cols; n++ {
		for d := 0; d < numDirs; d++ {
			m.links[n*numDirs+d] = sim.NewResource(fmt.Sprintf("link(%d,%d)", n, d))
		}
	}
	return m
}

// Node returns the NodeID for (row, col).
func (m *Mesh) Node(row, col int) NodeID {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("noc: node (%d,%d) outside %dx%d mesh", row, col, m.Rows, m.Cols))
	}
	return NodeID(row*m.Cols + col)
}

// RowCol returns the coordinates of n.
func (m *Mesh) RowCol(n NodeID) (row, col int) {
	return int(n) / m.Cols, int(n) % m.Cols
}

// Hops returns the XY-routing hop count between two nodes.
func (m *Mesh) Hops(from, to NodeID) int {
	fr, fc := m.RowCol(from)
	tr, tc := m.RowCol(to)
	return abs(fr-tr) + abs(fc-tc)
}

// Flits returns the number of flits needed for a payload of n bytes
// (minimum one flit: even a dataless request occupies a head flit).
func (m *Mesh) Flits(bytes int) int {
	f := (bytes + m.FlitBytes - 1) / m.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Send models transferring a message of the given size from one node to
// another starting at time now. It returns the arrival time of the tail
// flit. The head flit advances one hop per (router+channel) latency and
// waits when a link is congested; each traversed link is occupied for
// one cycle per flit (wormhole-style pipelining).
func (m *Mesh) Send(now sim.Time, from, to NodeID, bytes int, cat Category) sim.Time {
	// Injected faults delay the message's injection into the network
	// (jitter / congestion-burst model).
	now += m.Faults.NoCDelay(now)
	m.Traffic.Bytes[cat] += uint64(bytes)
	m.Traffic.Messages[cat]++
	m.Sends++

	flits := m.Flits(bytes)
	hopLat := m.ChannelLat + m.RouterLat
	if from == to {
		// Local delivery still pays one router traversal.
		return now + hopLat + sim.Time(flits-1)
	}

	fr, fc := m.RowCol(from)
	tr, tc := m.RowCol(to)
	t := now
	hops := 0
	// XY routing: travel along the row (X) first, then the column (Y).
	r, c := fr, fc
	for c != tc {
		dir := dirEast
		nextC := c + 1
		if tc < c {
			dir = dirWest
			nextC = c - 1
		}
		t = m.traverse(t, r, c, dir, flits, hopLat)
		c = nextC
		hops++
	}
	for r != tr {
		dir := dirSouth
		nextR := r + 1
		if tr < r {
			dir = dirNorth
			nextR = r - 1
		}
		t = m.traverse(t, r, c, dir, flits, hopLat)
		r = nextR
		hops++
	}
	m.HopsSum += uint64(hops)
	m.ByteHops += uint64(bytes) * uint64(hops)
	return t + sim.Time(flits-1)
}

// SendLossy is Send for the steal path of the ULI mesh: the message may
// be lost. The drop decision comes from the passed injector (the ULI
// mesh carries no injector of its own — timing faults apply to the data
// mesh only, and drops are decided per steal-path message here) and is
// drawn before the flits are injected. A dropped message still
// traverses the network — the bytes are spent, traffic is counted, and
// loss is modelled at the receiving network interface — so the caller
// gets the would-be arrival time along with dropped=true and simply
// never schedules the delivery.
func (m *Mesh) SendLossy(now sim.Time, from, to NodeID, bytes int, cat Category,
	in *fault.Injector) (arrive sim.Time, dropped bool) {
	switch cat {
	case SyncReq:
		dropped = in.ULIDropReq()
	case SyncResp:
		dropped = in.ULIDropResp()
	}
	return m.Send(now, from, to, bytes, cat), dropped
}

// traverse moves the head flit across one link, modelling both queueing
// (the link may be busy with earlier messages) and bandwidth (the link
// is occupied one cycle per flit).
func (m *Mesh) traverse(t sim.Time, row, col, dir, flits int, hopLat sim.Time) sim.Time {
	link := m.links[(row*m.Cols+col)*numDirs+dir]
	done := link.Acquire(t, sim.Time(flits))
	// The head flit leaves when it has been serviced for one cycle after
	// any queueing delay; done-flits is the start-of-service time.
	start := done - sim.Time(flits)
	return start + hopLat
}

// AvgHops reports the mean hop count over all sends.
func (m *Mesh) AvgHops() float64 {
	if m.Sends == 0 {
		return 0
	}
	return float64(m.HopsSum) / float64(m.Sends)
}

// LinkUtilization returns the maximum and mean utilization across all
// links for the elapsed time.
func (m *Mesh) LinkUtilization(elapsed sim.Time) (maxU, meanU float64) {
	var sum float64
	for _, l := range m.links {
		u := l.Utilization(elapsed)
		sum += u
		if u > maxU {
			maxU = u
		}
	}
	return maxU, sum / float64(len(m.links))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
