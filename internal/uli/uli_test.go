package uli

import (
	"testing"

	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// testRig wires a fabric with n cores on a 1xN mesh, each running a
// configurable loop.
func newFabric(k *sim.Kernel, n int) *Fabric {
	return NewFabric(k, 1, n, n, func(c int) noc.NodeID { return noc.NodeID(c) })
}

func TestStealRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	f := newFabric(k, 2)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.EntryLat = 5

	handled := false
	victim.SetHandler(func(th int) uint64 {
		if th != 1 {
			t.Errorf("handler thief = %d, want 1", th)
		}
		handled = true
		return 0xCAFE
	})

	var gotPayload uint64
	var gotOK bool
	vp := k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		// Victim does "work", polling at instruction boundaries.
		for i := 0; i < 2000; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	_ = vp
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		thief.Enable()
		gotPayload, gotOK = thief.SendReq(p, 0)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !handled || !gotOK || gotPayload != 0xCAFE {
		t.Fatalf("steal failed: handled=%v ok=%v payload=%#x", handled, gotOK, gotPayload)
	}
	if f.Stats.Acks != 1 || f.Stats.Nacks != 0 || f.Stats.Reqs != 1 {
		t.Fatalf("stats = %+v", f.Stats)
	}
	if f.Stats.AvgLatency() < 5 {
		t.Fatalf("latency %v implausibly low", f.Stats.AvgLatency())
	}
}

func TestNackWhenDisabled(t *testing.T) {
	k := sim.NewKernel()
	f := newFabric(k, 2)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.SetHandler(func(int) uint64 { return 1 })

	var ok bool
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		// ULI never enabled.
		p.Delay(500)
	})
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		_, ok = thief.SendReq(p, 0)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("steal from disabled core succeeded")
	}
	if f.Stats.Nacks != 1 {
		t.Fatalf("nacks = %d, want 1", f.Stats.Nacks)
	}
}

func TestMutualStealNoDeadlock(t *testing.T) {
	// Two cores steal from each other simultaneously. The
	// NACK-while-waiting rule must prevent deadlock.
	k := sim.NewKernel()
	k.SetDeadline(1_000_000)
	f := newFabric(k, 2)
	results := make([]bool, 2)
	for i := 0; i < 2; i++ {
		i := i
		u := f.Unit(i)
		u.SetHandler(func(int) uint64 { return 42 })
		k.NewProc("core", 0, func(p *sim.Proc) {
			u.Bind(p)
			u.Enable()
			_, results[i] = u.SendReq(p, 1-i)
			// Keep polling a while so a retry could succeed.
			for j := 0; j < 100; j++ {
				u.Poll(p)
				p.Delay(1)
			}
			u.Disable()
		})
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	// At least one must have been NACKed (both were waiting), and the
	// system must terminate (checked by Run returning).
	if results[0] && results[1] {
		t.Fatal("both mutual steals succeeded; expected at least one NACK")
	}
}

func TestBusyHandlerNacksSecondThief(t *testing.T) {
	k := sim.NewKernel()
	f := newFabric(k, 3)
	victim := f.Unit(0)
	victim.EntryLat = 2
	victim.SetHandler(func(int) uint64 {
		return 7
	})
	oks := make([]bool, 3)
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		for i := 0; i < 5000; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	// Two thieves fire at the same instant.
	for i := 1; i <= 2; i++ {
		i := i
		u := f.Unit(i)
		k.NewProc("thief", 5, func(p *sim.Proc) {
			u.Bind(p)
			_, oks[i] = u.SendReq(p, 0)
		})
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if oks[1] && oks[2] {
		// Both could succeed if the buffer drained between arrivals —
		// but they were sent at the same cycle from equidistant nodes...
		// distances differ (1 hop vs 2 hops), so sequential success is
		// actually possible. Accept either, but at least one must
		// succeed.
	}
	if !oks[1] && !oks[2] {
		t.Fatal("both thieves NACKed by an idle polling victim")
	}
}

func TestDisableNacksPendingRequest(t *testing.T) {
	// A request buffered but not yet delivered when the victim disables
	// ULI is NACKed (a disabled core replies NACK, and a core must never
	// exit while a thief is still blocked on it).
	k := sim.NewKernel()
	f := newFabric(k, 2)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.SetHandler(func(int) uint64 { return 9 })
	var ok, returned bool
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		p.Delay(20) // request arrives during this window and is buffered
		victim.Disable()
		// Victim exits without ever polling again.
	})
	k.NewProc("thief", 5, func(p *sim.Proc) {
		thief.Bind(p)
		_, ok = thief.SendReq(p, 0)
		returned = true
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !returned {
		t.Fatal("thief never unblocked")
	}
	if ok {
		t.Fatal("steal from a disabling core should NACK")
	}
	if f.Stats.Nacks != 1 {
		t.Fatalf("nacks = %d, want 1", f.Stats.Nacks)
	}
}

func TestHandlerCostsVictimTime(t *testing.T) {
	k := sim.NewKernel()
	f := newFabric(k, 2)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.EntryLat = 30 // big-core-style entry
	victim.SetHandler(func(int) uint64 { return 1 })
	var victimEnd sim.Time
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		for i := 0; i < 100; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
		victimEnd = p.Now()
	})
	k.NewProc("thief", 0, func(p *sim.Proc) {
		thief.Bind(p)
		thief.SendReq(p, 0)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if victimEnd < 130 {
		t.Fatalf("victim finished at %d; handler entry cost not charged", victimEnd)
	}
}
