// Package uli models the inter-processor user-level interrupt (ULI)
// mechanism that direct task stealing is built on (paper §IV-A, §V-A):
// a dedicated mesh network with single-word messages and two virtual
// channels (request/response, modelled as separate traffic categories on
// a dedicated mesh so they cannot deadlock against each other), plus a
// per-core hardware unit with a one-deep request buffer that NACKs when
// busy or when the receiving core has ULI disabled.
//
// A steal response carries the stolen task pointer as its single-word
// payload (the per-thread "mailbox" register of paper Fig. 3c).
package uli

import (
	"fmt"
	"io"

	"bigtiny/internal/fault"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// Message sizes: a ULI message is a single word plus header.
const msgBytes = 16

// Handler services a steal request on the victim core. It runs on the
// victim's simulated thread (its env ops cost victim cycles) and
// returns the single-word payload for the response (the stolen task
// pointer, or 0 for "nothing to steal").
type Handler func(thief int) uint64

// Stats aggregates ULI activity for the paper's §VI-C overhead report.
// Every request terminates in exactly one of Acks, Nacks, or Drops
// (Reqs == Acks + Nacks + Drops); Timeouts, LateAcks, and Restitutions
// count recovery events and overlap the three terminal outcomes.
type Stats struct {
	Reqs        uint64 // requests sent
	Acks        uint64 // ACK responses sent and delivered (possibly late)
	Nacks       uint64 // NACK responses sent and delivered
	Drops       uint64 // requests lost: the request itself, or its response, vanished
	HandlerRuns uint64

	// Recovery events (lossy scenarios only).
	Timeouts     uint64 // thief gave up waiting and treated the steal as NACKed
	LateAcks     uint64 // ACK arrived after the thief timed out; payload salvaged
	Restitutions uint64 // victim re-enqueued a stolen task whose ACK was dropped

	// LatencySum accumulates request-to-response cycles for Acks.
	LatencySum sim.Time
}

// AvgLatency returns the mean ACK round-trip latency.
func (s *Stats) AvgLatency() float64 {
	if s.Acks == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Acks)
}

// DefaultStealTimeout is the steal-request timeout the machine arms for
// lossy scenarios, in cycles. It must comfortably exceed the worst-case
// round trip (mesh traversal + injected delay + handler entry + handler
// body): spurious timeouts only cost a retry, but a tight value would
// fire constantly under NACK-storm delay tails.
const DefaultStealTimeout = 4096

// Fabric is the ULI interconnect plus all core units.
type Fabric struct {
	kernel *sim.Kernel
	mesh   *noc.Mesh
	units  []*Unit
	Stats  Stats

	// Faults, when non-nil, injects forced NACKs, delivery delays, and
	// steal-path drops (see internal/fault).
	Faults *fault.Injector

	// Timeout, when nonzero, bounds how long SendReq waits for a
	// response before treating the steal as NACKed. Zero (the default)
	// keeps the original lossless protocol: no timer is ever armed and
	// responses write the thief's registers at victim send time, so
	// fault-free cycle counts are untouched by the recovery machinery.
	Timeout sim.Time

	// ShardOf maps a core to its event shard on a sharded kernel (set
	// by the machine layer from its ShardPlan; nil when serial). A ULI
	// delivery is a cross-core message, so its arrival event belongs to
	// the *receiving* core's shard, not the sender's.
	ShardOf func(core int) int
}

// at schedules a message-arrival event on the receiving core's shard.
func (f *Fabric) at(core int, t sim.Time, fn func()) {
	if f.ShardOf != nil {
		f.kernel.AtOn(f.ShardOf(core), t, fn)
		return
	}
	f.kernel.At(t, fn)
}

// NewFabric builds the ULI network for numCores cores whose positions
// are given by nodeOf.
func NewFabric(k *sim.Kernel, rows, cols, numCores int, nodeOf func(core int) noc.NodeID) *Fabric {
	f := &Fabric{kernel: k, mesh: noc.NewMesh(rows, cols)}
	for c := 0; c < numCores; c++ {
		f.units = append(f.units, &Unit{fabric: f, core: c, node: nodeOf(c)})
	}
	return f
}

// Mesh exposes the dedicated ULI mesh (for utilization reporting).
func (f *Fabric) Mesh() *noc.Mesh { return f.mesh }

// Unit returns core's ULI unit.
func (f *Fabric) Unit(core int) *Unit { return f.units[core] }

// Unit is the per-core ULI send/receive hardware.
type Unit struct {
	fabric *Fabric
	core   int
	node   noc.NodeID

	enabled bool
	// pending is the one-deep request buffer.
	pending *request
	// handling marks that the handler is currently running.
	handling bool
	// waiting marks that this core is blocked inside SendReq; incoming
	// requests are NACKed (interrupts deferred during an in-flight send,
	// which also rules out thief/thief deadlock).
	waiting bool

	handler Handler
	// EntryLat models pipeline drain before vectoring to the handler
	// (a few cycles on the in-order tiny cores, 10-50 on the big cores;
	// paper §VI-C).
	EntryLat sim.Time

	// respPayload/respOK hold the hardware response register while the
	// sender is blocked.
	respPayload uint64
	respOK      bool
	respAt      sim.Time

	// epoch stamps each outgoing request so a response that limps in
	// after the thief timed out (or after a newer request went out) is
	// recognized as stale. respDone marks the current request as
	// terminated (response delivered or timed out). Both are only
	// consulted when fabric.Timeout > 0.
	epoch    uint64
	respDone bool
	timer    *sim.Timer

	// late is the salvage mailbox: payloads of stale ACKs (task pointers
	// the victim handed over, but whose hand-off the thief had already
	// given up on). Drained at Poll via the salvage hook so no task is
	// ever lost.
	late []uint64
	// salvage takes ownership of a stale-ACK payload (runtime hook).
	salvage func(payload uint64)
	// restitute returns a stolen task to the victim when the ACK
	// carrying it was dropped (runtime hook; runs on the victim thread).
	restitute func(payload uint64)

	// proc is the simulated thread running on this core (set by Bind).
	proc *sim.Proc
}

type request struct {
	thief   int
	arrived sim.Time
	sentAt  sim.Time
	epoch   uint64 // thief's epoch at send time, echoed in the response
}

// SetSalvage installs the hook that takes ownership of stale-ACK
// payloads (tasks whose hand-off the thief timed out on).
func (u *Unit) SetSalvage(fn func(payload uint64)) { u.salvage = fn }

// SetRestitute installs the hook that returns a stolen task to this
// (victim) core when the ACK carrying it was dropped.
func (u *Unit) SetRestitute(fn func(payload uint64)) { u.restitute = fn }

// TakeLate pops one payload from the salvage mailbox without running
// the salvage hook. Used by reclaimers after this core fail-stopped
// and can no longer Poll (modelled as a memory-mapped mailbox read).
func (u *Unit) TakeLate() (payload uint64, ok bool) {
	if len(u.late) == 0 {
		return 0, false
	}
	p := u.late[0]
	u.late = u.late[1:]
	return p, true
}

// SetHandler installs the software ULI handler (runtime init).
func (u *Unit) SetHandler(h Handler) { u.handler = h }

// Enabled reports whether ULI delivery is enabled.
func (u *Unit) Enabled() bool { return u.enabled }

// Enable turns on ULI delivery (uli_enable; 1 cycle, charged by caller).
func (u *Unit) Enable() { u.enabled = true }

// Disable turns off ULI delivery (uli_disable). A buffered,
// not-yet-delivered request is NACKed: a disabled core replies NACK
// (paper §IV-A), and this also guarantees that a core can never exit
// with a thief still blocked on it.
func (u *Unit) Disable() {
	u.enabled = false
	if u.pending != nil {
		req := u.pending
		u.pending = nil
		u.fabric.nack(u.fabric.kernel.Now(), u, req)
	}
}

// SendReq sends a steal request from this core's thread (running on
// proc) to the victim core and blocks until the ACK or NACK arrives —
// or, when fabric.Timeout is armed, until the timeout fires, which the
// thief treats as a NACK (the caller retries with backoff). It returns
// the response payload and whether the steal was accepted. The victim's
// handler runs on the victim's own thread (paper: "the victim steals
// tasks on behalf of the thief").
func (u *Unit) SendReq(proc *sim.Proc, victim int) (payload uint64, ok bool) {
	f := u.fabric
	f.Stats.Reqs++
	v := f.units[victim]
	sentAt := proc.Now()
	arrive, dropped := f.mesh.SendLossy(sentAt, u.node, v.node, msgBytes, noc.SyncReq, f.Faults)
	arrive += f.Faults.ULIDelay(arrive)
	u.epoch++
	u.respDone = false
	ep := u.epoch
	if dropped {
		f.Stats.Drops++
		if f.Timeout == 0 {
			// Defensive: a drop with no timeout armed would hang the
			// thief forever. Model the loss as an instant NACK at the
			// would-be arrival time (the machine layer always arms the
			// timeout for lossy scenarios, so this path is unreachable
			// in normal configurations).
			proc.WaitUntil(arrive)
			return 0, false
		}
	} else {
		f.at(victim, arrive, func() {
			v.receive(arrive, &request{
				thief: u.core, arrived: arrive, sentAt: sentAt, epoch: ep})
		})
	}
	u.waiting = true
	if f.Timeout > 0 {
		u.timer = f.kernel.TimerAt(sentAt+f.Timeout, func() { u.timeoutFire(ep) })
	}
	proc.Block() // resumed by the response delivery or the timeout
	u.waiting = false
	u.timer.Stop()
	u.timer = nil
	proc.WaitUntil(u.respAt)
	return u.respPayload, u.respOK
}

// receive runs in the kernel at request-arrival time on the victim
// unit.
func (u *Unit) receive(now sim.Time, req *request) {
	// An injected NACK storm refuses the request before the unit even
	// looks at its own state, modelling a victim whose buffer is held
	// busy by adversarial timing.
	if u.fabric.Faults.ULIForceNack(now) {
		u.fabric.nack(now, u, req)
		return
	}
	if !u.enabled || u.handling || u.waiting || u.pending != nil {
		u.fabric.nack(now, u, req)
		return
	}
	// Buffer the request; the victim's thread picks it up at its next
	// interruptible instruction boundary (Poll).
	u.pending = req
}

// nack sends a refusal back to the thief. A dropped NACK terminates the
// request as a Drop; the thief's timeout recovers it.
func (f *Fabric) nack(now sim.Time, victim *Unit, req *request) {
	t := f.units[req.thief]
	arrive, dropped := f.mesh.SendLossy(now, victim.node, t.node, msgBytes, noc.SyncResp, f.Faults)
	arrive += f.Faults.ULIDelay(arrive)
	if dropped {
		f.Stats.Drops++
		return
	}
	f.Stats.Nacks++
	if f.Timeout == 0 {
		t.respPayload, t.respOK, t.respAt = 0, false, arrive
		t.unblockAt(arrive)
		return
	}
	f.at(req.thief, arrive, func() { t.deliverResp(arrive, req.epoch, 0, false) })
}

// deliverResp runs in the kernel at response-arrival time on the thief
// unit (timeout-armed fabrics only). A response for a request the thief
// already gave up on is stale: its registers are not touched, and a
// stale ACK's payload — a task the victim handed over — goes to the
// salvage mailbox instead of being lost.
func (u *Unit) deliverResp(at sim.Time, ep uint64, payload uint64, ok bool) {
	if ep != u.epoch || u.respDone {
		if ok && payload != 0 {
			u.fabric.Stats.LateAcks++
			u.late = append(u.late, payload)
		}
		return
	}
	u.respDone = true
	u.timer.Stop()
	u.respPayload, u.respOK, u.respAt = payload, ok, at
	u.unblockAt(at)
}

// timeoutFire runs in the kernel when the thief's steal timer expires.
// The thief resumes as if NACKed; a response still in flight will be
// recognized as stale by deliverResp.
func (u *Unit) timeoutFire(ep uint64) {
	if ep != u.epoch || u.respDone {
		return
	}
	u.respDone = true
	u.fabric.Stats.Timeouts++
	now := u.fabric.kernel.Now()
	u.respPayload, u.respOK, u.respAt = 0, false, now
	u.unblockAt(now)
}

// unblockAt wakes the blocked sending thread at time at.
func (u *Unit) unblockAt(at sim.Time) {
	if u.proc == nil {
		panic("uli: response for a core with no thread")
	}
	u.proc.Unblock(at)
}

// Bind attaches the simulated thread that runs on this unit's core.
func (u *Unit) Bind(p *sim.Proc) { u.proc = p }

// Poll must be called by the core model at every instruction boundary.
// First it drains the salvage mailbox (tasks from stale ACKs), then, if
// a buffered request is deliverable, the ULI handler runs inline on
// this (victim) thread: entry stall, handler body, then the response
// send. Poll returns after the response is sent; the victim resumes its
// interrupted work.
func (u *Unit) Poll(proc *sim.Proc) {
	if len(u.late) > 0 && u.enabled && !u.handling && u.salvage != nil {
		// Salvage under the same discipline as a handler run: handling
		// is held so an arriving steal request cannot interrupt the
		// salvage's own deque operations.
		u.handling = true
		for len(u.late) > 0 {
			p := u.late[0]
			u.late = u.late[1:]
			u.salvage(p)
		}
		u.handling = false
	}
	if u.pending == nil || !u.enabled || u.handling {
		return
	}
	req := u.pending
	u.pending = nil
	u.handling = true
	u.fabric.Stats.HandlerRuns++
	proc.Delay(u.EntryLat)
	payload := uint64(0)
	if u.handler != nil {
		payload = u.handler(req.thief)
	}
	f := u.fabric
	t := f.units[req.thief]
	arrive, dropped := f.mesh.SendLossy(proc.Now(), u.node, t.node, msgBytes, noc.SyncResp, f.Faults)
	arrive += f.Faults.ULIDelay(arrive)
	if dropped {
		// The hand-off is lost: the thief's timeout will treat the steal
		// as NACKed, so the victim takes the task back (restitution) —
		// it must not be lost, and the thief must not get it twice.
		f.Stats.Drops++
		if payload != 0 {
			f.Stats.Restitutions++
			if u.restitute == nil {
				panic("uli: dropped ACK with a task payload and no restitute hook")
			}
			u.restitute(payload)
		}
		u.handling = false
		return
	}
	f.Stats.Acks++
	f.Stats.LatencySum += arrive - req.sentAt
	if f.Timeout == 0 {
		t.respPayload, t.respOK, t.respAt = payload, true, arrive
		t.unblockAt(arrive)
	} else {
		f.at(req.thief, arrive, func() { t.deliverResp(arrive, req.epoch, payload, true) })
	}
	u.handling = false
}

// DumpState writes the fabric's diagnostic state: aggregate stats plus
// every unit that is mid-protocol (waiting in SendReq, running a
// handler, or holding a buffered request) — the state needed to debug a
// steal livelock. Registered as a kernel dump hook by the machine
// layer.
func (f *Fabric) DumpState(w io.Writer) {
	enabled := 0
	for _, u := range f.units {
		if u.enabled {
			enabled++
		}
	}
	fmt.Fprintf(w, "uli: reqs=%d acks=%d nacks=%d drops=%d timeouts=%d late-acks=%d restitutions=%d handlers=%d, %d/%d units enabled\n",
		f.Stats.Reqs, f.Stats.Acks, f.Stats.Nacks, f.Stats.Drops,
		f.Stats.Timeouts, f.Stats.LateAcks, f.Stats.Restitutions,
		f.Stats.HandlerRuns, enabled, len(f.units))
	for _, u := range f.units {
		if !u.waiting && !u.handling && u.pending == nil && len(u.late) == 0 {
			continue
		}
		line := fmt.Sprintf("  unit %d: enabled=%v waiting=%v handling=%v",
			u.core, u.enabled, u.waiting, u.handling)
		if u.pending != nil {
			line += fmt.Sprintf(" pending(thief=%d arrived=%d)",
				u.pending.thief, u.pending.arrived)
		}
		if len(u.late) > 0 {
			line += fmt.Sprintf(" salvage-mailbox=%d", len(u.late))
		}
		fmt.Fprintln(w, line)
	}
}
