// Package uli models the inter-processor user-level interrupt (ULI)
// mechanism that direct task stealing is built on (paper §IV-A, §V-A):
// a dedicated mesh network with single-word messages and two virtual
// channels (request/response, modelled as separate traffic categories on
// a dedicated mesh so they cannot deadlock against each other), plus a
// per-core hardware unit with a one-deep request buffer that NACKs when
// busy or when the receiving core has ULI disabled.
//
// A steal response carries the stolen task pointer as its single-word
// payload (the per-thread "mailbox" register of paper Fig. 3c).
package uli

import (
	"fmt"
	"io"

	"bigtiny/internal/fault"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
)

// Message sizes: a ULI message is a single word plus header.
const msgBytes = 16

// Handler services a steal request on the victim core. It runs on the
// victim's simulated thread (its env ops cost victim cycles) and
// returns the single-word payload for the response (the stolen task
// pointer, or 0 for "nothing to steal").
type Handler func(thief int) uint64

// Stats aggregates ULI activity for the paper's §VI-C overhead report.
type Stats struct {
	Reqs        uint64 // requests sent
	Acks        uint64 // successful responses
	Nacks       uint64 // refused requests
	HandlerRuns uint64
	// LatencySum accumulates request-to-response cycles for Acks.
	LatencySum sim.Time
}

// AvgLatency returns the mean ACK round-trip latency.
func (s *Stats) AvgLatency() float64 {
	if s.Acks == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Acks)
}

// Fabric is the ULI interconnect plus all core units.
type Fabric struct {
	kernel *sim.Kernel
	mesh   *noc.Mesh
	units  []*Unit
	Stats  Stats

	// Faults, when non-nil, injects forced NACKs and delivery delays
	// (see internal/fault).
	Faults *fault.Injector
}

// NewFabric builds the ULI network for numCores cores whose positions
// are given by nodeOf.
func NewFabric(k *sim.Kernel, rows, cols, numCores int, nodeOf func(core int) noc.NodeID) *Fabric {
	f := &Fabric{kernel: k, mesh: noc.NewMesh(rows, cols)}
	for c := 0; c < numCores; c++ {
		f.units = append(f.units, &Unit{fabric: f, core: c, node: nodeOf(c)})
	}
	return f
}

// Mesh exposes the dedicated ULI mesh (for utilization reporting).
func (f *Fabric) Mesh() *noc.Mesh { return f.mesh }

// Unit returns core's ULI unit.
func (f *Fabric) Unit(core int) *Unit { return f.units[core] }

// Unit is the per-core ULI send/receive hardware.
type Unit struct {
	fabric *Fabric
	core   int
	node   noc.NodeID

	enabled bool
	// pending is the one-deep request buffer.
	pending *request
	// handling marks that the handler is currently running.
	handling bool
	// waiting marks that this core is blocked inside SendReq; incoming
	// requests are NACKed (interrupts deferred during an in-flight send,
	// which also rules out thief/thief deadlock).
	waiting bool

	handler Handler
	// EntryLat models pipeline drain before vectoring to the handler
	// (a few cycles on the in-order tiny cores, 10-50 on the big cores;
	// paper §VI-C).
	EntryLat sim.Time

	// respPayload/respOK hold the hardware response register while the
	// sender is blocked.
	respPayload uint64
	respOK      bool
	respAt      sim.Time

	// proc is the simulated thread running on this core (set by Bind).
	proc *sim.Proc
}

type request struct {
	thief   int
	arrived sim.Time
	sentAt  sim.Time
}

// SetHandler installs the software ULI handler (runtime init).
func (u *Unit) SetHandler(h Handler) { u.handler = h }

// Enabled reports whether ULI delivery is enabled.
func (u *Unit) Enabled() bool { return u.enabled }

// Enable turns on ULI delivery (uli_enable; 1 cycle, charged by caller).
func (u *Unit) Enable() { u.enabled = true }

// Disable turns off ULI delivery (uli_disable). A buffered,
// not-yet-delivered request is NACKed: a disabled core replies NACK
// (paper §IV-A), and this also guarantees that a core can never exit
// with a thief still blocked on it.
func (u *Unit) Disable() {
	u.enabled = false
	if u.pending != nil {
		req := u.pending
		u.pending = nil
		u.fabric.nack(u.fabric.kernel.Now(), u, req.thief)
	}
}

// SendReq sends a steal request from this core's thread (running on
// proc) to the victim core and blocks until the ACK or NACK arrives.
// It returns the response payload and whether the steal was accepted.
// The victim's handler runs on the victim's own thread (paper: "the
// victim steals tasks on behalf of the thief").
func (u *Unit) SendReq(proc *sim.Proc, victim int) (payload uint64, ok bool) {
	f := u.fabric
	f.Stats.Reqs++
	v := f.units[victim]
	sentAt := proc.Now()
	arrive := f.mesh.Send(sentAt, u.node, v.node, msgBytes, noc.SyncReq)
	arrive += f.Faults.ULIDelay(arrive)
	u.waiting = true
	f.kernel.At(arrive, func() { v.receive(u.core, arrive, sentAt) })
	proc.Block() // resumed by the response (or NACK) arrival event
	u.waiting = false
	proc.WaitUntil(u.respAt)
	return u.respPayload, u.respOK
}

// receive runs in the kernel at request-arrival time on the victim
// unit.
func (u *Unit) receive(thief int, now, sentAt sim.Time) {
	// An injected NACK storm refuses the request before the unit even
	// looks at its own state, modelling a victim whose buffer is held
	// busy by adversarial timing.
	if u.fabric.Faults.ULIForceNack(now) {
		u.fabric.nack(now, u, thief)
		return
	}
	if !u.enabled || u.handling || u.waiting || u.pending != nil {
		u.fabric.nack(now, u, thief)
		return
	}
	// Buffer the request; the victim's thread picks it up at its next
	// interruptible instruction boundary (Poll).
	u.pending = &request{thief: thief, arrived: now, sentAt: sentAt}
}

// nack sends a refusal back to the thief.
func (f *Fabric) nack(now sim.Time, victim *Unit, thief int) {
	f.Stats.Nacks++
	t := f.units[thief]
	arrive := f.mesh.Send(now, victim.node, t.node, msgBytes, noc.SyncResp)
	arrive += f.Faults.ULIDelay(arrive)
	t.respPayload, t.respOK, t.respAt = 0, false, arrive
	t.unblockAt(arrive)
}

// unblockAt wakes the blocked sending thread at time at.
func (u *Unit) unblockAt(at sim.Time) {
	if u.proc == nil {
		panic("uli: response for a core with no thread")
	}
	u.proc.Unblock(at)
}

// Bind attaches the simulated thread that runs on this unit's core.
func (u *Unit) Bind(p *sim.Proc) { u.proc = p }

// Poll must be called by the core model at every instruction boundary.
// If a buffered request is deliverable, the ULI handler runs inline on
// this (victim) thread: entry stall, handler body, then the response
// send. Poll returns after the response is sent; the victim resumes its
// interrupted work.
func (u *Unit) Poll(proc *sim.Proc) {
	if u.pending == nil || !u.enabled || u.handling {
		return
	}
	req := u.pending
	u.pending = nil
	u.handling = true
	u.fabric.Stats.HandlerRuns++
	proc.Delay(u.EntryLat)
	payload := uint64(0)
	if u.handler != nil {
		payload = u.handler(req.thief)
	}
	f := u.fabric
	f.Stats.Acks++
	t := f.units[req.thief]
	arrive := f.mesh.Send(proc.Now(), u.node, t.node, msgBytes, noc.SyncResp)
	arrive += f.Faults.ULIDelay(arrive)
	f.Stats.LatencySum += arrive - req.sentAt
	t.respPayload, t.respOK, t.respAt = payload, true, arrive
	t.unblockAt(arrive)
	u.handling = false
}

// DumpState writes the fabric's diagnostic state: aggregate stats plus
// every unit that is mid-protocol (waiting in SendReq, running a
// handler, or holding a buffered request) — the state needed to debug a
// steal livelock. Registered as a kernel dump hook by the machine
// layer.
func (f *Fabric) DumpState(w io.Writer) {
	enabled := 0
	for _, u := range f.units {
		if u.enabled {
			enabled++
		}
	}
	fmt.Fprintf(w, "uli: reqs=%d acks=%d nacks=%d handlers=%d, %d/%d units enabled\n",
		f.Stats.Reqs, f.Stats.Acks, f.Stats.Nacks, f.Stats.HandlerRuns,
		enabled, len(f.units))
	for _, u := range f.units {
		if !u.waiting && !u.handling && u.pending == nil {
			continue
		}
		line := fmt.Sprintf("  unit %d: enabled=%v waiting=%v handling=%v",
			u.core, u.enabled, u.waiting, u.handling)
		if u.pending != nil {
			line += fmt.Sprintf(" pending(thief=%d arrived=%d)",
				u.pending.thief, u.pending.arrived)
		}
		fmt.Fprintln(w, line)
	}
}
