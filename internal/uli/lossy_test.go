package uli

import (
	"testing"

	"bigtiny/internal/fault"
	"bigtiny/internal/sim"
)

// lossyFabric wires a 2-core fabric with a custom scenario and a steal
// timeout, as the machine layer does for lossy runs.
func lossyFabric(k *sim.Kernel, sc fault.Scenario, timeout sim.Time) *Fabric {
	f := newFabric(k, 2)
	f.Faults = fault.NewInjector(sc, 1)
	f.Timeout = timeout
	return f
}

// TestDroppedRequestTimesOut: when the steal request vanishes on the
// mesh, the thief's timer fires and SendReq returns a NACK-equivalent
// failure at exactly sentAt+Timeout.
func TestDroppedRequestTimesOut(t *testing.T) {
	k := sim.NewKernel()
	k.SetDeadline(10_000)
	f := lossyFabric(k, fault.Scenario{ULIReqDropProb: 1}, 64)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.SetHandler(func(int) uint64 { return 0xCAFE })

	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		for i := 0; i < 200; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	var ok bool
	var resumedAt sim.Time
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		_, ok = thief.SendReq(p, 0)
		resumedAt = p.Now()
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("steal over a dropped request succeeded")
	}
	if resumedAt != 10+64 {
		t.Fatalf("thief resumed at %d, want %d (sentAt+Timeout)", resumedAt, 10+64)
	}
	s := f.Stats
	if s.Reqs != 1 || s.Drops != 1 || s.Timeouts != 1 || s.Acks != 0 || s.Nacks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Reqs != s.Acks+s.Nacks+s.Drops {
		t.Fatalf("accounting identity violated: %+v", s)
	}
}

// TestDroppedAckRestitution: the victim's handler hands a task over but
// the ACK carrying it is dropped. The victim must take the task back
// (restitution) so it is neither lost nor duplicated, and the thief
// times out empty-handed.
func TestDroppedAckRestitution(t *testing.T) {
	k := sim.NewKernel()
	k.SetDeadline(10_000)
	f := lossyFabric(k, fault.Scenario{ULIRespDropProb: 1}, 64)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.SetHandler(func(int) uint64 { return 0xBEEF })
	var restituted []uint64
	victim.SetRestitute(func(p uint64) { restituted = append(restituted, p) })

	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		for i := 0; i < 500; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	var ok bool
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		_, ok = thief.SendReq(p, 0)
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("steal succeeded despite its ACK being dropped")
	}
	if len(restituted) != 1 || restituted[0] != 0xBEEF {
		t.Fatalf("restituted = %#x, want [0xBEEF]", restituted)
	}
	s := f.Stats
	if s.Restitutions != 1 || s.Drops != 1 || s.Timeouts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Reqs != s.Acks+s.Nacks+s.Drops {
		t.Fatalf("accounting identity violated: %+v", s)
	}
}

// TestLateAckSalvaged: the victim is busy past the thief's timeout, so
// the ACK arrives stale. Its payload must land in the thief's salvage
// mailbox and be handed to the salvage hook at the thief's next Poll —
// the task is recovered, not lost.
func TestLateAckSalvaged(t *testing.T) {
	k := sim.NewKernel()
	k.SetDeadline(10_000)
	// No drops at all: the loss here is purely temporal (a too-slow ACK).
	f := lossyFabric(k, fault.Scenario{}, 32)
	victim, thief := f.Unit(0), f.Unit(1)
	victim.SetHandler(func(int) uint64 { return 0xF00D })
	var salvaged []uint64
	thief.SetSalvage(func(p uint64) { salvaged = append(salvaged, p) })

	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		// Busy-compute far past the thief's 32-cycle timeout before the
		// first Poll: the ACK goes out long after the thief gave up.
		p.Delay(200)
		for i := 0; i < 200; i++ {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	var ok bool
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		thief.Enable()
		_, ok = thief.SendReq(p, 0)
		// Keep polling: the stale ACK arrives later and must be salvaged.
		for i := 0; i < 400; i++ {
			thief.Poll(p)
			p.Delay(1)
		}
		thief.Disable()
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("timed-out steal reported success")
	}
	if len(salvaged) != 1 || salvaged[0] != 0xF00D {
		t.Fatalf("salvaged = %#x, want [0xF00D]", salvaged)
	}
	s := f.Stats
	if s.Timeouts != 1 || s.LateAcks != 1 || s.Acks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Reqs != s.Acks+s.Nacks+s.Drops {
		t.Fatalf("accounting identity violated: %+v", s)
	}
}

// TestRetryAfterDropsEventuallySucceeds: with a 50% drop rate on both
// directions, a thief that retries on every timeout must eventually get
// the task, and the terminal-outcome identity must hold across all the
// attempts.
func TestRetryAfterDropsEventuallySucceeds(t *testing.T) {
	k := sim.NewKernel()
	k.SetDeadline(1_000_000)
	f := lossyFabric(k, fault.Scenario{ULIReqDropProb: 0.5, ULIRespDropProb: 0.5}, 64)
	victim, thief := f.Unit(0), f.Unit(1)
	tasks := []uint64{0x11, 0x22, 0x33}
	victim.SetHandler(func(int) uint64 {
		if len(tasks) == 0 {
			return 0
		}
		p := tasks[0]
		tasks = tasks[1:]
		return p
	})
	victim.SetRestitute(func(p uint64) { tasks = append([]uint64{p}, tasks...) })

	done := false
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		for !done {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})
	var got uint64
	k.NewProc("thief", 10, func(p *sim.Proc) {
		thief.Bind(p)
		for i := 0; i < 200; i++ {
			if payload, ok := thief.SendReq(p, 0); ok && payload != 0 {
				got = payload
				break
			}
			p.Delay(10)
		}
		done = true
	})
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("thief never obtained a task through 50% loss")
	}
	s := f.Stats
	if s.Drops == 0 {
		t.Fatal("scenario dropped nothing")
	}
	if s.Reqs != s.Acks+s.Nacks+s.Drops {
		t.Fatalf("accounting identity violated: %+v", s)
	}
	// A task restituted after a dropped ACK must be handed over at most
	// once overall: the winning payload was removed from tasks exactly
	// once and never re-delivered.
	for _, rem := range tasks {
		if rem == got {
			t.Fatalf("task %#x both delivered and still queued", got)
		}
	}
}

// TestTakeLateDrainsMailbox: the memory-mapped salvage-mailbox read
// used by reclaimers pops payloads in arrival order without invoking
// the salvage hook, and reports empty once drained.
func TestTakeLateDrainsMailbox(t *testing.T) {
	k := sim.NewKernel()
	f := lossyFabric(k, fault.Scenario{}, 0)
	u := f.Unit(0)
	u.SetSalvage(func(uint64) { t.Fatal("salvage hook ran during TakeLate") })
	u.late = []uint64{0xA, 0xB}
	if p, ok := u.TakeLate(); !ok || p != 0xA {
		t.Fatalf("first TakeLate = %#x, %v", p, ok)
	}
	if p, ok := u.TakeLate(); !ok || p != 0xB {
		t.Fatalf("second TakeLate = %#x, %v", p, ok)
	}
	if _, ok := u.TakeLate(); ok {
		t.Fatal("TakeLate on an empty mailbox reported a payload")
	}
}
