package uli

import (
	"testing"

	"bigtiny/internal/fault"
	"bigtiny/internal/sim"
)

// TestNackStormForwardProgress is the NACK-storm regression test: seven
// thieves hammer one victim while an injected storm force-NACKs most
// requests. Every thief must still complete its steal (forward
// progress through retry), each successful steal's total retry latency
// must stay bounded, and the storm must show up in the stats.
func TestNackStormForwardProgress(t *testing.T) {
	k := sim.NewKernel()
	k.SetDeadline(2_000_000)
	f := newFabric(k, 8)
	sc, err := fault.Lookup("uli-nack-storm")
	if err != nil {
		t.Fatal(err)
	}
	f.Faults = fault.NewInjector(sc, 1)

	victim := f.Unit(0)
	victim.EntryLat = 4
	victim.SetHandler(func(int) uint64 { return 0xBEEF })

	done := 0
	k.NewProc("victim", 0, func(p *sim.Proc) {
		victim.Bind(p)
		victim.Enable()
		// Poll every cycle until all thieves have succeeded.
		for done < 7 {
			victim.Poll(p)
			p.Delay(1)
		}
		victim.Disable()
	})

	lat := make([]sim.Time, 8)
	for i := 1; i <= 7; i++ {
		u := f.Unit(i)
		k.NewProc("thief", sim.Time(i), func(p *sim.Proc) {
			u.Bind(p)
			start := p.Now()
			for {
				payload, ok := u.SendReq(p, 0)
				if ok {
					if payload != 0xBEEF {
						t.Errorf("thief %d payload %#x", u.core, payload)
					}
					break
				}
				p.Delay(20) // retry backoff
			}
			lat[u.core] = p.Now() - start
			done++
		})
	}
	if err := k.Run(nil); err != nil {
		t.Fatal(err)
	}
	if f.Stats.Acks != 7 {
		t.Fatalf("acks = %d, want 7", f.Stats.Acks)
	}
	if f.Stats.Nacks == 0 {
		t.Fatal("storm produced no NACKs")
	}
	if f.Stats.Nacks != f.Stats.Reqs-f.Stats.Acks {
		t.Fatalf("stats inconsistent: %d reqs, %d acks, %d nacks",
			f.Stats.Reqs, f.Stats.Acks, f.Stats.Nacks)
	}
	if f.Faults.Count(fault.ULINack) == 0 {
		t.Fatalf("injector counted no forced NACKs: %s", f.Faults.Summary())
	}
	// Bounded retry latency: even the unluckiest thief must get through
	// well before the storm's second window (period 20_000).
	for i := 1; i <= 7; i++ {
		if lat[i] == 0 || lat[i] > 15_000 {
			t.Errorf("thief %d retry latency %d out of bounds", i, lat[i])
		}
	}
}
