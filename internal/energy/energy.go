// Package energy estimates energy from event counts, standing in for
// the paper's gem5-based energy evaluation. The absolute scale is a
// proxy; what matters (and what the paper claims in §I/§VI) is the
// *relative* energy of configurations: big.TINY/HCC-DTS should land
// near big.TINY/MESI, and big-core-only systems should be less
// efficient on parallel work.
package energy

import (
	"bigtiny/internal/stats"
)

// Model holds per-event energy weights in picojoules. Defaults are
// order-of-magnitude figures for a ~1GHz 28nm-class design: an
// out-of-order issue slot costs ~10x an in-order one; DRAM line
// accesses dominate; on-chip transfer costs scale with byte-hops.
type Model struct {
	TinyCyclePJ  float64 // per tiny-core active cycle
	BigCyclePJ   float64 // per big-core active cycle
	L1AccessPJ   float64 // per L1 load/store/AMO
	L2AccessPJ   float64 // per L2 access (hit or miss handling)
	DRAMLinePJ   float64 // per DRAM line transfer
	NoCByteHopPJ float64 // per payload byte per hop
	ULIMsgPJ     float64 // per ULI message
}

// DefaultModel returns the documented default weights.
func DefaultModel() Model {
	return Model{
		TinyCyclePJ:  6,
		BigCyclePJ:   60,
		L1AccessPJ:   10,
		L2AccessPJ:   50,
		DRAMLinePJ:   2000,
		NoCByteHopPJ: 1,
		ULIMsgPJ:     20,
	}
}

// Estimate returns the energy proxy for a run in microjoules.
func (m Model) Estimate(r *stats.Run) float64 {
	var pj float64
	var tinyCycles, bigCycles uint64
	for _, v := range r.TinyBreakdown {
		tinyCycles += v
	}
	for _, v := range r.BigBreakdown {
		bigCycles += v
	}
	pj += float64(tinyCycles) * m.TinyCyclePJ
	pj += float64(bigCycles) * m.BigCyclePJ
	l1 := r.L1Tiny.Accesses() + r.L1Tiny.Amos + r.L1Big.Accesses() + r.L1Big.Amos
	pj += float64(l1) * m.L1AccessPJ
	pj += float64(r.L2.Hits+r.L2.Misses) * m.L2AccessPJ
	pj += float64(r.DRAMReads+r.DRAMWrites) * m.DRAMLinePJ
	pj += float64(r.ByteHops) * m.NoCByteHopPJ
	if r.ULI != nil {
		pj += float64(r.ULI.Reqs+r.ULI.Acks+r.ULI.Nacks) * m.ULIMsgPJ
	}
	return pj / 1e6
}

// Efficiency returns work per energy (abstract instructions per
// microjoule), the "energy efficiency" the paper compares.
func (m Model) Efficiency(r *stats.Run) float64 {
	e := m.Estimate(r)
	if e == 0 {
		return 0
	}
	return float64(r.Insts) / e
}
