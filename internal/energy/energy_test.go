package energy

import (
	"testing"

	"bigtiny/internal/cpu"
	"bigtiny/internal/stats"
	"bigtiny/internal/uli"
)

func sampleRun() *stats.Run {
	r := &stats.Run{}
	r.TinyBreakdown[cpu.ClassOther] = 1000
	r.BigBreakdown[cpu.ClassOther] = 100
	r.L1Tiny.Loads = 500
	r.L1Tiny.Stores = 100
	r.L1Tiny.Amos = 50
	r.L2.Hits = 200
	r.L2.Misses = 20
	r.DRAMReads = 20
	r.ByteHops = 10000
	r.Insts = 1100
	return r
}

func TestEstimateComponents(t *testing.T) {
	m := DefaultModel()
	r := sampleRun()
	wantPJ := 1000*m.TinyCyclePJ + 100*m.BigCyclePJ +
		650*m.L1AccessPJ + 220*m.L2AccessPJ + 20*m.DRAMLinePJ +
		10000*m.NoCByteHopPJ
	if got := m.Estimate(r); got != wantPJ/1e6 {
		t.Fatalf("estimate = %v uJ, want %v", got, wantPJ/1e6)
	}
}

func TestULIEnergyCounted(t *testing.T) {
	m := DefaultModel()
	r := sampleRun()
	base := m.Estimate(r)
	r.ULI = &uli.Stats{Reqs: 100, Acks: 60, Nacks: 40}
	withULI := m.Estimate(r)
	if withULI <= base {
		t.Fatal("ULI messages not charged")
	}
	want := 200 * m.ULIMsgPJ / 1e6
	if diff := withULI - base; diff < want*0.999 || diff > want*1.001 {
		t.Fatalf("ULI energy = %v, want ~%v", diff, want)
	}
}

func TestEfficiency(t *testing.T) {
	m := DefaultModel()
	r := sampleRun()
	eff := m.Efficiency(r)
	if eff <= 0 {
		t.Fatal("efficiency not positive")
	}
	if got := m.Efficiency(&stats.Run{}); got != 0 {
		t.Fatalf("efficiency of empty run = %v", got)
	}
}

func TestBigCoreCostlierThanTiny(t *testing.T) {
	m := DefaultModel()
	tiny := &stats.Run{}
	tiny.TinyBreakdown[cpu.ClassOther] = 1000
	big := &stats.Run{}
	big.BigBreakdown[cpu.ClassOther] = 1000
	if m.Estimate(big) <= m.Estimate(tiny) {
		t.Fatal("big-core cycle should cost more than tiny-core cycle")
	}
}
