package stats

import (
	"math"
	"sort"
)

// Summary summarizes repeated host-side measurements of one metric —
// the N iterations `paperbench bench-check` runs per gated series. Host
// numbers (wall seconds, ns/event) are noisy, so the regression gate
// never compares single points: it compares a recorded baseline against
// this summary's nonparametric confidence interval on the median, the
// same order-statistic interval benchstat reports.
type Summary struct {
	sorted []float64
}

// NewSummary builds a summary over the samples (copied; NaNs dropped).
func NewSummary(samples []float64) Summary {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return Summary{sorted: s}
}

// N returns the number of samples.
func (s Summary) N() int { return len(s.sorted) }

// Min returns the smallest sample (0 when empty).
func (s Summary) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest sample (0 when empty).
func (s Summary) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Median returns the sample median (midpoint of the two central
// samples for even N; 0 when empty).
func (s Summary) Median() float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s.sorted[n/2]
	}
	return (s.sorted[n/2-1] + s.sorted[n/2]) / 2
}

// MedianCI returns the narrowest symmetric order-statistic confidence
// interval for the population median with coverage at least the
// requested confidence (e.g. 0.95), along with the coverage actually
// achieved. The interval [x_(i+1), x_(n-i)] contains the median with
// probability sum_{k=i+1}^{n-i-1} C(n,k)/2^n — pure rank arithmetic, no
// distributional assumption, exactly benchstat's construction. Small
// samples cannot reach high confidence (n=5 caps at 93.75%); the
// widest interval [min, max] is then returned with its achieved
// coverage, which callers can inspect. An empty summary returns zeros;
// a single sample returns a degenerate interval with zero coverage.
func (s Summary) MedianCI(confidence float64) (lo, hi, achieved float64) {
	n := len(s.sorted)
	if n == 0 {
		return 0, 0, 0
	}
	// Binomial(n, 1/2) pmf row, computed iteratively.
	pmf := make([]float64, n+1)
	p := math.Exp2(-float64(n)) // C(n,0)/2^n
	for k := 0; k <= n; k++ {
		pmf[k] = p
		p = p * float64(n-k) / float64(k+1)
	}
	coverage := func(i int) float64 {
		c := 0.0
		for k := i + 1; k <= n-i-1; k++ {
			c += pmf[k]
		}
		return c
	}
	// Start from the widest interval (i=0) and trim symmetrically while
	// coverage stays at or above the target.
	best := 0
	for i := 1; 2*i < n; i++ {
		if coverage(i) >= confidence {
			best = i
		} else {
			break
		}
	}
	if coverage(0) < confidence {
		best = 0 // even [min, max] falls short; report what it achieves
	}
	return s.sorted[best], s.sorted[n-1-best], coverage(best)
}

// Verdict classifies one gated series after re-measurement.
type Verdict string

const (
	// VerdictOK: the confidence interval stays within the allowed band
	// around the baseline — no significant regression.
	VerdictOK Verdict = "ok"
	// VerdictRegressed: the entire confidence interval sits beyond the
	// threshold on the worse side — a real regression, not noise.
	VerdictRegressed Verdict = "regressed"
	// VerdictImproved: the entire confidence interval sits beyond the
	// threshold on the better side.
	VerdictImproved Verdict = "improved"
	// VerdictTooNoisy: the confidence interval straddles the regression
	// bound — the measurement cannot distinguish a real regression from
	// noise at this sample count.
	VerdictTooNoisy Verdict = "too-noisy"
)

// CheckRegression decides whether a re-measured summary regressed
// against a recorded baseline point. threshold is the allowed relative
// change in the worse direction (0.10 = 10%); lowerIsBetter selects
// which direction is worse. The decision uses the summary's median
// confidence interval at the given confidence, so a single outlier
// iteration cannot flip the verdict and an overlap with the allowed
// band is never called a regression. baseline is expected to be
// non-negative, which every gated metric is.
func CheckRegression(baseline float64, s Summary, threshold, confidence float64, lowerIsBetter bool) Verdict {
	if s.N() == 0 {
		return VerdictTooNoisy
	}
	lo, hi, _ := s.MedianCI(confidence)
	if baseline == 0 {
		// No relative band exists around zero; any strictly nonzero
		// interval on the worse side is a regression.
		switch {
		case lowerIsBetter && lo > 0:
			return VerdictRegressed
		case !lowerIsBetter && hi < 0:
			return VerdictRegressed
		default:
			return VerdictOK
		}
	}
	if lowerIsBetter {
		worse := baseline * (1 + threshold)
		better := baseline * (1 - threshold)
		switch {
		case lo > worse:
			return VerdictRegressed
		case hi < better:
			return VerdictImproved
		case hi <= worse:
			return VerdictOK
		default:
			return VerdictTooNoisy
		}
	}
	worse := baseline * (1 - threshold)
	better := baseline * (1 + threshold)
	switch {
	case hi < worse:
		return VerdictRegressed
	case lo > better:
		return VerdictImproved
	case lo >= worse:
		return VerdictOK
	default:
		return VerdictTooNoisy
	}
}
