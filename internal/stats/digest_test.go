package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// TestDigestGolden pins exact percentiles on known inputs (nearest-rank
// definition: the smallest sample with at least ceil(q*N) samples at or
// below it).
func TestDigestGolden(t *testing.T) {
	cases := []struct {
		name                 string
		samples              []uint64
		p50, p90, p99, p999  uint64
		min, max             uint64
		mean                 float64
	}{
		{
			name:    "one-to-ten",
			samples: []uint64{10, 1, 7, 3, 5, 9, 2, 8, 4, 6},
			p50:     5, p90: 9, p99: 10, p999: 10,
			min: 1, max: 10, mean: 5.5,
		},
		{
			name:    "single",
			samples: []uint64{42},
			p50:     42, p90: 42, p99: 42, p999: 42,
			min: 42, max: 42, mean: 42,
		},
		{
			name:    "duplicates",
			samples: []uint64{5, 5, 5, 5, 100},
			p50:     5, p90: 100, p99: 100, p999: 100,
			min: 5, max: 100, mean: 24,
		},
		{
			// 100 samples 1..100: p99 is exactly the 99th value, not the max.
			name:    "hundred",
			samples: seq(1, 100),
			p50:     50, p90: 90, p99: 99, p999: 100,
			min: 1, max: 100, mean: 50.5,
		},
		{
			// 1000 samples: p999 is the 999th value.
			name:    "thousand",
			samples: seq(1, 1000),
			p50:     500, p90: 900, p99: 990, p999: 999,
			min: 1, max: 1000, mean: 500.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d Digest
			for _, v := range tc.samples {
				d.Add(v)
			}
			if got := d.P50(); got != tc.p50 {
				t.Errorf("P50 = %d, want %d", got, tc.p50)
			}
			if got := d.P90(); got != tc.p90 {
				t.Errorf("P90 = %d, want %d", got, tc.p90)
			}
			if got := d.P99(); got != tc.p99 {
				t.Errorf("P99 = %d, want %d", got, tc.p99)
			}
			if got := d.P999(); got != tc.p999 {
				t.Errorf("P999 = %d, want %d", got, tc.p999)
			}
			if got := d.Min(); got != tc.min {
				t.Errorf("Min = %d, want %d", got, tc.min)
			}
			if got := d.Max(); got != tc.max {
				t.Errorf("Max = %d, want %d", got, tc.max)
			}
			if got := d.Mean(); got != tc.mean {
				t.Errorf("Mean = %g, want %g", got, tc.mean)
			}
			if got := d.Count(); got != len(tc.samples) {
				t.Errorf("Count = %d, want %d", got, len(tc.samples))
			}
		})
	}
}

func seq(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// TestDigestEmpty checks the zero-value digest answers without panics.
func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Count() != 0 || d.P50() != 0 || d.P999() != 0 || d.Max() != 0 || d.Mean() != 0 {
		t.Fatalf("empty digest must answer zeros: count=%d p50=%d", d.Count(), d.P50())
	}
	d.Merge(nil)
	d.Merge(&Digest{})
	if d.Count() != 0 {
		t.Fatalf("merging empty digests changed the count: %d", d.Count())
	}
}

// refQuantile is the reference nearest-rank implementation the
// property test checks Digest against: the quantile is given as the
// exact rational num/den, so the rank ceil(q*n) is computed in integer
// arithmetic with no possibility of float misrounding.
func refQuantile(samples []uint64, num, den int64) uint64 {
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := int64(len(s))
	rank := (num*n + den - 1) / den
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s[rank-1]
}

// TestQuantileFloatBoundaries pins the q·n values where the float64
// product rounds to the wrong side of an integer. The historical bug:
// 0.999*1000 evaluates to 999.0000000000001, so a float ceiling
// returned rank 1000 (the max) instead of the exact 999th sample.
func TestQuantileFloatBoundaries(t *testing.T) {
	cases := []struct {
		q    float64
		n    uint64
		rank uint64 // expected 1-based nearest rank = ceil(q*n), exact
	}{
		{0.999, 1000, 999}, // product rounds up past 999
		{0.999, 2000, 1998},
		{0.9, 10, 9},   // 0.9*10 = 9.000000000000002 in float64
		{0.9, 100, 90}, // 0.9*100 = 90.00000000000001 in float64
		{0.07, 100, 7}, // 0.07*100 = 7.000000000000001 in float64
		{0.29, 100, 29},
		{0.58, 50, 29},
		{0.1, 10, 1},
		{0.001, 1000, 1},
		{0.999, 1, 1},
		{0.5, 2, 1},
		{0.5, 3, 2},   // 1.5 -> ceil 2
		{0.75, 4, 3},  // exact integer product
		{0.25, 8, 2},  // exact binary fraction
		{1.0 / 3, 3, 1}, // non-decimal q exercises the FMA fallback
		{1.0 / 3, 6, 2},
		{2.0 / 3, 3, 2},
	}
	for _, tc := range cases {
		var d Digest
		for v := uint64(1); v <= tc.n; v++ {
			d.Add(v)
		}
		// Samples are 1..n, so the sample at rank r is r itself.
		if got := d.Quantile(tc.q); got != tc.rank {
			t.Errorf("Quantile(%v) over 1..%d = %d, want rank %d", tc.q, tc.n, got, tc.rank)
		}
	}
}

// TestDigestProperties checks, over random sample sets: (1) every
// quantile equals the naive sorted-reference answer exactly, (2)
// quantiles are monotone in rank, and (3) the digest is merge-order
// independent (any partition, merged in any order, answers identically).
func TestDigestProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Each quantile both as the float64 callers pass and as the exact
	// rational the reference uses.
	type qq struct {
		q        float64
		num, den int64
	}
	qqs := []qq{
		{0.001, 1, 1000}, {0.01, 1, 100}, {0.1, 1, 10}, {0.25, 1, 4},
		{0.5, 1, 2}, {0.75, 3, 4}, {0.9, 9, 10}, {0.99, 99, 100},
		{0.999, 999, 1000}, {1.0, 1, 1},
	}
	quantiles := make([]float64, len(qqs))
	for i, x := range qqs {
		quantiles[i] = x.q
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]uint64, n)
		for i := range samples {
			samples[i] = uint64(rng.Intn(1_000_000))
		}

		var whole Digest
		for _, v := range samples {
			whole.Add(v)
		}

		// (1) exactness against the integer-rational reference.
		for _, x := range qqs {
			if got, want := whole.Quantile(x.q), refQuantile(samples, x.num, x.den); got != want {
				t.Fatalf("trial %d: Quantile(%g) = %d, want %d (n=%d)", trial, x.q, got, want, n)
			}
		}

		// (2) monotone in rank.
		prev := uint64(0)
		for _, q := range quantiles {
			v := whole.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < previous %d (not monotone)", trial, q, v, prev)
			}
			prev = v
		}

		// (3) merge-order independence: split into 3 random chunks and
		// merge them in two different orders.
		cut1, cut2 := rng.Intn(n+1), rng.Intn(n+1)
		if cut1 > cut2 {
			cut1, cut2 = cut2, cut1
		}
		parts := [][]uint64{samples[:cut1], samples[cut1:cut2], samples[cut2:]}
		digests := make([]*Digest, 3)
		for i, p := range parts {
			digests[i] = &Digest{}
			for _, v := range p {
				digests[i].Add(v)
			}
		}
		var fwd, rev Digest
		fwd.Merge(digests[0])
		fwd.Merge(digests[1])
		fwd.Merge(digests[2])
		rev.Merge(digests[2])
		rev.Merge(digests[0])
		rev.Merge(digests[1])
		for _, q := range quantiles {
			a, b, w := fwd.Quantile(q), rev.Quantile(q), whole.Quantile(q)
			if a != w || b != w {
				t.Fatalf("trial %d: merge-order dependence at q=%g: fwd=%d rev=%d whole=%d",
					trial, q, a, b, w)
			}
		}
		if fwd.Count() != n || rev.Count() != n {
			t.Fatalf("trial %d: merged counts %d/%d, want %d", trial, fwd.Count(), rev.Count(), n)
		}
	}
}
