package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// TestDigestGolden pins exact percentiles on known inputs (nearest-rank
// definition: the smallest sample with at least ceil(q*N) samples at or
// below it).
func TestDigestGolden(t *testing.T) {
	cases := []struct {
		name                 string
		samples              []uint64
		p50, p90, p99, p999  uint64
		min, max             uint64
		mean                 float64
	}{
		{
			name:    "one-to-ten",
			samples: []uint64{10, 1, 7, 3, 5, 9, 2, 8, 4, 6},
			p50:     5, p90: 9, p99: 10, p999: 10,
			min: 1, max: 10, mean: 5.5,
		},
		{
			name:    "single",
			samples: []uint64{42},
			p50:     42, p90: 42, p99: 42, p999: 42,
			min: 42, max: 42, mean: 42,
		},
		{
			name:    "duplicates",
			samples: []uint64{5, 5, 5, 5, 100},
			p50:     5, p90: 100, p99: 100, p999: 100,
			min: 5, max: 100, mean: 24,
		},
		{
			// 100 samples 1..100: p99 is exactly the 99th value, not the max.
			name:    "hundred",
			samples: seq(1, 100),
			p50:     50, p90: 90, p99: 99, p999: 100,
			min: 1, max: 100, mean: 50.5,
		},
		{
			// 1000 samples: p999 is the 999th value.
			name:    "thousand",
			samples: seq(1, 1000),
			p50:     500, p90: 900, p99: 990, p999: 999,
			min: 1, max: 1000, mean: 500.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d Digest
			for _, v := range tc.samples {
				d.Add(v)
			}
			if got := d.P50(); got != tc.p50 {
				t.Errorf("P50 = %d, want %d", got, tc.p50)
			}
			if got := d.P90(); got != tc.p90 {
				t.Errorf("P90 = %d, want %d", got, tc.p90)
			}
			if got := d.P99(); got != tc.p99 {
				t.Errorf("P99 = %d, want %d", got, tc.p99)
			}
			if got := d.P999(); got != tc.p999 {
				t.Errorf("P999 = %d, want %d", got, tc.p999)
			}
			if got := d.Min(); got != tc.min {
				t.Errorf("Min = %d, want %d", got, tc.min)
			}
			if got := d.Max(); got != tc.max {
				t.Errorf("Max = %d, want %d", got, tc.max)
			}
			if got := d.Mean(); got != tc.mean {
				t.Errorf("Mean = %g, want %g", got, tc.mean)
			}
			if got := d.Count(); got != len(tc.samples) {
				t.Errorf("Count = %d, want %d", got, len(tc.samples))
			}
		})
	}
}

func seq(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// TestDigestEmpty checks the zero-value digest answers without panics.
func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Count() != 0 || d.P50() != 0 || d.P999() != 0 || d.Max() != 0 || d.Mean() != 0 {
		t.Fatalf("empty digest must answer zeros: count=%d p50=%d", d.Count(), d.P50())
	}
	d.Merge(nil)
	d.Merge(&Digest{})
	if d.Count() != 0 {
		t.Fatalf("merging empty digests changed the count: %d", d.Count())
	}
}

// naiveQuantile is the reference nearest-rank implementation the
// property test checks Digest against.
func naiveQuantile(samples []uint64, q float64) uint64 {
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s[rank-1]
}

// TestDigestProperties checks, over random sample sets: (1) every
// quantile equals the naive sorted-reference answer exactly, (2)
// quantiles are monotone in rank, and (3) the digest is merge-order
// independent (any partition, merged in any order, answers identically).
func TestDigestProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]uint64, n)
		for i := range samples {
			samples[i] = uint64(rng.Intn(1_000_000))
		}

		var whole Digest
		for _, v := range samples {
			whole.Add(v)
		}

		// (1) exactness against the naive reference.
		for _, q := range quantiles {
			if got, want := whole.Quantile(q), naiveQuantile(samples, q); got != want {
				t.Fatalf("trial %d: Quantile(%g) = %d, want %d (n=%d)", trial, q, got, want, n)
			}
		}

		// (2) monotone in rank.
		prev := uint64(0)
		for _, q := range quantiles {
			v := whole.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < previous %d (not monotone)", trial, q, v, prev)
			}
			prev = v
		}

		// (3) merge-order independence: split into 3 random chunks and
		// merge them in two different orders.
		cut1, cut2 := rng.Intn(n+1), rng.Intn(n+1)
		if cut1 > cut2 {
			cut1, cut2 = cut2, cut1
		}
		parts := [][]uint64{samples[:cut1], samples[cut1:cut2], samples[cut2:]}
		digests := make([]*Digest, 3)
		for i, p := range parts {
			digests[i] = &Digest{}
			for _, v := range p {
				digests[i].Add(v)
			}
		}
		var fwd, rev Digest
		fwd.Merge(digests[0])
		fwd.Merge(digests[1])
		fwd.Merge(digests[2])
		rev.Merge(digests[2])
		rev.Merge(digests[0])
		rev.Merge(digests[1])
		for _, q := range quantiles {
			a, b, w := fwd.Quantile(q), rev.Quantile(q), whole.Quantile(q)
			if a != w || b != w {
				t.Fatalf("trial %d: merge-order dependence at q=%g: fwd=%d rev=%d whole=%d",
					trial, q, a, b, w)
			}
		}
		if fwd.Count() != n || rev.Count() != n {
			t.Fatalf("trial %d: merged counts %d/%d, want %d", trial, fwd.Count(), rev.Count(), n)
		}
	}
}
