package stats

import (
	"strings"
	"testing"

	"bigtiny/internal/cpu"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/noc"
	"bigtiny/internal/wsrt"
)

func smallRun(t *testing.T, cfgName string) *Run {
	t.Helper()
	cfg, err := machine.Lookup(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumBig, cfg.NumTiny = 1, 3
	cfg.Rows, cfg.Cols = 1, 4
	cfg.NumBanks = 2
	m := machine.New(cfg)
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	fid := rt.RegisterFunc("w", 512)
	arr := m.Mem.AllocWords(128)
	if err := rt.Run(func(c *wsrt.Ctx) {
		c.ParallelFor(fid, 0, 128, 8, func(cc *wsrt.Ctx, i int) {
			cc.Compute(20)
			cc.Store(arr+mem.Addr(i*8), uint64(i))
		})
	}); err != nil {
		t.Fatal(err)
	}
	return Collect(m, rt, "w")
}

func TestCollectBasics(t *testing.T) {
	r := smallRun(t, "bT/HCC-gwb")
	if r.Config == "" || r.App != "w" {
		t.Fatal("identity fields missing")
	}
	if r.Cycles == 0 || r.Insts == 0 {
		t.Fatal("no cycles/insts collected")
	}
	if r.TinyTotalCycles() == 0 {
		t.Fatal("tiny cycles not aggregated")
	}
	if r.L1Tiny.Accesses() == 0 {
		t.Fatal("tiny L1 accesses not aggregated")
	}
	if r.Traffic.TotalBytes() == 0 {
		t.Fatal("traffic not captured")
	}
	if hr := r.TinyHitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("hit rate %v out of range", hr)
	}
	if r.ULI != nil {
		t.Fatal("non-DTS machine reported ULI stats")
	}
}

func TestCollectULI(t *testing.T) {
	r := smallRun(t, "bT/HCC-DTS-gwb")
	if r.ULI == nil {
		t.Fatal("DTS machine missing ULI stats")
	}
}

func TestSpeedupAndPctDecrease(t *testing.T) {
	a := &Run{Cycles: 1000}
	b := &Run{Cycles: 250}
	if got := Speedup(a, b); got != 4 {
		t.Fatalf("speedup = %v", got)
	}
	if got := Speedup(a, &Run{}); got != 0 {
		t.Fatalf("speedup by zero = %v", got)
	}
	if got := PctDecrease(200, 20); got != 90 {
		t.Fatalf("pct decrease = %v", got)
	}
	if got := PctDecrease(0, 5); got != 0 {
		t.Fatalf("pct decrease from zero = %v", got)
	}
}

func TestBreakdownString(t *testing.T) {
	var b [cpu.NumClasses]uint64
	if got := BreakdownString(b); got != "(idle)" {
		t.Fatalf("empty breakdown = %q", got)
	}
	b[cpu.ClassLoad] = 75
	b[cpu.ClassOther] = 25
	s := BreakdownString(b)
	if !strings.Contains(s, "DataLoad 75.0%") || !strings.Contains(s, "Others 25.0%") {
		t.Fatalf("breakdown = %q", s)
	}
}

func TestTrafficString(t *testing.T) {
	var tr noc.Traffic
	tr.Bytes[noc.CPUReq] = 100
	s := TrafficString(&tr)
	if !strings.Contains(s, "cpu_req=100") || !strings.Contains(s, "coh_resp=0") {
		t.Fatalf("traffic string = %q", s)
	}
}
