package stats

import "sort"

// Digest is an exact latency digest: it keeps every sample (the
// simulator is deterministic, so there is no reason to sketch or
// sample) and answers nearest-rank percentile queries over the sorted
// multiset. Merging is multiset union, so the result is independent of
// both insertion order and merge order — two properties the open-load
// determinism gates rely on.
//
// The zero value is an empty digest ready for use.
type Digest struct {
	samples []uint64
	sorted  bool
}

// Add inserts one sample.
func (d *Digest) Add(v uint64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Merge folds every sample of o into d (o is unchanged).
func (d *Digest) Merge(o *Digest) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Digest) Count() int { return len(d.samples) }

// Sum returns the sample total.
func (d *Digest) Sum() uint64 {
	var s uint64
	for _, v := range d.samples {
		s += v
	}
	return s
}

// Mean returns the sample mean (0 when empty).
func (d *Digest) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return float64(d.Sum()) / float64(len(d.samples))
}

// Max returns the largest sample (0 when empty).
func (d *Digest) Max() uint64 {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Min returns the smallest sample (0 when empty).
func (d *Digest) Min() uint64 {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[0]
}

func (d *Digest) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Quantile returns the exact nearest-rank q-quantile (0 < q <= 1): the
// smallest sample v such that at least ceil(q*N) samples are <= v.
// q outside (0, 1] clamps to the nearest end; an empty digest returns 0.
func (d *Digest) Quantile(q float64) uint64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[n-1]
	}
	// Nearest rank: ceil(q*n), 1-based.
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return d.samples[rank-1]
}

// P50 returns the exact median (nearest-rank).
func (d *Digest) P50() uint64 { return d.Quantile(0.50) }

// P90 returns the exact 90th percentile.
func (d *Digest) P90() uint64 { return d.Quantile(0.90) }

// P99 returns the exact 99th percentile.
func (d *Digest) P99() uint64 { return d.Quantile(0.99) }

// P999 returns the exact 99.9th percentile.
func (d *Digest) P999() uint64 { return d.Quantile(0.999) }
