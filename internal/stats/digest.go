package stats

import (
	"math"
	"sort"
)

// Digest is an exact latency digest: it keeps every sample (the
// simulator is deterministic, so there is no reason to sketch or
// sample) and answers nearest-rank percentile queries over the sorted
// multiset. Merging is multiset union, so the result is independent of
// both insertion order and merge order — two properties the open-load
// determinism gates rely on.
//
// The zero value is an empty digest ready for use.
type Digest struct {
	samples []uint64
	sorted  bool
}

// Add inserts one sample.
func (d *Digest) Add(v uint64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Merge folds every sample of o into d (o is unchanged).
func (d *Digest) Merge(o *Digest) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Digest) Count() int { return len(d.samples) }

// Sum returns the sample total.
func (d *Digest) Sum() uint64 {
	var s uint64
	for _, v := range d.samples {
		s += v
	}
	return s
}

// Mean returns the sample mean (0 when empty).
func (d *Digest) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return float64(d.Sum()) / float64(len(d.samples))
}

// Max returns the largest sample (0 when empty).
func (d *Digest) Max() uint64 {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Min returns the smallest sample (0 when empty).
func (d *Digest) Min() uint64 {
	d.ensureSorted()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[0]
}

func (d *Digest) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Quantile returns the exact nearest-rank q-quantile (0 < q <= 1): the
// smallest sample v such that at least ceil(q*N) samples are <= v.
// q outside (0, 1] clamps to the nearest end; an empty digest returns 0.
func (d *Digest) Quantile(q float64) uint64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	d.ensureSorted()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[n-1]
	}
	rank := nearestRank(q, n)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return d.samples[rank-1]
}

// nearestRank returns the 1-based nearest rank ceil(q·n), computed
// exactly. A float64 product rounds: 0.999*1000 evaluates to
// 999.0000000000001, so a naive ceiling of the product bumps the rank
// to 1000 and P999 over 1000 samples returns the max instead of the
// 999th sample. Quantile arguments are decimals (0.5, 0.99, 0.999,
// ...), so we first recover q as an exact decimal fraction num/10^k
// (the float64 nearest to a short decimal round-trips through the
// scaled division) and take the ceiling in integer arithmetic, which
// cannot misround. A q that is no short decimal falls back to the
// float product, corrected against its exact value via math.FMA — no
// epsilon fudge in either path.
func nearestRank(q float64, n int) int {
	for den := int64(10); den <= 1_000_000_000; den *= 10 {
		num := math.Round(q * float64(den))
		if num < 1 || num >= float64(den) {
			continue
		}
		if float64(num)/float64(den) != q {
			continue
		}
		// rank = ceil(num*n/den), all exact in 64-bit integers:
		// num < 1e9 and n is a sample count, so the product fits.
		p := int64(num) * int64(n)
		return int((p + den - 1) / den)
	}
	// Fallback: treat q as the exact binary value it is. prod carries
	// the rounding error e = q·n - prod, which math.FMA computes
	// exactly; correcting the ceiling against prod+e (as a real number,
	// never re-rounded) makes the rank decision integer-exact. The
	// nearby-value subtractions below are exact by Sterbenz's lemma.
	prod := q * float64(n)
	e := math.FMA(q, float64(n), -prod)
	rank := int(math.Ceil(prod))
	if float64(rank-1)-prod >= e {
		// Rounding pushed prod just past an integer: rank-1 already
		// satisfies rank-1 >= q·n.
		rank--
	} else if float64(rank)-prod < e {
		// Rounding pulled prod down onto an integer: rank < q·n.
		rank++
	}
	return rank
}

// P50 returns the exact median (nearest-rank).
func (d *Digest) P50() uint64 { return d.Quantile(0.50) }

// P90 returns the exact 90th percentile.
func (d *Digest) P90() uint64 { return d.Quantile(0.90) }

// P99 returns the exact 99th percentile.
func (d *Digest) P99() uint64 { return d.Quantile(0.99) }

// P999 returns the exact 99.9th percentile.
func (d *Digest) P999() uint64 { return d.Quantile(0.999) }
