// Package stats collects the per-run metrics the paper's evaluation
// reports: execution cycles, per-category tiny-core time breakdowns
// (Fig. 7), L1 hit rates (Fig. 6), invalidation/flush counts
// (Table IV), network traffic by message category (Fig. 8), and ULI
// activity (§VI-C).
package stats

import (
	"fmt"
	"strings"

	"bigtiny/internal/cache"
	"bigtiny/internal/cpu"
	"bigtiny/internal/machine"
	"bigtiny/internal/noc"
	"bigtiny/internal/sim"
	"bigtiny/internal/uli"
	"bigtiny/internal/wsrt"
)

// Run is the metric snapshot of one completed simulation.
type Run struct {
	Config string
	App    string
	Cycles sim.Time

	// Insts counts instructions executed on all cores.
	Insts uint64

	// TinyBreakdown aggregates tiny-core cycles per Fig. 7 category;
	// BigBreakdown likewise for big cores.
	TinyBreakdown [cpu.NumClasses]uint64
	BigBreakdown  [cpu.NumClasses]uint64

	// L1Tiny / L1Big aggregate private-cache statistics per core kind.
	L1Tiny cache.L1Stats
	L1Big  cache.L1Stats

	L2 cache.L2Stats

	Traffic  noc.Traffic
	ByteHops uint64
	AvgHops  float64
	// NoCMaxUtil / NoCMeanUtil are data-mesh link utilizations.
	NoCMaxUtil, NoCMeanUtil float64
	// DRAMReads/Writes count line transfers at the memory controllers.
	DRAMReads, DRAMWrites uint64

	// ULI is present only on DTS machines.
	ULI            *uli.Stats
	ULIMeshMaxUtil float64
	ULIAvgLatency  float64

	RT wsrt.RunStats

	// FaultTotal / FaultSummary report injected faults (zero/empty when
	// the machine had no fault injector).
	FaultTotal   uint64
	FaultSummary string

	// OracleOps is the number of memory operations checked by the
	// memory-ordering oracle (zero when the oracle was off).
	OracleOps uint64
}

// Collect snapshots all counters from a finished machine/runtime pair.
func Collect(m *machine.Machine, rt *wsrt.RT, app string) *Run {
	r := &Run{
		Config:   m.Cfg.Name,
		App:      app,
		Cycles:   m.Kernel.Now(),
		Traffic:  m.Mesh.Traffic,
		ByteHops: m.Mesh.ByteHops,
		AvgHops:  m.Mesh.AvgHops(),
	}
	r.NoCMaxUtil, r.NoCMeanUtil = m.Mesh.LinkUtilization(r.Cycles)
	if rt != nil {
		r.RT = rt.Stats
	}
	for _, core := range m.Cores {
		r.Insts += core.Insts
		if core.Cfg.Big {
			for cls := 0; cls < int(cpu.NumClasses); cls++ {
				r.BigBreakdown[cls] += core.Cycles[cls]
			}
			r.L1Big.Add(&core.L1D.Stats)
		} else {
			for cls := 0; cls < int(cpu.NumClasses); cls++ {
				r.TinyBreakdown[cls] += core.Cycles[cls]
			}
			r.L1Tiny.Add(&core.L1D.Stats)
		}
	}
	r.L2 = m.Cache.L2Stats
	for _, mc := range m.MCs {
		r.DRAMReads += mc.Reads
		r.DRAMWrites += mc.Writes
	}
	if m.ULI != nil {
		s := m.ULI.Stats
		r.ULI = &s
		maxU, _ := m.ULI.Mesh().LinkUtilization(r.Cycles)
		r.ULIMeshMaxUtil = maxU
		r.ULIAvgLatency = s.AvgLatency()
	}
	if m.Faults != nil {
		r.FaultTotal = m.Faults.Total()
		r.FaultSummary = m.Faults.Summary()
	}
	if m.Oracle != nil {
		r.OracleOps = m.Oracle.Ops
	}
	return r
}

// TinyHitRate returns the tiny-core L1D hit rate (Fig. 6 metric).
func (r *Run) TinyHitRate() float64 { return r.L1Tiny.HitRate() }

// TinyTotalCycles sums the tiny-core breakdown.
func (r *Run) TinyTotalCycles() uint64 {
	var s uint64
	for _, v := range r.TinyBreakdown {
		s += v
	}
	return s
}

// Speedup returns base.Cycles / r.Cycles.
func Speedup(base, r *Run) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// PctDecrease returns the percentage decrease from base to v.
func PctDecrease(base, v uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(v)) / float64(base)
}

// BreakdownString formats a Fig. 7 style breakdown as percentages.
func BreakdownString(b [cpu.NumClasses]uint64) string {
	var total uint64
	for _, v := range b {
		total += v
	}
	if total == 0 {
		return "(idle)"
	}
	parts := make([]string, 0, cpu.NumClasses)
	for cls := 0; cls < int(cpu.NumClasses); cls++ {
		parts = append(parts, fmt.Sprintf("%s %.1f%%",
			cpu.Class(cls), 100*float64(b[cls])/float64(total)))
	}
	return strings.Join(parts, " | ")
}

// TrafficString formats a Fig. 8 style per-category byte report.
func TrafficString(t *noc.Traffic) string {
	parts := make([]string, 0, noc.NumCategories)
	for c := 0; c < int(noc.NumCategories); c++ {
		parts = append(parts, fmt.Sprintf("%s=%d", noc.Category(c), t.Bytes[c]))
	}
	return strings.Join(parts, " ")
}
