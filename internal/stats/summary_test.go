package stats

import (
	"math"
	"testing"
)

func TestSummaryOrderStats(t *testing.T) {
	s := NewSummary([]float64{3, 1, 2, 5, 4})
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 || s.Median() != 3 {
		t.Fatalf("n=%d min=%g max=%g median=%g", s.N(), s.Min(), s.Max(), s.Median())
	}
	even := NewSummary([]float64{1, 2, 3, 10})
	if got := even.Median(); got != 2.5 {
		t.Fatalf("even median = %g, want 2.5", got)
	}
	empty := NewSummary(nil)
	if empty.N() != 0 || empty.Median() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty summary must answer zeros")
	}
	nan := NewSummary([]float64{1, math.NaN(), 3})
	if nan.N() != 2 || nan.Median() != 2 {
		t.Fatalf("NaN not dropped: n=%d median=%g", nan.N(), nan.Median())
	}
}

// TestMedianCI pins the order-statistic interval and its achieved
// coverage on hand-computable sample counts.
func TestMedianCI(t *testing.T) {
	// n=5: the widest interval [min, max] achieves 1 - 2/32 = 0.9375,
	// below 95%, so it is returned with that coverage.
	s5 := NewSummary([]float64{10, 20, 30, 40, 50})
	lo, hi, got := s5.MedianCI(0.95)
	if lo != 10 || hi != 50 {
		t.Fatalf("n=5 CI = [%g, %g], want [10, 50]", lo, hi)
	}
	if math.Abs(got-0.9375) > 1e-12 {
		t.Fatalf("n=5 achieved coverage = %g, want 0.9375", got)
	}
	// n=5 at a modest 90% target: [x2, x4] covers sum k=2..3 = 20/32 =
	// 0.625 < 0.9, so [min, max] is still the narrowest that qualifies.
	if lo, hi, _ := s5.MedianCI(0.90); lo != 10 || hi != 50 {
		t.Fatalf("n=5@90%% CI = [%g, %g], want [10, 50]", lo, hi)
	}
	// n=15 at 95%: trimming to [x4, x12] achieves sum k=4..11 of
	// C(15,k)/2^15 = 0.96484375; [x5, x11] achieves ~0.8815, too low.
	var v15 []float64
	for i := 1; i <= 15; i++ {
		v15 = append(v15, float64(i))
	}
	lo, hi, got = NewSummary(v15).MedianCI(0.95)
	if lo != 4 || hi != 12 {
		t.Fatalf("n=15 CI = [%g, %g], want [4, 12]", lo, hi)
	}
	if math.Abs(got-0.96484375) > 1e-9 {
		t.Fatalf("n=15 achieved coverage = %g, want 0.96484375", got)
	}
	// Degenerate cases.
	if lo, hi, got := NewSummary([]float64{7}).MedianCI(0.95); lo != 7 || hi != 7 || got != 0 {
		t.Fatalf("n=1 CI = [%g, %g] @ %g, want [7, 7] @ 0", lo, hi, got)
	}
	if _, _, got := NewSummary(nil).MedianCI(0.95); got != 0 {
		t.Fatalf("empty CI coverage = %g, want 0", got)
	}
}

// TestCheckRegression covers the significance decision fixtures the
// bench-check gate relies on: clearly regressed, clearly ok, clearly
// improved, and too noisy to call.
func TestCheckRegression(t *testing.T) {
	const conf = 0.95
	base := 100.0
	cases := []struct {
		name          string
		samples       []float64
		threshold     float64
		lowerIsBetter bool
		want          Verdict
	}{
		// Whole CI far above baseline*(1+t): a real slowdown.
		{"clearly-regressed", []float64{148, 150, 152, 149, 151}, 0.10, true, VerdictRegressed},
		// Whole CI inside the band: unchanged tree.
		{"clearly-ok", []float64{99, 101, 100, 98, 102}, 0.10, true, VerdictOK},
		// Whole CI below baseline*(1-t).
		{"clearly-improved", []float64{60, 61, 59, 60, 62}, 0.10, true, VerdictImproved},
		// CI straddles the regression bound: cannot call it.
		{"too-noisy", []float64{80, 95, 112, 140, 70}, 0.10, true, VerdictTooNoisy},
		// Median beyond the bound but CI dips back under it: still not
		// a significant regression — too noisy, never "regressed".
		{"noisy-median-over", []float64{210, 105, 230, 90, 220}, 0.50, true, VerdictTooNoisy},
		// Deterministic metric: zero-width CI decides exactly.
		{"deterministic-ok", []float64{100, 100}, 0.05, true, VerdictOK},
		{"deterministic-regressed", []float64{106, 106}, 0.05, true, VerdictRegressed},
		{"deterministic-boundary", []float64{105, 105}, 0.05, true, VerdictOK},
		// Higher-is-better metrics mirror the decision.
		{"throughput-regressed", []float64{50, 51, 49, 50, 52}, 0.10, false, VerdictRegressed},
		{"throughput-ok", []float64{99, 100, 101, 100, 99}, 0.10, false, VerdictOK},
		{"throughput-improved", []float64{140, 139, 141, 138, 142}, 0.10, false, VerdictImproved},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckRegression(base, NewSummary(tc.samples), tc.threshold, conf, tc.lowerIsBetter)
			if got != tc.want {
				t.Fatalf("CheckRegression(%v) = %s, want %s", tc.samples, got, tc.want)
			}
		})
	}
	if got := CheckRegression(100, NewSummary(nil), 0.1, conf, true); got != VerdictTooNoisy {
		t.Fatalf("empty summary verdict = %s, want too-noisy", got)
	}
	// Zero baseline: any strictly positive lower-is-better interval is
	// a regression; staying at zero is ok.
	if got := CheckRegression(0, NewSummary([]float64{1, 2, 3}), 0.1, conf, true); got != VerdictRegressed {
		t.Fatalf("zero-baseline regression verdict = %s", got)
	}
	if got := CheckRegression(0, NewSummary([]float64{0, 0, 0}), 0.1, conf, true); got != VerdictOK {
		t.Fatalf("zero-baseline steady verdict = %s", got)
	}
}
