package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"sort"

	"bigtiny/internal/cpu"
	"bigtiny/internal/energy"
	"bigtiny/internal/noc"
	"bigtiny/internal/stats"
)

// RunJSON is the machine-readable form of one simulation's metrics,
// used to feed external plotting or regression-tracking tools.
type RunJSON struct {
	Config string `json:"config"`
	App    string `json:"app"`
	Size   string `json:"size"`
	Grain  int    `json:"grain"`

	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`

	TinyBreakdown map[string]uint64 `json:"tiny_breakdown"`
	BigBreakdown  map[string]uint64 `json:"big_breakdown"`

	TinyHitRate float64 `json:"tiny_l1d_hit_rate"`
	InvLines    uint64  `json:"inv_lines"`
	FlushLines  uint64  `json:"flush_lines"`
	TinyAmos    uint64  `json:"tiny_amos"`

	L2Hits    uint64 `json:"l2_hits"`
	L2Misses  uint64 `json:"l2_misses"`
	L2Recalls uint64 `json:"l2_recalls"`
	L2Amos    uint64 `json:"l2_amos"`

	TrafficBytes map[string]uint64 `json:"traffic_bytes"`
	AvgHops      float64           `json:"avg_hops"`

	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`

	// ULI protocol accounting. Every request terminates in exactly one
	// of Acks, Nacks, or Drops (Reqs == Acks + Nacks + Drops); Timeouts,
	// LateAcks, and Restitutions count recovery events that overlap the
	// three terminal outcomes.
	ULIReqs         uint64  `json:"uli_reqs,omitempty"`
	ULIAcks         uint64  `json:"uli_acks,omitempty"`
	ULINacks        uint64  `json:"uli_nacks,omitempty"`
	ULIDrops        uint64  `json:"uli_drops,omitempty"`
	ULITimeouts     uint64  `json:"uli_timeouts,omitempty"`
	ULILateAcks     uint64  `json:"uli_late_acks,omitempty"`
	ULIRestitutions uint64  `json:"uli_restitutions,omitempty"`
	ULIAvgLatency   float64 `json:"uli_avg_latency,omitempty"`

	Spawns     uint64 `json:"spawns"`
	StealHits  uint64 `json:"steal_hits"`
	StealTries uint64 `json:"steal_tries"`

	// Runtime recovery counters (nonzero only under lossy fault
	// scenarios).
	OfflineCores   uint64 `json:"offline_cores,omitempty"`
	Reclaims       uint64 `json:"reclaims,omitempty"`
	Salvages       uint64 `json:"salvages,omitempty"`
	DegradedCycles uint64 `json:"degraded_cycles,omitempty"`

	// Fault-injection and oracle context for the run.
	FaultScenario string `json:"fault_scenario,omitempty"`
	FaultSeed     uint64 `json:"fault_seed,omitempty"`
	FaultTotal    uint64 `json:"fault_total,omitempty"`
	OracleOps     uint64 `json:"oracle_ops,omitempty"`

	EnergyUJ float64 `json:"energy_uj"`
}

// toJSON converts a collected run.
func (s *Suite) toJSON(r *stats.Run) RunJSON {
	j := RunJSON{
		Config: r.Config, App: r.App, Size: s.Size.String(), Grain: s.Grain,
		Cycles: uint64(r.Cycles), Insts: r.Insts,
		TinyBreakdown: map[string]uint64{}, BigBreakdown: map[string]uint64{},
		TinyHitRate: r.TinyHitRate(),
		InvLines:    r.L1Tiny.InvLines, FlushLines: r.L1Tiny.FlushLines,
		TinyAmos: r.L1Tiny.Amos,
		L2Hits:   r.L2.Hits, L2Misses: r.L2.Misses,
		L2Recalls: r.L2.Recalls, L2Amos: r.L2.AmoOps,
		TrafficBytes: map[string]uint64{},
		AvgHops:      r.AvgHops,
		DRAMReads:    r.DRAMReads, DRAMWrites: r.DRAMWrites,
		Spawns: r.RT.Spawns, StealHits: r.RT.StealHits, StealTries: r.RT.StealTries,
		OfflineCores: r.RT.OfflineCores, Reclaims: r.RT.Reclaims,
		Salvages: r.RT.Salvages, DegradedCycles: r.RT.DegradedCycles,
		FaultTotal: r.FaultTotal,
		OracleOps:  r.OracleOps,
		EnergyUJ:   energy.DefaultModel().Estimate(r),
	}
	if r.FaultTotal > 0 || s.FaultScenario != "" {
		j.FaultScenario = s.FaultScenario
		j.FaultSeed = s.FaultSeed
	}
	for cls := 0; cls < int(cpu.NumClasses); cls++ {
		j.TinyBreakdown[cpu.Class(cls).String()] = r.TinyBreakdown[cls]
		j.BigBreakdown[cpu.Class(cls).String()] = r.BigBreakdown[cls]
	}
	for c := 0; c < int(noc.NumCategories); c++ {
		j.TrafficBytes[noc.Category(c).String()] = r.Traffic.Bytes[c]
	}
	if r.ULI != nil {
		j.ULIReqs, j.ULIAcks, j.ULINacks = r.ULI.Reqs, r.ULI.Acks, r.ULI.Nacks
		j.ULIDrops, j.ULITimeouts = r.ULI.Drops, r.ULI.Timeouts
		j.ULILateAcks, j.ULIRestitutions = r.ULI.LateAcks, r.ULI.Restitutions
		j.ULIAvgLatency = r.ULIAvgLatency
	}
	return j
}

// encodeRuns is the one canonical JSON encoding of exported runs. Both
// WriteJSON (the `paperbench -json` path) and ResultJSON (the serving
// path) go through it, so a result served over the API is byte-identical
// to the CLI export of the same run. encoding/json sorts map keys, so
// the bytes are deterministic.
func encodeRuns(w io.Writer, runs []RunJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}

// WriteJSON emits every run cached in the suite (sorted by config then
// app) as a JSON array. Run the desired tables/figures first; this
// exports whatever they simulated.
func (s *Suite) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]RunJSON, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.toJSON(s.results[k]))
	}
	s.mu.Unlock()
	return encodeRuns(w, out)
}

// ResultJSON simulates (or recalls) one cell and returns its canonical
// export bytes: a single-element JSON array encoded exactly as
// WriteJSON would encode a suite holding only that run. The serving
// layer stores and serves these bytes verbatim, which is what makes a
// cold-started daemon, a warm one, and `paperbench -json` byte-identical
// for the same (config, app, size, grain, scenario, seed) tuple.
func (s *Suite) ResultJSON(ctx context.Context, cfgName, appName string) ([]byte, error) {
	r, err := s.RunCtx(ctx, cfgName, appName)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := encodeRuns(&buf, []RunJSON{s.toJSON(r)}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
