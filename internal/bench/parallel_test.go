package bench

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"bigtiny/internal/apps"
)

// countingWriter counts progress lines; Suite serializes writes, but
// the counter is still guarded so the test itself is race-clean even
// if that guarantee regresses.
type countingWriter struct {
	mu    sync.Mutex
	lines int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.lines += strings.Count(string(p), "\n")
	c.mu.Unlock()
	return len(p), nil
}

// detWork is the worklist the determinism tests warm: a cross-section
// of baselines, HCC, and DTS configs over both app families, plus a
// Cilkview analysis and an off-default grain (exercising the derived
// sub-suite path).
func detWork(s *Suite) []Work {
	var work []Work
	for _, app := range []string{"cilk5-mt", "ligra-bfs"} {
		work = append(work, s.viewWork(app))
		for _, cfg := range []string{"IOx1", "bT/MESI", "bT/HCC-gwb", "bT/HCC-DTS-gwb"} {
			work = append(work, s.runWork(cfg, app))
		}
	}
	work = append(work, Work{Cfg: "tiny64", App: "ligra-tc", Size: s.Size, Grain: 8})
	work = append(work, Work{App: "ligra-tc", Size: s.Size, Grain: 8, View: true})
	return work
}

// snapshot flattens a suite's caches (including derived sub-suites)
// into comparable maps.
func snapshot(s *Suite) (runs map[string]interface{}, views map[string]interface{}) {
	runs = map[string]interface{}{}
	views = map[string]interface{}{}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.results {
		runs[k] = *v
	}
	for k, v := range s.views {
		views[k] = v
	}
	for name, sub := range s.subs {
		sr, sv := snapshot(sub)
		for k, v := range sr {
			runs[name+"/"+k] = v
		}
		for k, v := range sv {
			views[name+"/"+k] = v
		}
	}
	return runs, views
}

// TestParallelMatchesSerial is the determinism proof for the
// host-parallel runner: warming the same worklist at -j 1 and at -j 8
// must leave bit-identical stats.Run snapshots for every (config, app)
// pair. Each simulation is fully contained in its machine.New/wsrt.New
// instance, so host scheduling must not be able to perturb results.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	serial := NewSuite(apps.Test)
	if err := serial.Prewarm(detWork(serial), 1); err != nil {
		t.Fatal(err)
	}
	par := NewSuite(apps.Test)
	if err := par.Prewarm(detWork(par), 8); err != nil {
		t.Fatal(err)
	}

	sr, sv := snapshot(serial)
	pr, pv := snapshot(par)
	if len(sr) == 0 || len(sv) == 0 {
		t.Fatalf("empty snapshot: %d runs, %d views", len(sr), len(sv))
	}
	if len(sr) != len(pr) || len(sv) != len(pv) {
		t.Fatalf("cache shapes differ: serial %d runs/%d views, parallel %d runs/%d views",
			len(sr), len(sv), len(pr), len(pv))
	}
	for k, v := range sr {
		pvval, ok := pr[k]
		if !ok {
			t.Errorf("parallel run missing key %q", k)
			continue
		}
		if !reflect.DeepEqual(v, pvval) {
			t.Errorf("run %q diverged between -j 1 and -j 8:\nserial:   %+v\nparallel: %+v", k, v, pvval)
		}
	}
	for k, v := range sv {
		if !reflect.DeepEqual(v, pv[k]) {
			t.Errorf("view %q diverged between -j 1 and -j 8", k)
		}
	}
}

// TestRunSingleflight: concurrent callers of the same (config, app)
// pair must share exactly one simulation and receive the same cached
// result pointer.
func TestRunSingleflight(t *testing.T) {
	s := NewSuite(apps.Test)
	var cw countingWriter
	s.Progress = &cw

	const callers = 8
	runs := make([]interface{}, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Run("bT/HCC-gwb", "cilk5-mt")
			runs[i], errs[i] = r, err
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if runs[i] != runs[0] {
			t.Fatalf("caller %d got a different *stats.Run than caller 0", i)
		}
	}
	cw.mu.Lock()
	lines := cw.lines
	cw.mu.Unlock()
	if lines != 1 {
		t.Fatalf("%d simulations ran for one (config, app) pair, want 1", lines)
	}
}

// TestViewSingleflight: same for concurrent Cilkview analyses.
func TestViewSingleflight(t *testing.T) {
	s := NewSuite(apps.Test)
	const callers = 8
	reports := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.View("cilk5-mt")
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(reports[i], reports[0]) {
			t.Fatalf("caller %d got a different report", i)
		}
	}
}

// TestPrewarmThenRenderIsCached: a render pass after Prewarm must do
// zero additional simulations.
func TestPrewarmThenRenderIsCached(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	appNames := []string{"cilk5-mt"}
	var cw countingWriter
	s.Progress = &cw
	if err := s.Prewarm(s.Table4Work(appNames), 4); err != nil {
		t.Fatal(err)
	}
	cw.mu.Lock()
	warmed := cw.lines
	cw.mu.Unlock()
	if warmed != 6 {
		t.Fatalf("prewarm ran %d simulations, want 6", warmed)
	}
	var sb strings.Builder
	if err := s.Table4(&sb, appNames); err != nil {
		t.Fatal(err)
	}
	cw.mu.Lock()
	after := cw.lines
	cw.mu.Unlock()
	if after != warmed {
		t.Fatalf("render after prewarm ran %d extra simulations", after-warmed)
	}
	if !strings.Contains(sb.String(), "cilk5-mt") {
		t.Fatalf("table missing app row:\n%s", sb.String())
	}
}

// TestPrewarmDedupsWork: duplicate work items collapse to one run.
func TestPrewarmDedupsWork(t *testing.T) {
	s := NewSuite(apps.Test)
	var cw countingWriter
	s.Progress = &cw
	w := s.runWork("bT/MESI", "cilk5-mt")
	if err := s.Prewarm([]Work{w, w, w, w}, 4); err != nil {
		t.Fatal(err)
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.lines != 1 {
		t.Fatalf("%d simulations for 4 copies of one work item, want 1", cw.lines)
	}
}

// TestPrewarmReportsErrors: a bad work item surfaces as Prewarm's
// return value without poisoning the rest of the warm.
func TestPrewarmReportsErrors(t *testing.T) {
	s := NewSuite(apps.Test)
	work := []Work{
		s.runWork("no-such-config", "cilk5-mt"),
		s.runWork("bT/MESI", "cilk5-mt"),
	}
	if err := s.Prewarm(work, 2); err == nil {
		t.Fatal("Prewarm swallowed the bad-config error")
	}
	// The good item must still be warm.
	var cw countingWriter
	s.Progress = &cw
	if _, err := s.Run("bT/MESI", "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.lines != 0 {
		t.Fatal("good work item was not warmed")
	}
}

// TestTargetWorkCoversTargets: every paperbench render target except
// chaos declares a worklist.
func TestTargetWorkCoversTargets(t *testing.T) {
	s := NewSuite(apps.Test)
	for _, target := range []string{
		"table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "uli", "energy",
	} {
		work, ok := s.TargetWork(target, []string{"cilk5-mt"})
		if !ok || len(work) == 0 {
			t.Errorf("target %q has no worklist", target)
		}
	}
	if _, ok := s.TargetWork("chaos", nil); ok {
		t.Error("chaos target unexpectedly declares a worklist")
	}
	if _, ok := s.TargetWork("nonesuch", nil); ok {
		t.Error("unknown target accepted")
	}
}
