package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sort"

	"bigtiny/internal/apps"
	"bigtiny/internal/openload"
)

// This file is the open-system serving view of the suite: seeded
// arrival processes drive requests into the simulated machine and the
// deliverable is a latency-throughput curve per coherence
// configuration, with and without fault injection — the graceful-
// degradation picture a closed-loop (run-to-completion) benchmark
// cannot show.

// OpenRun executes (or recalls) one open-system cell. The scenario and
// fault seed are per-cell — the sweep wants the same offered load with
// and without chaos side by side — so they are arguments, not suite
// fields. Results are cached and deduplicated like Run's.
func (s *Suite) OpenRun(cfgName, scenario string, faultSeed uint64, sp openload.Spec) (*openload.Result, error) {
	return s.OpenRunCtx(context.Background(), cfgName, scenario, faultSeed, sp)
}

// openKey is the cache key for one open-system cell.
func (s *Suite) openKey(cfgName, scenario string, faultSeed uint64, sp openload.Spec) string {
	key := fmt.Sprintf("open:%s|%s|%d|%s", cfgName, scenario, faultSeed, sp.Key())
	if s.Oracle {
		key += "|oracle"
	}
	return key
}

// OpenRunCtx is OpenRun with cancellation, sharing the suite's
// singleflight machinery: concurrent callers of the same cell join one
// simulation, and a done context interrupts a simulation this call
// leads without killing one it merely joined.
func (s *Suite) OpenRunCtx(ctx context.Context, cfgName, scenario string, faultSeed uint64, sp openload.Spec) (*openload.Result, error) {
	key := s.openKey(cfgName, scenario, faultSeed, sp)
	s.mu.Lock()
	if r, ok := s.openResults[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.open, c.err
		case <-ctx.Done():
			return nil, fmt.Errorf("bench: open %s on %s: %w", sp.Workload, cfgName, ctx.Err())
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	c.open, c.err = s.simulateOpen(ctx, cfgName, scenario, faultSeed, sp)

	s.mu.Lock()
	if c.err == nil {
		s.openResults[key] = c.open
	}
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.open, c.err
}

// simulateOpen runs one open-system cell with the suite's usual panic
// containment: a poisoned cell fails its own callers and nothing else.
func (s *Suite) simulateOpen(ctx context.Context, cfgName, scenario string, faultSeed uint64, sp openload.Spec) (r *openload.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, fmt.Errorf("bench: panic in open %s on %s: %v\n%s",
				sp.Workload, cfgName, v, debug.Stack())
		}
	}()
	if s.SimHook != nil {
		s.SimHook(cfgName, "open:"+sp.Workload)
	}
	r, err = openload.Run(ctx, cfgName, sp, openload.Options{
		Scenario:  scenario,
		FaultSeed: faultSeed,
		Oracle:      s.Oracle,
		Deadline:    s.Deadline,
		Shards:      s.Shards,
		ShardExec:   s.ShardExec,
		ExecWorkers: s.ExecWorkers,
	})
	if err != nil {
		return nil, err
	}
	scen := scenario
	if scen == "" {
		scen = "none"
	}
	s.progress("open %-10s on %-16s rate %5.1f %-16s: p99 %9d (%d/%d/%d)\n",
		sp.Workload, cfgName, sp.RatePerK, scen,
		r.Latency.P99(), r.Completed, r.Shed, r.InFlightAtEnd)
	return r, nil
}

// OpenSweep enumerates an open-system experiment grid: every config x
// offered rate x fault scenario, at a fixed workload and arrival
// process.
type OpenSweep struct {
	Configs   []string
	Rates     []float64 // offered loads, requests per 1000 cycles
	Scenarios []string  // "" means fault-free; rendered as "none"
	Workload  string
	Arrival   string
	Requests  int
	Seed      uint64
	FaultSeed uint64
}

// DefaultOpenSweep is the grid `paperbench open` renders: three
// coherence configurations (MESI, software HCC, HCC+DTS on the 8-core
// machine), three offered loads spanning under- to overload, and the
// fault-free/lossy-uli/core-loss/chaos scenarios.
func DefaultOpenSweep(size apps.Size) OpenSweep {
	requests := 64
	switch size {
	case apps.Ref:
		requests = 256
	case apps.Big:
		requests = 512
	case apps.Empty:
		requests = 8
	case apps.Unit:
		requests = 16
	}
	return OpenSweep{
		Configs:   []string{"bT8/MESI", "bT8/HCC-gwb", "bT8/HCC-DTS-gwb"},
		Rates:     []float64{1, 4, 16},
		Scenarios: []string{"", "lossy-uli", "core-loss", "chaos-lossy-all"},
		Workload:  "rmat-query",
		Arrival:   "poisson",
		Requests:  requests,
		Seed:      1,
		FaultSeed: 1,
	}
}

// spec builds the cell spec for one offered rate.
func (sw OpenSweep) spec(rate float64) openload.Spec {
	return openload.Spec{
		Workload: sw.Workload,
		Arrival:  sw.Arrival,
		RatePerK: rate,
		Requests: sw.Requests,
		Seed:     sw.Seed,
	}
}

// OpenWork lists the sweep's cells as Work items for Prewarm.
func (s *Suite) OpenWork(sw OpenSweep) []Work {
	var work []Work
	for _, cfg := range sw.Configs {
		for _, rate := range sw.Rates {
			sp := sw.spec(rate)
			for _, scen := range sw.Scenarios {
				work = append(work, Work{
					Cfg: cfg, Open: &sp,
					OpenScenario: scen, OpenFaultSeed: sw.FaultSeed,
				})
			}
		}
	}
	return work
}

// Open renders the latency-throughput table for the sweep: one row per
// (config, rate, scenario) cell in a fixed order, so the bytes are
// identical whether the cells were prewarmed in parallel or simulated
// serially here.
func (s *Suite) Open(w io.Writer, sw OpenSweep) error {
	fmt.Fprintf(w, "Open-system serving: %s arrivals, %s, %d requests, seed %d\n",
		sw.Arrival, sw.Workload, sw.Requests, sw.Seed)
	fmt.Fprintf(w, "(latencies in cycles from scheduled arrival to completion; done/shed/inflight must sum to arrivals)\n\n")
	fmt.Fprintf(w, "%-16s %7s %-16s %9s %14s %9s %9s %9s %9s %8s\n",
		"config", "rate/k", "scenario", "thpt/k", "done/shed/inf", "p50", "p90", "p99", "p999", "faults")
	for _, cfg := range sw.Configs {
		for _, rate := range sw.Rates {
			sp := sw.spec(rate)
			for _, scen := range sw.Scenarios {
				r, err := s.OpenRun(cfg, scen, sw.FaultSeed, sp)
				if err != nil {
					return err
				}
				name := scen
				if name == "" {
					name = "none"
				}
				fmt.Fprintf(w, "%-16s %7.1f %-16s %9.3f %14s %9d %9d %9d %9d %8d\n",
					cfg, rate, name, r.ThroughputPerKCycle,
					fmt.Sprintf("%d/%d/%d", r.Completed, r.Shed, r.InFlightAtEnd),
					r.Latency.P50(), r.Latency.P90(), r.Latency.P99(), r.Latency.P999(),
					r.FaultTotal)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// OpenRunJSON is the machine-readable form of one open-system cell.
type OpenRunJSON struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Arrival  string `json:"arrival"`

	RatePerKCycle float64 `json:"rate_per_kcycle"`
	Requests      int     `json:"requests"`
	Seed          uint64  `json:"seed"`
	MaxInFlight   int     `json:"max_inflight,omitempty"`
	Horizon       uint64  `json:"horizon,omitempty"`

	Scenario  string `json:"fault_scenario,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	Arrived       int  `json:"arrived"`
	Completed     int  `json:"completed"`
	Shed          int  `json:"shed"`
	InFlightAtEnd int  `json:"in_flight_at_end"`
	Drained       bool `json:"drained"`

	Cycles uint64 `json:"cycles"`

	LatencyP50  uint64  `json:"latency_p50"`
	LatencyP90  uint64  `json:"latency_p90"`
	LatencyP99  uint64  `json:"latency_p99"`
	LatencyP999 uint64  `json:"latency_p999"`
	LatencyMax  uint64  `json:"latency_max"`
	LatencyMean float64 `json:"latency_mean"`

	OfferedPerKCycle    float64 `json:"offered_per_kcycle"`
	ThroughputPerKCycle float64 `json:"throughput_per_kcycle"`

	FaultTotal     uint64 `json:"fault_total,omitempty"`
	OfflineCores   uint64 `json:"offline_cores,omitempty"`
	Reclaims       uint64 `json:"reclaims,omitempty"`
	Salvages       uint64 `json:"salvages,omitempty"`
	DegradedCycles uint64 `json:"degraded_cycles,omitempty"`
	Spawns         uint64 `json:"spawns"`
	StealHits      uint64 `json:"steal_hits"`
	OracleOps      uint64 `json:"oracle_ops,omitempty"`
}

// openToJSON converts a collected open-system result.
func openToJSON(r *openload.Result) OpenRunJSON {
	return OpenRunJSON{
		Config:   r.Config,
		Workload: r.Spec.Workload,
		Arrival:  r.Spec.Arrival,

		RatePerKCycle: r.Spec.RatePerK,
		Requests:      r.Spec.Requests,
		Seed:          r.Spec.Seed,
		MaxInFlight:   r.Spec.MaxInFlight,
		Horizon:       uint64(r.Spec.Horizon),

		Scenario:  r.Scenario,
		FaultSeed: r.FaultSeed,

		Arrived:       r.Arrived,
		Completed:     r.Completed,
		Shed:          r.Shed,
		InFlightAtEnd: r.InFlightAtEnd,
		Drained:       r.Drained,

		Cycles: uint64(r.Cycles),

		LatencyP50:  r.Latency.P50(),
		LatencyP90:  r.Latency.P90(),
		LatencyP99:  r.Latency.P99(),
		LatencyP999: r.Latency.P999(),
		LatencyMax:  r.Latency.Max(),
		LatencyMean: r.Latency.Mean(),

		OfferedPerKCycle:    r.OfferedPerKCycle,
		ThroughputPerKCycle: r.ThroughputPerKCycle,

		FaultTotal:     r.FaultTotal,
		OfflineCores:   r.RT.OfflineCores,
		Reclaims:       r.RT.Reclaims,
		Salvages:       r.RT.Salvages,
		DegradedCycles: r.RT.DegradedCycles,
		Spawns:         r.RT.Spawns,
		StealHits:      r.RT.StealHits,
		OracleOps:      r.OracleOps,
	}
}

// encodeOpenRuns is the one canonical encoding of open-system exports,
// shared by WriteOpenJSON and OpenResultJSON (the serving path).
func encodeOpenRuns(w io.Writer, runs []OpenRunJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}

// WriteOpenJSON emits every open-system cell cached in the suite,
// sorted by cache key for deterministic bytes.
func (s *Suite) WriteOpenJSON(w io.Writer) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.openResults))
	for k := range s.openResults {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]OpenRunJSON, 0, len(keys))
	for _, k := range keys {
		out = append(out, openToJSON(s.openResults[k]))
	}
	s.mu.Unlock()
	return encodeOpenRuns(w, out)
}

// OpenResultJSON simulates (or recalls) one open-system cell and
// returns its canonical export bytes — single-element array, encoded
// exactly as WriteOpenJSON would — for the serving layer to store and
// serve verbatim.
func (s *Suite) OpenResultJSON(ctx context.Context, cfgName, scenario string, faultSeed uint64, sp openload.Spec) ([]byte, error) {
	r, err := s.OpenRunCtx(ctx, cfgName, scenario, faultSeed, sp)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := encodeOpenRuns(&buf, []OpenRunJSON{openToJSON(r)}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
