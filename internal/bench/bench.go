// Package bench is the paper-reproduction harness: it runs the 13
// kernels across the simulated configurations and regenerates every
// table and figure in the paper's evaluation (Tables III-V, Figures
// 4-8, the §VI-C ULI overhead report, and the energy comparison).
package bench

import (
	"fmt"
	"io"
	"math"

	"bigtiny/internal/apps"
	"bigtiny/internal/cilkview"
	"bigtiny/internal/energy"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/stats"
	"bigtiny/internal/trace"
	"bigtiny/internal/wsrt"
)

// Suite runs (config, app) pairs on demand and caches the results so
// several tables/figures can share one set of simulations.
type Suite struct {
	// Size selects input scale for all runs.
	Size apps.Size
	// Grain overrides the per-app default task granularity (0 = default).
	Grain int
	// Verify (default true via NewSuite) checks outputs after every run.
	Verify bool
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
	// Tracer, if non-nil, records scheduler events for each run
	// (intended for single-run use via cmd/btsim -trace).
	Tracer *trace.Recorder
	// FaultScenario, when non-empty, names a fault-injection scenario
	// (fault.Lookup) applied to every run, seeded with FaultSeed.
	FaultScenario string
	FaultSeed     uint64
	// Oracle shadows every run with the memory-ordering oracle
	// (internal/oracle); a violation fails the run.
	Oracle bool

	results map[string]*stats.Run
	views   map[string]cilkview.Report
}

// NewSuite returns a verifying suite at the given size.
func NewSuite(size apps.Size) *Suite {
	return &Suite{
		Size:    size,
		Verify:  true,
		results: make(map[string]*stats.Run),
		views:   make(map[string]cilkview.Report),
	}
}

// The evaluation's configuration lists.
var (
	// HCCConfigs are the three software-centric tiny-core protocols.
	HCCConfigs = []string{"bT/HCC-dnv", "bT/HCC-gwt", "bT/HCC-gwb"}
	// DTSConfigs add direct task stealing.
	DTSConfigs = []string{"bT/HCC-DTS-dnv", "bT/HCC-DTS-gwt", "bT/HCC-DTS-gwb"}
	// Table5Apps is the paper's 256-core subset.
	Table5Apps = []string{"cilk5-cs", "ligra-bc", "ligra-bfs", "ligra-cc", "ligra-tc"}
)

// Run simulates app on the named machine configuration (cached).
// The "IOx1" configuration runs the app's serial variant — it is the
// paper's "Serial IO" baseline.
func (s *Suite) Run(cfgName, appName string) (*stats.Run, error) {
	key := cfgName + "|" + appName
	if s.FaultScenario != "" {
		key = fmt.Sprintf("%s|%s|%d", key, s.FaultScenario, s.FaultSeed)
	}
	if s.Oracle {
		key += "|oracle"
	}
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	cfg, err := machine.Lookup(cfgName)
	if err != nil {
		return nil, err
	}
	if s.FaultScenario != "" {
		sc, err := fault.Lookup(s.FaultScenario)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &sc
		cfg.FaultSeed = s.FaultSeed
	}
	cfg.Oracle = s.Oracle
	app, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	m := machine.New(cfg)
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	rt.Grain = grainFor(app, s.Grain)
	rt.Tracer = s.Tracer
	inst := app.Setup(rt, s.Size, s.Grain)
	root := inst.Root
	if cfgName == "IOx1" {
		root = inst.SerialRoot
	}
	if err := rt.Run(root); err != nil {
		return nil, fmt.Errorf("bench: %s on %s: %w", appName, cfgName, err)
	}
	if s.Verify {
		read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
		if err := inst.Verify(read); err != nil {
			return nil, fmt.Errorf("bench: %s on %s: verification failed: %w", appName, cfgName, err)
		}
	}
	r := stats.Collect(m, rt, appName)
	s.results[key] = r
	if s.Progress != nil {
		fmt.Fprintf(s.Progress, "ran %-14s on %-16s: %12d cycles\n", appName, cfgName, r.Cycles)
	}
	return r, nil
}

// View returns the Cilkview analysis for app at the suite's size and
// grain (cached).
func (s *Suite) View(appName string) (cilkview.Report, error) {
	key := fmt.Sprintf("%s|%d|%d", appName, s.Size, s.Grain)
	if v, ok := s.views[key]; ok {
		return v, nil
	}
	app, err := apps.ByName(appName)
	if err != nil {
		return cilkview.Report{}, err
	}
	v := cilkview.Analyze(func(rt *wsrt.RT) wsrt.Body {
		rt.Grain = grainFor(app, s.Grain)
		return app.Setup(rt, s.Size, s.Grain).Root
	})
	s.views[key] = v
	return v, nil
}

// Energy returns the energy proxy for a cached or new run.
func (s *Suite) Energy(cfgName, appName string) (float64, error) {
	r, err := s.Run(cfgName, appName)
	if err != nil {
		return 0, err
	}
	return energy.DefaultModel().Estimate(r), nil
}

func grainFor(app *apps.App, override int) int {
	if override > 0 {
		return override
	}
	return app.DefaultGrain
}

// AppNames returns the apps under test (all 13 by default).
func AppNames() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

// geomean computes the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
