// Package bench is the paper-reproduction harness: it runs the 13
// kernels across the simulated configurations and regenerates every
// table and figure in the paper's evaluation (Tables III-V, Figures
// 4-8, the §VI-C ULI overhead report, and the energy comparison).
//
// The suite is safe for concurrent use: Run and View serialize access
// to the result caches and deduplicate in-flight simulations, so a
// host-parallel driver (Prewarm, the parallel Chaos sweep, or plain
// goroutines) can fan independent simulations out across host cores
// while every caller of the same (config, app) pair shares one run.
// Each simulation is fully contained in its own machine.New/wsrt.New
// instance; results are bit-identical regardless of host parallelism.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"bigtiny/internal/apps"
	"bigtiny/internal/cilkview"
	"bigtiny/internal/energy"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/openload"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
	"bigtiny/internal/trace"
	"bigtiny/internal/wsrt"
)

// Suite runs (config, app) pairs on demand and caches the results so
// several tables/figures can share one set of simulations. The
// configuration fields must be set before the first Run/View call and
// left alone afterwards; the methods may then be called from any
// number of goroutines.
type Suite struct {
	// Size selects input scale for all runs.
	Size apps.Size
	// Grain overrides the per-app default task granularity (0 = default).
	Grain int
	// Verify (default true via NewSuite) checks outputs after every run.
	Verify bool
	// Progress, if non-nil, receives one line per completed run. Lines
	// are written atomically (whole lines, never interleaved) but their
	// order depends on host scheduling when runs execute in parallel.
	Progress io.Writer
	// Tracer, if non-nil, records scheduler events for each run
	// (intended for single-run use via cmd/btsim -trace; do not combine
	// with parallel Prewarm).
	Tracer *trace.Recorder
	// FaultScenario, when non-empty, names a fault-injection scenario
	// (fault.Lookup) applied to every run, seeded with FaultSeed.
	FaultScenario string
	FaultSeed     uint64
	// Oracle shadows every run with the memory-ordering oracle
	// (internal/oracle); a violation fails the run.
	Oracle bool
	// Deadline, when nonzero, overrides every configuration's watchdog
	// deadline (simulated cycles): a run that exceeds it fails with the
	// machine-state dump instead of hanging its caller. Success results
	// are deadline-independent (a run either finishes under the
	// deadline, bit-identical to an unbounded run, or errors), so the
	// result cache does not key on it.
	Deadline sim.Time
	// Shards splits every simulation's event kernel into that many
	// conservative-lookahead shards (machine.Config.Shards; <= 1 runs
	// serial). Sharding is a host-execution knob: results are
	// byte-identical at any value, so — like Deadline — it is not part
	// of the result cache key.
	Shards int
	// ShardExec selects the sharded kernel's executor
	// (machine.Config.ShardExec): merged dispatch or the epoch-parallel
	// worker pool. Also a host-execution knob with byte-identical
	// results, and likewise excluded from the result cache key.
	ShardExec sim.ExecMode
	// ExecWorkers bounds the parallel executor's pool per simulation
	// (machine.Config.ExecWorkers); <= 0 means one worker per shard.
	ExecWorkers int
	// SimHook, when non-nil, runs at the top of every simulation with
	// the cell's names (and of every Cilkview analysis, with cfgName
	// "view"), inside the suite's panic containment. It exists so
	// robustness tests (of this package and of the serving layer) can
	// inject failures — panics, stalls — that no real app produces.
	// Leave nil outside tests.
	SimHook func(cfgName, appName string)

	// mu guards the caches and in-flight tables below. Simulations run
	// outside the lock; flight entries make concurrent callers of the
	// same key share one simulation (singleflight).
	mu      sync.Mutex
	results map[string]*stats.Run
	views   map[string]cilkview.Report
	// openResults caches open-system runs (OpenRun); keyed separately
	// because their identity includes the arrival spec and a per-cell
	// fault scenario rather than the suite-wide one.
	openResults map[string]*openload.Result
	flight      map[string]*flightCall
	// subs memoizes the derived suites Table5/Fig4 need (same settings,
	// different size or grain) so Prewarm and the serial render pass
	// warm and read the same caches.
	subs map[string]*Suite

	// progressMu serializes Progress writes; set by NewSuite and shared
	// with derived suites so parallel runs never interleave lines.
	progressMu *sync.Mutex

	// Kernel host-performance counters accumulated (atomically) across
	// every simulation this suite ran, for the benchmarking rig. They
	// are host-side observability only and never feed tables or JSON
	// exports. Derived suites (at) keep their own totals; HostCounters
	// sums them.
	eventsScheduled atomic.Uint64
	eventsFired     atomic.Uint64
	fastWaits       atomic.Uint64
	// Shard-decomposition totals (zero unless Shards > 1): cross-shard
	// event posts, conservative-lookahead violations, and epoch
	// accounting, summed over every sharded simulation (see
	// sim.ShardStats).
	shardCrossPosts   atomic.Uint64
	shardViolations   atomic.Uint64
	shardActiveEpochs atomic.Uint64
	shardEpochSum     atomic.Uint64
	// Parallel-executor totals (zero unless ShardExec == ExecParallel):
	// token handoffs into the worker pool, callbacks run inline on the
	// worker already holding the token, outboxed cross-shard posts, and
	// outbox flushes (see sim.ExecStats).
	execHandoffs atomic.Uint64
	execInline   atomic.Uint64
	execOutboxed atomic.Uint64
	execFlushes  atomic.Uint64
}

// flightCall is one in-flight simulation or analysis; waiters block on
// done and then read the result fields.
type flightCall struct {
	done chan struct{}
	run  *stats.Run
	view cilkview.Report
	open *openload.Result
	err  error
}

// NewSuite returns a verifying suite at the given size.
func NewSuite(size apps.Size) *Suite {
	return &Suite{
		Size:        size,
		Verify:      true,
		results:     make(map[string]*stats.Run),
		views:       make(map[string]cilkview.Report),
		openResults: make(map[string]*openload.Result),
		flight:      make(map[string]*flightCall),
		subs:        make(map[string]*Suite),
		progressMu:  &sync.Mutex{},
	}
}

// The evaluation's configuration lists.
var (
	// HCCConfigs are the three software-centric tiny-core protocols.
	HCCConfigs = []string{"bT/HCC-dnv", "bT/HCC-gwt", "bT/HCC-gwb"}
	// DTSConfigs add direct task stealing.
	DTSConfigs = []string{"bT/HCC-DTS-dnv", "bT/HCC-DTS-gwt", "bT/HCC-DTS-gwb"}
	// Table5Apps is the paper's 256-core subset.
	Table5Apps = []string{"cilk5-cs", "ligra-bc", "ligra-bfs", "ligra-cc", "ligra-tc"}
)

// at returns the suite whose Size/Grain match the arguments: s itself
// when they equal s's own, otherwise a derived suite memoized on s
// (created with the same Verify/Progress settings and sharing s's
// progress lock). Table5 and Fig4 render through it, and Prewarm
// resolves Work items through it, so both hit the same caches.
func (s *Suite) at(size apps.Size, grain int) *Suite {
	if size == s.Size && grain == s.Grain {
		return s
	}
	key := fmt.Sprintf("%d|%d", size, grain)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[key]; ok {
		return sub
	}
	sub := NewSuite(size)
	sub.Grain = grain
	sub.Verify = s.Verify
	sub.Progress = s.Progress
	sub.Deadline = s.Deadline
	sub.Shards = s.Shards
	sub.ShardExec = s.ShardExec
	sub.ExecWorkers = s.ExecWorkers
	sub.SimHook = s.SimHook
	sub.progressMu = s.progressMu
	s.subs[key] = sub
	return sub
}

// runKey is the result-cache key for one (config, app) pair under the
// suite's fault/oracle settings.
func (s *Suite) runKey(cfgName, appName string) string {
	key := cfgName + "|" + appName
	if s.FaultScenario != "" {
		key = fmt.Sprintf("%s|%s|%d", key, s.FaultScenario, s.FaultSeed)
	}
	if s.Oracle {
		key += "|oracle"
	}
	return key
}

// Run simulates app on the named machine configuration (cached).
// The "IOx1" configuration runs the app's serial variant — it is the
// paper's "Serial IO" baseline. Concurrent callers of the same pair
// share a single simulation.
func (s *Suite) Run(cfgName, appName string) (*stats.Run, error) {
	return s.RunCtx(context.Background(), cfgName, appName)
}

// RunCtx is Run with cancellation: a done context interrupts an
// in-flight simulation this call is leading (the kernel aborts with a
// machine-state dump) and stops waiting on one it merely joined —
// the shared simulation itself keeps the leader's context, so one
// impatient waiter cannot kill a result other callers are blocked on.
func (s *Suite) RunCtx(ctx context.Context, cfgName, appName string) (*stats.Run, error) {
	key := "run:" + s.runKey(cfgName, appName)
	s.mu.Lock()
	if r, ok := s.results[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.run, c.err
		case <-ctx.Done():
			return nil, fmt.Errorf("bench: %s on %s: %w", appName, cfgName, ctx.Err())
		}
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	c.run, c.err = s.simulate(ctx, cfgName, appName)

	s.mu.Lock()
	if c.err == nil {
		s.results[key] = c.run
	}
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.run, c.err
}

// simulate performs one full simulation, uncached and lock-free: every
// run builds its own machine and runtime, so concurrent simulations
// share no mutable state. A panic anywhere in the cell — app setup,
// the simulation, verification, a test hook — is recovered into that
// cell's error: one poisoned (config, app) pair fails its own callers
// (the singleflight leader and every duplicate waiter) and nothing
// else.
func (s *Suite) simulate(ctx context.Context, cfgName, appName string) (r *stats.Run, err error) {
	defer func() {
		if v := recover(); v != nil {
			r, err = nil, fmt.Errorf("bench: panic in %s on %s: %v\n%s",
				appName, cfgName, v, debug.Stack())
		}
	}()
	if s.SimHook != nil {
		s.SimHook(cfgName, appName)
	}
	cfg, err := machine.Lookup(cfgName)
	if err != nil {
		return nil, err
	}
	if s.Deadline > 0 {
		cfg.Deadline = s.Deadline
	}
	if s.FaultScenario != "" {
		sc, err := fault.Lookup(s.FaultScenario)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &sc
		cfg.FaultSeed = s.FaultSeed
	}
	cfg.Oracle = s.Oracle
	cfg.Shards = s.Shards
	cfg.ShardExec = s.ShardExec
	cfg.ExecWorkers = s.ExecWorkers
	app, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	m := machine.New(cfg)
	if done := ctx.Done(); done != nil {
		// Wall-clock cancellation: a watcher interrupts the kernel when
		// the context dies mid-run; the kernel aborts at its next event
		// with the usual watchdog dump. The watcher is released on every
		// exit path so a completed run leaks nothing.
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-done:
				m.Kernel.Interrupt(fmt.Sprintf("%s on %s cancelled: %v", appName, cfgName, ctx.Err()))
			case <-stopWatch:
			}
		}()
	}
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	rt.Grain = grainFor(app, s.Grain)
	rt.Tracer = s.Tracer
	inst := app.Setup(rt, s.Size, s.Grain)
	root := inst.Root
	if cfgName == "IOx1" {
		root = inst.SerialRoot
	}
	if err := rt.Run(root); err != nil {
		return nil, fmt.Errorf("bench: %s on %s: %w", appName, cfgName, err)
	}
	if s.Verify {
		read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
		if err := inst.Verify(read); err != nil {
			return nil, fmt.Errorf("bench: %s on %s: verification failed: %w", appName, cfgName, err)
		}
	}
	r = stats.Collect(m, rt, appName)
	s.eventsScheduled.Add(m.Kernel.Scheduled())
	s.eventsFired.Add(m.Kernel.Fired())
	s.fastWaits.Add(m.Kernel.FastWaits())
	if st := m.ShardStats(); st != nil {
		s.shardCrossPosts.Add(st.CrossPosts)
		s.shardViolations.Add(st.Violations)
		s.shardActiveEpochs.Add(st.ActiveEpochs)
		s.shardEpochSum.Add(st.ShardEpochs)
	}
	if es := m.Kernel.ExecStats(); es != nil {
		s.execHandoffs.Add(es.Handoffs)
		s.execInline.Add(es.Inline)
		s.execOutboxed.Add(es.Outboxed)
		s.execFlushes.Add(es.Flushes)
	}
	s.progress("ran %-14s on %-16s: %12d cycles\n", appName, cfgName, r.Cycles)
	return r, nil
}

// HostCounters returns the kernel host-performance totals (events
// scheduled, events fired, fast-path waits) over every simulation this
// suite and its derived sub-suites have run.
func (s *Suite) HostCounters() (scheduled, fired, fastWaits uint64) {
	scheduled = s.eventsScheduled.Load()
	fired = s.eventsFired.Load()
	fastWaits = s.fastWaits.Load()
	s.mu.Lock()
	subs := make([]*Suite, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sc, f, fw := sub.HostCounters()
		scheduled += sc
		fired += f
		fastWaits += fw
	}
	return scheduled, fired, fastWaits
}

// ShardObs is the shard-decomposition accounting a suite accumulates
// over every sharded simulation it ran (all-zero on a serial suite).
// Violations must stay zero on correctly partitioned machines; the
// equivalence tests assert it.
type ShardObs struct {
	CrossPosts   uint64 // events posted from one shard into another
	Violations   uint64 // cross-shard posts closer than the lookahead
	ActiveEpochs uint64 // lookahead epochs with at least one event fired
	ShardEpochs  uint64 // sum over epochs of distinct shards that fired
}

// AvgConcurrency is the mean number of distinct shards firing per
// active lookahead epoch — the speedup ceiling a lock-step
// epoch-parallel executor could extract from these runs (1 when no
// sharded run happened).
func (o ShardObs) AvgConcurrency() float64 {
	if o.ActiveEpochs == 0 {
		return 1
	}
	return float64(o.ShardEpochs) / float64(o.ActiveEpochs)
}

// ShardObs returns the shard-decomposition totals over every sharded
// simulation this suite and its derived sub-suites have run.
func (s *Suite) ShardObs() ShardObs {
	o := ShardObs{
		CrossPosts:   s.shardCrossPosts.Load(),
		Violations:   s.shardViolations.Load(),
		ActiveEpochs: s.shardActiveEpochs.Load(),
		ShardEpochs:  s.shardEpochSum.Load(),
	}
	s.mu.Lock()
	subs := make([]*Suite, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		so := sub.ShardObs()
		o.CrossPosts += so.CrossPosts
		o.Violations += so.Violations
		o.ActiveEpochs += so.ActiveEpochs
		o.ShardEpochs += so.ShardEpochs
	}
	return o
}

// ExecObs is the parallel-executor accounting a suite accumulates over
// every simulation it ran under sim.ExecParallel (all-zero otherwise).
// Host-side observability only — none of it appears in any table or
// JSON export, which is how executor modes stay cmp-identical.
type ExecObs struct {
	Handoffs uint64 // token handoffs into the worker pool
	Inline   uint64 // callbacks run on the worker already holding the token
	Outboxed uint64 // cross-shard posts deferred through outboxes
	Flushes  uint64 // outbox flushes (≈ active epoch barriers)
}

// ExecObs returns the parallel-executor totals over every simulation
// this suite and its derived sub-suites have run.
func (s *Suite) ExecObs() ExecObs {
	o := ExecObs{
		Handoffs: s.execHandoffs.Load(),
		Inline:   s.execInline.Load(),
		Outboxed: s.execOutboxed.Load(),
		Flushes:  s.execFlushes.Load(),
	}
	s.mu.Lock()
	subs := make([]*Suite, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		eo := sub.ExecObs()
		o.Handoffs += eo.Handoffs
		o.Inline += eo.Inline
		o.Outboxed += eo.Outboxed
		o.Flushes += eo.Flushes
	}
	return o
}

// progress writes one whole progress line under the shared lock.
func (s *Suite) progress(format string, args ...any) {
	if s.Progress == nil {
		return
	}
	s.progressMu.Lock()
	fmt.Fprintf(s.Progress, format, args...)
	s.progressMu.Unlock()
}

// View returns the Cilkview analysis for app at the suite's size and
// grain (cached). Concurrent callers of the same app share a single
// analysis.
func (s *Suite) View(appName string) (cilkview.Report, error) {
	key := fmt.Sprintf("view:%s|%d|%d", appName, s.Size, s.Grain)
	s.mu.Lock()
	if v, ok := s.views[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.view, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	c.view, c.err = s.analyze(appName)

	s.mu.Lock()
	if c.err == nil {
		s.views[key] = c.view
	}
	delete(s.flight, key)
	s.mu.Unlock()
	close(c.done)
	return c.view, c.err
}

// analyze performs one Cilkview analysis with the same panic
// containment simulate gives simulations: the native depth-first
// executor runs app code on this goroutine, so a panicking app fails
// its own cell instead of the process.
func (s *Suite) analyze(appName string) (v cilkview.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = cilkview.Report{}, fmt.Errorf("bench: panic analyzing %s: %v\n%s",
				appName, r, debug.Stack())
		}
	}()
	if s.SimHook != nil {
		s.SimHook("view", appName)
	}
	app, err := apps.ByName(appName)
	if err != nil {
		return cilkview.Report{}, err
	}
	return cilkview.Analyze(func(rt *wsrt.RT) wsrt.Body {
		rt.Grain = grainFor(app, s.Grain)
		return app.Setup(rt, s.Size, s.Grain).Root
	}), nil
}

// Energy returns the energy proxy for a cached or new run.
func (s *Suite) Energy(cfgName, appName string) (float64, error) {
	r, err := s.Run(cfgName, appName)
	if err != nil {
		return 0, err
	}
	return energy.DefaultModel().Estimate(r), nil
}

func grainFor(app *apps.App, override int) int {
	if override > 0 {
		return override
	}
	return app.DefaultGrain
}

// AppNames returns the apps under test (all 13 by default).
func AppNames() []string {
	var names []string
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return names
}

// geomean computes the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
