package bench

import (
	"fmt"
	"runtime"
	"sync"

	"bigtiny/internal/apps"
	"bigtiny/internal/openload"
)

// Work names one unit a render target needs before it can draw: either
// a simulation of App on Cfg or (View=true) a Cilkview analysis of App.
// Size and Grain are absolute — the worklist constructors fill them in
// from the suite — so a Work item fully determines its result.
type Work struct {
	Cfg   string // machine configuration; unused when View is set
	App   string
	Size  apps.Size
	Grain int
	View  bool // Cilkview analysis instead of a simulation

	// Open, when set, makes this item an open-system cell (OpenRun of
	// the spec on Cfg under OpenScenario/OpenFaultSeed) instead of a
	// closed-loop simulation; App/Size/Grain/View are unused.
	Open          *openload.Spec
	OpenScenario  string
	OpenFaultSeed uint64
}

// key collapses duplicate work items (e.g. the bT/MESI baseline every
// figure shares).
func (w Work) key() string {
	if w.Open != nil {
		return fmt.Sprintf("o|%s|%s|%d|%s", w.Cfg, w.OpenScenario, w.OpenFaultSeed, w.Open.Key())
	}
	v := "r"
	if w.View {
		v = "v"
	}
	return fmt.Sprintf("%s|%s|%s|%d|%d", v, w.Cfg, w.App, int(w.Size), w.Grain)
}

// Prewarm executes every work item, fanning them out over a bounded
// pool of jobs workers (jobs <= 0 means runtime.NumCPU()). Duplicate
// items are collapsed, and the suite's singleflight layer dedups any
// remaining overlap, so each distinct simulation runs exactly once.
// Results land in the same caches the serial render paths read; a
// render pass after Prewarm therefore does no simulation work and
// emits output in its usual fixed order.
//
// Prewarm returns the first error it saw, but warms every other item
// regardless; the render pass will surface the same error with its
// usual per-target context.
func (s *Suite) Prewarm(work []Work, jobs int) error {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	// Suite-level jobs and per-run shards draw from one host-core
	// budget: never run more than NumCPU() worth of jobs × shards. A
	// caller that asked for both explicitly gets the jobs side clamped
	// (HostBudget lets CLIs warn before it comes to this).
	if s.Shards > 1 {
		if budget := runtime.NumCPU() / s.Shards; jobs > budget {
			jobs = budget
			if jobs < 1 {
				jobs = 1
			}
		}
	}
	seen := make(map[string]bool, len(work))
	queue := make([]Work, 0, len(work))
	for _, w := range work {
		if k := w.key(); !seen[k] {
			seen[k] = true
			queue = append(queue, w)
		}
	}

	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, w := range queue {
		wg.Add(1)
		sem <- struct{}{}
		go func(w Work) {
			defer wg.Done()
			defer func() { <-sem }()
			var err error
			if w.Open != nil {
				_, err = s.OpenRun(w.Cfg, w.OpenScenario, w.OpenFaultSeed, *w.Open)
			} else if w.View {
				_, err = s.at(w.Size, w.Grain).View(w.App)
			} else {
				_, err = s.at(w.Size, w.Grain).Run(w.Cfg, w.App)
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// HostBudget resolves the (jobs, shards) pair against one shared
// host-core budget of hostCPUs (<= 0 means runtime.NumCPU()): at most
// hostCPUs cores' worth of parallel simulations × shards per
// simulation. Zero-valued inputs are resolved from the cores the other
// side leaves over — `-j 4` on a 16-core host defaults shards to 4;
// `-shards 8` defaults jobs to 2. When both are explicit and their
// product oversubscribes the host, jobs is clamped (shards is the
// user's accuracy/decomposition choice; job count is pure throughput)
// and clamped reports it so the CLI can warn.
func HostBudget(jobs, shards, hostCPUs int) (gotJobs, gotShards int, clamped bool) {
	if hostCPUs <= 0 {
		hostCPUs = runtime.NumCPU()
	}
	switch {
	case jobs <= 0 && shards <= 0:
		return hostCPUs, 1, false
	case shards <= 0:
		gotShards = hostCPUs / jobs
		if gotShards < 1 {
			gotShards = 1
		}
		return jobs, gotShards, false
	case jobs <= 0:
		gotJobs = hostCPUs / shards
		if gotJobs < 1 {
			gotJobs = 1
		}
		return gotJobs, shards, false
	}
	if jobs*shards > hostCPUs {
		gotJobs = hostCPUs / shards
		if gotJobs < 1 {
			gotJobs = 1
		}
		return gotJobs, shards, gotJobs != jobs
	}
	return jobs, shards, false
}

// run and view build Work items at the suite's own size/grain.
func (s *Suite) runWork(cfg, app string) Work {
	return Work{Cfg: cfg, App: app, Size: s.Size, Grain: s.Grain}
}

func (s *Suite) viewWork(app string) Work {
	return Work{App: app, Size: s.Size, Grain: s.Grain, View: true}
}

// allBTConfigs is the bT/MESI baseline plus the six HCC/HCC-DTS
// configurations — the column set Figures 5-8 share.
func allBTConfigs() []string {
	cfgs := []string{"bT/MESI"}
	cfgs = append(cfgs, HCCConfigs...)
	cfgs = append(cfgs, DTSConfigs...)
	return cfgs
}

// Table3Work lists the runs and analyses Table3 performs.
func (s *Suite) Table3Work(appNames []string) []Work {
	var work []Work
	cfgs := []string{"IOx1", "O3x1", "O3x4", "O3x8"}
	cfgs = append(cfgs, allBTConfigs()...)
	for _, app := range appNames {
		work = append(work, s.viewWork(app))
		for _, cfg := range cfgs {
			work = append(work, s.runWork(cfg, app))
		}
	}
	return work
}

// Table4Work lists the runs Table4 performs.
func (s *Suite) Table4Work(appNames []string) []Work {
	var work []Work
	for _, app := range appNames {
		for _, p := range []string{"dnv", "gwt", "gwb"} {
			work = append(work,
				s.runWork("bT/HCC-"+p, app),
				s.runWork("bT/HCC-DTS-"+p, app))
		}
	}
	return work
}

// Table5Work lists the 256-core weak-scaling runs Table5 performs
// (at the scaled-up input size).
func (s *Suite) Table5Work() []Work {
	size := sizeUp(s.Size)
	var work []Work
	for _, app := range Table5Apps {
		for _, cfg := range []string{"O3x1", "bT256/MESI", "bT256/HCC-gwb", "bT256/HCC-DTS-gwb"} {
			work = append(work, Work{Cfg: cfg, App: app, Size: size, Grain: s.Grain})
		}
	}
	return work
}

// Fig4Grains is the granularity sweep Fig4 runs when given no explicit
// grain list.
var Fig4Grains = []int{1, 2, 4, 8, 16, 32, 64, 128}

// Fig4Work lists the granularity-sweep runs Fig4 performs (nil grains
// means Fig4Grains, matching Fig4 itself).
func (s *Suite) Fig4Work(grains []int) []Work {
	if len(grains) == 0 {
		grains = Fig4Grains
	}
	work := []Work{s.runWork("IOx1", "ligra-tc")}
	for _, g := range grains {
		work = append(work,
			Work{Cfg: "tiny64", App: "ligra-tc", Size: s.Size, Grain: g},
			Work{App: "ligra-tc", Size: s.Size, Grain: g, View: true})
	}
	return work
}

// FigsWork lists the runs Figures 5-8 perform (they share one column
// set, so one worklist serves all four).
func (s *Suite) FigsWork(appNames []string) []Work {
	var work []Work
	for _, app := range appNames {
		for _, cfg := range allBTConfigs() {
			work = append(work, s.runWork(cfg, app))
		}
	}
	return work
}

// ULIWork lists the runs ULIReport performs.
func (s *Suite) ULIWork(appNames []string) []Work {
	var work []Work
	for _, app := range appNames {
		for _, cfg := range DTSConfigs {
			work = append(work, s.runWork(cfg, app))
		}
	}
	return work
}

// EnergyWork lists the runs EnergyReport performs.
func (s *Suite) EnergyWork(appNames []string) []Work {
	var work []Work
	for _, app := range appNames {
		for _, cfg := range []string{"O3x8", "bT/MESI", "bT/HCC-gwb", "bT/HCC-DTS-gwb"} {
			work = append(work, s.runWork(cfg, app))
		}
	}
	return work
}

// TargetWork returns the worklist for a named paperbench render target
// (false for targets with no pre-declared worklist, e.g. chaos, which
// parallelizes internally).
func (s *Suite) TargetWork(target string, appNames []string) ([]Work, bool) {
	switch target {
	case "table3":
		return s.Table3Work(appNames), true
	case "table4":
		return s.Table4Work(appNames), true
	case "table5":
		return s.Table5Work(), true
	case "fig4":
		return s.Fig4Work(nil), true
	case "fig5", "fig6", "fig7", "fig8":
		return s.FigsWork(appNames), true
	case "uli":
		return s.ULIWork(appNames), true
	case "energy":
		return s.EnergyWork(appNames), true
	case "open":
		return s.OpenWork(DefaultOpenSweep(s.Size)), true
	}
	return nil, false
}
