package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/sim"
)

// TestWriteJSONLossyAccounting: the JSON export must carry the full
// ULI protocol accounting (including drops and timeouts), the runtime
// recovery counters, and the fault/oracle context, so the
// Reqs == Acks + Nacks + Drops identity is checkable from -json
// output alone.
func TestWriteJSONLossyAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	s.FaultScenario = "lossy-uli"
	s.FaultSeed = 1
	s.Oracle = true
	if _, err := s.Run(ChaosConfig, "cilk5-cs"); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var runs []RunJSON
	if err := json.Unmarshal([]byte(sb.String()), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs exported, want 1", len(runs))
	}
	r := runs[0]

	if r.ULIReqs == 0 {
		t.Fatal("lossy DTS run exported no ULI requests")
	}
	if r.ULIDrops == 0 {
		t.Fatal("lossy run exported zero drops; the scenario must drop steal messages")
	}
	if r.ULIReqs != r.ULIAcks+r.ULINacks+r.ULIDrops {
		t.Fatalf("exported accounting identity broken: reqs=%d != acks=%d + nacks=%d + drops=%d",
			r.ULIReqs, r.ULIAcks, r.ULINacks, r.ULIDrops)
	}
	if r.FaultTotal == 0 {
		t.Fatal("exported FaultTotal is zero for a faulty run")
	}
	if r.FaultScenario != "lossy-uli" || r.FaultSeed != 1 {
		t.Fatalf("exported fault context = (%q, %d), want (lossy-uli, 1)",
			r.FaultScenario, r.FaultSeed)
	}
	if r.OracleOps == 0 {
		t.Fatal("exported OracleOps is zero with the oracle on")
	}

	// The raw JSON must actually contain the new keys (omitempty must
	// not have eaten populated fields).
	for _, key := range []string{"uli_drops", "fault_total", "oracle_ops", "fault_scenario"} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("JSON output missing key %q", key)
		}
	}
}

// TestWriteJSONRecoveryCounters: a core-loss run must export the
// runtime's recovery counters (offline cores, reclaims).
func TestWriteJSONRecoveryCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	s.FaultScenario = "core-loss"
	s.FaultSeed = 1
	run, err := s.Run(ChaosConfig, "cilk5-cs")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var runs []RunJSON
	if err := json.Unmarshal([]byte(sb.String()), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs exported, want 1", len(runs))
	}
	r := runs[0]
	if r.OfflineCores == 0 {
		t.Fatal("core-loss run exported zero offline cores")
	}
	if r.OfflineCores != run.RT.OfflineCores || r.Reclaims != run.RT.Reclaims ||
		r.Salvages != run.RT.Salvages || r.DegradedCycles != run.RT.DegradedCycles {
		t.Fatalf("exported recovery counters %+v diverge from collected %+v", r, run.RT)
	}
}

// TestWriteJSONCleanRunOmitsFaultFields: a fault-free run must not
// grow noise fields — the recovery/fault keys are omitempty.
func TestWriteJSONCleanRunOmitsFaultFields(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	if _, err := s.Run("bT/MESI", "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uli_drops", "fault_total", "oracle_ops", "offline_cores", "fault_scenario"} {
		if strings.Contains(sb.String(), key) {
			t.Errorf("fault-free MESI export contains %q", key)
		}
	}
}

// TestSlowdownStr: the chaos table's slowdown column guards against
// zero-cycle baselines instead of printing +Inf/NaN.
func TestSlowdownStr(t *testing.T) {
	if got := slowdownStr(0, 100); got != "n/a" {
		t.Errorf("slowdownStr(0, 100) = %q, want n/a", got)
	}
	if got := slowdownStr(0, 0); got != "n/a" {
		t.Errorf("slowdownStr(0, 0) = %q, want n/a", got)
	}
	if got := strings.TrimSpace(slowdownStr(100, 250)); got != "2.50x" {
		t.Errorf("slowdownStr(100, 250) = %q, want 2.50x", got)
	}
	if strings.Contains(slowdownStr(0, 5), "Inf") || strings.Contains(slowdownStr(0, 0), "NaN") {
		t.Error("slowdown guard leaked Inf/NaN")
	}
}

// TestChaosParallelMatchesSerial: the chaos table must be byte-identical
// at any host worker count, any kernel shard count, and either shard
// executor.
func TestChaosParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	apps := []string{"cilk5-cs"}
	scenarios := []string{"noc-jitter", "lossy-uli"}
	var serial, parallel, sharded, execPar strings.Builder
	if err := Chaos(&serial, apps, scenarios, 1, 1, 1, sim.ExecMerged); err != nil {
		t.Fatal(err)
	}
	if err := Chaos(&parallel, apps, scenarios, 1, 4, 1, sim.ExecMerged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("chaos table diverged between jobs=1 and jobs=4:\n--- jobs=1\n%s--- jobs=4\n%s",
			serial.String(), parallel.String())
	}
	if err := Chaos(&sharded, apps, scenarios, 1, 1, 4, sim.ExecMerged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Fatalf("chaos table diverged between shards=1 and shards=4:\n--- serial\n%s--- shards=4\n%s",
			serial.String(), sharded.String())
	}
	if err := Chaos(&execPar, apps, scenarios, 1, 1, 4, sim.ExecParallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != execPar.String() {
		t.Fatalf("chaos table diverged under the parallel executor:\n--- serial\n%s--- shards=4 parallel\n%s",
			serial.String(), execPar.String())
	}
}
