package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"bigtiny/internal/apps"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/uli"
	"bigtiny/internal/wsrt"
)

// ChaosConfig is the machine every chaos run uses: a small DTS system
// so each (app, scenario) pair exercises the full protocol stack (ULI,
// GPU-WB invalidate/flush discipline, NoC, DRAM) at test-input cost.
const ChaosConfig = "bT8/HCC-DTS-gwb"

// ChaosResult reports one chaos-invariance run.
type ChaosResult struct {
	App      string
	Scenario string
	Seed     uint64
	Cycles   sim.Time
	// Faults is the number of injected fault events; Summary breaks it
	// down per site.
	Faults  uint64
	Summary string
	// ULI is the fabric's protocol accounting (steal requests, drops,
	// timeouts, ...) and RT the runtime's recovery counters, for
	// invariant checks on lossy scenarios.
	ULI uli.Stats
	RT  wsrt.RunStats
	// OracleOps is how many memory operations the ordering oracle
	// checked (every chaos run shadows the caches with the oracle).
	OracleOps uint64
}

// RunChaos runs one app under a named fault scenario on ChaosConfig and
// checks the chaos invariants: the run finishes within its deadline,
// the output equals the serial reference, and (for non-empty scenarios)
// at least one fault was actually injected. Determinism is the caller's
// check: the same (app, scenario, seed) always yields the same Cycles.
func RunChaos(appName, scenarioName string, seed uint64) (*ChaosResult, error) {
	return RunChaosShards(appName, scenarioName, seed, 0)
}

// RunChaosShards is RunChaos on a sharded event kernel (shards <= 1
// runs serial). Sharding cannot change any result — the equivalence
// suite proves chaos cells byte-identical at every K.
func RunChaosShards(appName, scenarioName string, seed uint64, shards int) (*ChaosResult, error) {
	return RunChaosExec(appName, scenarioName, seed, shards, sim.ExecMerged)
}

// RunChaosExec is RunChaosShards with an explicit shard executor; the
// parallel executor is equally invisible in every result.
func RunChaosExec(appName, scenarioName string, seed uint64, shards int, exec sim.ExecMode) (*ChaosResult, error) {
	app, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	sc, err := fault.Lookup(scenarioName)
	if err != nil {
		return nil, err
	}
	cfg, err := machine.Lookup(ChaosConfig)
	if err != nil {
		return nil, err
	}
	cfg.Faults = &sc
	cfg.FaultSeed = seed
	// Every chaos run shadows the caches with the memory-ordering oracle:
	// faults must never produce a load no legal per-location order allows.
	cfg.Oracle = true
	cfg.Shards = shards
	cfg.ShardExec = exec

	m := machine.New(cfg)
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	rt.Grain = app.DefaultGrain
	inst := app.Setup(rt, apps.Test, 0)
	if err := rt.Run(inst.Root); err != nil {
		return nil, fmt.Errorf("chaos: %s under %s (seed %d): %w",
			appName, scenarioName, seed, err)
	}
	read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
	if err := inst.Verify(read); err != nil {
		return nil, fmt.Errorf("chaos: %s under %s (seed %d): output diverged from serial reference: %w",
			appName, scenarioName, seed, err)
	}
	res := &ChaosResult{
		App:       appName,
		Scenario:  scenarioName,
		Seed:      seed,
		Cycles:    m.Kernel.Now(),
		Faults:    m.Faults.Total(),
		Summary:   m.Faults.Summary(),
		ULI:       m.ULI.Stats,
		RT:        rt.Stats,
		OracleOps: m.Oracle.Ops,
	}
	if !sc.Zero() && res.Faults == 0 {
		return nil, fmt.Errorf("chaos: %s under %s (seed %d): scenario injected no faults",
			appName, scenarioName, seed)
	}
	return res, nil
}

// slowdownStr formats the cycle inflation of a chaos run over its
// fault-free baseline. Degenerate baselines (e.g. Empty-size inputs)
// can finish in zero cycles; a ratio is meaningless there, so it
// prints "n/a" instead of +Inf/NaN.
func slowdownStr(base, cycles sim.Time) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%8.2fx", float64(cycles)/float64(base))
}

// ChaosScenarios is the default scenario set for chaos sweeps: every
// scenario in the fault registry except the "none" baseline (Chaos
// already runs a per-app baseline itself), in registry order. Deriving
// the sweep from fault.Scenarios() keeps the registry the single source
// of truth — a newly registered scenario joins the sweep, the CLIs'
// -faults validation, and the service's /v1/scenarios endpoint at once,
// and a rename cannot leave a stale name behind (TestChaosScenarios-
// TrackRegistry pins the derivation).
var ChaosScenarios = func() []string {
	var names []string
	for _, sc := range fault.Scenarios() {
		if sc.Name != "none" {
			names = append(names, sc.Name)
		}
	}
	return names
}()

// chaosJob is one (app, scenario) cell of the chaos table.
type chaosJob struct {
	res *ChaosResult
	err error
}

// Chaos runs every app under every named scenario (ChaosScenarios when
// scenarios is nil) and writes a per-run table: cycles, fault count,
// and the cycle inflation versus the fault-free run of the same app.
// Runs fan out over a bounded pool of jobs host workers (jobs <= 0
// means runtime.NumCPU()); each run is an independent simulation on a
// shards-way sharded kernel (<= 1 serial), so the table is identical
// at any jobs count, any shard count, and either shard executor. Jobs
// and shards draw from one host-core budget, same as Suite.Prewarm.
// The table itself is rendered serially, in fixed (app, scenario)
// order, after all runs finish.
func Chaos(w io.Writer, appNames, scenarios []string, seed uint64, jobs, shards int, exec sim.ExecMode) error {
	if scenarios == nil {
		scenarios = ChaosScenarios
	}
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if shards > 1 {
		if budget := runtime.NumCPU() / shards; jobs > budget {
			jobs = budget
			if jobs < 1 {
				jobs = 1
			}
		}
	}

	// Flatten the (app, scenario) grid — "none" baselines first-per-app —
	// and run every cell through the worker pool.
	type cell struct{ app, scenario string }
	var cells []cell
	for _, appName := range appNames {
		cells = append(cells, cell{appName, "none"})
		for _, scName := range scenarios {
			cells = append(cells, cell{appName, scName})
		}
	}
	results := make([]chaosJob, len(cells))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c cell) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := RunChaosExec(c.app, c.scenario, seed, shards, exec)
			results[i] = chaosJob{r, err}
		}(i, c)
	}
	wg.Wait()

	fmt.Fprintf(w, "Chaos invariance (config %s, size test, seed %d)\n", ChaosConfig, seed)
	fmt.Fprintf(w, "%-14s %-16s %12s %8s %9s\n", "app", "scenario", "cycles", "faults", "slowdown")
	var base *ChaosResult
	for i, c := range cells {
		j := results[i]
		if j.err != nil {
			return j.err
		}
		if c.scenario == "none" {
			base = j.res
			fmt.Fprintf(w, "%-14s %-16s %12d %8d %9s\n",
				c.app, "none", base.Cycles, base.Faults, "1.00x")
			continue
		}
		fmt.Fprintf(w, "%-14s %-16s %12d %8d %9s\n",
			c.app, c.scenario, j.res.Cycles, j.res.Faults,
			slowdownStr(base.Cycles, j.res.Cycles))
	}
	return nil
}
