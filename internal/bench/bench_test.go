package bench

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"bigtiny/internal/apps"
)

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(apps.Test)
	r1, err := s.Run("bT/HCC-gwb", "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("bT/HCC-gwb", "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second Run did not return the cached result")
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	s := NewSuite(apps.Test)
	if _, err := s.Run("no-such-config", "cilk5-cs"); err == nil {
		t.Error("unknown config accepted")
	}
	if _, err := s.Run("bT/MESI", "no-such-app"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSerialBaselineUsesOneCore(t *testing.T) {
	s := NewSuite(apps.Test)
	r, err := s.Run("IOx1", "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}
	if r.RT.Spawns != 0 {
		t.Fatalf("serial baseline spawned %d tasks", r.RT.Spawns)
	}
	if r.BigBreakdown[0]+r.BigBreakdown[1] != 0 && r.TinyTotalCycles() == 0 {
		t.Fatal("serial-IO baseline ran on a big core")
	}
}

func TestTable3SmokeSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	var sb strings.Builder
	if err := s.Table3(&sb, []string{"cilk5-mt", "ligra-bfs"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table III", "cilk5-mt", "ligra-bfs", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable4KeyClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The paper's central Table IV claim: DTS sharply reduces
	// invalidations on all protocols. Check it holds for one app at
	// test size.
	s := NewSuite(apps.Test)
	for _, p := range []string{"dnv", "gwt", "gwb"} {
		hcc, err := s.Run("bT/HCC-"+p, "cilk5-cs")
		if err != nil {
			t.Fatal(err)
		}
		dts, err := s.Run("bT/HCC-DTS-"+p, "cilk5-cs")
		if err != nil {
			t.Fatal(err)
		}
		if dts.L1Tiny.InvLines*2 >= hcc.L1Tiny.InvLines {
			t.Errorf("%s: DTS inv lines %d not well below HCC %d",
				p, dts.L1Tiny.InvLines, hcc.L1Tiny.InvLines)
		}
	}
}

func TestFig4GranularityTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Fine grain must give more logical parallelism than coarse (the
	// left side of the paper's Fig. 4 trade-off).
	fine := NewSuite(apps.Test)
	fine.Grain = 2
	coarse := NewSuite(apps.Test)
	coarse.Grain = 64
	vf, err := fine.View("ligra-tc")
	if err != nil {
		t.Fatal(err)
	}
	vc, err := coarse.View("ligra-tc")
	if err != nil {
		t.Fatal(err)
	}
	if vf.Parallelism() <= vc.Parallelism() {
		t.Fatalf("parallelism: grain2=%.1f <= grain64=%.1f", vf.Parallelism(), vc.Parallelism())
	}
}

func TestULIReportOnlyForDTS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	r, err := s.Run("bT/HCC-gwb", "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}
	if r.ULI != nil {
		t.Error("non-DTS run has ULI stats")
	}
	r, err = s.Run("bT/HCC-DTS-gwb", "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}
	if r.ULI == nil {
		t.Error("DTS run missing ULI stats")
	}
}

func TestEnergyReportRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	if err := s.EnergyReport(io.Discard, []string{"cilk5-mt"}); err != nil {
		t.Fatal(err)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{0, -1}); g != 0 {
		t.Fatalf("geomean of non-positives = %v", g)
	}
}

func TestAppNamesComplete(t *testing.T) {
	names := AppNames()
	if len(names) != 13 {
		t.Fatalf("%d apps, want 13", len(names))
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(apps.Test)
	if _, err := s.Run("bT/HCC-DTS-gwb", "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("bT/MESI", "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var runs []RunJSON
	if err := json.Unmarshal([]byte(sb.String()), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d runs exported, want 2", len(runs))
	}
	for _, r := range runs {
		if r.Cycles == 0 || r.App != "cilk5-mt" {
			t.Fatalf("bad run record: %+v", r)
		}
		if len(r.TrafficBytes) != 9 {
			t.Fatalf("traffic categories = %d, want 9", len(r.TrafficBytes))
		}
	}
	// The DTS run must carry ULI fields; the MESI run must not.
	var sawULI bool
	for _, r := range runs {
		if r.Config == "bT/HCC-DTS-gwb" && r.ULIReqs > 0 {
			sawULI = true
		}
		if r.Config == "bT/MESI" && r.ULIReqs != 0 {
			t.Fatal("MESI run has ULI stats")
		}
	}
	if !sawULI {
		t.Fatal("DTS run missing ULI stats")
	}
}
