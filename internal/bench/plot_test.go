package bench

import (
	"strings"
	"testing"
)

// plotTrajectory builds a small in-memory trajectory: one suite with a
// two-point series and a one-point series, plus a second suite, so the
// renderer exercises multi-entry polylines, single-point charts, and
// suite ordering in one pass.
func plotTrajectory() *TrajectoryFile {
	entry := func(id string, ms int64, benches ...TrajectoryBench) TrajectoryEntry {
		return TrajectoryEntry{
			Commit:  BenchCommit{ID: id, Message: "m", Timestamp: "t"},
			Date:    ms,
			Tool:    "customSmallerIsBetter",
			Benches: benches,
		}
	}
	return &TrajectoryFile{
		LastUpdate: 2000,
		Entries: map[string][]TrajectoryEntry{
			"zeta suite": {
				entry("cccccccccccccccc", 1500, TrajectoryBench{Name: "gate:kernel:ns_per_event", Value: 101.5, Unit: "ns/event"}),
			},
			"alpha suite": {
				entry("aaaaaaaaaaaaaaaa", 1000,
					TrajectoryBench{Name: "table3 serial wall", Value: 100, Unit: "s"},
					TrajectoryBench{Name: "table3 k4 par wall", Value: 140, Unit: "s"}),
				entry("bbbbbbbbbbbbbbbb", 2000,
					TrajectoryBench{Name: "table3 serial wall", Value: 90, Unit: "s"}),
			},
		},
	}
}

// TestRenderTrajectoryHTML pins the renderer's contract: every series
// gets a chart, multi-point series get a polyline, the page carries no
// scripts or external references, and rendering is deterministic.
func TestRenderTrajectoryHTML(t *testing.T) {
	traj := plotTrajectory()
	var b strings.Builder
	if err := RenderTrajectoryHTML(&b, traj, "BENCH.json"); err != nil {
		t.Fatal(err)
	}
	page := b.String()

	for _, want := range []string{
		"<!DOCTYPE html>",
		"alpha suite", "zeta suite",
		"table3 serial wall", "table3 k4 par wall", "gate:kernel:ns_per_event",
		"<svg", "<polyline", // the two-point series must draw a line
		"aaaaaaaaaaaa", // short commit id in a tooltip
		"ns/event",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Self-contained: no scripts, no external fetches of any kind.
	for _, banned := range []string{"<script", "http://", "https://", "src=", "@import"} {
		if strings.Contains(page, banned) {
			t.Errorf("page is not self-contained: found %q", banned)
		}
	}
	// Suites render sorted, regardless of map iteration order.
	if strings.Index(page, "alpha suite") > strings.Index(page, "zeta suite") {
		t.Error("suites not sorted")
	}
	// One chart per series: three series, three <svg> blocks.
	if got := strings.Count(page, "<svg"); got != 3 {
		t.Errorf("%d charts, want 3", got)
	}

	var b2 strings.Builder
	if err := RenderTrajectoryHTML(&b2, traj, "BENCH.json"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != page {
		t.Error("rendering is not deterministic")
	}
}

// TestRenderTrajectoryHTMLEmpty: an empty trajectory renders a valid
// page with a pointer at `paperbench bench`, not a panic or a blank.
func TestRenderTrajectoryHTMLEmpty(t *testing.T) {
	var b strings.Builder
	traj := &TrajectoryFile{Entries: map[string][]TrajectoryEntry{}}
	if err := RenderTrajectoryHTML(&b, traj, "BENCH.json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "paperbench bench") {
		t.Error("empty trajectory page missing the how-to-populate hint")
	}
}
