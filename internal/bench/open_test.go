package bench

import (
	"bytes"
	"context"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/openload"
)

// testOpenSweep is a reduced grid that still crosses coherence
// configurations, offered loads, and chaos.
func testOpenSweep() OpenSweep {
	return OpenSweep{
		Configs:   []string{"bT8/HCC-gwb", "bT8/HCC-DTS-gwb"},
		Rates:     []float64{2, 16},
		Scenarios: []string{"", "chaos-lossy-all"},
		Workload:  "reduce",
		Arrival:   "poisson",
		Requests:  16,
		Seed:      1,
		FaultSeed: 3,
	}
}

// TestOpenParallelMatchesSerial is the -j determinism gate for the
// open-system sweep: a parallel Prewarm followed by a render must be
// byte-identical to a cold serial render, and so must the JSON export.
func TestOpenParallelMatchesSerial(t *testing.T) {
	sw := testOpenSweep()

	serial := NewSuite(apps.Test)
	var serialOut bytes.Buffer
	if err := serial.Open(&serialOut, sw); err != nil {
		t.Fatalf("serial render: %v", err)
	}

	parallel := NewSuite(apps.Test)
	if err := parallel.Prewarm(parallel.OpenWork(sw), 4); err != nil {
		t.Fatalf("parallel prewarm: %v", err)
	}
	var parallelOut bytes.Buffer
	if err := parallel.Open(&parallelOut, sw); err != nil {
		t.Fatalf("parallel render: %v", err)
	}

	if !bytes.Equal(serialOut.Bytes(), parallelOut.Bytes()) {
		t.Errorf("parallel render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut.String(), parallelOut.String())
	}

	var serialJSON, parallelJSON bytes.Buffer
	if err := serial.WriteOpenJSON(&serialJSON); err != nil {
		t.Fatalf("serial json: %v", err)
	}
	if err := parallel.WriteOpenJSON(&parallelJSON); err != nil {
		t.Fatalf("parallel json: %v", err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Errorf("parallel JSON export differs from serial:\n%s\nvs\n%s",
			serialJSON.String(), parallelJSON.String())
	}
}

// TestOpenRepeatRunsIdentical repeats the sweep on a fresh suite: the
// rendered bytes must not depend on process history.
func TestOpenRepeatRunsIdentical(t *testing.T) {
	sw := testOpenSweep()
	var a, b bytes.Buffer
	if err := NewSuite(apps.Test).Open(&a, sw); err != nil {
		t.Fatalf("first render: %v", err)
	}
	if err := NewSuite(apps.Test).Open(&b, sw); err != nil {
		t.Fatalf("second render: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("repeat render differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestOpenRunCaches checks the singleflight cache: the second call for
// the same cell returns the same result pointer without re-simulating.
func TestOpenRunCaches(t *testing.T) {
	s := NewSuite(apps.Test)
	sims := 0
	s.SimHook = func(cfgName, appName string) { sims++ }
	sp := openload.Spec{Workload: "reduce", Arrival: "poisson", RatePerK: 4, Requests: 8, Seed: 1}
	a, err := s.OpenRun("bT8/HCC-DTS-gwb", "", 0, sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.OpenRun("bT8/HCC-DTS-gwb", "", 0, sp)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second OpenRun returned a different result object")
	}
	if sims != 1 {
		t.Errorf("expected 1 simulation, saw %d", sims)
	}
	// A different scenario is a different cell.
	if _, err := s.OpenRun("bT8/HCC-DTS-gwb", "lossy-uli", 1, sp); err != nil {
		t.Fatal(err)
	}
	if sims != 2 {
		t.Errorf("expected 2 simulations after scenario change, saw %d", sims)
	}
}

// TestOpenResultJSONStable checks the serving-path export is
// deterministic across suites (what the daemon's store relies on).
func TestOpenResultJSONStable(t *testing.T) {
	sp := openload.Spec{Workload: "rmat-query", Arrival: "bursty", RatePerK: 8, Requests: 12, Seed: 2}
	ctx := context.Background()
	a, err := NewSuite(apps.Test).OpenResultJSON(ctx, "bT8/HCC-DTS-gwb", "chaos-lossy-all", 5, sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(apps.Test).OpenResultJSON(ctx, "bT8/HCC-DTS-gwb", "chaos-lossy-all", 5, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("OpenResultJSON not stable:\n%s\nvs\n%s", a, b)
	}
}

// TestOpenWorkCoversSweep checks the Prewarm worklist enumerates every
// cell exactly once.
func TestOpenWorkCoversSweep(t *testing.T) {
	sw := testOpenSweep()
	work := NewSuite(apps.Test).OpenWork(sw)
	want := len(sw.Configs) * len(sw.Rates) * len(sw.Scenarios)
	if len(work) != want {
		t.Fatalf("OpenWork: %d items, want %d", len(work), want)
	}
	seen := map[string]bool{}
	for _, w := range work {
		k := w.key()
		if seen[k] {
			t.Errorf("duplicate work key %s", k)
		}
		seen[k] = true
	}
}
