package bench

import (
	"fmt"
	"io"

	"bigtiny/internal/apps"
	"bigtiny/internal/energy"
	"bigtiny/internal/stats"
)

// appByName resolves an app, panicking on registry bugs (callers have
// already validated names through Run).
func appByName(name string) (*apps.App, error) { return apps.ByName(name) }

// sizeUp maps a suite size to the Table V (weak-scaling) input size.
func sizeUp(sz apps.Size) apps.Size {
	if sz == apps.Test {
		return apps.Test
	}
	return apps.Big
}

// Table3 regenerates paper Table III: per-application Cilkview
// characterization (Work/Span/Para/IPT), speedups over the Serial-IO
// baseline for O3x{1,4,8} and big.TINY/MESI, and speedups over
// big.TINY/MESI for the three HCC and three HCC-DTS configurations.
func (s *Suite) Table3(w io.Writer, appNames []string) error {
	fmt.Fprintf(w, "Table III: application characterization and speedups (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s %-6s %9s %9s %6s %7s | %6s %6s %6s %7s | %5s %5s %5s | %5s %5s %5s\n",
		"Name", "PM", "Work", "Span", "Para", "IPT",
		"O3x1", "O3x4", "O3x8", "bT/MESI",
		"dnv", "gwt", "gwb", "Ddnv", "Dgwt", "Dgwb")

	type speedups struct {
		vsSerial map[string]float64
		vsMESI   map[string]float64
	}
	perApp := map[string]speedups{}

	serialCfgs := []string{"O3x1", "O3x4", "O3x8", "bT/MESI"}
	mesiCfgs := append(append([]string{}, HCCConfigs...), DTSConfigs...)

	for _, app := range appNames {
		view, err := s.View(app)
		if err != nil {
			return err
		}
		serial, err := s.Run("IOx1", app)
		if err != nil {
			return err
		}
		mesi, err := s.Run("bT/MESI", app)
		if err != nil {
			return err
		}
		sp := speedups{vsSerial: map[string]float64{}, vsMESI: map[string]float64{}}
		for _, cfg := range serialCfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			sp.vsSerial[cfg] = stats.Speedup(serial, r)
		}
		for _, cfg := range mesiCfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			sp.vsMESI[cfg] = stats.Speedup(mesi, r)
		}
		perApp[app] = sp

		a, _ := appByName(app)
		fmt.Fprintf(w, "%-12s %-6s %9d %9d %6.1f %7.1f | %6.2f %6.2f %6.2f %7.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			app, a.Method, view.Work, view.Span, view.Parallelism(), view.IPT(),
			sp.vsSerial["O3x1"], sp.vsSerial["O3x4"], sp.vsSerial["O3x8"], sp.vsSerial["bT/MESI"],
			sp.vsMESI["bT/HCC-dnv"], sp.vsMESI["bT/HCC-gwt"], sp.vsMESI["bT/HCC-gwb"],
			sp.vsMESI["bT/HCC-DTS-dnv"], sp.vsMESI["bT/HCC-DTS-gwt"], sp.vsMESI["bT/HCC-DTS-gwb"])
	}

	// Geomean row.
	gm := func(key string, serial bool) float64 {
		var vs []float64
		for _, app := range appNames {
			if serial {
				vs = append(vs, perApp[app].vsSerial[key])
			} else {
				vs = append(vs, perApp[app].vsMESI[key])
			}
		}
		return geomean(vs)
	}
	fmt.Fprintf(w, "%-12s %-6s %9s %9s %6s %7s | %6.2f %6.2f %6.2f %7.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
		"geomean", "", "", "", "", "",
		gm("O3x1", true), gm("O3x4", true), gm("O3x8", true), gm("bT/MESI", true),
		gm("bT/HCC-dnv", false), gm("bT/HCC-gwt", false), gm("bT/HCC-gwb", false),
		gm("bT/HCC-DTS-dnv", false), gm("bT/HCC-DTS-gwt", false), gm("bT/HCC-DTS-gwb", false))
	return nil
}

// Table4 regenerates paper Table IV: the DTS-vs-HCC reduction in cache
// line invalidations (InvDec) and flushes (FlsDec, GPU-WB), and the
// relative increase in tiny-core L1D hit rate (HitRateInc), per
// protocol.
func (s *Suite) Table4(w io.Writer, appNames []string) error {
	fmt.Fprintf(w, "Table IV: DTS vs HCC cache operation reductions (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s | %8s %8s %8s | %8s | %8s %8s %8s\n",
		"App", "InvDec%", "InvDec%", "InvDec%", "FlsDec%", "HitInc%", "HitInc%", "HitInc%")
	fmt.Fprintf(w, "%-12s | %8s %8s %8s | %8s | %8s %8s %8s\n",
		"", "dnv", "gwt", "gwb", "gwb", "dnv", "gwt", "gwb")
	protos := []string{"dnv", "gwt", "gwb"}
	for _, app := range appNames {
		invDec := map[string]float64{}
		hitInc := map[string]float64{}
		var flsDec float64
		for _, p := range protos {
			hcc, err := s.Run("bT/HCC-"+p, app)
			if err != nil {
				return err
			}
			dts, err := s.Run("bT/HCC-DTS-"+p, app)
			if err != nil {
				return err
			}
			invDec[p] = stats.PctDecrease(hcc.L1Tiny.InvLines, dts.L1Tiny.InvLines)
			if hr := hcc.TinyHitRate(); hr > 0 {
				hitInc[p] = 100 * (dts.TinyHitRate() - hr) / hr
			}
			if p == "gwb" {
				flsDec = stats.PctDecrease(hcc.L1Tiny.FlushLines, dts.L1Tiny.FlushLines)
			}
		}
		fmt.Fprintf(w, "%-12s | %8.2f %8.2f %8.2f | %8.2f | %8.2f %8.2f %8.2f\n",
			app, invDec["dnv"], invDec["gwt"], invDec["gwb"], flsDec,
			hitInc["dnv"], hitInc["gwt"], hitInc["gwb"])
	}
	return nil
}

// Table5 regenerates paper Table V: the 256-core weak-scaling study on
// five kernels with larger inputs: big.TINY/MESI speedup over O3x1, and
// HCC-gwb / HCC-DTS-gwb speedups over big.TINY/MESI.
func (s *Suite) Table5(w io.Writer) error {
	big := s.at(sizeUp(s.Size), s.Grain)
	fmt.Fprintf(w, "Table V: 256-core big.TINY system, larger inputs (size=%s)\n", big.Size)
	fmt.Fprintf(w, "%-12s | %10s | %12s %12s\n", "App", "b.T/MESI", "HCC-gwb", "HCC-DTS-gwb")
	fmt.Fprintf(w, "%-12s | %10s | %12s %12s\n", "", "(vs O3x1)", "(vs b.T/MESI)", "(vs b.T/MESI)")
	for _, app := range Table5Apps {
		o31, err := big.Run("O3x1", app)
		if err != nil {
			return err
		}
		mesi, err := big.Run("bT256/MESI", app)
		if err != nil {
			return err
		}
		gwb, err := big.Run("bT256/HCC-gwb", app)
		if err != nil {
			return err
		}
		dts, err := big.Run("bT256/HCC-DTS-gwb", app)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s | %10.1f | %12.2f %12.2f\n",
			app, stats.Speedup(o31, mesi), stats.Speedup(mesi, gwb), stats.Speedup(mesi, dts))
	}
	return nil
}

// Fig4 regenerates paper Figure 4: ligra-tc speedup over the serial
// baseline and Cilkview logical parallelism as a function of task
// granularity, on a 64-tiny-core system.
func (s *Suite) Fig4(w io.Writer, grains []int) error {
	if len(grains) == 0 {
		grains = Fig4Grains
	}
	fmt.Fprintf(w, "Figure 4: ligra-tc on 64 tiny cores vs task granularity (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s %10s %14s\n", "Granularity", "Speedup", "Parallelism")
	serial, err := s.Run("IOx1", "ligra-tc")
	if err != nil {
		return err
	}
	for _, g := range grains {
		sub := s.at(s.Size, g)
		r, err := sub.Run("tiny64", "ligra-tc")
		if err != nil {
			return err
		}
		view, err := sub.View("ligra-tc")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12d %10.2f %14.1f\n", g, stats.Speedup(serial, r), view.Parallelism())
	}
	return nil
}

// Fig5 regenerates paper Figure 5: per-app speedup of each HCC (+DTS)
// configuration over big.TINY/MESI.
func (s *Suite) Fig5(w io.Writer, appNames []string) error {
	cfgs := append(append([]string{}, HCCConfigs...), DTSConfigs...)
	fmt.Fprintf(w, "Figure 5: speedup over big.TINY/MESI (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s", "App")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, app := range appNames {
		mesi, err := s.Run("bT/MESI", app)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", app)
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14.2f", stats.Speedup(mesi, r))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig6 regenerates paper Figure 6: tiny-core L1 data cache hit rate per
// app and configuration.
func (s *Suite) Fig6(w io.Writer, appNames []string) error {
	cfgs := append([]string{"bT/MESI"}, append(append([]string{}, HCCConfigs...), DTSConfigs...)...)
	fmt.Fprintf(w, "Figure 6: L1D hit rate (tiny cores) (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s", "App")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, app := range appNames {
		fmt.Fprintf(w, "%-12s", app)
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14.3f", r.TinyHitRate())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7 regenerates paper Figure 7: aggregated tiny-core execution time
// breakdown, normalized to big.TINY/MESI.
func (s *Suite) Fig7(w io.Writer, appNames []string) error {
	cfgs := append([]string{"bT/MESI"}, append(append([]string{}, HCCConfigs...), DTSConfigs...)...)
	fmt.Fprintf(w, "Figure 7: tiny-core execution time breakdown, normalized to bT/MESI (size=%s)\n", s.Size)
	for _, app := range appNames {
		mesi, err := s.Run("bT/MESI", app)
		if err != nil {
			return err
		}
		base := float64(mesi.TinyTotalCycles())
		fmt.Fprintf(w, "%s:\n", app)
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-16s total=%5.2f  %s\n",
				cfg, float64(r.TinyTotalCycles())/base, stats.BreakdownString(r.TinyBreakdown))
		}
	}
	return nil
}

// Fig8 regenerates paper Figure 8: total on-chip network traffic by
// message category, normalized to big.TINY/MESI.
func (s *Suite) Fig8(w io.Writer, appNames []string) error {
	cfgs := append([]string{"bT/MESI"}, append(append([]string{}, HCCConfigs...), DTSConfigs...)...)
	fmt.Fprintf(w, "Figure 8: on-chip network traffic (bytes) normalized to bT/MESI (size=%s)\n", s.Size)
	for _, app := range appNames {
		mesi, err := s.Run("bT/MESI", app)
		if err != nil {
			return err
		}
		base := float64(mesi.Traffic.TotalBytes())
		fmt.Fprintf(w, "%s:\n", app)
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-16s total=%5.2f  %s\n",
				cfg, float64(r.Traffic.TotalBytes())/base, stats.TrafficString(&r.Traffic))
		}
	}
	return nil
}

// ULIReport regenerates the paper's §VI-C DTS overhead numbers: ULI
// network utilization, average round-trip latency, and the fraction of
// execution time spent in DTS.
func (s *Suite) ULIReport(w io.Writer, appNames []string) error {
	fmt.Fprintf(w, "ULI/DTS overhead (paper §VI-C) (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s %-16s %10s %10s %10s %10s %8s\n",
		"App", "Config", "Reqs", "Acks", "Nacks", "AvgLat", "MaxUtil")
	for _, app := range appNames {
		for _, cfg := range DTSConfigs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			if r.ULI == nil {
				continue
			}
			fmt.Fprintf(w, "%-12s %-16s %10d %10d %10d %10.1f %7.2f%%\n",
				app, cfg, r.ULI.Reqs, r.ULI.Acks, r.ULI.Nacks,
				r.ULIAvgLatency, 100*r.ULIMeshMaxUtil)
		}
	}
	return nil
}

// EnergyReport compares the energy proxy across configurations (the
// paper's "similar energy efficiency" claim).
func (s *Suite) EnergyReport(w io.Writer, appNames []string) error {
	cfgs := []string{"O3x8", "bT/MESI", "bT/HCC-gwb", "bT/HCC-DTS-gwb"}
	model := energy.DefaultModel()
	fmt.Fprintf(w, "Energy proxy (uJ, lower is better; normalized in parens to bT/MESI) (size=%s)\n", s.Size)
	fmt.Fprintf(w, "%-12s", "App")
	for _, c := range cfgs {
		fmt.Fprintf(w, " %22s", c)
	}
	fmt.Fprintln(w)
	var norm = map[string][]float64{}
	for _, app := range appNames {
		mesi, err := s.Run("bT/MESI", app)
		if err != nil {
			return err
		}
		base := model.Estimate(mesi)
		fmt.Fprintf(w, "%-12s", app)
		for _, cfg := range cfgs {
			r, err := s.Run(cfg, app)
			if err != nil {
				return err
			}
			e := model.Estimate(r)
			fmt.Fprintf(w, " %14.1f (%4.2f)", e, e/base)
			norm[cfg] = append(norm[cfg], e/base)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "geomean")
	for _, cfg := range cfgs {
		fmt.Fprintf(w, " %14s (%4.2f)", "", geomean(norm[cfg]))
	}
	fmt.Fprintln(w)
	return nil
}
