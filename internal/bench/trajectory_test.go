package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bigtiny/internal/atomicio"
)

func trajReport(ns float64) *HostBenchReport {
	return &HostBenchReport{
		Date:      "2026-08-08",
		GoVersion: "go-test",
		HostCPUs:  8,
		Size:      "test",
		Kernel:    KernelBench{Events: 100, NsPerEvent: ns, EventsPerSec: 1e9 / ns, AllocsPerEvent: 0.5},
		Table3Serial: SuiteBench{
			WallSec: 1.5, SimCycles: 1000, SimCyclesPerSec: 666, EventsFired: 2000,
			EventsPerSec: 1333, AllocsPerEvent: 0.25,
		},
	}
}

// TestAppendTrajectory grows a fresh trajectory file across two commits
// and checks the series accumulates in order with the expected shape.
func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

	c1 := BenchCommit{ID: "aaa", Message: "first", Timestamp: "2026-08-01T12:00:00Z"}
	if err := AppendTrajectory(path, trajReport(50), c1, t0); err != nil {
		t.Fatal(err)
	}
	c2 := BenchCommit{ID: "bbb", Message: "second", Timestamp: "2026-08-02T12:00:00Z"}
	if err := AppendTrajectory(path, trajReport(40), c2, t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file TrajectoryFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trajectory file is not valid JSON: %v\n%s", err, data)
	}
	series := file.Entries[trajectorySuite]
	if len(series) != 2 {
		t.Fatalf("expected 2 entries, got %d", len(series))
	}
	if series[0].Commit.ID != "aaa" || series[1].Commit.ID != "bbb" {
		t.Fatalf("entries out of order: %q, %q", series[0].Commit.ID, series[1].Commit.ID)
	}
	if series[0].Tool != "go" {
		t.Errorf("tool = %q, want go", series[0].Tool)
	}
	if file.LastUpdate != series[1].Date {
		t.Errorf("lastUpdate %d != newest entry date %d", file.LastUpdate, series[1].Date)
	}
	if len(series[0].Benches) == 0 {
		t.Fatal("entry has no benches")
	}
	found := false
	for _, b := range series[1].Benches {
		if b.Name == "kernel ns/event" {
			found = true
			if b.Value != 40 || b.Unit != "ns/event" {
				t.Errorf("kernel ns/event = %g %s, want 40 ns/event", b.Value, b.Unit)
			}
		}
	}
	if !found {
		t.Error("kernel ns/event series missing")
	}
}

// TestAppendTrajectoryReplacesSameCommit re-measures the same commit:
// the entry must be replaced in place, not duplicated.
func TestAppendTrajectoryReplacesSameCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	c := BenchCommit{ID: "aaa", Message: "same", Timestamp: "2026-08-01T12:00:00Z"}
	if err := AppendTrajectory(path, trajReport(50), c, t0); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrajectory(path, trajReport(45), c, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file TrajectoryFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	series := file.Entries[trajectorySuite]
	if len(series) != 1 {
		t.Fatalf("expected 1 entry after re-measuring the same commit, got %d", len(series))
	}
	if got := series[0].Benches[0].Value; got != 45 {
		t.Errorf("entry not replaced: kernel ns/event = %g, want 45", got)
	}
}

// TestAppendTrajectoryRejectsGarbage refuses to clobber a file that is
// not a trajectory file.
func TestAppendTrajectoryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := BenchCommit{ID: "aaa"}
	if err := AppendTrajectory(path, trajReport(50), c, time.Now()); err == nil {
		t.Fatal("expected an error appending to a non-JSON file")
	}
}

// TestAppendTrajectoryUnknownCommitNeverDedups: the no-git fallback
// stamps entries "unknown"; replacing on that ID would collapse every
// unattributed run into one entry and silently discard history.
func TestAppendTrajectoryUnknownCommitNeverDedups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for _, id := range []string{"unknown", "unknown", "", ""} {
		if err := AppendTrajectory(path, trajReport(50), BenchCommit{ID: id}, t0); err != nil {
			t.Fatal(err)
		}
		t0 = t0.Add(time.Hour)
	}
	file, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(file.Entries[trajectorySuite]); got != 4 {
		t.Fatalf("expected 4 accumulated entries for unattributed commits, got %d", got)
	}
}

// TestAppendTrajectoryReadErrorPropagates: a read failure other than
// not-exist (here: the path is a directory) must be an error, not
// treated as "no file yet" — that would clobber the perf history on
// the next write.
func TestAppendTrajectoryReadErrorPropagates(t *testing.T) {
	dir := t.TempDir() // the "file" is a directory: ReadFile fails with EISDIR
	if err := AppendTrajectory(dir, trajReport(50), BenchCommit{ID: "aaa"}, time.Now()); err == nil {
		t.Fatal("expected a read error appending to a directory path")
	}
	if _, err := LoadTrajectory(dir); err == nil {
		t.Fatal("expected LoadTrajectory to surface the read error")
	}
}

// TestAppendTrajectoryCrashMidWrite injects a crash between writing
// the temp file and renaming it over the trajectory: the previous
// history must still be intact and fully parseable — never truncated,
// never half the new content.
func TestAppendTrajectoryCrashMidWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	if err := AppendTrajectory(path, trajReport(50), BenchCommit{ID: "aaa"}, t0); err != nil {
		t.Fatal(err)
	}

	atomicio.TestHookBeforeRename = func() { panic("simulated crash") }
	defer func() { atomicio.TestHookBeforeRename = nil }()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the injected crash to propagate")
			}
		}()
		_ = AppendTrajectory(path, trajReport(40), BenchCommit{ID: "bbb"}, t0.Add(time.Hour))
	}()
	atomicio.TestHookBeforeRename = nil

	file, err := LoadTrajectory(path)
	if err != nil {
		t.Fatalf("trajectory corrupted by crashed append: %v", err)
	}
	series := file.Entries[trajectorySuite]
	if len(series) != 1 || series[0].Commit.ID != "aaa" {
		t.Fatalf("crashed append altered history: %+v", series)
	}
}

// TestTrajectoryBaseline: the gate's baseline lookup returns the
// newest value of a series and reports which commit recorded it.
func TestTrajectoryBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	benches := func(v float64) []TrajectoryBench {
		return []TrajectoryBench{{Name: "gate:kernel:ns_per_event", Value: v, Unit: "ns/event"}}
	}
	if err := AppendGateBaselines(path, benches(50), BenchCommit{ID: "aaa"}, t0); err != nil {
		t.Fatal(err)
	}
	if err := AppendGateBaselines(path, benches(42), BenchCommit{ID: "bbb"}, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	file, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	v, commit, ok := file.Baseline("gate:kernel:ns_per_event")
	if !ok || v != 42 || commit != "bbb" {
		t.Fatalf("Baseline = %g, %q, %v; want 42, bbb, true", v, commit, ok)
	}
	if _, _, ok := file.Baseline("gate:kernel:nonexistent"); ok {
		t.Fatal("Baseline found a series that was never recorded")
	}
}
