package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
)

func TestParseGates(t *testing.T) {
	src := `
# comment
[[gate]]
kind = "cell"            # trailing comment
config = "bT8/HCC-DTS-gwb"
app = "cilk5-cs"
size = "test"
metric = "sim_cycles"
threshold = 0.05
iterations = 2

[[gate]]
kind = "table3"
size = "test"
apps = ["cilk5-cs", "ligra-bfs"]  # subset
metric = "wall_sec"
threshold = 0.5

[[gate]]
kind = "kernel"
metric = "ns_per_event"
threshold = 0.25
`
	gates, err := ParseGates(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 3 {
		t.Fatalf("parsed %d gates, want 3", len(gates))
	}
	g := gates[0]
	if g.Kind != "cell" || g.Config != "bT8/HCC-DTS-gwb" || g.App != "cilk5-cs" ||
		g.Size != apps.Test || g.Metric != "sim_cycles" || g.Threshold != 0.05 || g.Iterations != 2 {
		t.Fatalf("gate[0] = %+v", g)
	}
	if got := gates[1].Apps; len(got) != 2 || got[0] != "cilk5-cs" || got[1] != "ligra-bfs" {
		t.Fatalf("gate[1].Apps = %v", got)
	}
	if gates[2].Series() != "gate:kernel:ns_per_event" {
		t.Fatalf("kernel series = %q", gates[2].Series())
	}
	if s := gates[0].Series(); s != "gate:cell[test]:bT8/HCC-DTS-gwb:cilk5-cs:g0:sim_cycles" {
		t.Fatalf("cell series = %q", s)
	}
	if s := gates[1].Series(); s != "gate:table3[test,cilk5-cs+ligra-bfs]:wall_sec" {
		t.Fatalf("table3 series = %q", s)
	}
}

// TestParseGatesOpenAndExec pins the open-gate and shard-executor
// grammar: scenario/rate select the DefaultOpenSweep cell, shard_exec
// tags the series so parallel-executor baselines never mix with merged
// ones.
func TestParseGatesOpenAndExec(t *testing.T) {
	src := `
[[gate]]
kind = "open"
config = "bT8/HCC-DTS-gwb"
scenario = "chaos-lossy-all"
rate = 4
size = "test"
metric = "latency_p99"
threshold = 0.05

[[gate]]
kind = "cell"
config = "bT8/HCC-DTS-gwb"
app = "cilk5-cs"
size = "test"
shards = 4
shard_exec = "parallel"
metric = "sim_cycles"
threshold = 0.05
`
	gates, err := ParseGates(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g := gates[0]
	if g.Kind != "open" || g.Scenario != "chaos-lossy-all" || g.Rate != 4 {
		t.Fatalf("open gate = %+v", g)
	}
	if s := g.Series(); s != "gate:open[test]:bT8/HCC-DTS-gwb:chaos-lossy-all:r4:latency_p99" {
		t.Fatalf("open series = %q", s)
	}
	if gates[1].ShardExec != sim.ExecParallel {
		t.Fatalf("exec gate = %+v", gates[1])
	}
	if s := gates[1].Series(); s != "gate:cell[test,k4,par]:bT8/HCC-DTS-gwb:cilk5-cs:g0:sim_cycles" {
		t.Fatalf("parallel cell series = %q", s)
	}
}

// TestParseGatesRejects: a typo must not silently un-gate a series.
func TestParseGatesRejects(t *testing.T) {
	cases := map[string]string{
		"unknown key":     "[[gate]]\nkind = \"kernel\"\nmetric = \"ns_per_event\"\nthreshold = 0.1\ntreshold = 0.1\n",
		"unknown kind":    "[[gate]]\nkind = \"kernle\"\nmetric = \"ns_per_event\"\nthreshold = 0.1\n",
		"unknown metric":  "[[gate]]\nkind = \"kernel\"\nmetric = \"nsec\"\nthreshold = 0.1\n",
		"zero threshold":  "[[gate]]\nkind = \"kernel\"\nmetric = \"ns_per_event\"\n",
		"unknown config":  "[[gate]]\nkind = \"cell\"\nconfig = \"bT/NOPE\"\napp = \"cilk5-cs\"\nmetric = \"sim_cycles\"\nthreshold = 0.1\n",
		"unknown app":     "[[gate]]\nkind = \"cell\"\nconfig = \"bT8/MESI\"\napp = \"nope\"\nmetric = \"sim_cycles\"\nthreshold = 0.1\n",
		"key outside":     "kind = \"kernel\"\n",
		"no gates":        "# empty\n",
		"unquoted string": "[[gate]]\nkind = kernel\nmetric = \"ns_per_event\"\nthreshold = 0.1\n",
		"bad exec mode":   "[[gate]]\nkind = \"cell\"\nconfig = \"bT8/MESI\"\napp = \"cilk5-cs\"\nshards = 4\nshard_exec = \"turbo\"\nmetric = \"sim_cycles\"\nthreshold = 0.1\n",
		"parallel serial": "[[gate]]\nkind = \"cell\"\nconfig = \"bT8/MESI\"\napp = \"cilk5-cs\"\nshard_exec = \"parallel\"\nmetric = \"sim_cycles\"\nthreshold = 0.1\n",
		"open no rate":    "[[gate]]\nkind = \"open\"\nconfig = \"bT8/MESI\"\nmetric = \"latency_p99\"\nthreshold = 0.1\n",
		"open bad fault":  "[[gate]]\nkind = \"open\"\nconfig = \"bT8/MESI\"\nscenario = \"nope\"\nrate = 4\nmetric = \"latency_p99\"\nthreshold = 0.1\n",
		"open bad config": "[[gate]]\nkind = \"open\"\nconfig = \"bT/NOPE\"\nrate = 4\nmetric = \"latency_p99\"\nthreshold = 0.1\n",
	}
	for name, src := range cases {
		if _, err := ParseGates(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected a parse/validate error", name)
		}
	}
}

// checkGates is the deterministic worklist the end-to-end tests gate:
// simulated cycles of one tiny cell are bit-identical run to run.
func checkGates() []Gate {
	return []Gate{{
		Kind: "cell", Config: "bT8/HCC-DTS-gwb", App: "cilk5-cs",
		Size: apps.Test, Metric: "sim_cycles", Threshold: 0.05, Iterations: 2,
	}}
}

// TestBenchCheckLifecycle walks the full gate lifecycle on a temp
// trajectory: no baseline yet (reported, not failed) → bless → five
// repeated checks on an unchanged tree all pass with verdict ok →
// check-json round-trips.
func TestBenchCheckLifecycle(t *testing.T) {
	history := filepath.Join(t.TempDir(), "BENCH.json")
	commit := BenchCommit{ID: "c1", Message: "m"}

	var out bytes.Buffer
	rep, err := BenchCheck(&out, checkGates(), history, CheckOptions{Commit: commit})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoBaseline != 1 || rep.Failed() {
		t.Fatalf("fresh trajectory: %+v", rep)
	}

	if _, err := BenchCheck(&out, checkGates(), history, CheckOptions{Commit: commit, UpdateBaseline: true}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		out.Reset()
		rep, err := BenchCheck(&out, checkGates(), history, CheckOptions{Commit: commit})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() || rep.OK != 1 {
			t.Fatalf("unchanged tree, run %d: %+v\n%s", i, rep, out.String())
		}
		g := rep.Gates[0]
		if g.Verdict != string(stats.VerdictOK) || g.CILo != g.CIHi || g.Delta != 0 {
			t.Fatalf("unchanged deterministic cell: %+v", g)
		}
	}

	jsonPath := filepath.Join(t.TempDir(), "check.json")
	if err := WriteCheckJSON(jsonPath, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var round CheckReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("check-json is not valid JSON: %v", err)
	}
	if len(round.Gates) != 1 || round.Gates[0].Series != checkGates()[0].Series() {
		t.Fatalf("check-json round-trip: %+v", round)
	}
}

// TestBenchCheckDetectsSlowdown injects a synthetic slowdown through
// the suite's SimHook (each simulation sleeps on the host) and asserts
// the wall-clock gate fails the check — the acceptance path: a slowed
// gated cell must exit non-zero.
func TestBenchCheckDetectsSlowdown(t *testing.T) {
	history := filepath.Join(t.TempDir(), "BENCH.json")
	commit := BenchCommit{ID: "c1"}
	gates := []Gate{{
		Kind: "cell", Config: "bT8/HCC-DTS-gwb", App: "cilk5-cs",
		Size: apps.Test, Metric: "wall_sec", Threshold: 0.5, Iterations: 3,
	}}

	var out bytes.Buffer
	// Bless a clean-tree baseline.
	if _, err := BenchCheck(&out, gates, history, CheckOptions{Commit: commit, UpdateBaseline: true}); err != nil {
		t.Fatal(err)
	}

	// Re-check with every simulation slowed by far more than the
	// threshold: the whole CI lands past baseline*(1+0.5).
	out.Reset()
	rep, err := BenchCheck(&out, gates, history, CheckOptions{
		Commit:  commit,
		SimHook: func(cfg, app string) { time.Sleep(250 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Regressed != 1 {
		t.Fatalf("slowed cell not flagged: %+v\n%s", rep, out.String())
	}
	if got := rep.Gates[0].Verdict; got != string(stats.VerdictRegressed) {
		t.Fatalf("verdict = %s, want regressed", got)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("verdict table does not announce the failure:\n%s", out.String())
	}

	// Blessing the regression clears the gate: the medians become the
	// new baselines, and the same slowed tree now passes.
	out.Reset()
	if _, err := BenchCheck(&out, gates, history, CheckOptions{
		Commit:         commit,
		UpdateBaseline: true,
		SimHook:        func(cfg, app string) { time.Sleep(250 * time.Millisecond) },
	}); err != nil {
		t.Fatal(err)
	}
	rep, err = BenchCheck(&out, gates, history, CheckOptions{
		Commit:  commit,
		SimHook: func(cfg, app string) { time.Sleep(250 * time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("blessed regression still fails: %+v", rep)
	}
}

// TestBenchCheckOpenGateDeterministic: the open-system latency gate
// measures a deterministic number — repeated checks of an unchanged
// tree return the exact same p99, so the gate can never flake — and the
// parallel-executor cell gate is the byte-identity promise in gate
// form: its sim_cycles baseline holds no matter which executor blessed
// it.
func TestBenchCheckOpenGateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	history := filepath.Join(t.TempDir(), "BENCH.json")
	commit := BenchCommit{ID: "c1"}
	gates := []Gate{
		{
			Kind: "open", Config: "bT8/HCC-DTS-gwb", Scenario: "chaos-lossy-all",
			Rate: 4, Size: apps.Empty, Metric: "latency_p99", Threshold: 0.05, Iterations: 2,
		},
		{
			Kind: "cell", Config: "bT8/HCC-DTS-gwb", App: "cilk5-cs", Size: apps.Empty,
			Shards: 4, ShardExec: sim.ExecParallel,
			Metric: "sim_cycles", Threshold: 0.05, Iterations: 2,
		},
	}
	var out bytes.Buffer
	if _, err := BenchCheck(&out, gates, history, CheckOptions{Commit: commit, UpdateBaseline: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := BenchCheck(&out, gates, history, CheckOptions{Commit: commit})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.OK != 2 {
		t.Fatalf("unchanged tree: %+v\n%s", rep, out.String())
	}
	for _, g := range rep.Gates {
		if g.CILo != g.CIHi || g.Delta != 0 {
			t.Fatalf("gated series %s is not deterministic: %+v", g.Series, g)
		}
	}
}

// TestBenchCheckRejectsDuplicateSeries: two gates resolving to one
// series would make the verdict table ambiguous.
func TestBenchCheckRejectsDuplicateSeries(t *testing.T) {
	history := filepath.Join(t.TempDir(), "BENCH.json")
	gates := append(checkGates(), checkGates()...)
	if _, err := BenchCheck(&bytes.Buffer{}, gates, history, CheckOptions{}); err == nil {
		t.Fatal("expected an error for duplicate gate series")
	}
}

// TestBenchCheckBrokenCellPropagates: a gate on a simulation that dies
// (injected panic) is an operational error, not a silent pass.
func TestBenchCheckBrokenCellPropagates(t *testing.T) {
	history := filepath.Join(t.TempDir(), "BENCH.json")
	_, err := BenchCheck(&bytes.Buffer{}, checkGates(), history, CheckOptions{
		SimHook: func(cfg, app string) { panic("injected") },
	})
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("expected the injected panic to surface, got %v", err)
	}
}
