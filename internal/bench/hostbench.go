package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/atomicio"
	"bigtiny/internal/sim"
)

// This file is the host-performance measurement rig behind `paperbench
// bench` (and `make bench`). It measures how fast the simulator runs
// on the host — simulated cycles per host second, kernel events per
// second, host allocations per event — and writes the numbers to a
// BENCH_*.json file so the repo carries a perf trajectory from PR to
// PR. Simulated results are bit-identical no matter how fast the host
// path is; this rig only watches the host side.

// KernelBench is the kernel microbenchmark: a single proc scheduling
// and firing events through a ~1k-deep queue (the BenchmarkSchedule
// shape from internal/sim, run without the testing harness so
// paperbench can embed it).
type KernelBench struct {
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// SuiteBench is the end-to-end measurement: the full table3 simulation
// worklist run serially (the -j1 paperbench table3 workload), on a
// serial or shard-decomposed event kernel. SimCycles is identical at
// any shard count — only the host-side numbers may move.
type SuiteBench struct {
	Shards int `json:"shards,omitempty"`
	// ShardExec records the shard executor the pass ran ("parallel" for
	// the epoch-parallel worker pool; empty for merged/serial). On a
	// single-core host the parallel numbers measure executor overhead,
	// not speedup — the point of carrying them is exactly that honesty.
	ShardExec       string  `json:"shard_exec,omitempty"`
	WallSec         float64 `json:"wall_sec"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	EventsFired     uint64  `json:"events_fired"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FastWaits       uint64  `json:"fast_waits"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	// Shard-decomposition accounting (sharded runs only). The average
	// concurrency is the mean number of distinct shards firing per
	// lookahead epoch — the ceiling an epoch-parallel executor could
	// extract from this worklist.
	CrossShardPosts  uint64  `json:"cross_shard_posts,omitempty"`
	ShardViolations  uint64  `json:"shard_violations,omitempty"`
	AvgConcurrency   float64 `json:"avg_shard_concurrency,omitempty"`
	WallVsSerial     float64 `json:"wall_speedup_vs_serial,omitempty"`
	// Parallel-executor accounting (ShardExec == "parallel" only): token
	// handoffs into the worker pool, callbacks run inline on the worker
	// already holding the token, cross-shard posts deferred through
	// outboxes, and epoch-barrier flushes.
	ExecHandoffs uint64 `json:"exec_handoffs,omitempty"`
	ExecInline   uint64 `json:"exec_inline,omitempty"`
	ExecOutboxed uint64 `json:"exec_outboxed,omitempty"`
	ExecFlushes  uint64 `json:"exec_flushes,omitempty"`
}

// HostBenchReport is one measurement of the current binary.
type HostBenchReport struct {
	Date         string     `json:"date"`
	GoVersion    string     `json:"go_version"`
	HostCPUs     int        `json:"host_cpus"`
	Size         string     `json:"size"`
	Kernel       KernelBench `json:"kernel"`
	Table3Serial SuiteBench  `json:"table3_serial"`
	// Table3Sharded re-measures the same worklist on a K-way sharded
	// kernel, one entry per swept K (DefaultShardSweep unless the caller
	// chose otherwise). SimCycles must equal the serial run's.
	Table3Sharded []SuiteBench `json:"table3_sharded,omitempty"`
}

// DefaultShardSweep is the shard counts `paperbench bench` measures the
// table3 worklist at, alongside the serial pass.
var DefaultShardSweep = []int{2, 4, 8}

// BenchFile is the on-disk BENCH_*.json format: the baseline
// measurement taken before a perf PR, the measurement after it, and
// the derived ratios. `paperbench bench` preserves an existing
// "before" section and rewrites "after", so re-running `make bench`
// refreshes the current numbers without losing the baseline.
type BenchFile struct {
	Before *HostBenchReport `json:"before,omitempty"`
	After  *HostBenchReport `json:"after"`
	// Speedup ratios (before/after wall, before/after allocs-per-event),
	// present when both sections are.
	Table3WallSpeedup    float64 `json:"table3_wall_speedup,omitempty"`
	KernelAllocsPerEventRatio float64 `json:"kernel_allocs_per_event_ratio,omitempty"`
}

// benchKernel runs the kernel microbenchmark: n schedule+fire pairs
// against a queue pre-filled to depth, measuring wall time and host
// allocations around the run.
func benchKernel(n int) KernelBench {
	k := sim.NewKernel()
	const depth = 1024
	fn := func() {}
	for i := 0; i < depth; i++ {
		k.At(sim.Time(i+1), fn)
	}
	fired := 0
	cb := func() { fired++ }
	k.NewProc("driver", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			k.At(k.Now()+depth, cb)
			p.Delay(1)
		}
	})
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if err := k.Run(nil); err != nil {
		panic(err) // a broken microbenchmark is a simulator bug
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	events := k.Fired()
	return KernelBench{
		Events:         events,
		NsPerEvent:     float64(wall.Nanoseconds()) / float64(events),
		EventsPerSec:   float64(events) / wall.Seconds(),
		AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(events),
	}
}

// benchSuite runs the table3 simulation worklist strictly serially
// (the `paperbench -j 1 table3` workload) on a fresh suite, with the
// event kernel split into shards conservative-lookahead shards (<= 1
// serial) under the given shard executor, and measures host
// throughput. Simulated results are the usual bit-identical ones at
// any shard count and either executor; only wall time and allocation
// counts vary by host. hook is the suite's SimHook (test injection;
// nil outside the gate tests), and a fresh suite per call means
// repeated iterations re-simulate instead of reading a warm cache.
func benchSuite(size apps.Size, names []string, shards int, exec sim.ExecMode, hook func(cfgName, appName string), progress io.Writer) (SuiteBench, error) {
	s := NewSuite(size)
	s.Progress = progress
	s.SimHook = hook
	s.Shards = shards
	s.ShardExec = exec
	work := s.Table3Work(names)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	var simCycles uint64
	seen := make(map[string]bool, len(work))
	for _, w := range work {
		if k := w.key(); seen[k] {
			continue
		} else {
			seen[k] = true
		}
		sub := s.at(w.Size, w.Grain)
		if w.View {
			if _, err := sub.View(w.App); err != nil {
				return SuiteBench{}, err
			}
			continue
		}
		r, err := sub.Run(w.Cfg, w.App)
		if err != nil {
			return SuiteBench{}, err
		}
		simCycles += uint64(r.Cycles)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	_, fired, fastWaits := s.HostCounters()
	b := SuiteBench{
		WallSec:     wall.Seconds(),
		SimCycles:   simCycles,
		EventsFired: fired,
		FastWaits:   fastWaits,
	}
	if shards > 1 {
		o := s.ShardObs()
		b.Shards = shards
		b.CrossShardPosts = o.CrossPosts
		b.ShardViolations = o.Violations
		b.AvgConcurrency = o.AvgConcurrency()
		if exec == sim.ExecParallel {
			eo := s.ExecObs()
			b.ShardExec = exec.String()
			b.ExecHandoffs = eo.Handoffs
			b.ExecInline = eo.Inline
			b.ExecOutboxed = eo.Outboxed
			b.ExecFlushes = eo.Flushes
		}
	}
	if secs := wall.Seconds(); secs > 0 {
		b.SimCyclesPerSec = float64(simCycles) / secs
		b.EventsPerSec = float64(fired) / secs
	}
	if fired > 0 {
		b.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(fired)
	}
	return b, nil
}

// cellSample is one iteration's measurement of a single gated
// (config, app, size, grain) cell.
type cellSample struct {
	WallSec   float64
	SimCycles uint64
}

// benchCell measures one simulation of app on cfg at size/grain. Each
// call builds a fresh suite, so repeated iterations genuinely
// re-simulate — the gate's variance estimate would be meaningless over
// cache hits. Simulated cycles are deterministic; only the wall time
// varies by host.
func benchCell(size apps.Size, grain, shards int, exec sim.ExecMode, cfg, app string, hook func(cfgName, appName string), progress io.Writer) (cellSample, error) {
	s := NewSuite(size)
	s.Grain = grain
	s.Progress = progress
	s.SimHook = hook
	s.Shards = shards
	s.ShardExec = exec
	t0 := time.Now()
	r, err := s.Run(cfg, app)
	if err != nil {
		return cellSample{}, err
	}
	return cellSample{WallSec: time.Since(t0).Seconds(), SimCycles: uint64(r.Cycles)}, nil
}

// mergeBenchFile folds a fresh measurement into the BENCH file at
// outPath: an existing "before" baseline section is preserved, "after"
// and the derived ratios are rewritten, and the write is atomic so a
// crash cannot leave a truncated file. A read failure other than
// not-exist is an error — silently treating, say, a transient
// permission failure as "no file yet" would discard the baseline on
// the next write.
func mergeBenchFile(outPath string, rep *HostBenchReport) (*BenchFile, error) {
	var file BenchFile
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("bench: existing %s is not a BENCH file: %w", outPath, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("bench: reading %s: %w", outPath, err)
	}
	file.After = rep
	file.Table3WallSpeedup = 0
	file.KernelAllocsPerEventRatio = 0
	if file.Before != nil {
		if rep.Table3Serial.WallSec > 0 {
			file.Table3WallSpeedup = file.Before.Table3Serial.WallSec / rep.Table3Serial.WallSec
		}
		// Floor the denominator: an (effectively) allocation-free kernel
		// would make the ratio infinite, which JSON cannot carry.
		denom := rep.Kernel.AllocsPerEvent
		if denom < 1e-3 {
			denom = 1e-3
		}
		file.KernelAllocsPerEventRatio = file.Before.Kernel.AllocsPerEvent / denom
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return &file, nil
}

// hostSeriesLowerIsBetter gives the improvement direction of each
// static host-throughput trajectory series (trajectoryBenches names);
// hostSeriesLower resolves the per-shard-count series too.
var hostSeriesLowerIsBetter = map[string]bool{
	"kernel ns/event":       true,
	"kernel allocs/event":   true,
	"table3 serial wall":    true,
	"table3 sim-cycles/sec": false,
	"table3 events/sec":     false,
	"table3 allocs/event":   true,
}

// hostSeriesLower resolves a trajectory series' improvement direction,
// including the dynamic per-shard-count names ("table3 k4 wall",
// "table3 k4 sim-cycles/sec").
func hostSeriesLower(name string) bool {
	if lower, ok := hostSeriesLowerIsBetter[name]; ok {
		return lower
	}
	return strings.HasSuffix(name, " wall")
}

// benchHintThreshold is the relative slip past which `paperbench
// bench` warns that bench-check would likely flag the measurement.
const benchHintThreshold = 0.10

// benchHint compares a fresh report against the newest host-throughput
// trajectory entry and returns a one-line heads-up naming every series
// that slipped more than benchHintThreshold in its worse direction
// ("" when none did). It is a point comparison — only the full
// bench-check gate re-measures with confidence intervals — so it is
// worded as a hint, not a verdict.
func benchHint(traj *TrajectoryFile, rep *HostBenchReport) string {
	entries := traj.Entries[trajectorySuite]
	if len(entries) == 0 {
		return ""
	}
	prev := map[string]float64{}
	for _, b := range entries[len(entries)-1].Benches {
		prev[b.Name] = b.Value
	}
	var slipped []string
	for _, b := range trajectoryBenches(rep) {
		base, ok := prev[b.Name]
		if !ok || base <= 0 {
			continue
		}
		delta := (b.Value - base) / base
		if !hostSeriesLower(b.Name) {
			delta = -delta
		}
		if delta > benchHintThreshold {
			slipped = append(slipped, fmt.Sprintf("%s %+.1f%%", b.Name, 100*(b.Value-base)/base))
		}
	}
	if len(slipped) == 0 {
		return ""
	}
	return fmt.Sprintf("hint: %s worsened >%.0f%% vs the last trajectory entry — a gated run may fail; see `paperbench bench-check`\n",
		strings.Join(slipped, ", "), 100*benchHintThreshold)
}

// HostBench measures the current binary (kernel microbenchmark plus
// the serial table3 workload at size, then the same worklist at each
// shard count in shardSweep — nil skips the sweep), merges the result
// into the BENCH file at outPath — preserving any existing "before"
// baseline — and prints a summary to w. When historyPath is non-empty
// the same measurement is also appended as a per-commit entry to the
// cumulative trajectory file there (see AppendTrajectory), after a
// one-line hint if the new numbers slipped enough that the regression
// gate would likely flag them.
func HostBench(w io.Writer, size apps.Size, names []string, shardSweep []int, outPath, historyPath string, commit BenchCommit, progress io.Writer) error {
	rep := &HostBenchReport{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		HostCPUs:  runtime.NumCPU(),
		Size:      size.String(),
	}
	rep.Kernel = benchKernel(2_000_000)
	var err error
	rep.Table3Serial, err = benchSuite(size, names, 1, sim.ExecMerged, nil, progress)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	// Sweep each shard count through both executors: the merged
	// single-token loop, then the epoch-parallel worker pool. On a
	// single-core host the parallel column measures pure executor
	// overhead — the honest number the trajectory exists to carry.
	for _, exec := range []sim.ExecMode{sim.ExecMerged, sim.ExecParallel} {
		for _, k := range shardSweep {
			if k <= 1 {
				continue
			}
			b, err := benchSuite(size, names, k, exec, nil, progress)
			if err != nil {
				return fmt.Errorf("bench: shards=%d exec=%v: %w", k, exec, err)
			}
			// The decomposition promise, enforced at measurement time: a
			// sharded pass that drifts from the serial simulation (or posts
			// an event inside the lookahead window) is a simulator bug, not
			// a perf data point.
			if b.SimCycles != rep.Table3Serial.SimCycles {
				return fmt.Errorf("bench: shards=%d exec=%v simulated %d cycles, serial %d — sharding changed the simulation",
					k, exec, b.SimCycles, rep.Table3Serial.SimCycles)
			}
			if b.ShardViolations != 0 {
				return fmt.Errorf("bench: shards=%d exec=%v: %d lookahead violations", k, exec, b.ShardViolations)
			}
			if b.WallSec > 0 {
				b.WallVsSerial = rep.Table3Serial.WallSec / b.WallSec
			}
			rep.Table3Sharded = append(rep.Table3Sharded, b)
		}
	}

	file, err := mergeBenchFile(outPath, rep)
	if err != nil {
		return err
	}
	if historyPath != "" {
		traj, err := LoadTrajectory(historyPath)
		if err != nil {
			return err
		}
		if hint := benchHint(traj, rep); hint != "" {
			fmt.Fprint(w, hint)
		}
		if err := AppendTrajectory(historyPath, rep, commit, time.Now()); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "kernel:  %.0f events/s, %.1f ns/event, %.3f allocs/event\n",
		rep.Kernel.EventsPerSec, rep.Kernel.NsPerEvent, rep.Kernel.AllocsPerEvent)
	fmt.Fprintf(w, "table3 (serial, size=%s): %.1fs wall, %.2fM sim-cycles/s, %.2fM events/s, %.3f allocs/event\n",
		size, rep.Table3Serial.WallSec,
		rep.Table3Serial.SimCyclesPerSec/1e6, rep.Table3Serial.EventsPerSec/1e6,
		rep.Table3Serial.AllocsPerEvent)
	for _, b := range rep.Table3Sharded {
		tag := ""
		if b.ShardExec != "" {
			tag = ", exec=" + b.ShardExec
		}
		fmt.Fprintf(w, "table3 (shards=%d%s): %.1fs wall (%.2fx vs serial), %.2fM sim-cycles/s, avg shard concurrency %.2f\n",
			b.Shards, tag, b.WallSec, b.WallVsSerial, b.SimCyclesPerSec/1e6, b.AvgConcurrency)
	}
	if file.Before != nil {
		fmt.Fprintf(w, "vs baseline: %.2fx table3 wall, %.1fx fewer kernel allocs/event\n",
			file.Table3WallSpeedup, file.KernelAllocsPerEventRatio)
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	if historyPath != "" {
		fmt.Fprintf(w, "appended trajectory entry to %s\n", historyPath)
	}
	return nil
}
