package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/sim"
)

// This file is the host-performance measurement rig behind `paperbench
// bench` (and `make bench`). It measures how fast the simulator runs
// on the host — simulated cycles per host second, kernel events per
// second, host allocations per event — and writes the numbers to a
// BENCH_*.json file so the repo carries a perf trajectory from PR to
// PR. Simulated results are bit-identical no matter how fast the host
// path is; this rig only watches the host side.

// KernelBench is the kernel microbenchmark: a single proc scheduling
// and firing events through a ~1k-deep queue (the BenchmarkSchedule
// shape from internal/sim, run without the testing harness so
// paperbench can embed it).
type KernelBench struct {
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// SuiteBench is the end-to-end measurement: the full table3 simulation
// worklist run serially (the -j1 paperbench table3 workload).
type SuiteBench struct {
	WallSec         float64 `json:"wall_sec"`
	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	EventsFired     uint64  `json:"events_fired"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FastWaits       uint64  `json:"fast_waits"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
}

// HostBenchReport is one measurement of the current binary.
type HostBenchReport struct {
	Date         string     `json:"date"`
	GoVersion    string     `json:"go_version"`
	HostCPUs     int        `json:"host_cpus"`
	Size         string     `json:"size"`
	Kernel       KernelBench `json:"kernel"`
	Table3Serial SuiteBench  `json:"table3_serial"`
}

// BenchFile is the on-disk BENCH_*.json format: the baseline
// measurement taken before a perf PR, the measurement after it, and
// the derived ratios. `paperbench bench` preserves an existing
// "before" section and rewrites "after", so re-running `make bench`
// refreshes the current numbers without losing the baseline.
type BenchFile struct {
	Before *HostBenchReport `json:"before,omitempty"`
	After  *HostBenchReport `json:"after"`
	// Speedup ratios (before/after wall, before/after allocs-per-event),
	// present when both sections are.
	Table3WallSpeedup    float64 `json:"table3_wall_speedup,omitempty"`
	KernelAllocsPerEventRatio float64 `json:"kernel_allocs_per_event_ratio,omitempty"`
}

// benchKernel runs the kernel microbenchmark: n schedule+fire pairs
// against a queue pre-filled to depth, measuring wall time and host
// allocations around the run.
func benchKernel(n int) KernelBench {
	k := sim.NewKernel()
	const depth = 1024
	fn := func() {}
	for i := 0; i < depth; i++ {
		k.At(sim.Time(i+1), fn)
	}
	fired := 0
	cb := func() { fired++ }
	k.NewProc("driver", 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			k.At(k.Now()+depth, cb)
			p.Delay(1)
		}
	})
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if err := k.Run(nil); err != nil {
		panic(err) // a broken microbenchmark is a simulator bug
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	events := k.Fired()
	return KernelBench{
		Events:         events,
		NsPerEvent:     float64(wall.Nanoseconds()) / float64(events),
		EventsPerSec:   float64(events) / wall.Seconds(),
		AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(events),
	}
}

// benchSuite runs the table3 simulation worklist strictly serially
// (the `paperbench -j 1 table3` workload) on a fresh suite and
// measures host throughput. Simulated results are the usual
// bit-identical ones; only wall time and allocation counts vary by
// host.
func benchSuite(size apps.Size, names []string, progress io.Writer) (SuiteBench, error) {
	s := NewSuite(size)
	s.Progress = progress
	work := s.Table3Work(names)

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	var simCycles uint64
	seen := make(map[string]bool, len(work))
	for _, w := range work {
		if k := w.key(); seen[k] {
			continue
		} else {
			seen[k] = true
		}
		sub := s.at(w.Size, w.Grain)
		if w.View {
			if _, err := sub.View(w.App); err != nil {
				return SuiteBench{}, err
			}
			continue
		}
		r, err := sub.Run(w.Cfg, w.App)
		if err != nil {
			return SuiteBench{}, err
		}
		simCycles += uint64(r.Cycles)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	_, fired, fastWaits := s.HostCounters()
	b := SuiteBench{
		WallSec:     wall.Seconds(),
		SimCycles:   simCycles,
		EventsFired: fired,
		FastWaits:   fastWaits,
	}
	if secs := wall.Seconds(); secs > 0 {
		b.SimCyclesPerSec = float64(simCycles) / secs
		b.EventsPerSec = float64(fired) / secs
	}
	if fired > 0 {
		b.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(fired)
	}
	return b, nil
}

// HostBench measures the current binary (kernel microbenchmark plus
// the serial table3 workload at size), merges the result into the
// BENCH file at outPath — preserving any existing "before" baseline —
// and prints a summary to w. When historyPath is non-empty the same
// measurement is also appended as a per-commit entry to the cumulative
// trajectory file there (see AppendTrajectory).
func HostBench(w io.Writer, size apps.Size, names []string, outPath, historyPath string, commit BenchCommit, progress io.Writer) error {
	rep := &HostBenchReport{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		HostCPUs:  runtime.NumCPU(),
		Size:      size.String(),
	}
	rep.Kernel = benchKernel(2_000_000)
	var err error
	rep.Table3Serial, err = benchSuite(size, names, progress)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	var file BenchFile
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: existing %s is not a BENCH file: %w", outPath, err)
		}
	}
	file.After = rep
	file.Table3WallSpeedup = 0
	file.KernelAllocsPerEventRatio = 0
	if file.Before != nil {
		if rep.Table3Serial.WallSec > 0 {
			file.Table3WallSpeedup = file.Before.Table3Serial.WallSec / rep.Table3Serial.WallSec
		}
		// Floor the denominator: an (effectively) allocation-free kernel
		// would make the ratio infinite, which JSON cannot carry.
		denom := rep.Kernel.AllocsPerEvent
		if denom < 1e-3 {
			denom = 1e-3
		}
		file.KernelAllocsPerEventRatio = file.Before.Kernel.AllocsPerEvent / denom
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if historyPath != "" {
		if err := AppendTrajectory(historyPath, rep, commit, time.Now()); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "kernel:  %.0f events/s, %.1f ns/event, %.3f allocs/event\n",
		rep.Kernel.EventsPerSec, rep.Kernel.NsPerEvent, rep.Kernel.AllocsPerEvent)
	fmt.Fprintf(w, "table3 (serial, size=%s): %.1fs wall, %.2fM sim-cycles/s, %.2fM events/s, %.3f allocs/event\n",
		size, rep.Table3Serial.WallSec,
		rep.Table3Serial.SimCyclesPerSec/1e6, rep.Table3Serial.EventsPerSec/1e6,
		rep.Table3Serial.AllocsPerEvent)
	if file.Before != nil {
		fmt.Fprintf(w, "vs baseline: %.2fx table3 wall, %.1fx fewer kernel allocs/event\n",
			file.Table3WallSpeedup, file.KernelAllocsPerEventRatio)
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	if historyPath != "" {
		fmt.Fprintf(w, "appended trajectory entry to %s\n", historyPath)
	}
	return nil
}
