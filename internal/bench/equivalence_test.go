package bench

import (
	"reflect"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
	"bigtiny/internal/wsrt"
)

// runKernelMode performs one complete simulation with the WaitUntil
// fast path on or off (sim.KernelParanoid is read at NewKernel time,
// inside machine.New) and returns the full metric snapshot.
func runKernelMode(t *testing.T, cfgName, appName string, size apps.Size, paranoid bool) *stats.Run {
	t.Helper()
	prev := sim.KernelParanoid
	sim.KernelParanoid = paranoid
	defer func() { sim.KernelParanoid = prev }()

	cfg, err := machine.Lookup(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cfg)
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	rt.Grain = grainFor(app, 0)
	inst := app.Setup(rt, size, 0)
	root := inst.Root
	if cfgName == "IOx1" {
		root = inst.SerialRoot
	}
	if err := rt.Run(root); err != nil {
		t.Fatalf("%s on %s (paranoid=%v): %v", appName, cfgName, paranoid, err)
	}
	read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
	if err := inst.Verify(read); err != nil {
		t.Fatalf("%s on %s (paranoid=%v): verify: %v", appName, cfgName, paranoid, err)
	}
	return stats.Collect(m, rt, appName)
}

// TestFastPathMatchesParanoid is the kernel fast path's ground truth:
// every app, at the Empty and Unit sizes, on a DTS and a non-DTS
// configuration, must produce bit-identical results with the fast path
// on and off — total cycles, the per-class cycle attribution big and
// tiny, and every other collected statistic (cache, NoC, DRAM, ULI,
// runtime counters). Any divergence means the wait elision changed the
// simulation, not just its host speed.
func TestFastPathMatchesParanoid(t *testing.T) {
	configs := []string{"bT/HCC-DTS-gwb", "bT/HCC-gwt"}
	for _, size := range []apps.Size{apps.Empty, apps.Unit} {
		for _, cfgName := range configs {
			for _, appName := range AppNames() {
				t.Run(size.String()+"/"+cfgName+"/"+appName, func(t *testing.T) {
					fast := runKernelMode(t, cfgName, appName, size, false)
					slow := runKernelMode(t, cfgName, appName, size, true)
					if fast.Cycles != slow.Cycles {
						t.Fatalf("total cycles: fast=%d paranoid=%d", fast.Cycles, slow.Cycles)
					}
					if fast.TinyBreakdown != slow.TinyBreakdown {
						t.Fatalf("tiny breakdown: fast=%v paranoid=%v",
							fast.TinyBreakdown, slow.TinyBreakdown)
					}
					if fast.BigBreakdown != slow.BigBreakdown {
						t.Fatalf("big breakdown: fast=%v paranoid=%v",
							fast.BigBreakdown, slow.BigBreakdown)
					}
					if !reflect.DeepEqual(fast, slow) {
						t.Fatalf("stats diverge:\nfast:     %+v\nparanoid: %+v", fast, slow)
					}
				})
			}
		}
	}
}

// TestFastPathMatchesParanoidTestSize spot-checks one real (Test-size)
// workload per runtime variant, where thousands of waits actually ride
// the fast path, not just the degenerate base cases.
func TestFastPathMatchesParanoidTestSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full Test-size equivalence runs are not short")
	}
	for _, cfgName := range []string{"bT/HCC-DTS-gwb", "bT/MESI", "IOx1"} {
		t.Run(cfgName, func(t *testing.T) {
			fast := runKernelMode(t, cfgName, "cilk5-cs", apps.Test, false)
			slow := runKernelMode(t, cfgName, "cilk5-cs", apps.Test, true)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("stats diverge:\nfast:     %+v\nparanoid: %+v", fast, slow)
			}
		})
	}
}
