package bench

import (
	"testing"

	"bigtiny/internal/fault"
)

// TestChaosScenariosTrackRegistry pins the single-source-of-truth
// contract between the chaos sweep set and the fault registry: every
// sweep entry resolves in the registry (a rename cannot strand a stale
// name), and every registered scenario except the "none" baseline is in
// the sweep (a new scenario cannot be silently left out of chaos runs).
func TestChaosScenariosTrackRegistry(t *testing.T) {
	inSweep := make(map[string]bool, len(ChaosScenarios))
	for _, name := range ChaosScenarios {
		if name == "none" {
			t.Error(`sweep contains "none"; Chaos adds its own per-app baselines`)
		}
		if inSweep[name] {
			t.Errorf("sweep lists %q twice", name)
		}
		inSweep[name] = true
		if _, err := fault.Lookup(name); err != nil {
			t.Errorf("sweep scenario not in the registry: %v", err)
		}
	}
	for _, sc := range fault.Scenarios() {
		if sc.Name != "none" && !inSweep[sc.Name] {
			t.Errorf("registered scenario %q missing from the chaos sweep", sc.Name)
		}
	}
	if want := len(fault.Scenarios()) - 1; len(ChaosScenarios) != want {
		t.Errorf("sweep has %d scenarios, registry has %d non-baseline ones", len(ChaosScenarios), want)
	}
}
