package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMergeBenchFilePreservesBefore: re-running `paperbench bench`
// rewrites "after" and the ratios but keeps the "before" baseline.
func TestMergeBenchFilePreservesBefore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pr.json")
	before := trajReport(50)
	before.Table3Serial.WallSec = 3.0
	seed := BenchFile{Before: before}
	data, err := json.Marshal(&seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	after := trajReport(40)
	after.Table3Serial.WallSec = 1.5
	file, err := mergeBenchFile(path, after)
	if err != nil {
		t.Fatal(err)
	}
	if file.Before == nil || file.Before.Kernel.NsPerEvent != 50 {
		t.Fatalf("before baseline lost: %+v", file.Before)
	}
	if file.After.Kernel.NsPerEvent != 40 {
		t.Fatalf("after not rewritten: %+v", file.After)
	}
	if file.Table3WallSpeedup != 2.0 {
		t.Fatalf("wall speedup = %g, want 2.0", file.Table3WallSpeedup)
	}

	// The merged file on disk must parse back to the same shape.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round BenchFile
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("merged file is not valid JSON: %v", err)
	}
	if round.Before == nil || round.Before.Kernel.NsPerEvent != 50 {
		t.Fatalf("on-disk before baseline lost: %+v", round.Before)
	}
}

// TestMergeBenchFileReadErrorPropagates: a read failure other than
// not-exist (here: the path is a directory) must be an error — the old
// behavior treated every read failure as "no file yet" and would have
// overwritten the baseline.
func TestMergeBenchFileReadErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	if _, err := mergeBenchFile(dir, trajReport(40)); err == nil {
		t.Fatal("expected a read error merging into a directory path")
	}
}

// TestMergeBenchFileRejectsGarbage refuses to clobber a file that is
// not a BENCH file.
func TestMergeBenchFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pr.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeBenchFile(path, trajReport(40)); err == nil {
		t.Fatal("expected an error merging into a non-JSON file")
	}
}

// TestBenchHint: `paperbench bench` warns when a fresh measurement
// slipped past the hint threshold vs the newest trajectory entry, and
// stays quiet when it did not (or improved).
func TestBenchHint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	if err := AppendTrajectory(path, trajReport(50), BenchCommit{ID: "aaa"}, t0); err != nil {
		t.Fatal(err)
	}
	traj, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}

	if hint := benchHint(traj, trajReport(50)); hint != "" {
		t.Fatalf("unchanged measurement produced a hint: %q", hint)
	}
	if hint := benchHint(traj, trajReport(40)); hint != "" {
		t.Fatalf("improved measurement produced a hint: %q", hint)
	}
	slow := trajReport(60) // kernel ns/event +20%, past the 10% hint threshold
	hint := benchHint(traj, slow)
	if hint == "" || !strings.Contains(hint, "kernel ns/event") || !strings.Contains(hint, "bench-check") {
		t.Fatalf("slipped measurement hint = %q", hint)
	}

	empty := &TrajectoryFile{Entries: map[string][]TrajectoryEntry{}}
	if hint := benchHint(empty, slow); hint != "" {
		t.Fatalf("empty trajectory produced a hint: %q", hint)
	}
}
