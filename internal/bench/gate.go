package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"bigtiny/internal/apps"
	"bigtiny/internal/atomicio"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
)

// This file is the regression gate behind `paperbench bench-check`
// (and the `make bench-check` / `bench-check-smoke` ci targets): a
// declarative worklist of perf-gated series — kernel microbenchmark
// metrics, table3 suite metrics, and single (config, app, size) cells
// — each with its own regression threshold. The checker re-measures
// every gated series N times, summarizes with stats.Summary, and
// compares the median's confidence interval against the baseline
// recorded in the BENCH.json trajectory: a regression verdict requires
// the whole interval past the threshold, so noise is reported as
// too-noisy instead of failing ci, and an intentional change is
// blessed by refreshing the baseline with -update-baseline.

// Gate names one perf-gated series.
type Gate struct {
	// Kind selects what is measured: "kernel" (the event-loop
	// microbenchmark), "table3" (the serial table3 worklist), "cell"
	// (one simulation of App on Config), or "open" (one open-system
	// serving cell from the stock DefaultOpenSweep grid).
	Kind string
	// Config and App identify a cell gate's simulation. Config also
	// names the machine of an open gate (App is unused there — the
	// sweep's workload is fixed).
	Config string
	App    string
	// Scenario is an open gate's fault scenario ("" = fault-free); it
	// must name a registered fault scenario.
	Scenario string
	// Rate is an open gate's offered load, requests per 1000 cycles.
	Rate float64
	// Apps restricts a table3 gate's worklist (empty = all 13 apps).
	Apps []string
	// Size is the input size for table3/cell gates.
	Size apps.Size
	// Grain overrides the cell's task granularity (0 = app default).
	Grain int
	// Shards splits the measuring suite's event kernel into
	// conservative-lookahead shards (table3/cell kinds; <= 1 serial).
	// sim_cycles baselines are shared with the serial series by
	// construction — a sharded sim_cycles gate is the byte-identity
	// property as a standing check.
	Shards int
	// ShardExec picks the shard executor for a sharded gate
	// (sim.ExecParallel runs the epoch-parallel worker pool). A
	// deterministic metric gated under the parallel executor is the
	// executor's byte-identity promise as a standing check.
	ShardExec sim.ExecMode
	// Host marks a wall-clock gate whose baseline only holds on the
	// host that blessed it; bench-check skips these unless the caller
	// opts in (paperbench: -host-gates or PAPERBENCH_HOST_GATES=1).
	Host bool
	// Metric names the gated number; see gateMetrics for the per-kind
	// choices. Deterministic metrics (sim_cycles) have host-independent
	// baselines; wall-clock metrics must be blessed per host.
	Metric string
	// Threshold is the allowed relative change in the worse direction
	// (0.05 = 5%) before the gate fails.
	Threshold float64
	// Iterations overrides the checker's default sample count (0 =
	// checker default).
	Iterations int
}

// gateMetricInfo describes one legal (kind, metric) pair.
type gateMetricInfo struct {
	Unit          string
	LowerIsBetter bool
}

// gateMetrics is the (kind, metric) registry. Extraction lives in the
// measurement switches below; this table is the single source for
// validation, units, and improvement direction.
var gateMetrics = map[string]map[string]gateMetricInfo{
	"kernel": {
		"ns_per_event":     {Unit: "ns/event", LowerIsBetter: true},
		"events_per_sec":   {Unit: "events/s", LowerIsBetter: false},
		"allocs_per_event": {Unit: "allocs/event", LowerIsBetter: true},
	},
	"table3": {
		"wall_sec":           {Unit: "s", LowerIsBetter: true},
		"sim_cycles":         {Unit: "cycles", LowerIsBetter: true},
		"sim_cycles_per_sec": {Unit: "cycles/s", LowerIsBetter: false},
		"events_per_sec":     {Unit: "events/s", LowerIsBetter: false},
		"allocs_per_event":   {Unit: "allocs/event", LowerIsBetter: true},
	},
	"cell": {
		"wall_sec":   {Unit: "s", LowerIsBetter: true},
		"sim_cycles": {Unit: "cycles", LowerIsBetter: true},
	},
	"open": {
		"latency_p99": {Unit: "cycles", LowerIsBetter: true},
		"latency_p50": {Unit: "cycles", LowerIsBetter: true},
		"sim_cycles":  {Unit: "cycles", LowerIsBetter: true},
		"wall_sec":    {Unit: "s", LowerIsBetter: true},
	},
}

// Validate checks the gate names a measurable series (kind, metric,
// threshold, and — for cells — a real config and app).
func (g *Gate) Validate() error {
	metrics, ok := gateMetrics[g.Kind]
	if !ok {
		return fmt.Errorf("gate: unknown kind %q (kernel, table3, cell, or open)", g.Kind)
	}
	if _, ok := metrics[g.Metric]; !ok {
		var names []string
		for m := range metrics {
			names = append(names, m)
		}
		return fmt.Errorf("gate: kind %q has no metric %q (have: %s)", g.Kind, g.Metric, strings.Join(names, ", "))
	}
	if g.Threshold <= 0 {
		return fmt.Errorf("gate %s: threshold must be positive, got %g", g.Series(), g.Threshold)
	}
	if g.Iterations < 0 {
		return fmt.Errorf("gate %s: negative iterations", g.Series())
	}
	if g.Shards < 0 {
		return fmt.Errorf("gate %s: negative shards", g.Series())
	}
	if g.Shards > machine.MaxShards {
		return fmt.Errorf("gate %s: %d shards exceeds the %d-shard kernel limit", g.Series(), g.Shards, machine.MaxShards)
	}
	if g.Kind == "kernel" && g.Shards > 1 {
		return fmt.Errorf("gate %s: the kernel microbenchmark has no shard knob", g.Series())
	}
	if g.ShardExec == sim.ExecParallel && g.Shards <= 1 {
		return fmt.Errorf("gate %s: shard_exec = \"parallel\" needs shards > 1", g.Series())
	}
	if g.Kind == "cell" {
		if _, err := machine.Lookup(g.Config); err != nil {
			return fmt.Errorf("gate %s: %w", g.Series(), err)
		}
		if _, err := apps.ByName(g.App); err != nil {
			return fmt.Errorf("gate %s: %w", g.Series(), err)
		}
	}
	if g.Kind == "open" {
		if _, err := machine.Lookup(g.Config); err != nil {
			return fmt.Errorf("gate %s: %w", g.Series(), err)
		}
		if g.Scenario != "" {
			if _, err := fault.Lookup(g.Scenario); err != nil {
				return fmt.Errorf("gate %s: %w", g.Series(), err)
			}
		}
		if g.Rate <= 0 {
			return fmt.Errorf("gate %s: an open gate needs a positive rate (requests per 1000 cycles)", g.Series())
		}
	}
	for _, a := range g.Apps {
		if _, err := apps.ByName(a); err != nil {
			return fmt.Errorf("gate %s: %w", g.Series(), err)
		}
	}
	return nil
}

// Series is the gate's canonical trajectory series name. It encodes
// everything that identifies the measurement, so a baseline can never
// be compared against a differently-shaped re-measurement; renaming a
// series orphans (and effectively resets) its baseline.
func (g *Gate) Series() string {
	// Sharded variants are differently-shaped measurements, so the
	// count joins the name; serial gates keep their pre-shard names, so
	// existing baselines stay attached. The parallel executor likewise
	// tags the name — deterministic metrics would share a baseline by
	// construction, but wall-clock ones must not.
	shard := ""
	if g.Shards > 1 {
		shard = fmt.Sprintf(",k%d", g.Shards)
		if g.ShardExec == sim.ExecParallel {
			shard += ",par"
		}
	}
	switch g.Kind {
	case "kernel":
		return "gate:kernel:" + g.Metric
	case "table3":
		apps := "all"
		if len(g.Apps) > 0 {
			apps = strings.Join(g.Apps, "+")
		}
		return fmt.Sprintf("gate:table3[%s,%s%s]:%s", g.Size, apps, shard, g.Metric)
	case "open":
		scen := g.Scenario
		if scen == "" {
			scen = "none"
		}
		return fmt.Sprintf("gate:open[%s%s]:%s:%s:r%g:%s", g.Size, shard, g.Config, scen, g.Rate, g.Metric)
	default:
		return fmt.Sprintf("gate:cell[%s%s]:%s:%s:g%d:%s", g.Size, shard, g.Config, g.App, g.Grain, g.Metric)
	}
}

// info returns the gate's metric registry entry (Validate first).
func (g *Gate) info() gateMetricInfo { return gateMetrics[g.Kind][g.Metric] }

// ParseGates reads a bent-style TOML worklist of [[gate]] tables (the
// subset below — string, number, and string-array values — is all the
// format uses):
//
//	[[gate]]
//	kind = "cell"            # kernel | table3 | cell
//	config = "bT/HCC-DTS-gwb"
//	app = "cilk5-cs"
//	size = "test"
//	metric = "sim_cycles"    # see gateMetrics for per-kind choices
//	threshold = 0.05
//	iterations = 2           # optional; 0 = checker default
//
// Unknown keys are errors (a typo must not silently un-gate a series).
// Gates can equally be built in Go: the Makefile path goes through
// this parser, tests usually construct []Gate literals directly.
func ParseGates(r io.Reader) ([]Gate, error) {
	var gates []Gate
	var cur *Gate
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if text == "[[gate]]" {
			gates = append(gates, Gate{})
			cur = &gates[len(gates)-1]
			continue
		}
		if strings.HasPrefix(text, "[") {
			return nil, fmt.Errorf("gates: line %d: only [[gate]] tables are allowed, got %s", line, text)
		}
		if cur == nil {
			return nil, fmt.Errorf("gates: line %d: key outside a [[gate]] table", line)
		}
		key, raw, ok := strings.Cut(text, "=")
		if !ok {
			return nil, fmt.Errorf("gates: line %d: expected key = value, got %q", line, text)
		}
		key = strings.TrimSpace(key)
		raw = strings.TrimSpace(raw)
		if err := setGateKey(cur, key, raw); err != nil {
			return nil, fmt.Errorf("gates: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gates: %w", err)
	}
	for i := range gates {
		if err := gates[i].Validate(); err != nil {
			return nil, err
		}
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("gates: no [[gate]] tables found")
	}
	return gates, nil
}

// LoadGates reads a gates worklist file (see ParseGates).
func LoadGates(path string) ([]Gate, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gates: %w", err)
	}
	defer f.Close()
	gates, err := ParseGates(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gates, nil
}

// setGateKey assigns one parsed key = value pair.
func setGateKey(g *Gate, key, raw string) error {
	str := func() (string, error) {
		s, err := tomlString(raw)
		if err != nil {
			return "", fmt.Errorf("key %q: %w", key, err)
		}
		return s, nil
	}
	switch key {
	case "kind":
		v, err := str()
		if err != nil {
			return err
		}
		g.Kind = v
	case "config":
		v, err := str()
		if err != nil {
			return err
		}
		g.Config = v
	case "app":
		v, err := str()
		if err != nil {
			return err
		}
		g.App = v
	case "scenario":
		v, err := str()
		if err != nil {
			return err
		}
		g.Scenario = v
	case "rate":
		v, err := strconv.ParseFloat(stripComment(raw), 64)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Rate = v
	case "shard_exec":
		v, err := str()
		if err != nil {
			return err
		}
		mode, err := sim.ParseExecMode(v)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.ShardExec = mode
	case "metric":
		v, err := str()
		if err != nil {
			return err
		}
		g.Metric = v
	case "size":
		v, err := str()
		if err != nil {
			return err
		}
		sz, err := apps.ParseSize(v)
		if err != nil {
			return err
		}
		g.Size = sz
	case "apps":
		list, err := tomlStringArray(raw)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Apps = list
	case "threshold":
		v, err := strconv.ParseFloat(stripComment(raw), 64)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Threshold = v
	case "grain":
		v, err := strconv.Atoi(stripComment(raw))
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Grain = v
	case "iterations":
		v, err := strconv.Atoi(stripComment(raw))
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Iterations = v
	case "shards":
		v, err := strconv.Atoi(stripComment(raw))
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Shards = v
	case "host":
		v, err := strconv.ParseBool(stripComment(raw))
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		g.Host = v
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// stripComment drops a trailing "# ..." from an unquoted value.
func stripComment(raw string) string {
	if i := strings.Index(raw, "#"); i >= 0 {
		raw = raw[:i]
	}
	return strings.TrimSpace(raw)
}

// tomlString parses a double-quoted string (no escapes — none of the
// values this format carries need them).
func tomlString(raw string) (string, error) {
	if len(raw) < 2 || raw[0] != '"' {
		return "", fmt.Errorf("expected a quoted string, got %q", raw)
	}
	end := strings.Index(raw[1:], `"`)
	if end < 0 {
		return "", fmt.Errorf("unterminated string %q", raw)
	}
	rest := strings.TrimSpace(raw[end+2:])
	if rest != "" && !strings.HasPrefix(rest, "#") {
		return "", fmt.Errorf("trailing garbage after string: %q", raw)
	}
	return raw[1 : end+1], nil
}

// tomlStringArray parses ["a", "b"]; a bare quoted string is accepted
// as a one-element list.
func tomlStringArray(raw string) ([]string, error) {
	raw = stripTrailingArrayComment(raw)
	if strings.HasPrefix(raw, `"`) {
		s, err := tomlString(raw)
		if err != nil {
			return nil, err
		}
		return []string{s}, nil
	}
	if !strings.HasPrefix(raw, "[") || !strings.HasSuffix(raw, "]") {
		return nil, fmt.Errorf("expected an array of strings, got %q", raw)
	}
	inner := strings.TrimSpace(raw[1 : len(raw)-1])
	if inner == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(inner, ",") {
		s, err := tomlString(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// stripTrailingArrayComment drops a "# ..." that follows the closing
// bracket (comments cannot appear inside the single-line array).
func stripTrailingArrayComment(raw string) string {
	if i := strings.Index(raw, "]"); i >= 0 {
		return strings.TrimSpace(raw[:i+1])
	}
	return strings.TrimSpace(raw)
}

// checkKernelEvents is the kernel microbenchmark length per check
// iteration — shorter than `paperbench bench`'s 2M because the checker
// runs several iterations.
const checkKernelEvents = 1_000_000

// DefaultCheckIterations is the sample count per gated series when
// neither the gate nor the caller overrides it.
const DefaultCheckIterations = 5

// DefaultCheckConfidence is the median-CI confidence the verdicts use.
const DefaultCheckConfidence = 0.95

// VerdictNoBaseline marks a gated series with no trajectory baseline
// yet; it never fails the check (bless one with -update-baseline).
const VerdictNoBaseline = "no-baseline"

// CheckOptions configure BenchCheck. The zero value means: default
// iterations and confidence, no baseline update, no injection.
type CheckOptions struct {
	// Iterations is the default per-gate sample count (0 =
	// DefaultCheckIterations); a gate's own Iterations wins.
	Iterations int
	// Confidence for the median CI (0 = DefaultCheckConfidence).
	Confidence float64
	// UpdateBaseline blesses the fresh medians into the trajectory
	// after the check (verdicts still report against the old baseline,
	// so the run shows exactly what changed).
	UpdateBaseline bool
	// IncludeHost also measures gates marked host = true (wall-clock
	// series whose baselines only hold on the host that blessed them).
	// Off by default so the checked set stays host-portable in ci.
	IncludeHost bool
	// Commit stamps blessed baselines.
	Commit BenchCommit
	// Progress, if non-nil, receives per-iteration progress lines.
	Progress io.Writer
	// SimHook is forwarded to every measuring suite (test injection;
	// see Suite.SimHook). Leave nil outside tests.
	SimHook func(cfgName, appName string)
}

// GateResult is one gated series' verdict.
type GateResult struct {
	Series         string  `json:"series"`
	Unit           string  `json:"unit"`
	LowerIsBetter  bool    `json:"lower_is_better"`
	Threshold      float64 `json:"threshold"`
	Iterations     int     `json:"iterations"`
	Baseline       float64 `json:"baseline,omitempty"`
	BaselineCommit string  `json:"baseline_commit,omitempty"`
	Median         float64 `json:"median"`
	Min            float64 `json:"min"`
	Max            float64 `json:"max"`
	CILo           float64 `json:"ci_lo"`
	CIHi           float64 `json:"ci_hi"`
	CICoverage     float64 `json:"ci_coverage"`
	Delta          float64 `json:"delta"` // (median-baseline)/baseline; 0 without a baseline
	Verdict        string  `json:"verdict"`
}

// CheckReport is the machine-readable bench-check outcome (-check-json).
type CheckReport struct {
	Date             string       `json:"date"`
	Commit           BenchCommit  `json:"commit"`
	Iterations       int          `json:"default_iterations"`
	Confidence       float64      `json:"confidence"`
	Gates            []GateResult `json:"gates"`
	OK               int          `json:"ok"`
	Regressed        int          `json:"regressed"`
	Improved         int          `json:"improved"`
	TooNoisy         int          `json:"too_noisy"`
	NoBaseline       int          `json:"no_baseline"`
	HostSkipped      int          `json:"host_skipped,omitempty"`
	BaselinesUpdated bool         `json:"baselines_updated"`
}

// Failed reports whether the check must fail ci: only a significant
// regression does — too-noisy and missing baselines are reported but
// never fail, so the gate cannot flake on a loaded host.
func (r *CheckReport) Failed() bool { return r.Regressed > 0 }

// measureGate collects one sample of every metric the gate's kind
// exposes, then returns the gated one.
func measureGate(g *Gate, hook func(string, string), progress io.Writer) (float64, error) {
	switch g.Kind {
	case "kernel":
		k := benchKernel(checkKernelEvents)
		switch g.Metric {
		case "ns_per_event":
			return k.NsPerEvent, nil
		case "events_per_sec":
			return k.EventsPerSec, nil
		default:
			return k.AllocsPerEvent, nil
		}
	case "table3":
		names := g.Apps
		if len(names) == 0 {
			names = AppNames()
		}
		b, err := benchSuite(g.Size, names, g.Shards, g.ShardExec, hook, progress)
		if err != nil {
			return 0, err
		}
		switch g.Metric {
		case "wall_sec":
			return b.WallSec, nil
		case "sim_cycles":
			return float64(b.SimCycles), nil
		case "sim_cycles_per_sec":
			return b.SimCyclesPerSec, nil
		case "events_per_sec":
			return b.EventsPerSec, nil
		default:
			return b.AllocsPerEvent, nil
		}
	case "open":
		// One stock DefaultOpenSweep cell: the same workload, arrival
		// process, request count, and seeds `paperbench open` renders, so
		// the gated latency is a number the experiment tables already
		// carry. A fresh suite per sample keeps iterations honest (the
		// open-cell cache would otherwise return the first measurement).
		sw := DefaultOpenSweep(g.Size)
		s := NewSuite(g.Size)
		s.SimHook = hook
		s.Progress = progress
		s.Shards = g.Shards
		s.ShardExec = g.ShardExec
		t0 := time.Now()
		r, err := s.OpenRun(g.Config, g.Scenario, sw.FaultSeed, sw.spec(g.Rate))
		if err != nil {
			return 0, err
		}
		wall := time.Since(t0).Seconds()
		switch g.Metric {
		case "latency_p99":
			return float64(r.Latency.P99()), nil
		case "latency_p50":
			return float64(r.Latency.P50()), nil
		case "sim_cycles":
			return float64(r.Cycles), nil
		default:
			return wall, nil
		}
	default: // cell
		c, err := benchCell(g.Size, g.Grain, g.Shards, g.ShardExec, g.Config, g.App, hook, progress)
		if err != nil {
			return 0, err
		}
		if g.Metric == "wall_sec" {
			return c.WallSec, nil
		}
		return float64(c.SimCycles), nil
	}
}

// BenchCheck re-measures every gated series, renders the verdict table
// to w, and — with opts.UpdateBaseline — blesses the fresh medians
// into the trajectory at historyPath. The returned report's Failed()
// decides the exit code; the error is for operational failures only
// (invalid gate, broken simulation, unreadable trajectory).
func BenchCheck(w io.Writer, gates []Gate, historyPath string, opts CheckOptions) (*CheckReport, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = DefaultCheckIterations
	}
	if opts.Confidence <= 0 {
		opts.Confidence = DefaultCheckConfidence
	}
	traj, err := LoadTrajectory(historyPath)
	if err != nil {
		return nil, err
	}
	rep := &CheckReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Commit:     opts.Commit,
		Iterations: opts.Iterations,
		Confidence: opts.Confidence,
	}
	seen := map[string]bool{}
	var blessed []TrajectoryBench
	for i := range gates {
		g := &gates[i]
		if err := g.Validate(); err != nil {
			return nil, err
		}
		series := g.Series()
		if seen[series] {
			return nil, fmt.Errorf("gate %s declared twice", series)
		}
		seen[series] = true
		if g.Host && !opts.IncludeHost {
			rep.HostSkipped++
			continue
		}

		iters := g.Iterations
		if iters <= 0 {
			iters = opts.Iterations
		}
		samples := make([]float64, 0, iters)
		for it := 0; it < iters; it++ {
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "bench-check: %s: iteration %d/%d\n", series, it+1, iters)
			}
			v, err := measureGate(g, opts.SimHook, nil)
			if err != nil {
				return nil, fmt.Errorf("bench-check: %s: %w", series, err)
			}
			samples = append(samples, v)
		}
		sum := stats.NewSummary(samples)
		info := g.info()
		lo, hi, cover := sum.MedianCI(opts.Confidence)
		res := GateResult{
			Series:        series,
			Unit:          info.Unit,
			LowerIsBetter: info.LowerIsBetter,
			Threshold:     g.Threshold,
			Iterations:    iters,
			Median:        sum.Median(),
			Min:           sum.Min(),
			Max:           sum.Max(),
			CILo:          lo,
			CIHi:          hi,
			CICoverage:    cover,
		}
		if base, commit, ok := traj.Baseline(series); ok {
			res.Baseline = base
			res.BaselineCommit = commit
			if base != 0 {
				res.Delta = (res.Median - base) / base
			}
			res.Verdict = string(stats.CheckRegression(base, sum, g.Threshold, opts.Confidence, info.LowerIsBetter))
		} else {
			res.Verdict = VerdictNoBaseline
		}
		switch res.Verdict {
		case string(stats.VerdictOK):
			rep.OK++
		case string(stats.VerdictRegressed):
			rep.Regressed++
		case string(stats.VerdictImproved):
			rep.Improved++
		case string(stats.VerdictTooNoisy):
			rep.TooNoisy++
		default:
			rep.NoBaseline++
		}
		rep.Gates = append(rep.Gates, res)
		blessed = append(blessed, TrajectoryBench{Name: series, Value: res.Median, Unit: info.Unit})
	}

	if opts.UpdateBaseline {
		if err := AppendGateBaselines(historyPath, blessed, opts.Commit, time.Now()); err != nil {
			return nil, err
		}
		rep.BaselinesUpdated = true
	}
	renderCheckReport(w, rep, historyPath)
	return rep, nil
}

// renderCheckReport prints the per-series verdict table and summary.
func renderCheckReport(w io.Writer, rep *CheckReport, historyPath string) {
	wide := len("series")
	for _, g := range rep.Gates {
		if len(g.Series) > wide {
			wide = len(g.Series)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %-27s  %7s  %s\n",
		wide, "series", "baseline", "median", "ci", "delta", "verdict")
	for _, g := range rep.Gates {
		base := "-"
		delta := "-"
		if g.Verdict != VerdictNoBaseline {
			base = fmt.Sprintf("%.6g", g.Baseline)
			delta = fmt.Sprintf("%+.1f%%", 100*g.Delta)
		}
		fmt.Fprintf(w, "%-*s  %12s  %12.6g  %-27s  %7s  %s\n",
			wide, g.Series, base, g.Median,
			fmt.Sprintf("[%.6g, %.6g]", g.CILo, g.CIHi), delta, g.Verdict)
	}
	fmt.Fprintf(w, "bench-check: %d gated: %d ok, %d regressed, %d improved, %d too-noisy, %d no-baseline (N=%d default, %g%% CI)\n",
		len(rep.Gates), rep.OK, rep.Regressed, rep.Improved, rep.TooNoisy, rep.NoBaseline,
		rep.Iterations, 100*rep.Confidence)
	if rep.HostSkipped > 0 {
		fmt.Fprintf(w, "bench-check: %d host wall-clock gate(s) skipped; include them with -host-gates (or PAPERBENCH_HOST_GATES=1) after blessing per-host baselines\n",
			rep.HostSkipped)
	}
	if rep.NoBaseline > 0 && !rep.BaselinesUpdated {
		fmt.Fprintf(w, "bench-check: %d series have no baseline in %s; bless them with -update-baseline\n",
			rep.NoBaseline, historyPath)
	}
	if rep.BaselinesUpdated {
		fmt.Fprintf(w, "bench-check: blessed %d baselines into %s\n", len(rep.Gates), historyPath)
	}
	if rep.Failed() {
		fmt.Fprintf(w, "bench-check: FAIL — %d series regressed past their threshold; if intentional, bless with -update-baseline and commit %s\n",
			rep.Regressed, historyPath)
	}
}

// WriteCheckJSON writes the machine-readable report (atomically, like
// every other BENCH artifact).
func WriteCheckJSON(path string, rep *CheckReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}
