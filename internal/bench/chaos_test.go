package bench

import (
	"strings"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

// TestChaosInvariance is the chaos harness's core claim: every app,
// under every fault scenario, still computes the serial-reference
// answer and finishes within its deadline, and the scenario actually
// fired. RunChaos checks all three internally.
func TestChaosInvariance(t *testing.T) {
	scenarios := []string{"noc-jitter", "uli-nack-storm", "dram-spike"}
	for _, appName := range AppNames() {
		for _, scName := range scenarios {
			t.Run(appName+"/"+scName, func(t *testing.T) {
				if _, err := RunChaos(appName, scName, 1); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosAllScenario runs the everything-at-once scenario on a
// representative subset (one app per family).
func TestChaosAllScenario(t *testing.T) {
	for _, appName := range []string{"cilk5-cs", "ligra-bfs", "cilk5-nq"} {
		r, err := RunChaos(appName, "chaos-all", 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.Faults == 0 {
			t.Fatalf("%s: chaos-all injected nothing", appName)
		}
	}
}

// TestChaosLossyInvariance is the recovery layer's core claim: even
// when steal requests and responses vanish on the ULI mesh and a tiny
// core fail-stops mid-run, every app still computes the serial-reference
// answer within its deadline. RunChaos also shadows every run with the
// memory-ordering oracle, so a recovery path that skipped a coherence
// operation would fail here even if the final output happened to match.
func TestChaosLossyInvariance(t *testing.T) {
	for _, appName := range AppNames() {
		for _, scName := range []string{"lossy-uli", "core-loss", "chaos-lossy-all"} {
			t.Run(appName+"/"+scName, func(t *testing.T) {
				r, err := RunChaos(appName, scName, 1)
				if err != nil {
					t.Fatal(err)
				}
				if r.OracleOps == 0 {
					t.Fatal("oracle checked no memory operations")
				}
				if scName == "core-loss" && r.RT.OfflineCores == 0 {
					t.Fatal("core-loss scenario took no core offline")
				}
				if scName == "lossy-uli" && r.ULI.Drops == 0 {
					t.Fatal("lossy-uli scenario dropped no steal messages")
				}
			})
		}
	}
}

// TestULIAccountingInvariant: every steal request terminates in exactly
// one of ACK delivered, NACK delivered, or dropped somewhere on its
// path — so Reqs == Acks + Nacks + Drops always — and the mean latency
// is computed over delivered ACKs only.
func TestULIAccountingInvariant(t *testing.T) {
	for _, scName := range []string{"chaos-all", "lossy-uli", "chaos-lossy-all"} {
		for _, appName := range []string{"cilk5-cs", "cilk5-mm", "ligra-bfs"} {
			r, err := RunChaos(appName, scName, 2)
			if err != nil {
				t.Fatal(err)
			}
			u := r.ULI
			if u.Reqs != u.Acks+u.Nacks+u.Drops {
				t.Errorf("%s/%s: reqs=%d != acks=%d + nacks=%d + drops=%d",
					appName, scName, u.Reqs, u.Acks, u.Nacks, u.Drops)
			}
			if u.Acks == 0 && u.AvgLatency() != 0 {
				t.Errorf("%s/%s: nonzero AvgLatency with zero ACKs", appName, scName)
			}
			if u.Acks > 0 && u.AvgLatency() <= 0 {
				t.Errorf("%s/%s: AvgLatency %.2f with %d ACKs",
					appName, scName, u.AvgLatency(), u.Acks)
			}
		}
	}
}

// TestChaosSeedReproducible: the same (app, scenario, seed) must give
// bit-identical cycle counts, and a different seed must perturb them.
func TestChaosSeedReproducible(t *testing.T) {
	for _, scName := range []string{"chaos-all", "chaos-lossy-all"} {
		a, err := RunChaos("cilk5-cs", scName, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunChaos("cilk5-cs", scName, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.Faults != b.Faults {
			t.Fatalf("%s: same seed diverged: %d/%d cycles, %d/%d faults",
				scName, a.Cycles, b.Cycles, a.Faults, b.Faults)
		}
		c, err := RunChaos("cilk5-cs", scName, 8)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles == c.Cycles && a.Summary == c.Summary {
			t.Fatalf("%s: seeds 7 and 8 produced identical runs (%d cycles, %q)",
				scName, a.Cycles, a.Summary)
		}
	}
}

// runBare runs an app on ChaosConfig with no fault injector at all and
// returns the final cycle count.
func runBare(t *testing.T, appName string) sim.Time {
	t.Helper()
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := machine.Lookup(ChaosConfig)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cfg)
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	rt.Grain = app.DefaultGrain
	inst := app.Setup(rt, apps.Test, 0)
	if err := rt.Run(inst.Root); err != nil {
		t.Fatal(err)
	}
	read := func(a mem.Addr) uint64 { return m.Cache.DebugReadWord(a) }
	if err := inst.Verify(read); err != nil {
		t.Fatal(err)
	}
	return m.Kernel.Now()
}

// TestNoneScenarioMatchesBaseline: an injector armed with the "none"
// scenario must be cycle-identical to running with no injector at all —
// the fault hooks are free when disabled.
func TestNoneScenarioMatchesBaseline(t *testing.T) {
	for _, appName := range []string{"cilk5-cs", "ligra-bfs"} {
		bare := runBare(t, appName)
		none, err := RunChaos(appName, "none", 1)
		if err != nil {
			t.Fatal(err)
		}
		if none.Cycles != bare {
			t.Fatalf("%s: none-scenario %d cycles vs bare %d cycles",
				appName, none.Cycles, bare)
		}
		if none.Faults != 0 {
			t.Fatalf("%s: none scenario injected %d faults", appName, none.Faults)
		}
	}
}

// TestSuiteFaultScenario: the Suite plumbs fault scenarios through to
// the machine and keys its cache on them.
func TestSuiteFaultScenario(t *testing.T) {
	s := NewSuite(apps.Test)
	base, err := s.Run(ChaosConfig, "cilk5-cs")
	if err != nil {
		t.Fatal(err)
	}
	if base.FaultTotal != 0 {
		t.Fatalf("fault-free suite run reported %d faults", base.FaultTotal)
	}
	s.FaultScenario = "uli-nack-storm"
	s.FaultSeed = 1
	stormy, err := s.Run(ChaosConfig, "cilk5-cs")
	if err != nil {
		t.Fatal(err)
	}
	if stormy == base {
		t.Fatal("suite cache ignored the fault scenario")
	}
	if stormy.FaultTotal == 0 || !strings.Contains(stormy.FaultSummary, "uli-nack") {
		t.Fatalf("storm run faults: %d (%q)", stormy.FaultTotal, stormy.FaultSummary)
	}
	if _, err := s.Run(ChaosConfig, "cilk5-cs"); err != nil {
		t.Fatal(err)
	}
	s.FaultScenario = "nonesuch"
	if _, err := s.Run(ChaosConfig, "ligra-bc"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
