package bench

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"bigtiny/internal/apps"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
)

// runShardCount performs one complete simulation through the suite with
// the event kernel split into the given shard count (1 = serial) and
// the given shard executor (workers sizes the parallel pool; 0 means
// one per shard) and returns the full metric snapshot plus the
// canonical JSON export. The shard-decomposition invariants are
// asserted on the way out: zero lookahead violations, and — on a
// parallel-executor run that actually crossed shards — non-trivial
// outbox traffic, proving the epoch-barrier path really ran.
func runShardCount(t *testing.T, cfgName, appName string, size apps.Size, grain int,
	scenario string, faultSeed uint64, shards int, exec sim.ExecMode, workers int) (*stats.Run, []byte) {
	t.Helper()
	s := NewSuite(size)
	s.Grain = grain
	s.FaultScenario = scenario
	s.FaultSeed = faultSeed
	s.Oracle = true
	s.Shards = shards
	s.ShardExec = exec
	s.ExecWorkers = workers
	r, err := s.Run(cfgName, appName)
	if err != nil {
		t.Fatalf("%s on %s (shards=%d exec=%v): %v", appName, cfgName, shards, exec, err)
	}
	js, err := s.ResultJSON(context.Background(), cfgName, appName)
	if err != nil {
		t.Fatalf("%s on %s (shards=%d exec=%v): export: %v", appName, cfgName, shards, exec, err)
	}
	o := s.ShardObs()
	if o.Violations != 0 {
		t.Fatalf("%s on %s (shards=%d exec=%v): %d lookahead violations (the partition promised none)",
			appName, cfgName, shards, exec, o.Violations)
	}
	if exec == sim.ExecParallel && shards > 1 {
		eo := s.ExecObs()
		if o.CrossPosts > 0 && eo.Outboxed == 0 {
			t.Fatalf("%s on %s (shards=%d): parallel executor saw %d cross posts but outboxed none",
				appName, cfgName, shards, o.CrossPosts)
		}
	}
	return r, js
}

// checkShardedRun compares one sharded run against its serial twin:
// every collected statistic and the canonical JSON export must be
// byte-identical, and the ULI accounting identity must hold on both.
func checkShardedRun(t *testing.T, serial, sharded *stats.Run, serialJS, shardedJS []byte, shards int) {
	t.Helper()
	if serial.Cycles != sharded.Cycles {
		t.Fatalf("total cycles: serial=%d shards=%d: %d", serial.Cycles, shards, sharded.Cycles)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("stats diverge at shards=%d:\nserial:  %+v\nsharded: %+v", shards, serial, sharded)
	}
	if !bytes.Equal(serialJS, shardedJS) {
		t.Fatalf("JSON export diverges at shards=%d:\nserial:  %s\nsharded: %s", shards, serialJS, shardedJS)
	}
	for _, r := range []*stats.Run{serial, sharded} {
		if u := r.ULI; u != nil && u.Reqs != u.Acks+u.Nacks+u.Drops {
			t.Fatalf("ULI accounting identity violated: reqs=%d acks=%d nacks=%d drops=%d",
				u.Reqs, u.Acks, u.Nacks, u.Drops)
		}
	}
}

// TestShardedMatchesSerial is the sharded kernel's ground truth: every
// app, at the Empty and Unit sizes, on a DTS configuration, must
// produce bit-identical results at every tested shard count — total
// cycles, every collected statistic (cache, NoC, DRAM, ULI, oracle,
// runtime counters), and the canonical JSON export. Any divergence
// means shard decomposition changed the simulation, not just how its
// event queue is organized.
func TestShardedMatchesSerial(t *testing.T) {
	const cfgName = "bT/HCC-DTS-gwb"
	for _, size := range []apps.Size{apps.Empty, apps.Unit} {
		for _, appName := range AppNames() {
			t.Run(size.String()+"/"+appName, func(t *testing.T) {
				serial, serialJS := runShardCount(t, cfgName, appName, size, 0, "", 0, 1, sim.ExecMerged, 0)
				for _, shards := range []int{2, 5, 64} {
					sharded, shardedJS := runShardCount(t, cfgName, appName, size, 0, "", 0, shards, sim.ExecMerged, 0)
					checkShardedRun(t, serial, sharded, serialJS, shardedJS, shards)
				}
				// The epoch-parallel executor must be equally invisible,
				// including with fewer workers than shards (the K=64 leg
				// maps many shards per worker).
				for _, tc := range []struct{ shards, workers int }{{2, 2}, {4, 2}, {64, 3}} {
					sharded, shardedJS := runShardCount(t, cfgName, appName, size, 0, "", 0,
						tc.shards, sim.ExecParallel, tc.workers)
					checkShardedRun(t, serial, sharded, serialJS, shardedJS, tc.shards)
				}
			})
		}
	}
}

// TestShardedMatchesSerialTestSize spot-checks real (Test-size)
// workloads, where the shard queues carry millions of events and the
// cross-shard ULI traffic is dense, on a DTS and a non-DTS machine.
func TestShardedMatchesSerialTestSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full Test-size equivalence runs are not short")
	}
	for _, cfgName := range []string{"bT/HCC-DTS-gwb", "bT/MESI"} {
		t.Run(cfgName, func(t *testing.T) {
			serial, serialJS := runShardCount(t, cfgName, "cilk5-cs", apps.Test, 0, "", 0, 1, sim.ExecMerged, 0)
			for _, shards := range []int{4, 8} {
				sharded, shardedJS := runShardCount(t, cfgName, "cilk5-cs", apps.Test, 0, "", 0, shards, sim.ExecMerged, 0)
				checkShardedRun(t, serial, sharded, serialJS, shardedJS, shards)
			}
			// One dense Test-size leg through the parallel executor: the
			// outboxes carry real ULI steal traffic here, not toy posts.
			sharded, shardedJS := runShardCount(t, cfgName, "cilk5-cs", apps.Test, 0, "", 0, 4, sim.ExecParallel, 2)
			checkShardedRun(t, serial, sharded, serialJS, shardedJS, 4)
		})
	}
}

// TestShardedDifferentialStress is the randomized differential harness:
// each trial draws a random (app, size, grain, fault scenario, fault
// seed, shard count) tuple, runs it serial and sharded with the
// memory-ordering oracle shadowing both, and requires byte-identical
// stats and exports. The generator is seeded, so a failure reproduces
// by trial index.
func TestShardedDifferentialStress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	const cfgName = ChaosConfig // small DTS machine: full protocol stack per trial
	rng := rand.New(rand.NewSource(20260808))
	names := AppNames()
	scenarios := append([]string{""}, ChaosScenarios...)
	sizes := []apps.Size{apps.Empty, apps.Unit, apps.Test}
	grains := []int{0, 1, 4}
	shardCounts := []int{2, 3, 4, 8, 64}

	const trials = 10
	for i := 0; i < trials; i++ {
		appName := names[rng.Intn(len(names))]
		size := sizes[rng.Intn(len(sizes))]
		grain := grains[rng.Intn(len(grains))]
		scenario := scenarios[rng.Intn(len(scenarios))]
		var faultSeed uint64
		if scenario != "" {
			faultSeed = uint64(rng.Intn(5) + 1)
		}
		shards := shardCounts[rng.Intn(len(shardCounts))]
		workers := rng.Intn(shards) + 1
		t.Run(appName+"/"+size.String(), func(t *testing.T) {
			serial, serialJS := runShardCount(t, cfgName, appName, size, grain, scenario, faultSeed, 1, sim.ExecMerged, 0)
			sharded, shardedJS := runShardCount(t, cfgName, appName, size, grain, scenario, faultSeed, shards, sim.ExecMerged, 0)
			checkShardedRun(t, serial, sharded, serialJS, shardedJS, shards)
			// Same trial tuple through the epoch-parallel executor with a
			// randomized pool size: every fault scenario that reaches this
			// harness must be byte-identical on the parallel path too.
			par, parJS := runShardCount(t, cfgName, appName, size, grain, scenario, faultSeed, shards, sim.ExecParallel, workers)
			checkShardedRun(t, serial, par, serialJS, parJS, shards)
		})
	}
}
