package bench

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bigtiny/internal/apps"
)

// robustCfg is a small DTS machine, cheap enough that robustness tests
// can run whole simulations.
const robustCfg = "bT8/HCC-DTS-gwb"

// TestPanicContainment: a panic inside one cell's simulation must turn
// into an error on that cell — for the singleflight leader AND every
// duplicate waiter — while other cells and the process stay healthy.
func TestPanicContainment(t *testing.T) {
	s := NewSuite(apps.Empty)
	var hookCalls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.SimHook = func(cfg, app string) {
		if app != "cilk5-cs" {
			return
		}
		hookCalls.Add(1)
		once.Do(func() { close(entered) })
		<-release
		panic("deliberate test panic")
	}

	errs := make(chan error, 2)
	go func() {
		_, err := s.Run(robustCfg, "cilk5-cs")
		errs <- err
	}()
	<-entered // the leader is inside the poisoned cell
	go func() {
		_, err := s.Run(robustCfg, "cilk5-cs")
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the second caller join the flight
	close(release)

	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil || !strings.Contains(err.Error(), "panic in cilk5-cs") {
			t.Fatalf("caller %d: want contained panic error, got: %v", i, err)
		}
	}
	if got := hookCalls.Load(); got != 1 {
		t.Fatalf("poisoned cell simulated %d times for 2 concurrent callers, want 1 (singleflight)", got)
	}

	// The poison stays in its cell: a different app on the same suite
	// still runs, and re-running the poisoned cell re-fails (errors are
	// never cached) without wedging anything.
	if _, err := s.Run(robustCfg, "cilk5-mt"); err != nil {
		t.Fatalf("healthy cell failed after a sibling panicked: %v", err)
	}
	if _, err := s.Run(robustCfg, "cilk5-cs"); err == nil {
		t.Fatal("poisoned cell succeeded on retry without the panic being fixed")
	}
}

// TestPrewarmSurvivesPanickingWorker: one panicking cell in a Prewarm
// worklist fails Prewarm's returned error but every other item is still
// warmed and the pool shuts down cleanly.
func TestPrewarmSurvivesPanickingWorker(t *testing.T) {
	s := NewSuite(apps.Empty)
	s.SimHook = func(cfg, app string) {
		if app == "cilk5-cs" {
			panic("deliberate test panic")
		}
	}
	work := []Work{
		{Cfg: robustCfg, App: "cilk5-cs", Size: apps.Empty},
		{Cfg: robustCfg, App: "cilk5-mt", Size: apps.Empty},
		{Cfg: robustCfg, App: "cilk5-nq", Size: apps.Empty},
	}
	err := s.Prewarm(work, 3)
	if err == nil || !strings.Contains(err.Error(), "panic in cilk5-cs") {
		t.Fatalf("Prewarm did not report the contained panic: %v", err)
	}
	// The healthy cells were warmed despite the poisoned sibling.
	s.SimHook = nil
	for _, app := range []string{"cilk5-mt", "cilk5-nq"} {
		if _, err := s.Run(robustCfg, app); err != nil {
			t.Fatalf("warmed cell %s unexpectedly failed: %v", app, err)
		}
	}
}

// TestViewPanicContained: the native Cilkview analysis path has the
// same containment as simulations — a panicking analysis fails its own
// cell, and the suite keeps serving other views.
func TestViewPanicContained(t *testing.T) {
	s := NewSuite(apps.Empty)
	if _, err := s.analyze("no-such-app"); err == nil {
		t.Fatal("unknown app accepted")
	}
	s.SimHook = func(cfg, app string) {
		if cfg == "view" && app == "cilk5-cs" {
			panic("deliberate view panic")
		}
	}
	if _, err := s.View("cilk5-cs"); err == nil || !strings.Contains(err.Error(), "panic analyzing cilk5-cs") {
		t.Fatalf("view panic not contained: %v", err)
	}
	if _, err := s.View("cilk5-mt"); err != nil {
		t.Fatalf("healthy view failed after a sibling panicked: %v", err)
	}
}

// TestSuiteDeadline: a per-suite watchdog deadline turns a too-long run
// into a structured error that carries the machine-state dump.
func TestSuiteDeadline(t *testing.T) {
	s := NewSuite(apps.Test)
	s.Deadline = 10 // cycles; every real run blows this instantly
	_, err := s.Run(robustCfg, "cilk5-cs")
	if err == nil {
		t.Fatal("10-cycle deadline did not fail the run")
	}
	for _, want := range []string{"deadline", "kernel:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadline error missing %q:\n%v", want, err)
		}
	}
}

// TestRunCtxWaiterCancellation: a waiter with a dead context stops
// waiting immediately, while the leader's simulation (and a patient
// waiter) still completes.
func TestRunCtxWaiterCancellation(t *testing.T) {
	s := NewSuite(apps.Empty)
	entered := make(chan struct{})
	release := make(chan struct{})
	s.SimHook = func(cfg, app string) {
		close(entered)
		<-release
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.Run(robustCfg, "cilk5-mt")
		leaderErr <- err
	}()
	<-entered

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunCtx(cancelled, robustCfg, "cilk5-mt"); err == nil {
		t.Fatal("waiter with dead context kept waiting")
	}

	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader failed after a waiter bailed: %v", err)
	}
}

// TestRunCtxCancelInterruptsSimulation: cancelling the leader's context
// mid-run aborts the kernel with an interrupt error instead of letting
// the simulation run to completion.
func TestRunCtxCancelInterruptsSimulation(t *testing.T) {
	s := NewSuite(apps.Test)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the cell, before the machine is even built:
	// the kernel watcher sees a dead context at its first instant, so
	// the interrupt lands long before a test-size simulation can finish.
	s.SimHook = func(cfg, app string) { cancel() }
	_, err := s.RunCtx(ctx, robustCfg, "cilk5-cs")
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !strings.Contains(err.Error(), "interrupted") && !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("cancelled run's error names neither interrupt nor cancellation: %v", err)
	}
}

// TestResultJSONMatchesWriteJSON: the serving layer's per-run export is
// byte-identical to the `paperbench -json` export of the same run.
func TestResultJSONMatchesWriteJSON(t *testing.T) {
	served := NewSuite(apps.Empty)
	got, err := served.ResultJSON(context.Background(), robustCfg, "cilk5-mt")
	if err != nil {
		t.Fatal(err)
	}

	cli := NewSuite(apps.Empty)
	if _, err := cli.Run(robustCfg, "cilk5-mt"); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := cli.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("ResultJSON diverges from WriteJSON:\n--- served ---\n%s\n--- cli ---\n%s", got, want.String())
	}
}
