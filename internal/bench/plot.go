package bench

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"bigtiny/internal/atomicio"
)

// This file renders the BENCH.json trajectory as a static HTML page
// (`paperbench bench-plot`, committed as docs/bench.html): one inline
// SVG line chart per series, grouped by suite, with no scripts and no
// external assets, so the repo's perf history is browsable anywhere a
// file renders. Output is deterministic for a given trajectory —
// suites sort lexically, series keep first-appearance order — so
// regenerating the page produces a meaningful diff only when the data
// changed.

// plot geometry, in SVG user units (pixels).
const (
	plotW     = 640
	plotH     = 200
	plotPadL  = 64 // room for the y-axis value labels
	plotPadR  = 16
	plotPadT  = 12
	plotPadB  = 24
)

// seriesPoint is one plotted measurement.
type seriesPoint struct {
	Value  float64
	Commit string // short id, for the hover tooltip
	Date   int64  // milliseconds since epoch
}

// collectSeries flattens a suite's entries into per-series point lists,
// returning the series names in order of first appearance (entry order,
// then bench order within an entry) — the order the history grew in.
func collectSeries(entries []TrajectoryEntry) ([]string, map[string][]seriesPoint) {
	var order []string
	points := map[string][]seriesPoint{}
	for _, e := range entries {
		commit := e.Commit.ID
		if len(commit) > 12 {
			commit = commit[:12]
		}
		for _, b := range e.Benches {
			if _, ok := points[b.Name]; !ok {
				order = append(order, b.Name)
			}
			points[b.Name] = append(points[b.Name], seriesPoint{Value: b.Value, Commit: commit, Date: e.Date})
		}
	}
	return order, points
}

// seriesUnit finds the unit a series was last recorded with.
func seriesUnit(entries []TrajectoryEntry, name string) string {
	unit := ""
	for _, e := range entries {
		for _, b := range e.Benches {
			if b.Name == name {
				unit = b.Unit
			}
		}
	}
	return unit
}

// fmtValue renders an axis/point label compactly.
func fmtValue(v float64) string {
	switch {
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// renderSeriesSVG draws one series as an SVG line chart. A single-point
// series still renders (a dot and its value); the y-range pads 5% so a
// flat series does not sit on the frame.
func renderSeriesSVG(w io.Writer, pts []seriesPoint, unit string) {
	lo, hi := pts[0].Value, pts[0].Value
	for _, p := range pts {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	span := hi - lo
	if span == 0 {
		span = math.Abs(hi)
		if span == 0 {
			span = 1
		}
	}
	lo -= 0.05 * span
	hi += 0.05 * span

	x := func(i int) float64 {
		if len(pts) == 1 {
			return (plotPadL + plotW - plotPadR) / 2
		}
		return plotPadL + float64(i)*float64(plotW-plotPadL-plotPadR)/float64(len(pts)-1)
	}
	y := func(v float64) float64 {
		return plotPadT + (hi-v)/(hi-lo)*float64(plotH-plotPadT-plotPadB)
	}

	fmt.Fprintf(w, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`+"\n", plotW, plotH, plotW, plotH)
	fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#ccc"/>`+"\n",
		plotPadL, plotPadT, plotW-plotPadL-plotPadR, plotH-plotPadT-plotPadB)
	// Min/max labels on the y axis, in data units.
	fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#555">%s</text>`+"\n",
		plotPadL-6, y(hi)+4, html.EscapeString(fmtValue(hi)))
	fmt.Fprintf(w, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#555">%s</text>`+"\n",
		plotPadL-6, y(lo)+4, html.EscapeString(fmtValue(lo)))
	if len(pts) > 1 {
		var b strings.Builder
		for i, p := range pts {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", x(i), y(p.Value))
		}
		fmt.Fprintf(w, `<polyline points="%s" fill="none" stroke="#2962a8" stroke-width="1.5"/>`+"\n", b.String())
	}
	for i, p := range pts {
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="3" fill="#2962a8"><title>%s</title></circle>`+"\n",
			x(i), y(p.Value), html.EscapeString(fmt.Sprintf("%s %s @ %s", fmtValue(p.Value), unit, p.Commit)))
	}
	last := pts[len(pts)-1]
	fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="11" fill="#2962a8">%s</text>`+"\n",
		math.Min(x(len(pts)-1)+6, plotW-plotPadR-40), y(last.Value)-6, html.EscapeString(fmtValue(last.Value)))
	fmt.Fprint(w, "</svg>\n")
}

// RenderTrajectoryHTML writes the whole trajectory as one
// self-contained HTML page: a section per suite (sorted), a chart per
// series (first-appearance order), latest value and commit beside each
// title. source names the trajectory file in the page header.
func RenderTrajectoryHTML(w io.Writer, traj *TrajectoryFile, source string) error {
	fmt.Fprint(w, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprint(w, "<title>benchmark trajectory</title>\n")
	fmt.Fprint(w, "<style>\nbody{font-family:system-ui,sans-serif;margin:2em auto;max-width:720px;color:#222}\n"+
		"h2{border-bottom:1px solid #ddd;padding-bottom:.3em}\n"+
		"h3{margin-bottom:.2em}\n.meta{color:#666;font-size:.9em}\n</style>\n</head>\n<body>\n")
	fmt.Fprintf(w, "<h1>Benchmark trajectory</h1>\n<p class=\"meta\">rendered from %s", html.EscapeString(source))
	if traj.LastUpdate > 0 {
		fmt.Fprintf(w, ", last update %s", time.UnixMilli(traj.LastUpdate).UTC().Format("2006-01-02"))
	}
	fmt.Fprint(w, "</p>\n")

	suites := make([]string, 0, len(traj.Entries))
	for name := range traj.Entries {
		suites = append(suites, name)
	}
	sort.Strings(suites)
	total := 0
	for _, suite := range suites {
		entries := traj.Entries[suite]
		if len(entries) == 0 {
			continue
		}
		fmt.Fprintf(w, "<h2>%s</h2>\n<p class=\"meta\">%d entries</p>\n", html.EscapeString(suite), len(entries))
		order, points := collectSeries(entries)
		for _, name := range order {
			pts := points[name]
			unit := seriesUnit(entries, name)
			last := pts[len(pts)-1]
			fmt.Fprintf(w, "<h3>%s</h3>\n<p class=\"meta\">latest %s %s (%s), %d points</p>\n",
				html.EscapeString(name), html.EscapeString(fmtValue(last.Value)),
				html.EscapeString(unit), html.EscapeString(last.Commit), len(pts))
			renderSeriesSVG(w, pts, unit)
			total++
		}
	}
	if total == 0 {
		fmt.Fprint(w, "<p>No trajectory entries yet — run <code>paperbench bench</code> first.</p>\n")
	}
	fmt.Fprint(w, "</body>\n</html>\n")
	return nil
}

// WriteTrajectoryHTML renders the page to path atomically (the
// committed docs artifact must never be left truncated).
func WriteTrajectoryHTML(path string, traj *TrajectoryFile, source string) error {
	var b strings.Builder
	if err := RenderTrajectoryHTML(&b, traj, source); err != nil {
		return err
	}
	return atomicio.WriteFile(path, []byte(b.String()), 0o644)
}
