package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// This file maintains the cumulative benchmark trajectory: where a
// BENCH_*.json carries one before/after pair for a single PR, the
// trajectory file (BENCH.json) appends one entry per commit, in the
// same shape the benchmark-action ecosystem renders, so the repo's
// host-performance history is a single growing series rather than a
// set of disconnected pairs.

// BenchCommit identifies the commit a trajectory entry measures.
type BenchCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
}

// TrajectoryBench is one named measurement inside an entry.
type TrajectoryBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// TrajectoryEntry is one commit's worth of measurements.
type TrajectoryEntry struct {
	Commit  BenchCommit       `json:"commit"`
	Date    int64             `json:"date"` // milliseconds since epoch
	Tool    string            `json:"tool"`
	Benches []TrajectoryBench `json:"benches"`
}

// TrajectoryFile is the on-disk BENCH.json format.
type TrajectoryFile struct {
	LastUpdate int64                        `json:"lastUpdate"`
	RepoURL    string                       `json:"repoUrl"`
	Entries    map[string][]TrajectoryEntry `json:"entries"`
}

// trajectorySuite is the series every paperbench bench run appends to.
const trajectorySuite = "paperbench host throughput"

// trajectoryBenches flattens a report into the named series. Names are
// stable across PRs — renaming one would fork its plotted history.
func trajectoryBenches(rep *HostBenchReport) []TrajectoryBench {
	return []TrajectoryBench{
		{Name: "kernel ns/event", Value: rep.Kernel.NsPerEvent, Unit: "ns/event"},
		{Name: "kernel allocs/event", Value: rep.Kernel.AllocsPerEvent, Unit: "allocs/event"},
		{Name: "table3 serial wall", Value: rep.Table3Serial.WallSec, Unit: "s"},
		{Name: "table3 sim-cycles/sec", Value: rep.Table3Serial.SimCyclesPerSec, Unit: "cycles/s"},
		{Name: "table3 events/sec", Value: rep.Table3Serial.EventsPerSec, Unit: "events/s"},
		{Name: "table3 allocs/event", Value: rep.Table3Serial.AllocsPerEvent, Unit: "allocs/event"},
	}
}

// AppendTrajectory appends one measurement of commit to the trajectory
// file at path, creating the file if it does not exist. Entries for
// the same commit ID are replaced rather than duplicated, so re-running
// `make bench` before committing does not stutter the series.
func AppendTrajectory(path string, rep *HostBenchReport, commit BenchCommit, now time.Time) error {
	var file TrajectoryFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: existing %s is not a trajectory file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if file.Entries == nil {
		file.Entries = map[string][]TrajectoryEntry{}
	}
	if file.RepoURL == "" {
		file.RepoURL = "local"
	}

	entry := TrajectoryEntry{
		Commit:  commit,
		Date:    now.UnixMilli(),
		Tool:    "go",
		Benches: trajectoryBenches(rep),
	}
	series := file.Entries[trajectorySuite]
	replaced := false
	for i := range series {
		if commit.ID != "" && series[i].Commit.ID == commit.ID {
			series[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		series = append(series, entry)
	}
	file.Entries[trajectorySuite] = series
	file.LastUpdate = entry.Date

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
