package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"bigtiny/internal/atomicio"
)

// This file maintains the cumulative benchmark trajectory: where a
// BENCH_*.json carries one before/after pair for a single PR, the
// trajectory file (BENCH.json) appends one entry per commit, in the
// same shape the benchmark-action ecosystem renders, so the repo's
// host-performance history is a single growing series rather than a
// set of disconnected pairs. The trajectory is also where the
// regression gate (gate.go) finds its baselines: bench-check compares
// fresh measurements against the newest entry carrying each gated
// series, and -update-baseline blesses new values by appending one.
//
// The file is the repo's whole perf history, so every write goes
// through atomicio: a crash mid-append leaves the previous trajectory
// intact, never a truncated JSON.

// BenchCommit identifies the commit a trajectory entry measures.
type BenchCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
}

// TrajectoryBench is one named measurement inside an entry.
type TrajectoryBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// TrajectoryEntry is one commit's worth of measurements.
type TrajectoryEntry struct {
	Commit  BenchCommit       `json:"commit"`
	Date    int64             `json:"date"` // milliseconds since epoch
	Tool    string            `json:"tool"`
	Benches []TrajectoryBench `json:"benches"`
}

// TrajectoryFile is the on-disk BENCH.json format.
type TrajectoryFile struct {
	LastUpdate int64                        `json:"lastUpdate"`
	RepoURL    string                       `json:"repoUrl"`
	Entries    map[string][]TrajectoryEntry `json:"entries"`
}

// trajectorySuite is the series every paperbench bench run appends to;
// gateSuite carries the regression-gate baselines bench-check blesses.
const (
	trajectorySuite = "paperbench host throughput"
	gateSuite       = "paperbench regression gates"
)

// trajectoryBenches flattens a report into the named series. Names are
// stable across PRs — renaming one would fork its plotted history. A
// shard sweep contributes per-count series ("table3 k4 wall"), present
// only on entries whose run measured that count.
func trajectoryBenches(rep *HostBenchReport) []TrajectoryBench {
	benches := []TrajectoryBench{
		{Name: "kernel ns/event", Value: rep.Kernel.NsPerEvent, Unit: "ns/event"},
		{Name: "kernel allocs/event", Value: rep.Kernel.AllocsPerEvent, Unit: "allocs/event"},
		{Name: "table3 serial wall", Value: rep.Table3Serial.WallSec, Unit: "s"},
		{Name: "table3 sim-cycles/sec", Value: rep.Table3Serial.SimCyclesPerSec, Unit: "cycles/s"},
		{Name: "table3 events/sec", Value: rep.Table3Serial.EventsPerSec, Unit: "events/s"},
		{Name: "table3 allocs/event", Value: rep.Table3Serial.AllocsPerEvent, Unit: "allocs/event"},
	}
	for _, b := range rep.Table3Sharded {
		// The parallel-executor passes carry their own series — on a
		// single-core host these track executor overhead, and must never
		// share a baseline with the merged-executor wall numbers.
		tag := ""
		if b.ShardExec != "" {
			tag = " " + b.ShardExec
		}
		benches = append(benches,
			TrajectoryBench{Name: fmt.Sprintf("table3 k%d%s wall", b.Shards, tag), Value: b.WallSec, Unit: "s"},
			TrajectoryBench{Name: fmt.Sprintf("table3 k%d%s sim-cycles/sec", b.Shards, tag), Value: b.SimCyclesPerSec, Unit: "cycles/s"})
	}
	return benches
}

// LoadTrajectory reads the trajectory file at path. A missing file is
// an empty trajectory, not an error; a malformed one is an error (the
// perf history must never be silently clobbered).
func LoadTrajectory(path string) (*TrajectoryFile, error) {
	var file TrajectoryFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("bench: existing %s is not a trajectory file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("bench: reading %s: %w", path, err)
	}
	if file.Entries == nil {
		file.Entries = map[string][]TrajectoryEntry{}
	}
	return &file, nil
}

// Baseline returns the most recent recorded value of the named series,
// searching entries newest-first (suites in sorted order, so the
// answer is deterministic), plus the commit ID that recorded it. ok is
// false when no entry carries the series.
func (f *TrajectoryFile) Baseline(series string) (value float64, commit string, ok bool) {
	suites := make([]string, 0, len(f.Entries))
	for s := range f.Entries {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	for _, s := range suites {
		entries := f.Entries[s]
		for i := len(entries) - 1; i >= 0; i-- {
			for _, b := range entries[i].Benches {
				if b.Name == series {
					return b.Value, entries[i].Commit.ID, true
				}
			}
		}
	}
	return 0, "", false
}

// dedupableCommit reports whether a commit ID identifies one specific
// commit. The no-git fallback stamps entries with "unknown"; replacing
// on that ID would collapse every unattributed run into one entry,
// silently discarding history, so such entries always append.
func dedupableCommit(id string) bool {
	return id != "" && id != "unknown"
}

// appendEntry appends one entry to the named suite's series in the
// trajectory at path, creating the file if needed. Entries for the
// same (dedupable) commit ID are replaced rather than duplicated, so
// re-running `make bench` before committing does not stutter the
// series. The write is atomic: a crash leaves the old file intact.
func appendEntry(path, suite string, benches []TrajectoryBench, commit BenchCommit, now time.Time) error {
	file, err := LoadTrajectory(path)
	if err != nil {
		return err
	}
	if file.RepoURL == "" {
		file.RepoURL = "local"
	}

	entry := TrajectoryEntry{
		Commit:  commit,
		Date:    now.UnixMilli(),
		Tool:    "go",
		Benches: benches,
	}
	series := file.Entries[suite]
	replaced := false
	if dedupableCommit(commit.ID) {
		for i := range series {
			if series[i].Commit.ID == commit.ID {
				series[i] = entry
				replaced = true
				break
			}
		}
	}
	if !replaced {
		series = append(series, entry)
	}
	file.Entries[suite] = series
	file.LastUpdate = entry.Date

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendTrajectory appends one host-throughput measurement of commit to
// the trajectory file at path.
func AppendTrajectory(path string, rep *HostBenchReport, commit BenchCommit, now time.Time) error {
	return appendEntry(path, trajectorySuite, trajectoryBenches(rep), commit, now)
}

// AppendGateBaselines appends (or, for a known commit, replaces) one
// entry of regression-gate baselines — this is how an intentional perf
// change is blessed: re-measure with bench-check -update-baseline and
// commit the refreshed trajectory.
func AppendGateBaselines(path string, benches []TrajectoryBench, commit BenchCommit, now time.Time) error {
	return appendEntry(path, gateSuite, benches, commit, now)
}
