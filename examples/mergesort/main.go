// Mergesort compares the three runtime/coherence combinations the
// paper studies on a parallel mergesort (the cilksort algorithm with a
// parallel merge): hardware-coherent MESI, HCC with the
// invalidate/flush discipline, and HCC with direct task stealing.
//
//	go run ./examples/mergesort [-n 8192]
package main

import (
	"flag"
	"fmt"
	"log"

	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/sim"
	"bigtiny/internal/wsrt"
)

func main() {
	n := flag.Int("n", 8192, "keys to sort")
	flag.Parse()

	type combo struct {
		cfgName string
		label   string
	}
	combos := []combo{
		{"bT/MESI", "hardware coherence (Fig 3a runtime)"},
		{"bT/HCC-gwb", "HCC GPU-WB (Fig 3b runtime)"},
		{"bT/HCC-DTS-gwb", "HCC GPU-WB + DTS (Fig 3c runtime)"},
	}
	fmt.Printf("parallel mergesort, %d keys, 64-core big.TINY systems\n\n", *n)
	fmt.Printf("%-40s %12s %8s %10s %10s\n", "system", "cycles", "steals", "inv-lines", "flush-lines")

	for _, cb := range combos {
		cfg, err := machine.Lookup(cb.cfgName)
		if err != nil {
			log.Fatal(err)
		}
		m := machine.New(cfg)
		rt := wsrt.New(m, wsrt.AutoVariant(m))
		cycles, err := runSort(m, rt, *n)
		if err != nil {
			log.Fatal(err)
		}
		var inv, fl uint64
		for _, core := range m.Cores {
			inv += core.L1D.Stats.InvLines
			fl += core.L1D.Stats.FlushLines
		}
		fmt.Printf("%-40s %12d %8d %10d %10d\n", cb.label, cycles, rt.Stats.StealHits, inv, fl)
	}
}

// runSort sorts n pseudorandom keys in simulated memory and verifies
// the result, returning the simulated cycle count.
func runSort(m *machine.Machine, rt *wsrt.RT, n int) (sim.Time, error) {
	fidSort := rt.RegisterFunc("msort", 1536)
	data := m.Mem.AllocWords(n)
	tmp := m.Mem.AllocWords(n)
	rng := sim.NewRand(7)
	for i := 0; i < n; i++ {
		m.Mem.WriteWord(data+mem.Addr(i*8), rng.Uint64()%1_000_000)
	}
	at := func(base mem.Addr, i int) mem.Addr { return base + mem.Addr(i*8) }

	const grain = 64
	var msort func(c *wsrt.Ctx, lo, hi int)
	merge := func(c *wsrt.Ctx, lo, mid, hi int) {
		i, j := lo, mid
		for k := lo; k < hi; k++ {
			c.Compute(4)
			var v uint64
			switch {
			case i >= mid:
				v = c.Load(at(data, j))
				j++
			case j >= hi:
				v = c.Load(at(data, i))
				i++
			default:
				a, b := c.Load(at(data, i)), c.Load(at(data, j))
				if a <= b {
					v, i = a, i+1
				} else {
					v, j = b, j+1
				}
			}
			c.Store(at(tmp, k), v)
		}
		for k := lo; k < hi; k++ {
			c.Store(at(data, k), c.Load(at(tmp, k)))
		}
	}
	msort = func(c *wsrt.Ctx, lo, hi int) {
		c.Compute(6)
		if hi-lo <= grain {
			for i := lo + 1; i < hi; i++ { // insertion sort
				c.Compute(3)
				v := c.Load(at(data, i))
				j := i - 1
				for j >= lo {
					u := c.Load(at(data, j))
					if u <= v {
						break
					}
					c.Store(at(data, j+1), u)
					j--
				}
				c.Store(at(data, j+1), v)
			}
			return
		}
		mid := lo + (hi-lo)/2
		c.Fork(fidSort,
			func(cc *wsrt.Ctx) { msort(cc, lo, mid) },
			func(cc *wsrt.Ctx) { msort(cc, mid, hi) },
		)
		merge(c, lo, mid, hi)
	}

	if err := rt.Run(func(c *wsrt.Ctx) { msort(c, 0, n) }); err != nil {
		return 0, err
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := m.Cache.DebugReadWord(at(data, i))
		if v < prev {
			return 0, fmt.Errorf("not sorted at %d", i)
		}
		prev = v
	}
	return m.Kernel.Now(), nil
}
