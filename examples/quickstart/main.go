// Quickstart: the paper's Figure 2 fib example, run on a simulated
// big.TINY machine with heterogeneous cache coherence and direct task
// stealing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bigtiny/internal/machine"
	"bigtiny/internal/mem"
	"bigtiny/internal/wsrt"
)

func main() {
	// Build the paper's 64-core big.TINY system: 4 big out-of-order
	// MESI cores + 60 tiny in-order GPU-WB cores, with ULI hardware for
	// direct task stealing.
	cfg, err := machine.Lookup("bT/HCC-DTS-gwb")
	if err != nil {
		log.Fatal(err)
	}
	m := machine.New(cfg)

	// Attach the work-stealing runtime. AutoVariant picks the DTS
	// engine because the machine has ULI hardware.
	rt := wsrt.New(m, wsrt.AutoVariant(m))
	fibFunc := rt.RegisterFunc("fib", 512)

	// fib, exactly as in paper Figure 2: each task forks two children
	// and waits; results flow through simulated memory, so the runtime's
	// flush/invalidate discipline is what makes this correct on GPU-WB
	// caches.
	var fib func(c *wsrt.Ctx, n uint64, sum mem.Addr)
	fib = func(c *wsrt.Ctx, n uint64, sum mem.Addr) {
		c.Compute(8) // function body overhead
		if n < 2 {
			c.Store(sum, n)
			return
		}
		x := c.Alloc(1)
		y := c.Alloc(1)
		c.Fork(fibFunc,
			func(cc *wsrt.Ctx) { fib(cc, n-1, x) },
			func(cc *wsrt.Ctx) { fib(cc, n-2, y) },
		)
		c.Store(sum, c.Load(x)+c.Load(y))
	}

	out := m.Mem.AllocWords(1)
	if err := rt.Run(func(c *wsrt.Ctx) { fib(c, 20, out) }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fib(20)          = %d\n", m.Cache.DebugReadWord(out))
	fmt.Printf("simulated cycles = %d\n", m.Kernel.Now())
	fmt.Printf("runtime          = %v\n", rt.Stats)
	if m.ULI != nil {
		fmt.Printf("direct steals    = %d acks, %d nacks, %.1f-cycle avg round trip\n",
			m.ULI.Stats.Acks, m.ULI.Stats.Nacks, m.ULI.Stats.AvgLatency())
	}
}
