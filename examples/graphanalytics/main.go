// Graphanalytics runs the paper's Ligra-style kernels (BFS and
// connected components) on an R-MAT graph across the coherence
// configurations and prints a small comparison table, including the
// per-protocol cache-operation counts that explain the differences.
//
//	go run ./examples/graphanalytics [-scale 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
)

func main() {
	flag.Parse()

	suite := bench.NewSuite(apps.Test)
	configs := []string{"bT/MESI", "bT/HCC-dnv", "bT/HCC-gwb", "bT/HCC-DTS-gwb"}
	kernels := []string{"ligra-bfs", "ligra-cc"}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel\tsystem\tcycles\tL1D hit\tinv lines\tflush lines\tAMOs@L2\tsteals")
	for _, app := range kernels {
		for _, cfg := range configs {
			r, err := suite.Run(cfg, app)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%d\t%d\t%d\t%d\n",
				app, cfg, r.Cycles, r.TinyHitRate(),
				r.L1Tiny.InvLines, r.L1Tiny.FlushLines, r.L2.AmoOps, r.RT.StealHits)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNotes (paper §VI):")
	fmt.Println(" - MESI needs no invalidations/flushes but pays directory traffic;")
	fmt.Println(" - DeNovo and GPU-WB need software invalidations (reader-initiated);")
	fmt.Println(" - GPU-WB additionally flushes dirty data and runs atomics at the L2;")
	fmt.Println(" - DTS makes the inv/flush counts collapse because task queues")
	fmt.Println("   become private and synchronization happens only on real steals.")
}
