// Granularity reproduces the paper's §V-D task-granularity trade-off
// (Figure 4) interactively: it sweeps the task grain of a parallel
// loop on a 64-tiny-core machine and prints the resulting speedup next
// to the Cilkview logical parallelism — showing that both too-fine and
// too-coarse granularity lose.
//
//	go run ./examples/granularity [-app ligra-tc]
package main

import (
	"flag"
	"fmt"
	"log"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/cilkview"
	"bigtiny/internal/stats"
	"bigtiny/internal/wsrt"
)

func main() {
	appName := flag.String("app", "cilk5-nq", "kernel to sweep")
	flag.Parse()

	app, err := apps.ByName(*appName)
	if err != nil {
		log.Fatal(err)
	}

	base := bench.NewSuite(apps.Test)
	serial, err := base.Run("IOx1", *appName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on 64 tiny cores (inputs at test scale)\n\n", *appName)
	fmt.Printf("%-12s %10s %14s %10s\n", "grain", "speedup", "parallelism", "IPT")
	for _, g := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		s := bench.NewSuite(apps.Test)
		s.Grain = g
		r, err := s.Run("tiny64", *appName)
		if err != nil {
			log.Fatal(err)
		}
		view := cilkview.Analyze(func(rt *wsrt.RT) wsrt.Body {
			return app.Setup(rt, apps.Test, g).Root
		})
		fmt.Printf("%-12d %10.2f %14.1f %10.1f\n",
			g, stats.Speedup(serial, r), view.Parallelism(), view.IPT())
	}
	fmt.Println("\nFine grain raises logical parallelism but pays runtime overhead per")
	fmt.Println("task; coarse grain starves the 64 cores (paper Figure 4).")
}
