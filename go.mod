module bigtiny

go 1.22
