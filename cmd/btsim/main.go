// Command btsim runs one application kernel on one simulated machine
// configuration and reports performance counters.
//
// Usage:
//
//	btsim -config bT/HCC-DTS-gwb -app ligra-bfs [-size ref] [-grain N] [-deadline cycles] [-shards K]
//	btsim -config bT8/HCC-DTS-gwb -app ligra-bfs -faults chaos-all [-fault-seed N]
//	btsim -config bT8/HCC-DTS-gwb -app ligra-bfs -faults lossy-uli -oracle
//	btsim -open -config bT8/HCC-DTS-gwb -workload rmat-query -arrival bursty -rate 8 -requests 64
//	btsim -list-configs
//	btsim -list-apps
//	btsim -list-faults
//
// With -open, btsim runs an open-system serving experiment instead of
// a closed-loop kernel: requests arrive on a seeded schedule (-arrival,
// -rate per 1000 cycles, -requests total), each spawns the -workload
// task DAG, and the report is shed/completed accounting plus exact
// end-to-end latency percentiles. -faults/-fault-seed/-oracle/-deadline
// compose with -open; -app/-size/-grain do not apply.
//
// -shards K partitions the event kernel into K conservative-lookahead
// shards (see DESIGN.md); every counter above is byte-identical at any
// K, and a shard-accounting summary goes to stderr so stdout stays
// comparable across shard counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/energy"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/openload"
	"bigtiny/internal/sim"
	"bigtiny/internal/stats"
	"bigtiny/internal/trace"
)

func main() {
	cfgName := flag.String("config", "bT/MESI", "machine configuration")
	appName := flag.String("app", "cilk5-cs", "application kernel")
	size := flag.String("size", "ref", "input size: test, ref, or big")
	grain := flag.Int("grain", 0, "task granularity override (0 = app default)")
	listConfigs := flag.Bool("list-configs", false, "list machine configurations")
	listApps := flag.Bool("list-apps", false, "list application kernels")
	listFaults := flag.Bool("list-faults", false, "list fault-injection scenarios")
	faults := flag.String("faults", "", "fault-injection scenario (see -list-faults)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection RNG seed")
	oracleOn := flag.Bool("oracle", false, "shadow the run with the memory-ordering oracle")
	deadline := flag.Uint64("deadline", 0,
		"simulated-cycle deadline; the run fails with a machine-state dump past it (0 = config watchdog default)")
	shards := flag.Int("shards", 1,
		"conservative-lookahead event-kernel shards; results are byte-identical at any count (1 = serial)")
	shardExec := flag.String("shard-exec", "merged",
		"sharded-kernel executor: merged, or parallel (epoch-parallel host worker pool; byte-identical results)")
	execWorkers := flag.Int("exec-workers", 0,
		"parallel-executor worker pool bound (0 = one worker per shard)")
	traceFile := flag.String("trace", "", "write a cycle-stamped scheduler trace to this file")
	openMode := flag.Bool("open", false, "run an open-system serving experiment instead of a closed-loop kernel")
	workload := flag.String("workload", "rmat-query", "open-system per-request workload (see openload.Workloads)")
	arrival := flag.String("arrival", "poisson", "open-system arrival process: poisson, bursty, or diurnal")
	rate := flag.Float64("rate", 4, "open-system offered load, requests per 1000 cycles")
	requests := flag.Int("requests", 64, "open-system total arrivals")
	openSeed := flag.Uint64("open-seed", 1, "open-system arrival-schedule and request-parameter seed")
	inflight := flag.Int("inflight", 0, "open-system admission bound; arrivals past it are shed (0 = 4x threads)")
	horizon := flag.Uint64("horizon", 0, "open-system drain bound in cycles past the last arrival (0 = drain fully)")
	flag.Parse()

	// Reject unknown scenario names before any simulation work: a typo
	// in -faults should not silently run fault-free for minutes.
	if *faults != "" {
		if _, err := fault.Lookup(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "btsim:", err)
			os.Exit(2)
		}
	}

	if *listFaults {
		for _, sc := range fault.Scenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Desc)
		}
		return
	}
	if *listConfigs {
		for _, n := range machine.Names() {
			cfg, _ := machine.Lookup(n)
			fmt.Printf("%-18s %3d big + %3d tiny (%s), %dx%d mesh, %d banks, DTS=%v\n",
				n, cfg.NumBig, cfg.NumTiny, cfg.TinyProto, cfg.Rows, cfg.Cols,
				cfg.NumBanks, cfg.DTS)
		}
		return
	}
	if *listApps {
		for _, a := range apps.All() {
			fmt.Printf("%-14s method=%s default-grain=%d\n", a.Name, a.Method, a.DefaultGrain)
		}
		return
	}

	sz, err := apps.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(2)
	}

	// Reject a bad -shards before any simulation work, same fail-fast
	// policy as -faults: a typo should not silently run serial.
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "btsim: -shards %d: shard count must be at least 1\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 {
		cfg, err := machine.Lookup(*cfgName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btsim:", err)
			os.Exit(2)
		}
		if n := cfg.NumCores(); *shards > n {
			fmt.Fprintf(os.Stderr, "btsim: -shards %d exceeds config %s's %d cores\n",
				*shards, *cfgName, n)
			os.Exit(2)
		}
		if *shards > machine.MaxShards {
			fmt.Fprintf(os.Stderr, "btsim: warning: -shards %d capped at the %d-shard kernel limit\n",
				*shards, machine.MaxShards)
		}
	}
	execMode, err := sim.ParseExecMode(*shardExec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btsim: -shard-exec:", err)
		os.Exit(2)
	}

	if *openMode {
		runOpen(*cfgName, openload.Spec{
			Workload:    *workload,
			Arrival:     *arrival,
			RatePerK:    *rate,
			Requests:    *requests,
			Seed:        *openSeed,
			MaxInFlight: *inflight,
			Horizon:     sim.Time(*horizon),
		}, openload.Options{
			Scenario:    *faults,
			FaultSeed:   *faultSeed,
			Oracle:      *oracleOn,
			Deadline:    sim.Time(*deadline),
			Shards:      *shards,
			ShardExec:   execMode,
			ExecWorkers: *execWorkers,
		})
		return
	}

	s := bench.NewSuite(sz)
	s.Grain = *grain
	s.Shards = *shards
	s.ShardExec = execMode
	s.ExecWorkers = *execWorkers
	s.FaultScenario = *faults
	s.FaultSeed = *faultSeed
	s.Oracle = *oracleOn
	s.Deadline = sim.Time(*deadline)
	if *traceFile != "" {
		s.Tracer = &trace.Recorder{Limit: 2_000_000}
	}
	r, err := s.Run(*cfgName, *appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
	// Shard accounting goes to stderr so stdout is byte-comparable
	// across shard counts (the pdes-smoke CI gate diffs it).
	if *shards > 1 {
		o := s.ShardObs()
		fmt.Fprintf(os.Stderr, "btsim: shards %d: %d cross-shard posts, %d lookahead violations, avg concurrency %.2f\n",
			*shards, o.CrossPosts, o.Violations, o.AvgConcurrency())
		if execMode == sim.ExecParallel {
			eo := s.ExecObs()
			fmt.Fprintf(os.Stderr, "btsim: shard-exec parallel: %d handoffs, %d inline, %d outboxed, %d flushes\n",
				eo.Handoffs, eo.Inline, eo.Outboxed, eo.Flushes)
		}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "btsim:", err)
			os.Exit(1)
		}
		if _, err := s.Tracer.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "btsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "btsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace      : %d events -> %s\n", len(s.Tracer.Events), *traceFile)
	}

	fmt.Printf("app        : %s (size %s)\n", r.App, sz)
	fmt.Printf("config     : %s\n", r.Config)
	fmt.Printf("cycles     : %d\n", r.Cycles)
	fmt.Printf("insts      : %d\n", r.Insts)
	fmt.Printf("tiny time  : %s\n", stats.BreakdownString(r.TinyBreakdown))
	fmt.Printf("big time   : %s\n", stats.BreakdownString(r.BigBreakdown))
	fmt.Printf("L1D tiny   : hit rate %.3f (%d loads, %d stores, %d AMOs)\n",
		r.TinyHitRate(), r.L1Tiny.Loads, r.L1Tiny.Stores, r.L1Tiny.Amos)
	fmt.Printf("inv/flush  : %d lines invalidated, %d lines flushed\n",
		r.L1Tiny.InvLines, r.L1Tiny.FlushLines)
	fmt.Printf("L2         : %d hits, %d misses, %d recalls, %d at-L2 AMOs\n",
		r.L2.Hits, r.L2.Misses, r.L2.Recalls, r.L2.AmoOps)
	fmt.Printf("DRAM       : %d line reads, %d line writes\n", r.DRAMReads, r.DRAMWrites)
	fmt.Printf("NoC        : %d bytes (avg %.1f hops)\n", r.Traffic.TotalBytes(), r.AvgHops)
	fmt.Printf("NoC util   : max %.2f%%, mean %.2f%% of link cycles\n", 100*r.NoCMaxUtil, 100*r.NoCMeanUtil)
	fmt.Printf("  %s\n", stats.TrafficString(&r.Traffic))
	if r.ULI != nil {
		fmt.Printf("ULI        : %d reqs, %d acks, %d nacks, %d drops, avg latency %.1f cycles, max util %.2f%%\n",
			r.ULI.Reqs, r.ULI.Acks, r.ULI.Nacks, r.ULI.Drops, r.ULIAvgLatency, 100*r.ULIMeshMaxUtil)
		if r.ULI.Timeouts > 0 || r.ULI.LateAcks > 0 || r.ULI.Restitutions > 0 {
			fmt.Printf("ULI loss   : %d timeouts, %d late acks salvaged, %d restitutions\n",
				r.ULI.Timeouts, r.ULI.LateAcks, r.ULI.Restitutions)
		}
	}
	if *faults != "" {
		fmt.Printf("faults     : scenario %s, seed %d: %s (%d total)\n",
			*faults, *faultSeed, r.FaultSummary, r.FaultTotal)
	}
	if *oracleOn {
		fmt.Printf("oracle     : %d memory operations checked, 0 violations\n", r.OracleOps)
	}
	fmt.Printf("runtime    : %v\n", r.RT)
	fmt.Printf("energy     : %.1f uJ (proxy)\n", energy.DefaultModel().Estimate(r))
}

// runOpen executes one open-system experiment and prints the serving
// report. openload.Run asserts the accounting identity internally, so
// a violated identity (or a wrong request answer) exits nonzero here.
func runOpen(cfgName string, sp openload.Spec, opt openload.Options) {
	r, err := openload.Run(context.Background(), cfgName, sp, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
	if r.Shard != nil {
		fmt.Fprintf(os.Stderr, "btsim: shards %d (lookahead %d): %d cross-shard posts, %d lookahead violations, avg concurrency %.2f\n",
			r.Shard.Shards, r.Shard.Lookahead, r.Shard.CrossPosts, r.Shard.Violations, r.Shard.AvgConcurrency())
	}
	fmt.Printf("workload   : %s (%s arrivals, rate %g/kcycle, seed %d)\n",
		sp.Workload, sp.Arrival, sp.RatePerK, sp.Seed)
	fmt.Printf("config     : %s\n", r.Config)
	fmt.Printf("cycles     : %d\n", r.Cycles)
	fmt.Printf("identity   : arrived %d = completed %d + shed %d + in-flight %d\n",
		r.Arrived, r.Completed, r.Shed, r.InFlightAtEnd)
	fmt.Printf("drained    : %v\n", r.Drained)
	fmt.Printf("offered    : %.3f req/kcycle, throughput %.3f req/kcycle\n",
		r.OfferedPerKCycle, r.ThroughputPerKCycle)
	if r.Completed > 0 {
		fmt.Printf("latency    : p50 %d, p90 %d, p99 %d, p999 %d, max %d cycles (mean %.1f)\n",
			r.Latency.P50(), r.Latency.P90(), r.Latency.P99(), r.Latency.P999(),
			r.Latency.Max(), r.Latency.Mean())
	}
	if opt.Scenario != "" {
		fmt.Printf("faults     : scenario %s, seed %d: %d total\n",
			opt.Scenario, opt.FaultSeed, r.FaultTotal)
	}
	if opt.Oracle {
		fmt.Printf("oracle     : %d memory operations checked, 0 violations\n", r.OracleOps)
	}
	fmt.Printf("runtime    : %v\n", r.RT)
}
