// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench [-size test|ref|big] [-apps a,b,c] [-j N] [-shards K]
//	           [-shard-exec merged|parallel] [-exec-workers N]
//	           [-faults s1,s2] [-fault-seed N] [-deadline cycles]
//	           [-cpuprofile f] [-memprofile f] [-v] [targets...]
//	paperbench serve [simd flags]
//	paperbench bench-check [-gates f] [-iterations N] [-confidence c]
//	           [-bench-history f] [-check-json f] [-update-baseline] [-v]
//	paperbench bench-plot [-bench-history f] [-o docs/bench.html]
//
// Targets: table3 table4 table5 fig4 fig5 fig6 fig7 fig8 uli energy
// chaos open bench all (default: all except table5, which simulates a
// 256-core system and is the most expensive target, and chaos/open,
// which are robustness sweeps rather than paper artifacts). The chaos
// target runs every selected app under each fault-injection scenario
// on a small DTS machine and checks the outputs still match the serial
// reference; it always uses test-size inputs regardless of -size. The
// open target sweeps open-system serving load (seeded arrivals, latency
// percentiles, shedding) across coherence configs with and without
// fault injection; -open-json exports the cells. The bench target
// measures host throughput (simulated cycles/sec, kernel events/sec,
// allocs/event), writes it to -bench-out, and appends a per-commit
// entry to the cumulative -bench-history trajectory (see EXPERIMENTS.md
// "Profiling and benchmarking"), with a one-line hint when the new
// numbers slipped enough that the regression gate would likely flag
// them.
//
// The bench-check subcommand is the perf-regression gate: it
// re-measures every series the -gates worklist declares (N iterations
// each), compares the median's confidence interval against the
// baseline recorded in the BENCH.json trajectory, prints a per-series
// verdict table (ok / regressed / improved / too-noisy / no-baseline),
// and exits non-zero iff a series significantly regressed past its
// threshold. Intentional changes are blessed with -update-baseline
// (see EXPERIMENTS.md "Regression gating").
//
// The bench-plot subcommand renders the BENCH.json trajectory as a
// self-contained static HTML page (inline SVG, no scripts or external
// assets) so the perf history is browsable from the repo.
//
// The 143 simulations behind the full evaluation are independent, so
// paperbench fans them out over -j host workers (default: all host
// cores) before rendering; tables and figures are always rendered
// serially from the warmed cache, so the output is byte-identical at
// any -j. -shards K additionally splits each simulation's event kernel
// into K conservative-lookahead shards (byte-identical at any K; 0
// picks K from the host cores -j leaves over). -shard-exec parallel
// additionally runs each sharded simulation's shard event streams on a
// bounded pool of host workers (-exec-workers; the pool draws from the
// same host-core budget) — still byte-identical; see DESIGN.md §17.
// -j and -shards draw from one shared host-core budget: when their
// product oversubscribes the host, the jobs side is clamped with a
// warning.
//
// The serve subcommand runs the same daemon as cmd/simd (see that
// command and EXPERIMENTS.md "Running the service").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/fault"
	"bigtiny/internal/machine"
	"bigtiny/internal/serve"
	"bigtiny/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(serve.Main("paperbench serve", os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "bench-check" {
		os.Exit(benchCheck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "bench-plot" {
		os.Exit(benchPlot(os.Args[2:]))
	}
	os.Exit(run())
}

// benchCheck is the perf-regression gate: re-measure every series the
// gates worklist declares, compare each against its BENCH.json
// trajectory baseline with a median-CI significance test, and exit
// non-zero iff something significantly regressed (see EXPERIMENTS.md
// "Regression gating").
func benchCheck(args []string) int {
	fs := flag.NewFlagSet("paperbench bench-check", flag.ContinueOnError)
	gatesPath := fs.String("gates", "bench/gates.toml", "gates worklist (bent-style TOML; see EXPERIMENTS.md)")
	iterations := fs.Int("iterations", bench.DefaultCheckIterations,
		"samples per gated series (a gate's own iterations key wins)")
	confidence := fs.Float64("confidence", bench.DefaultCheckConfidence, "median confidence-interval level")
	history := fs.String("bench-history", "BENCH.json", "trajectory file holding the baselines")
	checkJSON := fs.String("check-json", "", "also write the machine-readable verdict report to this file")
	update := fs.Bool("update-baseline", false,
		"bless the fresh medians as the new baselines (verdicts still report against the old ones)")
	hostGates := fs.Bool("host-gates", false,
		"also check gates marked host = true (per-host wall-clock baselines; PAPERBENCH_HOST_GATES=1 is equivalent)")
	verbose := fs.Bool("v", false, "print per-iteration progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "paperbench bench-check: unexpected arguments %q\n", fs.Args())
		return 2
	}
	gates, err := bench.LoadGates(*gatesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench bench-check:", err)
		return 2
	}
	opts := bench.CheckOptions{
		Iterations:     *iterations,
		Confidence:     *confidence,
		UpdateBaseline: *update,
		IncludeHost:    *hostGates || os.Getenv("PAPERBENCH_HOST_GATES") == "1",
		Commit:         gitCommit(),
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	rep, err := bench.BenchCheck(os.Stdout, gates, *history, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench bench-check:", err)
		return 1
	}
	if *checkJSON != "" {
		if err := bench.WriteCheckJSON(*checkJSON, rep); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench bench-check:", err)
			return 1
		}
	}
	if rep.Failed() {
		return 1
	}
	return 0
}

// benchPlot renders the BENCH.json trajectory to a static,
// self-contained HTML page (inline SVG charts, no scripts).
func benchPlot(args []string) int {
	fs := flag.NewFlagSet("paperbench bench-plot", flag.ContinueOnError)
	history := fs.String("bench-history", "BENCH.json", "trajectory file to render")
	out := fs.String("o", "docs/bench.html", "output HTML file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "paperbench bench-plot: unexpected arguments %q\n", fs.Args())
		return 2
	}
	traj, err := bench.LoadTrajectory(*history)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench bench-plot:", err)
		return 1
	}
	if err := bench.WriteTrajectoryHTML(*out, traj, *history); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench bench-plot:", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)
	return 0
}

func run() int {
	size := flag.String("size", "ref", "input size: test, ref, or big")
	appList := flag.String("apps", "", "comma-separated app subset (default: all 13)")
	jobs := flag.Int("j", 0, "host workers for the simulation fan-out (0 = all host cores, 1 = serial)")
	shards := flag.Int("shards", 0,
		"conservative-lookahead kernel shards per simulation, byte-identical at any count (0 = host cores left over by -j, 1 = serial)")
	shardExec := flag.String("shard-exec", "merged",
		"sharded-kernel executor: merged, or parallel (epoch-parallel host worker pool; byte-identical results)")
	execWorkers := flag.Int("exec-workers", 0,
		"parallel-executor worker pool bound per simulation (0 = one worker per shard)")
	verbose := flag.Bool("v", false, "print per-run progress")
	noVerify := flag.Bool("no-verify", false, "skip output verification after each run")
	jsonOut := flag.String("json", "", "also dump all collected metrics as JSON to this file")
	faultList := flag.String("faults", "",
		"comma-separated fault scenarios for the chaos target (default: the built-in sweep set)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection RNG seed for the chaos target")
	deadline := flag.Uint64("deadline", 0,
		"per-run simulated-cycle deadline; a run past it fails with a machine-state dump (0 = each config's watchdog default)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	benchOut := flag.String("bench-out", "BENCH_PR10.json",
		"output file for the bench target (an existing 'before' baseline section is preserved)")
	benchHistory := flag.String("bench-history", "BENCH.json",
		"cumulative per-commit trajectory file the bench target appends to (empty = no trajectory)")
	openJSON := flag.String("open-json", "",
		"also dump the open target's sweep results as JSON to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
			f.Close()
		}()
	}

	// Reject a bad -shards before any simulation work, same fail-fast
	// policy as -faults below. The per-config clamp (e.g. 1-core IOx1
	// runs serial regardless) happens inside machine.New; only values
	// no config could honor are errors here.
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "paperbench: -shards %d: shard count must be at least 1 (or 0 for auto)\n", *shards)
		return 2
	}
	if *shards > machine.MaxShards {
		fmt.Fprintf(os.Stderr, "paperbench: -shards %d exceeds the %d-shard kernel limit\n",
			*shards, machine.MaxShards)
		return 2
	}
	execMode, err := sim.ParseExecMode(*shardExec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench: -shard-exec:", err)
		return 2
	}

	var chaosScenarios []string
	if *faultList != "" {
		chaosScenarios = strings.Split(*faultList, ",")
		for _, sc := range chaosScenarios {
			if _, err := fault.Lookup(sc); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return 2
			}
		}
	}

	sz, err := apps.ParseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		return 2
	}

	names := bench.AppNames()
	if *appList != "" {
		names = strings.Split(*appList, ",")
		for _, n := range names {
			if _, err := apps.ByName(n); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				return 2
			}
		}
	}

	targets := flag.Args()
	for _, t := range targets {
		if strings.HasPrefix(t, "-") {
			fmt.Fprintf(os.Stderr, "paperbench: flag %q given after targets; flags must precede targets\n", t)
			return 2
		}
	}
	if len(targets) == 0 {
		targets = []string{"table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "uli", "energy"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "uli", "energy"}
	}

	// -faults and -fault-seed only affect the chaos target; flag them
	// loudly when they would otherwise be silently ignored.
	chaosSelected, openSelected := false, false
	for _, t := range targets {
		if t == "chaos" {
			chaosSelected = true
		}
		if t == "open" {
			openSelected = true
		}
	}
	if *openJSON != "" && !openSelected {
		fmt.Fprintln(os.Stderr, "paperbench: warning: -open-json only affects the open target, which is not selected; ignoring it")
	}
	if !chaosSelected {
		if *faultList != "" {
			fmt.Fprintln(os.Stderr, "paperbench: warning: -faults only affects the chaos target, which is not selected; ignoring it")
		}
		if *faultSeed != 1 {
			fmt.Fprintln(os.Stderr, "paperbench: warning: -fault-seed only affects the chaos target, which is not selected; ignoring it")
		}
	}

	// -j and -shards share one host-core budget; an explicit pair that
	// oversubscribes the host clamps the jobs side (shards is the
	// user's decomposition choice), warned about like ignored -faults.
	gotJobs, gotShards, clamped := bench.HostBudget(*jobs, *shards, 0)
	if clamped {
		fmt.Fprintf(os.Stderr, "paperbench: warning: -j %d x -shards %d oversubscribes the %d-core host; running %d jobs\n",
			*jobs, *shards, runtime.NumCPU(), gotJobs)
	}

	s := bench.NewSuite(sz)
	s.Verify = !*noVerify
	s.Deadline = sim.Time(*deadline)
	s.Shards = gotShards
	s.ShardExec = execMode
	s.ExecWorkers = *execWorkers
	if *verbose {
		s.Progress = os.Stderr
	}

	// Collect every selected target's worklist and warm the suite's
	// caches over the host worker pool; the render loop below then
	// draws from the cache in fixed order. Prewarm errors are not fatal
	// here — the owning target re-encounters them serially and reports
	// them with its usual context. (The bench target has no worklist:
	// it measures its own strictly-serial pass on a private suite.)
	var work []bench.Work
	for _, t := range targets {
		if wl, ok := s.TargetWork(t, names); ok {
			work = append(work, wl...)
		}
	}
	if err := s.Prewarm(work, gotJobs); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench: warning:", err)
	}

	out := os.Stdout
	for _, t := range targets {
		var err error
		switch t {
		case "table3":
			err = s.Table3(out, names)
		case "table4":
			err = s.Table4(out, names)
		case "table5":
			err = s.Table5(out)
		case "fig4":
			err = s.Fig4(out, nil)
		case "fig5":
			err = s.Fig5(out, names)
		case "fig6":
			err = s.Fig6(out, names)
		case "fig7":
			err = s.Fig7(out, names)
		case "fig8":
			err = s.Fig8(out, names)
		case "uli":
			err = s.ULIReport(out, names)
		case "energy":
			err = s.EnergyReport(out, names)
		case "chaos":
			err = bench.Chaos(out, names, chaosScenarios, *faultSeed, gotJobs, gotShards, execMode)
		case "open":
			err = s.Open(out, bench.DefaultOpenSweep(sz))
		case "bench":
			var progress io.Writer
			if *verbose {
				progress = os.Stderr
			}
			err = bench.HostBench(out, sz, names, bench.DefaultShardSweep, *benchOut, *benchHistory, gitCommit(), progress)
		default:
			err = fmt.Errorf("unknown target %q", t)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		fmt.Fprintln(out)
	}

	// Shard accounting mirrors btsim's: stderr only, so stdout stays
	// byte-comparable across shard counts.
	if gotShards > 1 {
		if o := s.ShardObs(); o.ActiveEpochs > 0 || o.CrossPosts > 0 {
			fmt.Fprintf(os.Stderr,
				"paperbench: shards %d: %d cross-shard posts, %d lookahead violations, avg concurrency %.2f\n",
				gotShards, o.CrossPosts, o.Violations, o.AvgConcurrency())
		}
		if execMode == sim.ExecParallel {
			eo := s.ExecObs()
			fmt.Fprintf(os.Stderr, "paperbench: shard-exec parallel: %d handoffs, %d inline, %d outboxed, %d flushes\n",
				eo.Handoffs, eo.Inline, eo.Outboxed, eo.Flushes)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := s.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
	}
	if *openJSON != "" && openSelected {
		f, err := os.Create(*openJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := s.WriteOpenJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return 1
		}
	}
	return 0
}

// gitCommit identifies HEAD for the benchmark trajectory, best-effort:
// outside a git checkout (or without git on PATH) the entry is still
// recorded, just unattributed with ID "unknown" — the trajectory never
// dedups on that ID, so successive unattributed runs accumulate
// instead of silently replacing each other.
func gitCommit() bench.BenchCommit {
	out, err := exec.Command("git", "log", "-1", "--format=%H%n%s%n%cI").Output()
	if err != nil {
		return bench.BenchCommit{ID: "unknown", Message: "unknown", Timestamp: ""}
	}
	lines := strings.SplitN(strings.TrimRight(string(out), "\n"), "\n", 3)
	c := bench.BenchCommit{ID: "unknown", Message: "unknown"}
	if len(lines) > 0 && lines[0] != "" {
		c.ID = lines[0]
	}
	if len(lines) > 1 {
		c.Message = lines[1]
	}
	if len(lines) > 2 {
		c.Timestamp = lines[2]
	}
	return c
}
