// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench [-size test|ref|big] [-apps a,b,c] [-faults s1,s2] [-v] [targets...]
//
// Targets: table3 table4 table5 fig4 fig5 fig6 fig7 fig8 uli energy
// chaos all (default: all except table5, which simulates a 256-core
// system and is the most expensive target, and chaos, which is a
// robustness sweep rather than a paper artifact). The chaos target runs
// every selected app under each fault-injection scenario on a small
// DTS machine and checks the outputs still match the serial reference;
// it always uses test-size inputs regardless of -size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bigtiny/internal/apps"
	"bigtiny/internal/bench"
	"bigtiny/internal/fault"
)

func main() {
	size := flag.String("size", "ref", "input size: test, ref, or big")
	appList := flag.String("apps", "", "comma-separated app subset (default: all 13)")
	verbose := flag.Bool("v", false, "print per-run progress")
	noVerify := flag.Bool("no-verify", false, "skip output verification after each run")
	jsonOut := flag.String("json", "", "also dump all collected metrics as JSON to this file")
	faultList := flag.String("faults", "",
		"comma-separated fault scenarios for the chaos target (default: the built-in sweep set)")
	flag.Parse()

	var chaosScenarios []string
	if *faultList != "" {
		chaosScenarios = strings.Split(*faultList, ",")
		for _, sc := range chaosScenarios {
			if _, err := fault.Lookup(sc); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(2)
			}
		}
	}

	var sz apps.Size
	switch *size {
	case "test":
		sz = apps.Test
	case "ref":
		sz = apps.Ref
	case "big":
		sz = apps.Big
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown size %q\n", *size)
		os.Exit(2)
	}

	names := bench.AppNames()
	if *appList != "" {
		names = strings.Split(*appList, ",")
		for _, n := range names {
			if _, err := apps.ByName(n); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(2)
			}
		}
	}

	targets := flag.Args()
	for _, t := range targets {
		if strings.HasPrefix(t, "-") {
			fmt.Fprintf(os.Stderr, "paperbench: flag %q given after targets; flags must precede targets\n", t)
			os.Exit(2)
		}
	}
	if len(targets) == 0 {
		targets = []string{"table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "uli", "energy"}
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table3", "table4", "table5", "fig4", "fig5", "fig6", "fig7", "fig8", "uli", "energy"}
	}

	s := bench.NewSuite(sz)
	s.Verify = !*noVerify
	if *verbose {
		s.Progress = os.Stderr
	}

	out := os.Stdout
	for _, t := range targets {
		var err error
		switch t {
		case "table3":
			err = s.Table3(out, names)
		case "table4":
			err = s.Table4(out, names)
		case "table5":
			err = s.Table5(out)
		case "fig4":
			err = s.Fig4(out, nil)
		case "fig5":
			err = s.Fig5(out, names)
		case "fig6":
			err = s.Fig6(out, names)
		case "fig7":
			err = s.Fig7(out, names)
		case "fig8":
			err = s.Fig8(out, names)
		case "uli":
			err = s.ULIReport(out, names)
		case "energy":
			err = s.EnergyReport(out, names)
		case "chaos":
			err = bench.Chaos(out, names, chaosScenarios, 1)
		default:
			err = fmt.Errorf("unknown target %q", t)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		if err := s.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}
}
