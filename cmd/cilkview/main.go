// Command cilkview performs the paper's Cilkview-style analysis
// (§V-D): it executes a kernel natively while tracking the fork-join
// DAG and reports work, span, logical parallelism, and instructions per
// task — optionally sweeping task granularity (paper Figure 4's
// parallelism series).
//
// Usage:
//
//	cilkview -app ligra-tc [-size ref] [-grain N]
//	cilkview -app ligra-tc -sweep 2,4,8,16,32,64,128
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bigtiny/internal/apps"
	"bigtiny/internal/cilkview"
	"bigtiny/internal/wsrt"
)

func main() {
	appName := flag.String("app", "ligra-tc", "application kernel")
	size := flag.String("size", "ref", "input size: test, ref, or big")
	grain := flag.Int("grain", 0, "task granularity (0 = app default)")
	sweep := flag.String("sweep", "", "comma-separated granularities to sweep")
	flag.Parse()

	var sz apps.Size
	switch *size {
	case "test":
		sz = apps.Test
	case "ref":
		sz = apps.Ref
	case "big":
		sz = apps.Big
	default:
		fmt.Fprintf(os.Stderr, "cilkview: unknown size %q\n", *size)
		os.Exit(2)
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cilkview:", err)
		os.Exit(1)
	}

	analyze := func(g int) cilkview.Report {
		return cilkview.Analyze(func(rt *wsrt.RT) wsrt.Body {
			return app.Setup(rt, sz, g).Root
		})
	}

	if *sweep == "" {
		r := analyze(*grain)
		fmt.Printf("%s (size %s): %s\n", app.Name, sz, r)
		return
	}
	fmt.Printf("%-12s %12s %12s %12s %10s\n", "Granularity", "Work", "Span", "Parallelism", "IPT")
	for _, gs := range strings.Split(*sweep, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(gs))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cilkview:", err)
			os.Exit(2)
		}
		r := analyze(g)
		fmt.Printf("%-12d %12d %12d %12.1f %10.1f\n", g, r.Work, r.Span, r.Parallelism(), r.IPT())
	}
}
