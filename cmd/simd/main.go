// Command simd is the long-running simulation service daemon: an
// HTTP/JSON API over the bench suite with a bounded worker pool,
// admission control, poison-job quarantine, per-job deadlines, a
// crash-safe disk result store, and graceful drain on SIGTERM.
//
// Usage:
//
//	simd [-addr host:port] [-store dir] [-workers N] [-queue N]
//	     [-deadline cycles] [-wall-timeout d] [-drain d]
//	     [-quarantine-after N] [-no-verify]
//	simd -smoke
//
// Endpoints:
//
//	POST /v1/jobs      run one (config, app, size, grain, faults, seed)
//	                   tuple; returns the canonical result JSON,
//	                   byte-identical to `paperbench -json`
//	GET  /healthz      liveness, pool and store counters, quarantine list
//	GET  /v1/scenarios the fault-injection scenario registry
//	GET  /v1/configs   machine configurations
//	GET  /v1/apps      application kernels
//
// See EXPERIMENTS.md "Running the service" for curl examples.
package main

import (
	"os"

	"bigtiny/internal/serve"
)

func main() {
	os.Exit(serve.Main("simd", os.Args[1:]))
}
