// Command rmatgen generates the deterministic R-MAT graphs the Ligra
// kernels run on and prints them (or just their statistics). Useful
// for inspecting inputs and for cross-checking determinism.
//
// Usage:
//
//	rmatgen -scale 10 -edgefactor 8 -seed 42 [-stats] [-edges]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"bigtiny/internal/graph"
)

func main() {
	scale := flag.Int("scale", 10, "log2 of vertex count")
	ef := flag.Int("edgefactor", 8, "undirected edges per vertex")
	seed := flag.Uint64("seed", 0x9A3F, "generator seed")
	statsOnly := flag.Bool("stats", false, "print degree statistics only")
	edges := flag.Bool("edges", false, "dump the edge list (u v w per line)")
	flag.Parse()

	g := graph.RMat(*scale, *ef, *seed)
	fmt.Printf("vertices=%d directed-edges=%d\n", g.N, g.M())

	if *statsOnly || !*edges {
		maxDeg, sumDeg := 0, 0
		hist := map[int]int{} // log2-bucketed degree histogram
		for v := 0; v < g.N; v++ {
			d := g.Degree(v)
			sumDeg += d
			if d > maxDeg {
				maxDeg = d
			}
			b := 0
			for x := d; x > 0; x >>= 1 {
				b++
			}
			hist[b]++
		}
		fmt.Printf("avg-degree=%.2f max-degree=%d\n", float64(sumDeg)/float64(g.N), maxDeg)
		for b := 0; b <= 32; b++ {
			if n, ok := hist[b]; ok {
				lo := 0
				if b > 0 {
					lo = 1 << (b - 1)
				}
				fmt.Printf("degree [%6d, %6d): %6d vertices\n", lo, 1<<b, n)
			}
		}
	}
	if *edges {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for v := 0; v < g.N; v++ {
			for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
				fmt.Fprintf(w, "%d %d %d\n", v, g.Edges[i], g.Weights[i])
			}
		}
	}
}
