# Standard gates for this repo. `make ci` is what a change must pass.

GO ?= go

.PHONY: all ci vet build test race parallel-smoke pdes-smoke pdes-exec-smoke chaos-smoke chaos-lossy-smoke oracle-smoke open-smoke bench-smoke serve-smoke bench-check-smoke bench bench-check bench-plot

all: ci

ci: vet build test race parallel-smoke pdes-smoke pdes-exec-smoke chaos-smoke chaos-lossy-smoke oracle-smoke open-smoke bench-smoke serve-smoke bench-check-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The merged executor is single-goroutine-at-a-time by construction,
# but the epoch-parallel shard executor (PR 10) runs real worker
# goroutines inside the kernel, so internal/sim and the bench layer
# (singleflight caches, Prewarm worker pool, the parallel-vs-serial
# determinism tests) get the full -cpu=1,2,4 spread; the other
# concurrent packages — wsrt, openload, serve, store — run at the
# default GOMAXPROCS.
race:
	$(GO) test -race -cpu=1,2,4 ./internal/sim ./internal/bench/...
	$(GO) test -race ./internal/mem ./internal/graph ./internal/fault ./internal/wsrt ./internal/openload ./internal/serve ./internal/store

# Host-parallel determinism gate: fan a target subset out over 4
# workers; the render pass reads only the warmed cache, so this passing
# plus the bench determinism tests means -j cannot change any result
# (see EXPERIMENTS.md "Host-parallel runs").
parallel-smoke:
	$(GO) run ./cmd/paperbench -size test -apps cilk5-cs,ligra-bfs -j 4 table4 fig6 uli

# Sharded-kernel equivalence gate: the same run serial and on a 4-way
# conservative-lookahead sharded kernel must print byte-identical
# reports (shard accounting goes to stderr precisely so this cmp can
# hold; see DESIGN.md "Conservative-lookahead parallel simulation").
pdes-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir/btsim" ./cmd/btsim && \
	"$$dir/btsim" -config bT/HCC-DTS-gwb -app cilk5-cs -size test > "$$dir/serial.txt" && \
	"$$dir/btsim" -config bT/HCC-DTS-gwb -app cilk5-cs -size test -shards 4 > "$$dir/sharded.txt" && \
	cmp "$$dir/serial.txt" "$$dir/sharded.txt" && echo "pdes-smoke: serial and 4-shard runs identical"

# Epoch-parallel executor equivalence gate: the same runs with each
# simulation's shard event streams on a pool of host workers
# (-shard-exec parallel) must print byte-identical rendered tables AND
# a byte-identical -json metric export (executor accounting goes to
# stderr, like shard accounting; see DESIGN.md §17).
pdes-exec-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir/paperbench" ./cmd/paperbench && \
	"$$dir/paperbench" -size test -apps cilk5-cs -shards 1 -json "$$dir/serial.json" table4 uli > "$$dir/serial.txt" && \
	"$$dir/paperbench" -size test -apps cilk5-cs -shards 4 -shard-exec parallel -json "$$dir/par.json" table4 uli > "$$dir/par.txt" && \
	cmp "$$dir/serial.txt" "$$dir/par.txt" && cmp "$$dir/serial.json" "$$dir/par.json" && \
	echo "pdes-exec-smoke: serial and 4-shard parallel-executor runs identical (tables and JSON)"

# A fast end-to-end chaos pass: two apps under every stock scenario on
# the 8-core chaos machine, output verified against the serial
# reference (see EXPERIMENTS.md "Fault injection & chaos runs").
chaos-smoke:
	$(GO) run ./cmd/paperbench -apps cilk5-cs,ligra-bfs chaos

# Survivability pass: one app under the lossy-ULI and core-loss
# scenarios (steal messages dropped, a tiny core fail-stopped mid-run);
# the run must still produce the reference output, with the oracle
# shadowing every memory operation (see EXPERIMENTS.md "Recovery
# experiments").
chaos-lossy-smoke:
	$(GO) run ./cmd/paperbench -apps cilk5-cs -faults lossy-uli,core-loss chaos

# Memory-ordering oracle pass on a fault-free run: zero violations and
# zero simulated-cycle overhead expected.
oracle-smoke:
	$(GO) run ./cmd/btsim -config bT8/HCC-DTS-gwb -app cilk5-cs -oracle

# Open-system determinism gate: the same bursty overload run under full
# lossy chaos, twice, must print byte-identical reports (seeded
# arrivals, exact latency percentiles, and the shed accounting identity
# are all deterministic; see EXPERIMENTS.md "Open-system experiments").
open-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir/btsim" ./cmd/btsim && \
	"$$dir/btsim" -open -config bT8/HCC-DTS-gwb -workload rmat-query -arrival bursty \
		-rate 8 -requests 32 -open-seed 1 -inflight 8 -faults chaos-lossy-all > "$$dir/a.txt" && \
	"$$dir/btsim" -open -config bT8/HCC-DTS-gwb -workload rmat-query -arrival bursty \
		-rate 8 -requests 32 -open-seed 1 -inflight 8 -faults chaos-lossy-all > "$$dir/b.txt" && \
	cmp "$$dir/a.txt" "$$dir/b.txt" && echo "open-smoke: identical under chaos-lossy-all"

# One pass over every Go benchmark (kernel microbenchmarks and the
# end-to-end artifact benchmarks) so a perf-rig regression — a bench
# that panics, a metric that stops compiling — fails ci. Numbers from
# -benchtime=1x are noise; `make bench` produces the real ones.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/sim .

# Service self-test: start simd on a random port with a temp store,
# POST a tiny job under the full lossy chaos scenario, assert HTTP 200,
# the ULI accounting identity (reqs == acks + nacks + drops) in the
# returned JSON, and a byte-identical repeat; then drain gracefully via
# a real SIGTERM and exit 0 (see EXPERIMENTS.md "Running the service").
serve-smoke:
	$(GO) run ./cmd/simd -smoke

# Regenerate BENCH_PR10.json and append this commit's measurement to
# the cumulative BENCH.json trajectory: the kernel microbenchmark, a
# strictly serial ref-size table3 pass, and the same worklist on 2/4/8
# conservative-lookahead kernel shards under both the merged and the
# epoch-parallel executors, measured on this host. The PR file's
# "before" baseline section is preserved; only "after" and the derived
# speedup ratios are rewritten (see EXPERIMENTS.md "Profiling and
# benchmarking").
bench:
	$(GO) run ./cmd/paperbench bench

# Render the BENCH.json trajectory to the committed static page
# (inline SVG, no scripts, no external assets).
bench-plot:
	$(GO) run ./cmd/paperbench bench-plot

# Perf-regression gate: re-measure every series in bench/gates.toml and
# compare against the baselines recorded in BENCH.json; exits non-zero
# only when a series' whole confidence interval lands past its
# threshold (see EXPERIMENTS.md "Regression gating"). Bless intentional
# changes with:  go run ./cmd/paperbench bench-check -update-baseline
bench-check:
	$(GO) run ./cmd/paperbench bench-check

# Single-cell deterministic gate for ci: exercises the whole measure →
# summarize → compare → verdict → exit-code pipeline in under a second,
# on bit-identical simulated cycles, so it cannot flake on any host.
bench-check-smoke:
	$(GO) run ./cmd/paperbench bench-check -gates bench/gates-smoke.toml -iterations 2
