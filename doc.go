// Package bigtiny is a from-scratch Go reproduction of "Efficiently
// Supporting Dynamic Task Parallelism on Heterogeneous Cache-Coherent
// Systems" (Wang, Ta, Cheng, Batten; ISCA 2020).
//
// It contains a deterministic cycle-approximate simulator of a
// big.TINY manycore (big out-of-order cores with MESI + tiny in-order
// cores with software-centric coherence: DeNovo, GPU-WT, or GPU-WB,
// integrated Spandex-style through a shared banked L2), the paper's
// work-stealing runtime in its three forms (hardware-coherent, HCC
// with invalidate/flush discipline, and direct task stealing over
// user-level interrupts), the 13 Cilk-5/Ligra application kernels of
// the evaluation, and a harness that regenerates every table and
// figure of the paper's evaluation section.
//
// See README.md for a tour and DESIGN.md for the system inventory.
// The root-level benchmarks (bench_test.go) regenerate each table and
// figure at test scale; cmd/paperbench does the same at evaluation
// scale.
package bigtiny
